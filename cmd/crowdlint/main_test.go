package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module example.com/fixture\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// chdir switches into dir for the duration of the test.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

const dirtyFile = `package p

import (
	"math/rand"
	"time"
)

func roll() int { return rand.Intn(6) }

func stamp() int64 { return time.Now().Unix() }
`

func TestDirtyTreeExitsOne(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/p/p.go": dirtyFile})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"internal/p/p.go:8:26: no-global-rand:",
		"internal/p/p.go:10:29: no-wall-clock:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(stderr.String(), "2 finding(s)") {
		t.Errorf("stderr missing finding count: %s", stderr.String())
	}
}

func TestCleanTreeExitsZero(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/p/p.go": "package p\n\nfunc ok() int { return 1 }\n",
	})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output: %s", stdout.String())
	}
}

func TestJSONOutputShape(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/p/p.go": dirtyFile})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	first := diags[0]
	if first.Rule != "no-global-rand" || first.File != "internal/p/p.go" ||
		first.Line != 8 || first.Col != 26 || !strings.Contains(first.Message, "rand.Intn") {
		t.Errorf("unexpected first diagnostic: %+v", first)
	}
	if diags[1].Rule != "no-wall-clock" {
		t.Errorf("unexpected second diagnostic: %+v", diags[1])
	}
}

// TestJSONGolden pins the exact machine-readable diagnostic shape —
// field names, ordering, indentation — against a committed golden
// file, so downstream report consumers (the CI artifact) never see a
// silent format change.
func TestJSONGolden(t *testing.T) {
	goldenPath, err := filepath.Abs(filepath.Join("testdata", "diagnostics.golden"))
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	root := writeModule(t, map[string]string{"internal/p/p.go": dirtyFile})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	if stdout.String() != string(golden) {
		t.Errorf("JSON output diverged from testdata/diagnostics.golden:\n--- got ---\n%s\n--- want ---\n%s",
			stdout.String(), golden)
	}
}

// TestBaselineRatchet exercises the ignore-count gate: a tree whose
// suppression count exceeds the accepted baseline fails even when the
// findings themselves are suppressed.
func TestBaselineRatchet(t *testing.T) {
	suppressed := `package p

import "time"

func stamp() int64 {
	//lint:ignore no-wall-clock test fixture
	return time.Now().Unix()
}
`
	root := writeModule(t, map[string]string{"internal/p/p.go": suppressed})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-write-baseline", "accepted.json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("write-baseline: exit = %d; stderr: %s", code, stderr.String())
	}
	if code := run([]string{"-baseline", "accepted.json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("at-baseline run: exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	// Zero accepted ignores: the existing suppression now counts as
	// growth and must fail the run despite zero findings.
	if err := os.WriteFile("strict.json", []byte(`{"total":0,"rules":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", "strict.json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("over-baseline run: exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "grew from 0 to 1") {
		t.Errorf("stderr missing growth message: %s", stderr.String())
	}
}

// TestSummaryAndReport checks the per-rule count summary and the CI
// report artifact.
func TestSummaryAndReport(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/p/p.go": dirtyFile})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-summary", "-report", "report.json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"crowdlint summary: 2 finding(s)", "no-global-rand", "no-wall-clock"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, stdout.String())
		}
	}
	data, err := os.ReadFile("report.json")
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if rep.Total != 2 || rep.Counts["no-wall-clock"] != 1 || len(rep.Findings) != 2 {
		t.Errorf("unexpected report: %+v", rep)
	}
}

// TestGraphOutput checks -graph emits the call-graph listing instead of
// diagnostics.
func TestGraphOutput(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/p/p.go": "package p\n\nfunc a() { b() }\n\nfunc b() {}\n",
	})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-graph", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "internal/p.a") {
		t.Errorf("graph output missing caller node:\n%s", stdout.String())
	}
}

func TestRuleSelection(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/p/p.go": dirtyFile})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rules", "no-global-rand"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(stdout.String(), "no-wall-clock") {
		t.Errorf("unselected rule ran: %s", stdout.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-rules", "no-such-rule"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown rule: exit = %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "unknown rule") {
		t.Errorf("stderr missing unknown-rule error: %s", stderr.String())
	}
}

func TestListRules(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, rule := range []string{
		"no-wall-clock", "no-global-rand", "ordered-map-range",
		"no-copied-locks-by-value", "checked-errors-in-store",
		"determinism-taint", "ticket-lifecycle",
		"no-lock-across-commit", "goroutine-ownership",
	} {
		if !strings.Contains(stdout.String(), rule) {
			t.Errorf("-list output missing %s:\n%s", rule, stdout.String())
		}
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/p/p.go": "package p\n\nfunc broken( {\n"})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr.String())
	}
}
