package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module example.com/fixture\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// chdir switches into dir for the duration of the test.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

const dirtyFile = `package p

import (
	"math/rand"
	"time"
)

func roll() int { return rand.Intn(6) }

func stamp() int64 { return time.Now().Unix() }
`

func TestDirtyTreeExitsOne(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/p/p.go": dirtyFile})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"internal/p/p.go:8:26: no-global-rand:",
		"internal/p/p.go:10:29: no-wall-clock:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(stderr.String(), "2 finding(s)") {
		t.Errorf("stderr missing finding count: %s", stderr.String())
	}
}

func TestCleanTreeExitsZero(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/p/p.go": "package p\n\nfunc ok() int { return 1 }\n",
	})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output: %s", stdout.String())
	}
}

func TestJSONOutputShape(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/p/p.go": dirtyFile})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	first := diags[0]
	if first.Rule != "no-global-rand" || first.File != "internal/p/p.go" ||
		first.Line != 8 || first.Col != 26 || !strings.Contains(first.Message, "rand.Intn") {
		t.Errorf("unexpected first diagnostic: %+v", first)
	}
	if diags[1].Rule != "no-wall-clock" {
		t.Errorf("unexpected second diagnostic: %+v", diags[1])
	}
}

func TestRuleSelection(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/p/p.go": dirtyFile})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rules", "no-global-rand"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(stdout.String(), "no-wall-clock") {
		t.Errorf("unselected rule ran: %s", stdout.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-rules", "no-such-rule"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown rule: exit = %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "unknown rule") {
		t.Errorf("stderr missing unknown-rule error: %s", stderr.String())
	}
}

func TestListRules(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, rule := range []string{
		"no-wall-clock", "no-global-rand", "ordered-map-range",
		"no-copied-locks-by-value", "checked-errors-in-store",
	} {
		if !strings.Contains(stdout.String(), rule) {
			t.Errorf("-list output missing %s:\n%s", rule, stdout.String())
		}
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/p/p.go": "package p\n\nfunc broken( {\n"})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr.String())
	}
}
