// Command crowdlint runs crowdlearn's custom static-analysis suite
// (internal/lint): stdlib-only rules that enforce the repo's
// determinism, durability and concurrency invariants at analysis time
// instead of waiting for an equivalence test to catch the divergence.
//
// Usage:
//
//	crowdlint [flags] [packages]
//
// Packages are directories; a trailing /... checks the subtree. With no
// arguments, ./... is assumed. Exit status is 0 when clean, 1 when any
// diagnostic is reported, 2 on usage or load errors.
//
// Flags:
//
//	-json            emit diagnostics as a JSON array instead of text
//	-rules           comma-separated rule subset to run (default: all)
//	-tests           also lint _test.go files
//	-list            print the available rules and exit
//	-graph           print the name-resolved call graph and exit
//	-baseline FILE   fail if //lint:ignore counts grew past FILE
//	-write-baseline FILE  record current ignore counts to FILE
//	-summary         print per-rule finding counts after diagnostics
//	-report FILE     write a JSON report (findings + per-rule counts)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/crowdlearn/crowdlearn/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the stable machine-readable shape of one finding.
type jsonDiagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crowdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	ruleList := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	withTests := fs.Bool("tests", false, "also lint _test.go files")
	list := fs.Bool("list", false, "print available rules and exit")
	graph := fs.Bool("graph", false, "print the name-resolved call graph and exit")
	baseline := fs.String("baseline", "", "baseline file; fail when //lint:ignore counts grew past it")
	writeBaseline := fs.String("write-baseline", "", "record current //lint:ignore counts to this file and exit")
	summary := fs.Bool("summary", false, "print per-rule finding counts after diagnostics")
	report := fs.String("report", "", "write a JSON report (findings + per-rule counts) to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rules := lint.DefaultRules()
	if *list {
		for _, r := range rules {
			fmt.Fprintf(stdout, "%-28s %s\n", r.Name(), r.Doc())
		}
		return 0
	}
	if *ruleList != "" {
		selected, err := selectRules(rules, *ruleList)
		if err != nil {
			fmt.Fprintln(stderr, "crowdlint:", err)
			return 2
		}
		rules = selected
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := lint.Config{IncludeTests: *withTests}
	var pkgs []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		loaded, err := load(pat, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "crowdlint:", err)
			return 2
		}
		for _, p := range loaded {
			if p != nil && !seen[p.Dir] {
				seen[p.Dir] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	if *graph {
		var sb strings.Builder
		lint.NewProgram(pkgs).Graph().WriteText(&sb)
		fmt.Fprint(stdout, sb.String())
		return 0
	}
	if *writeBaseline != "" {
		if err := lint.CountIgnores(pkgs).Write(*writeBaseline); err != nil {
			fmt.Fprintln(stderr, "crowdlint:", err)
			return 2
		}
		return 0
	}
	baselineFailed := false
	if *baseline != "" {
		accepted, err := lint.ReadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "crowdlint:", err)
			return 2
		}
		for _, p := range accepted.Compare(lint.CountIgnores(pkgs)) {
			fmt.Fprintln(stderr, "crowdlint: baseline:", p)
			baselineFailed = true
		}
	}

	diags := lint.NewRunner(rules).Run(pkgs)
	if *report != "" {
		if err := writeReport(*report, diags); err != nil {
			fmt.Fprintln(stderr, "crowdlint:", err)
			return 2
		}
	}
	if *jsonOut {
		out := make([]jsonDiagnostic, len(diags))
		for i, d := range diags {
			out[i] = jsonDiagnostic{
				Rule:    d.Rule,
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Message: d.Message,
			}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "crowdlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if *summary {
		for _, line := range summarize(diags) {
			fmt.Fprintln(stdout, line)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "crowdlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	if baselineFailed {
		return 1
	}
	return 0
}

// summarize renders per-rule finding counts, sorted by rule name.
func summarize(diags []lint.Diagnostic) []string {
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Rule]++
	}
	rules := make([]string, 0, len(counts))
	for r := range counts {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	out := []string{fmt.Sprintf("crowdlint summary: %d finding(s)", len(diags))}
	for _, r := range rules {
		out = append(out, fmt.Sprintf("  %-28s %d", r, counts[r]))
	}
	return out
}

// jsonReport is the CI artifact shape: the findings plus per-rule
// counts.
type jsonReport struct {
	Total    int              `json:"total"`
	Counts   map[string]int   `json:"counts"`
	Findings []jsonDiagnostic `json:"findings"`
}

func writeReport(path string, diags []lint.Diagnostic) error {
	rep := jsonReport{
		Total:    len(diags),
		Counts:   map[string]int{},
		Findings: make([]jsonDiagnostic, len(diags)),
	}
	for i, d := range diags {
		rep.Counts[d.Rule]++
		rep.Findings[i] = jsonDiagnostic{
			Rule:    d.Rule,
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Message: d.Message,
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// load resolves one pattern: dir/... walks the subtree, a plain dir is
// a single package.
func load(pattern string, cfg lint.Config) ([]*lint.Package, error) {
	if root, ok := strings.CutSuffix(pattern, "/..."); ok {
		if root == "" {
			root = "."
		}
		return lint.LoadTree(root, cfg)
	}
	pkg, err := lint.LoadDir(pattern, cfg)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, nil
	}
	return []*lint.Package{pkg}, nil
}

// selectRules filters the rule set by name.
func selectRules(all []lint.Rule, spec string) ([]lint.Rule, error) {
	byName := make(map[string]lint.Rule, len(all))
	for _, r := range all {
		byName[r.Name()] = r
	}
	var out []lint.Rule
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (use -list)", name)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -rules selection")
	}
	return out, nil
}
