package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadInvocations(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no artefact must error")
	}
	if err := run([]string{"not-an-artefact"}); err == nil {
		t.Error("unknown artefact must error")
	}
	if err := run([]string{"-bogusflag"}); err == nil {
		t.Error("unknown flag must error")
	}
}

func TestRunFig5AndArchive(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "fig5", "fig6"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig5.txt", "fig6.txt"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("archived artefact missing: %v", err)
		}
		if !strings.Contains(string(data), "Figure") {
			t.Errorf("%s missing table content", name)
		}
	}
}

func TestRunTable1DifferentSeed(t *testing.T) {
	if err := run([]string{"-seed", "7", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRobustnessTarget(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "robustness"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "robustness.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"spammer", "churn", "cqc"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("robustness artefact missing %q", want)
		}
	}
}
