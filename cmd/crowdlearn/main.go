// Command crowdlearn regenerates the tables and figures of the CrowdLearn
// paper (Zhang et al., ICDCS 2019) from the simulated evaluation
// environment.
//
// Usage:
//
//	crowdlearn [-seed N] <artefact>...
//
// Artefacts: fig5 fig6 table1 table2 fig7 table3 fig8 fig9 fig10 fig11
// ablations strategies robustness faults report table2multi all. Running
// "all" regenerates every paper artefact plus the ablation, robustness
// and fault-resilience studies in paper order; "report" writes the
// paper-vs-measured markdown comparison.
//
// Example:
//
//	crowdlearn table2 table3
//	crowdlearn -seed 7 all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	crowdlearn "github.com/crowdlearn/crowdlearn"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crowdlearn:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crowdlearn", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "master seed for dataset, platform and all algorithms")
	seeds := fs.Int("seeds", 3, "seed count for the table2multi artefact")
	workers := fs.Int("workers", 0, "goroutine fan-out for campaign arms, fault grids and model training (0 = GOMAXPROCS, 1 = sequential); artefacts are bit-identical at any value")
	outDir := fs.String("out", "", "directory to archive artefacts into (text tables plus campaign JSON)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: crowdlearn [-seed N] [-seeds K] [-workers N] <artefact>...")
		fmt.Fprintln(fs.Output(), "artefacts: fig5 fig6 table1 table2 fig7 table3 fig8 fig9 fig10 fig11")
		fmt.Fprintln(fs.Output(), "           ablations strategies robustness faults report table2multi all")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets := fs.Args()
	if len(targets) == 0 {
		fs.Usage()
		return fmt.Errorf("no artefact requested")
	}
	if len(targets) == 1 && targets[0] == "all" {
		targets = []string{
			"fig5", "fig6", "table1", "table2", "fig7", "table3",
			"fig8", "fig9", "fig10", "fig11",
			"ablations", "strategies", "robustness", "faults",
		}
	}

	cfg := crowdlearn.DefaultLabConfig()
	cfg.Seed = *seed
	cfg.Workers = *workers
	start := time.Now()
	fmt.Printf("building lab (dataset + pilot study, seed %d)...\n", *seed)
	lab, err := crowdlearn.NewLab(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("lab ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("create output dir: %w", err)
		}
	}

	// Table II / Figure 7 / Table III share one campaign set; cache it.
	var campaigns *crowdlearn.CampaignSet
	campaignSet := func() (*crowdlearn.CampaignSet, error) {
		if campaigns != nil {
			return campaigns, nil
		}
		var err error
		campaigns, err = crowdlearn.RunCampaignSet(lab)
		if err == nil && *outDir != "" {
			if aerr := archiveCampaigns(*outDir, campaigns); aerr != nil {
				return nil, aerr
			}
		}
		return campaigns, err
	}
	// Figures 10 and 11 share one budget sweep.
	var sweep *crowdlearn.BudgetSweepResult
	budgetSweep := func() (*crowdlearn.BudgetSweepResult, error) {
		if sweep != nil {
			return sweep, nil
		}
		var err error
		sweep, err = crowdlearn.RunBudgetSweep(lab)
		return sweep, err
	}

	for _, target := range targets {
		artefactStart := time.Now()
		var out fmt.Stringer
		var err error
		switch strings.ToLower(target) {
		case "fig5":
			out, err = crowdlearn.RunFig5(lab)
		case "fig6":
			out, err = crowdlearn.RunFig6(lab)
		case "table1":
			out, err = crowdlearn.RunTable1(lab)
		case "table2":
			var set *crowdlearn.CampaignSet
			if set, err = campaignSet(); err == nil {
				out, err = set.Table2()
			}
		case "fig7":
			var set *crowdlearn.CampaignSet
			if set, err = campaignSet(); err == nil {
				out, err = set.Fig7()
			}
		case "table3":
			var set *crowdlearn.CampaignSet
			if set, err = campaignSet(); err == nil {
				out = set.Table3()
			}
		case "fig8":
			out, err = crowdlearn.RunFig8(lab)
		case "fig9":
			out, err = crowdlearn.RunFig9(lab)
		case "fig10", "fig11":
			out, err = budgetSweep()
		case "strategies":
			out, err = crowdlearn.RunStrategyComparison(lab)
		case "robustness":
			var parts []string
			var spam *crowdlearn.SpamRobustnessResult
			if spam, err = crowdlearn.RunSpamRobustness(lab); err != nil {
				break
			}
			parts = append(parts, spam.String())
			var churn *crowdlearn.ChurnRobustnessResult
			if churn, err = crowdlearn.RunChurnRobustness(lab); err != nil {
				break
			}
			parts = append(parts, churn.String())
			out = stringsJoiner(strings.Join(parts, "\n"))
		case "faults":
			out, err = crowdlearn.RunFaults(lab)
		case "report":
			out, err = crowdlearn.RunReport(lab)
		case "table2multi":
			seedList := make([]int64, *seeds)
			for i := range seedList {
				seedList[i] = *seed + int64(i)
			}
			out, err = crowdlearn.RunMultiSeed(cfg, seedList)
		case "ablations":
			var parts []string
			var mic *crowdlearn.AblationResult
			if mic, err = crowdlearn.RunAblations(lab); err != nil {
				break
			}
			parts = append(parts, mic.String())
			var cq *crowdlearn.CQCAblationResult
			if cq, err = crowdlearn.RunCQCAblation(lab); err != nil {
				break
			}
			parts = append(parts, cq.String())
			var ba *crowdlearn.BanditAblationResult
			if ba, err = crowdlearn.RunBanditAblation(lab); err != nil {
				break
			}
			parts = append(parts, ba.String())
			out = stringsJoiner(strings.Join(parts, "\n"))
		default:
			return fmt.Errorf("unknown artefact %q (want fig5..fig11, table1..table3, ablations, strategies, robustness, faults, report, table2multi, all)", target)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", target, err)
		}
		fmt.Println(out.String())
		fmt.Printf("[%s regenerated in %v]\n\n", target, time.Since(artefactStart).Round(time.Millisecond))
		if *outDir != "" {
			path := filepath.Join(*outDir, target+".txt")
			if err := os.WriteFile(path, []byte(out.String()), 0o644); err != nil {
				return fmt.Errorf("archive %s: %w", target, err)
			}
		}
	}
	return nil
}

// archiveCampaigns writes each scheme's full campaign record as JSON.
func archiveCampaigns(dir string, set *crowdlearn.CampaignSet) error {
	for name, res := range set.Results {
		path := filepath.Join(dir, "campaign-"+name+".json")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("archive campaign %s: %w", name, err)
		}
		if err := res.Export(f); err != nil {
			f.Close()
			return fmt.Errorf("archive campaign %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("archive campaign %s: %w", name, err)
		}
	}
	return nil
}

// stringsJoiner adapts a plain string to fmt.Stringer.
type stringsJoiner string

func (s stringsJoiner) String() string { return string(s) }
