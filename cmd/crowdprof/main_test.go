package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/obs"
	"github.com/crowdlearn/crowdlearn/internal/parallel"
	"github.com/crowdlearn/crowdlearn/internal/prof"
)

// recordedTraces produces two real profiled cycle-shaped traces and
// returns them JSON-encoded in the service envelope.
func recordedTraces(t *testing.T) []byte {
	t.Helper()
	tr := obs.NewTracer(8)
	tr.SetSampler(prof.AllocSampler{})
	p := prof.New(nil)
	for cycle := 0; cycle < 2; cycle++ {
		ct := tr.Begin(cycle, "morning")
		sp := ct.Span("committee.vote")
		rec := p.Loop("committee.vote")
		bufs := make([][]byte, 64) // per-index slots force heap allocations the sampler can see
		parallel.ForObs(4, 64, rec.Obs(), func(i int) {
			bufs[i] = make([]byte, 256)
			s := 0.0
			for j := 1; j < 500; j++ {
				s += 1.0 / float64(j)
			}
			bufs[i][0] = byte(s)
		})
		rec.Annotate(sp)
		sp.SetSimulated(2 * time.Second)
		sp.End()
		inner := ct.Span("crowd.submit")
		inner.Child("crowd.wait").End()
		inner.End()
		ct.End()
	}
	raw, err := json.Marshal(struct {
		Traces []*obs.CycleTrace `json:"traces"`
	}{Traces: tr.Recent(0)})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestDecodeEnvelopeAndBareArray(t *testing.T) {
	raw := recordedTraces(t)
	traces, err := decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("envelope decoded %d traces", len(traces))
	}

	bare, err := json.Marshal(traces)
	if err != nil {
		t.Fatal(err)
	}
	traces, err = decode(bare)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("bare array decoded %d traces", len(traces))
	}

	if _, err := decode([]byte(`{"nope": 1}`)); err == nil {
		t.Fatal("junk input must fail decoding")
	}
}

func TestAggregateBuildsStageAndWorkerBreakdown(t *testing.T) {
	traces, err := decode(recordedTraces(t))
	if err != nil {
		t.Fatal(err)
	}
	rep := aggregate(traces)
	if rep.Cycles != 2 || rep.CycleWall <= 0 {
		t.Fatalf("report header %+v", rep)
	}
	byName := map[string]*stageReport{}
	for _, st := range rep.Stages {
		byName[st.Stage] = st
	}
	vote := byName["committee.vote"]
	if vote == nil || vote.Count != 2 {
		t.Fatalf("committee.vote aggregate %+v", vote)
	}
	if vote.Loops != 2 || vote.Workers < 1 || len(vote.PerWorker) != vote.Workers {
		t.Fatalf("per-worker breakdown missing: %+v", vote)
	}
	if vote.Busy <= 0 {
		t.Fatalf("busy not aggregated: %+v", vote)
	}
	var items int64
	for _, wp := range vote.PerWorker {
		items += wp.Items
	}
	if items != 128 { // 2 loops x 64 items
		t.Fatalf("per-worker items sum %d", items)
	}
	if vote.AllocBytes <= 0 {
		t.Fatalf("alloc attribution missing: %+v", vote)
	}
	// Self time of crowd.submit excludes its crowd.wait child.
	submit := byName["crowd.submit"]
	if submit == nil || submit.Self > submit.Wall {
		t.Fatalf("self-time accounting broken: %+v", submit)
	}
	if u := vote.utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization %v", u)
	}
}

// pipelinedTraces builds cycle roots with controlled start times:
// cycle 1 starts 60ms into cycle 0's 100ms window, as a pipelined
// campaign produces when commit work overlaps the next compute.
func pipelinedTraces(t *testing.T) []*obs.CycleTrace {
	t.Helper()
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	mk := func(cycle int, offset, wall time.Duration) *obs.CycleTrace {
		return &obs.CycleTrace{Cycle: cycle, Context: "morning", Root: &obs.Span{
			Name:  obs.SpanCycle,
			Start: base.Add(offset),
			Wall:  wall,
		}}
	}
	return []*obs.CycleTrace{
		mk(0, 0, 100*time.Millisecond),
		mk(1, 60*time.Millisecond, 100*time.Millisecond),
	}
}

func TestAggregatePipelineOverlap(t *testing.T) {
	rep := aggregate(pipelinedTraces(t))
	if rep.CycleWall != 200*time.Millisecond {
		t.Fatalf("summed cycle wall %v", rep.CycleWall)
	}
	if rep.PipelineWall != 160*time.Millisecond {
		t.Fatalf("pipeline wall %v, want interval union 160ms", rep.PipelineWall)
	}
	if rep.Overlap != 40*time.Millisecond {
		t.Fatalf("overlap %v, want 40ms", rep.Overlap)
	}
	if len(rep.Timeline) != 2 {
		t.Fatalf("timeline %+v", rep.Timeline)
	}
	if sp := rep.Timeline[1]; sp.Cycle != 1 || sp.Offset != 60*time.Millisecond || sp.Overlap != 40*time.Millisecond {
		t.Fatalf("cycle 1 timeline entry %+v", sp)
	}
	if sp := rep.Timeline[0]; sp.Overlap != 0 {
		t.Fatalf("cycle 0 must not overlap a predecessor: %+v", sp)
	}

	var out bytes.Buffer
	renderText(&out, rep)
	text := out.String()
	for _, want := range []string{"pipeline wall 160.00ms", "overlap 40.00ms", "PIPELINE TIMELINE", "OVERLAP(prev)"} {
		if !strings.Contains(text, want) {
			t.Fatalf("overlap rendering missing %q:\n%s", want, text)
		}
	}
}

// TestAggregateSequentialTraces pins the non-pipelined and legacy
// shapes: back-to-back cycles report zero overlap and no timeline
// section, and roots without start times fall back to a flat sequence.
func TestAggregateSequentialTraces(t *testing.T) {
	trs := pipelinedTraces(t)
	trs[1].Root.Start = trs[0].Root.Start.Add(100 * time.Millisecond)
	rep := aggregate(trs)
	if rep.PipelineWall != rep.CycleWall || rep.Overlap != 0 {
		t.Fatalf("sequential traces: pipeline %v overlap %v vs cycle wall %v",
			rep.PipelineWall, rep.Overlap, rep.CycleWall)
	}
	var out bytes.Buffer
	renderText(&out, rep)
	if strings.Contains(out.String(), "PIPELINE TIMELINE") {
		t.Fatalf("no-overlap run must not render a timeline:\n%s", out.String())
	}

	trs[0].Root.Start, trs[1].Root.Start = time.Time{}, time.Time{}
	rep = aggregate(trs)
	if rep.PipelineWall != rep.CycleWall || rep.Overlap != 0 || len(rep.Timeline) != 0 {
		t.Fatalf("legacy traces without starts: %+v", rep)
	}
}

func TestRunRendersTextAndJSON(t *testing.T) {
	raw := recordedTraces(t)

	var out bytes.Buffer
	if err := run(nil, bytes.NewReader(raw), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"STAGE", "committee.vote", "PER-WORKER BREAKDOWN", "WORKER", "UTIL"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text output missing %q:\n%s", want, text)
		}
	}

	out.Reset()
	if err := run([]string{"-format", "json"}, bytes.NewReader(raw), &out); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 2 || len(rep.Stages) == 0 {
		t.Fatalf("json report %+v", rep)
	}

	if err := run([]string{"-format", "xml"}, bytes.NewReader(raw), &out); err == nil {
		t.Fatal("unknown format must fail")
	}
	if err := run(nil, strings.NewReader("[]"), &out); err == nil {
		t.Fatal("empty trace array must fail")
	}
}

func TestRunReadsFile(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	if err := os.WriteFile(path, recordedTraces(t), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-i", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "committee.vote") {
		t.Fatalf("file input not rendered:\n%s", out.String())
	}
}
