// Command crowdprof renders recorded cycle traces as per-stage,
// per-worker performance breakdowns — the reading end of the profiling
// subsystem. It consumes the JSON the service's GET /trace endpoint
// returns ({"traces": [...]}) or a bare array of cycle traces (what a
// benchmark dumps via CROWDLEARN_TRACE_OUT), aggregates spans by stage,
// and prints a flame-style text table: wall time, self time (wall minus
// children), share of elapsed cycle time, busy time and worker
// utilization for profiled parallel stages, and allocation attribution
// when traces carry sampler deltas.
//
// Cycle roots are placed on the wall clock via their recorded start
// times rather than assumed to run back to back: when a pipelined
// campaign overlaps cycle N+1's compute with cycle N's commit, the
// header reports the interval-union pipeline wall alongside the summed
// cycle wall, a PIPELINE TIMELINE section shows each cycle's offset and
// its overlap with the previous one, and %CYCLE is taken against the
// pipeline wall (so stage shares can sum past 100% under overlap).
//
// Usage:
//
//	curl -s localhost:8080/trace?n=50 | crowdprof
//	crowdprof -i trace.json -format json
//
// The per-worker section decodes the "parallel" span attribute the loop
// profiler attaches, turning a multi-worker slowdown (e.g. workers=4
// running slower than workers=1) into a quantitative diagnosis: low
// utilization with high per-worker wait means the loop's items are too
// cheap for the fan-out.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/obs"
	"github.com/crowdlearn/crowdlearn/internal/prof"
)

// stageReport is one stage's aggregate across every input trace.
type stageReport struct {
	Stage string `json:"stage"`
	// Count is the number of spans with this stage name.
	Count int `json:"count"`
	// Wall/Self/Simulated/Busy are summed durations; Self is wall minus
	// the wall of direct children (time spent in the stage itself).
	Wall      time.Duration `json:"wallNanos"`
	Self      time.Duration `json:"selfNanos"`
	Simulated time.Duration `json:"simulatedNanos,omitempty"`
	Busy      time.Duration `json:"busyNanos,omitempty"`
	// AllocBytes/Allocs are summed sampler deltas.
	AllocBytes int64 `json:"allocBytes,omitempty"`
	Allocs     int64 `json:"allocObjects,omitempty"`
	// Errors counts failed spans.
	Errors int `json:"errors,omitempty"`
	// Workers is the worker count of the most recent profiled loop; 0
	// for unprofiled stages.
	Workers int `json:"workers,omitempty"`
	// Loops counts profiled parallel loops folded into PerWorker.
	Loops int `json:"loops,omitempty"`
	// Idle is the summed paid-but-unused worker time of profiled loops.
	Idle time.Duration `json:"idleNanos,omitempty"`
	// PerWorker accumulates the profiled loops' per-slot records.
	PerWorker []prof.WorkerProfile `json:"perWorker,omitempty"`
}

// utilization is the stage's busy share of paid worker time.
func (s *stageReport) utilization() float64 {
	denom := s.Busy + s.Idle
	if denom <= 0 {
		return 0
	}
	return float64(s.Busy) / float64(denom)
}

// cycleSpan is one cycle root on the wall-clock timeline: its offset
// from the earliest recorded cycle start, its wall time, and how much
// of it ran concurrently with the previous cycle.
type cycleSpan struct {
	Cycle   int           `json:"cycle"`
	Offset  time.Duration `json:"offsetNanos"`
	Wall    time.Duration `json:"wallNanos"`
	Overlap time.Duration `json:"overlapNanos,omitempty"`
}

// report is the full aggregate crowdprof renders.
type report struct {
	Cycles int `json:"cycles"`
	// CycleWall is the summed wall time of the cycle roots.
	CycleWall time.Duration `json:"cycleWallNanos"`
	// PipelineWall is the wall-clock union of the cycle roots'
	// [Start, Start+Wall] intervals. Pipelined campaigns overlap cycle
	// N+1's compute with cycle N's commit, so CycleWall overstates
	// elapsed time; PipelineWall is what a clock on the wall saw.
	PipelineWall time.Duration `json:"pipelineWallNanos,omitempty"`
	// Overlap is CycleWall minus PipelineWall: the total cycle time
	// that ran concurrently with another cycle.
	Overlap time.Duration `json:"overlapNanos,omitempty"`
	// Timeline lists the cycle roots in wall-clock order when the
	// traces carry start times.
	Timeline []cycleSpan    `json:"timeline,omitempty"`
	Stages   []*stageReport `json:"stages"`
}

// decode accepts either the service's TraceResponse envelope or a bare
// trace array.
func decode(data []byte) ([]*obs.CycleTrace, error) {
	var envelope struct {
		Traces []*obs.CycleTrace `json:"traces"`
	}
	if err := json.Unmarshal(data, &envelope); err == nil && len(envelope.Traces) > 0 {
		return envelope.Traces, nil
	}
	var bare []*obs.CycleTrace
	if err := json.Unmarshal(data, &bare); err != nil {
		return nil, fmt.Errorf("crowdprof: input is neither a /trace response nor a trace array: %w", err)
	}
	return bare, nil
}

// loopProfile re-types the "parallel" span attribute, which JSON
// decoding leaves as map[string]any, back into the profiler's record.
func loopProfile(attr any) (prof.LoopProfile, bool) {
	if attr == nil {
		return prof.LoopProfile{}, false
	}
	if lp, ok := attr.(prof.LoopProfile); ok {
		return lp, true // in-process traces carry the typed value
	}
	raw, err := json.Marshal(attr)
	if err != nil {
		return prof.LoopProfile{}, false
	}
	var lp prof.LoopProfile
	if err := json.Unmarshal(raw, &lp); err != nil {
		return prof.LoopProfile{}, false
	}
	return lp, lp.Workers > 0
}

// aggregate folds every span tree into per-stage reports.
func aggregate(traces []*obs.CycleTrace) *report {
	rep := &report{}
	stages := make(map[string]*stageReport)
	var walk func(sp *obs.Span)
	walk = func(sp *obs.Span) {
		if sp == nil {
			return
		}
		st, ok := stages[sp.Name]
		if !ok {
			st = &stageReport{Stage: sp.Name}
			stages[sp.Name] = st
		}
		st.Count++
		st.Wall += sp.Wall
		st.Simulated += sp.Simulated
		st.Busy += sp.Busy
		st.AllocBytes += sp.AllocBytes
		st.Allocs += sp.Allocs
		if sp.Err != "" {
			st.Errors++
		}
		self := sp.Wall
		for _, c := range sp.Children {
			self -= c.Wall
			walk(c)
		}
		if self < 0 {
			self = 0
		}
		st.Self += self
		if lp, ok := loopProfile(sp.Attrs["parallel"]); ok {
			st.Loops++
			st.Workers = lp.Workers
			st.Idle += lp.Idle()
			for len(st.PerWorker) < len(lp.PerWorker) {
				st.PerWorker = append(st.PerWorker, prof.WorkerProfile{})
			}
			for i, w := range lp.PerWorker {
				st.PerWorker[i].Busy += w.Busy
				st.PerWorker[i].Wait += w.Wait
				st.PerWorker[i].Chunks += w.Chunks
				st.PerWorker[i].Items += w.Items
			}
		}
	}
	for _, tr := range traces {
		if tr == nil || tr.Root == nil {
			continue
		}
		rep.Cycles++
		rep.CycleWall += tr.Root.Wall
		walk(tr.Root)
	}
	timeline(rep, traces)
	for _, st := range stages {
		rep.Stages = append(rep.Stages, st)
	}
	sort.Slice(rep.Stages, func(a, b int) bool {
		if rep.Stages[a].Wall != rep.Stages[b].Wall {
			return rep.Stages[a].Wall > rep.Stages[b].Wall
		}
		return rep.Stages[a].Stage < rep.Stages[b].Stage
	})
	return rep
}

// timeline fills the report's pipeline-overlap fields from the cycle
// roots' start times. Roots without a recorded start (traces from
// before start times were captured) are treated as strictly
// sequential and contribute their full wall time to PipelineWall.
func timeline(rep *report, traces []*obs.CycleTrace) {
	type interval struct {
		cycle      int
		start, end time.Time
	}
	var ivs []interval
	var sequential time.Duration
	for _, tr := range traces {
		if tr == nil || tr.Root == nil {
			continue
		}
		if tr.Root.Start.IsZero() {
			sequential += tr.Root.Wall
			continue
		}
		ivs = append(ivs, interval{tr.Cycle, tr.Root.Start, tr.Root.Start.Add(tr.Root.Wall)})
	}
	sort.Slice(ivs, func(a, b int) bool {
		if !ivs[a].start.Equal(ivs[b].start) {
			return ivs[a].start.Before(ivs[b].start)
		}
		return ivs[a].cycle < ivs[b].cycle
	})
	var union time.Duration
	var frontier time.Time // end of the merged interval run so far
	for i, iv := range ivs {
		sp := cycleSpan{Cycle: iv.cycle, Offset: iv.start.Sub(ivs[0].start), Wall: iv.end.Sub(iv.start)}
		if i > 0 && iv.start.Before(frontier) {
			sp.Overlap = frontier.Sub(iv.start)
			if sp.Overlap > sp.Wall {
				sp.Overlap = sp.Wall
			}
		}
		rep.Timeline = append(rep.Timeline, sp)
		if i == 0 || !iv.start.Before(frontier) {
			union += iv.end.Sub(iv.start)
			frontier = iv.end
		} else if iv.end.After(frontier) {
			union += iv.end.Sub(frontier)
			frontier = iv.end
		}
	}
	rep.PipelineWall = union + sequential
	if rep.Overlap = rep.CycleWall - rep.PipelineWall; rep.Overlap < 0 {
		rep.Overlap = 0
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

func fmtBytes(b int64) string {
	switch {
	case b == 0:
		return "-"
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	}
}

// renderText prints the flame-style stage table plus, for profiled
// parallel stages, the per-worker breakdown and an attribution line.
func renderText(w io.Writer, rep *report) {
	fmt.Fprintf(w, "crowdprof: %d cycle(s), total cycle wall %s", rep.Cycles, fmtDur(rep.CycleWall))
	if rep.Overlap > 0 {
		fmt.Fprintf(w, ", pipeline wall %s (overlap %s, %.0f%% of cycle time ran concurrently)",
			fmtDur(rep.PipelineWall), fmtDur(rep.Overlap), 100*float64(rep.Overlap)/float64(rep.CycleWall))
	}
	fmt.Fprintf(w, "\n\n")
	// With pipelining, elapsed time is the interval union, so stage
	// shares are taken against the pipeline wall — they can legitimately
	// sum past 100% when cycles overlap.
	cycleDenom := rep.CycleWall
	if rep.PipelineWall > 0 {
		cycleDenom = rep.PipelineWall
	}
	fmt.Fprintf(w, "%-16s %6s %10s %10s %7s %10s %10s %6s %10s %8s\n",
		"STAGE", "COUNT", "WALL", "SELF", "%CYCLE", "MEAN", "BUSY", "UTIL", "ALLOC", "OBJECTS")
	for _, st := range rep.Stages {
		pct, util, mean := "-", "-", "-"
		if cycleDenom > 0 && st.Stage != obs.SpanCycle {
			pct = fmt.Sprintf("%.1f%%", 100*float64(st.Wall)/float64(cycleDenom))
		}
		if st.Loops > 0 {
			util = fmt.Sprintf("%.0f%%", 100*st.utilization())
		}
		if st.Count > 0 {
			mean = fmtDur(st.Wall / time.Duration(st.Count))
		}
		objects := "-"
		if st.Allocs > 0 {
			objects = fmt.Sprintf("%d", st.Allocs)
		}
		fmt.Fprintf(w, "%-16s %6d %10s %10s %7s %10s %10s %6s %10s %8s\n",
			st.Stage, st.Count, fmtDur(st.Wall), fmtDur(st.Self), pct, mean,
			fmtDur(st.Busy), util, fmtBytes(st.AllocBytes), objects)
	}

	if rep.Overlap > 0 && len(rep.Timeline) > 0 {
		fmt.Fprintf(w, "\nPIPELINE TIMELINE (cycle roots on the wall clock)\n")
		fmt.Fprintf(w, "  %-6s %12s %10s %12s\n", "CYCLE", "START", "WALL", "OVERLAP(prev)")
		for _, sp := range rep.Timeline {
			overlap := "-"
			if sp.Overlap > 0 {
				overlap = fmtDur(sp.Overlap)
			}
			fmt.Fprintf(w, "  %-6d %12s %10s %12s\n", sp.Cycle, fmtDur(sp.Offset), fmtDur(sp.Wall), overlap)
		}
	}

	parallelStages := make([]*stageReport, 0, len(rep.Stages))
	for _, st := range rep.Stages {
		if st.Loops > 0 {
			parallelStages = append(parallelStages, st)
		}
	}
	if len(parallelStages) == 0 {
		return
	}
	fmt.Fprintf(w, "\nPER-WORKER BREAKDOWN (profiled parallel stages)\n")
	for _, st := range parallelStages {
		fmt.Fprintf(w, "\n%s: %d loop(s) at workers=%d, busy %s, idle %s, utilization %.0f%%\n",
			st.Stage, st.Loops, st.Workers, fmtDur(st.Busy), fmtDur(st.Idle), 100*st.utilization())
		fmt.Fprintf(w, "  %-7s %10s %10s %8s %8s\n", "WORKER", "BUSY", "WAIT", "CHUNKS", "ITEMS")
		for i, wp := range st.PerWorker {
			fmt.Fprintf(w, "  %-7d %10s %10s %8d %8d\n", i, fmtDur(wp.Busy), fmtDur(wp.Wait), wp.Chunks, wp.Items)
		}
		// The attribution sentence: where did the wall time go?
		if st.utilization() < 0.5 && st.Workers > 1 {
			var wait time.Duration
			for _, wp := range st.PerWorker {
				wait += wp.Wait
			}
			fmt.Fprintf(w, "  -> workers idle %.0f%% of paid time (scheduling wait %s): "+
				"per-item work too small for workers=%d; fewer workers or larger cycles would run faster\n",
				100*(1-st.utilization()), fmtDur(wait), st.Workers)
		}
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crowdprof:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("crowdprof", flag.ContinueOnError)
	input := fs.String("i", "-", "input file with /trace JSON or a trace array (- for stdin)")
	format := fs.String("format", "text", "output format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var data []byte
	var err error
	if *input == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(*input)
	}
	if err != nil {
		return err
	}
	traces, err := decode(data)
	if err != nil {
		return err
	}
	if len(traces) == 0 {
		return fmt.Errorf("no traces in input")
	}
	rep := aggregate(traces)
	switch strings.ToLower(*format) {
	case "text":
		renderText(stdout, rep)
		return nil
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	default:
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
}
