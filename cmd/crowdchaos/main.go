// Command crowdchaos runs the seeded chaos catalog against the
// supervised campaign runtime and reports, per scenario, whether the
// four supervision invariants held:
//
//  1. byte-identical recovery — a campaign killed at any scripted point
//     restarts into exactly the state an uninterrupted run reaches;
//  2. failure-domain isolation — sibling campaigns never miss a cycle
//     or restart because of a neighbour's failures;
//  3. bounded restarts — restart counts stay within the policy budget,
//     and budget exhaustion quarantines exactly the scripted campaigns;
//  4. observable degradation — breaker trips and quarantines appear in
//     the exported metrics.
//
// Usage:
//
//	crowdchaos [-run substring] [-dir base] [-log-level warn] [-list] [-v]
//
// Every scenario is deterministic: same binary, same verdicts. The
// process exits non-zero if any scenario fails, making it suitable as a
// CI gate (`make chaos` runs the same catalog through `go test -race`).
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/chaos"
	"github.com/crowdlearn/crowdlearn/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crowdchaos:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("crowdchaos", flag.ContinueOnError)
	filter := fs.String("run", "", "only scenarios whose name contains this substring")
	baseDir := fs.String("dir", "", "base directory for campaign state (default: a temp dir, removed afterwards)")
	logLevel := fs.String("log-level", "error", "supervisor log level: debug, info, warn or error")
	list := fs.Bool("list", false, "list scenario names and exit")
	verbose := fs.Bool("v", false, "print per-campaign detail for every scenario")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("invalid -log-level %q: %w", *logLevel, err)
	}

	catalog := chaos.Catalog()
	selected := catalog[:0]
	for _, sc := range catalog {
		if *filter == "" || strings.Contains(sc.Name, *filter) {
			selected = append(selected, sc)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("no scenario matches -run %q", *filter)
	}
	if *list {
		for _, sc := range selected {
			fmt.Fprintf(stdout, "%-32s seed=%-3d cycles=%d campaigns=%d\n",
				sc.Name, sc.Seed, sc.Cycles, len(sc.Campaigns))
		}
		return nil
	}

	dir := *baseDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "crowdchaos-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	fmt.Fprintln(stdout, "building laboratory (shared dataset + pilot study)...")
	started := time.Now()
	env, err := experiments.NewEnv(experiments.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "laboratory ready in %v; running %d scenarios\n", time.Since(started).Round(time.Millisecond), len(selected))

	runner := &chaos.Runner{
		Env:    env,
		Logger: slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})),
	}
	failed := 0
	for _, sc := range selected {
		scStarted := time.Now()
		res := runner.Run(sc, filepath.Join(dir, sc.Name))
		problems := res.Check()
		status := "PASS"
		if len(problems) > 0 {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(stdout, "%s  %-32s %8v\n", status, sc.Name, time.Since(scStarted).Round(time.Millisecond))
		for _, p := range problems {
			fmt.Fprintf(stdout, "      problem: %s\n", p)
		}
		if *verbose {
			for _, c := range res.Campaigns {
				fmt.Fprintf(stdout, "      %s committed=%d restarts=%d panics=%d stalls=%d quarantined=%v\n",
					c.ID, c.Committed, c.Health.TotalRestarts, c.PanicsFired, c.StallsFired, c.Quarantined)
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d scenarios failed", failed, len(selected))
	}
	fmt.Fprintf(stdout, "all %d scenarios passed in %v\n", len(selected), time.Since(started).Round(time.Millisecond))
	return nil
}
