package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}, io.Discard); err == nil {
		t.Error("unknown flag must error")
	}
	if err := run([]string{"-log-level", "loud"}, io.Discard); err == nil || !strings.Contains(err.Error(), "log-level") {
		t.Errorf("invalid log level must error, got %v", err)
	}
	if err := run([]string{"-run", "no-such-scenario"}, io.Discard); err == nil || !strings.Contains(err.Error(), "no scenario") {
		t.Errorf("empty selection must error, got %v", err)
	}
}

func TestListPrintsCatalog(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"panic-mid-run", "outage-trips-breaker", "quarantine-mid-outage", "three-campaign-carnage"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

func TestListHonoursFilter(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list", "-run", "stall"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !strings.Contains(line, "stall") {
			t.Errorf("filtered list leaked %q", line)
		}
	}
}
