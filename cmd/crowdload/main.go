// Command crowdload is the overload harness for the assessment
// service: it stands up two real HTTP servers around a deterministic
// stub scheme — one with adaptive admission control (internal/admission
// wired through service.WithAdmission), one with the plain unbounded
// queue — and drives both through the same open-loop arrival ramp
// (0.5×, 1×, 1.5×, 2× of measured saturation) with hundreds to
// thousands of concurrent POST /assess clients.
//
// Per step it records offered load, completions, shed (degraded)
// responses, 429 rejections, p50/p99 latency, throughput and goodput
// (in-SLO responses per second; AI-only shed responses count — a usable
// label within the deadline is the point of degrading instead of
// queueing). The run is committed as the BENCH_service.json trajectory
// in the cmd/benchjson style: writing with -o pushes the previous
// current record into a bounded history, so the file carries how
// overload behaviour evolves across PRs.
//
// The headline number is goodputRatio: goodput at 2× saturation over
// peak goodput. With admission control the service sheds to AI-only
// labels and keeps the ratio near 1; without it the unbounded queue
// grows until every response misses the SLO and the ratio collapses.
//
// With -gate the run doubles as the CI load gate: the committed
// baseline document must itself show the property (admission arm
// goodputRatio >= -min-goodput-ratio), the fresh run must reproduce it,
// and the fresh baseline arm must collapse (<= -max-baseline-ratio) —
// proving the controller, not the machine, holds goodput up. The fresh
// record is written to -o first either way so CI can upload it as an
// artifact on failure.
//
// Usage:
//
//	crowdload -o BENCH_service.json                                  # regenerate (make load-json)
//	crowdload -gate BENCH_service.json -o artefacts/load-latest.json # CI gate (make load-gate)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/admission"
	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/obs"
	"github.com/crowdlearn/crowdlearn/internal/service"
	"github.com/crowdlearn/crowdlearn/internal/supervise"
)

// loadScheme is the deterministic stand-in for a trained scheme: a full
// sensing cycle burns a fixed service time, the degraded fast path a
// fixed (much smaller) one, and labels derive from the image ID so the
// handler always gets valid distributions.
type loadScheme struct {
	serviceTime  time.Duration
	degradedTime time.Duration
}

func (s *loadScheme) Name() string { return "load-stub" }

func (s *loadScheme) RunCycle(in core.CycleInput) (core.CycleOutput, error) {
	time.Sleep(s.serviceTime)
	return s.output(in, false), nil
}

// AssessDegraded is the AI-only shed tier the admission ladder degrades
// to.
func (s *loadScheme) AssessDegraded(in core.CycleInput) (core.CycleOutput, error) {
	time.Sleep(s.degradedTime)
	return s.output(in, true), nil
}

func (s *loadScheme) output(in core.CycleInput, degraded bool) core.CycleOutput {
	out := core.CycleOutput{
		Distributions:  make([][]float64, len(in.Images)),
		AlgorithmDelay: s.serviceTime,
	}
	for i, im := range in.Images {
		d := make([]float64, imagery.NumLabels)
		d[im.ID%imagery.NumLabels] = 1
		out.Distributions[i] = d
		if degraded {
			out.Degraded = append(out.Degraded, i)
		}
	}
	return out
}

var _ core.Scheme = (*loadScheme)(nil)
var _ core.DegradedAssessor = (*loadScheme)(nil)

// StepRecord is one ramp step's client-side measurement.
type StepRecord struct {
	// Multiplier is the step's offered load as a fraction of measured
	// saturation.
	Multiplier float64 `json:"multiplier"`
	// OfferedRPS is the open-loop arrival rate.
	OfferedRPS float64 `json:"offeredRps"`
	// Offered counts requests launched this step.
	Offered int `json:"offered"`
	// Completed counts 2xx full-cycle responses.
	Completed int `json:"completed"`
	// Degraded counts 2xx shed (AI-only) responses.
	Degraded int `json:"degraded"`
	// Rejected counts 429 responses.
	Rejected int `json:"rejected"`
	// Errors counts transport failures and non-2xx/429 statuses.
	Errors int `json:"errors"`
	// Late counts 2xx responses that missed the SLO deadline.
	Late int `json:"late"`
	// P50Ms / P99Ms are response-latency percentiles over 2xx and 429
	// responses (milliseconds).
	P50Ms float64 `json:"p50Ms"`
	P99Ms float64 `json:"p99Ms"`
	// ThroughputRPS is 2xx responses per second of step wall time.
	ThroughputRPS float64 `json:"throughputRps"`
	// GoodputRPS is in-SLO 2xx responses per second of step wall time.
	GoodputRPS float64 `json:"goodputRps"`
}

// ArmReport is one server configuration's run through the ramp.
type ArmReport struct {
	// Name is "admission" or "baseline".
	Name string `json:"name"`
	// Admission reports whether the arm ran with the overload controller.
	Admission bool `json:"admission"`
	// Steps are the ramp measurements in offered-load order.
	Steps []StepRecord `json:"steps"`
	// PeakGoodputRPS is the best goodput over all steps.
	PeakGoodputRPS float64 `json:"peakGoodputRps"`
	// GoodputAt2xRPS is the goodput at the 2× saturation step.
	GoodputAt2xRPS float64 `json:"goodputAt2xRps"`
	// GoodputRatio is GoodputAt2xRPS / PeakGoodputRPS — the collapse
	// indicator the gate reads.
	GoodputRatio float64 `json:"goodputRatio"`
	// Controller is the admission controller's final snapshot (admission
	// arm only).
	Controller *admission.Snapshot `json:"controller,omitempty"`
}

// Report is one recorded harness run.
type Report struct {
	// RecordedAt stamps the record (RFC 3339 UTC).
	RecordedAt string `json:"recordedAt,omitempty"`
	// Goos/Goarch/NumCPU identify the recording machine.
	Goos   string `json:"goos"`
	Goarch string `json:"goarch"`
	NumCPU int    `json:"numCpu"`
	// SaturationRPS is the closed-loop measured single-worker capacity
	// the ramp multipliers scale.
	SaturationRPS float64 `json:"saturationRps"`
	// ServiceTimeMs / DegradedTimeMs / SLOMs echo the harness knobs.
	ServiceTimeMs  float64 `json:"serviceTimeMs"`
	DegradedTimeMs float64 `json:"degradedTimeMs"`
	SLOMs          float64 `json:"sloMs"`
	// Arms holds the admission and baseline runs.
	Arms []ArmReport `json:"arms"`
}

// Trajectory is the committed load document: the latest record plus the
// records it replaced, newest first, bounded by -retain.
type Trajectory struct {
	// Schema identifies the document version ("crowdlearn-load/1").
	Schema string `json:"schema"`
	// Current is the most recent record.
	Current *Report `json:"current"`
	// History holds prior records, newest first.
	History []*Report `json:"history,omitempty"`
}

// schemaV1 marks the load trajectory document format.
const schemaV1 = "crowdlearn-load/1"

// multipliers is the fixed open-loop ramp; the gate keys off the 2.0
// step so it is always present.
var multipliers = []float64{0.5, 1, 1.5, 2}

func main() {
	var (
		out          = flag.String("o", "", "write the trajectory document to this path (append-with-history)")
		gate         = flag.String("gate", "", "gate against this committed trajectory: exit non-zero when the property fails")
		retain       = flag.Int("retain", 12, "history records to retain in the output document")
		serviceTime  = flag.Duration("service-time", 4*time.Millisecond, "stub full-cycle service time")
		degradedTime = flag.Duration("degraded-time", 200*time.Microsecond, "stub AI-only shed-tier service time")
		slo          = flag.Duration("slo", 60*time.Millisecond, "end-to-end response deadline goodput is measured against")
		step         = flag.Duration("step", 2*time.Second, "duration of each ramp step")
		clientTO     = flag.Duration("client-timeout", 2*time.Second, "per-request client timeout")
		target       = flag.Duration("target", 5*time.Millisecond, "admission queue-delay target (CoDel)")
		minRatio     = flag.Float64("min-goodput-ratio", 0.8, "gate: minimum admission-arm goodput ratio at 2x saturation")
		maxBaseline  = flag.Float64("max-baseline-ratio", 0.5, "gate: maximum baseline-arm goodput ratio at 2x (must collapse)")
	)
	flag.Parse()

	if err := run(*out, *gate, *retain, *serviceTime, *degradedTime, *slo, *step, *clientTO, *target, *minRatio, *maxBaseline); err != nil {
		fmt.Fprintln(os.Stderr, "crowdload:", err)
		os.Exit(1)
	}
}

func run(out, gate string, retain int, serviceTime, degradedTime, slo, step, clientTO, target time.Duration, minRatio, maxBaseline float64) error {
	ds, err := imagery.Generate(imagery.DefaultConfig())
	if err != nil {
		return err
	}
	images := ds.Test
	if len(images) > 64 {
		images = images[:64]
	}

	// In gate mode the committed document must itself exhibit the
	// property: the trajectory is the proof, the fresh run the check
	// that it still reproduces.
	if gate != "" {
		if err := gateCommitted(gate, minRatio); err != nil {
			return err
		}
	}

	client := &http.Client{
		Timeout: clientTO,
		Transport: &http.Transport{
			MaxIdleConns:        4096,
			MaxIdleConnsPerHost: 4096,
		},
	}

	scheme := &loadScheme{serviceTime: serviceTime, degradedTime: degradedTime}
	saturation, err := measureSaturation(scheme, images, client)
	if err != nil {
		return fmt.Errorf("saturation probe: %w", err)
	}
	fmt.Printf("saturation: %.0f req/s (service time %v)\n", saturation, serviceTime)

	rep := &Report{
		RecordedAt:     time.Now().UTC().Format(time.RFC3339),
		Goos:           runtime.GOOS,
		Goarch:         runtime.GOARCH,
		NumCPU:         runtime.NumCPU(),
		SaturationRPS:  saturation,
		ServiceTimeMs:  float64(serviceTime) / float64(time.Millisecond),
		DegradedTimeMs: float64(degradedTime) / float64(time.Millisecond),
		SLOMs:          float64(slo) / float64(time.Millisecond),
	}

	for _, name := range []string{"admission", "baseline"} {
		ar, err := runArm(name, scheme, images, client, saturation, step, slo, target)
		if err != nil {
			return fmt.Errorf("arm %s: %w", name, err)
		}
		rep.Arms = append(rep.Arms, *ar)
		fmt.Printf("arm %-9s peak %.0f req/s, at 2x %.0f req/s, ratio %.2f\n",
			name, ar.PeakGoodputRPS, ar.GoodputAt2xRPS, ar.GoodputRatio)
	}

	if out != "" {
		if err := writeTrajectory(out, rep, retain); err != nil {
			return err
		}
		fmt.Println("wrote", out)
	}

	if gate != "" {
		return gateFresh(rep, minRatio, maxBaseline)
	}
	return nil
}

// runArm stands up one server configuration and drives the full ramp
// against it.
func runArm(name string, scheme *loadScheme, images []*imagery.Image, client *http.Client, saturation float64, step, slo, target time.Duration) (*ArmReport, error) {
	var opts []service.Option
	withAdmission := name == "admission"
	if withAdmission {
		opts = append(opts,
			service.WithAdmission(admission.Config{
				Target:        target,
				MinLimit:      1,
				MaxLimit:      32,
				InitialLimit:  4,
				LatencyTarget: slo / 2,
			}),
			service.WithMetrics(obs.NewRegistry()))
	}
	svc, url, shutdown, err := startServer(scheme, images, opts...)
	if err != nil {
		return nil, err
	}
	defer shutdown()

	ar := &ArmReport{Name: name, Admission: withAdmission}
	for _, m := range multipliers {
		rec := runStep(url, client, images, m, m*saturation, step, slo)
		ar.Steps = append(ar.Steps, rec)
		if rec.GoodputRPS > ar.PeakGoodputRPS {
			ar.PeakGoodputRPS = rec.GoodputRPS
		}
		if m == 2 {
			ar.GoodputAt2xRPS = rec.GoodputRPS
		}
	}
	if ar.PeakGoodputRPS > 0 {
		ar.GoodputRatio = ar.GoodputAt2xRPS / ar.PeakGoodputRPS
	}
	if withAdmission {
		if snap := svc.Stats().Admission; snap != nil {
			ar.Controller = snap
		}
	}
	return ar, nil
}

// startServer builds a service around the scheme and serves its HTTP
// handler on a loopback listener.
func startServer(scheme *loadScheme, images []*imagery.Image, opts ...service.Option) (*service.Service, string, func(), error) {
	svc, err := service.New(scheme, opts...)
	if err != nil {
		return nil, "", nil, err
	}
	svc.Start()
	h, err := service.NewHandler(svc, images)
	if err != nil {
		return nil, "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	srv := &http.Server{Handler: h}
	supervise.Go("crowdload.http", nil, func() { srv.Serve(ln) })
	shutdown := func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	}
	return svc, "http://" + ln.Addr().String(), shutdown, nil
}

// measureSaturation runs a short closed loop against a plain server to
// find the single-worker drain rate the ramp multipliers scale.
func measureSaturation(scheme *loadScheme, images []*imagery.Image, client *http.Client) (float64, error) {
	_, url, shutdown, err := startServer(scheme, images)
	if err != nil {
		return 0, err
	}
	defer shutdown()

	const workers = 4
	probe := 800 * time.Millisecond
	var completed int64
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(probe)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		supervise.Go(fmt.Sprintf("crowdload.probe.%d", w), nil, func() {
			defer wg.Done()
			for i := w; time.Now().Before(deadline); i++ {
				o := fire(client, url, images[i%len(images)].ID, "")
				if o.status == http.StatusOK {
					atomic.AddInt64(&completed, 1)
				}
			}
		})
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if completed == 0 || elapsed <= 0 {
		return 0, errors.New("no completions in probe window")
	}
	return float64(completed) / elapsed, nil
}

// outcome is one request's client-side observation.
type outcome struct {
	status  int
	shed    bool
	latency time.Duration
	err     error
}

// fire posts one single-image /assess request.
func fire(client *http.Client, url string, imageID int, campaign string) outcome {
	body, _ := json.Marshal(map[string]any{
		"context":  "morning",
		"imageIds": []int{imageID},
		"campaign": campaign,
	})
	started := time.Now()
	resp, err := client.Post(url+"/assess", "application/json", bytes.NewReader(body))
	if err != nil {
		return outcome{err: err, latency: time.Since(started)}
	}
	defer resp.Body.Close()
	var payload struct {
		Shed bool `json:"shed"`
	}
	dec := json.NewDecoder(resp.Body)
	_ = dec.Decode(&payload)
	_, _ = io.Copy(io.Discard, resp.Body)
	return outcome{status: resp.StatusCode, shed: payload.Shed, latency: time.Since(started)}
}

// runStep drives one open-loop arrival step: rate req/s for dur,
// arrivals scheduled on an absolute timeline (no coordinated omission —
// a slow server does not slow the arrival process down).
func runStep(url string, client *http.Client, images []*imagery.Image, multiplier, rate float64, dur, slo time.Duration) StepRecord {
	n := int(rate * dur.Seconds())
	if n < 1 {
		n = 1
	}
	interval := time.Duration(float64(dur) / float64(n))

	var (
		mu        sync.Mutex
		latencies []float64
		rec       = StepRecord{Multiplier: multiplier, OfferedRPS: rate, Offered: n}
	)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		supervise.Go(fmt.Sprintf("crowdload.client.%d", i), nil, func() {
			defer wg.Done()
			// Four campaigns share the ramp so the fair-share tier has
			// distinct buckets to arbitrate.
			o := fire(client, url, images[i%len(images)].ID, fmt.Sprintf("c%02d", i%4))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case o.err != nil:
				rec.Errors++
				return
			case o.status == http.StatusOK:
				if o.shed {
					rec.Degraded++
				} else {
					rec.Completed++
				}
				if o.latency > slo {
					rec.Late++
				}
			case o.status == http.StatusTooManyRequests:
				rec.Rejected++
			default:
				rec.Errors++
			}
			latencies = append(latencies, float64(o.latency)/float64(time.Millisecond))
		})
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	sort.Float64s(latencies)
	rec.P50Ms = percentile(latencies, 0.50)
	rec.P99Ms = percentile(latencies, 0.99)
	served := rec.Completed + rec.Degraded
	rec.ThroughputRPS = float64(served) / elapsed
	rec.GoodputRPS = float64(served-rec.Late) / elapsed
	return rec
}

// percentile reads p (0..1) from sorted ms latencies.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// gateCommitted asserts the committed trajectory document itself shows
// the property: its current admission arm holds goodput at 2×.
func gateCommitted(path string, minRatio float64) error {
	doc, err := loadTrajectory(path)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if doc == nil || doc.Current == nil {
		return fmt.Errorf("baseline %s: no current record", path)
	}
	arm := findArm(doc.Current, "admission")
	if arm == nil {
		return fmt.Errorf("baseline %s: no admission arm in current record", path)
	}
	if arm.GoodputRatio < minRatio {
		return fmt.Errorf("baseline %s: committed admission goodput ratio %.2f < %.2f — the committed trajectory no longer shows the property; regenerate with make load-json on a quiet machine",
			path, arm.GoodputRatio, minRatio)
	}
	fmt.Printf("committed %s: admission goodput ratio %.2f >= %.2f\n", path, arm.GoodputRatio, minRatio)
	return nil
}

// gateFresh asserts the fresh run reproduces the property: admission
// holds goodput at 2× saturation, the unprotected baseline collapses.
func gateFresh(rep *Report, minRatio, maxBaseline float64) error {
	adm := findArm(rep, "admission")
	base := findArm(rep, "baseline")
	if adm == nil || base == nil {
		return errors.New("fresh run missing an arm")
	}
	var failures []string
	if adm.GoodputRatio < minRatio {
		failures = append(failures, fmt.Sprintf(
			"admission arm goodput ratio %.2f < %.2f (goodput at 2x %.0f req/s, peak %.0f req/s)",
			adm.GoodputRatio, minRatio, adm.GoodputAt2xRPS, adm.PeakGoodputRPS))
	}
	if base.GoodputRatio > maxBaseline {
		failures = append(failures, fmt.Sprintf(
			"baseline arm goodput ratio %.2f > %.2f — the unprotected service did not collapse, so the comparison proves nothing",
			base.GoodputRatio, maxBaseline))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "GATE FAIL:", f)
		}
		return fmt.Errorf("%d gate failure(s)", len(failures))
	}
	fmt.Printf("GATE OK: admission ratio %.2f >= %.2f, baseline ratio %.2f <= %.2f\n",
		adm.GoodputRatio, minRatio, base.GoodputRatio, maxBaseline)
	return nil
}

// findArm returns the named arm of a report (nil if absent).
func findArm(rep *Report, name string) *ArmReport {
	for i := range rep.Arms {
		if rep.Arms[i].Name == name {
			return &rep.Arms[i]
		}
	}
	return nil
}

// loadTrajectory reads a trajectory document; a missing file returns
// (nil, nil).
func loadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var doc Trajectory
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	if doc.Schema != schemaV1 {
		return nil, fmt.Errorf("unknown schema %q (want %s)", doc.Schema, schemaV1)
	}
	return &doc, nil
}

// writeTrajectory appends rep to the document at path: the previous
// current record moves into the bounded history.
func writeTrajectory(path string, rep *Report, retain int) error {
	doc, err := loadTrajectory(path)
	if err != nil {
		return err
	}
	if doc == nil {
		doc = &Trajectory{Schema: schemaV1}
	}
	if doc.Current != nil {
		doc.History = append([]*Report{doc.Current}, doc.History...)
	}
	if retain >= 0 && len(doc.History) > retain {
		doc.History = doc.History[:retain]
	}
	doc.Current = rep
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
