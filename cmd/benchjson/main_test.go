package main

import (
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/crowdlearn/crowdlearn
cpu: Intel(R) Xeon(R)
BenchmarkRunCycleParallel/workers=1-8         	       5	 240000000 ns/op	  1024 B/op	      12 allocs/op
BenchmarkRunCycleParallel/workers=2-8         	      10	 126000000 ns/op	  1100 B/op	      14 allocs/op
BenchmarkRunCycleParallel/workers=4-8         	      18	  66000000 ns/op	  1200 B/op	      16 allocs/op
BenchmarkCommitteeVote-8                      	  200000	      6654 ns/op	      11 B/op	       0 allocs/op
PASS
ok  	github.com/crowdlearn/crowdlearn	12.345s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "Intel(R) Xeon(R)" {
		t.Errorf("header = %q/%q/%q", rep.Goos, rep.Goarch, rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkRunCycleParallel/workers=1-8" || b0.Iterations != 5 {
		t.Errorf("first benchmark = %+v", b0)
	}
	if b0.NsPerOp != 240000000 || *b0.BytesPerOp != 1024 || *b0.AllocsPerOp != 12 {
		t.Errorf("first benchmark units = %+v", b0)
	}
	vote := rep.Benchmarks[3]
	if *vote.AllocsPerOp != 0 {
		t.Errorf("vote allocs = %v, want 0", *vote.AllocsPerOp)
	}
}

func TestSpeedups(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	fam, ok := rep.Speedups["BenchmarkRunCycleParallel"]
	if !ok {
		t.Fatalf("no speedup family: %+v", rep.Speedups)
	}
	want := map[string]float64{"1": 1.0, "2": 240.0 / 126.0, "4": 240.0 / 66.0}
	for k, v := range want {
		if got := fam[k]; math.Abs(got-v) > 1e-9 {
			t.Errorf("speedup[%s] = %v, want %v", k, got, v)
		}
	}
	if _, ok := rep.Speedups["BenchmarkCommitteeVote"]; ok {
		t.Error("non-workers benchmark must not produce a speedup family")
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\n")); err == nil {
		t.Error("empty bench output must be rejected")
	}
}
