package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/crowdlearn/crowdlearn
cpu: Intel(R) Xeon(R)
BenchmarkRunCycleParallel/workers=1-8         	       5	 240000000 ns/op	  1024 B/op	      12 allocs/op
BenchmarkRunCycleParallel/workers=2-8         	      10	 126000000 ns/op	  1100 B/op	      14 allocs/op
BenchmarkRunCycleParallel/workers=4-8         	      18	  66000000 ns/op	  1200 B/op	      16 allocs/op
BenchmarkCommitteeVote-8                      	  200000	      6654 ns/op	      11 B/op	       0 allocs/op
PASS
ok  	github.com/crowdlearn/crowdlearn	12.345s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "Intel(R) Xeon(R)" {
		t.Errorf("header = %q/%q/%q", rep.Goos, rep.Goarch, rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkRunCycleParallel/workers=1-8" || b0.Iterations != 5 {
		t.Errorf("first benchmark = %+v", b0)
	}
	if b0.NsPerOp != 240000000 || *b0.BytesPerOp != 1024 || *b0.AllocsPerOp != 12 {
		t.Errorf("first benchmark units = %+v", b0)
	}
	vote := rep.Benchmarks[3]
	if *vote.AllocsPerOp != 0 {
		t.Errorf("vote allocs = %v, want 0", *vote.AllocsPerOp)
	}
	if b0.GoMaxProcs != 8 || b0.Workers != 1 {
		t.Errorf("first benchmark goMaxProcs/workers = %d/%d, want 8/1", b0.GoMaxProcs, b0.Workers)
	}
	if b4 := rep.Benchmarks[2]; b4.Workers != 4 {
		t.Errorf("workers=4 benchmark parsed workers %d", b4.Workers)
	}
	if vote.Workers != 0 || vote.GoMaxProcs != 8 {
		t.Errorf("vote goMaxProcs/workers = %d/%d, want 8/0", vote.GoMaxProcs, vote.Workers)
	}
}

// samplePipelined carries mode sub-benchmarks without a -cpu suffix,
// as a GOMAXPROCS=1 runner emits them.
const samplePipelined = `goos: linux
BenchmarkRunCyclePipelined/mode=sequential 30 200000000 ns/op
BenchmarkRunCyclePipelined/mode=pipelined 30 160000000 ns/op
PASS
`

func TestModeSpeedups(t *testing.T) {
	rep, err := parse(strings.NewReader(samplePipelined))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmarks[0].GoMaxProcs != 1 {
		t.Errorf("suffix-free benchmark goMaxProcs = %d, want 1", rep.Benchmarks[0].GoMaxProcs)
	}
	fam, ok := rep.Speedups["BenchmarkRunCyclePipelined"]
	if !ok {
		t.Fatalf("no mode speedup family: %+v", rep.Speedups)
	}
	want := map[string]float64{"sequential": 1.0, "pipelined": 200.0 / 160.0}
	for k, v := range want {
		if got := fam[k]; math.Abs(got-v) > 1e-9 {
			t.Errorf("speedup[%s] = %v, want %v", k, got, v)
		}
	}
}

func TestMinSpeedupGate(t *testing.T) {
	multi, err := parse(strings.NewReader(sample)) // -8 suffix: multi-core run
	if err != nil {
		t.Fatal(err)
	}
	if err := checkMinSpeedups(multi, "BenchmarkRunCycleParallel:4:1.0"); err != nil {
		t.Errorf("3.6x speedup failed a 1.0x floor: %v", err)
	}
	if err := checkMinSpeedups(multi, "BenchmarkRunCycleParallel:4:5.0"); err == nil {
		t.Error("3.6x speedup passed a 5.0x floor")
	}
	if err := checkMinSpeedups(multi, "BenchmarkRunCycleParallel:16:1.0"); err == nil {
		t.Error("missing label passed the gate")
	}
	if err := checkMinSpeedups(multi, "garbage"); err == nil {
		t.Error("malformed entry accepted")
	}
	// A GOMAXPROCS=1 run skips the assertion instead of failing.
	single, err := parse(strings.NewReader(samplePipelined))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkMinSpeedups(single, "BenchmarkRunCyclePipelined:pipelined:99"); err != nil {
		t.Errorf("single-core run must skip, got %v", err)
	}
}

func TestSpeedups(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	fam, ok := rep.Speedups["BenchmarkRunCycleParallel"]
	if !ok {
		t.Fatalf("no speedup family: %+v", rep.Speedups)
	}
	want := map[string]float64{"1": 1.0, "2": 240.0 / 126.0, "4": 240.0 / 66.0}
	for k, v := range want {
		if got := fam[k]; math.Abs(got-v) > 1e-9 {
			t.Errorf("speedup[%s] = %v, want %v", k, got, v)
		}
	}
	if _, ok := rep.Speedups["BenchmarkCommitteeVote"]; ok {
		t.Error("non-workers benchmark must not produce a speedup family")
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\n")); err == nil {
		t.Error("empty bench output must be rejected")
	}
}

// sampleWithStages carries the per-stage extras BenchmarkRunCycleParallel
// reports: the committee.vote stage slows down at workers=4 while
// qss.select does not.
const sampleWithStages = `goos: linux
BenchmarkRunCycleParallel/workers=1-8 5 240000000 ns/op 100000 committee.vote:wall-ns/op 90000 committee.vote:busy-ns/op 0 committee.vote:idle-ns/op 0.95 committee.vote:util 50000 qss.select:wall-ns/op
BenchmarkRunCycleParallel/workers=4-8 5 400000000 ns/op 180000 committee.vote:wall-ns/op 95000 committee.vote:busy-ns/op 620000 committee.vote:idle-ns/op 0.13 committee.vote:util 48000 qss.select:wall-ns/op
PASS
`

func TestAttributionRanksSlowestStageFirst(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleWithStages))
	if err != nil {
		t.Fatal(err)
	}
	stages, ok := rep.Attribution["BenchmarkRunCycleParallel"]
	if !ok {
		t.Fatalf("no attribution family: %+v", rep.Attribution)
	}
	if len(stages) != 2 {
		t.Fatalf("attributed %d stages, want 2", len(stages))
	}
	top := stages[0]
	if top.Stage != "committee.vote" {
		t.Errorf("top slowdown stage = %s, want committee.vote", top.Stage)
	}
	if want := 80000.0; math.Abs(top.SlowdownNs-want) != 0 {
		t.Errorf("slowdown = %v, want %v", top.SlowdownNs, want)
	}
	if top.Utilization["4"] != 0.13 || top.IdleNsPerOp["4"] != 620000 {
		t.Errorf("per-workers extras missing: %+v", top)
	}
	if stages[1].Stage != "qss.select" || stages[1].SlowdownNs != 0 {
		t.Errorf("non-regressing stage = %+v, want qss.select with 0 slowdown", stages[1])
	}
}

// writeRun drives run() with -o into dir and returns the decoded
// trajectory.
func writeRun(t *testing.T, args []string, input, path string) (*Trajectory, error) {
	t.Helper()
	err := run(append(args, "-o", path), strings.NewReader(input))
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		return nil, err
	}
	var traj Trajectory
	if jerr := json.Unmarshal(data, &traj); jerr != nil {
		t.Fatalf("output at %s is not a trajectory: %v", path, jerr)
	}
	return &traj, err
}

func TestTrajectoryAppendsHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	traj, err := writeRun(t, nil, sample, path)
	if err != nil {
		t.Fatal(err)
	}
	if traj.Schema != schemaV2 || traj.Current == nil || len(traj.History) != 0 {
		t.Fatalf("first write = schema %q, %d history entries", traj.Schema, len(traj.History))
	}
	if traj.Current.RecordedAt == "" {
		t.Error("current record missing recordedAt stamp")
	}
	traj, err = writeRun(t, nil, sampleWithStages, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.History) != 1 {
		t.Fatalf("second write kept %d history entries, want 1", len(traj.History))
	}
	if len(traj.History[0].Benchmarks) != 4 {
		t.Errorf("history entry has %d benchmarks, want the first run's 4", len(traj.History[0].Benchmarks))
	}
	if len(traj.Current.Benchmarks) != 2 {
		t.Errorf("current has %d benchmarks, want the second run's 2", len(traj.Current.Benchmarks))
	}
}

func TestTrajectoryRetainBoundsHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	for i := 0; i < 5; i++ {
		if _, err := writeRun(t, []string{"-retain", "2"}, sample, path); err != nil {
			t.Fatal(err)
		}
	}
	traj, _ := readTrajectory(path)
	if len(traj.History) != 2 {
		t.Errorf("retain=2 kept %d history entries", len(traj.History))
	}
}

func TestReadTrajectoryAcceptsV1Report(t *testing.T) {
	// A committed pre-trajectory BENCH_parallel.json is a bare report.
	path := filepath.Join(t.TempDir(), "v1.json")
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := json.Marshal(rep)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	traj, err := readTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if traj == nil || traj.Current == nil || len(traj.Current.Benchmarks) != 4 {
		t.Fatalf("v1 report not adopted as baseline: %+v", traj)
	}
	if missing, err := readTrajectory(filepath.Join(t.TempDir(), "nope.json")); missing != nil || err != nil {
		t.Errorf("missing file = (%v, %v), want (nil, nil)", missing, err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := readTrajectory(bad); err == nil {
		t.Error("malformed baseline must error, not silently drop the trajectory")
	}
}

// gateSample regresses workers=1 ns/op by 25% and workers=4 allocs/op
// by 50% against `sample`; workers=2 stays flat.
const gateSample = `goos: linux
BenchmarkRunCycleParallel/workers=1-8 5 300000000 ns/op 1024 B/op 12 allocs/op
BenchmarkRunCycleParallel/workers=2-8 10 126000000 ns/op 1100 B/op 14 allocs/op
BenchmarkRunCycleParallel/workers=4-4 18 66000000 ns/op 1200 B/op 24 allocs/op
PASS
`

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH.json")
	if _, err := writeRun(t, nil, sample, baseline); err != nil {
		t.Fatal(err)
	}

	base, err := readTrajectory(baseline)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := parse(strings.NewReader(gateSample))
	if err != nil {
		t.Fatal(err)
	}
	regs := gateCompare(base.Current, cur, 20, 10)
	if len(regs) != 2 {
		t.Fatalf("gateCompare found %d regressions, want 2: %v", len(regs), regs)
	}
	byMetric := map[string]regression{}
	for _, r := range regs {
		byMetric[r.Metric] = r
	}
	if r := byMetric["ns/op"]; !strings.Contains(r.Name, "workers=1") {
		t.Errorf("ns/op regression attributed to %q, want workers=1", r.Name)
	}
	// The workers=4 run pairs up despite its different -cpu suffix.
	if r := byMetric["allocs/op"]; !strings.Contains(r.Name, "workers=4") {
		t.Errorf("allocs/op regression attributed to %q, want workers=4", r.Name)
	}

	// End to end: the gate run fails but still writes the artifact with
	// the baseline seeding its history.
	artifact := filepath.Join(dir, "latest.json")
	traj, err := writeRun(t, []string{"-gate", baseline}, gateSample, artifact)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("gate run = %v, want regression failure", err)
	}
	if traj == nil || len(traj.History) != 1 {
		t.Fatalf("failing gate must still write the artifact with baseline history, got %+v", traj)
	}
}

func TestGatePassesWithinThresholds(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH.json")
	if _, err := writeRun(t, nil, sample, baseline); err != nil {
		t.Fatal(err)
	}
	if _, err := writeRun(t, []string{"-gate", baseline}, sample, filepath.Join(dir, "latest.json")); err != nil {
		t.Fatalf("identical results must pass the gate: %v", err)
	}
	// Loose thresholds tolerate the regressed sample.
	args := []string{"-gate", baseline, "-max-ns-regress", "50", "-max-allocs-regress", "120"}
	if _, err := writeRun(t, args, gateSample, filepath.Join(dir, "loose.json")); err != nil {
		t.Fatalf("thresholds must be tunable: %v", err)
	}
	if err := run([]string{"-gate", filepath.Join(dir, "absent.json")}, strings.NewReader(sample)); err == nil {
		t.Error("missing gate baseline must error")
	}
}
