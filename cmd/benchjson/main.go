// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON record and maintains the repo's benchmark
// trajectory. It reads the benchmark output on stdin and writes one JSON
// document describing the machine (goos/goarch/cpu), every benchmark
// result, the parallel speedup of each `workers=N` sub-benchmark
// relative to workers=1, and — when the benchmarks report per-stage
// extras (stage:wall-ns/op etc., as BenchmarkRunCycleParallel does) — a
// per-stage attribution ranking which pipeline stage the multi-worker
// slowdown comes from.
//
// Writing with -o is append-with-history: the previous document's
// current record is pushed onto a bounded history, so the committed
// BENCH_*.json carries the performance trajectory, not just the latest
// point.
//
// With -gate the run doubles as a CI regression gate: the fresh results
// are compared against the baseline document's current record and the
// process exits non-zero when any benchmark regresses beyond the
// thresholds (ns/op and allocs/op, -max-ns-regress / -max-allocs-regress
// percent). The output document is still written first, so CI can upload
// it as an artifact even on failure.
//
// Usage:
//
//	go test -bench BenchmarkRunCycleParallel -benchmem -run xxx . | benchjson -o BENCH_parallel.json
//	go test -bench ... | benchjson -gate BENCH_parallel.json -o artefacts/bench-latest.json
//
// The committed BENCH_parallel.json is regenerated with `make bench-json`
// and gated in CI with `make bench-gate`.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -cpu suffix, e.g. "BenchmarkRunCycleParallel/workers=4-8".
	Name string `json:"name"`
	// GoMaxProcs is the GOMAXPROCS the benchmark ran at, parsed from
	// the -N suffix go test appends to the name (1 when absent). A
	// workers=4 result at goMaxProcs 1 measures scheduling overhead,
	// not parallelism — gates must read this before judging speedups.
	GoMaxProcs int `json:"goMaxProcs"`
	// Workers is the scheme worker count from the /workers=N sub-label
	// (0 when the benchmark carries none).
	Workers int `json:"workers,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"nsPerOp"`
	// BytesPerOp is the reported B/op (-benchmem only).
	BytesPerOp *float64 `json:"bytesPerOp,omitempty"`
	// AllocsPerOp is the reported allocs/op (-benchmem only).
	AllocsPerOp *float64 `json:"allocsPerOp,omitempty"`
	// Extra holds any custom ReportMetric units.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is one recorded benchmark run.
type Report struct {
	// RecordedAt stamps the record (RFC 3339 UTC) so the trajectory's
	// history reads as a timeline.
	RecordedAt string `json:"recordedAt,omitempty"`
	// Goos/Goarch/CPU/Pkg echo the go test header lines.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	// Benchmarks are the parsed results in input order.
	Benchmarks []Result `json:"benchmarks"`
	// Speedups maps each benchmark family with workers=N sub-benchmarks
	// to the ns/op ratio of workers=1 over workers=N, and each family
	// with mode=X sub-benchmarks to the ratio of mode=sequential over
	// mode=X. Values scale with the core count of the recording machine.
	Speedups map[string]map[string]float64 `json:"speedups,omitempty"`
	// Attribution ranks, per workers=N family, the pipeline stages by
	// their contribution to the multi-worker slowdown, derived from the
	// per-stage extras the instrumented benchmarks report.
	Attribution map[string][]StageDelta `json:"attribution,omitempty"`
}

// Trajectory is the committed benchmark document: the latest record plus
// the records it replaced, newest first, bounded by -retain.
type Trajectory struct {
	// Schema identifies the document version ("crowdlearn-bench/2").
	Schema string `json:"schema"`
	// Current is the most recent record.
	Current *Report `json:"current"`
	// History holds prior records, newest first.
	History []*Report `json:"history,omitempty"`
}

// schemaV2 marks the trajectory document format. Plain v1 files (a bare
// Report) are still read as baselines and history seeds.
const schemaV2 = "crowdlearn-bench/2"

// StageDelta is one pipeline stage's multi-worker behaviour within a
// benchmark family, keyed by the workers label ("1", "2", ...). A
// positive SlowdownNs means the stage runs slower per op at some worker
// count than at workers=1 — the quantitative attribution of a parallel
// regression to its stage.
type StageDelta struct {
	// Stage is the pipeline stage name, e.g. "committee.vote".
	Stage string `json:"stage"`
	// WallNsPerOp is the stage's per-op wall time by worker count.
	WallNsPerOp map[string]float64 `json:"wallNsPerOp"`
	// SlowdownNs is the worst per-op wall increase over workers=1
	// across the other worker counts (0 when the stage never slows).
	SlowdownNs float64 `json:"slowdownNsPerOp"`
	// BusyNsPerOp / IdleNsPerOp are the profiled loop's per-op worker
	// busy and idle time by worker count (profiled stages only).
	BusyNsPerOp map[string]float64 `json:"busyNsPerOp,omitempty"`
	IdleNsPerOp map[string]float64 `json:"idleNsPerOp,omitempty"`
	// Utilization is busy/(workers*wall) by worker count.
	Utilization map[string]float64 `json:"utilization,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// parse consumes `go test -bench` output and builds the report.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		// Header lines repeat per package when several `go test` runs are
		// concatenated; the first occurrence wins.
		switch {
		case strings.HasPrefix(line, "goos:"):
			if rep.Goos == "" {
				rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			}
			continue
		case strings.HasPrefix(line, "goarch:"):
			if rep.Goarch == "" {
				rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			}
			continue
		case strings.HasPrefix(line, "cpu:"):
			if rep.CPU == "" {
				rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			}
			continue
		case strings.HasPrefix(line, "pkg:"):
			if rep.Pkg == "" {
				rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: iterations in %q: %w", line, err)
		}
		res := Result{Name: m[1], Iterations: iters, GoMaxProcs: 1}
		if pm := cpuSuffix.FindStringSubmatch(m[1]); pm != nil {
			if procs, err := strconv.Atoi(strings.TrimPrefix(pm[0], "-")); err == nil && procs > 0 {
				res.GoMaxProcs = procs
			}
		}
		if wm := workersLabel.FindStringSubmatch(m[1]); wm != nil {
			res.Workers, _ = strconv.Atoi(wm[1])
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: value in %q: %w", line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = &v
			case "allocs/op":
				res.AllocsPerOp = &v
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	rep.Speedups = speedups(rep.Benchmarks)
	rep.Attribution = attribution(rep.Benchmarks)
	return rep, nil
}

var (
	workersName = regexp.MustCompile(`^(Benchmark\S+)/workers=(\d+)(?:-\d+)?$`)
	// workersLabel finds a workers sub-label anywhere in a benchmark
	// name, including under further sub-benchmark path segments.
	workersLabel = regexp.MustCompile(`/workers=(\d+)`)
	// modeName matches execution-mode sub-benchmarks; mode=sequential
	// is the speedup baseline for its family.
	modeName = regexp.MustCompile(`^(Benchmark\S+)/mode=([A-Za-z]+)(?:-\d+)?$`)
)

// speedups derives the workers=1 / workers=N ns/op ratio per benchmark
// family that exposes workers sub-benchmarks, and the
// mode=sequential / mode=X ratio per family exposing mode
// sub-benchmarks (e.g. BenchmarkRunCyclePipelined's
// sequential-vs-pipelined pair).
func speedups(results []Result) map[string]map[string]float64 {
	type entry struct{ workers, ns float64 }
	families := make(map[string][]entry)
	for _, r := range results {
		m := workersName.FindStringSubmatch(r.Name)
		if m == nil || r.NsPerOp <= 0 {
			continue
		}
		w, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		families[m[1]] = append(families[m[1]], entry{workers: w, ns: r.NsPerOp})
	}
	out := make(map[string]map[string]float64)
	for fam, entries := range families {
		var base float64
		for _, e := range entries {
			if e.workers == 1 {
				base = e.ns
			}
		}
		if base == 0 {
			continue
		}
		ratios := make(map[string]float64, len(entries))
		for _, e := range entries {
			ratios[strconv.Itoa(int(e.workers))] = base / e.ns
		}
		out[fam] = ratios
	}
	modes := make(map[string]map[string]float64)
	for _, r := range results {
		m := modeName.FindStringSubmatch(r.Name)
		if m == nil || r.NsPerOp <= 0 {
			continue
		}
		if modes[m[1]] == nil {
			modes[m[1]] = make(map[string]float64)
		}
		modes[m[1]][m[2]] = r.NsPerOp
	}
	for fam, byMode := range modes {
		base, ok := byMode["sequential"]
		if !ok || base <= 0 {
			continue
		}
		ratios := out[fam]
		if ratios == nil {
			ratios = make(map[string]float64, len(byMode))
			out[fam] = ratios
		}
		for mode, ns := range byMode {
			ratios[mode] = base / ns
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// stageExtra matches the per-stage extras the instrumented benchmarks
// report via b.ReportMetric: "<stage>:wall-ns/op" and friends.
var stageExtra = regexp.MustCompile(`^(.+):(wall-ns/op|busy-ns/op|idle-ns/op|util)$`)

// attribution derives the per-stage slowdown ranking for every workers=N
// family whose sub-benchmarks carry stage extras. Stages sort by worst
// slowdown over workers=1 first — the top entry names the stage a
// multi-worker regression comes from.
func attribution(results []Result) map[string][]StageDelta {
	type stageKey struct{ fam, stage string }
	deltas := make(map[stageKey]*StageDelta)
	for _, r := range results {
		m := workersName.FindStringSubmatch(r.Name)
		if m == nil || len(r.Extra) == 0 {
			continue
		}
		fam, workers := m[1], m[2]
		for unit, v := range r.Extra {
			em := stageExtra.FindStringSubmatch(unit)
			if em == nil {
				continue
			}
			key := stageKey{fam, em[1]}
			sd, ok := deltas[key]
			if !ok {
				sd = &StageDelta{Stage: em[1], WallNsPerOp: make(map[string]float64)}
				deltas[key] = sd
			}
			set := func(dst *map[string]float64) {
				if *dst == nil {
					*dst = make(map[string]float64)
				}
				(*dst)[workers] = v
			}
			switch em[2] {
			case "wall-ns/op":
				sd.WallNsPerOp[workers] = v
			case "busy-ns/op":
				set(&sd.BusyNsPerOp)
			case "idle-ns/op":
				set(&sd.IdleNsPerOp)
			case "util":
				set(&sd.Utilization)
			}
		}
	}
	out := make(map[string][]StageDelta)
	for key, sd := range deltas {
		base, hasBase := sd.WallNsPerOp["1"]
		if hasBase {
			for workers, ns := range sd.WallNsPerOp {
				if workers != "1" && ns-base > sd.SlowdownNs {
					sd.SlowdownNs = ns - base
				}
			}
		}
		out[key.fam] = append(out[key.fam], *sd)
	}
	for fam := range out {
		sort.Slice(out[fam], func(a, b int) bool {
			if out[fam][a].SlowdownNs != out[fam][b].SlowdownNs {
				return out[fam][a].SlowdownNs > out[fam][b].SlowdownNs
			}
			return out[fam][a].Stage < out[fam][b].Stage
		})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// readTrajectory loads a baseline/previous document, accepting both the
// v2 trajectory format and a bare v1 report. A missing file returns
// (nil, nil); a malformed one errors rather than silently dropping the
// trajectory.
func readTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var traj Trajectory
	if err := json.Unmarshal(data, &traj); err == nil && traj.Schema == schemaV2 && traj.Current != nil {
		return &traj, nil
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err == nil && len(rep.Benchmarks) > 0 {
		return &Trajectory{Schema: schemaV2, Current: &rep}, nil
	}
	return nil, fmt.Errorf("%s is neither a %s trajectory nor a v1 benchmark report", path, schemaV2)
}

// cpuSuffix is the -N GOMAXPROCS suffix go test appends to benchmark
// names; it is stripped for cross-run matching so a baseline recorded at
// a different core count still pairs up.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// regression is one benchmark metric that got worse beyond its
// threshold.
type regression struct {
	Name     string  `json:"name"`
	Metric   string  `json:"metric"` // "ns/op" or "allocs/op"
	Base     float64 `json:"base"`
	New      float64 `json:"new"`
	LimitPct float64 `json:"limitPct"`
}

func (r regression) String() string {
	pct := 0.0
	if r.Base > 0 {
		pct = 100 * (r.New - r.Base) / r.Base
	}
	return fmt.Sprintf("%s %s: %.4g -> %.4g (%+.1f%%, limit +%.0f%%)",
		r.Name, r.Metric, r.Base, r.New, pct, r.LimitPct)
}

// gateCompare pairs the fresh report's benchmarks with the baseline (by
// name, cpu suffix stripped) and returns every metric that regressed
// beyond its threshold. Benchmarks present on only one side are skipped:
// the gate checks trajectories, not coverage.
func gateCompare(base, cur *Report, maxNsPct, maxAllocsPct float64) []regression {
	baseline := make(map[string]Result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[cpuSuffix.ReplaceAllString(b.Name, "")] = b
	}
	var regs []regression
	for _, b := range cur.Benchmarks {
		bl, ok := baseline[cpuSuffix.ReplaceAllString(b.Name, "")]
		if !ok {
			continue
		}
		if bl.NsPerOp > 0 && b.NsPerOp > bl.NsPerOp*(1+maxNsPct/100) {
			regs = append(regs, regression{Name: b.Name, Metric: "ns/op",
				Base: bl.NsPerOp, New: b.NsPerOp, LimitPct: maxNsPct})
		}
		if bl.AllocsPerOp != nil && b.AllocsPerOp != nil {
			limit := *bl.AllocsPerOp * (1 + maxAllocsPct/100)
			if *b.AllocsPerOp > limit {
				regs = append(regs, regression{Name: b.Name, Metric: "allocs/op",
					Base: *bl.AllocsPerOp, New: *b.AllocsPerOp, LimitPct: maxAllocsPct})
			}
		}
	}
	return regs
}

// checkMinSpeedups enforces a comma-separated list of
// "Family:label:min" assertions against the report's computed
// speedups. The check is only meaningful on a multi-core runner: when
// every parsed benchmark ran at GOMAXPROCS=1, each assertion is
// skipped with a printed notice instead of failing, so single-core CI
// runners do not produce false regressions (the grain policy collapses
// multi-worker loops inline there and the expected ratio is ~1.0 at
// best).
func checkMinSpeedups(rep *Report, spec string) error {
	maxProcs := 1
	for _, b := range rep.Benchmarks {
		if b.GoMaxProcs > maxProcs {
			maxProcs = b.GoMaxProcs
		}
	}
	var failures []string
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) != 3 {
			return fmt.Errorf("invalid -min-speedup entry %q (want Family:label:min)", entry)
		}
		min, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return fmt.Errorf("invalid -min-speedup threshold in %q: %w", entry, err)
		}
		if maxProcs <= 1 {
			fmt.Fprintf(os.Stderr, "benchjson: min-speedup %s SKIPPED: run executed at GOMAXPROCS=1 (single-core runner cannot demonstrate parallel speedup)\n", entry)
			continue
		}
		got, ok := rep.Speedups[parts[0]][parts[1]]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: no speedup recorded for label %q", parts[0], parts[1]))
			continue
		}
		if got < min {
			failures = append(failures, fmt.Sprintf("%s[%s] = %.3fx, want >= %.3fx", parts[0], parts[1], got, min))
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: min-speedup %s passed (%.3fx)\n", entry, got)
	}
	if len(failures) > 0 {
		return fmt.Errorf("min-speedup gate failed: %s", strings.Join(failures, "; "))
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout); an existing trajectory there is extended, its current record moving into history")
	retain := fs.Int("retain", 12, "history records kept in the trajectory document")
	gate := fs.String("gate", "", "baseline trajectory to compare against; regressions beyond the thresholds fail the run after the output is written")
	maxNs := fs.Float64("max-ns-regress", 20, "ns/op regression threshold for -gate, percent over baseline")
	maxAllocs := fs.Float64("max-allocs-regress", 10, "allocs/op regression threshold for -gate, percent over baseline")
	minSpeedup := fs.String("min-speedup", "", "comma-separated Family:label:min entries asserted against the run's computed speedups, e.g. BenchmarkRunCycleParallel:4:1.0; skipped with a notice when the run executed at GOMAXPROCS=1")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *retain < 0 {
		return fmt.Errorf("invalid -retain %d: must be non-negative", *retain)
	}
	rep, err := parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	rep.RecordedAt = time.Now().UTC().Format(time.RFC3339)

	var gateErr error
	if *minSpeedup != "" {
		if err := checkMinSpeedups(rep, *minSpeedup); err != nil {
			gateErr = err
		}
	}
	var baseline *Trajectory
	if *gate != "" {
		baseline, err = readTrajectory(*gate)
		if err != nil {
			return err
		}
		if baseline == nil {
			return fmt.Errorf("gate baseline %s does not exist", *gate)
		}
		regs := gateCompare(baseline.Current, rep, *maxNs, *maxAllocs)
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION", r)
		}
		if len(regs) > 0 {
			gateErr = errors.Join(gateErr, fmt.Errorf("bench gate failed: %d regression(s) against %s", len(regs), *gate))
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: gate passed, %d benchmark(s) within +%.0f%% ns/op / +%.0f%% allocs/op of %s\n",
				len(rep.Benchmarks), *maxNs, *maxAllocs, *gate)
		}
	}

	// Append-with-history: the previous document at -o seeds the
	// history; with a fresh -o (a CI artifact) the gate baseline does,
	// so the artifact still carries the trajectory it was judged
	// against.
	traj := &Trajectory{Schema: schemaV2, Current: rep}
	var prev *Trajectory
	if *out != "" {
		if prev, err = readTrajectory(*out); err != nil {
			return err
		}
	}
	if prev == nil {
		prev = baseline
	}
	if prev != nil {
		traj.History = append([]*Report{prev.Current}, prev.History...)
		if len(traj.History) > *retain {
			traj.History = traj.History[:*retain]
		}
	}

	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
		return gateErr
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	return gateErr
}
