// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON record. It reads the benchmark output on stdin
// and writes one JSON document describing the machine (goos/goarch/cpu),
// every benchmark result, and — for benchmarks with `workers=N`
// sub-benchmarks — the parallel speedup of each worker count relative to
// workers=1.
//
// Usage:
//
//	go test -bench BenchmarkRunCycleParallel -benchmem -run xxx . | benchjson -o BENCH_parallel.json
//
// The committed BENCH_parallel.json is regenerated with `make bench-json`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -cpu suffix, e.g. "BenchmarkRunCycleParallel/workers=4-8".
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"nsPerOp"`
	// BytesPerOp is the reported B/op (-benchmem only).
	BytesPerOp *float64 `json:"bytesPerOp,omitempty"`
	// AllocsPerOp is the reported allocs/op (-benchmem only).
	AllocsPerOp *float64 `json:"allocsPerOp,omitempty"`
	// Extra holds any custom ReportMetric units.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	// Goos/Goarch/CPU/Pkg echo the go test header lines.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	// Benchmarks are the parsed results in input order.
	Benchmarks []Result `json:"benchmarks"`
	// Speedups maps each benchmark family with workers=N sub-benchmarks
	// to the ns/op ratio of workers=1 over workers=N. Values scale with
	// the core count of the recording machine.
	Speedups map[string]map[string]float64 `json:"speedups,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// parse consumes `go test -bench` output and builds the report.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		// Header lines repeat per package when several `go test` runs are
		// concatenated; the first occurrence wins.
		switch {
		case strings.HasPrefix(line, "goos:"):
			if rep.Goos == "" {
				rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			}
			continue
		case strings.HasPrefix(line, "goarch:"):
			if rep.Goarch == "" {
				rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			}
			continue
		case strings.HasPrefix(line, "cpu:"):
			if rep.CPU == "" {
				rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			}
			continue
		case strings.HasPrefix(line, "pkg:"):
			if rep.Pkg == "" {
				rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: iterations in %q: %w", line, err)
		}
		res := Result{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: value in %q: %w", line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = &v
			case "allocs/op":
				res.AllocsPerOp = &v
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	rep.Speedups = speedups(rep.Benchmarks)
	return rep, nil
}

var workersName = regexp.MustCompile(`^(Benchmark\S+)/workers=(\d+)(?:-\d+)?$`)

// speedups derives the workers=1 / workers=N ns/op ratio per benchmark
// family that exposes workers sub-benchmarks.
func speedups(results []Result) map[string]map[string]float64 {
	type entry struct{ workers, ns float64 }
	families := make(map[string][]entry)
	for _, r := range results {
		m := workersName.FindStringSubmatch(r.Name)
		if m == nil || r.NsPerOp <= 0 {
			continue
		}
		w, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		families[m[1]] = append(families[m[1]], entry{workers: w, ns: r.NsPerOp})
	}
	out := make(map[string]map[string]float64)
	for fam, entries := range families {
		var base float64
		for _, e := range entries {
			if e.workers == 1 {
				base = e.ns
			}
		}
		if base == 0 {
			continue
		}
		ratios := make(map[string]float64, len(entries))
		for _, e := range entries {
			ratios[strconv.Itoa(int(e.workers))] = base / e.ns
		}
		out[fam] = ratios
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func main() {
	if err := run(os.Args[1:], os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}
