package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}, io.Discard); err == nil {
		t.Error("unknown flag must error")
	}
}

func TestRunSurfacesListenError(t *testing.T) {
	// An unparseable address makes ListenAndServe fail immediately; run
	// must surface it rather than hanging.
	err := run([]string{"-addr", "256.256.256.256:99999"}, io.Discard)
	if err == nil {
		t.Fatal("invalid listen address must error")
	}
	if !strings.Contains(err.Error(), "serve") {
		t.Errorf("error %v should come from the serve path", err)
	}
}

func TestRunRejectsBadLogLevel(t *testing.T) {
	err := run([]string{"-log-level", "loud"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "log-level") {
		t.Errorf("invalid log level must error, got %v", err)
	}
}

func TestRunRejectsNegativeQueueDepth(t *testing.T) {
	err := run([]string{"-queue-depth", "-1"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "queue-depth") {
		t.Errorf("negative queue depth must error, got %v", err)
	}
}

func TestRunRejectsNegativeRequestTimeout(t *testing.T) {
	err := run([]string{"-request-timeout", "-5s"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "request-timeout") {
		t.Errorf("negative request timeout must error, got %v", err)
	}
}

func TestVersionFlagPrintsBuildInfo(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-version"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "crowdlearn ") {
		t.Errorf("-version output %q should start with the binary identity", buf.String())
	}
}

func TestRunRejectsBadDebugAddr(t *testing.T) {
	// The debug listener is claimed before the lab build, so a bad
	// address fails fast instead of after seconds of bootstrapping.
	err := run([]string{"-debug-addr", "256.256.256.256:99999"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "debug-addr") {
		t.Errorf("invalid -debug-addr must error, got %v", err)
	}
}

func TestRunRejectsBadPersistenceFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative checkpoint-every", []string{"-state-dir", "d", "-checkpoint-every", "-1"}, "checkpoint-every"},
		{"zero checkpoint-retain", []string{"-state-dir", "d", "-checkpoint-retain", "0"}, "checkpoint-retain"},
		{"negative checkpoint-retain", []string{"-state-dir", "d", "-checkpoint-retain", "-3"}, "checkpoint-retain"},
		{"checkpoint-every without state-dir", []string{"-checkpoint-every", "4"}, "requires -state-dir"},
		{"checkpoint-retain without state-dir", []string{"-checkpoint-retain", "5"}, "requires -state-dir"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}
