package main

import (
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("unknown flag must error")
	}
}

func TestRunSurfacesListenError(t *testing.T) {
	// An unparseable address makes ListenAndServe fail immediately; run
	// must surface it rather than hanging.
	err := run([]string{"-addr", "256.256.256.256:99999"})
	if err == nil {
		t.Fatal("invalid listen address must error")
	}
	if !strings.Contains(err.Error(), "serve") {
		t.Errorf("error %v should come from the serve path", err)
	}
}

func TestRunRejectsBadLogLevel(t *testing.T) {
	err := run([]string{"-log-level", "loud"})
	if err == nil || !strings.Contains(err.Error(), "log-level") {
		t.Errorf("invalid log level must error, got %v", err)
	}
}

func TestRunRejectsNegativeQueueDepth(t *testing.T) {
	err := run([]string{"-queue-depth", "-1"})
	if err == nil || !strings.Contains(err.Error(), "queue-depth") {
		t.Errorf("negative queue depth must error, got %v", err)
	}
}

func TestRunRejectsNegativeRequestTimeout(t *testing.T) {
	err := run([]string{"-request-timeout", "-5s"})
	if err == nil || !strings.Contains(err.Error(), "request-timeout") {
		t.Errorf("negative request timeout must error, got %v", err)
	}
}

func TestRunRejectsBadPersistenceFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative checkpoint-every", []string{"-state-dir", "d", "-checkpoint-every", "-1"}, "checkpoint-every"},
		{"zero checkpoint-retain", []string{"-state-dir", "d", "-checkpoint-retain", "0"}, "checkpoint-retain"},
		{"negative checkpoint-retain", []string{"-state-dir", "d", "-checkpoint-retain", "-3"}, "checkpoint-retain"},
		{"checkpoint-every without state-dir", []string{"-checkpoint-every", "4"}, "requires -state-dir"},
		{"checkpoint-retain without state-dir", []string{"-checkpoint-retain", "5"}, "requires -state-dir"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}
