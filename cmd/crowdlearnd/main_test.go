package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}, io.Discard); err == nil {
		t.Error("unknown flag must error")
	}
}

func TestRunSurfacesListenError(t *testing.T) {
	// The main listener is claimed before the lab build, so an
	// unparseable address fails fast instead of after seconds of
	// bootstrapping.
	err := run([]string{"-addr", "256.256.256.256:99999"}, io.Discard)
	if err == nil {
		t.Fatal("invalid listen address must error")
	}
	if !strings.Contains(err.Error(), "listen") {
		t.Errorf("error %v should come from the listen path", err)
	}
}

func TestRunRejectsBadLogLevel(t *testing.T) {
	err := run([]string{"-log-level", "loud"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "log-level") {
		t.Errorf("invalid log level must error, got %v", err)
	}
}

func TestRunRejectsNegativeQueueDepth(t *testing.T) {
	err := run([]string{"-queue-depth", "-1"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "queue-depth") {
		t.Errorf("negative queue depth must error, got %v", err)
	}
}

func TestRunRejectsNegativeRequestTimeout(t *testing.T) {
	err := run([]string{"-request-timeout", "-5s"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "request-timeout") {
		t.Errorf("negative request timeout must error, got %v", err)
	}
}

func TestVersionFlagPrintsBuildInfo(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-version"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "crowdlearn ") {
		t.Errorf("-version output %q should start with the binary identity", buf.String())
	}
}

func TestRunRejectsBadDebugAddr(t *testing.T) {
	// The debug listener is claimed before the lab build, so a bad
	// address fails fast instead of after seconds of bootstrapping.
	err := run([]string{"-debug-addr", "256.256.256.256:99999"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "debug-addr") {
		t.Errorf("invalid -debug-addr must error, got %v", err)
	}
}

func TestRunRejectsBadPersistenceFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative checkpoint-every", []string{"-state-dir", "d", "-checkpoint-every", "-1"}, "checkpoint-every"},
		{"zero checkpoint-retain", []string{"-state-dir", "d", "-checkpoint-retain", "0"}, "checkpoint-retain"},
		{"negative checkpoint-retain", []string{"-state-dir", "d", "-checkpoint-retain", "-3"}, "checkpoint-retain"},
		{"checkpoint-every without state-dir", []string{"-checkpoint-every", "4"}, "requires -state-dir"},
		{"checkpoint-retain without state-dir", []string{"-checkpoint-retain", "5"}, "requires -state-dir"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestRunRejectsBadSupervisionFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative campaigns", []string{"-campaigns", "-2"}, "campaigns"},
		{"negative stall-timeout", []string{"-stall-timeout", "-1m"}, "stall-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestShutdownSequenceOrdering pins the graceful-shutdown contract that
// regressed before: an HTTP drain failure must not skip the worker
// drain or the final checkpoint (it is still reported), while a worker
// that fails to drain must skip the checkpoint — the system is not
// quiescent.
func TestShutdownSequenceOrdering(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	var order []string
	err := shutdownSequence(
		func(context.Context) error { order = append(order, "http"); return errors.New("connection stuck") },
		func(context.Context) error { order = append(order, "drain"); return nil },
		func() error { order = append(order, "checkpoint"); return nil },
		quiet, time.Second)
	if err == nil || !strings.Contains(err.Error(), "http shutdown") {
		t.Errorf("http failure must still surface, got %v", err)
	}
	if strings.Join(order, ",") != "http,drain,checkpoint" {
		t.Errorf("order = %v, want http,drain,checkpoint", order)
	}

	order = nil
	err = shutdownSequence(
		func(context.Context) error { order = append(order, "http"); return nil },
		func(context.Context) error { order = append(order, "drain"); return errors.New("worker wedged") },
		func() error { order = append(order, "checkpoint"); return nil },
		quiet, time.Second)
	if err == nil || !strings.Contains(err.Error(), "worker wedged") {
		t.Errorf("drain failure must surface, got %v", err)
	}
	if strings.Join(order, ",") != "http,drain" {
		t.Errorf("order = %v, want checkpoint skipped on failed drain", order)
	}

	if err := shutdownSequence(
		func(context.Context) error { return nil },
		func(context.Context) error { return nil },
		nil, quiet, time.Second); err != nil {
		t.Errorf("nil checkpoint: %v", err)
	}
}

// TestGracefulShutdownDrainsInFlight is the end-to-end regression test
// for SIGTERM under concurrent load: every /assess in flight at signal
// time completes with a real assessment, the daemon exits cleanly, and
// the final checkpoint lands on disk.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full lab")
	}
	stateDir := t.TempDir()
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	defer func() { onListen = nil }()

	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-addr", "127.0.0.1:0",
			"-log-level", "error",
			"-state-dir", stateDir,
			"-checkpoint-every", "50", // force the final checkpoint to do the work
			"-queue-depth", "32",
		}, io.Discard)
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-runErr:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never claimed its listener")
	}
	// The listener is up before the lab build; wait for serving.
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became healthy")
		}
		time.Sleep(200 * time.Millisecond)
	}
	resp, err := http.Get(base + "/images")
	if err != nil {
		t.Fatal(err)
	}
	var imgs struct {
		ImageIDs []int `json:"imageIds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&imgs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(imgs.ImageIDs) < 32 {
		t.Fatalf("registry too small: %d", len(imgs.ImageIDs))
	}

	const callers = 6
	results := make(chan error, callers)
	for i := 0; i < callers; i++ {
		i := i
		go func() {
			body, _ := json.Marshal(map[string]any{
				"context":  "morning",
				"imageIds": imgs.ImageIDs[i*4 : i*4+4],
			})
			resp, err := http.Post(base+"/assess", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				data, _ := io.ReadAll(resp.Body)
				results <- fmt.Errorf("assess status %d: %s", resp.StatusCode, data)
				return
			}
			results <- nil
		}()
	}
	// Let the batch reach the server, then SIGTERM mid-flight. The
	// requests are serialised through one worker, so several are still
	// queued or in flight when the signal lands.
	time.Sleep(150 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < callers; i++ {
		if err := <-results; err != nil {
			t.Errorf("in-flight assess dropped during shutdown: %v", err)
		}
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}
	// The final checkpoint covers the drained cycles.
	entries, err := os.ReadDir(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	var sawCheckpoint bool
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "checkpoint-") && strings.HasSuffix(e.Name(), ".ckpt") {
			sawCheckpoint = true
		}
	}
	if !sawCheckpoint {
		t.Errorf("no final checkpoint in %s: %v", stateDir, entries)
	}
}
