package main

import (
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("unknown flag must error")
	}
}

func TestRunSurfacesListenError(t *testing.T) {
	// An unparseable address makes ListenAndServe fail immediately; run
	// must surface it rather than hanging.
	err := run([]string{"-addr", "256.256.256.256:99999"})
	if err == nil {
		t.Fatal("invalid listen address must error")
	}
	if !strings.Contains(err.Error(), "serve") {
		t.Errorf("error %v should come from the serve path", err)
	}
}

func TestRunRejectsBadLogLevel(t *testing.T) {
	err := run([]string{"-log-level", "loud"})
	if err == nil || !strings.Contains(err.Error(), "log-level") {
		t.Errorf("invalid log level must error, got %v", err)
	}
}

func TestRunRejectsNegativeQueueDepth(t *testing.T) {
	err := run([]string{"-queue-depth", "-1"})
	if err == nil || !strings.Contains(err.Error(), "queue-depth") {
		t.Errorf("negative queue depth must error, got %v", err)
	}
}

func TestRunRejectsNegativeRequestTimeout(t *testing.T) {
	err := run([]string{"-request-timeout", "-5s"})
	if err == nil || !strings.Contains(err.Error(), "request-timeout") {
		t.Errorf("negative request timeout must error, got %v", err)
	}
}
