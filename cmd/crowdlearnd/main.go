// Command crowdlearnd runs CrowdLearn as a long-lived damage-assessment
// service with an HTTP/JSON API.
//
// On startup it builds the evaluation lab (synthetic dataset + pilot
// study), bootstraps a CrowdLearn system with metrics and tracing
// attached, registers the test split as the assessable image universe,
// and serves:
//
//	POST /assess   {"context":"morning","imageIds":[12,57]}
//	GET  /stats
//	GET  /metrics  Prometheus text exposition
//	GET  /trace    recent cycle span trees as JSON
//	GET  /healthz
//
// Usage:
//
//	crowdlearnd [-addr :8080] [-seed 1] [-workers 0] [-log-level info]
//	            [-queue-depth 16] [-request-timeout 30s]
//	            [-state-dir dir] [-checkpoint-every 8] [-checkpoint-retain 3]
//	            [-campaigns 0] [-stall-timeout 2m]
//	            [-debug-addr 127.0.0.1:6060] [-version]
//
// -debug-addr opens a second, operator-facing listener with the
// profiling surface (DESIGN.md §12): /debug/pprof/* (net/http/pprof),
// /debug/runtime (runtime/metrics as JSON), /debug/prof (the stage
// profiler's per-worker utilization totals) and a /metrics mirror. Bind
// it to loopback — pprof exposes heap contents. -version prints the
// build identity (also exported as the crowdlearn_build_info gauge) and
// exits.
//
// -queue-depth bounds the assessment queue: when it is full, POST /assess
// answers 429 with a Retry-After header instead of queueing without
// limit. -request-timeout caps one assessment end to end (queue wait plus
// cycle processing). Zero disables either guard.
//
// -state-dir enables durable crash-safe persistence (DESIGN.md §10):
// every committed cycle is appended to a write-ahead log, a checkpoint is
// written every -checkpoint-every cycles (rotated, keeping
// -checkpoint-retain generations), and on startup the previous process's
// state — expert weights, bandit budget, CQC model — is recovered from
// disk instead of re-bootstrapped. /healthz reports the last-checkpoint
// age and /stats the recovery outcome.
//
// -campaigns N (N > 0) switches the daemon to the supervised
// multi-campaign runtime (DESIGN.md §13): N campaigns named c00..cNN
// start as isolated failure domains, each with its own scheme, circuit
// breaker, restart policy and — under -state-dir — its own state
// subdirectory. The API becomes campaign-scoped:
//
//	POST /campaigns                {"id":"hurricane-x"}
//	GET  /campaigns
//	GET  /campaigns/{id}
//	POST /campaigns/{id}/assess    {"context":"morning","imageIds":[12]}
//	POST /campaigns/{id}/pause     (and /resume, /archive)
//	GET  /healthz                  503 once any campaign is quarantined
//	GET  /stats, GET /metrics      per-campaign health and labeled series
//
// -stall-timeout arms the per-campaign watchdog: a sensing cycle that
// makes no progress within it is abandoned and the campaign restarts
// from its last checkpoint (0 disables; campaign mode only).
//
// The process shuts down gracefully on SIGINT/SIGTERM: the in-flight
// sensing cycle completes, the listener drains, queued requests are
// rejected deterministically, the worker exits, and (with -state-dir) a
// final checkpoint is written.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	crowdlearn "github.com/crowdlearn/crowdlearn"
	"github.com/crowdlearn/crowdlearn/internal/admission"
	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/obs"
	"github.com/crowdlearn/crowdlearn/internal/prof"
	"github.com/crowdlearn/crowdlearn/internal/service"
	"github.com/crowdlearn/crowdlearn/internal/store"
	"github.com/crowdlearn/crowdlearn/internal/supervise"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		slog.Error("crowdlearnd failed", slog.Any("err", err))
		os.Exit(1)
	}
}

// onListen, when non-nil, receives the main listener's bound address —
// the test seam that lets the graceful-shutdown regression test drive a
// :0 daemon.
var onListen func(net.Addr)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("crowdlearnd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	seed := fs.Int64("seed", 1, "master seed")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn or error")
	traceCap := fs.Int("trace-capacity", obs.DefaultTraceCapacity, "cycle traces retained for GET /trace")
	workers := fs.Int("workers", 0, "goroutine fan-out for committee voting and model training (0 = GOMAXPROCS, 1 = sequential); assessments are bit-identical at any value")
	queueDepth := fs.Int("queue-depth", 16, "bounded assessment queue; full queue answers 429 (0 = unbounded)")
	admissionTarget := fs.Duration("admission-target", 0, "adaptive overload control: queue-delay target for the admission ladder — sustained waits above it degrade requests to AI-only labels before rejecting (0 = disabled)")
	requestTimeout := fs.Duration("request-timeout", 30*time.Second, "per-assessment timeout, queue wait included (0 = none)")
	stateDir := fs.String("state-dir", "", "durable state directory: checkpoints + write-ahead cycle log; recovery runs on startup (empty = no persistence)")
	checkpointEvery := fs.Int("checkpoint-every", 8, "write a checkpoint every N committed cycles (0 = only on shutdown; requires -state-dir)")
	checkpointRetain := fs.Int("checkpoint-retain", store.DefaultRetainCheckpoints, "checkpoint generations kept by rotation")
	campaigns := fs.Int("campaigns", 0, "run the supervised multi-campaign runtime with N initial campaigns (0 = single-service mode)")
	stallTimeout := fs.Duration("stall-timeout", 2*time.Minute, "per-campaign cycle watchdog; a stalled cycle restarts the campaign (0 = disabled; campaign mode only)")
	debugAddr := fs.String("debug-addr", "", "serve pprof, runtime-metrics and stage-profiler debug endpoints on this address (bind to loopback; empty = disabled)")
	showVersion := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		_, err := fmt.Fprintln(stdout, prof.ReadBuildInfo().String())
		return err
	}
	if *queueDepth < 0 {
		return fmt.Errorf("invalid -queue-depth %d: must be non-negative", *queueDepth)
	}
	if *requestTimeout < 0 {
		return fmt.Errorf("invalid -request-timeout %v: must be non-negative", *requestTimeout)
	}
	if *checkpointEvery < 0 {
		return fmt.Errorf("invalid -checkpoint-every %d: must be non-negative", *checkpointEvery)
	}
	if *checkpointRetain < 1 {
		return fmt.Errorf("invalid -checkpoint-retain %d: must be at least 1", *checkpointRetain)
	}
	if *campaigns < 0 {
		return fmt.Errorf("invalid -campaigns %d: must be non-negative", *campaigns)
	}
	if *stallTimeout < 0 {
		return fmt.Errorf("invalid -stall-timeout %v: must be non-negative", *stallTimeout)
	}
	if *admissionTarget < 0 {
		return fmt.Errorf("invalid -admission-target %v: must be non-negative", *admissionTarget)
	}
	if *stateDir == "" {
		explicit := ""
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "checkpoint-every" || f.Name == "checkpoint-retain" {
				explicit = "-" + f.Name
			}
		})
		if explicit != "" {
			return fmt.Errorf("%s requires -state-dir", explicit)
		}
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("invalid -log-level %q: %w", *logLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	// Claim both listeners before the expensive lab build so a bad
	// address fails fast; handlers are attached once the serving stack
	// exists.
	var debugLn net.Listener
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("invalid -debug-addr %q: %w", *debugAddr, err)
		}
		debugLn = ln
		defer ln.Close()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	defer ln.Close()
	if onListen != nil {
		onListen(ln.Addr())
	}

	cfg := crowdlearn.DefaultLabConfig()
	cfg.Seed = *seed
	cfg.Workers = *workers
	logger.Info("starting",
		slog.String("addr", *addr),
		slog.Int64("seed", *seed),
		slog.Int("workers", *workers),
		slog.String("logLevel", *logLevel),
		slog.Int("traceCapacity", *traceCap),
		slog.Int("queueDepth", *queueDepth),
		slog.Int("campaigns", *campaigns),
		slog.Duration("requestTimeout", *requestTimeout))
	logger.Info("building lab", slog.Int64("seed", *seed))
	started := time.Now()
	lab, err := crowdlearn.NewLab(cfg)
	if err != nil {
		return err
	}
	logger.Info("lab ready",
		slog.Int("trainImages", len(lab.Dataset.Train)),
		slog.Int("assessableImages", len(lab.Dataset.Test)),
		slog.Duration("elapsed", time.Since(started)))

	registry := obs.NewRegistry()
	tracer := obs.NewTracer(*traceCap)
	tracer.SetSampler(prof.AllocSampler{})
	profiler := prof.New(registry)
	buildInfo := prof.RegisterBuildInfo(registry)
	logger.Info("build", slog.String("version", buildInfo.String()))

	var debugServer *http.Server
	if debugLn != nil {
		debugServer = &http.Server{
			Handler:           prof.DebugMux(registry, profiler),
			ReadHeaderTimeout: 5 * time.Second,
		}
		supervise.Go("daemon.debug-server", logger, func() {
			logger.Info("debug endpoints", slog.String("addr", debugLn.Addr().String()))
			if err := debugServer.Serve(debugLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug serve", slog.Any("err", err))
			}
		})
		defer debugServer.Close()
	}

	if *campaigns > 0 {
		return runCampaigns(lab, ln, logger, registry, campaignParams{
			initial:          *campaigns,
			stateDir:         *stateDir,
			checkpointEvery:  *checkpointEvery,
			checkpointRetain: *checkpointRetain,
			stallTimeout:     *stallTimeout,
			queueDepth:       *queueDepth,
			admissionTarget:  *admissionTarget,
		})
	}

	// With -state-dir the system journals every committed cycle and
	// recovers its predecessor's state before serving. The journal's
	// checkpoint payload closes over sys, which is assembled just after.
	var (
		st      *store.Store
		journal *store.Journal
		sys     *core.CrowdLearn
	)
	if *stateDir != "" {
		st, err = store.Open(store.Options{Dir: *stateDir, RetainCheckpoints: *checkpointRetain})
		if err != nil {
			return err
		}
		defer st.Close()
		journal = store.NewJournal(st, *checkpointEvery,
			func(w io.Writer) error { return sys.SaveState(w) }, logger, registry)
		// Snapshot-then-encode seam for detached commits: capture
		// checkpoint state synchronously, encode off the hot path.
		journal.SetSnapshot(func() (func(io.Writer) error, error) {
			sn, err := sys.SnapshotState()
			if err != nil {
				return nil, err
			}
			return sn.Encode, nil
		})
	}
	sys, err = lab.NewSystemWith(func(cfg *core.Config) {
		cfg.Metrics = registry
		cfg.Tracer = tracer
		cfg.Profiler = profiler
		if journal != nil {
			cfg.Journal = journal
		}
	})
	if err != nil {
		return err
	}
	logger.Info("system bootstrapped", slog.Duration("elapsed", time.Since(started)))

	svcOpts := []service.Option{
		service.WithMetrics(registry),
		service.WithTracer(tracer),
		service.WithQueueDepth(*queueDepth),
		service.WithRequestTimeout(*requestTimeout),
		service.WithBuildInfo(buildInfo),
	}
	if *admissionTarget > 0 {
		svcOpts = append(svcOpts, service.WithAdmission(admission.Config{Target: *admissionTarget}))
	}
	if st != nil {
		report, rerr := st.Recover(sys, store.RecoverOptions{
			TrainSamples:   classifier.SamplesFromImages(lab.Dataset.Train),
			Registry:       lab.Dataset.Test,
			ResyncPlatform: true,
			Logger:         logger,
			Metrics:        registry,
		})
		if rerr != nil {
			return fmt.Errorf("state recovery: %w", rerr)
		}
		journal.NoteRecovered(report)
		svcOpts = append(svcOpts,
			service.WithStartCycle(report.NextCycle),
			service.WithCheckpointAge(journal.CheckpointAge),
			service.WithRecovery(&service.RecoveryStatus{
				Outcome:            report.Outcome,
				CheckpointCycles:   report.CheckpointCycles,
				CheckpointsSkipped: report.CheckpointsSkipped,
				CyclesReplayed:     report.CyclesReplayed,
				WALTruncatedBytes:  report.WALTruncatedBytes,
			}))
	}
	svc, err := service.New(sys, svcOpts...)
	if err != nil {
		return err
	}
	svc.Start()

	handler, err := service.NewHandler(svc, lab.Dataset.Test, service.WithLogger(logger))
	if err != nil {
		return err
	}
	server := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	var checkpoint func() error
	if journal != nil {
		checkpoint = journal.Checkpoint
	}
	if err := serveUntilSignal(server, ln, logger, svc.Shutdown, checkpoint); err != nil {
		return err
	}
	stats := svc.Stats()
	logger.Info("shutdown complete",
		slog.Int("cyclesRun", stats.CyclesRun),
		slog.Int("imagesAssessed", stats.ImagesAssessed),
		slog.Float64("spentDollars", stats.TotalSpent))
	return nil
}

// campaignParams carries the campaign-mode knobs from flag parsing.
type campaignParams struct {
	initial          int
	stateDir         string
	checkpointEvery  int
	checkpointRetain int
	stallTimeout     time.Duration
	queueDepth       int
	admissionTarget  time.Duration
}

// runCampaigns serves the supervised multi-campaign runtime: p.initial
// campaigns created up front, more over POST /campaigns, each an
// isolated failure domain with its own scheme, breaker and (with a
// state dir) durable store.
func runCampaigns(lab *crowdlearn.Lab, ln net.Listener, logger *slog.Logger, registry *obs.Registry, p campaignParams) error {
	supOpts := supervise.Options{
		Logger:       logger,
		Metrics:      registry,
		StallTimeout: p.stallTimeout,
		QueueDepth:   p.queueDepth,
	}
	if p.admissionTarget > 0 {
		supOpts.Admission = &admission.Config{Target: p.admissionTarget}
	}
	sup := supervise.New(supOpts)
	factory := func(id string) (supervise.Spec, error) {
		if strings.ContainsAny(id, "/\\ \t") {
			return supervise.Spec{}, fmt.Errorf("invalid campaign id %q: no separators or spaces", id)
		}
		spec := supervise.Spec{
			ID: id,
			// Each epoch builds a fresh scheme on its own platform; the
			// supervisor's breaker wraps the platform so a sustained
			// crowd outage degrades this campaign to AI-only labels
			// without touching its siblings. Per-cycle core metrics stay
			// detached: they are unlabeled and would clobber across
			// campaigns — the supervisor's labeled families cover the
			// fleet view.
			Build: func(bc supervise.BuildContext) (core.Scheme, error) {
				return lab.NewSystemOn(bc.WrapPlatform(lab.NewPlatform()), func(cfg *core.Config) {
					if bc.Journal != nil {
						cfg.Journal = bc.Journal
					}
				})
			},
		}
		if p.stateDir != "" {
			spec.StateDir = filepath.Join(p.stateDir, id)
			spec.CheckpointEvery = p.checkpointEvery
			spec.RetainCheckpoints = p.checkpointRetain
			spec.TrainSamples = classifier.SamplesFromImages(lab.Dataset.Train)
			spec.Registry = lab.Dataset.Test
		}
		return spec, nil
	}
	for i := 0; i < p.initial; i++ {
		id := fmt.Sprintf("c%02d", i)
		spec, err := factory(id)
		if err != nil {
			return err
		}
		if _, err := sup.Create(spec); err != nil {
			return err
		}
		logger.Info("campaign ready", slog.String("campaign", id))
	}
	handler, err := service.NewCampaignHandler(sup, lab.Dataset.Test, factory,
		service.WithCampaignMetrics(registry), service.WithCampaignLogger(logger))
	if err != nil {
		return err
	}
	server := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	// The supervisor checkpoints each campaign as its worker drains, so
	// there is no separate final checkpoint step.
	if err := serveUntilSignal(server, ln, logger, sup.Shutdown, nil); err != nil {
		return err
	}
	for _, h := range sup.Health() {
		logger.Info("campaign shutdown",
			slog.String("campaign", h.ID),
			slog.String("state", h.State),
			slog.Int("cyclesRun", h.Stats.CyclesRun),
			slog.Int("restarts", h.TotalRestarts))
	}
	return nil
}

// serveUntilSignal serves ln until SIGINT/SIGTERM (or a listener
// error), then runs the graceful shutdown sequence.
func serveUntilSignal(server *http.Server, ln net.Listener, logger *slog.Logger, drain func(context.Context) error, checkpoint func() error) error {
	errCh := make(chan error, 1)
	supervise.Go("daemon.http-server", logger, func() {
		logger.Info("serving", slog.String("addr", ln.Addr().String()))
		if err := server.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	select {
	case sig := <-sigCh:
		logger.Info("shutting down", slog.String("signal", sig.String()))
	case err := <-errCh:
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	}
	return shutdownSequence(server.Shutdown, drain, checkpoint, logger, 15*time.Second)
}

// shutdownSequence drains the HTTP server (in-flight assessments
// complete and answer), stops the worker, and — only once the worker
// has drained cleanly — writes the final checkpoint. An HTTP drain
// failure is reported but never skips the worker drain or the
// checkpoint; a worker that fails to drain skips the checkpoint, since
// a non-quiescent system could checkpoint a torn cycle.
func shutdownSequence(httpShutdown, drain func(context.Context) error, checkpoint func() error, logger *slog.Logger, timeout time.Duration) error {
	httpCtx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	httpErr := httpShutdown(httpCtx)
	if httpErr != nil {
		logger.Warn("http shutdown incomplete; draining worker anyway", slog.Any("err", httpErr))
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := drain(drainCtx); err != nil {
		return err
	}
	if checkpoint != nil {
		if err := checkpoint(); err != nil {
			logger.Warn("shutdown checkpoint failed", slog.Any("err", err))
		}
	}
	if httpErr != nil {
		return fmt.Errorf("http shutdown: %w", httpErr)
	}
	return nil
}
