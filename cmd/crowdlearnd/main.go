// Command crowdlearnd runs CrowdLearn as a long-lived damage-assessment
// service with an HTTP/JSON API.
//
// On startup it builds the evaluation lab (synthetic dataset + pilot
// study), bootstraps a CrowdLearn system with metrics and tracing
// attached, registers the test split as the assessable image universe,
// and serves:
//
//	POST /assess   {"context":"morning","imageIds":[12,57]}
//	GET  /stats
//	GET  /metrics  Prometheus text exposition
//	GET  /trace    recent cycle span trees as JSON
//	GET  /healthz
//
// Usage:
//
//	crowdlearnd [-addr :8080] [-seed 1] [-workers 0] [-log-level info]
//	            [-queue-depth 16] [-request-timeout 30s]
//	            [-state-dir dir] [-checkpoint-every 8] [-checkpoint-retain 3]
//	            [-debug-addr 127.0.0.1:6060] [-version]
//
// -debug-addr opens a second, operator-facing listener with the
// profiling surface (DESIGN.md §12): /debug/pprof/* (net/http/pprof),
// /debug/runtime (runtime/metrics as JSON), /debug/prof (the stage
// profiler's per-worker utilization totals) and a /metrics mirror. Bind
// it to loopback — pprof exposes heap contents. -version prints the
// build identity (also exported as the crowdlearn_build_info gauge) and
// exits.
//
// -queue-depth bounds the assessment queue: when it is full, POST /assess
// answers 429 with a Retry-After header instead of queueing without
// limit. -request-timeout caps one assessment end to end (queue wait plus
// cycle processing). Zero disables either guard.
//
// -state-dir enables durable crash-safe persistence (DESIGN.md §10):
// every committed cycle is appended to a write-ahead log, a checkpoint is
// written every -checkpoint-every cycles (rotated, keeping
// -checkpoint-retain generations), and on startup the previous process's
// state — expert weights, bandit budget, CQC model — is recovered from
// disk instead of re-bootstrapped. /healthz reports the last-checkpoint
// age and /stats the recovery outcome.
//
// The process shuts down gracefully on SIGINT/SIGTERM: the in-flight
// sensing cycle completes, the listener drains, queued requests are
// rejected deterministically, the worker exits, and (with -state-dir) a
// final checkpoint is written.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	crowdlearn "github.com/crowdlearn/crowdlearn"
	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/obs"
	"github.com/crowdlearn/crowdlearn/internal/prof"
	"github.com/crowdlearn/crowdlearn/internal/service"
	"github.com/crowdlearn/crowdlearn/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		slog.Error("crowdlearnd failed", slog.Any("err", err))
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("crowdlearnd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	seed := fs.Int64("seed", 1, "master seed")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn or error")
	traceCap := fs.Int("trace-capacity", obs.DefaultTraceCapacity, "cycle traces retained for GET /trace")
	workers := fs.Int("workers", 0, "goroutine fan-out for committee voting and model training (0 = GOMAXPROCS, 1 = sequential); assessments are bit-identical at any value")
	queueDepth := fs.Int("queue-depth", 16, "bounded assessment queue; full queue answers 429 (0 = unbounded)")
	requestTimeout := fs.Duration("request-timeout", 30*time.Second, "per-assessment timeout, queue wait included (0 = none)")
	stateDir := fs.String("state-dir", "", "durable state directory: checkpoints + write-ahead cycle log; recovery runs on startup (empty = no persistence)")
	checkpointEvery := fs.Int("checkpoint-every", 8, "write a checkpoint every N committed cycles (0 = only on shutdown; requires -state-dir)")
	checkpointRetain := fs.Int("checkpoint-retain", store.DefaultRetainCheckpoints, "checkpoint generations kept by rotation")
	debugAddr := fs.String("debug-addr", "", "serve pprof, runtime-metrics and stage-profiler debug endpoints on this address (bind to loopback; empty = disabled)")
	showVersion := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		_, err := fmt.Fprintln(stdout, prof.ReadBuildInfo().String())
		return err
	}
	if *queueDepth < 0 {
		return fmt.Errorf("invalid -queue-depth %d: must be non-negative", *queueDepth)
	}
	if *requestTimeout < 0 {
		return fmt.Errorf("invalid -request-timeout %v: must be non-negative", *requestTimeout)
	}
	if *checkpointEvery < 0 {
		return fmt.Errorf("invalid -checkpoint-every %d: must be non-negative", *checkpointEvery)
	}
	if *checkpointRetain < 1 {
		return fmt.Errorf("invalid -checkpoint-retain %d: must be at least 1", *checkpointRetain)
	}
	if *stateDir == "" {
		explicit := ""
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "checkpoint-every" || f.Name == "checkpoint-retain" {
				explicit = "-" + f.Name
			}
		})
		if explicit != "" {
			return fmt.Errorf("%s requires -state-dir", explicit)
		}
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("invalid -log-level %q: %w", *logLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	// Claim the debug listener before the expensive lab build so a bad
	// -debug-addr fails fast; the handler is attached once the profiling
	// stack exists.
	var debugLn net.Listener
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("invalid -debug-addr %q: %w", *debugAddr, err)
		}
		debugLn = ln
		defer ln.Close()
	}

	cfg := crowdlearn.DefaultLabConfig()
	cfg.Seed = *seed
	cfg.Workers = *workers
	logger.Info("starting",
		slog.String("addr", *addr),
		slog.Int64("seed", *seed),
		slog.Int("workers", *workers),
		slog.String("logLevel", *logLevel),
		slog.Int("traceCapacity", *traceCap),
		slog.Int("queueDepth", *queueDepth),
		slog.Duration("requestTimeout", *requestTimeout))
	logger.Info("building lab", slog.Int64("seed", *seed))
	started := time.Now()
	lab, err := crowdlearn.NewLab(cfg)
	if err != nil {
		return err
	}

	registry := obs.NewRegistry()
	tracer := obs.NewTracer(*traceCap)
	tracer.SetSampler(prof.AllocSampler{})
	profiler := prof.New(registry)
	buildInfo := prof.RegisterBuildInfo(registry)
	logger.Info("build", slog.String("version", buildInfo.String()))

	// With -state-dir the system journals every committed cycle and
	// recovers its predecessor's state before serving. The journal's
	// checkpoint payload closes over sys, which is assembled just after.
	var (
		st      *store.Store
		journal *store.Journal
		sys     *core.CrowdLearn
	)
	if *stateDir != "" {
		st, err = store.Open(store.Options{Dir: *stateDir, RetainCheckpoints: *checkpointRetain})
		if err != nil {
			return err
		}
		defer st.Close()
		journal = store.NewJournal(st, *checkpointEvery,
			func(w io.Writer) error { return sys.SaveState(w) }, logger, registry)
	}
	sys, err = lab.NewSystemWith(func(cfg *core.Config) {
		cfg.Metrics = registry
		cfg.Tracer = tracer
		cfg.Profiler = profiler
		if journal != nil {
			cfg.Journal = journal
		}
	})
	if err != nil {
		return err
	}
	logger.Info("system bootstrapped",
		slog.Int("trainImages", len(lab.Dataset.Train)),
		slog.Int("assessableImages", len(lab.Dataset.Test)),
		slog.Duration("elapsed", time.Since(started)))

	svcOpts := []service.Option{
		service.WithMetrics(registry),
		service.WithTracer(tracer),
		service.WithQueueDepth(*queueDepth),
		service.WithRequestTimeout(*requestTimeout),
		service.WithBuildInfo(buildInfo),
	}
	if st != nil {
		report, rerr := st.Recover(sys, store.RecoverOptions{
			TrainSamples:   classifier.SamplesFromImages(lab.Dataset.Train),
			Registry:       lab.Dataset.Test,
			ResyncPlatform: true,
			Logger:         logger,
			Metrics:        registry,
		})
		if rerr != nil {
			return fmt.Errorf("state recovery: %w", rerr)
		}
		journal.NoteRecovered(report)
		svcOpts = append(svcOpts,
			service.WithStartCycle(report.NextCycle),
			service.WithCheckpointAge(journal.CheckpointAge),
			service.WithRecovery(&service.RecoveryStatus{
				Outcome:            report.Outcome,
				CheckpointCycles:   report.CheckpointCycles,
				CheckpointsSkipped: report.CheckpointsSkipped,
				CyclesReplayed:     report.CyclesReplayed,
				WALTruncatedBytes:  report.WALTruncatedBytes,
			}))
	}
	svc, err := service.New(sys, svcOpts...)
	if err != nil {
		return err
	}
	svc.Start()

	handler, err := service.NewHandler(svc, lab.Dataset.Test, service.WithLogger(logger))
	if err != nil {
		return err
	}
	server := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	var debugServer *http.Server
	if debugLn != nil {
		debugServer = &http.Server{
			Handler:           prof.DebugMux(registry, profiler),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("debug endpoints", slog.String("addr", debugLn.Addr().String()))
			if err := debugServer.Serve(debugLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug serve", slog.Any("err", err))
			}
		}()
		defer debugServer.Close()
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving", slog.String("addr", *addr))
		if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Info("shutting down", slog.String("signal", sig.String()))
	case err := <-errCh:
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := server.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		return err
	}
	// The worker is stopped, so the system is quiescent: take a final
	// checkpoint covering everything the process committed.
	if journal != nil {
		if err := journal.Checkpoint(); err != nil {
			logger.Warn("shutdown checkpoint failed", slog.Any("err", err))
		}
	}
	stats := svc.Stats()
	logger.Info("shutdown complete",
		slog.Int("cyclesRun", stats.CyclesRun),
		slog.Int("imagesAssessed", stats.ImagesAssessed),
		slog.Float64("spentDollars", stats.TotalSpent))
	return nil
}
