package crowdlearn

import (
	"github.com/crowdlearn/crowdlearn/internal/experiments"
)

// Re-exported experiment result types: one per table/figure of the
// paper's evaluation section, plus the ablation batteries. Every result
// implements fmt.Stringer, rendering the same rows/series the paper
// reports.
type (
	// Fig5Result is Figure 5: crowd response time vs incentive x context.
	Fig5Result = experiments.Fig5Result
	// Fig6Result is Figure 6: label quality vs incentive with Wilcoxon
	// significance tests.
	Fig6Result = experiments.Fig6Result
	// Table1Result is Table I: aggregated label accuracy (CQC vs Voting,
	// TD-EM, Filtering).
	Table1Result = experiments.Table1Result
	// CampaignSet is one full campaign per scheme; Table II, Figure 7 and
	// Table III derive from it.
	CampaignSet = experiments.CampaignSet
	// Table2Result is Table II: classification metrics per scheme.
	Table2Result = experiments.Table2Result
	// Fig7Result is Figure 7: macro-average ROC curves.
	Fig7Result = experiments.Fig7Result
	// Table3Result is Table III: algorithm and crowd delay per cycle.
	Table3Result = experiments.Table3Result
	// Fig8Result is Figure 8: crowd delay per context per incentive
	// policy.
	Fig8Result = experiments.Fig8Result
	// Fig9Result is Figure 9: query-set size vs F1.
	Fig9Result = experiments.Fig9Result
	// BudgetSweepResult is Figures 10-11: budget vs F1 and crowd delay.
	BudgetSweepResult = experiments.BudgetSweepResult
	// AblationResult is the CrowdLearn design-choice ablation battery.
	AblationResult = experiments.AblationResult
	// CQCAblationResult quantifies the questionnaire features'
	// contribution to CQC.
	CQCAblationResult = experiments.CQCAblationResult
	// BanditAblationResult compares context-aware and context-blind
	// incentive bandits.
	BanditAblationResult = experiments.BanditAblationResult
	// StrategyComparisonResult compares QSS exploitation scores end to
	// end.
	StrategyComparisonResult = experiments.StrategyComparisonResult
	// MultiSeedResult reports Table II as mean ± std across seeds.
	MultiSeedResult = experiments.MultiSeedResult
	// SpamRobustnessResult measures quality-control degradation under
	// injected spammer populations.
	SpamRobustnessResult = experiments.SpamRobustnessResult
	// ChurnRobustnessResult measures quality control under worker
	// identity turnover.
	ChurnRobustnessResult = experiments.ChurnRobustnessResult
	// FaultsResult compares CrowdLearn with and without the recovery
	// policy under injected crowd failures (abandonment, delay spikes,
	// duplicates, stale replays, a mid-campaign outage).
	FaultsResult = experiments.FaultsResult
	// Report is the regenerable markdown paper-vs-measured summary.
	Report = experiments.Report
)

// RunFig5 regenerates Figure 5 from the lab's pilot study.
func RunFig5(lab *Lab) (*Fig5Result, error) { return experiments.RunFig5(lab) }

// RunFig6 regenerates Figure 6 from the lab's pilot study.
func RunFig6(lab *Lab) (*Fig6Result, error) { return experiments.RunFig6(lab) }

// RunTable1 regenerates Table I.
func RunTable1(lab *Lab) (*Table1Result, error) { return experiments.RunTable1(lab) }

// RunCampaignSet runs the paper's 40x10 campaign for every scheme of
// Table II; Table2, Fig7 and Table3 derive from the returned set.
func RunCampaignSet(lab *Lab) (*CampaignSet, error) { return experiments.RunCampaignSet(lab) }

// RunFig8 regenerates Figure 8 (incentive policies vs crowd delay).
func RunFig8(lab *Lab) (*Fig8Result, error) { return experiments.RunFig8(lab) }

// RunFig9 regenerates Figure 9 (query-set size sweep).
func RunFig9(lab *Lab) (*Fig9Result, error) { return experiments.RunFig9(lab) }

// RunBudgetSweep regenerates Figures 10 and 11 (budget sweep).
func RunBudgetSweep(lab *Lab) (*BudgetSweepResult, error) { return experiments.RunBudgetSweep(lab) }

// RunAblations runs the CrowdLearn design-choice ablations of DESIGN.md.
func RunAblations(lab *Lab) (*AblationResult, error) { return experiments.RunAblations(lab) }

// RunCQCAblation quantifies the CQC questionnaire features' value.
func RunCQCAblation(lab *Lab) (*CQCAblationResult, error) { return experiments.RunCQCAblation(lab) }

// RunBanditAblation compares context-aware and context-blind bandits.
func RunBanditAblation(lab *Lab) (*BanditAblationResult, error) {
	return experiments.RunBanditAblation(lab)
}

// RunStrategyComparison runs one CrowdLearn campaign per QSS strategy.
func RunStrategyComparison(lab *Lab) (*StrategyComparisonResult, error) {
	return experiments.RunStrategyComparison(lab)
}

// RunMultiSeed re-runs the Table II campaign set under each seed and
// reports mean ± std — the statistically honest Table II.
func RunMultiSeed(cfg LabConfig, seeds []int64) (*MultiSeedResult, error) {
	return experiments.RunMultiSeed(cfg, seeds)
}

// RunSpamRobustness sweeps the spammer fraction and measures each
// quality-control scheme's degradation.
func RunSpamRobustness(lab *Lab) (*SpamRobustnessResult, error) {
	return experiments.RunSpamRobustness(lab)
}

// RunChurnRobustness sweeps worker identity turnover and measures which
// quality-control schemes depend on per-worker reputation.
func RunChurnRobustness(lab *Lab) (*ChurnRobustnessResult, error) {
	return experiments.RunChurnRobustness(lab)
}

// RunFaults runs the resilience study: CrowdLearn with vs without the
// recovery policy across injected crowd-failure scenarios.
func RunFaults(lab *Lab) (*FaultsResult, error) {
	return experiments.RunFaults(lab)
}

// RunReport regenerates the markdown paper-vs-measured report.
func RunReport(lab *Lab) (*Report, error) {
	return experiments.RunReport(lab)
}
