package crowdlearn

import (
	"strings"
	"sync"
	"testing"
)

var (
	apiOnce sync.Once
	apiLab  *Lab
	apiErr  error
)

func apiEnv(t *testing.T) *Lab {
	t.Helper()
	apiOnce.Do(func() {
		apiLab, apiErr = NewLab(DefaultLabConfig())
	})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	return apiLab
}

func TestPublicQuickstartPath(t *testing.T) {
	env := apiEnv(t)
	sys, err := env.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	result, err := RunCampaign(sys, env.Dataset.Test, DefaultCampaignConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := ComputeMetrics(result.TrueLabels(), result.PredictedLabels())
	if err != nil {
		t.Fatal(err)
	}
	if m.F1 < 0.75 {
		t.Errorf("quickstart F1 %.3f implausibly low", m.F1)
	}
	if sys.Name() != "crowdlearn" {
		t.Errorf("system name %q", sys.Name())
	}
}

func TestPublicDatasetGeneration(t *testing.T) {
	ds, err := GenerateDataset(DefaultDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Train) != 560 || len(ds.Test) != 400 {
		t.Errorf("dataset split %d/%d, want 560/400", len(ds.Train), len(ds.Test))
	}
	if !NoDamage.Valid() || !SevereDamage.Valid() {
		t.Error("re-exported label constants broken")
	}
}

func TestPublicPlatformConstruction(t *testing.T) {
	p, err := NewPlatform(DefaultPlatformConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers() == 0 {
		t.Error("platform has no workers")
	}
	if Morning.String() != "morning" || Midnight.String() != "midnight" {
		t.Error("re-exported context constants broken")
	}
}

func TestPublicSystemConstruction(t *testing.T) {
	p, err := NewPlatform(DefaultPlatformConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(DefaultSystemConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	// Unbootstrapped systems refuse to run — the API must surface this.
	env := apiEnv(t)
	if _, err := sys.RunCycle(CycleInput{Context: Morning, Images: env.Dataset.Test[:3]}); err == nil {
		t.Error("unbootstrapped system must refuse RunCycle")
	}
}

func TestPublicExperimentRunnersRender(t *testing.T) {
	env := apiEnv(t)
	fig5, err := RunFig5(env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig5.String(), "morning") {
		t.Error("fig5 render missing context rows")
	}
	fig6, err := RunFig6(env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig6.String(), "wilcoxon") {
		t.Error("fig6 render missing significance column")
	}
	table1, err := RunTable1(env)
	if err != nil {
		t.Fatal(err)
	}
	if table1.Overall("cqc") <= 0 {
		t.Error("table1 overall missing")
	}
	fig8, err := RunFig8(env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig8.String(), "ipd") {
		t.Error("fig8 render missing policies")
	}
}

func TestPublicRobustnessRunners(t *testing.T) {
	env := apiEnv(t)
	spam, err := RunSpamRobustness(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(spam.Fractions) == 0 {
		t.Error("spam sweep empty")
	}
	churn, err := RunChurnRobustness(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(churn.ChurnRates) == 0 {
		t.Error("churn sweep empty")
	}
	cq, err := RunCQCAblation(env)
	if err != nil {
		t.Fatal(err)
	}
	if cq.FullAccuracy <= 0 {
		t.Error("cqc ablation empty")
	}
	ba, err := RunBanditAblation(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(ba.ContextAware) == 0 {
		t.Error("bandit ablation empty")
	}
}
