package crowdlearn

// End-to-end integration scenarios that cross package boundaries: a
// deployment that checkpoints the learned system state mid-campaign,
// restarts from the checkpoint, and continues assessing — the workflow an
// operator relies on when the assessment service is redeployed during a
// disaster.

import (
	"bytes"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/classifier"
)

func TestCheckpointRestartMidCampaign(t *testing.T) {
	env := apiEnv(t)

	sys, err := env.NewSystem()
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: run the first half of the campaign.
	half := CampaignConfig{Cycles: 20, ImagesPerCycle: 10}
	firstHalf, err := RunCampaign(sys, env.Dataset.Test[:200], half)
	if err != nil {
		t.Fatal(err)
	}
	if firstHalf.QueriedCount() == 0 {
		t.Fatal("first half posted no crowd queries")
	}

	// Checkpoint.
	var checkpoint bytes.Buffer
	if err := sys.SaveState(&checkpoint); err != nil {
		t.Fatal(err)
	}

	// "Redeploy": a fresh process constructs the system from scratch and
	// restores the checkpoint.
	restored, err := NewSystem(DefaultSystemConfig(), mustPlatform(t))
	if err != nil {
		t.Fatal(err)
	}
	trainSamples := classifier.SamplesFromImages(env.Dataset.Train)
	if err := restored.RestoreState(bytes.NewReader(checkpoint.Bytes()), trainSamples); err != nil {
		t.Fatal(err)
	}

	// The restored system's remaining budget must match the original's.
	if got, want := restored.Policy().RemainingBudget(), sys.Policy().RemainingBudget(); got != want {
		t.Fatalf("restored budget %v, want %v", got, want)
	}

	// Phase 2: the restored system finishes the campaign on fresh images.
	secondHalf, err := RunCampaign(restored, env.Dataset.Test[200:400], half)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ComputeMetrics(secondHalf.TrueLabels(), secondHalf.PredictedLabels())
	if err != nil {
		t.Fatal(err)
	}
	if m2.Accuracy < 0.75 {
		t.Errorf("restored system second-half accuracy %.3f; learned state lost?", m2.Accuracy)
	}
	// The combined spend must respect the single shared budget.
	total := firstHalf.TotalSpend() + secondHalf.TotalSpend()
	if budget := DefaultSystemConfig().Bandit.BudgetDollars; total > budget+1e-9 {
		t.Errorf("combined spend %.2f exceeds the checkpointed budget %.2f", total, budget)
	}
}

func mustPlatform(t *testing.T) *Platform {
	t.Helper()
	cfg := DefaultPlatformConfig()
	cfg.Seed = 8
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The full seven-scheme evaluation through the public API, asserting the
// deliverable the repository exists for: the paper's headline ordering.
func TestFullEvaluationHeadline(t *testing.T) {
	env := apiEnv(t)
	set, err := RunCampaignSet(env)
	if err != nil {
		t.Fatal(err)
	}
	table2, err := set.Table2()
	if err != nil {
		t.Fatal(err)
	}
	cl := table2.Metrics["crowdlearn"]
	for name, m := range table2.Metrics {
		if name == "crowdlearn" {
			continue
		}
		if cl.F1 <= m.F1 {
			t.Errorf("crowdlearn F1 %.3f must beat %s %.3f", cl.F1, name, m.F1)
		}
	}
	// Export every campaign; the JSON must parse implicitly via Export's
	// own encoder (errors surface here).
	for name, res := range set.Results {
		var buf bytes.Buffer
		if err := res.Export(&buf); err != nil {
			t.Errorf("export %s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("export %s produced no bytes", name)
		}
	}
}
