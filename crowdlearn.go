// Package crowdlearn is the public API of the CrowdLearn reproduction: a
// crowd-AI hybrid system for deep-learning-based disaster damage
// assessment (Zhang et al., ICDCS 2019).
//
// The package re-exports the stable surface of the internal packages:
//
//   - the synthetic disaster-imagery substrate (Dataset, Image, Label);
//   - the simulated crowdsourcing platform (Platform, PilotData);
//   - the CrowdLearn system itself (System) and the paper's baseline
//     schemes, all runnable through the sensing-cycle campaign protocol;
//   - the experiment runners that regenerate every table and figure of
//     the paper's evaluation section.
//
// Quick start:
//
//	lab, err := crowdlearn.NewLab(crowdlearn.DefaultLabConfig())
//	// handle err
//	sys, err := lab.NewSystem()
//	// handle err
//	result, err := crowdlearn.RunCampaign(sys, lab.Dataset.Test, crowdlearn.DefaultCampaignConfig())
//
// See examples/ for complete programs and cmd/crowdlearn for the CLI that
// regenerates the paper's tables and figures.
package crowdlearn

import (
	"io"
	"log/slog"

	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/eval"
	"github.com/crowdlearn/crowdlearn/internal/experiments"
	"github.com/crowdlearn/crowdlearn/internal/faults"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/obs"
	"github.com/crowdlearn/crowdlearn/internal/prof"
	"github.com/crowdlearn/crowdlearn/internal/store"
)

// Re-exported imagery types: the dataset substrate.
type (
	// Dataset is a generated corpus with train/test splits.
	Dataset = imagery.Dataset
	// DatasetConfig parameterises dataset generation.
	DatasetConfig = imagery.Config
	// Image is one synthetic social-media disaster report.
	Image = imagery.Image
	// Label is a damage-severity class.
	Label = imagery.Label
	// FailureMode classifies why AI experts fail on an image.
	FailureMode = imagery.FailureMode
)

// Damage severity classes.
const (
	NoDamage       = imagery.NoDamage
	ModerateDamage = imagery.ModerateDamage
	SevereDamage   = imagery.SevereDamage
	// NumLabels is the number of severity classes.
	NumLabels = imagery.NumLabels
)

// Re-exported crowd types: the simulated MTurk platform.
type (
	// Platform is the simulated crowdsourcing marketplace.
	Platform = crowd.Platform
	// PlatformConfig parameterises the platform.
	PlatformConfig = crowd.Config
	// PilotData is the pilot-study record used to characterise the
	// black-box platform.
	PilotData = crowd.PilotData
	// TemporalContext is the time-of-day regime of a query.
	TemporalContext = crowd.TemporalContext
	// Cents is a monetary incentive.
	Cents = crowd.Cents
)

// Temporal contexts.
const (
	Morning   = crowd.Morning
	Afternoon = crowd.Afternoon
	Evening   = crowd.Evening
	Midnight  = crowd.Midnight
)

// Re-exported core types: the system and campaign protocol.
type (
	// System is the closed-loop CrowdLearn system (QSS + IPD + CQC + MIC).
	System = core.CrowdLearn
	// CrowdPlatform is the crowd-marketplace interface the System posts
	// through — satisfied by Platform and by FaultInjector, so fault
	// injection composes with every scheme.
	CrowdPlatform = core.CrowdPlatform
	// RecoveryConfig parameterises the closed loop's crowd-failure
	// handling: HIT deadlines, budget-aware requery with incentive
	// backoff, and graceful degradation to AI labels. The zero value
	// disables recovery.
	RecoveryConfig = core.RecoveryConfig
	// SystemConfig assembles a System.
	SystemConfig = core.Config
	// Scheme is any damage-assessment system runnable through campaigns.
	Scheme = core.Scheme
	// CycleInput is one sensing cycle's workload.
	CycleInput = core.CycleInput
	// CycleOutput is a scheme's assessment of one cycle.
	CycleOutput = core.CycleOutput
	// CampaignConfig drives the 40x10 evaluation protocol.
	CampaignConfig = core.CampaignConfig
	// CampaignResult aggregates a campaign run.
	CampaignResult = core.CampaignResult
	// PipelinedScheme is a scheme whose cycle splits into a compute
	// phase and a detachable durability phase; System implements it.
	PipelinedScheme = core.PipelinedScheme
	// Metrics holds accuracy / precision / recall / F1.
	Metrics = eval.Metrics
	// Sample is one training sample (image + target distribution); used
	// by System.RestoreState to re-seed the retraining replay pool.
	Sample = classifier.Sample
)

// Re-exported observability types: the zero-dependency metrics registry
// and cycle tracer (see DESIGN.md "Observability"). Attach them through
// SystemConfig.Metrics / SystemConfig.Tracer (or Lab.NewSystemWith) and
// CampaignConfig.Tracer.
type (
	// MetricsRegistry collects counters, gauges and histograms and renders
	// them in Prometheus text exposition format.
	MetricsRegistry = obs.Registry
	// Tracer records one span tree per sensing cycle in a bounded ring.
	Tracer = obs.Tracer
	// CycleTrace is one cycle's span tree.
	CycleTrace = obs.CycleTrace
	// Span is one named stage of a cycle.
	Span = obs.Span
	// StageStat aggregates span durations by stage name.
	StageStat = obs.StageStat
	// Profiler records per-worker utilization of the sensing loop's
	// parallel stages and exports crowdlearn_parallel_* metrics. Attach
	// through SystemConfig.Profiler.
	Profiler = prof.Profiler
	// LoopProfile is one profiled parallel loop's utilization record,
	// attached to stage spans as the "parallel" attribute.
	LoopProfile = prof.LoopProfile
	// StageTotals is the profiler's per-stage roll-up.
	StageTotals = prof.StageTotals
	// AllocSampler attributes heap-allocation deltas to spans when
	// attached via Tracer.SetSampler (runtime/metrics-backed; safe and
	// cheap at every span boundary).
	AllocSampler = prof.AllocSampler
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer builds a cycle tracer retaining the most recent capacity
// traces (capacity <= 0 selects obs.DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewProfiler builds a parallel-stage profiler exporting to reg (nil
// keeps stage totals without exporting metrics).
func NewProfiler(reg *MetricsRegistry) *Profiler { return prof.New(reg) }

// AggregateStages totals spans by stage name across the given traces —
// the per-stage roll-up behind reports and benchmark extras.
func AggregateStages(traces []*CycleTrace) map[string]StageStat {
	return obs.AggregateStages(traces)
}

// SamplesFromImages builds hard-labelled training samples from ground
// truth — the argument System.RestoreState expects for its replay pool.
func SamplesFromImages(images []*Image) []Sample {
	return classifier.SamplesFromImages(images)
}

// Lab is the assembled evaluation environment: dataset, platform
// configuration and pilot study, ready to build systems and run
// experiments.
type Lab = experiments.Env

// LabConfig parameterises the Lab.
type LabConfig = experiments.Config

// DefaultLabConfig reproduces the paper's evaluation setup: 960 images
// (560 train / 400 test), a 240-worker platform, the 7-level x 4-context
// pilot study, and the 40x10 campaign protocol.
func DefaultLabConfig() LabConfig { return experiments.DefaultConfig() }

// NewLab generates the dataset and runs the pilot study.
func NewLab(cfg LabConfig) (*Lab, error) { return experiments.NewEnv(cfg) }

// GenerateDataset builds a synthetic disaster-image corpus.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) { return imagery.Generate(cfg) }

// DefaultDatasetConfig mirrors the paper's 960-image corpus shape.
func DefaultDatasetConfig() DatasetConfig { return imagery.DefaultConfig() }

// NewPlatform builds a simulated crowdsourcing platform.
func NewPlatform(cfg PlatformConfig) (*Platform, error) { return crowd.NewPlatform(cfg) }

// DefaultPlatformConfig mirrors the paper's MTurk setup (5 assignments
// per query).
func DefaultPlatformConfig() PlatformConfig { return crowd.DefaultConfig() }

// DefaultSystemConfig mirrors the paper's CrowdLearn configuration.
func DefaultSystemConfig() SystemConfig { return core.DefaultConfig() }

// NewSystem assembles a CrowdLearn system against a crowd platform —
// the simulated marketplace itself, or a FaultInjector wrapping it. Call
// Bootstrap on the result before running cycles.
func NewSystem(cfg SystemConfig, platform CrowdPlatform) (*System, error) {
	return core.New(cfg, platform)
}

// DefaultRecoveryConfig is the resilience tuning used by the faults
// experiment: 30-minute HIT deadlines, quorum 3, two requery waves at
// 1.5x incentive backoff capped at 20 cents.
func DefaultRecoveryConfig() RecoveryConfig { return core.DefaultRecoveryConfig() }

// Re-exported fault-injection types (see internal/faults): a
// deterministic, seedable adversary for the crowd platform.
type (
	// FaultConfig parameterises the injector; the zero value injects
	// nothing and is a bit-for-bit no-op.
	FaultConfig = faults.Config
	// FaultInjector wraps a CrowdPlatform with deterministic failure
	// injection: abandonment, delay spikes, duplicates, stale replays,
	// dropout bursts and platform outages.
	FaultInjector = faults.Injector
	// FaultCounts tallies injected faults by kind.
	FaultCounts = faults.Counts
)

// NewFaultInjector wraps a crowd platform with deterministic fault
// injection.
func NewFaultInjector(inner CrowdPlatform, cfg FaultConfig) (*FaultInjector, error) {
	return faults.New(inner, cfg)
}

// DefaultCampaignConfig mirrors the paper's 40-cycle protocol.
func DefaultCampaignConfig() CampaignConfig { return core.DefaultCampaignConfig() }

// RunCampaign drives a scheme through the sensing-cycle protocol.
func RunCampaign(scheme Scheme, test []*Image, cfg CampaignConfig) (*CampaignResult, error) {
	return core.RunCampaign(scheme, test, cfg)
}

// RunCampaignPipelined drives a scheme through the protocol with each
// cycle's durable commit (WAL append, fsync, periodic checkpoint)
// overlapped with the next cycle's compute. Results, records and
// journal bytes are byte-identical to RunCampaign; see DESIGN.md §9
// for the epoch-merge barrier contract.
func RunCampaignPipelined(scheme PipelinedScheme, test []*Image, cfg CampaignConfig) (*CampaignResult, error) {
	return core.RunCampaignPipelined(scheme, test, cfg)
}

// ComputeMetrics derives Table II-style metrics from parallel label
// slices.
func ComputeMetrics(truths, preds []Label) (Metrics, error) {
	return eval.Compute(truths, preds)
}

// Re-exported durable-persistence types (see internal/store and
// DESIGN.md §10): crash-safe checkpoint files plus a write-ahead cycle
// log, with deterministic restart recovery.
type (
	// StateStore is one durable state directory: rotating checksummed
	// checkpoints and the append-only cycle log.
	StateStore = store.Store
	// StateStoreOptions configures OpenStateStore.
	StateStoreOptions = store.Options
	// StateJournal adapts a StateStore to SystemConfig.Journal: it
	// appends every committed cycle to the log and checkpoints on a
	// cycle cadence.
	StateJournal = store.Journal
	// CycleJournal is the hook a System calls after each committed
	// cycle (SystemConfig.Journal).
	CycleJournal = core.CycleJournal
	// RecoverOptions parameterises StateStore.Recover.
	RecoverOptions = store.RecoverOptions
	// RecoveryReport describes what Recover restored, skipped,
	// truncated and replayed.
	RecoveryReport = store.RecoveryReport
	// StoreFaultConfig seeds deterministic persistence faults (torn
	// writes, failed renames, torn log appends) for crash-safety tests.
	StoreFaultConfig = store.FaultConfig
)

// OpenStateStore opens (creating if needed) a durable state directory,
// truncating any torn write-ahead-log tail left by a crash.
func OpenStateStore(opts StateStoreOptions) (*StateStore, error) { return store.Open(opts) }

// NewStateJournal wires a StateStore behind SystemConfig.Journal:
// every committed cycle is appended durably, and every `every` cycles
// (0 = never) a checkpoint is written via save — normally the system's
// SaveState. logger and metrics may be nil.
func NewStateJournal(st *StateStore, every int, save func(w io.Writer) error, logger *slog.Logger, metrics *MetricsRegistry) *StateJournal {
	return store.NewJournal(st, every, save, logger, metrics)
}
