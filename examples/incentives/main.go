// Incentives: the IPD module in isolation. Watch the constrained
// contextual bandit learn the crowd's incentive-delay surface and
// allocate a fixed budget across temporal contexts, compared against the
// fixed- and random-incentive policies the paper evaluates in Figure 8.
//
// This example is for operators tuning crowdsourcing spend: it shows why
// paying a flat rate wastes money at night and starves the morning.
package main

import (
	"fmt"
	"log"
	"time"

	crowdlearn "github.com/crowdlearn/crowdlearn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lab, err := crowdlearn.NewLab(crowdlearn.DefaultLabConfig())
	if err != nil {
		return err
	}

	fmt.Println("The pilot study's view of the platform (Figure 5):")
	fig5, err := crowdlearn.RunFig5(lab)
	if err != nil {
		return err
	}
	fmt.Println(fig5)

	fmt.Println("...and what each incentive level buys in label quality (Figure 6):")
	fig6, err := crowdlearn.RunFig6(lab)
	if err != nil {
		return err
	}
	fmt.Println(fig6)

	fmt.Println("Now the live comparison: 40 rounds of 5 queries, $20 budget each (Figure 8):")
	start := time.Now()
	fig8, err := crowdlearn.RunFig8(lab)
	if err != nil {
		return err
	}
	fmt.Println(fig8)
	fmt.Printf("comparison completed in %v\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Println("Reading the result: the bandit pays up in the morning where workers")
	fmt.Println("are scarce and selective, and drops to a few cents at night where a")
	fmt.Println("1-cent task is answered almost as fast as a 10-cent one. The fixed")
	fmt.Println("policy spends the same total but leaves morning queries waiting.")
	return nil
}
