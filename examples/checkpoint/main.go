// Checkpoint: operating CrowdLearn across process restarts. The system
// runs half a campaign, checkpoints every piece of learned state (expert
// weights and parameters, bandit statistics, budget position, the trained
// CQC model) to a file, then a "new process" restores the checkpoint and
// finishes the campaign — without retraining and without resetting the
// crowdsourcing budget.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	crowdlearn "github.com/crowdlearn/crowdlearn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lab, err := crowdlearn.NewLab(crowdlearn.DefaultLabConfig())
	if err != nil {
		return err
	}
	sys, err := lab.NewSystem()
	if err != nil {
		return err
	}

	half := crowdlearn.CampaignConfig{Cycles: 20, ImagesPerCycle: 10}
	first, err := crowdlearn.RunCampaign(sys, lab.Dataset.Test[:200], half)
	if err != nil {
		return err
	}
	m1, err := crowdlearn.ComputeMetrics(first.TrueLabels(), first.PredictedLabels())
	if err != nil {
		return err
	}
	fmt.Printf("phase 1: 20 cycles, accuracy %.3f, spent $%.2f, budget left $%.2f\n",
		m1.Accuracy, first.TotalSpend(), sys.Policy().RemainingBudget())

	// Checkpoint to disk.
	path := filepath.Join(os.TempDir(), "crowdlearn-checkpoint.gob")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sys.SaveState(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("checkpointed learned state to %s (%d bytes)\n", path, info.Size())

	// "Restart": construct a fresh system and restore.
	platformCfg := crowdlearn.DefaultPlatformConfig()
	platformCfg.Seed = 99 // a different crowd: state must still transfer
	platform, err := crowdlearn.NewPlatform(platformCfg)
	if err != nil {
		return err
	}
	restored, err := crowdlearn.NewSystem(crowdlearn.DefaultSystemConfig(), platform)
	if err != nil {
		return err
	}
	g, err := os.Open(path)
	if err != nil {
		return err
	}
	defer g.Close()
	if err := restored.RestoreState(g, crowdlearn.SamplesFromImages(lab.Dataset.Train)); err != nil {
		return err
	}
	fmt.Printf("restored: budget left $%.2f (carried over)\n", restored.Policy().RemainingBudget())

	second, err := crowdlearn.RunCampaign(restored, lab.Dataset.Test[200:400], half)
	if err != nil {
		return err
	}
	m2, err := crowdlearn.ComputeMetrics(second.TrueLabels(), second.PredictedLabels())
	if err != nil {
		return err
	}
	fmt.Printf("phase 2 (after restart): 20 cycles, accuracy %.3f, total spend $%.2f\n",
		m2.Accuracy, first.TotalSpend()+second.TotalSpend())
	return nil
}
