// Checkpoint: operating CrowdLearn across a process crash. The system
// runs a campaign against a durable state store — every committed cycle
// is appended to a write-ahead log and a checkpoint is written every 8
// cycles — then the program "crashes" mid-campaign: the system and all
// of its in-memory state (expert weights and parameters, bandit
// statistics, budget position, the trained CQC model) are simply
// dropped. A "new process" opens the same state directory, recovers —
// newest good checkpoint plus deterministic replay of the logged cycles
// beyond it — and finishes the campaign without retraining and without
// resetting the crowdsourcing budget.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	crowdlearn "github.com/crowdlearn/crowdlearn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "crowdlearn-state-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	lab, err := crowdlearn.NewLab(crowdlearn.DefaultLabConfig())
	if err != nil {
		return err
	}

	// ---- process 1: run with persistence, then crash mid-campaign ----
	st, err := crowdlearn.OpenStateStore(crowdlearn.StateStoreOptions{Dir: dir})
	if err != nil {
		return err
	}
	var sys *crowdlearn.System
	journal := crowdlearn.NewStateJournal(st, 8,
		func(w io.Writer) error { return sys.SaveState(w) }, nil, nil)
	sys, err = lab.NewSystemWith(func(cfg *crowdlearn.SystemConfig) { cfg.Journal = journal })
	if err != nil {
		return err
	}

	phase1 := crowdlearn.CampaignConfig{Cycles: 20, ImagesPerCycle: 10}
	first, err := crowdlearn.RunCampaign(sys, lab.Dataset.Test[:200], phase1)
	if err != nil {
		return err
	}
	m1, err := crowdlearn.ComputeMetrics(first.TrueLabels(), first.PredictedLabels())
	if err != nil {
		return err
	}
	fmt.Printf("phase 1: 20 cycles, accuracy %.3f, spent $%.2f, budget left $%.2f\n",
		m1.Accuracy, first.TotalSpend(), sys.Policy().RemainingBudget())

	// Crash. The last checkpoint covers 16 cycles; cycles 16..19 exist
	// only as write-ahead-log records. Nothing in memory survives.
	if err := st.Close(); err != nil {
		return err
	}
	sys = nil
	fmt.Println("-- simulated crash: process state dropped; only the state directory survives --")

	// ---- process 2: open the directory, recover, continue ----
	st2, err := crowdlearn.OpenStateStore(crowdlearn.StateStoreOptions{Dir: dir})
	if err != nil {
		return err
	}
	defer st2.Close()
	// The replacement process rebuilds the same lab (same seeds) and a
	// fresh system, then recovers the crashed process's learned state.
	restored, err := lab.NewSystem()
	if err != nil {
		return err
	}
	report, err := st2.Recover(restored, crowdlearn.RecoverOptions{
		TrainSamples:   crowdlearn.SamplesFromImages(lab.Dataset.Train),
		Registry:       lab.Dataset.Test,
		ResyncPlatform: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("recovered: outcome=%s checkpointCycles=%d walReplayed=%d nextCycle=%d\n",
		report.Outcome, report.CheckpointCycles, report.CyclesReplayed, report.NextCycle)
	fmt.Printf("restored: budget left $%.2f (carried over)\n", restored.Policy().RemainingBudget())

	phase2 := crowdlearn.CampaignConfig{Cycles: 20, ImagesPerCycle: 10, StartCycle: report.NextCycle}
	second, err := crowdlearn.RunCampaign(restored, lab.Dataset.Test[200:400], phase2)
	if err != nil {
		return err
	}
	m2, err := crowdlearn.ComputeMetrics(second.TrueLabels(), second.PredictedLabels())
	if err != nil {
		return err
	}
	fmt.Printf("phase 2 (after crash recovery): 20 cycles, accuracy %.3f, total spend $%.2f\n",
		m2.Accuracy, first.TotalSpend()+second.TotalSpend())
	return nil
}
