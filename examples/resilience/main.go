// Resilience: run CrowdLearn against a faulty crowd platform — 30% HIT
// abandonment, delay spikes, duplicate and stale responses, plus a
// mid-campaign outage — and watch the recovery policy (HIT deadlines,
// budget-aware requery with incentive backoff, graceful degradation to
// AI labels) keep the closed loop alive and the budget balanced.
package main

import (
	"fmt"
	"log"
	"time"

	crowdlearn "github.com/crowdlearn/crowdlearn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lab, err := crowdlearn.NewLab(crowdlearn.DefaultLabConfig())
	if err != nil {
		return err
	}

	// The injector wraps the simulated MTurk behind the same interface
	// the system posts through. Everything is seeded: a faulted campaign
	// is exactly as reproducible as a clean one.
	faultCfg := crowdlearn.FaultConfig{
		Seed:           7,
		AbandonRate:    0.30,
		DelaySpikeRate: 0.10,
		DuplicateRate:  0.05,
		StaleRate:      0.05,
		OutageStart:    90 * time.Minute,
		OutageDuration: time.Hour,
	}
	injector, err := crowdlearn.NewFaultInjector(lab.NewPlatform(), faultCfg)
	if err != nil {
		return err
	}

	// Recovery on: 30-minute HIT deadlines, quorum 3, two requery waves
	// at 1.5x incentive backoff, degraded images fall back to AI labels.
	sys, err := lab.NewSystemOn(injector, func(cfg *crowdlearn.SystemConfig) {
		cfg.Recovery = crowdlearn.DefaultRecoveryConfig()
	})
	if err != nil {
		return err
	}

	result, err := crowdlearn.RunCampaign(sys, lab.Dataset.Test, crowdlearn.DefaultCampaignConfig())
	if err != nil {
		return err
	}

	var requeries, late, outages, degraded int
	var refunded float64
	for _, rec := range result.Records {
		requeries += rec.Output.Requeries
		late += rec.Output.LateResponses
		outages += rec.Output.Outages
		degraded += len(rec.Output.Degraded)
		refunded += rec.Output.RefundedDollars
	}
	m, err := crowdlearn.ComputeMetrics(result.TrueLabels(), result.PredictedLabels())
	if err != nil {
		return err
	}

	counts := injector.Counts()
	fmt.Printf("campaign completed: %d cycles under injected faults\n\n", len(result.Records))
	fmt.Printf("injected:  %d abandoned, %d delay-spiked, %d duplicated, %d stale, %d outage rejections\n",
		counts.Abandoned, counts.DelaySpiked, counts.Duplicated, counts.Stale, counts.OutageRejects)
	fmt.Printf("recovered: %d requeries, %d late responses discarded, %d outages ridden out\n",
		requeries, late, outages)
	fmt.Printf("degraded:  %d images fell back to AI labels\n\n", degraded)

	policy := sys.Policy()
	fmt.Printf("macro F1 under faults: %.3f\n", m.F1)
	fmt.Printf("budget: spent $%.2f + remaining $%.2f = total $%.2f (refunded $%.2f re-entered the pool)\n",
		policy.SpentDollars(), policy.RemainingBudget(), policy.TotalBudget(), refunded)
	fmt.Printf("platform payout matches policy spend: $%.2f\n", injector.Spent())
	return nil
}
