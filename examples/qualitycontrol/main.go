// Qualitycontrol: the CQC module in isolation. One batch of real
// (simulated) crowd responses — including deceptive images the majority
// of workers get wrong — aggregated by CQC and by the three baselines
// from the paper's Table I, with a per-image breakdown showing where the
// questionnaire evidence overturns a wrong majority.
package main

import (
	"fmt"
	"log"

	crowdlearn "github.com/crowdlearn/crowdlearn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lab, err := crowdlearn.NewLab(crowdlearn.DefaultLabConfig())
	if err != nil {
		return err
	}

	fmt.Println("Table I on this lab's crowd:")
	table1, err := crowdlearn.RunTable1(lab)
	if err != nil {
		return err
	}
	fmt.Println(table1)

	fmt.Println("Why the questionnaire matters — deceptive-image batch:")
	ablation, err := crowdlearn.RunCQCAblation(lab)
	if err != nil {
		return err
	}
	fmt.Println(ablation)

	fmt.Println("A photoshopped 'collapsed road' collects severe-damage votes from")
	fmt.Println("workers who miss the fake, but the questionnaire answers ('is this")
	fmt.Println("image photoshopped?') carry the evidence the boosted-tree model")
	fmt.Println("needs to overturn the majority. Majority voting cannot recover.")
	return nil
}
