// Observability: run a short CrowdLearn campaign with the metrics
// registry and cycle tracer attached, then print what an operator would
// see — the per-stage timing breakdown /trace serves and the Prometheus
// text exposition /metrics serves.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	crowdlearn "github.com/crowdlearn/crowdlearn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lab, err := crowdlearn.NewLab(crowdlearn.DefaultLabConfig())
	if err != nil {
		return err
	}

	// Wire one registry + tracer through the system; the service daemon
	// (cmd/crowdlearnd) does exactly this and serves them over HTTP.
	registry := crowdlearn.NewMetricsRegistry()
	tracer := crowdlearn.NewTracer(64)
	sys, err := lab.NewSystemWith(func(cfg *crowdlearn.SystemConfig) {
		cfg.Metrics = registry
		cfg.Tracer = tracer
	})
	if err != nil {
		return err
	}

	// A short campaign: 8 cycles of 10 images.
	campaign := crowdlearn.DefaultCampaignConfig()
	campaign.Cycles = 8
	campaign.Tracer = tracer
	result, err := crowdlearn.RunCampaign(sys, lab.Dataset.Test, campaign)
	if err != nil {
		return err
	}
	metrics, err := crowdlearn.ComputeMetrics(result.TrueLabels(), result.PredictedLabels())
	if err != nil {
		return err
	}
	fmt.Printf("campaign: %d cycles, accuracy %.3f, spend $%.2f\n\n",
		campaign.Cycles, metrics.Accuracy, result.TotalSpend())

	// Per-stage timing, aggregated across the collected span trees.
	stats := result.StageStats()
	stages := make([]string, 0, len(stats))
	for name := range stats {
		stages = append(stages, name)
	}
	sort.Strings(stages)
	fmt.Println("stage timing across the campaign (wall-clock | simulated):")
	for _, name := range stages {
		st := stats[name]
		fmt.Printf("  %-16s x%-3d  mean %10v | %10v\n",
			name, st.Count, st.MeanWall().Round(1000), st.MeanSimulated().Round(1e6))
	}

	// The newest cycle's span tree, as GET /trace would return it.
	if traces := tracer.Recent(1); len(traces) == 1 {
		fmt.Printf("\nlast cycle's span tree (cycle %d, %s):\n", traces[0].Cycle, traces[0].Context)
		printSpan(traces[0].Root, 1)
	}

	// The full Prometheus exposition, as GET /metrics would serve it.
	fmt.Println("\nPrometheus exposition:")
	return registry.WritePrometheus(os.Stdout)
}

func printSpan(sp *crowdlearn.Span, depth int) {
	fmt.Printf("%s%-16s wall %10v  simulated %10v\n",
		strings.Repeat("  ", depth), sp.Name, sp.Wall.Round(1000), sp.Simulated.Round(1e6))
	for _, child := range sp.Children {
		printSpan(child, depth+1)
	}
}
