// Earthquake: the paper's headline scenario end to end — a 40-cycle
// damage-assessment campaign over a simulated disaster's image stream,
// comparing CrowdLearn against the strongest AI-only baseline and
// reporting per-context crowd delays, spend, and final metrics.
//
// This is the deployment a response agency would actually run: images
// arrive in batches around the clock, the AI labels everything instantly,
// and the crowd is consulted only where the AI is likely wrong.
package main

import (
	"fmt"
	"log"
	"time"

	crowdlearn "github.com/crowdlearn/crowdlearn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("CrowdLearn earthquake response campaign")
	fmt.Println("=======================================")
	start := time.Now()
	lab, err := crowdlearn.NewLab(crowdlearn.DefaultLabConfig())
	if err != nil {
		return err
	}
	fmt.Printf("lab ready (%d train / %d test images, pilot study complete) in %v\n\n",
		len(lab.Dataset.Train), len(lab.Dataset.Test), time.Since(start).Round(time.Millisecond))

	sys, err := lab.NewSystem()
	if err != nil {
		return err
	}
	campaign, err := crowdlearn.RunCampaign(sys, lab.Dataset.Test, crowdlearn.DefaultCampaignConfig())
	if err != nil {
		return err
	}

	m, err := crowdlearn.ComputeMetrics(campaign.TrueLabels(), campaign.PredictedLabels())
	if err != nil {
		return err
	}
	fmt.Printf("CrowdLearn over 40 sensing cycles (400 images):\n")
	fmt.Printf("  accuracy %.3f  precision %.3f  recall %.3f  F1 %.3f\n",
		m.Accuracy, m.Precision, m.Recall, m.F1)
	fmt.Printf("  crowd queries: %d  total spend: $%.2f\n",
		campaign.QueriedCount(), campaign.TotalSpend())
	fmt.Printf("  mean algorithm delay/cycle: %v\n", campaign.MeanAlgorithmDelay().Round(10*time.Millisecond))
	fmt.Printf("  mean crowd delay/cycle:     %v\n\n", campaign.MeanCrowdDelay().Round(time.Second))

	fmt.Println("crowd delay by temporal context (the incentive bandit at work):")
	byCtx := campaign.CrowdDelayByContext()
	for _, ctx := range []crowdlearn.TemporalContext{
		crowdlearn.Morning, crowdlearn.Afternoon, crowdlearn.Evening, crowdlearn.Midnight,
	} {
		fmt.Printf("  %-9s %v\n", ctx, byCtx[ctx].Round(time.Second))
	}

	// Per-cycle trace for the first cycles: what an operator would watch.
	fmt.Println("\nfirst six cycles:")
	for _, rec := range campaign.Records[:6] {
		truths := 0
		labels := rec.Output.Labels()
		for i, im := range rec.Input.Images {
			if labels[i] == im.TrueLabel {
				truths++
			}
		}
		fmt.Printf("  cycle %2d [%-9s] acc %d/%d  queried %d @ %s  crowd %v\n",
			rec.Input.Index, rec.Input.Context, truths, len(rec.Input.Images),
			len(rec.Output.Queried), rec.Output.Incentive, rec.Output.CrowdDelay.Round(time.Second))
	}
	return nil
}
