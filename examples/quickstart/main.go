// Quickstart: build the evaluation lab, assemble a CrowdLearn system, run
// one sensing cycle, and print what the system decided for each image —
// including which images it chose to ask the crowd about.
package main

import (
	"fmt"
	"log"

	crowdlearn "github.com/crowdlearn/crowdlearn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The lab generates the synthetic disaster-image corpus (960 images,
	// 560 train / 400 test) and runs the MTurk pilot study that
	// characterises the crowd platform.
	lab, err := crowdlearn.NewLab(crowdlearn.DefaultLabConfig())
	if err != nil {
		return err
	}

	// NewSystem trains the expert committee on the train split, trains
	// the CQC quality-control model on the pilot responses, and
	// warm-starts the incentive bandit.
	sys, err := lab.NewSystem()
	if err != nil {
		return err
	}

	// One sensing cycle: ten fresh images arriving in the evening.
	batch := lab.Dataset.Test[:10]
	out, err := sys.RunCycle(crowdlearn.CycleInput{
		Index:   0,
		Context: crowdlearn.Evening,
		Images:  batch,
	})
	if err != nil {
		return err
	}

	queried := make(map[int]bool, len(out.Queried))
	for _, idx := range out.Queried {
		queried[idx] = true
	}
	fmt.Printf("sensing cycle 0 (evening): %d images, %d sent to the crowd at %s each\n",
		len(batch), len(out.Queried), out.Incentive)
	fmt.Printf("algorithm delay %v, crowd delay %v, spend $%.2f\n\n",
		out.AlgorithmDelay, out.CrowdDelay.Round(1e9), out.SpentDollars)

	labels := out.Labels()
	correct := 0
	for i, im := range batch {
		source := "AI committee"
		if queried[i] {
			source = "crowd (CQC)"
		}
		verdict := "WRONG"
		if labels[i] == im.TrueLabel {
			verdict = "ok"
			correct++
		}
		fmt.Printf("image %3d  truth=%-9s  predicted=%-9s  via %-12s  %s\n",
			im.ID, im.TrueLabel, labels[i], source, verdict)
	}
	fmt.Printf("\ncycle accuracy: %d/%d\n", correct, len(batch))
	return nil
}
