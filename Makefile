# Convenience targets for the CrowdLearn reproduction.

GO ?= go

.PHONY: all build vet test race bench artefacts report clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/service/ ./internal/core/

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure plus ablations into ./artefacts.
artefacts:
	$(GO) run ./cmd/crowdlearn -out artefacts all

# Regenerate the paper-vs-measured markdown report.
report:
	$(GO) run ./cmd/crowdlearn report | sed -n '/# CrowdLearn/,/^Deterministic/p' > REPORT.md

clean:
	rm -rf artefacts
