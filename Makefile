# Convenience targets for the CrowdLearn reproduction.

GO ?= go

.PHONY: all build vet lint test race race-equivalence crash-recovery chaos bench bench-json bench-gate load-json load-gate cover-obs faults fuzz artefacts report clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The static-analysis gate: formatting, go vet, and crowdlint — the
# custom stdlib-only rule suite (internal/lint) that enforces the
# repo's determinism, durability and concurrency invariants
# (DESIGN.md §11). Fails on any unformatted file, vet finding, or
# crowdlint diagnostic.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/crowdlint -baseline lint-baseline.json ./...
	$(GO) run ./cmd/crowdlint -tests -rules no-copied-locks-by-value,goroutine-ownership ./...

# -shuffle=on randomises test execution order to flush out inter-test
# state dependence.
test:
	$(GO) test -shuffle=on ./...

# The experiments package runs full campaigns and needs well over the
# 10m default package timeout under the race detector.
race:
	$(GO) test -race -timeout 45m ./...

# Coverage for the observability package (metrics registry + tracer).
cover-obs:
	$(GO) test -cover ./internal/obs/

# Smoke-run the fault-injection experiment: reduced scenario grid, both
# recovery arms, budget-conservation audit.
faults:
	$(GO) test -run TestFaultsSmoke -v -count=1 ./internal/experiments/

# Short fuzzing session over the HTTP request-decoding surface and the
# durable-store file parsers.
fuzz:
	$(GO) test -run xxx -fuzz FuzzParseContext -fuzztime 30s ./internal/service/
	$(GO) test -run xxx -fuzz FuzzAssessDecode -fuzztime 30s ./internal/service/
	$(GO) test -run xxx -fuzz FuzzOpenCheckpoint -fuzztime 30s ./internal/store/
	$(GO) test -run xxx -fuzz FuzzWALScan -fuzztime 30s ./internal/store/

# The crash-safety equivalence suite under the race detector: kill-and-
# recover arms must end byte-identical to an uninterrupted arm, through
# checkpoint+WAL, WAL-only and all-checkpoints-torn recoveries
# (DESIGN.md §10).
crash-recovery:
	$(GO) test -race -timeout 30m -run 'CrashRecovery|TestRecover' ./internal/store/ ./internal/core/

# The chaos suite under the race detector: the full seeded kill-point
# catalog (internal/chaos, also runnable interactively via
# cmd/crowdchaos) asserting byte-identical post-restart state, zero
# cross-campaign contamination, bounded restart counts and observable
# breaker/quarantine transitions (DESIGN.md §13). The verbose log is
# kept at artefacts/chaos.log for CI artifact upload.
chaos:
	@mkdir -p artefacts
	@{ $(GO) test -race -count=1 -timeout 30m -v ./internal/chaos/ 2>&1; echo $$? > artefacts/.chaos-status; } | tee artefacts/chaos.log; \
	exit $$(cat artefacts/.chaos-status)

# The deterministic-parallelism equivalence suite under the race
# detector: bit-identical outputs at every worker count plus the
# concurrent-access regressions (DESIGN.md §9).
race-equivalence:
	$(GO) test -race -timeout 30m -run 'BitIdentical|Concurrent' ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The tracked benchmark set: the workers=1/2/4 sensing cycle (with
# per-stage wall/busy/idle/utilization extras from the stage profiler),
# the Table II regeneration, and the allocation-free scoring-path
# benchmarks. Iteration counts are pinned (-benchtime Nx): RunCycle's
# per-op cost depends on b.N (MIC retrains accumulate training data
# across iterations), so adaptive benchtime makes ns/op and allocs/op
# incomparable between runs and the regression gate meaningless.
BENCH_CMD = ( $(GO) test -bench 'BenchmarkTable2Accuracy' -benchtime 1x -benchmem -run xxx -timeout 60m . ; \
	  $(GO) test -bench 'BenchmarkRunCycleParallel' -benchtime 300x -benchmem -run xxx -timeout 60m . ; \
	  $(GO) test -bench 'BenchmarkRunCyclePipelined' -benchtime 150x -benchmem -run xxx -timeout 60m . ; \
	  $(GO) test -bench 'BenchmarkCommitteeVote$$|BenchmarkCommitteeEntropy$$' -benchtime 100000x -benchmem -run xxx ./internal/qss/ )

# Machine-readable parallel-scaling trajectory: reruns the tracked
# benchmark set and appends to the committed BENCH_parallel.json —
# the previous record moves into the document's history, so the file
# carries the performance trajectory across PRs. Speedups in the file
# scale with the core count of the recording machine.
bench-json:
	$(BENCH_CMD) | $(GO) run ./cmd/benchjson -o BENCH_parallel.json
	@cat BENCH_parallel.json

# The CI regression gate (DESIGN.md §12): rerun the tracked benchmark
# set, compare against the committed BENCH_parallel.json baseline, fail
# on >20% ns/op or >10% allocs/op regression, and leave the fresh record
# at artefacts/bench-latest.json for artifact upload either way. The
# -min-speedup floor additionally requires workers=4 RunCycle to beat
# workers=1 on a multi-core runner; benchjson skips it with a printed
# notice when the run executed at GOMAXPROCS=1 (a single-core runner
# cannot demonstrate parallel speedup — the grain policy collapses the
# fan-out inline there).
bench-gate:
	@mkdir -p artefacts
	$(BENCH_CMD) | $(GO) run ./cmd/benchjson -gate BENCH_parallel.json -o artefacts/bench-latest.json \
		-min-speedup 'BenchmarkRunCycleParallel:4:1.0'

# Machine-readable overload trajectory: drive the assessment service
# through an open-loop arrival ramp twice — once behind the admission
# ladder, once with a plain unbounded queue — and append both arms to
# the committed BENCH_service.json (previous record moves into the
# document's history, so the file carries the overload-robustness
# trajectory across PRs).
load-json:
	$(GO) run ./cmd/crowdload -o BENCH_service.json
	@cat BENCH_service.json

# The CI overload gate (DESIGN.md §14): re-measure both arms, require
# the admission arm's goodput at 2x saturation to hold within 20% of
# its peak (the baseline arm must collapse — that contrast is what
# proves the ladder is doing the work), and check the committed
# BENCH_service.json claims the same. The fresh record lands at
# artefacts/load-latest.json for artifact upload either way.
load-gate:
	@mkdir -p artefacts
	$(GO) run ./cmd/crowdload -gate BENCH_service.json -o artefacts/load-latest.json

# Regenerate every paper table/figure plus ablations into ./artefacts.
artefacts:
	$(GO) run ./cmd/crowdlearn -out artefacts all

# Regenerate the paper-vs-measured markdown report.
report:
	$(GO) run ./cmd/crowdlearn report | sed -n '/# CrowdLearn/,/^Deterministic/p' > REPORT.md

clean:
	rm -rf artefacts
