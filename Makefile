# Convenience targets for the CrowdLearn reproduction.

GO ?= go

.PHONY: all build vet test race bench cover-obs artefacts report clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiments package runs full campaigns and needs well over the
# 10m default package timeout under the race detector.
race:
	$(GO) test -race -timeout 45m ./...

# Coverage for the observability package (metrics registry + tracer).
cover-obs:
	$(GO) test -cover ./internal/obs/

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure plus ablations into ./artefacts.
artefacts:
	$(GO) run ./cmd/crowdlearn -out artefacts all

# Regenerate the paper-vs-measured markdown report.
report:
	$(GO) run ./cmd/crowdlearn report | sed -n '/# CrowdLearn/,/^Deterministic/p' > REPORT.md

clean:
	rm -rf artefacts
