module github.com/crowdlearn/crowdlearn

go 1.22
