package faults

import (
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/obs"
	"github.com/crowdlearn/crowdlearn/internal/simclock"
)

// stubPlatform is a deterministic inner platform: every query gets three
// responses at 1/2/3 minutes, and every answered HIT is charged — the
// same charge-on-completion rule the real platform follows.
type stubPlatform struct {
	spent   float64
	batches int
}

var _ core.CrowdPlatform = (*stubPlatform)(nil)

func (s *stubPlatform) Spent() float64 { return s.spent }

func (s *stubPlatform) Submit(clk *simclock.Clock, ctx crowd.TemporalContext, queries []crowd.Query) ([]crowd.QueryResult, error) {
	s.batches++
	results := make([]crowd.QueryResult, len(queries))
	for qi, q := range queries {
		results[qi].Query = q
		for w := 0; w < 3; w++ {
			r := crowd.Response{
				QueryIndex: qi,
				WorkerID:   s.batches*100 + w,
				Label:      imagery.Label(w % imagery.NumLabels),
				Delay:      time.Duration(w+1) * time.Minute,
				Incentive:  q.Incentive,
				Context:    ctx,
			}
			results[qi].Responses = append(results[qi].Responses, r)
			if r.Delay > results[qi].CompletionDelay {
				results[qi].CompletionDelay = r.Delay
			}
		}
		s.spent += q.Incentive.Dollars()
	}
	return results, nil
}

func stubQueries(n int) []crowd.Query {
	qs := make([]crowd.Query, n)
	for i := range qs {
		qs[i] = crowd.Query{Incentive: 4}
	}
	return qs
}

func submit(t *testing.T, inj *Injector, n int) []crowd.QueryResult {
	t.Helper()
	res, err := inj.Submit(simclock.New(), crowd.Morning, stubQueries(n))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{AbandonRate: -0.1},
		{AbandonRate: 1.1},
		{DuplicateRate: 2},
		{StaleRate: -1},
		{DropoutBurstRate: 1.5},
		{DelaySpikeFactor: 0.5},
		{OutageStart: -time.Minute},
		{OutageDuration: -time.Minute},
		{ProbeAdvance: -time.Second},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v validated", cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
}

// TestDisabledPassThrough: a zero-config injector must delegate
// untouched — identical results, identical spend, no counters.
func TestDisabledPassThrough(t *testing.T) {
	bare := &stubPlatform{}
	wrapped := &stubPlatform{}
	inj, err := New(wrapped, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := bare.Submit(simclock.New(), crowd.Morning, stubQueries(5))
	if err != nil {
		t.Fatal(err)
	}
	got := submit(t, inj, 5)
	if !reflect.DeepEqual(got, want) {
		t.Error("disabled injector mutated results")
	}
	if inj.Spent() != bare.Spent() {
		t.Errorf("spend %v vs %v", inj.Spent(), bare.Spent())
	}
	if inj.Counts() != (Counts{}) {
		t.Errorf("disabled injector counted faults: %+v", inj.Counts())
	}
}

// TestDeterminism: two injectors with the same seed inject the same
// faults in the same places.
func TestDeterminism(t *testing.T) {
	cfg := Config{
		Seed:           42,
		AbandonRate:    0.3,
		DelaySpikeRate: 0.2,
		DuplicateRate:  0.2,
		StaleRate:      0.2,
	}
	run := func() ([]crowd.QueryResult, Counts) {
		inj, err := New(&stubPlatform{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var last []crowd.QueryResult
		for i := 0; i < 5; i++ {
			last = submit(t, inj, 8)
		}
		return last, inj.Counts()
	}
	r1, c1 := run()
	r2, c2 := run()
	if c1 != c2 {
		t.Errorf("counts diverged: %+v vs %+v", c1, c2)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("results diverged across identically seeded runs")
	}
	if c1.Abandoned == 0 || c1.DelaySpiked == 0 || c1.Duplicated == 0 || c1.Stale == 0 {
		t.Errorf("expected every channel to fire over 40 queries: %+v", c1)
	}
}

// TestAbandonmentRefunds: abandoning every response empties every query;
// the injector withholds the inner platform's payout entirely.
func TestAbandonmentRefunds(t *testing.T) {
	inner := &stubPlatform{}
	inj, err := New(inner, Config{AbandonRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := submit(t, inj, 6)
	for qi, qr := range res {
		if len(qr.Responses) != 0 || qr.CompletionDelay != 0 {
			t.Fatalf("query %d survived full abandonment: %+v", qi, qr)
		}
	}
	c := inj.Counts()
	if c.Abandoned != 18 || c.Unanswered != 6 {
		t.Errorf("counts %+v, want 18 abandoned / 6 unanswered", c)
	}
	wantRefund := 6 * crowd.Cents(4).Dollars()
	if math.Abs(inj.RefundedDollars()-wantRefund) > 1e-9 {
		t.Errorf("refunded %v, want %v", inj.RefundedDollars(), wantRefund)
	}
	if math.Abs(inj.Spent()) > 1e-9 {
		t.Errorf("net spend %v, want 0 (inner paid %v)", inj.Spent(), inner.Spent())
	}
}

func TestDelaySpikes(t *testing.T) {
	inj, err := New(&stubPlatform{}, Config{DelaySpikeRate: 1, DelaySpikeFactor: 6})
	if err != nil {
		t.Fatal(err)
	}
	res := submit(t, inj, 2)
	for _, qr := range res {
		for w, r := range qr.Responses {
			want := time.Duration(w+1) * time.Minute * 6
			if r.Delay != want {
				t.Fatalf("delay %v, want %v", r.Delay, want)
			}
		}
		if qr.CompletionDelay != 18*time.Minute {
			t.Errorf("completion delay %v not recomputed", qr.CompletionDelay)
		}
	}
}

func TestDuplicates(t *testing.T) {
	inj, err := New(&stubPlatform{}, Config{DuplicateRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := submit(t, inj, 3)
	for _, qr := range res {
		if len(qr.Responses) != 6 {
			t.Fatalf("%d responses, want 6 (each doubled)", len(qr.Responses))
		}
		for w := 0; w < 3; w++ {
			if !reflect.DeepEqual(qr.Responses[2*w], qr.Responses[2*w+1]) {
				t.Error("duplicate differs from original")
			}
		}
	}
}

// TestStaleReplay: with StaleRate 1, batches after the first gain a
// replayed response rewritten to the receiving query's index, incentive
// and context.
func TestStaleReplay(t *testing.T) {
	inj, err := New(&stubPlatform{}, Config{StaleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	submit(t, inj, 4) // fills the replay buffer
	res, err := inj.Submit(simclock.New(), crowd.Evening, stubQueries(4))
	if err != nil {
		t.Fatal(err)
	}
	for qi, qr := range res {
		if len(qr.Responses) != 4 {
			t.Fatalf("query %d has %d responses, want 3 fresh + 1 stale", qi, len(qr.Responses))
		}
		stale := qr.Responses[3]
		if stale.QueryIndex != qi || stale.Context != crowd.Evening || stale.Incentive != qr.Query.Incentive {
			t.Errorf("stale response not rewritten: %+v", stale)
		}
	}
	if inj.Counts().Stale < 4 {
		t.Errorf("stale count %d, want >= 4", inj.Counts().Stale)
	}
}

func TestDropoutBurst(t *testing.T) {
	inj, err := New(&stubPlatform{}, Config{DropoutBurstRate: 1, DropoutBurstFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := submit(t, inj, 5)
	for _, qr := range res {
		if len(qr.Responses) != 0 {
			t.Fatal("burst with fraction 1 should drop everything")
		}
	}
	c := inj.Counts()
	if c.Bursts != 5 || c.Dropout != 15 || c.Unanswered != 5 {
		t.Errorf("counts %+v", c)
	}
}

// TestOutageWindow: an outage rejects posts with crowd.ErrUnavailable,
// each probe advances the simulated clock by ProbeAdvance, and the
// window ends after a bounded number of probes.
func TestOutageWindow(t *testing.T) {
	inner := &stubPlatform{}
	inj, err := New(inner, Config{
		OutageStart:    0,
		OutageDuration: 30 * time.Minute,
		ProbeAdvance:   10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 3; probe++ {
		_, err := inj.Submit(simclock.New(), crowd.Morning, stubQueries(2))
		if !errors.Is(err, crowd.ErrUnavailable) {
			t.Fatalf("probe %d: err %v, want ErrUnavailable", probe, err)
		}
	}
	res := submit(t, inj, 2)
	if len(res) != 2 || len(res[0].Responses) == 0 {
		t.Fatal("post-outage submit did not reach the inner platform")
	}
	if got := inj.Counts().OutageRejects; got != 3 {
		t.Errorf("outage rejects %d, want 3", got)
	}
	if inner.batches != 1 {
		t.Errorf("inner saw %d batches during the outage, want 1 (post-outage only)", inner.batches)
	}
}

func TestMetricsEmission(t *testing.T) {
	reg := obs.NewRegistry()
	inj, err := New(&stubPlatform{}, Config{AbandonRate: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	submit(t, inj, 4)
	if got := reg.Counter(MetricInjected, "kind", "abandon").Value(); got != 12 {
		t.Errorf("abandon counter %v, want 12", got)
	}
}

// --- zero-fault no-op against the full closed loop ---------------------

// The comparison lives here rather than in internal/core because faults
// imports core: analogous to core's TestRunCycleNilObsIsNoop, a
// CrowdLearn running on a zero-config injector must behave bit-for-bit
// like one running on the bare platform.

type loopFixture struct {
	ds    *imagery.Dataset
	pilot *crowd.PilotData
}

var (
	loopOnce sync.Once
	loopFix  loopFixture
	loopErr  error
)

func sharedLoopFixture(t *testing.T) loopFixture {
	t.Helper()
	loopOnce.Do(func() {
		ds, err := imagery.Generate(imagery.DefaultConfig())
		if err != nil {
			loopErr = err
			return
		}
		platform := crowd.MustNewPlatform(crowd.DefaultConfig())
		loopFix.pilot, loopErr = crowd.RunPilot(platform, ds.Train, crowd.DefaultPilotConfig())
		loopFix.ds = ds
	})
	if loopErr != nil {
		t.Fatal(loopErr)
	}
	return loopFix
}

func bootstrappedLoop(t *testing.T, f loopFixture, platform core.CrowdPlatform) *core.CrowdLearn {
	t.Helper()
	cl, err := core.New(core.DefaultConfig(), platform)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Bootstrap(f.ds.Train, f.pilot); err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestZeroFaultLoopIsNoop(t *testing.T) {
	f := sharedLoopFixture(t)
	in := core.CycleInput{Context: crowd.Morning, Images: f.ds.Test[:10]}

	plain := bootstrappedLoop(t, f, crowd.MustNewPlatform(crowd.DefaultConfig()))
	want, err := plain.RunCycle(in)
	if err != nil {
		t.Fatal(err)
	}

	inj, err := New(crowd.MustNewPlatform(crowd.DefaultConfig()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := bootstrappedLoop(t, f, inj)
	got, err := wrapped.RunCycle(in)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Errorf("zero-fault injector perturbed the cycle:\n got %+v\nwant %+v", got, want)
	}
	if inj.Spent() != plain.Policy().SpentDollars() && want.SpentDollars > 0 {
		t.Errorf("spend diverged: injector %v, plain policy %v", inj.Spent(), plain.Policy().SpentDollars())
	}
}
