// Package faults injects deterministic, seedable crowd-platform failures
// behind the core.CrowdPlatform interface: HIT abandonment, response-delay
// spikes, duplicate and stale responses, worker-dropout bursts, and full
// platform outages with configurable duration. All failures ride the
// simulated clock and a private RNG, so a faulted campaign is exactly as
// reproducible as a clean one.
//
// The injector is the adversary the recovery policy (core.RecoveryConfig,
// DESIGN.md §8) is evaluated against: abandonment and dropout bursts
// starve queries below quorum, delay spikes push responses past the
// deadline, duplicates and stale replays probe CQC's aggregation, and
// outages bounce whole posts with crowd.ErrUnavailable.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
	"github.com/crowdlearn/crowdlearn/internal/obs"
	"github.com/crowdlearn/crowdlearn/internal/simclock"
)

// Config parameterises the injector. The zero value injects nothing: the
// wrapped platform's behaviour (and random stream) is bit-for-bit
// unchanged, so a disabled injector is a true no-op.
type Config struct {
	// Seed drives the injector's private RNG; the wrapped platform's
	// stream is never touched.
	Seed int64
	// AbandonRate is the per-response probability that the assignment is
	// silently abandoned: the worker never submits, and the HIT slot
	// yields nothing by the deadline.
	AbandonRate float64
	// DelaySpikeRate is the per-response probability that the response's
	// delay is multiplied by DelaySpikeFactor — the long-tail latency of
	// a worker who accepted the HIT and walked away.
	DelaySpikeRate float64
	// DelaySpikeFactor scales spiked delays (default 6).
	DelaySpikeFactor float64
	// DuplicateRate is the per-response probability that the platform
	// delivers the same assignment twice (retry storms, at-least-once
	// delivery).
	DuplicateRate float64
	// StaleRate is the per-query probability that a response recorded for
	// an earlier query is replayed against this one — an answer for the
	// wrong image.
	StaleRate float64
	// DropoutBurstRate is the per-batch probability of a worker-dropout
	// burst; during a burst each response is additionally dropped with
	// probability DropoutBurstFraction.
	DropoutBurstRate float64
	// DropoutBurstFraction is the share of responses lost in a burst
	// (default 0.5).
	DropoutBurstFraction float64
	// OutageStart positions a full platform outage on the injector's
	// simulated campaign clock (which advances with each batch's
	// completion). The outage is enabled by OutageDuration > 0.
	OutageStart time.Duration
	// OutageDuration is how long the platform rejects posts with
	// crowd.ErrUnavailable. Zero disables the outage.
	OutageDuration time.Duration
	// ProbeAdvance is the simulated time a rejected post costs the
	// requester before it may probe again (default 10 minutes), so
	// outages end deterministically after a bounded number of probes.
	ProbeAdvance time.Duration
	// Metrics, when non-nil, receives per-kind injection counters
	// (MetricInjected). Nil disables metric emission.
	Metrics *obs.Registry
}

// Validate checks the configuration.
func (c Config) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"AbandonRate", c.AbandonRate},
		{"DelaySpikeRate", c.DelaySpikeRate},
		{"DuplicateRate", c.DuplicateRate},
		{"StaleRate", c.StaleRate},
		{"DropoutBurstRate", c.DropoutBurstRate},
		{"DropoutBurstFraction", c.DropoutBurstFraction},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s %v outside [0, 1]", r.name, r.v)
		}
	}
	if c.DelaySpikeFactor < 0 || (c.DelaySpikeFactor > 0 && c.DelaySpikeFactor < 1) {
		return fmt.Errorf("faults: DelaySpikeFactor %v must be >= 1 (or 0 for the default)", c.DelaySpikeFactor)
	}
	if c.OutageStart < 0 {
		return fmt.Errorf("faults: OutageStart %v must be non-negative", c.OutageStart)
	}
	if c.OutageDuration < 0 {
		return fmt.Errorf("faults: OutageDuration %v must be non-negative", c.OutageDuration)
	}
	if c.ProbeAdvance < 0 {
		return fmt.Errorf("faults: ProbeAdvance %v must be non-negative", c.ProbeAdvance)
	}
	return nil
}

// Enabled reports whether any fault is configured.
func (c Config) Enabled() bool {
	return c.AbandonRate > 0 || c.DelaySpikeRate > 0 || c.DuplicateRate > 0 ||
		c.StaleRate > 0 || c.DropoutBurstRate > 0 || c.OutageDuration > 0
}

// MetricInjected counts injected faults by kind (label: kind, one of
// "abandon", "dropout", "delay_spike", "duplicate", "stale",
// "outage_reject").
const MetricInjected = "crowdlearn_faults_injected_total"

// Counts tallies injected faults over the injector's lifetime.
type Counts struct {
	// Abandoned is responses dropped by per-response abandonment.
	Abandoned int
	// Dropout is responses lost to dropout bursts.
	Dropout int
	// Bursts is the number of batches hit by a dropout burst.
	Bursts int
	// DelaySpiked is responses whose delay was multiplied.
	DelaySpiked int
	// Duplicated is responses delivered twice.
	Duplicated int
	// Stale is replayed responses attached to the wrong query.
	Stale int
	// OutageRejects is posts bounced with crowd.ErrUnavailable.
	OutageRejects int
	// Unanswered is queries whose final response set came back empty.
	Unanswered int
}

// Injector wraps a CrowdPlatform with deterministic fault injection. It
// implements core.CrowdPlatform itself, so it can stand wherever the real
// platform does — including under the closed loop and the service.
type Injector struct {
	cfg   Config
	inner core.CrowdPlatform
	rng   *rand.Rand
	// elapsed is the injector's simulated campaign clock: the sum of each
	// accepted batch's completion time plus ProbeAdvance per rejected
	// post. The outage window is positioned on this clock.
	elapsed  time.Duration
	refunded float64 // dollars for queries the injection left unanswered
	past     []crowd.Response
	counts   Counts
}

var _ core.CrowdPlatform = (*Injector)(nil)

// pastCapacity bounds the replay buffer stale responses are drawn from.
const pastCapacity = 256

// New wraps inner with fault injection.
func New(inner core.CrowdPlatform, cfg Config) (*Injector, error) {
	if inner == nil {
		return nil, errors.New("faults: nil inner platform")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.DelaySpikeFactor == 0 {
		cfg.DelaySpikeFactor = 6
	}
	if cfg.DropoutBurstFraction == 0 {
		cfg.DropoutBurstFraction = 0.5
	}
	if cfg.ProbeAdvance == 0 {
		cfg.ProbeAdvance = 10 * time.Minute
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Help(MetricInjected, "Injected crowd-platform faults by kind.")
	}
	return &Injector{cfg: cfg, inner: inner, rng: mathx.NewRand(cfg.Seed)}, nil
}

// Counts returns the lifetime injection tallies.
func (inj *Injector) Counts() Counts { return inj.counts }

// Elapsed returns the injector's simulated campaign clock.
func (inj *Injector) Elapsed() time.Duration { return inj.elapsed }

// RefundedDollars returns the incentives withheld for queries whose
// response set the injection emptied — money the platform never paid out.
func (inj *Injector) RefundedDollars() float64 { return inj.refunded }

// Spent implements core.CrowdPlatform: the wrapped platform's payout
// minus the incentives of queries the injection left unanswered (the
// inner simulation saw responses for them, but the requester never did,
// so the HIT expires unpaid).
func (inj *Injector) Spent() float64 { return inj.inner.Spent() - inj.refunded }

func (inj *Injector) inOutage() bool {
	return inj.cfg.OutageDuration > 0 &&
		inj.elapsed >= inj.cfg.OutageStart &&
		inj.elapsed < inj.cfg.OutageStart+inj.cfg.OutageDuration
}

func (inj *Injector) count(kind string, n int) {
	if n <= 0 {
		return
	}
	if inj.cfg.Metrics != nil {
		inj.cfg.Metrics.Counter(MetricInjected, "kind", kind).Add(float64(n))
	}
}

// Submit implements core.CrowdPlatform. With a zero Config it delegates
// untouched; otherwise it forwards to the wrapped platform and then
// mutates the returned batch deterministically.
func (inj *Injector) Submit(clk *simclock.Clock, ctx crowd.TemporalContext, queries []crowd.Query) ([]crowd.QueryResult, error) {
	if !inj.cfg.Enabled() {
		return inj.inner.Submit(clk, ctx, queries)
	}
	if inj.inOutage() {
		inj.counts.OutageRejects++
		inj.count("outage_reject", 1)
		inj.elapsed += inj.cfg.ProbeAdvance
		return nil, fmt.Errorf("faults: injected outage at %v: %w", inj.elapsed, crowd.ErrUnavailable)
	}
	start := clk.Now()
	results, err := inj.inner.Submit(clk, ctx, queries)
	if err != nil {
		return nil, err
	}
	inj.elapsed += clk.Now() - start
	for qi := range results {
		inj.mutate(&results[qi], qi, ctx)
	}
	return results, nil
}

// mutate applies the per-response and per-query fault channels to one
// query's result, recomputes its completion delay, and accounts for a
// response set injection emptied.
func (inj *Injector) mutate(qr *crowd.QueryResult, qi int, ctx crowd.TemporalContext) {
	burst := inj.cfg.DropoutBurstRate > 0 && mathx.Bernoulli(inj.rng, inj.cfg.DropoutBurstRate)
	if burst {
		inj.counts.Bursts++
	}
	hadResponses := len(qr.Responses) > 0
	kept := make([]crowd.Response, 0, len(qr.Responses))
	for _, r := range qr.Responses {
		inj.remember(r)
		if burst && mathx.Bernoulli(inj.rng, inj.cfg.DropoutBurstFraction) {
			inj.counts.Dropout++
			inj.count("dropout", 1)
			continue
		}
		if inj.cfg.AbandonRate > 0 && mathx.Bernoulli(inj.rng, inj.cfg.AbandonRate) {
			inj.counts.Abandoned++
			inj.count("abandon", 1)
			continue
		}
		if inj.cfg.DelaySpikeRate > 0 && mathx.Bernoulli(inj.rng, inj.cfg.DelaySpikeRate) {
			r.Delay = time.Duration(float64(r.Delay) * inj.cfg.DelaySpikeFactor)
			inj.counts.DelaySpiked++
			inj.count("delay_spike", 1)
		}
		kept = append(kept, r)
		if inj.cfg.DuplicateRate > 0 && mathx.Bernoulli(inj.rng, inj.cfg.DuplicateRate) {
			kept = append(kept, r)
			inj.counts.Duplicated++
			inj.count("duplicate", 1)
		}
	}
	if inj.cfg.StaleRate > 0 && len(inj.past) > 0 && mathx.Bernoulli(inj.rng, inj.cfg.StaleRate) {
		stale := inj.past[inj.rng.Intn(len(inj.past))]
		stale.QueryIndex = qi
		stale.Incentive = qr.Query.Incentive
		stale.Context = ctx
		kept = append(kept, stale)
		inj.counts.Stale++
		inj.count("stale", 1)
	}
	qr.Responses = kept
	qr.CompletionDelay = 0
	for _, r := range kept {
		if r.Delay > qr.CompletionDelay {
			qr.CompletionDelay = r.Delay
		}
	}
	if hadResponses && len(kept) == 0 {
		// The inner simulation paid this HIT out, but the requester never
		// saw a response: withhold the payment (unanswered HITs are free).
		inj.refunded += qr.Query.Incentive.Dollars()
		inj.counts.Unanswered++
	}
}

// remember records a response in the bounded replay buffer stale
// injections draw from.
func (inj *Injector) remember(r crowd.Response) {
	if inj.cfg.StaleRate <= 0 {
		return
	}
	if len(inj.past) < pastCapacity {
		inj.past = append(inj.past, r)
		return
	}
	inj.past[inj.rng.Intn(pastCapacity)] = r
}
