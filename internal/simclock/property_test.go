package simclock

import (
	"sort"
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// Property: regardless of scheduling order, events fire in non-decreasing
// time order and the final clock equals the latest event time.
func TestEventOrderingProperty(t *testing.T) {
	rng := mathx.NewRand(31)
	for trial := 0; trial < 200; trial++ {
		c := New()
		n := 1 + rng.Intn(50)
		delays := make([]time.Duration, n)
		for i := range delays {
			delays[i] = time.Duration(rng.Intn(1000)) * time.Millisecond
		}
		var fired []time.Duration
		for _, d := range delays {
			c.Schedule(d, func(now time.Duration) { fired = append(fired, now) })
		}
		end := c.Run()
		if len(fired) != n {
			t.Fatalf("fired %d events, want %d", len(fired), n)
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			t.Fatalf("events fired out of order: %v", fired)
		}
		sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
		if end != delays[n-1] {
			t.Fatalf("final time %v, want %v", end, delays[n-1])
		}
	}
}

// Property: AdvanceTo splits a run cleanly — the union of events fired
// before and after the split equals the full set, with no event firing on
// the wrong side of the deadline.
func TestAdvanceToPartitionProperty(t *testing.T) {
	rng := mathx.NewRand(32)
	for trial := 0; trial < 100; trial++ {
		c := New()
		n := 1 + rng.Intn(40)
		cut := time.Duration(rng.Intn(1000)) * time.Millisecond
		early, late := 0, 0
		wantEarly, wantLate := 0, 0
		for i := 0; i < n; i++ {
			d := time.Duration(rng.Intn(1000)) * time.Millisecond
			if d <= cut {
				wantEarly++
			} else {
				wantLate++
			}
			c.Schedule(d, func(now time.Duration) {
				if now <= cut {
					early++
				} else {
					late++
				}
			})
		}
		c.AdvanceTo(cut)
		if early != wantEarly || late != 0 {
			t.Fatalf("after AdvanceTo: early %d/%d late %d", early, wantEarly, late)
		}
		c.Run()
		if late != wantLate {
			t.Fatalf("after Run: late %d, want %d", late, wantLate)
		}
	}
}
