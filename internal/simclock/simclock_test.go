package simclock

import (
	"testing"
	"time"
)

func TestZeroValueUsable(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now = %v, want 0", c.Now())
	}
	fired := false
	c.Schedule(time.Second, func(time.Duration) { fired = true })
	c.Run()
	if !fired {
		t.Fatal("scheduled event did not fire")
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	c := New()
	var order []int
	c.Schedule(3*time.Second, func(time.Duration) { order = append(order, 3) })
	c.Schedule(1*time.Second, func(time.Duration) { order = append(order, 1) })
	c.Schedule(2*time.Second, func(time.Duration) { order = append(order, 2) })
	end := c.Run()
	if end != 3*time.Second {
		t.Errorf("final time %v, want 3s", end)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(time.Second, func(time.Duration) { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events must fire FIFO, got %v", order)
		}
	}
}

func TestNowDuringEvent(t *testing.T) {
	c := New()
	var seen time.Duration
	c.Schedule(5*time.Second, func(now time.Duration) { seen = now })
	c.Run()
	if seen != 5*time.Second {
		t.Errorf("event saw now=%v, want 5s", seen)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	c := New()
	c.Advance(10 * time.Second)
	var at time.Duration
	c.Schedule(-3*time.Second, func(now time.Duration) { at = now })
	c.Run()
	if at != 10*time.Second {
		t.Errorf("negative delay should fire immediately at %v, fired at %v", 10*time.Second, at)
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	c := New()
	c.Advance(time.Minute)
	var at time.Duration
	c.ScheduleAt(10*time.Second, func(now time.Duration) { at = now })
	c.Run()
	if at != time.Minute {
		t.Errorf("past ScheduleAt should clamp to now, fired at %v", at)
	}
}

func TestAdvanceToRunsDueEventsOnly(t *testing.T) {
	c := New()
	var fired []int
	c.Schedule(time.Second, func(time.Duration) { fired = append(fired, 1) })
	c.Schedule(5*time.Second, func(time.Duration) { fired = append(fired, 5) })
	c.AdvanceTo(2 * time.Second)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("AdvanceTo(2s) fired %v, want [1]", fired)
	}
	if c.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", c.Now())
	}
	if c.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", c.Pending())
	}
	c.Run()
	if len(fired) != 2 {
		t.Fatalf("remaining event never fired: %v", fired)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	c := New()
	var times []time.Duration
	var chain func(now time.Duration)
	n := 0
	chain = func(now time.Duration) {
		times = append(times, now)
		n++
		if n < 5 {
			c.Schedule(time.Second, chain)
		}
	}
	c.Schedule(time.Second, chain)
	c.Run()
	if len(times) != 5 {
		t.Fatalf("chained scheduling produced %d events, want 5", len(times))
	}
	if times[4] != 5*time.Second {
		t.Errorf("last event at %v, want 5s", times[4])
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	c := New()
	if c.Step() {
		t.Fatal("Step on empty queue must return false")
	}
}

func TestAdvancePastEmptyQueueMovesClock(t *testing.T) {
	c := New()
	c.Advance(42 * time.Second)
	if c.Now() != 42*time.Second {
		t.Errorf("Now = %v, want 42s", c.Now())
	}
}
