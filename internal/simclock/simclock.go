// Package simclock implements a deterministic discrete-event simulation
// clock. The crowd platform simulator schedules worker arrivals and HIT
// completions on this clock instead of sleeping on the wall clock, which
// lets a 40-cycle MTurk campaign (hours of simulated time) run in
// milliseconds while preserving exact ordering semantics.
package simclock

import (
	"container/heap"
	"time"
)

// Clock is a discrete-event simulation clock. The zero value is ready to
// use and starts at time zero. Clock is not safe for concurrent use; the
// simulator is single-threaded by design so that runs are reproducible.
type Clock struct {
	now    time.Duration
	queue  eventQueue
	nextID uint64
}

// Event is a scheduled callback.
type event struct {
	at   time.Duration
	id   uint64 // tiebreaker: FIFO among same-time events
	call func(now time.Duration)
}

// New returns a clock starting at time zero.
func New() *Clock {
	return &Clock{}
}

// Now returns the current simulated time as an offset from the start of
// the simulation.
func (c *Clock) Now() time.Duration {
	return c.now
}

// Schedule registers fn to run at now+delay. A negative delay is treated
// as zero. Events scheduled for the same instant fire in scheduling order.
func (c *Clock) Schedule(delay time.Duration, fn func(now time.Duration)) {
	if delay < 0 {
		delay = 0
	}
	c.nextID++
	heap.Push(&c.queue, &event{at: c.now + delay, id: c.nextID, call: fn})
}

// ScheduleAt registers fn to run at the absolute simulated time at. Times
// in the past are clamped to now.
func (c *Clock) ScheduleAt(at time.Duration, fn func(now time.Duration)) {
	if at < c.now {
		at = c.now
	}
	c.nextID++
	heap.Push(&c.queue, &event{at: at, id: c.nextID, call: fn})
}

// Step runs the next pending event, advancing the clock to its timestamp.
// It reports whether an event was run.
func (c *Clock) Step() bool {
	if c.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&c.queue).(*event)
	c.now = ev.at
	ev.call(c.now)
	return true
}

// Run drains the event queue completely, returning the final time.
func (c *Clock) Run() time.Duration {
	for c.Step() {
	}
	return c.now
}

// AdvanceTo runs every event scheduled up to and including deadline, then
// sets the clock to deadline. Events scheduled beyond the deadline remain
// queued.
func (c *Clock) AdvanceTo(deadline time.Duration) {
	for c.queue.Len() > 0 && c.queue[0].at <= deadline {
		c.Step()
	}
	if deadline > c.now {
		c.now = deadline
	}
}

// Advance is AdvanceTo(Now()+d).
func (c *Clock) Advance(d time.Duration) {
	c.AdvanceTo(c.now + d)
}

// Pending returns the number of queued events.
func (c *Clock) Pending() int {
	return c.queue.Len()
}

// eventQueue is a min-heap ordered by (time, id).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].id < q[j].id
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
