package simclock

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := New()
		for j := 0; j < 100; j++ {
			c.Schedule(time.Duration(j)*time.Second, func(time.Duration) {})
		}
		c.Run()
	}
}

func BenchmarkInterleavedScheduling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := New()
		n := 0
		var chain func(now time.Duration)
		chain = func(time.Duration) {
			n++
			if n < 200 {
				c.Schedule(time.Second, chain)
			}
		}
		c.Schedule(time.Second, chain)
		c.Run()
	}
}
