package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/experiments"
)

// runCyclesPipelined mirrors runCycles through the pipelined campaign
// runner, so store-backed detached commits — WAL fsync and checkpoint
// writes overlapping the next cycle's compute — are exercised for real.
func runCyclesPipelined(t testing.TB, sys *core.CrowdLearn, env *experiments.Env, start, n int) {
	t.Helper()
	cfg := core.CampaignConfig{Cycles: n, ImagesPerCycle: imagesPerCycle, StartCycle: start}
	images := env.Dataset.Test[start*imagesPerCycle : (start+n)*imagesPerCycle]
	if _, err := core.RunCampaignPipelined(sys, images, cfg); err != nil {
		t.Fatal(err)
	}
}

// journaledSystem opens a store in dir and wires a fresh system to it
// through a journal with the snapshot-then-encode seam installed, the
// way crowdlearnd and supervise do.
func journaledSystem(t testing.TB, env *experiments.Env, dir string, every int) (*core.CrowdLearn, *Store, *Journal) {
	t.Helper()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var sys *core.CrowdLearn
	journal := NewJournal(st, every, func(w io.Writer) error { return sys.SaveState(w) }, testLogger(t), nil)
	sys, err = env.NewSystemWith(func(cfg *core.Config) { cfg.Journal = journal })
	if err != nil {
		t.Fatal(err)
	}
	journal.SetSnapshot(func() (func(w io.Writer) error, error) {
		sn, serr := sys.SnapshotState()
		if serr != nil {
			return nil, serr
		}
		return sn.Encode, nil
	})
	return sys, st, journal
}

// TestPipelinedJournalBitIdenticalToSequential: the same campaign run
// through RunCampaign and RunCampaignPipelined against two stores must
// leave byte-identical WAL files and final system state. This is the
// on-disk half of the §9 pipeline contract — detached commits with
// snapshot-then-encode checkpoints change nothing the store persists.
func TestPipelinedJournalBitIdenticalToSequential(t *testing.T) {
	env := testEnv(t)

	seqDir, pipeDir := t.TempDir(), t.TempDir()
	seqSys, seqStore, _ := journaledSystem(t, env, seqDir, 4)
	runCycles(t, seqSys, env, 0, totalCycles)
	if err := seqStore.Close(); err != nil {
		t.Fatal(err)
	}

	pipeSys, pipeStore, _ := journaledSystem(t, env, pipeDir, 4)
	runCyclesPipelined(t, pipeSys, env, 0, totalCycles)
	if err := pipeStore.Close(); err != nil {
		t.Fatal(err)
	}

	seqWAL, err := os.ReadFile(filepath.Join(seqDir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	pipeWAL, err := os.ReadFile(filepath.Join(pipeDir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqWAL, pipeWAL) {
		t.Errorf("pipelined WAL differs from sequential: %d bytes vs %d", len(pipeWAL), len(seqWAL))
	}
	if got, want := stateBytes(t, pipeSys), stateBytes(t, seqSys); !bytes.Equal(got, want) {
		t.Error("pipelined final state differs from sequential")
	}
}

// crashingJournal delegates to the real store journal but crashes the
// durable phase of one cycle: the detached closure returns an error
// without ever appending the record, as if the process died between
// acknowledging the cycle's compute and landing its fsync.
type crashingJournal struct {
	*Journal
	crashAt int
}

func (c *crashingJournal) CycleCommittedDetached(rec core.JournalCycle) (func() error, error) {
	if rec.Index == c.crashAt {
		return func() error { return errors.New("simulated crash before WAL append") }, nil
	}
	return c.Journal.CycleCommittedDetached(rec)
}

// TestPipelinedCrashRecoveryBitIdentical is the mid-pipeline
// kill-and-recover contract: a campaign whose detached commit dies at
// cycle crashAt — with cycle crashAt+1's compute potentially already
// executed in memory — aborts with ErrCycleNotDurable, loses nothing
// durable, recovers from the store, resumes pipelined, and ends with
// state byte-identical to a process that never crashed.
func TestPipelinedCrashRecoveryBitIdentical(t *testing.T) {
	want := uninterruptedState(t)
	env := testEnv(t)
	dir := t.TempDir()

	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var sys *core.CrowdLearn
	journal := NewJournal(st, 4, func(w io.Writer) error { return sys.SaveState(w) }, testLogger(t), nil)
	crasher := &crashingJournal{Journal: journal, crashAt: cyclesBeforeCrash}
	sys, err = env.NewSystemWith(func(cfg *core.Config) { cfg.Journal = crasher })
	if err != nil {
		t.Fatal(err)
	}
	journal.SetSnapshot(func() (func(w io.Writer) error, error) {
		sn, serr := sys.SnapshotState()
		if serr != nil {
			return nil, serr
		}
		return sn.Encode, nil
	})

	cfg := core.CampaignConfig{Cycles: cyclesBeforeCrash + 1, ImagesPerCycle: imagesPerCycle}
	_, err = core.RunCampaignPipelined(sys, env.Dataset.Test[:(cyclesBeforeCrash+1)*imagesPerCycle], cfg)
	if err == nil {
		t.Fatal("campaign survived the simulated commit crash")
	}
	if !errors.Is(err, core.ErrCycleNotDurable) {
		t.Fatalf("error %v does not wrap ErrCycleNotDurable", err)
	}
	if err := st.Close(); err != nil { // crash: in-memory state is gone
		t.Fatal(err)
	}
	sys = nil

	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	restored, err := env.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	report, err := st2.Recover(restored, recoverOpts(env))
	if err != nil {
		t.Fatal(err)
	}
	if report.NextCycle != cyclesBeforeCrash {
		t.Fatalf("recovery resumes at cycle %d, want %d", report.NextCycle, cyclesBeforeCrash)
	}
	runCyclesPipelined(t, restored, env, cyclesBeforeCrash, cyclesAfterCrash)
	if got := stateBytes(t, restored); !bytes.Equal(got, want) {
		t.Error("recovered pipelined arm diverged from the uninterrupted reference")
	}
}
