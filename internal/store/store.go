package store

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/crowdlearn/crowdlearn/internal/core"
)

const (
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".ckpt"
	tmpSuffix        = ".tmp"
	walName          = "wal.log"

	// DefaultRetainCheckpoints is how many checkpoint generations
	// rotation keeps when Options.RetainCheckpoints is zero.
	DefaultRetainCheckpoints = 3
)

// Options configures Open.
type Options struct {
	// Dir is the state directory; created if absent.
	Dir string
	// RetainCheckpoints is how many checkpoint files rotation keeps
	// (0 = DefaultRetainCheckpoints). The newest K survive; older ones
	// are deleted after each successful checkpoint write.
	RetainCheckpoints int
	// Faults enables seeded fault injection on the write paths.
	// Test-only.
	Faults FaultConfig
}

// Store is one state directory: rotating checkpoints plus the
// write-ahead cycle log. Safe for use from one process at a time;
// methods are internally serialised.
type Store struct {
	dir    string
	retain int
	faults *faultInjector

	mu  sync.Mutex
	wal *os.File
	// walCycles holds the records recovered from the WAL at Open, in
	// file order; Recover consumes them.
	walCycles []core.JournalCycle
	// walTruncated is how many torn-tail bytes Open discarded.
	walTruncated int64
	// walDamaged notes an unreadable WAL header (file replaced).
	walDamaged bool
}

// Open opens (creating if needed) a state directory: stale temp files
// are removed, the WAL is scanned with any torn tail truncated, and its
// intact records are decoded for Recover.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: empty state directory")
	}
	if opts.RetainCheckpoints < 0 {
		return nil, fmt.Errorf("store: RetainCheckpoints %d must be non-negative", opts.RetainCheckpoints)
	}
	if err := opts.Faults.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: opts.Dir, retain: opts.RetainCheckpoints, faults: newFaultInjector(opts.Faults)}
	if s.retain == 0 {
		s.retain = DefaultRetainCheckpoints
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			// Leftover from a crash between temp write and rename; the
			// rename never happened, so the file is not state.
			//lint:ignore checked-errors-in-store best-effort cleanup of a non-state temp file; failure leaves harmless garbage
			os.Remove(filepath.Join(opts.Dir, e.Name()))
		}
	}
	if err := s.openWAL(); err != nil {
		return nil, err
	}
	return s, nil
}

// Close releases the WAL handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// WALCycles returns the journaled cycles recovered at Open, in commit
// order.
func (s *Store) WALCycles() []core.JournalCycle {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walCycles
}

// WALTruncatedBytes reports how many torn-tail bytes Open discarded.
func (s *Store) WALTruncatedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walTruncated
}

func (s *Store) walPath() string { return filepath.Join(s.dir, walName) }

// openWAL reads the log, truncates any torn or corrupt tail, decodes
// the intact records and leaves an append handle positioned at the end.
func (s *Store) openWAL() error {
	path := s.walPath()
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: read WAL: %w", err)
	}
	validLen := int64(walHdrSize)
	fresh := len(data) == 0
	if !fresh {
		if herr := parseWALHeader(data); herr != nil {
			// The header itself is unreadable: nothing in the file can
			// be trusted. Start a fresh log, reporting the loss.
			s.walDamaged = true
			s.walTruncated = int64(len(data))
			fresh = true
		} else {
			payloads, valid := scanWALRecords(data[walHdrSize:])
			records := make([]core.JournalCycle, 0, len(payloads))
			for _, p := range payloads {
				var rec core.JournalCycle
				if derr := gob.NewDecoder(bytes.NewReader(p)).Decode(&rec); derr != nil {
					// Framing held but the payload does not decode:
					// corruption. This record and everything after it
					// form the tail to drop.
					valid = int(int64(valid) - sumFramedLen(payloads[len(records):]))
					break
				}
				records = append(records, rec)
			}
			s.walCycles = records
			validLen = int64(walHdrSize + valid)
			s.walTruncated = int64(len(data)) - validLen
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: open WAL: %w", err)
	}
	if fresh {
		if err := f.Truncate(0); err == nil {
			_, err = f.Write(encodeWALHeader())
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("store: init WAL: %w", err)
		}
	} else if validLen < int64(len(data)) {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return fmt.Errorf("store: truncate torn WAL tail: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync WAL: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return fmt.Errorf("store: seek WAL: %w", err)
	}
	s.wal = f
	return s.syncDir()
}

// sumFramedLen is the on-disk size of the given record payloads.
func sumFramedLen(payloads [][]byte) int64 {
	var n int64
	for _, p := range payloads {
		n += int64(walRecHdrSize + len(p))
	}
	return n
}

// AppendCycle durably appends one committed cycle to the write-ahead
// log, fsyncing before returning. Returns the framed record size.
func (s *Store) AppendCycle(rec core.JournalCycle) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return 0, errors.New("store: closed")
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return 0, fmt.Errorf("store: encode WAL record: %w", err)
	}
	frame := encodeWALRecord(payload.Bytes())
	if keep, torn := s.faults.tornWAL(len(frame)); torn {
		s.wal.Write(frame[:keep])
		s.wal.Sync()
		return 0, fmt.Errorf("store: injected fault: WAL append torn after %d/%d bytes", keep, len(frame))
	}
	if _, err := s.wal.Write(frame); err != nil {
		return 0, fmt.Errorf("store: append WAL record: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return 0, fmt.Errorf("store: sync WAL record: %w", err)
	}
	return int64(len(frame)), nil
}

func checkpointName(cycles int) string {
	return fmt.Sprintf("%s%010d%s", checkpointPrefix, cycles, checkpointSuffix)
}

// checkpointInfo is one on-disk checkpoint file.
type checkpointInfo struct {
	name   string
	cycles int
}

// listCheckpoints returns the directory's checkpoint files sorted
// newest (most cycles covered) first. Files whose names do not parse
// are ignored.
func (s *Store) listCheckpoints() ([]checkpointInfo, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var infos []checkpointInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, checkpointSuffix) {
			continue
		}
		var cycles int
		if _, err := fmt.Sscanf(strings.TrimSuffix(name, checkpointSuffix), checkpointPrefix+"%d", &cycles); err != nil {
			continue
		}
		infos = append(infos, checkpointInfo{name: name, cycles: cycles})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].cycles > infos[j].cycles })
	return infos, nil
}

// WriteCheckpoint atomically writes a checkpoint covering the first
// `cycles` committed cycles, with the payload produced by save
// (normally core.(*CrowdLearn).SaveState). On success older checkpoints
// beyond the retention count are deleted. Returns the file size.
func (s *Store) WriteCheckpoint(cycles int, save func(w io.Writer) error) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		// The supervised runtime fences an abandoned epoch by closing its
		// store; a checkpoint attempt racing past that close must not
		// write state the successor epoch no longer owns.
		return 0, errors.New("store: closed")
	}
	if cycles < 0 {
		return 0, fmt.Errorf("store: checkpoint cycle count %d negative", cycles)
	}
	var payload bytes.Buffer
	if err := save(&payload); err != nil {
		return 0, fmt.Errorf("store: checkpoint save: %w", err)
	}
	frame := encodeCheckpoint(cycles, payload.Bytes())
	final := filepath.Join(s.dir, checkpointName(cycles))
	tmp := final + tmpSuffix

	keep, torn := s.faults.tornCheckpoint(len(frame))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: checkpoint temp: %w", err)
	}
	if _, err := f.Write(frame[:keep]); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("store: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("store: checkpoint fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("store: checkpoint close: %w", err)
	}
	if s.faults.failRename() {
		// Simulated crash between write and rename: the temp file stays
		// behind exactly as a real crash would leave it.
		return 0, errors.New("store: injected fault: checkpoint rename failed")
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("store: checkpoint rename: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return 0, err
	}
	if torn {
		// The torn file is in place (modelling corruption that survives
		// the atomic protocol); report the write as failed so callers
		// retry, and leave detection to recovery's checksum scan.
		return 0, fmt.Errorf("store: injected fault: checkpoint torn after %d/%d bytes", keep, len(frame))
	}
	s.pruneCheckpoints()
	return int64(len(frame)), nil
}

// pruneCheckpoints applies the retention policy. Best-effort: an
// unremovable old checkpoint is not an error.
func (s *Store) pruneCheckpoints() {
	infos, err := s.listCheckpoints()
	if err != nil {
		return
	}
	for _, info := range infos[min(len(infos), s.retain):] {
		os.Remove(filepath.Join(s.dir, info.name)) //lint:ignore checked-errors-in-store retention is best-effort by contract; a survivor is re-pruned next checkpoint
	}
	s.syncDir() //lint:ignore checked-errors-in-store best-effort durability of prune deletions; recovery tolerates resurrected old checkpoints
}

// readCheckpoint loads and validates one checkpoint file.
func (s *Store) readCheckpoint(info checkpointInfo) (payload []byte, err error) {
	data, err := os.ReadFile(filepath.Join(s.dir, info.name))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	cycles, payload, err := parseCheckpoint(data)
	if err != nil {
		return nil, err
	}
	if cycles != info.cycles {
		return nil, fmt.Errorf("store: checkpoint %s claims %d cycles in header, %d in name", info.name, cycles, info.cycles)
	}
	return payload, nil
}

// syncDir fsyncs the state directory so renames and truncations are
// durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("store: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}
