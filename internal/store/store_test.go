package store

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/crowd"
)

// walCycle builds a minimal journal record for WAL framing tests; the
// heavier replay-correctness tests in recover_test.go use real cycles.
func walCycle(i int) core.JournalCycle {
	return core.JournalCycle{
		Index:    i,
		Context:  crowd.TemporalContext(i % crowd.NumContexts),
		ImageIDs: []int{i * 10, i*10 + 1},
	}
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestOpenRejectsBadOptions(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Error("empty dir must error")
	}
	if _, err := Open(Options{Dir: t.TempDir(), RetainCheckpoints: -1}); err == nil {
		t.Error("negative retention must error")
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 3; i++ {
		if _, err := s.AppendCycle(walCycle(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, Options{Dir: dir})
	got := s2.WALCycles()
	if len(got) != 3 {
		t.Fatalf("reopened WAL has %d records, want 3", len(got))
	}
	for i, rec := range got {
		if rec.Index != i || len(rec.ImageIDs) != 2 || rec.ImageIDs[0] != i*10 {
			t.Errorf("record %d round-tripped as %+v", i, rec)
		}
	}
	if s2.WALTruncatedBytes() != 0 {
		t.Errorf("clean WAL reported %d truncated bytes", s2.WALTruncatedBytes())
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 2; i++ {
		if _, err := s.AppendCycle(walCycle(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Simulate a crash mid-append: a partial record frame at the tail.
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(encodeWALRecord([]byte("torn"))[:5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, Options{Dir: dir})
	if got := s2.WALCycles(); len(got) != 2 {
		t.Fatalf("torn WAL recovered %d records, want 2", len(got))
	}
	if s2.WALTruncatedBytes() != 5 {
		t.Errorf("truncated %d bytes, want 5", s2.WALTruncatedBytes())
	}
	// The log must accept appends after truncation, and a further reopen
	// must see the full healed sequence.
	if _, err := s2.AppendCycle(walCycle(2)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := mustOpen(t, Options{Dir: dir})
	if got := s3.WALCycles(); len(got) != 3 || s3.WALTruncatedBytes() != 0 {
		t.Errorf("healed WAL reopened with %d records, %d truncated bytes", len(got), s3.WALTruncatedBytes())
	}
}

func TestWALCorruptHeaderStartsFresh(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	if _, err := s.AppendCycle(walCycle(0)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, Options{Dir: dir})
	if got := s2.WALCycles(); len(got) != 0 {
		t.Errorf("damaged WAL yielded %d records", len(got))
	}
	if s2.WALTruncatedBytes() != int64(len(data)) {
		t.Errorf("reported %d bytes lost, want %d", s2.WALTruncatedBytes(), len(data))
	}
	if !s2.walDamaged {
		t.Error("damaged header not flagged")
	}
	if _, err := s2.AppendCycle(walCycle(0)); err != nil {
		t.Fatal(err)
	}
}

func TestWALCorruptMiddleRecordDropsTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 3; i++ {
		if _, err := s.AppendCycle(walCycle(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit in the second record: it and the third record
	// form the untrusted tail.
	payloads, _ := scanWALRecords(data[walHdrSize:])
	firstLen := walRecHdrSize + len(payloads[0])
	data[walHdrSize+firstLen+walRecHdrSize] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, Options{Dir: dir})
	if got := s2.WALCycles(); len(got) != 1 || got[0].Index != 0 {
		t.Errorf("corrupt-middle WAL yielded %d records", len(got))
	}
	if s2.WALTruncatedBytes() <= 0 {
		t.Error("corruption dropped no bytes")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	s.Close()
	if _, err := s.AppendCycle(walCycle(0)); err == nil {
		t.Error("append on closed store must error")
	}
}

func savePayload(p []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(p)
		return err
	}
}

func TestWriteCheckpointAndReadBack(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	payload := []byte("system state snapshot")
	n, err := s.WriteCheckpoint(4, savePayload(payload))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(checkpointHdrSize+len(payload)) {
		t.Errorf("reported %d bytes", n)
	}
	infos, err := s.listCheckpoints()
	if err != nil || len(infos) != 1 || infos[0].cycles != 4 {
		t.Fatalf("listCheckpoints = %v, %v", infos, err)
	}
	got, err := s.readCheckpoint(infos[0])
	if err != nil || !bytes.Equal(got, payload) {
		t.Errorf("readCheckpoint = %q, %v", got, err)
	}
}

func TestCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, RetainCheckpoints: 2})
	for cycles := 1; cycles <= 5; cycles++ {
		if _, err := s.WriteCheckpoint(cycles, savePayload([]byte("x"))); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := s.listCheckpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].cycles != 5 || infos[1].cycles != 4 {
		t.Errorf("retention kept %v", infos)
	}
}

func TestOpenRemovesStaleTmp(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, checkpointName(3)+tmpSuffix)
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustOpen(t, Options{Dir: dir})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived Open")
	}
}

func TestListCheckpointsIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	for _, name := range []string{"checkpoint-abc.ckpt", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := s.listCheckpoints()
	if err != nil || len(infos) != 0 {
		t.Errorf("listCheckpoints = %v, %v", infos, err)
	}
}

func TestFaultTornCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Faults: FaultConfig{Seed: 1, TornCheckpointRate: 1}})
	_, err := s.WriteCheckpoint(2, savePayload([]byte("state that will tear")))
	if err == nil || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn write reported %v", err)
	}
	// The torn file is in place (the fault models corruption surviving
	// the rename) and must fail its checksum on read.
	infos, lerr := s.listCheckpoints()
	if lerr != nil || len(infos) != 1 {
		t.Fatalf("listCheckpoints = %v, %v", infos, lerr)
	}
	if _, rerr := s.readCheckpoint(infos[0]); rerr == nil {
		t.Error("torn checkpoint passed validation")
	}
}

func TestFaultRenameFail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Faults: FaultConfig{Seed: 1, RenameFailRate: 1}})
	if _, err := s.WriteCheckpoint(2, savePayload([]byte("state"))); err == nil {
		t.Fatal("failed rename must error")
	}
	// The crash left the temp file behind; no checkpoint exists.
	tmp := filepath.Join(dir, checkpointName(2)+tmpSuffix)
	if _, err := os.Stat(tmp); err != nil {
		t.Errorf("temp file missing after simulated rename crash: %v", err)
	}
	if infos, _ := s.listCheckpoints(); len(infos) != 0 {
		t.Errorf("checkpoint appeared despite failed rename: %v", infos)
	}
	s.Close()
	// The next process's Open sweeps the debris.
	mustOpen(t, Options{Dir: dir})
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("reopen did not clean the stale temp file")
	}
}

func TestFaultTornWAL(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Faults: FaultConfig{Seed: 1, TornWALRate: 1}})
	if _, err := s.AppendCycle(walCycle(0)); err == nil {
		t.Fatal("torn WAL append must error")
	}
	s.Close()
	// Reopen truncates the partial frame; the log is healthy again.
	s2 := mustOpen(t, Options{Dir: dir})
	if got := s2.WALCycles(); len(got) != 0 {
		t.Errorf("torn append left %d readable records", len(got))
	}
	if s2.WALTruncatedBytes() <= 0 {
		t.Error("torn tail not counted")
	}
	if _, err := s2.AppendCycle(walCycle(0)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := mustOpen(t, Options{Dir: dir})
	if got := s3.WALCycles(); len(got) != 1 {
		t.Errorf("healed WAL has %d records", len(got))
	}
}

func TestFaultRatesValidated(t *testing.T) {
	for _, bad := range []FaultConfig{
		{TornCheckpointRate: -0.1},
		{TornCheckpointRate: 1.5},
		{RenameFailRate: 2},
		{TornWALRate: -1},
	} {
		if _, err := Open(Options{Dir: t.TempDir(), Faults: bad}); err == nil {
			t.Errorf("fault config %+v accepted", bad)
		}
	}
}
