package store

import (
	"bytes"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/experiments"
)

// testLogger keeps recovery chatter out of test output.
func testLogger(testing.TB) *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// The recovery tests drive real CrowdLearn systems. The lab (dataset +
// pilot study) is expensive and read-only, so it is built once; every
// system and platform is created fresh per test via the env, exactly as
// crowdlearnd does.
var (
	envOnce   sync.Once
	envShared *experiments.Env
	envErr    error
)

func testEnv(t testing.TB) *experiments.Env {
	t.Helper()
	envOnce.Do(func() {
		envShared, envErr = experiments.NewEnv(experiments.DefaultConfig())
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envShared
}

const (
	cyclesBeforeCrash = 6
	cyclesAfterCrash  = 6
	totalCycles       = cyclesBeforeCrash + cyclesAfterCrash
	imagesPerCycle    = 10
)

// runCycles drives n cycles starting at index start, consuming the test
// images the campaign schedule assigns to those cycles.
func runCycles(t testing.TB, sys *core.CrowdLearn, env *experiments.Env, start, n int) {
	t.Helper()
	cfg := core.CampaignConfig{Cycles: n, ImagesPerCycle: imagesPerCycle, StartCycle: start}
	images := env.Dataset.Test[start*imagesPerCycle : (start+n)*imagesPerCycle]
	if _, err := core.RunCampaign(sys, images, cfg); err != nil {
		t.Fatal(err)
	}
}

func stateBytes(t testing.TB, sys *core.CrowdLearn) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sys.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// uninterruptedState is the reference arm every crash test compares
// against: one system running all totalCycles cycles without any
// persistence attached, computed once.
var (
	refOnce  sync.Once
	refState []byte
)

func uninterruptedState(t testing.TB) []byte {
	t.Helper()
	env := testEnv(t)
	refOnce.Do(func() {
		sys, err := env.NewSystem()
		if err != nil {
			envErr = err
			return
		}
		runCycles(t, sys, env, 0, totalCycles)
		refState = stateBytes(t, sys)
	})
	if refState == nil {
		t.Fatal("reference arm failed to build")
	}
	return refState
}

func recoverOpts(env *experiments.Env) RecoverOptions {
	return RecoverOptions{
		TrainSamples:   classifier.SamplesFromImages(env.Dataset.Train),
		Registry:       env.Dataset.Test,
		ResyncPlatform: true,
		Logger:         testLogger(nil),
	}
}

// crashAndRecover runs cyclesBeforeCrash journaled cycles against a
// store opened with opts, drops the system, recovers a fresh one from
// the directory, runs the remaining cycles and returns the final state
// with the recovery report.
func crashAndRecover(t *testing.T, opts Options, every int) ([]byte, *RecoveryReport) {
	t.Helper()
	env := testEnv(t)

	st, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	var sys *core.CrowdLearn
	journal := NewJournal(st, every, func(w io.Writer) error { return sys.SaveState(w) }, testLogger(t), nil)
	sys, err = env.NewSystemWith(func(cfg *core.Config) { cfg.Journal = journal })
	if err != nil {
		t.Fatal(err)
	}
	runCycles(t, sys, env, 0, cyclesBeforeCrash)
	if err := st.Close(); err != nil { // crash: nothing in memory survives
		t.Fatal(err)
	}
	sys = nil

	st2, err := Open(Options{Dir: opts.Dir, RetainCheckpoints: opts.RetainCheckpoints})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	restored, err := env.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	report, err := st2.Recover(restored, recoverOpts(env))
	if err != nil {
		t.Fatal(err)
	}
	if report.NextCycle != cyclesBeforeCrash {
		t.Fatalf("recovery resumes at cycle %d, want %d", report.NextCycle, cyclesBeforeCrash)
	}
	runCycles(t, restored, env, cyclesBeforeCrash, cyclesAfterCrash)
	return stateBytes(t, restored), report
}

// TestCrashRecoveryEquivalence is the durability contract: a process
// that crashes after cyclesBeforeCrash journaled cycles and recovers —
// newest checkpoint, WAL suffix replayed, platform resynced — must end
// the campaign with state byte-identical (expert weights and
// parameters, bandit accounting, CQC model, RNG positions) to a process
// that never crashed.
func TestCrashRecoveryEquivalence(t *testing.T) {
	want := uninterruptedState(t)
	got, report := crashAndRecover(t, Options{Dir: t.TempDir()}, 4)
	if report.Outcome != OutcomeCheckpointWAL {
		t.Errorf("outcome %q, want %q", report.Outcome, OutcomeCheckpointWAL)
	}
	if report.CheckpointCycles != 4 || report.CyclesReplayed != 2 || report.CyclesResynced != 4 {
		t.Errorf("report %+v", report)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("recovered arm diverged: state %d bytes vs %d, equal=false", len(got), len(want))
	}
}

// TestCrashRecoveryFromWALOnly crashes before any checkpoint cadence
// fires: recovery replays the whole campaign prefix from the WAL over
// bootstrap state and must still converge byte-identically.
func TestCrashRecoveryFromWALOnly(t *testing.T) {
	want := uninterruptedState(t)
	got, report := crashAndRecover(t, Options{Dir: t.TempDir()}, 0)
	if report.Outcome != OutcomeWAL {
		t.Errorf("outcome %q, want %q", report.Outcome, OutcomeWAL)
	}
	if report.CheckpointCycles != -1 || report.CyclesReplayed != cyclesBeforeCrash {
		t.Errorf("report %+v", report)
	}
	if !bytes.Equal(got, want) {
		t.Error("WAL-only recovery diverged from the uninterrupted arm")
	}
}

// TestCrashRecoveryAllCheckpointsTorn injects a 100% torn-checkpoint
// rate: every checkpoint file lands corrupt. Recovery must skip them
// all by checksum, fall back to bootstrap state, replay the full WAL,
// and still match the uninterrupted arm.
func TestCrashRecoveryAllCheckpointsTorn(t *testing.T) {
	want := uninterruptedState(t)
	opts := Options{Dir: t.TempDir(), Faults: FaultConfig{Seed: 11, TornCheckpointRate: 1}}
	got, report := crashAndRecover(t, opts, 2)
	if report.Outcome != OutcomeBootstrapFallback {
		t.Errorf("outcome %q, want %q", report.Outcome, OutcomeBootstrapFallback)
	}
	if report.CheckpointsSkipped == 0 || report.CheckpointCycles != -1 {
		t.Errorf("report %+v", report)
	}
	if report.CyclesReplayed != cyclesBeforeCrash {
		t.Errorf("replayed %d cycles, want %d", report.CyclesReplayed, cyclesBeforeCrash)
	}
	if !bytes.Equal(got, want) {
		t.Error("bootstrap-fallback recovery diverged from the uninterrupted arm")
	}
}

// TestCrashRecoverySkipsCorruptNewestCheckpoint corrupts the newest
// checkpoint on disk after a clean run: recovery must fall back to the
// previous generation, replay the longer WAL suffix, and still match.
func TestCrashRecoverySkipsCorruptNewestCheckpoint(t *testing.T) {
	want := uninterruptedState(t)
	env := testEnv(t)
	dir := t.TempDir()

	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var sys *core.CrowdLearn
	journal := NewJournal(st, 2, func(w io.Writer) error { return sys.SaveState(w) }, testLogger(t), nil)
	sys, err = env.NewSystemWith(func(cfg *core.Config) { cfg.Journal = journal })
	if err != nil {
		t.Fatal(err)
	}
	runCycles(t, sys, env, 0, cyclesBeforeCrash)
	st.Close()
	sys = nil

	// Flip one payload byte in the newest checkpoint (cycles=6).
	newest := filepath.Join(dir, checkpointName(cyclesBeforeCrash))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[checkpointHdrSize+100] ^= 1
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	restored, err := env.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	report, err := st2.Recover(restored, recoverOpts(env))
	if err != nil {
		t.Fatal(err)
	}
	if report.CheckpointsSkipped != 1 || report.CheckpointCycles != 4 || report.CyclesReplayed != 2 {
		t.Fatalf("report %+v", report)
	}
	runCycles(t, restored, env, cyclesBeforeCrash, cyclesAfterCrash)
	if !bytes.Equal(stateBytes(t, restored), want) {
		t.Error("recovery through the older checkpoint diverged")
	}
}

// TestRecoverEmptyDirIsFresh: recovering against an empty state
// directory is a no-op on the freshly bootstrapped system.
func TestRecoverEmptyDirIsFresh(t *testing.T) {
	env := testEnv(t)
	st, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sys, err := env.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	before := stateBytes(t, sys)
	report, err := st.Recover(sys, recoverOpts(env))
	if err != nil {
		t.Fatal(err)
	}
	if report.Outcome != OutcomeFresh || report.CheckpointCycles != -1 || report.NextCycle != 0 {
		t.Errorf("report %+v", report)
	}
	if !bytes.Equal(before, stateBytes(t, sys)) {
		t.Error("fresh recovery mutated the system")
	}
}

// TestRecoverGarbageCheckpointsFallBack: a directory holding only
// corrupt checkpoint files (no WAL) recovers to bootstrap state with a
// warning, never a crash or partial state.
func TestRecoverGarbageCheckpointsFallBack(t *testing.T) {
	env := testEnv(t)
	dir := t.TempDir()
	for _, cycles := range []int{2, 4} {
		if err := os.WriteFile(filepath.Join(dir, checkpointName(cycles)), []byte("not a checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sys, err := env.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	before := stateBytes(t, sys)
	report, err := st.Recover(sys, recoverOpts(env))
	if err != nil {
		t.Fatal(err)
	}
	if report.Outcome != OutcomeBootstrapFallback || report.CheckpointsSkipped != 2 || report.NextCycle != 0 {
		t.Errorf("report %+v", report)
	}
	if !bytes.Equal(before, stateBytes(t, sys)) {
		t.Error("fallback recovery mutated the system")
	}
}

// TestRecoverWALMissingImageFails: a journaled cycle referencing an
// image absent from the registry is a hard, descriptive error — a
// committed cycle must never be silently dropped.
func TestRecoverWALMissingImageFails(t *testing.T) {
	env := testEnv(t)
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendCycle(core.JournalCycle{Index: 0, ImageIDs: []int{424242}}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sys, err := env.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	_, err = st2.Recover(sys, recoverOpts(env))
	if err == nil || !strings.Contains(err.Error(), "424242") {
		t.Errorf("missing registry image gave %v", err)
	}
}

// TestRecoverJournalGapFails: a WAL whose first record starts past the
// recovered state is unusable history and must be rejected.
func TestRecoverJournalGapFails(t *testing.T) {
	env := testEnv(t)
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendCycle(core.JournalCycle{Index: 3}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sys, err := env.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	_, err = st2.Recover(sys, recoverOpts(env))
	if err == nil || !strings.Contains(err.Error(), "journal gap") {
		t.Errorf("journal gap gave %v", err)
	}
}
