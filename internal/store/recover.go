package store

import (
	"bytes"
	"fmt"
	"log/slog"

	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/obs"
)

// Recovery outcome labels, exported for /stats and the
// crowdlearn_recovery_outcome metric.
const (
	// OutcomeFresh: the state directory held no usable state; the
	// freshly bootstrapped system stands as-is.
	OutcomeFresh = "fresh"
	// OutcomeCheckpoint: a checkpoint restored and no WAL cycles
	// followed it.
	OutcomeCheckpoint = "checkpoint"
	// OutcomeCheckpointWAL: a checkpoint restored plus WAL cycles
	// replayed on top.
	OutcomeCheckpointWAL = "checkpoint+wal"
	// OutcomeWAL: no usable checkpoint, but WAL cycles replayed over
	// the bootstrap state.
	OutcomeWAL = "wal"
	// OutcomeBootstrapFallback: checkpoint files existed but every one
	// was corrupt; recovery fell back to the bootstrap state (plus any
	// WAL replay) instead of crashing.
	OutcomeBootstrapFallback = "bootstrap-fallback"
)

// RecoverOptions parameterises Store.Recover.
type RecoverOptions struct {
	// TrainSamples re-seed the retraining replay pool; pass the same
	// samples used at Bootstrap.
	TrainSamples []classifier.Sample
	// Registry is the image universe WAL records resolve their image
	// IDs against (normally the assessable test split).
	Registry []*imagery.Image
	// ResyncPlatform, when set, advances the live simulated crowd
	// platform through every journaled interaction so its random
	// stream ends exactly where the original process left it —
	// required for byte-identical continuation against a seeded
	// platform; pointless against a real crowd.
	ResyncPlatform bool
	// Logger receives recovery progress; nil uses slog.Default().
	Logger *slog.Logger
	// Metrics, when non-nil, receives the recovery-outcome gauge.
	Metrics *obs.Registry
}

// RecoveryReport describes what Recover did.
type RecoveryReport struct {
	// Outcome is one of the Outcome* labels.
	Outcome string `json:"outcome"`
	// CheckpointCycles is the committed-cycle count of the restored
	// checkpoint (-1 if none was usable).
	CheckpointCycles int `json:"checkpointCycles"`
	// CheckpointsSkipped counts checkpoint files rejected as corrupt
	// or torn during the newest→oldest scan.
	CheckpointsSkipped int `json:"checkpointsSkipped"`
	// CyclesReplayed counts WAL records re-applied through the
	// MIC/calibration path.
	CyclesReplayed int `json:"cyclesReplayed"`
	// CyclesResynced counts WAL records used only to advance the
	// simulated platform (already covered by the checkpoint).
	CyclesResynced int `json:"cyclesResynced"`
	// WALTruncatedBytes is the torn tail Open discarded.
	WALTruncatedBytes int64 `json:"walTruncatedBytes"`
	// NextCycle is the index the next sensing cycle should use.
	NextCycle int `json:"nextCycle"`
}

// Recover restores sys to the newest durable state in the directory:
// it scans checkpoints newest→oldest skipping any that fail their
// checksum, restores the first good one, then deterministically
// re-applies the WAL records beyond it via core.ReplayCycle. sys must
// be freshly bootstrapped with the same configuration, dataset and
// seeds as the process that wrote the state. Corrupt state never
// aborts recovery — the report says what was skipped — but a WAL
// record that cannot be replayed (e.g. it references images absent
// from the registry) is a hard error, because silently dropping a
// committed cycle would diverge from the acknowledged history.
func (s *Store) Recover(sys *core.CrowdLearn, opts RecoverOptions) (*RecoveryReport, error) {
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	report := &RecoveryReport{Outcome: OutcomeFresh, CheckpointCycles: -1, WALTruncatedBytes: s.WALTruncatedBytes()}
	if s.walDamaged {
		logger.Warn("WAL header unreadable; journal contents lost", slog.Int64("bytesDropped", report.WALTruncatedBytes))
	} else if report.WALTruncatedBytes > 0 {
		logger.Warn("truncated torn WAL tail", slog.Int64("bytesDropped", report.WALTruncatedBytes))
	}

	infos, err := s.listCheckpoints()
	if err != nil {
		return report, err
	}
	for _, info := range infos {
		payload, rerr := s.readCheckpoint(info)
		if rerr != nil {
			logger.Warn("skipping unusable checkpoint", slog.String("file", info.name), slog.Any("err", rerr))
			report.CheckpointsSkipped++
			continue
		}
		if rerr := sys.RestoreState(bytes.NewReader(payload), opts.TrainSamples); rerr != nil {
			logger.Warn("skipping unrestorable checkpoint", slog.String("file", info.name), slog.Any("err", rerr))
			report.CheckpointsSkipped++
			continue
		}
		report.CheckpointCycles = info.cycles
		logger.Info("restored checkpoint", slog.String("file", info.name), slog.Int("cycles", info.cycles))
		break
	}
	if report.CheckpointCycles < 0 && len(infos) > 0 {
		logger.Warn("no usable checkpoint; continuing from bootstrap state",
			slog.Int("corruptCheckpoints", report.CheckpointsSkipped))
	}

	registry := make(map[int]*imagery.Image, len(opts.Registry))
	for _, im := range opts.Registry {
		registry[im.ID] = im
	}
	next := 0
	if report.CheckpointCycles > 0 {
		next = report.CheckpointCycles
	}
	for _, rec := range s.WALCycles() {
		switch {
		case rec.Index < next && opts.ResyncPlatform:
			if err := sys.ResyncCycle(rec, registry); err != nil {
				return report, fmt.Errorf("store: recover: %w", err)
			}
			report.CyclesResynced++
		case rec.Index < next:
			// Covered by the checkpoint and no platform to resync.
		case rec.Index > next:
			return report, fmt.Errorf("store: recover: journal gap: expected cycle %d, found %d", next, rec.Index)
		default:
			if err := sys.ReplayCycle(rec, registry, opts.ResyncPlatform); err != nil {
				return report, fmt.Errorf("store: recover: %w", err)
			}
			report.CyclesReplayed++
			next = rec.Index + 1
		}
	}
	report.NextCycle = next

	switch {
	case report.CheckpointCycles >= 0 && report.CyclesReplayed > 0:
		report.Outcome = OutcomeCheckpointWAL
	case report.CheckpointCycles >= 0:
		report.Outcome = OutcomeCheckpoint
	case report.CheckpointsSkipped > 0:
		report.Outcome = OutcomeBootstrapFallback
	case report.CyclesReplayed > 0:
		report.Outcome = OutcomeWAL
	}
	observeRecovery(opts.Metrics, report)
	logger.Info("recovery complete",
		slog.String("outcome", report.Outcome),
		slog.Int("checkpointCycles", report.CheckpointCycles),
		slog.Int("checkpointsSkipped", report.CheckpointsSkipped),
		slog.Int("cyclesReplayed", report.CyclesReplayed),
		slog.Int("cyclesResynced", report.CyclesResynced),
		slog.Int("nextCycle", report.NextCycle))
	return report, nil
}

// observeRecovery publishes the recovery outcome as a one-hot gauge
// family so dashboards can alert on bootstrap fallbacks.
func observeRecovery(r *obs.Registry, report *RecoveryReport) {
	if r == nil {
		return
	}
	for _, outcome := range []string{OutcomeFresh, OutcomeCheckpoint, OutcomeCheckpointWAL, OutcomeWAL, OutcomeBootstrapFallback} {
		v := 0.0
		if outcome == report.Outcome {
			v = 1
		}
		r.Gauge(MetricRecoveryOutcome, "outcome", outcome).Set(v)
	}
	r.Gauge(MetricRecoveryReplayed).Set(float64(report.CyclesReplayed))
	r.Gauge(MetricRecoveryCheckpointsSkipped).Set(float64(report.CheckpointsSkipped))
	r.Gauge(MetricRecoveryWALTruncated).Set(float64(report.WALTruncatedBytes))
}
