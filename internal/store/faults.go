package store

import (
	"fmt"
	"math/rand"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// FaultConfig seeds deterministic persistence faults, in the spirit of
// internal/faults for the crowd platform: each rate is the probability
// that the corresponding failure mode fires on one write operation, and
// a given seed always produces the same fault sequence. Zero value =
// no faults. Test-only: production opens stores without faults.
type FaultConfig struct {
	Seed int64
	// TornCheckpointRate: the checkpoint lands renamed into place but
	// holding only a prefix of its bytes — what a crash between rename
	// and data flush (or later media corruption) leaves behind. The
	// write call reports failure; recovery must detect and skip the
	// file by checksum.
	TornCheckpointRate float64
	// RenameFailRate: the checkpoint temp file is written but the
	// atomic rename fails, leaving only the temp file (cleaned up on
	// the next Open) — a crash between write and rename.
	RenameFailRate float64
	// TornWALRate: a WAL append writes only a prefix of the framed
	// record and fails — a crash mid-append. The next Open must
	// truncate the torn tail.
	TornWALRate float64
}

func (c FaultConfig) enabled() bool {
	return c.TornCheckpointRate > 0 || c.RenameFailRate > 0 || c.TornWALRate > 0
}

// validate rejects rates outside [0,1].
func (c FaultConfig) validate() error {
	for _, r := range []struct {
		name string
		rate float64
	}{
		{"TornCheckpointRate", c.TornCheckpointRate},
		{"RenameFailRate", c.RenameFailRate},
		{"TornWALRate", c.TornWALRate},
	} {
		if r.rate < 0 || r.rate > 1 {
			return fmt.Errorf("store: %s %v outside [0,1]", r.name, r.rate)
		}
	}
	return nil
}

// faultInjector draws the fault decisions from a seeded stream.
type faultInjector struct {
	cfg FaultConfig
	rng *rand.Rand
}

func newFaultInjector(cfg FaultConfig) *faultInjector {
	if !cfg.enabled() {
		return nil
	}
	return &faultInjector{cfg: cfg, rng: mathx.NewRand(cfg.Seed)}
}

// tornCheckpoint decides whether this checkpoint write is torn, and if
// so how many of n bytes survive (at least one header byte missing or
// payload cut, so the checksum cannot accidentally hold).
func (f *faultInjector) tornCheckpoint(n int) (keep int, torn bool) {
	if f == nil || !mathx.Bernoulli(f.rng, f.cfg.TornCheckpointRate) {
		return n, false
	}
	if n <= 1 {
		return 0, true
	}
	return f.rng.Intn(n-1) + 1, true
}

// failRename decides whether this checkpoint's rename fails.
func (f *faultInjector) failRename() bool {
	return f != nil && mathx.Bernoulli(f.rng, f.cfg.RenameFailRate)
}

// tornWAL decides whether this WAL append is torn, and how many of n
// framed bytes reach the file.
func (f *faultInjector) tornWAL(n int) (keep int, torn bool) {
	if f == nil || !mathx.Bernoulli(f.rng, f.cfg.TornWALRate) {
		return n, false
	}
	if n <= 1 {
		return 0, true
	}
	return f.rng.Intn(n-1) + 1, true
}
