package store

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	payload := []byte("crowdlearn checkpoint payload")
	frame := encodeCheckpoint(7, payload)
	cycles, got, err := parseCheckpoint(frame)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 7 || !bytes.Equal(got, payload) {
		t.Errorf("round trip gave cycles=%d payload=%q", cycles, got)
	}
}

func TestCheckpointEmptyPayload(t *testing.T) {
	cycles, payload, err := parseCheckpoint(encodeCheckpoint(0, nil))
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 0 || len(payload) != 0 {
		t.Errorf("got cycles=%d payload=%d bytes", cycles, len(payload))
	}
}

func TestParseCheckpointRejectsCorruption(t *testing.T) {
	valid := encodeCheckpoint(3, []byte("payload bytes here"))
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short header", func(b []byte) []byte { return b[:checkpointHdrSize-1] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"future version", func(b []byte) []byte { binary.BigEndian.PutUint16(b[4:6], 99); return b }},
		{"implausible cycles", func(b []byte) []byte {
			binary.BigEndian.PutUint64(b[8:16], 1<<40)
			return b
		}},
		{"implausible length", func(b []byte) []byte {
			binary.BigEndian.PutUint64(b[16:24], 1<<40)
			return b
		}},
		{"torn payload", func(b []byte) []byte { return b[:len(b)-4] }},
		{"flipped payload bit", func(b []byte) []byte { b[checkpointHdrSize] ^= 1; return b }},
		{"flipped crc", func(b []byte) []byte { b[24] ^= 1; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), valid...))
			if _, _, err := parseCheckpoint(data); err == nil {
				t.Error("corruption must be detected")
			}
		})
	}
}

func TestScanWALRecords(t *testing.T) {
	a := encodeWALRecord([]byte("first"))
	b := encodeWALRecord([]byte("second record"))
	data := append(append([]byte(nil), a...), b...)

	payloads, valid := scanWALRecords(data)
	if len(payloads) != 2 || valid != len(data) {
		t.Fatalf("intact log scanned as %d records, %d valid bytes", len(payloads), valid)
	}
	if string(payloads[0]) != "first" || string(payloads[1]) != "second record" {
		t.Errorf("payloads %q", payloads)
	}

	// A torn tail ends the scan at the last intact record.
	torn := append(append([]byte(nil), data...), encodeWALRecord([]byte("third"))[:5]...)
	payloads, valid = scanWALRecords(torn)
	if len(payloads) != 2 || valid != len(data) {
		t.Errorf("torn log scanned as %d records, %d valid bytes (want 2, %d)", len(payloads), valid, len(data))
	}

	// A corrupt middle record drops it and everything after.
	corrupt := append([]byte(nil), data...)
	corrupt[len(a)+walRecHdrSize] ^= 1
	payloads, valid = scanWALRecords(corrupt)
	if len(payloads) != 1 || valid != len(a) {
		t.Errorf("corrupt log scanned as %d records, %d valid bytes (want 1, %d)", len(payloads), valid, len(a))
	}
}

// seedCorpus feeds the committed testdata files into a fuzz target so
// known-tricky inputs are always exercised, even in plain `go test` runs.
func seedCorpus(f *testing.F, glob string) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", glob))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
}

// FuzzOpenCheckpoint asserts parseCheckpoint never panics and that
// anything it accepts round-trips through the encoder coherently.
func FuzzOpenCheckpoint(f *testing.F) {
	f.Add(encodeCheckpoint(0, nil))
	f.Add(encodeCheckpoint(40, []byte("state payload")))
	f.Add([]byte(checkpointMagic))
	seedCorpus(f, "checkpoint-*.bin")
	f.Fuzz(func(t *testing.T, data []byte) {
		cycles, payload, err := parseCheckpoint(data)
		if err != nil {
			return
		}
		if cycles < 0 {
			t.Fatalf("accepted negative cycle count %d", cycles)
		}
		if len(payload) != len(data)-checkpointHdrSize {
			t.Fatalf("accepted payload of %d bytes from %d-byte file", len(payload), len(data))
		}
		c2, p2, err := parseCheckpoint(encodeCheckpoint(cycles, payload))
		if err != nil || c2 != cycles || !bytes.Equal(p2, payload) {
			t.Fatalf("re-encode of accepted input does not round-trip: %v", err)
		}
	})
}

// FuzzWALScan asserts the record scanner never panics, never claims more
// valid bytes than exist, and is idempotent over its own valid prefix.
func FuzzWALScan(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeWALRecord([]byte("one")))
	f.Add(append(encodeWALRecord([]byte("one")), encodeWALRecord([]byte("two"))...))
	f.Add(encodeWALRecord([]byte("torn"))[:6])
	seedCorpus(f, "wal-*.bin")
	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, valid := scanWALRecords(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d outside [0,%d]", valid, len(data))
		}
		p2, v2 := scanWALRecords(data[:valid])
		if v2 != valid || len(p2) != len(payloads) {
			t.Fatalf("rescan of valid prefix gave %d records/%d bytes, first scan %d/%d",
				len(p2), v2, len(payloads), valid)
		}
	})
}
