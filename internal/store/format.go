// Package store is CrowdLearn's durable, crash-safe persistence layer.
//
// Two kinds of files live in a state directory:
//
//   - Checkpoint files (checkpoint-NNNNNNNNNN.ckpt) hold a full
//     core.SaveState snapshot behind a checksummed, versioned header.
//     They are written atomically: temp file → fsync → rename → dir
//     fsync, then rotated so only the newest K are retained.
//
//   - A write-ahead cycle log (wal.log) appends one checksummed,
//     length-framed record per committed sensing cycle — the
//     core.JournalCycle with every crowd interaction's outcome. A crash
//     can leave at most a torn final record, which Open truncates.
//
// Recover scans checkpoints newest→oldest, skips any whose checksum or
// framing is bad, restores the newest good one, and deterministically
// re-applies the WAL suffix through the existing MIC/calibration path
// (core.ReplayCycle), yielding state byte-identical to a process that
// never crashed. DESIGN.md §10 documents the formats and semantics.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// File-format constants. Versions gate decoding: a reader rejects
// versions it does not know rather than guessing at layout.
const (
	checkpointMagic   = "CLCP"
	walMagic          = "CLWL"
	formatVersion     = 1
	checkpointHdrSize = 4 + 2 + 2 + 8 + 8 + 4 // magic, version, reserved, cycles, length, crc
	walHdrSize        = 4 + 2 + 2             // magic, version, reserved
	walRecHdrSize     = 4 + 4                 // length, crc

	// maxCheckpointPayload and maxWALRecord bound what a parser will
	// believe about a length field, so corrupt headers cannot demand
	// absurd allocations.
	maxCheckpointPayload = 1 << 30
	maxWALRecord         = 256 << 20
)

// castagnoli is the CRC-32C polynomial table; the same checksum guards
// checkpoint payloads and WAL records.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeCheckpoint frames a SaveState payload. cycles is the number of
// committed sensing cycles the snapshot covers (0 = freshly
// bootstrapped); recovery replays WAL records at index ≥ cycles.
func encodeCheckpoint(cycles int, payload []byte) []byte {
	buf := make([]byte, checkpointHdrSize+len(payload))
	copy(buf[0:4], checkpointMagic)
	binary.BigEndian.PutUint16(buf[4:6], formatVersion)
	binary.BigEndian.PutUint64(buf[8:16], uint64(cycles))
	binary.BigEndian.PutUint64(buf[16:24], uint64(len(payload)))
	binary.BigEndian.PutUint32(buf[24:28], crc32.Checksum(payload, castagnoli))
	copy(buf[checkpointHdrSize:], payload)
	return buf
}

// parseCheckpoint validates a checkpoint file image and returns the
// covered-cycle count and the SaveState payload. It never panics on
// hostile input (FuzzOpenCheckpoint).
func parseCheckpoint(data []byte) (cycles int, payload []byte, err error) {
	if len(data) < checkpointHdrSize {
		return 0, nil, fmt.Errorf("store: checkpoint truncated: %d bytes, header needs %d", len(data), checkpointHdrSize)
	}
	if string(data[0:4]) != checkpointMagic {
		return 0, nil, fmt.Errorf("store: bad checkpoint magic %q", data[0:4])
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != formatVersion {
		return 0, nil, fmt.Errorf("store: unsupported checkpoint version %d", v)
	}
	c := binary.BigEndian.Uint64(data[8:16])
	n := binary.BigEndian.Uint64(data[16:24])
	if c > maxCheckpointPayload { // cycle counts are small; a huge value is corruption
		return 0, nil, fmt.Errorf("store: checkpoint cycle count %d implausible", c)
	}
	if n > maxCheckpointPayload {
		return 0, nil, fmt.Errorf("store: checkpoint claims %d payload bytes (limit %d)", n, maxCheckpointPayload)
	}
	if uint64(len(data)-checkpointHdrSize) != n {
		return 0, nil, fmt.Errorf("store: checkpoint torn: header claims %d payload bytes, file has %d",
			n, len(data)-checkpointHdrSize)
	}
	payload = data[checkpointHdrSize:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.BigEndian.Uint32(data[24:28]); got != want {
		return 0, nil, fmt.Errorf("store: checkpoint payload CRC mismatch: %08x != %08x", got, want)
	}
	return int(c), payload, nil
}

// encodeWALHeader frames the write-ahead log's file header.
func encodeWALHeader() []byte {
	buf := make([]byte, walHdrSize)
	copy(buf[0:4], walMagic)
	binary.BigEndian.PutUint16(buf[4:6], formatVersion)
	return buf
}

// parseWALHeader validates the WAL file header.
func parseWALHeader(data []byte) error {
	if len(data) < walHdrSize {
		return fmt.Errorf("store: WAL header truncated: %d bytes", len(data))
	}
	if string(data[0:4]) != walMagic {
		return fmt.Errorf("store: bad WAL magic %q", data[0:4])
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != formatVersion {
		return fmt.Errorf("store: unsupported WAL version %d", v)
	}
	return nil
}

// encodeWALRecord frames one record payload.
func encodeWALRecord(payload []byte) []byte {
	buf := make([]byte, walRecHdrSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[walRecHdrSize:], payload)
	return buf
}

// scanWALRecords walks the record region of a WAL image (header already
// stripped) and returns every intact record payload plus the byte count
// of the valid prefix. The first torn or corrupt record ends the scan:
// everything from it onward is the tail to truncate. Never panics on
// hostile input (FuzzWALScan).
func scanWALRecords(data []byte) (payloads [][]byte, valid int) {
	pos := 0
	for {
		if len(data)-pos < walRecHdrSize {
			return payloads, pos
		}
		n := binary.BigEndian.Uint32(data[pos : pos+4])
		if n > maxWALRecord || uint64(pos+walRecHdrSize)+uint64(n) > uint64(len(data)) {
			return payloads, pos
		}
		payload := data[pos+walRecHdrSize : pos+walRecHdrSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(data[pos+4:pos+8]) {
			return payloads, pos
		}
		payloads = append(payloads, payload)
		pos += walRecHdrSize + int(n)
	}
}
