package store

import (
	"bytes"
	"io"
	"log/slog"
	"sync"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/obs"
)

// Metric names for the persistence layer, following the conventions of
// internal/core's metric set.
const (
	// MetricCheckpoints counts checkpoint write attempts by result
	// ("ok" | "error").
	MetricCheckpoints = "crowdlearn_checkpoints_total"
	// MetricCheckpointBytes gauges the size of the newest checkpoint.
	MetricCheckpointBytes = "crowdlearn_checkpoint_bytes"
	// MetricCheckpointDuration is the checkpoint write latency histogram.
	MetricCheckpointDuration = "crowdlearn_checkpoint_duration_seconds"
	// MetricCheckpointAge gauges seconds since the last successful
	// checkpoint, refreshed on every committed cycle.
	MetricCheckpointAge = "crowdlearn_checkpoint_age_seconds"
	// MetricWALRecords counts durably appended cycle records.
	MetricWALRecords = "crowdlearn_wal_records_total"
	// MetricWALBytes counts bytes appended to the WAL.
	MetricWALBytes = "crowdlearn_wal_bytes_total"
	// MetricRecoveryOutcome is a one-hot gauge family over the
	// Outcome* labels describing the last startup's recovery.
	MetricRecoveryOutcome = "crowdlearn_recovery_outcome"
	// MetricRecoveryReplayed gauges WAL cycles replayed at the last
	// startup.
	MetricRecoveryReplayed = "crowdlearn_recovery_cycles_replayed"
	// MetricRecoveryCheckpointsSkipped gauges corrupt checkpoints
	// skipped at the last startup.
	MetricRecoveryCheckpointsSkipped = "crowdlearn_recovery_checkpoints_skipped"
	// MetricRecoveryWALTruncated gauges torn WAL bytes dropped at the
	// last startup.
	MetricRecoveryWALTruncated = "crowdlearn_recovery_wal_truncated_bytes"
)

var durationBuckets = obs.ExponentialBuckets(0.001, 2, 14)

// RegisterHelp attaches HELP text for the persistence metrics. Safe on
// a nil registry.
func RegisterHelp(r *obs.Registry) {
	r.Help(MetricCheckpoints, "Checkpoint write attempts by result.")
	r.Help(MetricCheckpointBytes, "Size of the newest checkpoint file in bytes.")
	r.Help(MetricCheckpointDuration, "Checkpoint write latency in seconds.")
	r.Help(MetricCheckpointAge, "Seconds since the last successful checkpoint.")
	r.Help(MetricWALRecords, "Cycle records durably appended to the write-ahead log.")
	r.Help(MetricWALBytes, "Bytes appended to the write-ahead log.")
	r.Help(MetricRecoveryOutcome, "One-hot recovery outcome of the last startup.")
	r.Help(MetricRecoveryReplayed, "WAL cycles replayed during the last recovery.")
	r.Help(MetricRecoveryCheckpointsSkipped, "Corrupt or torn checkpoints skipped during the last recovery.")
	r.Help(MetricRecoveryWALTruncated, "Torn write-ahead-log bytes truncated during the last recovery.")
}

// Journal adapts a Store to core.CycleJournal: every committed cycle is
// appended to the WAL (an append failure fails the cycle), and every
// CheckpointEvery-th cycle additionally triggers a checkpoint. A failed
// checkpoint does not fail the cycle — the WAL already made it durable —
// but is logged and counted.
type Journal struct {
	store  *Store
	every  int
	save   func(w io.Writer) error
	logger *slog.Logger
	reg    *obs.Registry

	// snapshot, when set via SetSnapshot, splits the checkpoint payload
	// into a synchronous capture (the call itself) and a deferred
	// encode (the returned function) so the expensive serialization can
	// run off the cycle hot path. Set once at wiring time, before any
	// commit; read-only afterwards.
	snapshot func() (encode func(w io.Writer) error, err error)

	mu             sync.Mutex
	cycles         int // committed cycles (next cycle index)
	lastCheckpoint time.Time
	haveCheckpoint bool
}

// NewJournal wires a Store behind core.Config.Journal. every is the
// checkpoint cadence in cycles (0 disables periodic checkpoints; the
// Checkpoint method still works). save produces the checkpoint payload —
// normally the system's SaveState. logger and reg may be nil.
func NewJournal(st *Store, every int, save func(w io.Writer) error, logger *slog.Logger, reg *obs.Registry) *Journal {
	if logger == nil {
		logger = slog.Default()
	}
	RegisterHelp(reg)
	return &Journal{store: st, every: every, save: save, logger: logger, reg: reg}
}

var (
	_ core.CycleJournal         = (*Journal)(nil)
	_ core.DetachedCycleJournal = (*Journal)(nil)
)

// SetSnapshot installs the snapshot-then-encode seam for detached
// commits: fn must capture everything a checkpoint needs from live
// system state synchronously and return a deferred encoder that is
// safe to run after the system has moved on — normally built from the
// system's SnapshotState. Call once at wiring time, before the first
// commit. Without it, detached commits fall back to running the save
// callback synchronously into a buffer during the capture phase, so
// correctness never depends on it — only hot-path latency does.
func (j *Journal) SetSnapshot(fn func() (encode func(w io.Writer) error, err error)) {
	j.snapshot = fn
}

// NoteRecovered seeds the journal's cycle position after Store.Recover,
// so checkpoint cadence and coverage counts continue from the recovered
// history rather than from zero.
func (j *Journal) NoteRecovered(report *RecoveryReport) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cycles = report.NextCycle
	if report.CheckpointCycles >= 0 {
		// The restored checkpoint is on disk and current as of startup.
		j.lastCheckpoint = time.Now()
		j.haveCheckpoint = true
	}
}

// CycleCommitted implements core.CycleJournal.
func (j *Journal) CycleCommitted(rec core.JournalCycle) error {
	n, err := j.store.AppendCycle(rec)
	if err != nil {
		return err
	}
	j.reg.Counter(MetricWALRecords).Inc()
	j.reg.Counter(MetricWALBytes).Add(float64(n))
	j.mu.Lock()
	j.cycles = rec.Index + 1
	cycles := j.cycles
	due := j.every > 0 && cycles%j.every == 0
	j.mu.Unlock()
	if due {
		if cerr := j.Checkpoint(); cerr != nil {
			// The WAL record above already made this cycle durable;
			// recovery just replays more. Surface the failure without
			// failing the cycle.
			j.logger.Warn("periodic checkpoint failed", slog.Any("err", cerr))
		}
	}
	if age, ok := j.CheckpointAge(); ok {
		j.reg.Gauge(MetricCheckpointAge).Set(age.Seconds())
	}
	return nil
}

// CycleCommittedDetached implements core.DetachedCycleJournal: the
// two-phase commit the pipelined campaign runner overlaps on.
//
// The capture phase (this call) decides whether the commit will
// checkpoint — the cadence the synchronous path would use — and, if
// so, captures the checkpoint payload from live state: through the
// SetSnapshot seam when one is installed (cheap capture, deferred
// encode), otherwise by running the save callback into a buffer right
// here. Either way the returned closure touches no live system state.
//
// The durable phase (the returned closure) appends the cycle record to
// the WAL — a failure there fails the cycle, exactly like
// CycleCommitted — and then writes the checkpoint if one was captured;
// a checkpoint failure is logged and counted but does not fail the
// cycle, because the WAL append already made it durable.
func (j *Journal) CycleCommittedDetached(rec core.JournalCycle) (func() error, error) {
	cycles := rec.Index + 1
	var payload func(w io.Writer) error
	if j.every > 0 && cycles%j.every == 0 {
		if j.snapshot != nil {
			encode, err := j.snapshot()
			if err != nil {
				j.logger.Warn("checkpoint snapshot failed; skipping periodic checkpoint", slog.Any("err", err))
				j.reg.Counter(MetricCheckpoints, "result", "error").Inc()
			} else {
				payload = encode
			}
		} else {
			// No snapshot seam: serialize live state now, while this
			// goroutine still owns it; defer only the file write.
			var buf bytes.Buffer
			if err := j.save(&buf); err != nil {
				j.logger.Warn("checkpoint snapshot failed; skipping periodic checkpoint", slog.Any("err", err))
				j.reg.Counter(MetricCheckpoints, "result", "error").Inc()
			} else {
				data := buf.Bytes()
				payload = func(w io.Writer) error {
					_, werr := w.Write(data)
					return werr
				}
			}
		}
	}
	return func() error {
		n, err := j.store.AppendCycle(rec)
		if err != nil {
			return err
		}
		j.reg.Counter(MetricWALRecords).Inc()
		j.reg.Counter(MetricWALBytes).Add(float64(n))
		j.mu.Lock()
		j.cycles = cycles
		j.mu.Unlock()
		if payload != nil {
			if cerr := j.writeCheckpoint(cycles, payload); cerr != nil {
				j.logger.Warn("periodic checkpoint failed", slog.Any("err", cerr))
			}
		}
		if age, ok := j.CheckpointAge(); ok {
			j.reg.Gauge(MetricCheckpointAge).Set(age.Seconds())
		}
		return nil
	}, nil
}

// Checkpoint writes a checkpoint covering every committed cycle —
// called on the periodic cadence and on graceful shutdown (SIGTERM).
func (j *Journal) Checkpoint() error {
	j.mu.Lock()
	cycles := j.cycles
	j.mu.Unlock()
	return j.writeCheckpoint(cycles, j.save)
}

// writeCheckpoint writes one checkpoint covering `cycles` cycles from
// the given payload, with the shared metric and logging bookkeeping.
func (j *Journal) writeCheckpoint(cycles int, payload func(w io.Writer) error) error {
	start := time.Now()
	n, err := j.store.WriteCheckpoint(cycles, payload)
	j.reg.Histogram(MetricCheckpointDuration, durationBuckets).Observe(time.Since(start).Seconds())
	if err != nil {
		j.reg.Counter(MetricCheckpoints, "result", "error").Inc()
		return err
	}
	j.reg.Counter(MetricCheckpoints, "result", "ok").Inc()
	j.reg.Gauge(MetricCheckpointBytes).Set(float64(n))
	j.reg.Gauge(MetricCheckpointAge).Set(0)
	j.mu.Lock()
	j.lastCheckpoint = time.Now()
	j.haveCheckpoint = true
	j.mu.Unlock()
	j.logger.Info("checkpoint written", slog.Int("cycles", cycles), slog.Int64("bytes", n))
	return nil
}

// CheckpointAge reports the time since the last successful checkpoint;
// ok is false when none has been written this process.
func (j *Journal) CheckpointAge() (age time.Duration, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.haveCheckpoint {
		return 0, false
	}
	return time.Since(j.lastCheckpoint), true
}
