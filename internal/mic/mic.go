// Package mic implements CrowdLearn's Machine Intelligence Calibration
// module (Section IV-D): the three complementary strategies that feed the
// crowd's truthful labels back into the AI side each sensing cycle.
//
//  1. Dynamic expert-weight update: each expert's loss is the normalised
//     symmetric KL divergence between its vote distribution and the
//     crowd's truthful label distribution over the queried images
//     (Eq. 5); weights follow the classical exponential-weights rule.
//  2. Model retraining: the crowd's label distributions become soft
//     training targets for an incremental fine-tuning pass on every
//     expert, addressing the insufficient-training-data failure mode.
//  3. Crowd offloading: for the queried images themselves, the crowd's
//     label replaces the AI's in the current cycle, addressing the
//     innate-model-flaw failure mode (confidently wrong on fakes). The
//     replacement is performed by the core sensing-cycle runner; this
//     package provides the sample construction shared by both paths.
//
// Note on Eq. 5 as printed: the paper sums 1 - delta(KL_sym(...)), which
// is maximised when expert and crowd agree — an agreement score rather
// than a loss. We implement the evidently intended quantity,
// loss_m = mean_i delta(KL_sym(...)) in [0, 1], which is equivalent up to
// the sign convention consumed by the exponential update.
package mic

import (
	"errors"
	"fmt"
	"math"

	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
	"github.com/crowdlearn/crowdlearn/internal/parallel"
	"github.com/crowdlearn/crowdlearn/internal/qss"
)

// Config parameterises the calibrator.
type Config struct {
	// LearningRate is the eta of the exponential-weights update
	// (default 2): w_m <- w_m * exp(-eta * loss_m).
	LearningRate float64
	// Workers caps the fan-out of Retrain across committee members
	// (0 = GOMAXPROCS, 1 = sequential). Experts hold disjoint state, so
	// the calibrated committee is identical at any value.
	Workers int
}

// DefaultConfig returns standard calibration hyperparameters.
func DefaultConfig() Config {
	return Config{LearningRate: 2.0}
}

// Calibrator applies MIC's strategies to a committee.
type Calibrator struct {
	cfg Config
}

// New builds a calibrator. (The retraining pass length is owned by each
// expert's own incremental-update schedule, not by MIC.)
func New(cfg Config) (*Calibrator, error) {
	if cfg.LearningRate <= 0 {
		return nil, errors.New("mic: LearningRate must be positive")
	}
	return &Calibrator{cfg: cfg}, nil
}

// ExpertLosses computes each committee member's loss over the queried
// images: the mean bounded symmetric KL divergence between the member's
// vote and the crowd truth distribution (Eq. 5 with the loss sign
// convention; see the package comment).
func (c *Calibrator) ExpertLosses(committee *qss.Committee, images []*imagery.Image, truths [][]float64) ([]float64, error) {
	if len(images) != len(truths) {
		return nil, fmt.Errorf("mic: %d images but %d truth distributions", len(images), len(truths))
	}
	losses := make([]float64, committee.Size())
	if len(images) == 0 {
		return losses, nil
	}
	for i, im := range images {
		if len(truths[i]) != imagery.NumLabels {
			return nil, fmt.Errorf("mic: truth %d has dim %d, want %d", i, len(truths[i]), imagery.NumLabels)
		}
		votes := committee.MemberVotes(im)
		for m, vote := range votes {
			losses[m] += mathx.BoundedDivergence(mathx.SymmetricKL(vote, truths[i]))
		}
	}
	mathx.Scale(losses, 1/float64(len(images)))
	return losses, nil
}

// UpdateWeights applies the exponential-weights rule to the committee
// using the losses over the queried images, and returns the new weights.
// An empty query set leaves the weights untouched.
func (c *Calibrator) UpdateWeights(committee *qss.Committee, images []*imagery.Image, truths [][]float64) ([]float64, error) {
	if len(images) == 0 {
		return committee.Weights(), nil
	}
	losses, err := c.ExpertLosses(committee, images, truths)
	if err != nil {
		return nil, err
	}
	w := committee.Weights()
	for m := range w {
		w[m] *= math.Exp(-c.cfg.LearningRate * losses[m])
	}
	if err := committee.SetWeights(w); err != nil {
		return nil, err
	}
	return committee.Weights(), nil
}

// RetrainSamples converts crowd truths into training samples with soft
// targets for the model-retraining strategy.
func RetrainSamples(images []*imagery.Image, truths [][]float64) ([]classifier.Sample, error) {
	if len(images) != len(truths) {
		return nil, fmt.Errorf("mic: %d images but %d truth distributions", len(images), len(truths))
	}
	samples := make([]classifier.Sample, len(images))
	for i, im := range images {
		if im == nil {
			return nil, fmt.Errorf("mic: image %d is nil", i)
		}
		if len(truths[i]) != imagery.NumLabels {
			return nil, fmt.Errorf("mic: truth %d has dim %d, want %d", i, len(truths[i]), imagery.NumLabels)
		}
		samples[i] = classifier.Sample{Image: im, Target: mathx.Normalized(truths[i])}
	}
	return samples, nil
}

// Retrain runs the incremental retraining strategy: every committee
// member receives a short update pass on the crowd-labelled samples,
// fanning out across members. An empty sample set is a no-op. The
// lowest-index error matches what a sequential member loop would return
// first.
func (c *Calibrator) Retrain(committee *qss.Committee, samples []classifier.Sample) error {
	return c.RetrainObs(committee, samples, nil)
}

// retrainGrain pins the retrain fan-out at one expert per work unit:
// an expert retrain is the coarsest unit in the whole cycle (hundreds
// of milliseconds), so every handoff is worth paying for and chunks
// must never batch two experts onto one worker while another idles.
var retrainGrain = parallel.Grain{MinChunk: 1, CostNs: 1_000_000_000}

// RetrainObs is Retrain with an optional scheduling observer on the
// per-member fan-out (the profiling hook); a nil observer is exactly
// Retrain. Observation is passive and cannot change results or error
// selection.
//
// Parallelism is expert-granular: with cfg.Workers resolving above one,
// each member's update pass runs as one coarse unit on its own worker
// and the inner per-example gradient parallelism of every tunable
// expert is forced to sequential, so three concurrent retrains cannot
// multiply into per-example oversubscription. Experts hold disjoint
// state and each expert's pass is internally sequential either way, so
// the calibrated committee is bit-identical at any worker count.
func (c *Calibrator) RetrainObs(committee *qss.Committee, samples []classifier.Sample, o parallel.Observer) error {
	if len(samples) == 0 {
		return nil
	}
	experts := committee.Experts()
	w, _ := retrainGrain.Effective(c.cfg.Workers, len(experts))
	for _, e := range experts {
		if tuner, ok := e.(classifier.UpdateWorkerTuner); ok {
			if w > 1 {
				tuner.SetUpdateWorkers(1)
			} else {
				tuner.SetUpdateWorkers(0)
			}
		}
	}
	return parallel.ForErrGrainObs(c.cfg.Workers, len(experts), retrainGrain, o, func(m int) error {
		if err := experts[m].Update(samples); err != nil {
			return fmt.Errorf("mic: retrain %s: %w", experts[m].Name(), err)
		}
		return nil
	})
}

// Calibrate performs the full MIC step for one sensing cycle: weight
// update followed by retraining. Crowd offloading — replacing the AI's
// labels on the queried images — is the caller's responsibility because it
// touches the cycle's output assembly, not the models.
func (c *Calibrator) Calibrate(committee *qss.Committee, images []*imagery.Image, truths [][]float64) error {
	if _, err := c.UpdateWeights(committee, images, truths); err != nil {
		return err
	}
	samples, err := RetrainSamples(images, truths)
	if err != nil {
		return err
	}
	return c.Retrain(committee, samples)
}
