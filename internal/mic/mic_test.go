package mic

import (
	"math"
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
	"github.com/crowdlearn/crowdlearn/internal/qss"
)

// fixedExpert always predicts the same distribution and records Update
// calls.
type fixedExpert struct {
	name    string
	dist    []float64
	updates int
}

func (f *fixedExpert) Name() string                     { return f.name }
func (f *fixedExpert) Train([]classifier.Sample) error  { return nil }
func (f *fixedExpert) Update([]classifier.Sample) error { f.updates++; return nil }
func (f *fixedExpert) Predict(*imagery.Image) []float64 { return mathx.Clone(f.dist) }
func (f *fixedExpert) PerImageCost() time.Duration      { return time.Second }
func (f *fixedExpert) Clone() classifier.Expert         { cp := *f; return &cp }

var _ classifier.Expert = (*fixedExpert)(nil)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{LearningRate: 0}); err == nil {
		t.Error("zero learning rate must be rejected")
	}
	if _, err := New(Config{LearningRate: -3}); err == nil {
		t.Error("negative learning rate must be rejected")
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func twoExpertCommittee(t *testing.T, good, bad []float64) (*qss.Committee, *fixedExpert, *fixedExpert) {
	t.Helper()
	g := &fixedExpert{name: "good", dist: good}
	b := &fixedExpert{name: "bad", dist: bad}
	c, err := qss.NewCommittee(g, b)
	if err != nil {
		t.Fatal(err)
	}
	return c, g, b
}

func TestExpertLossesOrdering(t *testing.T) {
	cal, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Truth says class 0; "good" agrees, "bad" is confidently wrong.
	c, _, _ := twoExpertCommittee(t, []float64{0.9, 0.05, 0.05}, []float64{0.05, 0.9, 0.05})
	images := []*imagery.Image{{}, {}}
	truths := [][]float64{{0.9, 0.05, 0.05}, {0.85, 0.1, 0.05}}
	losses, err := cal.ExpertLosses(c, images, truths)
	if err != nil {
		t.Fatal(err)
	}
	if losses[0] >= losses[1] {
		t.Errorf("agreeing expert loss %.3f must be below disagreeing %.3f", losses[0], losses[1])
	}
	for _, l := range losses {
		if l < 0 || l >= 1 {
			t.Errorf("loss %v outside [0, 1)", l)
		}
	}
}

func TestExpertLossesValidation(t *testing.T) {
	cal, _ := New(DefaultConfig())
	c, _, _ := twoExpertCommittee(t, []float64{1, 0, 0}, []float64{0, 1, 0})
	if _, err := cal.ExpertLosses(c, []*imagery.Image{{}}, nil); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := cal.ExpertLosses(c, []*imagery.Image{{}}, [][]float64{{1, 0}}); err == nil {
		t.Error("bad truth dimension must error")
	}
	losses, err := cal.ExpertLosses(c, nil, nil)
	if err != nil || losses[0] != 0 {
		t.Error("empty query set must give zero losses")
	}
}

func TestUpdateWeightsShiftsTowardAccurateExpert(t *testing.T) {
	cal, _ := New(DefaultConfig())
	c, _, _ := twoExpertCommittee(t, []float64{0.9, 0.05, 0.05}, []float64{0.05, 0.9, 0.05})
	images := []*imagery.Image{{}, {}, {}}
	truths := [][]float64{{0.9, 0.05, 0.05}, {0.9, 0.05, 0.05}, {0.8, 0.15, 0.05}}
	w, err := cal.UpdateWeights(c, images, truths)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] <= w[1] {
		t.Errorf("accurate expert weight %.3f must exceed inaccurate %.3f", w[0], w[1])
	}
	if math.Abs(mathx.Sum(w)-1) > 1e-9 {
		t.Errorf("weights must renormalise, sum %v", mathx.Sum(w))
	}
	// Repeated updates compound: weight gap must widen.
	for i := 0; i < 5; i++ {
		if w, err = cal.UpdateWeights(c, images, truths); err != nil {
			t.Fatal(err)
		}
	}
	if w[0] < 0.9 {
		t.Errorf("after repeated feedback the accurate expert should dominate, got %v", w)
	}
}

func TestUpdateWeightsEmptyQuerySetNoop(t *testing.T) {
	cal, _ := New(DefaultConfig())
	c, _, _ := twoExpertCommittee(t, []float64{1, 0, 0}, []float64{0, 1, 0})
	before := c.Weights()
	after, err := cal.UpdateWeights(c, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("empty query set must leave weights untouched")
		}
	}
}

func TestRetrainSamples(t *testing.T) {
	images := []*imagery.Image{{ID: 1}, {ID: 2}}
	truths := [][]float64{{2, 1, 1}, {0, 0, 1}} // first needs normalising
	samples, err := RetrainSamples(images, truths)
	if err != nil {
		t.Fatal(err)
	}
	if samples[0].Image.ID != 1 {
		t.Error("sample image mismatch")
	}
	if math.Abs(samples[0].Target[0]-0.5) > 1e-9 {
		t.Errorf("target not normalised: %v", samples[0].Target)
	}
	if _, err := RetrainSamples(images, truths[:1]); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := RetrainSamples([]*imagery.Image{nil}, [][]float64{{1, 0, 0}}); err == nil {
		t.Error("nil image must error")
	}
	if _, err := RetrainSamples([]*imagery.Image{{}}, [][]float64{{1}}); err == nil {
		t.Error("bad truth dim must error")
	}
}

func TestRetrainCallsEveryExpert(t *testing.T) {
	cal, _ := New(DefaultConfig())
	c, g, b := twoExpertCommittee(t, []float64{1, 0, 0}, []float64{0, 1, 0})
	samples := []classifier.Sample{{Image: &imagery.Image{}, Target: []float64{1, 0, 0}}}
	if err := cal.Retrain(c, samples); err != nil {
		t.Fatal(err)
	}
	if g.updates != 1 || b.updates != 1 {
		t.Errorf("updates: good=%d bad=%d, want 1/1", g.updates, b.updates)
	}
	// Empty sample set is a no-op.
	if err := cal.Retrain(c, nil); err != nil {
		t.Fatal(err)
	}
	if g.updates != 1 {
		t.Error("empty retrain must not call Update")
	}
}

func TestCalibrateEndToEnd(t *testing.T) {
	cal, _ := New(DefaultConfig())
	c, g, b := twoExpertCommittee(t, []float64{0.9, 0.05, 0.05}, []float64{0.05, 0.9, 0.05})
	images := []*imagery.Image{{}, {}}
	truths := [][]float64{{0.9, 0.05, 0.05}, {0.9, 0.05, 0.05}}
	if err := cal.Calibrate(c, images, truths); err != nil {
		t.Fatal(err)
	}
	w := c.Weights()
	if w[0] <= w[1] {
		t.Errorf("calibrate must shift weight toward the accurate expert: %v", w)
	}
	if g.updates != 1 || b.updates != 1 {
		t.Errorf("calibrate must retrain both experts: %d/%d", g.updates, b.updates)
	}
}

// Integration: calibration on real trained experts over real crowd truths
// must raise committee accuracy on deceptive images via weight shifts and
// never crash across repeated cycles.
func TestCalibrateWithRealExperts(t *testing.T) {
	ds, err := imagery.Generate(imagery.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	committee, err := qss.NewCommittee(classifier.StandardCommittee(imagery.DefaultDims, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := committee.Train(classifier.SamplesFromImages(ds.Train)); err != nil {
		t.Fatal(err)
	}
	cal, _ := New(DefaultConfig())
	// Feed ground truth as "crowd truth" over several cycles.
	for cycle := 0; cycle < 3; cycle++ {
		batch := ds.Test[cycle*10 : (cycle+1)*10]
		truths := make([][]float64, len(batch))
		for i, im := range batch {
			truths[i] = mathx.OneHot(imagery.NumLabels, int(im.TrueLabel))
		}
		if err := cal.Calibrate(committee, batch, truths); err != nil {
			t.Fatal(err)
		}
	}
	w := committee.Weights()
	if math.Abs(mathx.Sum(w)-1) > 1e-9 {
		t.Errorf("weights must stay normalised: %v", w)
	}
	for _, x := range w {
		if x < 0 || x > 1 {
			t.Errorf("weight %v outside [0,1]", x)
		}
	}
}
