package experiments

import (
	"strings"
	"testing"
)

func TestStrategyComparison(t *testing.T) {
	env := testEnv(t)
	res, err := RunStrategyComparison(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d, want 4", len(res.Rows))
	}
	t.Log("\n" + res.String())
	for _, row := range res.Rows {
		if row.Accuracy < 0.75 || row.Accuracy > 1 {
			t.Errorf("%s accuracy %.3f implausible", row.Name, row.Accuracy)
		}
		// Every uncertainty score should over-select low-res images
		// relative to their 7% base rate.
		if row.LowResShare < 0.07 {
			t.Errorf("%s low-res query share %.3f at/below base rate", row.Name, row.LowResShare)
		}
	}
	if !strings.Contains(res.String(), "entropy") {
		t.Error("render missing strategy rows")
	}
}

func TestMultiSeedValidation(t *testing.T) {
	if _, err := RunMultiSeed(DefaultConfig(), nil); err == nil {
		t.Error("empty seed list must be rejected")
	}
}

func TestMultiSeedTwoSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed campaign set is expensive")
	}
	res, err := RunMultiSeed(DefaultConfig(), []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if len(res.Scheme) != len(SchemeNames) {
		t.Fatalf("schemes %d, want %d", len(res.Scheme), len(SchemeNames))
	}
	byName := make(map[string]int)
	for i, name := range res.Scheme {
		byName[name] = i
	}
	// The headline must hold in the mean across seeds.
	cl := byName["crowdlearn"]
	for _, baseline := range []string{"vgg16", "bovw", "ddm", "ensemble"} {
		if res.MeanF1[cl] <= res.MeanF1[byName[baseline]] {
			t.Errorf("crowdlearn mean F1 %.3f must beat %s %.3f",
				res.MeanF1[cl], baseline, res.MeanF1[byName[baseline]])
		}
	}
	for i := range res.Scheme {
		if res.StdF1[i] < 0 || res.StdF1[i] > 0.2 {
			t.Errorf("%s F1 std %.3f implausible", res.Scheme[i], res.StdF1[i])
		}
	}
}

func TestRunReport(t *testing.T) {
	env := testEnv(t)
	report, err := RunReport(env)
	if err != nil {
		t.Fatal(err)
	}
	md := report.String()
	for _, want := range []string{
		"# CrowdLearn reproduction report",
		"## Table I", "## Table II", "## Table III",
		"## Figure 8", "## Figures 10–11",
		"| crowdlearn |", "| voting |",
		"0.877", // paper Table II accuracy appears as a reference
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(md, "%!") {
		t.Error("report contains a formatting error")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4})
	if m != 3 || s != 1 {
		t.Errorf("meanStd = %v, %v; want 3, 1", m, s)
	}
	m, s = meanStd([]float64{5})
	if m != 5 || s != 0 {
		t.Errorf("single sample meanStd = %v, %v", m, s)
	}
}
