// Package experiments contains one runner per table and figure of the
// paper's evaluation (Section V), plus the ablation studies called out in
// DESIGN.md. Each runner returns a typed result that renders the same
// rows/series the paper reports; the CLI (cmd/crowdlearn) and the
// benchmark harness (bench_test.go) both drive these runners.
package experiments

import (
	"fmt"

	"github.com/crowdlearn/crowdlearn/internal/bandit"
	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
)

// Config parameterises the whole evaluation environment.
type Config struct {
	// Seed drives every stochastic component.
	Seed int64
	// Dataset configures the synthetic Ecuador-earthquake-shaped corpus.
	Dataset imagery.Config
	// Platform configures the simulated MTurk.
	Platform crowd.Config
	// Pilot configures the pilot study.
	Pilot crowd.PilotConfig
	// Campaign configures the 40x10 sensing-cycle protocol.
	Campaign core.CampaignConfig
	// QuerySize is the per-cycle crowd query count for hybrid schemes
	// (paper: 5).
	QuerySize int
	// BudgetDollars is the crowdsourcing budget per scheme (paper default
	// experiments run at 20 USD: 10 cents/query average).
	BudgetDollars float64
	// Workers caps the goroutine fan-out of the evaluation: campaign arms
	// and fault scenarios run concurrently, and the value flows into every
	// assembled system as core.Config.Workers (0 = GOMAXPROCS,
	// 1 = sequential). Every result is bit-identical at any value.
	Workers int
}

// DefaultConfig reproduces the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		Dataset:       imagery.DefaultConfig(),
		Platform:      crowd.DefaultConfig(),
		Pilot:         crowd.DefaultPilotConfig(),
		Campaign:      core.DefaultCampaignConfig(),
		QuerySize:     5,
		BudgetDollars: 20,
	}
}

// Env is the shared laboratory: the dataset and the pilot study are
// expensive to build and identical across experiments, so they are
// constructed once and reused. Platforms are created fresh per scheme so
// no scheme perturbs another's random stream.
type Env struct {
	Cfg     Config
	Dataset *imagery.Dataset
	Pilot   *crowd.PilotData
}

// NewEnv generates the dataset and runs the pilot study.
func NewEnv(cfg Config) (*Env, error) {
	cfg.Dataset.Seed = cfg.Seed
	ds, err := imagery.Generate(cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("experiments: dataset: %w", err)
	}
	platform, err := crowd.NewPlatform(platformConfig(cfg))
	if err != nil {
		return nil, fmt.Errorf("experiments: platform: %w", err)
	}
	pilot, err := crowd.RunPilot(platform, ds.Train, cfg.Pilot)
	if err != nil {
		return nil, fmt.Errorf("experiments: pilot: %w", err)
	}
	return &Env{Cfg: cfg, Dataset: ds, Pilot: pilot}, nil
}

func platformConfig(cfg Config) crowd.Config {
	pc := cfg.Platform
	pc.Seed = cfg.Seed + 7
	return pc
}

// NewPlatform builds a fresh platform with the environment's
// configuration; every scheme under comparison gets its own.
func (e *Env) NewPlatform() *crowd.Platform {
	return crowd.MustNewPlatform(platformConfig(e.Cfg))
}

// banditConfig derives the IPD bandit configuration for a given query
// size and budget.
func (e *Env) banditConfig(querySize int, budget float64) bandit.Config {
	bc := bandit.DefaultConfig()
	bc.BudgetDollars = budget
	bc.TotalRounds = e.Cfg.Campaign.Cycles
	bc.QueriesPerRound = querySize
	if bc.QueriesPerRound < 1 {
		bc.QueriesPerRound = 1
	}
	bc.Seed = e.Cfg.Seed + 11
	return bc
}

// NewSystem assembles a bootstrapped CrowdLearn system with the
// environment's configured query size and budget — the one-call path for
// library users who want the paper's default deployment.
func (e *Env) NewSystem() (*core.CrowdLearn, error) {
	return e.newCrowdLearn(e.Cfg.QuerySize, e.Cfg.BudgetDollars, nil)
}

// NewSystemWith is NewSystem with a configuration hook applied before
// assembly — the injection point for observability (core.Config.Metrics,
// core.Config.Tracer) and other per-deployment overrides.
func (e *Env) NewSystemWith(mutate func(*core.Config)) (*core.CrowdLearn, error) {
	return e.newCrowdLearn(e.Cfg.QuerySize, e.Cfg.BudgetDollars, mutate)
}

// NewSystemOn is NewSystemWith against a caller-supplied crowd platform —
// the injection point for fault-wrapped platforms (internal/faults).
func (e *Env) NewSystemOn(platform core.CrowdPlatform, mutate func(*core.Config)) (*core.CrowdLearn, error) {
	return e.newCrowdLearnOn(platform, e.Cfg.QuerySize, e.Cfg.BudgetDollars, mutate)
}

// newCrowdLearn assembles a bootstrapped CrowdLearn scheme on a fresh
// platform.
func (e *Env) newCrowdLearn(querySize int, budget float64, mutate func(*core.Config)) (*core.CrowdLearn, error) {
	return e.newCrowdLearnOn(e.NewPlatform(), querySize, budget, mutate)
}

// newCrowdLearnOn assembles a bootstrapped CrowdLearn scheme on the given
// platform.
func (e *Env) newCrowdLearnOn(platform core.CrowdPlatform, querySize int, budget float64, mutate func(*core.Config)) (*core.CrowdLearn, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = e.Cfg.Seed
	cfg.Dims = e.Cfg.Dataset.Dims
	cfg.QuerySize = querySize
	cfg.Workers = e.Cfg.Workers
	cfg.Bandit = e.banditConfig(querySize, budget)
	if mutate != nil {
		mutate(&cfg)
	}
	cl, err := core.New(cfg, platform)
	if err != nil {
		return nil, err
	}
	if err := cl.Bootstrap(e.Dataset.Train, e.Pilot); err != nil {
		return nil, err
	}
	return cl, nil
}

// trainedExpert builds and trains one of the AI-only experts by name.
func (e *Env) trainedExpert(name string, seedOffset int64) (classifier.Expert, error) {
	opts := classifier.Options{Seed: e.Cfg.Seed + seedOffset, Workers: e.Cfg.Workers}
	dims := e.Cfg.Dataset.Dims
	var expert classifier.Expert
	switch name {
	case "vgg16":
		expert = classifier.NewVGG16(dims, opts)
	case "bovw":
		expert = classifier.NewBoVW(dims, opts)
	case "ddm":
		expert = classifier.NewDDM(dims, opts)
	case "ensemble":
		ens, err := classifier.NewEnsemble(classifier.StandardCommitteeWith(dims, e.Cfg.Seed+seedOffset,
			classifier.Options{Workers: e.Cfg.Workers})...)
		if err != nil {
			return nil, err
		}
		ens.SetWorkers(e.Cfg.Workers)
		expert = ens
	default:
		return nil, fmt.Errorf("experiments: unknown expert %q", name)
	}
	if err := expert.Train(classifier.SamplesFromImages(e.Dataset.Train)); err != nil {
		return nil, err
	}
	return expert, nil
}

// fixedMaxPolicy builds the paper's fixed-incentive baseline policy for
// the given query volume and budget.
func (e *Env) fixedMaxPolicy(querySize int, budget float64) (*bandit.Fixed, error) {
	return bandit.NewFixedMax(e.banditConfig(querySize, budget))
}
