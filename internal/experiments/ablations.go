package experiments

import (
	"fmt"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/bandit"
	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/cqc"
	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/eval"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/simclock"
	"github.com/crowdlearn/crowdlearn/internal/truth"
)

// AblationResult records the design-choice ablations of DESIGN.md §5.
// Each row removes one CrowdLearn design decision and reports the
// resulting end-to-end accuracy/F1 (and, where relevant, a targeted
// metric the ablated mechanism is responsible for).
type AblationResult struct {
	Rows []AblationRow
}

// AblationRow is one ablation outcome.
type AblationRow struct {
	Name     string
	Accuracy float64
	F1       float64
	// Note carries the targeted metric, e.g. fake-image recall.
	Note string
}

// RunAblations executes the MIC/QSS ablation battery: the full system,
// no-epsilon QSS, frozen expert weights, no retraining, no offloading.
func RunAblations(env *Env) (*AblationResult, error) {
	out := &AblationResult{}
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"full", nil},
		{"no-exploration (eps=0)", func(c *core.Config) { c.Epsilon = 0 }},
		{"frozen-weights", func(c *core.Config) { c.DisableWeightUpdate = true }},
		{"no-retraining", func(c *core.Config) { c.DisableRetraining = true }},
		{"no-offloading", func(c *core.Config) { c.DisableOffloading = true }},
	}
	for _, v := range variants {
		cl, err := env.newCrowdLearn(env.Cfg.QuerySize, env.Cfg.BudgetDollars, v.mutate)
		if err != nil {
			return nil, err
		}
		campaign, err := core.RunCampaign(cl, env.Dataset.Test, env.Cfg.Campaign)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", v.name, err)
		}
		m, err := eval.Compute(campaign.TrueLabels(), campaign.PredictedLabels())
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AblationRow{
			Name:     v.name,
			Accuracy: m.Accuracy,
			F1:       m.F1,
			Note:     fmt.Sprintf("fake recall %.2f", fakeRecall(campaign)),
		})
	}
	return out, nil
}

// fakeRecall measures accuracy restricted to fake images — the targeted
// metric for the epsilon-greedy ablation, since pure uncertainty sampling
// never queries confidently-misjudged fakes.
func fakeRecall(res *core.CampaignResult) float64 {
	correct, total := 0, 0
	for _, rec := range res.Records {
		labels := rec.Output.Labels()
		for i, im := range rec.Input.Images {
			if im.Failure != imagery.FailureFake {
				continue
			}
			total++
			if labels[i] == im.TrueLabel {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// String renders the ablation table.
func (r *AblationResult) String() string {
	t := &textTable{
		title:  "Ablations: CrowdLearn design choices (DESIGN.md §5)",
		header: []string{"variant", "accuracy", "f1", "note"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Name, f3(row.Accuracy), f3(row.F1), row.Note)
	}
	return t.String()
}

// CQCAblationResult compares full CQC against the labels-only variant on
// a deception-heavy evaluation batch.
type CQCAblationResult struct {
	FullAccuracy       float64
	LabelsOnlyAccuracy float64
	VotingAccuracy     float64
}

// RunCQCAblation quantifies the questionnaire features' contribution.
func RunCQCAblation(env *Env) (*CQCAblationResult, error) {
	full := cqc.New(cqc.DefaultConfig())
	if err := full.Train(env.Pilot.AllResults()); err != nil {
		return nil, err
	}
	ablatedCfg := cqc.DefaultConfig()
	ablatedCfg.UseQuestionnaire = false
	ablated := cqc.New(ablatedCfg)
	if err := ablated.Train(env.Pilot.AllResults()); err != nil {
		return nil, err
	}

	var tricky []*imagery.Image
	for _, im := range env.Dataset.Test {
		if im.Failure.Deceptive() {
			tricky = append(tricky, im)
		}
	}
	platform := env.NewPlatform()
	queries := make([]crowd.Query, len(tricky))
	for i, im := range tricky {
		queries[i] = crowd.Query{Image: im, Incentive: 6}
	}
	results, err := platform.Submit(simclock.New(), crowd.Evening, queries)
	if err != nil {
		return nil, err
	}
	acc := func(agg truth.Aggregator) (float64, error) {
		dists, err := agg.Aggregate(results)
		if err != nil {
			return 0, err
		}
		correct := 0
		for i, d := range dists {
			if truth.Decide(d) == results[i].Query.Image.TrueLabel {
				correct++
			}
		}
		return float64(correct) / float64(len(results)), nil
	}
	res := &CQCAblationResult{}
	if res.FullAccuracy, err = acc(full); err != nil {
		return nil, err
	}
	if res.LabelsOnlyAccuracy, err = acc(ablated); err != nil {
		return nil, err
	}
	if res.VotingAccuracy, err = acc(truth.MajorityVoting{}); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the CQC ablation.
func (r *CQCAblationResult) String() string {
	t := &textTable{
		title:  "Ablation: CQC questionnaire features (deceptive-image batch)",
		header: []string{"variant", "accuracy"},
	}
	t.addRow("cqc (labels + questionnaire)", f3(r.FullAccuracy))
	t.addRow("cqc (labels only)", f3(r.LabelsOnlyAccuracy))
	t.addRow("majority voting", f3(r.VotingAccuracy))
	return t.String()
}

// BanditAblationResult compares the context-aware bandit against a
// context-blind one on per-context delay spread.
type BanditAblationResult struct {
	ContextAware []time.Duration
	ContextBlind []time.Duration
}

// RunBanditAblation quantifies the value of contextual awareness in IPD.
func RunBanditAblation(env *Env) (*BanditAblationResult, error) {
	aware, err := bandit.NewUCBALP(env.banditConfig(env.Cfg.QuerySize, env.Cfg.BudgetDollars))
	if err != nil {
		return nil, err
	}
	aware.WarmStart(env.Pilot)
	blind, err := bandit.NewContextBlind(env.banditConfig(env.Cfg.QuerySize, env.Cfg.BudgetDollars))
	if err != nil {
		return nil, err
	}
	res := &BanditAblationResult{}
	if res.ContextAware, err = runIncentiveCampaign(env, aware, env.Cfg.QuerySize); err != nil {
		return nil, err
	}
	if res.ContextBlind, err = runIncentiveCampaign(env, blind, env.Cfg.QuerySize); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the bandit ablation.
func (r *BanditAblationResult) String() string {
	t := &textTable{
		title:  "Ablation: context-aware vs context-blind incentive bandit (crowd delay s)",
		header: []string{"policy", "morning", "afternoon", "evening", "midnight"},
	}
	row := func(name string, delays []time.Duration) {
		cells := []string{name}
		for _, d := range delays {
			cells = append(cells, seconds(d))
		}
		t.addRow(cells...)
	}
	row("context-aware", r.ContextAware)
	row("context-blind", r.ContextBlind)
	return t.String()
}
