package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/faults"
)

// smokeEnv builds a reduced environment (10 cycles) so the fault smoke
// case stays fast enough for `make faults`.
func smokeEnv(t *testing.T) *Env {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Campaign.Cycles = 10
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestFaultsSmoke drives a reduced scenario grid end to end: campaigns
// complete under heavy abandonment plus an outage, budget accounting
// balances (asserted inside runFaults), and the table renders.
func TestFaultsSmoke(t *testing.T) {
	env := smokeEnv(t)
	outage := faults.Config{
		Seed:           env.Cfg.Seed + 17,
		AbandonRate:    0.30,
		DelaySpikeRate: 0.10,
		DuplicateRate:  0.05,
		StaleRate:      0.05,
		OutageStart:    30 * time.Minute,
		OutageDuration: 30 * time.Minute,
	}
	res, err := runFaults(env, []faultScenario{
		{name: "clean", cfg: faults.Config{}},
		{name: "abandon-30%+outage", cfg: outage},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 2 {
		t.Fatalf("scenarios %d, want 2", len(res.Scenarios))
	}
	for _, mode := range res.Modes {
		if len(res.F1[mode]) != 2 {
			t.Fatalf("mode %s has %d F1 points, want 2", mode, len(res.F1[mode]))
		}
		for i, f1 := range res.F1[mode] {
			if f1 <= 0 || f1 > 1 {
				t.Fatalf("mode %s scenario %s F1 %v out of range", mode, res.Scenarios[i], f1)
			}
		}
	}
	table := res.String()
	for _, want := range []string{"clean", "abandon-30%+outage", "f1(rec)", "requeries"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

// TestFaultsRecoveryBeatsNoRecovery is the acceptance criterion: under
// 30% HIT abandonment plus a mid-campaign outage, a full 40-cycle
// campaign completes in both arms and the recovery arm wins on F1.
func TestFaultsRecoveryBeatsNoRecovery(t *testing.T) {
	env := testEnv(t)
	scenarios := defaultFaultScenarios(env.Cfg.Seed)
	heavy := scenarios[len(scenarios)-1]
	if !strings.Contains(heavy.name, "outage") {
		t.Fatalf("expected the heaviest scenario to include an outage, got %q", heavy.name)
	}
	res, err := runFaults(env, []faultScenario{heavy})
	if err != nil {
		t.Fatal(err)
	}
	rec, none := res.F1[faultsModeRecovery][0], res.F1[faultsModeNoRecovery][0]
	if rec <= none {
		t.Fatalf("recovery F1 %.4f does not beat no-recovery F1 %.4f", rec, none)
	}
	if res.Requeries[0] == 0 {
		t.Fatal("recovery arm performed no requeries under 30% abandonment")
	}
	if res.DegradedImages[faultsModeNoRecovery][0] == 0 {
		t.Fatal("no-recovery arm degraded no images despite the outage")
	}
}
