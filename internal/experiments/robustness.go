package experiments

import (
	"fmt"

	"github.com/crowdlearn/crowdlearn/internal/cqc"
	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/simclock"
	"github.com/crowdlearn/crowdlearn/internal/truth"
)

// SpamRobustnessResult measures how each quality-control scheme degrades
// as a growing fraction of the worker population turns into spammers
// (uniform-noise labels, inverted questionnaires). This failure-injection
// study extends the paper: Table I assumes merely unreliable workers, but
// real platforms see coordinated spam.
type SpamRobustnessResult struct {
	Fractions []float64
	Schemes   []string
	// Accuracy[scheme][fraction index].
	Accuracy map[string][]float64
}

// spamFractions is the injected adversarial share grid.
var spamFractions = []float64{0, 0.1, 0.2, 0.3, 0.4}

// spamEvalQueries is the evaluation volume per fraction.
const spamEvalQueries = 200

// RunSpamRobustness trains every aggregator on a pilot run against a
// polluted platform (matching deployment: the requester cannot get a
// clean crowd to train on either) and evaluates on held-out queries from
// the same platform.
func RunSpamRobustness(env *Env) (*SpamRobustnessResult, error) {
	res := &SpamRobustnessResult{
		Fractions: spamFractions,
		Schemes:   []string{"cqc", "voting", "td-em", "filtering"},
		Accuracy:  make(map[string][]float64),
	}
	for _, s := range res.Schemes {
		res.Accuracy[s] = make([]float64, len(spamFractions))
	}

	for fi, fraction := range spamFractions {
		pcfg := platformConfig(env.Cfg)
		pcfg.AdversarialFraction = fraction
		platform, err := crowd.NewPlatform(pcfg)
		if err != nil {
			return nil, err
		}
		pilot, err := crowd.RunPilot(platform, env.Dataset.Train, env.Cfg.Pilot)
		if err != nil {
			return nil, fmt.Errorf("experiments: spam pilot at %.2f: %w", fraction, err)
		}

		quality := cqc.New(cqc.DefaultConfig())
		if err := quality.Train(pilot.AllResults()); err != nil {
			return nil, err
		}
		aggregators := []truth.Aggregator{
			quality,
			truth.MajorityVoting{},
			truth.NewTDEM(),
			truth.NewFiltering(),
		}
		// Stateful baselines digest the pilot history first.
		for _, agg := range aggregators[2:] {
			if _, err := agg.Aggregate(pilot.AllResults()); err != nil {
				return nil, err
			}
		}

		queries := make([]crowd.Query, spamEvalQueries)
		for i := range queries {
			queries[i] = crowd.Query{Image: env.Dataset.Test[i%len(env.Dataset.Test)], Incentive: 6}
		}
		results, err := platform.Submit(simclock.New(), crowd.Evening, queries)
		if err != nil {
			return nil, err
		}
		for _, agg := range aggregators {
			dists, err := agg.Aggregate(results)
			if err != nil {
				return nil, fmt.Errorf("experiments: spam %s at %.2f: %w", agg.Name(), fraction, err)
			}
			correct := 0
			for i, d := range dists {
				if truth.Decide(d) == results[i].Query.Image.TrueLabel {
					correct++
				}
			}
			name := agg.Name()
			if name == "cqc" || name == "cqc-labels-only" {
				name = "cqc"
			}
			res.Accuracy[name][fi] = float64(correct) / float64(len(results))
		}
	}
	return res, nil
}

// ChurnRobustnessResult measures quality-control accuracy under worker
// churn: identities turn over while population statistics stay fixed.
// Reputation-based schemes (TD-EM, Filtering) lose their accumulated
// per-worker evidence; CQC and plain voting are identity-free and should
// be unaffected — the flip side of the spam study, and the scenario the
// paper flags for Filtering ("workers new to the platform").
type ChurnRobustnessResult struct {
	ChurnRates []float64
	Schemes    []string
	// Accuracy[scheme][rate index].
	Accuracy map[string][]float64
}

// churnRates is the per-batch identity-turnover grid.
var churnRates = []float64{0, 0.2, 0.5}

// churnEvalBatches and churnBatchSize shape the sequential evaluation:
// reputation systems need a stream of batches for history to matter.
const (
	churnEvalBatches  = 12
	churnBatchSize    = 50
	churnEvalIncentve = crowd.Cents(6)
)

// RunChurnRobustness evaluates the aggregators over a stream of batches
// against platforms with increasing churn.
func RunChurnRobustness(env *Env) (*ChurnRobustnessResult, error) {
	res := &ChurnRobustnessResult{
		ChurnRates: churnRates,
		Schemes:    []string{"cqc", "voting", "td-em", "filtering"},
		Accuracy:   make(map[string][]float64),
	}
	for _, s := range res.Schemes {
		res.Accuracy[s] = make([]float64, len(churnRates))
	}
	for ri, rate := range churnRates {
		pcfg := platformConfig(env.Cfg)
		pcfg.ChurnRate = rate
		platform, err := crowd.NewPlatform(pcfg)
		if err != nil {
			return nil, err
		}
		pilot, err := crowd.RunPilot(platform, env.Dataset.Train, env.Cfg.Pilot)
		if err != nil {
			return nil, fmt.Errorf("experiments: churn pilot at %.2f: %w", rate, err)
		}
		quality := cqc.New(cqc.DefaultConfig())
		if err := quality.Train(pilot.AllResults()); err != nil {
			return nil, err
		}
		aggregators := []truth.Aggregator{
			quality,
			truth.MajorityVoting{},
			truth.NewTDEM(),
			truth.NewFiltering(),
		}
		for _, agg := range aggregators[2:] {
			if _, err := agg.Aggregate(pilot.AllResults()); err != nil {
				return nil, err
			}
		}
		correct := make(map[string]int)
		total := 0
		next := 0
		for batch := 0; batch < churnEvalBatches; batch++ {
			queries := make([]crowd.Query, churnBatchSize)
			for i := range queries {
				queries[i] = crowd.Query{Image: env.Dataset.Test[next%len(env.Dataset.Test)], Incentive: churnEvalIncentve}
				next++
			}
			results, err := platform.Submit(simclock.New(), crowd.Evening, queries)
			if err != nil {
				return nil, err
			}
			total += len(results)
			for _, agg := range aggregators {
				dists, err := agg.Aggregate(results)
				if err != nil {
					return nil, err
				}
				for i, d := range dists {
					if truth.Decide(d) == results[i].Query.Image.TrueLabel {
						correct[agg.Name()]++
					}
				}
			}
		}
		for _, agg := range aggregators {
			name := agg.Name()
			res.Accuracy[name][ri] = float64(correct[name]) / float64(total)
		}
	}
	return res, nil
}

// String renders the churn table.
func (r *ChurnRobustnessResult) String() string {
	t := &textTable{
		title:  "Failure injection: label accuracy vs worker churn (per-batch turnover)",
		header: []string{"scheme"},
	}
	for _, rate := range r.ChurnRates {
		t.header = append(t.header, fmt.Sprintf("%.0f%%", rate*100))
	}
	for _, s := range r.Schemes {
		row := []string{s}
		for _, a := range r.Accuracy[s] {
			row = append(row, f3(a))
		}
		t.addRow(row...)
	}
	return t.String()
}

// String renders the robustness table.
func (r *SpamRobustnessResult) String() string {
	t := &textTable{
		title:  "Failure injection: label accuracy vs spammer fraction",
		header: []string{"scheme"},
	}
	for _, f := range r.Fractions {
		t.header = append(t.header, fmt.Sprintf("%.0f%%", f*100))
	}
	for _, s := range r.Schemes {
		row := []string{s}
		for _, a := range r.Accuracy[s] {
			row = append(row, f3(a))
		}
		t.addRow(row...)
	}
	return t.String()
}
