package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/crowd"
)

var (
	envOnce   sync.Once
	sharedEnv *Env
	envErr    error
)

// testEnv builds the (expensive) shared environment once per test binary.
func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		sharedEnv, envErr = NewEnv(DefaultConfig())
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return sharedEnv
}

func TestFig5Shape(t *testing.T) {
	env := testEnv(t)
	res, err := RunFig5(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incentives) != 7 {
		t.Fatalf("incentive levels %d, want 7", len(res.Incentives))
	}
	// Paper shape: morning 1c delay far above morning 20c; evening
	// mid-range roughly flat.
	m := res.Delay[crowd.Morning]
	if m[0] < m[len(m)-1]*3/2 {
		t.Errorf("morning delay should fall with incentive: %v", m)
	}
	e := res.Delay[crowd.Evening]
	mid := e[2:6] // 4c..10c
	lo, hi := mid[0], mid[0]
	for _, d := range mid {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if float64(hi)/float64(lo) > 1.35 {
		t.Errorf("evening mid-range should be nearly flat: %v", e)
	}
	if !strings.Contains(res.String(), "Figure 5") {
		t.Error("render missing title")
	}
}

func TestFig6Shape(t *testing.T) {
	env := testEnv(t)
	res, err := RunFig6(env)
	if err != nil {
		t.Fatal(err)
	}
	// 1c quality clearly below the plateau; plateau flat within noise.
	if res.Quality[0] >= res.Quality[2] {
		t.Errorf("1c quality %.3f should be below 4c %.3f", res.Quality[0], res.Quality[2])
	}
	for i := 2; i < len(res.Quality)-1; i++ {
		if diff := res.Quality[i+1] - res.Quality[i]; diff > 0.08 || diff < -0.08 {
			t.Errorf("quality should plateau after 4c: %v", res.Quality)
		}
	}
	if len(res.PValues) != len(res.Incentives)-1 {
		t.Fatalf("p-values %d, want %d", len(res.PValues), len(res.Incentives)-1)
	}
	// Mid-range adjacent levels should not be significantly different —
	// the paper's central claim about incentive vs quality.
	insignificant := 0
	for _, p := range res.PValues[2:5] {
		if p > 0.05 {
			insignificant++
		}
	}
	if insignificant == 0 {
		t.Errorf("at least one mid-range quality step should be insignificant: %v", res.PValues)
	}
	if !strings.Contains(res.String(), "Figure 6") {
		t.Error("render missing title")
	}
}

func TestTable1Shape(t *testing.T) {
	env := testEnv(t)
	res, err := RunTable1(env)
	if err != nil {
		t.Fatal(err)
	}
	cqcAcc := res.Overall("cqc")
	votingAcc := res.Overall("voting")
	t.Logf("table1 overall: cqc=%.3f voting=%.3f tdem=%.3f filtering=%.3f",
		cqcAcc, votingAcc, res.Overall("td-em"), res.Overall("filtering"))
	if cqcAcc <= votingAcc {
		t.Errorf("CQC (%.3f) must beat voting (%.3f) — Table I headline", cqcAcc, votingAcc)
	}
	if cqcAcc < 0.85 {
		t.Errorf("CQC overall %.3f below the paper's ~0.935 neighbourhood", cqcAcc)
	}
	if votingAcc < 0.70 || votingAcc > 0.95 {
		t.Errorf("voting overall %.3f outside the plausible band around the paper's 0.8425", votingAcc)
	}
	for _, s := range res.Schemes {
		for _, a := range res.Accuracy[s] {
			if a < 0.5 || a > 1 {
				t.Errorf("%s accuracy %v implausible", s, a)
			}
		}
	}
	if !strings.Contains(res.String(), "Table I") {
		t.Error("render missing title")
	}
}

func TestCampaignSetAndDerivedArtefacts(t *testing.T) {
	env := testEnv(t)
	set, err := RunCampaignSet(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Results) != len(SchemeNames) {
		t.Fatalf("campaign set has %d schemes, want %d", len(set.Results), len(SchemeNames))
	}

	table2, err := set.Table2()
	if err != nil {
		t.Fatal(err)
	}
	m := table2.Metrics
	t.Logf("table2 F1: crowdlearn=%.3f vgg16=%.3f bovw=%.3f ddm=%.3f ensemble=%.3f para=%.3f al=%.3f",
		m["crowdlearn"].F1, m["vgg16"].F1, m["bovw"].F1, m["ddm"].F1,
		m["ensemble"].F1, m["hybrid-para"].F1, m["hybrid-al"].F1)

	// Table II headline orderings.
	if m["crowdlearn"].F1 <= m["ensemble"].F1 {
		t.Errorf("crowdlearn F1 %.3f must beat ensemble %.3f", m["crowdlearn"].F1, m["ensemble"].F1)
	}
	if m["crowdlearn"].F1 <= m["hybrid-al"].F1 {
		t.Errorf("crowdlearn F1 %.3f must beat hybrid-al %.3f", m["crowdlearn"].F1, m["hybrid-al"].F1)
	}
	if m["crowdlearn"].F1 <= m["hybrid-para"].F1 {
		t.Errorf("crowdlearn F1 %.3f must beat hybrid-para %.3f", m["crowdlearn"].F1, m["hybrid-para"].F1)
	}
	if m["bovw"].F1 >= m["ddm"].F1 {
		t.Errorf("bovw F1 %.3f should be the weakest AI; ddm %.3f", m["bovw"].F1, m["ddm"].F1)
	}
	if m["crowdlearn"].Accuracy < 0.80 {
		t.Errorf("crowdlearn accuracy %.3f below the paper's ~0.877 neighbourhood", m["crowdlearn"].Accuracy)
	}
	if !strings.Contains(table2.String(), "Table II") {
		t.Error("table2 render missing title")
	}

	// Figure 7: CrowdLearn's AUC should top the AI-only baselines.
	fig7, err := set.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"vgg16", "bovw"} {
		if fig7.AUC["crowdlearn"] <= fig7.AUC[name] {
			t.Errorf("crowdlearn AUC %.3f must beat %s %.3f", fig7.AUC["crowdlearn"], name, fig7.AUC[name])
		}
	}
	for name, auc := range fig7.AUC {
		if auc < 0.5 || auc > 1 {
			t.Errorf("%s AUC %v implausible", name, auc)
		}
	}
	if !strings.Contains(fig7.String(), "Figure 7") {
		t.Error("fig7 render missing title")
	}

	// Table III: algorithm-delay ordering and crowd-delay advantage.
	table3 := set.Table3()
	ad := table3.AlgorithmDelay
	if !(ad["bovw"] < ad["vgg16"] && ad["vgg16"] < ad["ddm"] && ad["ddm"] < ad["crowdlearn"]) {
		t.Errorf("algorithm delay ordering wrong: %v", ad)
	}
	if ad["crowdlearn"] >= ad["ensemble"] {
		t.Errorf("crowdlearn algorithm delay %v should undercut ensemble %v (parallel committee)",
			ad["crowdlearn"], ad["ensemble"])
	}
	cd := table3.CrowdDelay
	t.Logf("table3 crowd delay: crowdlearn=%v para=%v al=%v", cd["crowdlearn"], cd["hybrid-para"], cd["hybrid-al"])
	if cd["crowdlearn"] >= cd["hybrid-para"] || cd["crowdlearn"] >= cd["hybrid-al"] {
		t.Errorf("crowdlearn crowd delay %v must undercut fixed-incentive hybrids (%v, %v)",
			cd["crowdlearn"], cd["hybrid-para"], cd["hybrid-al"])
	}
	if cd["vgg16"] != 0 {
		t.Error("AI-only schemes must have zero crowd delay")
	}
	if !strings.Contains(table3.String(), "Table III") {
		t.Error("table3 render missing title")
	}
}

func TestFig8Shape(t *testing.T) {
	env := testEnv(t)
	res, err := RunFig8(env)
	if err != nil {
		t.Fatal(err)
	}
	ipd := res.Delay["ipd (crowdlearn)"]
	fixed := res.Delay["fixed"]
	random := res.Delay["random"]
	t.Logf("fig8 ipd=%v fixed=%v random=%v", ipd, fixed, random)

	mean := func(ds []time.Duration) time.Duration {
		var total time.Duration
		n := 0
		for _, d := range ds {
			if d > 0 {
				total += d
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return total / time.Duration(n)
	}
	if mean(ipd) >= mean(fixed) {
		t.Errorf("IPD mean delay %v must undercut fixed %v", mean(ipd), mean(fixed))
	}
	if mean(ipd) >= mean(random) {
		t.Errorf("IPD mean delay %v must undercut random %v", mean(ipd), mean(random))
	}
	if !strings.Contains(res.String(), "Figure 8") {
		t.Error("render missing title")
	}
}

func TestFig9Shape(t *testing.T) {
	env := testEnv(t)
	res, err := RunFig9(env)
	if err != nil {
		t.Fatal(err)
	}
	cl := res.F1["crowdlearn"]
	t.Logf("fig9 crowdlearn=%v al=%v para=%v ens=%.3f", cl, res.F1["hybrid-al"], res.F1["hybrid-para"], res.EnsembleF1)

	// At 0% CrowdLearn degenerates to its AI committee: close to the
	// ensemble reference.
	if diff := cl[0] - res.EnsembleF1; diff > 0.08 || diff < -0.08 {
		t.Errorf("crowdlearn at 0%% (%.3f) should be near ensemble (%.3f)", cl[0], res.EnsembleF1)
	}
	// Performance grows with query fraction: 100% clearly above 0%.
	if cl[len(cl)-1] <= cl[0] {
		t.Errorf("crowdlearn at 100%% (%.3f) must beat 0%% (%.3f)", cl[len(cl)-1], cl[0])
	}
	// At 100% CrowdLearn (CQC quality control) beats the hybrids that use
	// majority voting.
	last := len(res.Fractions) - 1
	if cl[last] <= res.F1["hybrid-para"][last] {
		t.Errorf("crowdlearn at 100%% (%.3f) must beat hybrid-para (%.3f)", cl[last], res.F1["hybrid-para"][last])
	}
	if !strings.Contains(res.String(), "Figure 9") {
		t.Error("render missing title")
	}
}

func TestBudgetSweepShape(t *testing.T) {
	env := testEnv(t)
	res, err := RunBudgetSweep(env)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fig10/11 F1=%v delay=%v", res.F1, res.CrowdDelay)
	// F1 is lower at the 2 USD point than at 20+ USD, and plateaus: the
	// spread across the 8..40 USD points stays small.
	if res.F1[0] >= res.F1[5] {
		t.Errorf("2 USD F1 %.3f should trail 20 USD %.3f", res.F1[0], res.F1[5])
	}
	lo, hi := res.F1[3], res.F1[3]
	for _, f := range res.F1[3:] {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi-lo > 0.06 {
		t.Errorf("F1 should plateau above 8 USD: %v", res.F1[3:])
	}
	// Delay: the 2 USD point is the slowest or near-slowest.
	for _, d := range res.CrowdDelay[3:] {
		if res.CrowdDelay[0] < d {
			t.Errorf("2 USD delay %v should not undercut richer budgets %v", res.CrowdDelay[0], res.CrowdDelay[3:])
			break
		}
	}
	if !strings.Contains(res.String(), "Figures 10-11") {
		t.Error("render missing title")
	}
}

func TestAblations(t *testing.T) {
	env := testEnv(t)
	res, err := RunAblations(env)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]AblationRow, len(res.Rows))
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	full := byName["full"]
	t.Log("\n" + res.String())
	if full.F1 < byName["no-offloading"].F1 {
		t.Errorf("offloading must help: full %.3f vs ablated %.3f", full.F1, byName["no-offloading"].F1)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("ablation rows %d, want 5", len(res.Rows))
	}
	if !strings.Contains(res.String(), "Ablations") {
		t.Error("render missing title")
	}
}

func TestCQCAblation(t *testing.T) {
	env := testEnv(t)
	res, err := RunCQCAblation(env)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cqc ablation: full=%.3f labels-only=%.3f voting=%.3f",
		res.FullAccuracy, res.LabelsOnlyAccuracy, res.VotingAccuracy)
	if res.FullAccuracy < res.VotingAccuracy {
		t.Errorf("full CQC (%.3f) must beat voting (%.3f) on deceptive images", res.FullAccuracy, res.VotingAccuracy)
	}
	if !strings.Contains(res.String(), "questionnaire") {
		t.Error("render missing title")
	}
}

func TestBanditAblation(t *testing.T) {
	env := testEnv(t)
	res, err := RunBanditAblation(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ContextAware) != crowd.NumContexts || len(res.ContextBlind) != crowd.NumContexts {
		t.Fatal("ablation must cover all contexts")
	}
	if !strings.Contains(res.String(), "context-aware") {
		t.Error("render missing rows")
	}
}

func TestEnvRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dataset.NumImages = 0
	if _, err := NewEnv(cfg); err == nil {
		t.Error("invalid dataset config must be rejected")
	}
}

func TestCampaignContextHelper(t *testing.T) {
	if campaignContext(0) != crowd.Morning || campaignContext(3) != crowd.Midnight {
		t.Error("campaignContext schedule wrong")
	}
	if campaignContext(5) != crowd.Afternoon {
		t.Error("round-robin schedule wrong")
	}
}

func TestTrainedExpertUnknown(t *testing.T) {
	env := testEnv(t)
	if _, err := env.trainedExpert("alexnet", 0); err == nil {
		t.Error("unknown expert name must be rejected")
	}
}

func TestDefaultCampaignFitsDataset(t *testing.T) {
	env := testEnv(t)
	if err := env.Cfg.Campaign.Validate(len(env.Dataset.Test)); err != nil {
		t.Errorf("default campaign must fit the default dataset: %v", err)
	}
}
