package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestTextTableAlignment(t *testing.T) {
	tbl := &textTable{
		title:  "T",
		header: []string{"name", "value"},
	}
	tbl.addRow("short", "1")
	tbl.addRow("a-much-longer-name", "22")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "T" {
		t.Errorf("title line %q", lines[0])
	}
	// Header, separator and rows must all be equally wide.
	width := len(lines[1])
	for i, line := range lines[1:] {
		if len(strings.TrimRight(line, " ")) > width {
			t.Errorf("line %d wider than header: %q", i, line)
		}
	}
	if !strings.HasPrefix(lines[2], "----") {
		t.Errorf("separator line %q", lines[2])
	}
	if !strings.Contains(out, "a-much-longer-name") {
		t.Error("row content missing")
	}
	// Columns align: "value" column of row 1 starts at the same offset as
	// the header's.
	headerIdx := strings.Index(lines[1], "value")
	rowIdx := strings.Index(lines[3], "1")
	if headerIdx != rowIdx {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", headerIdx, rowIdx, out)
	}
}

func TestTextTableNoTitle(t *testing.T) {
	tbl := &textTable{header: []string{"a"}}
	tbl.addRow("x")
	out := tbl.String()
	if strings.HasPrefix(out, "\n") {
		t.Error("no-title table must not start with a blank line")
	}
	if !strings.HasPrefix(out, "a") {
		t.Errorf("output %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if f3(0.12345) != "0.123" {
		t.Errorf("f3 = %q", f3(0.12345))
	}
	if f2(1.005) == "" {
		t.Error("f2 empty")
	}
	if got := seconds(90 * time.Second); got != "90.00" {
		t.Errorf("seconds = %q", got)
	}
}
