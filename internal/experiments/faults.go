package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/eval"
	"github.com/crowdlearn/crowdlearn/internal/faults"
	"github.com/crowdlearn/crowdlearn/internal/parallel"
)

// FaultsResult compares CrowdLearn with and without the recovery policy
// (core.RecoveryConfig) across crowd-failure scenarios injected by
// internal/faults: growing HIT abandonment plus delay spikes, and a
// mid-campaign platform outage on top. This study extends the paper —
// Section V assumes every HIT is answered — and quantifies what the
// deadline/requery/degradation machinery buys when it is not.
type FaultsResult struct {
	// Scenarios names the injected failure mixes, mildest first.
	Scenarios []string
	// Modes are the recovery arms ("recovery", "no-recovery").
	Modes []string
	// F1 is the end-of-campaign macro F1 per mode per scenario.
	F1 map[string][]float64
	// DelaySeconds is the mean per-cycle crowd delay per mode per
	// scenario.
	DelaySeconds map[string][]float64
	// SpentDollars is the net campaign spend per mode per scenario.
	SpentDollars map[string][]float64
	// DegradedImages counts images that fell back to AI labels per mode
	// per scenario.
	DegradedImages map[string][]int
	// Requeries counts HIT reposts per scenario (recovery arm only; the
	// no-recovery arm never reposts).
	Requeries []int
	// RefundedDollars totals refunds per scenario (recovery arm only).
	RefundedDollars []float64
}

// Mode names of the two arms.
const (
	faultsModeRecovery   = "recovery"
	faultsModeNoRecovery = "no-recovery"
)

// faultScenario is one injected failure mix.
type faultScenario struct {
	name string
	cfg  faults.Config
}

// defaultFaultScenarios is the published grid: clean control, moderate
// and heavy abandonment (with delay spikes, duplicates and stale replays
// riding along), and heavy abandonment plus a one-hour mid-campaign
// outage.
func defaultFaultScenarios(seed int64) []faultScenario {
	base := func(abandon float64) faults.Config {
		return faults.Config{
			Seed:           seed + 17,
			AbandonRate:    abandon,
			DelaySpikeRate: 0.10,
			DuplicateRate:  0.05,
			StaleRate:      0.05,
		}
	}
	outage := base(0.30)
	outage.OutageStart = 90 * time.Minute
	outage.OutageDuration = time.Hour
	return []faultScenario{
		{name: "clean", cfg: faults.Config{}},
		{name: "abandon-15%", cfg: base(0.15)},
		{name: "abandon-30%", cfg: base(0.30)},
		{name: "abandon-30%+outage", cfg: outage},
	}
}

// runFaultArm runs one full campaign against a fault-injected platform.
// It returns the campaign alongside the system and injector so callers
// can audit budget conservation.
func runFaultArm(env *Env, fcfg faults.Config, recovery bool) (*core.CampaignResult, *core.CrowdLearn, *faults.Injector, error) {
	inj, err := faults.New(env.NewPlatform(), fcfg)
	if err != nil {
		return nil, nil, nil, err
	}
	sys, err := env.NewSystemOn(inj, func(c *core.Config) {
		if recovery {
			c.Recovery = core.DefaultRecoveryConfig()
		}
	})
	if err != nil {
		return nil, nil, nil, err
	}
	campaign, err := core.RunCampaign(sys, env.Dataset.Test, env.Cfg.Campaign)
	if err != nil {
		return nil, nil, nil, err
	}
	return campaign, sys, inj, nil
}

// auditFaultArm checks the budget conservation the recovery accounting
// promises: spent + remaining == total on the policy, the per-cycle spend
// and refund flows summing to the policy's totals, and (recovery arm) the
// policy's net spend matching what the platform actually paid out.
func auditFaultArm(campaign *core.CampaignResult, sys *core.CrowdLearn, inj *faults.Injector, recovery bool) error {
	const eps = 1e-6
	pol := sys.Policy()
	if d := math.Abs(pol.SpentDollars() + pol.RemainingBudget() - pol.TotalBudget()); d > eps {
		return fmt.Errorf("experiments: budget conservation violated by $%g", d)
	}
	var spent, refunded float64
	for _, rec := range campaign.Records {
		spent += rec.Output.SpentDollars
		refunded += rec.Output.RefundedDollars
	}
	if d := math.Abs(spent - pol.SpentDollars()); d > eps {
		return fmt.Errorf("experiments: cycle spend %.6f != policy spend %.6f", spent, pol.SpentDollars())
	}
	if d := math.Abs(refunded - pol.RefundedDollars()); d > eps {
		return fmt.Errorf("experiments: cycle refunds %.6f != policy refunds %.6f", refunded, pol.RefundedDollars())
	}
	if recovery {
		if d := math.Abs(pol.SpentDollars() - inj.Spent()); d > eps {
			return fmt.Errorf("experiments: policy spend %.6f != platform payout %.6f", pol.SpentDollars(), inj.Spent())
		}
	}
	return nil
}

// RunFaults runs the resilience study over the default scenario grid.
func RunFaults(env *Env) (*FaultsResult, error) {
	return runFaults(env, defaultFaultScenarios(env.Cfg.Seed))
}

// faultArmOut is one (scenario, mode) arm's aggregated outcome.
type faultArmOut struct {
	f1        float64
	delay     float64
	spent     float64
	degraded  int
	requeries int
	refunded  float64
}

// runFaults runs both arms of each scenario; the smoke test drives it
// with a reduced grid. The scenario×mode arms are fully independent (each
// gets its own platform, injector and system), so they fan out across
// Config.Workers goroutines; each arm writes only its own slot and the
// result tables are assembled sequentially in grid order afterwards, so
// the study is bit-identical at any worker count.
func runFaults(env *Env, scenarios []faultScenario) (*FaultsResult, error) {
	modes := []string{faultsModeRecovery, faultsModeNoRecovery}
	outs := make([]faultArmOut, len(scenarios)*len(modes))
	err := parallel.ForErr(env.Cfg.Workers, len(outs), func(i int) error {
		sc := scenarios[i/len(modes)]
		mode := modes[i%len(modes)]
		recovery := mode == faultsModeRecovery
		campaign, sys, inj, err := runFaultArm(env, sc.cfg, recovery)
		if err != nil {
			return fmt.Errorf("experiments: faults %s/%s: %w", sc.name, mode, err)
		}
		if err := auditFaultArm(campaign, sys, inj, recovery); err != nil {
			return fmt.Errorf("experiments: faults %s/%s: %w", sc.name, mode, err)
		}
		m, err := eval.Compute(campaign.TrueLabels(), campaign.PredictedLabels())
		if err != nil {
			return err
		}
		out := faultArmOut{
			f1:    m.F1,
			delay: campaign.MeanCrowdDelay().Seconds(),
			spent: campaign.TotalSpend(),
		}
		for _, rec := range campaign.Records {
			out.degraded += len(rec.Output.Degraded)
			out.requeries += rec.Output.Requeries
			out.refunded += rec.Output.RefundedDollars
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &FaultsResult{
		Modes:          modes,
		F1:             make(map[string][]float64),
		DelaySeconds:   make(map[string][]float64),
		SpentDollars:   make(map[string][]float64),
		DegradedImages: make(map[string][]int),
	}
	for si, sc := range scenarios {
		res.Scenarios = append(res.Scenarios, sc.name)
		for mi, mode := range modes {
			out := outs[si*len(modes)+mi]
			res.F1[mode] = append(res.F1[mode], out.f1)
			res.DelaySeconds[mode] = append(res.DelaySeconds[mode], out.delay)
			res.SpentDollars[mode] = append(res.SpentDollars[mode], out.spent)
			res.DegradedImages[mode] = append(res.DegradedImages[mode], out.degraded)
			if mode == faultsModeRecovery {
				res.Requeries = append(res.Requeries, out.requeries)
				res.RefundedDollars = append(res.RefundedDollars, out.refunded)
			}
		}
	}
	return res, nil
}

// String renders the resilience comparison.
func (r *FaultsResult) String() string {
	t := &textTable{
		title: "Resilience: CrowdLearn under crowd faults, with vs without recovery",
		header: []string{"scenario", "f1(rec)", "f1(none)", "delay(rec)", "delay(none)",
			"degr(rec)", "degr(none)", "requeries", "refunded"},
	}
	for i, sc := range r.Scenarios {
		t.addRow(sc,
			f3(r.F1[faultsModeRecovery][i]),
			f3(r.F1[faultsModeNoRecovery][i]),
			fmt.Sprintf("%.0fs", r.DelaySeconds[faultsModeRecovery][i]),
			fmt.Sprintf("%.0fs", r.DelaySeconds[faultsModeNoRecovery][i]),
			fmt.Sprintf("%d", r.DegradedImages[faultsModeRecovery][i]),
			fmt.Sprintf("%d", r.DegradedImages[faultsModeNoRecovery][i]),
			fmt.Sprintf("%d", r.Requeries[i]),
			fmt.Sprintf("$%.2f", r.RefundedDollars[i]),
		)
	}
	return t.String()
}
