package experiments

import (
	"fmt"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/eval"
	"github.com/crowdlearn/crowdlearn/internal/parallel"
)

// SchemeNames lists Table II's rows in presentation order.
var SchemeNames = []string{
	"crowdlearn", "vgg16", "bovw", "ddm", "ensemble", "hybrid-para", "hybrid-al",
}

// CampaignSet holds one full 40x10 campaign per scheme; Table II,
// Figure 7 and Table III all derive from this single run, exactly as in
// the paper where one live deployment produced all three artefacts.
type CampaignSet struct {
	Results map[string]*core.CampaignResult
}

// aiOnlyArm builds one of the AI-only baseline schemes.
func aiOnlyArm(env *Env, name string, seedOffset int64) (core.Scheme, error) {
	expert, err := env.trainedExpert(name, seedOffset)
	if err != nil {
		return nil, err
	}
	return core.NewAIOnly(expert)
}

// hybridParaArm builds Hybrid-Para: ensemble + random crowd subset +
// fixed incentive.
func hybridParaArm(env *Env) (core.Scheme, error) {
	expert, err := env.trainedExpert("ensemble", 40)
	if err != nil {
		return nil, err
	}
	policy, err := env.fixedMaxPolicy(env.Cfg.QuerySize, env.Cfg.BudgetDollars)
	if err != nil {
		return nil, err
	}
	return core.NewHybridPara(expert, policy, env.NewPlatform(), env.Cfg.QuerySize, env.Cfg.Seed+50)
}

// hybridALArm builds Hybrid-AL: strongest single expert + uncertainty
// sampling + fixed incentive + retraining.
func hybridALArm(env *Env) (core.Scheme, error) {
	expert, err := env.trainedExpert("ddm", 60)
	if err != nil {
		return nil, err
	}
	policy, err := env.fixedMaxPolicy(env.Cfg.QuerySize, env.Cfg.BudgetDollars)
	if err != nil {
		return nil, err
	}
	al, err := core.NewHybridAL(expert, policy, env.NewPlatform(), env.Cfg.QuerySize, env.Cfg.Seed+70)
	if err != nil {
		return nil, err
	}
	al.SetReplayPool(classifier.SamplesFromImages(env.Dataset.Train))
	return al, nil
}

// RunCampaignSet builds, bootstraps and runs every scheme. Each scheme
// receives its own platform instance (same configuration) so the schemes
// see statistically identical but independent crowds — which also makes
// the arms fully independent, so they fan out across Config.Workers
// goroutines. Each arm writes only its own result slot and every arm's
// random streams are derived from its own seeds, so the set is
// bit-identical at any worker count.
func RunCampaignSet(env *Env) (*CampaignSet, error) {
	arms := []struct {
		name  string
		build func() (core.Scheme, error)
	}{
		{"vgg16", func() (core.Scheme, error) { return aiOnlyArm(env, "vgg16", 0) }},
		{"bovw", func() (core.Scheme, error) { return aiOnlyArm(env, "bovw", 1) }},
		{"ddm", func() (core.Scheme, error) { return aiOnlyArm(env, "ddm", 2) }},
		{"ensemble", func() (core.Scheme, error) { return aiOnlyArm(env, "ensemble", 3) }},
		{"crowdlearn", func() (core.Scheme, error) {
			return env.newCrowdLearn(env.Cfg.QuerySize, env.Cfg.BudgetDollars, nil)
		}},
		{"hybrid-para", func() (core.Scheme, error) { return hybridParaArm(env) }},
		{"hybrid-al", func() (core.Scheme, error) { return hybridALArm(env) }},
	}

	results := make([]*core.CampaignResult, len(arms))
	err := parallel.ForErr(env.Cfg.Workers, len(arms), func(i int) error {
		scheme, err := arms[i].build()
		if err != nil {
			return fmt.Errorf("experiments: build %s: %w", arms[i].name, err)
		}
		res, err := core.RunCampaign(scheme, env.Dataset.Test, env.Cfg.Campaign)
		if err != nil {
			return fmt.Errorf("experiments: campaign %s: %w", arms[i].name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	set := &CampaignSet{Results: make(map[string]*core.CampaignResult, len(arms))}
	for i, arm := range arms {
		set.Results[arm.name] = results[i]
	}
	return set, nil
}

// Table2Result reproduces Table II: classification metrics per scheme.
type Table2Result struct {
	Metrics map[string]eval.Metrics
}

// Table2 derives the classification metrics from a campaign set.
func (s *CampaignSet) Table2() (*Table2Result, error) {
	out := &Table2Result{Metrics: make(map[string]eval.Metrics, len(s.Results))}
	for name, res := range s.Results {
		m, err := eval.Compute(res.TrueLabels(), res.PredictedLabels())
		if err != nil {
			return nil, fmt.Errorf("experiments: table2 %s: %w", name, err)
		}
		out.Metrics[name] = m
	}
	return out, nil
}

// String renders Table II.
func (r *Table2Result) String() string {
	t := &textTable{
		title:  "Table II: Classification Accuracy for All Schemes",
		header: []string{"scheme", "accuracy", "precision", "recall", "f1"},
	}
	for _, name := range SchemeNames {
		m, ok := r.Metrics[name]
		if !ok {
			continue
		}
		t.addRow(name, f3(m.Accuracy), f3(m.Precision), f3(m.Recall), f3(m.F1))
	}
	return t.String()
}

// Fig7Result reproduces Figure 7: macro-average ROC curves per scheme,
// extended with the Brier score as a calibration summary.
type Fig7Result struct {
	Curves map[string][]eval.ROCPoint
	AUC    map[string]float64
	Brier  map[string]float64
}

// Fig7 derives ROC curves from a campaign set.
func (s *CampaignSet) Fig7() (*Fig7Result, error) {
	out := &Fig7Result{
		Curves: make(map[string][]eval.ROCPoint, len(s.Results)),
		AUC:    make(map[string]float64, len(s.Results)),
		Brier:  make(map[string]float64, len(s.Results)),
	}
	for name, res := range s.Results {
		curve, err := eval.MacroROC(res.TrueLabels(), res.Distributions(), 101)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7 %s: %w", name, err)
		}
		out.Curves[name] = curve
		out.AUC[name] = eval.AUC(curve)
		brier, err := eval.BrierScore(res.TrueLabels(), res.Distributions())
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7 brier %s: %w", name, err)
		}
		out.Brier[name] = brier
	}
	return out, nil
}

// String renders the AUC summary plus a coarse TPR series per scheme.
func (r *Fig7Result) String() string {
	t := &textTable{
		title:  "Figure 7: Macro-average ROC (TPR at fixed FPR points, AUC, Brier)",
		header: []string{"scheme", "tpr@0.1", "tpr@0.2", "tpr@0.4", "tpr@0.6", "tpr@0.8", "auc", "brier"},
	}
	at := func(curve []eval.ROCPoint, fpr float64) float64 {
		best := curve[0]
		for _, p := range curve {
			if p.FPR <= fpr {
				best = p
			}
		}
		return best.TPR
	}
	for _, name := range SchemeNames {
		curve, ok := r.Curves[name]
		if !ok {
			continue
		}
		t.addRow(name,
			f3(at(curve, 0.1)), f3(at(curve, 0.2)), f3(at(curve, 0.4)),
			f3(at(curve, 0.6)), f3(at(curve, 0.8)), f3(r.AUC[name]), f3(r.Brier[name]))
	}
	return t.String()
}

// Table3Result reproduces Table III: average algorithm and crowd delay
// per sensing cycle.
type Table3Result struct {
	AlgorithmDelay map[string]time.Duration
	CrowdDelay     map[string]time.Duration
}

// Table3 derives delay accounting from a campaign set.
func (s *CampaignSet) Table3() *Table3Result {
	out := &Table3Result{
		AlgorithmDelay: make(map[string]time.Duration, len(s.Results)),
		CrowdDelay:     make(map[string]time.Duration, len(s.Results)),
	}
	for name, res := range s.Results {
		out.AlgorithmDelay[name] = res.MeanAlgorithmDelay()
		out.CrowdDelay[name] = res.MeanCrowdDelay()
	}
	return out
}

// String renders Table III.
func (r *Table3Result) String() string {
	t := &textTable{
		title:  "Table III: Average Delay (s) per Sensing Cycle",
		header: []string{"scheme", "algorithm delay", "crowd delay"},
	}
	for _, name := range SchemeNames {
		ad, ok := r.AlgorithmDelay[name]
		if !ok {
			continue
		}
		cd := "N/A"
		if d := r.CrowdDelay[name]; d > 0 {
			cd = seconds(d)
		}
		t.addRow(name, seconds(ad), cd)
	}
	return t.String()
}
