package experiments

import (
	"strings"
	"testing"
)

func TestSpamRobustness(t *testing.T) {
	env := testEnv(t)
	res, err := RunSpamRobustness(env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if len(res.Fractions) != 5 {
		t.Fatalf("fractions %d, want 5", len(res.Fractions))
	}
	for _, scheme := range res.Schemes {
		acc := res.Accuracy[scheme]
		// Clean-crowd accuracy must be strong; heavy spam must hurt.
		if acc[0] < 0.75 {
			t.Errorf("%s clean accuracy %.3f too low", scheme, acc[0])
		}
		if acc[len(acc)-1] >= acc[0] {
			t.Errorf("%s should degrade under 40%% spam: %.3f -> %.3f", scheme, acc[0], acc[len(acc)-1])
		}
	}
	// CQC must stay at or above plain voting at every pollution level: it
	// was trained on the same polluted platform and the vote-margin and
	// questionnaire features carry the spam signature.
	for fi := range res.Fractions {
		if res.Accuracy["cqc"][fi]+0.03 < res.Accuracy["voting"][fi] {
			t.Errorf("cqc (%.3f) falls below voting (%.3f) at %.0f%% spam",
				res.Accuracy["cqc"][fi], res.Accuracy["voting"][fi], res.Fractions[fi]*100)
		}
	}
	if !strings.Contains(res.String(), "spammer") {
		t.Error("render missing title")
	}
}

func TestChurnRobustness(t *testing.T) {
	env := testEnv(t)
	res, err := RunChurnRobustness(env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if len(res.ChurnRates) != 3 {
		t.Fatalf("rates %d, want 3", len(res.ChurnRates))
	}
	for _, scheme := range res.Schemes {
		for ri, a := range res.Accuracy[scheme] {
			if a < 0.6 || a > 1 {
				t.Errorf("%s accuracy %.3f at churn %.0f%% implausible", scheme, a, res.ChurnRates[ri]*100)
			}
		}
	}
	// Identity-free schemes must hold steady under maximal churn.
	for _, scheme := range []string{"cqc", "voting"} {
		drop := res.Accuracy[scheme][0] - res.Accuracy[scheme][len(churnRates)-1]
		if drop > 0.06 {
			t.Errorf("%s is identity-free but dropped %.3f under churn", scheme, drop)
		}
	}
	if !strings.Contains(res.String(), "churn") {
		t.Error("render missing title")
	}
}
