package experiments

import (
	"fmt"
	"math"

	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/eval"
	"github.com/crowdlearn/crowdlearn/internal/qss"
)

// StrategyComparisonResult compares QSS exploitation scores (entropy,
// margin, least-confidence, disagreement) end to end: each drives a full
// CrowdLearn campaign.
type StrategyComparisonResult struct {
	Rows []StrategyRow
}

// StrategyRow is one strategy's outcome.
type StrategyRow struct {
	Name     string
	Accuracy float64
	F1       float64
	// LowResShare is the fraction of crowd queries spent on low-res
	// images — the uncertainty-surfacing behaviour the score controls.
	LowResShare float64
}

// RunStrategyComparison runs one campaign per built-in QSS strategy.
func RunStrategyComparison(env *Env) (*StrategyComparisonResult, error) {
	out := &StrategyComparisonResult{}
	for _, strat := range qss.Strategies() {
		strat := strat
		cl, err := env.newCrowdLearn(env.Cfg.QuerySize, env.Cfg.BudgetDollars, func(c *core.Config) {
			c.Strategy = strat
		})
		if err != nil {
			return nil, err
		}
		campaign, err := core.RunCampaign(cl, env.Dataset.Test, env.Cfg.Campaign)
		if err != nil {
			return nil, fmt.Errorf("experiments: strategy %s: %w", strat.Name(), err)
		}
		m, err := eval.Compute(campaign.TrueLabels(), campaign.PredictedLabels())
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, StrategyRow{
			Name:        strat.Name(),
			Accuracy:    m.Accuracy,
			F1:          m.F1,
			LowResShare: lowResQueryShare(campaign),
		})
	}
	return out, nil
}

// lowResQueryShare is the fraction of queried images that were low-res.
func lowResQueryShare(res *core.CampaignResult) float64 {
	lowRes, total := 0, 0
	for _, rec := range res.Records {
		for _, idx := range rec.Output.Queried {
			total++
			if rec.Input.Images[idx].Failure.String() == "low-res" {
				lowRes++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(lowRes) / float64(total)
}

// String renders the comparison.
func (r *StrategyComparisonResult) String() string {
	t := &textTable{
		title:  "QSS selection strategies (end-to-end campaigns)",
		header: []string{"strategy", "accuracy", "f1", "low-res query share"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Name, f3(row.Accuracy), f3(row.F1), f3(row.LowResShare))
	}
	return t.String()
}

// MultiSeedResult reports Table II metrics as mean ± std across
// independent random universes (fresh dataset, platform, pilot and models
// per seed). Single-seed comparisons between close schemes are noisy;
// this is the statistically honest version of Table II.
type MultiSeedResult struct {
	Seeds  []int64
	Scheme []string
	// MeanF1, StdF1, MeanAcc, StdAcc indexed like Scheme.
	MeanF1, StdF1   []float64
	MeanAcc, StdAcc []float64
}

// RunMultiSeed re-runs the Table II campaign set under each seed.
func RunMultiSeed(base Config, seeds []int64) (*MultiSeedResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: no seeds given")
	}
	f1s := make(map[string][]float64)
	accs := make(map[string][]float64)
	for _, seed := range seeds {
		cfg := base
		cfg.Seed = seed
		env, err := NewEnv(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		set, err := RunCampaignSet(env)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		table2, err := set.Table2()
		if err != nil {
			return nil, err
		}
		for name, m := range table2.Metrics {
			f1s[name] = append(f1s[name], m.F1)
			accs[name] = append(accs[name], m.Accuracy)
		}
	}
	out := &MultiSeedResult{Seeds: append([]int64(nil), seeds...)}
	for _, name := range SchemeNames {
		if _, ok := f1s[name]; !ok {
			continue
		}
		out.Scheme = append(out.Scheme, name)
		mf, sf := meanStd(f1s[name])
		ma, sa := meanStd(accs[name])
		out.MeanF1 = append(out.MeanF1, mf)
		out.StdF1 = append(out.StdF1, sf)
		out.MeanAcc = append(out.MeanAcc, ma)
		out.StdAcc = append(out.StdAcc, sa)
	}
	return out, nil
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var sq float64
	for _, x := range xs {
		d := x - mean
		sq += d * d
	}
	return mean, math.Sqrt(sq / float64(len(xs)))
}

// String renders the multi-seed table.
func (r *MultiSeedResult) String() string {
	t := &textTable{
		title:  fmt.Sprintf("Table II across %d seeds (mean ± std)", len(r.Seeds)),
		header: []string{"scheme", "accuracy", "f1"},
	}
	for i, name := range r.Scheme {
		t.addRow(name,
			fmt.Sprintf("%.3f ± %.3f", r.MeanAcc[i], r.StdAcc[i]),
			fmt.Sprintf("%.3f ± %.3f", r.MeanF1[i], r.StdF1[i]))
	}
	return t.String()
}
