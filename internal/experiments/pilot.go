package experiments

import (
	"fmt"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/cqc"
	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/simclock"
	"github.com/crowdlearn/crowdlearn/internal/stats"
	"github.com/crowdlearn/crowdlearn/internal/truth"
)

// Fig5Result reproduces Figure 5: mean crowd response time per temporal
// context and incentive level.
type Fig5Result struct {
	Incentives []crowd.Cents
	// Delay[context][incentive index] is the mean HIT completion delay.
	Delay map[crowd.TemporalContext][]time.Duration
}

// RunFig5 computes the delay surface from the environment's pilot study.
func RunFig5(env *Env) (*Fig5Result, error) {
	res := &Fig5Result{
		Incentives: env.Pilot.Incentives(),
		Delay:      make(map[crowd.TemporalContext][]time.Duration, crowd.NumContexts),
	}
	for _, ctx := range crowd.Contexts() {
		row := make([]time.Duration, len(res.Incentives))
		for i, inc := range res.Incentives {
			row[i] = env.Pilot.MeanQueryDelay(ctx, inc)
		}
		res.Delay[ctx] = row
	}
	return res, nil
}

// String renders the figure as a table of seconds.
func (r *Fig5Result) String() string {
	t := &textTable{
		title:  "Figure 5: Crowd Response Time (s) vs. Incentives",
		header: []string{"context"},
	}
	for _, inc := range r.Incentives {
		t.header = append(t.header, inc.String())
	}
	for _, ctx := range crowd.Contexts() {
		row := []string{ctx.String()}
		for _, d := range r.Delay[ctx] {
			row = append(row, seconds(d))
		}
		t.addRow(row...)
	}
	return t.String()
}

// Fig6Result reproduces Figure 6: individual worker label quality per
// incentive level, with the Wilcoxon significance tests between adjacent
// levels reported in Section IV-B1.
type Fig6Result struct {
	Incentives []crowd.Cents
	Quality    []float64
	// PValues[i] is the Wilcoxon two-sided p-value between level i and
	// i+1 (NaN if the test could not run).
	PValues []float64
	// Kappa[i] is Fleiss' kappa of inter-worker agreement at level i — an
	// extension beyond the paper quantifying how consistent (not just how
	// accurate) the crowd is at each price point.
	Kappa []float64
}

// RunFig6 computes label quality per incentive from the pilot study.
func RunFig6(env *Env) (*Fig6Result, error) {
	incentives := env.Pilot.Incentives()
	res := &Fig6Result{
		Incentives: incentives,
		Quality:    make([]float64, len(incentives)),
		PValues:    make([]float64, 0, len(incentives)-1),
	}
	for i, inc := range incentives {
		res.Quality[i] = env.Pilot.WorkerAccuracy(inc)
		kappa, err := stats.FleissKappa(env.Pilot.AgreementCounts(inc))
		if err != nil {
			return nil, fmt.Errorf("fig6 kappa at %v: %w", inc, err)
		}
		res.Kappa = append(res.Kappa, kappa)
	}
	for i := 0; i+1 < len(incentives); i++ {
		a := env.Pilot.WorkerCorrectness(incentives[i])
		b := env.Pilot.WorkerCorrectness(incentives[i+1])
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		w, err := stats.Wilcoxon(a[:n], b[:n])
		if err != nil {
			res.PValues = append(res.PValues, 1)
			continue
		}
		res.PValues = append(res.PValues, w.P)
	}
	return res, nil
}

// String renders the quality curve and significance tests.
func (r *Fig6Result) String() string {
	t := &textTable{
		title:  "Figure 6: Label Quality vs. Incentives",
		header: []string{"incentive", "quality", "fleiss kappa", "wilcoxon p (vs next level)"},
	}
	for i, inc := range r.Incentives {
		p := "-"
		if i < len(r.PValues) {
			p = f3(r.PValues[i])
		}
		kappa := "-"
		if i < len(r.Kappa) {
			kappa = f3(r.Kappa[i])
		}
		t.addRow(inc.String(), f3(r.Quality[i]), kappa, p)
	}
	return t.String()
}

// Table1Result reproduces Table I: aggregated label accuracy of CQC
// against the Voting, TD-EM and Filtering baselines per temporal context.
type Table1Result struct {
	// Schemes lists aggregator names in presentation order.
	Schemes []string
	// Accuracy[scheme][context] plus an "overall" entry keyed by context
	// index crowd.NumContexts.
	Accuracy map[string][]float64
}

// table1EvalQueriesPerContext is the held-out evaluation volume per
// context (paper: 10 cycles x 5 queries per context in the live run).
const table1EvalQueriesPerContext = 100

// RunTable1 trains CQC on the pilot data, then evaluates all four
// aggregation schemes on fresh crowd responses over held-out test images
// in every temporal context.
func RunTable1(env *Env) (*Table1Result, error) {
	quality := cqc.New(cqc.DefaultConfig())
	if err := quality.Train(env.Pilot.AllResults()); err != nil {
		return nil, err
	}
	aggregators := []truth.Aggregator{
		quality,
		truth.MajorityVoting{},
		truth.NewTDEM(),
		truth.NewFiltering(),
	}
	// Warm the stateful baselines with the pilot history, mirroring their
	// deployment: reputation accrues from day one.
	for _, agg := range aggregators[2:] {
		if _, err := agg.Aggregate(env.Pilot.AllResults()); err != nil {
			return nil, err
		}
	}

	platform := env.NewPlatform()
	res := &Table1Result{Accuracy: make(map[string][]float64)}
	for _, agg := range aggregators {
		res.Schemes = append(res.Schemes, agg.Name())
		res.Accuracy[agg.Name()] = make([]float64, crowd.NumContexts+1)
	}

	test := env.Dataset.Test
	next := 0
	var correctTotal = make(map[string]int)
	var countTotal int
	for ctxIdx, ctx := range crowd.Contexts() {
		queries := make([]crowd.Query, table1EvalQueriesPerContext)
		for i := range queries {
			queries[i] = crowd.Query{Image: test[next%len(test)], Incentive: 6}
			next++
		}
		results, err := platform.Submit(simclock.New(), ctx, queries)
		if err != nil {
			return nil, err
		}
		for _, agg := range aggregators {
			dists, err := agg.Aggregate(results)
			if err != nil {
				return nil, fmt.Errorf("table1 %s: %w", agg.Name(), err)
			}
			correct := 0
			for i, d := range dists {
				if truth.Decide(d) == results[i].Query.Image.TrueLabel {
					correct++
				}
			}
			res.Accuracy[agg.Name()][ctxIdx] = float64(correct) / float64(len(results))
			correctTotal[agg.Name()] += correct
		}
		countTotal += len(queries)
	}
	for _, agg := range aggregators {
		res.Accuracy[agg.Name()][crowd.NumContexts] = float64(correctTotal[agg.Name()]) / float64(countTotal)
	}
	return res, nil
}

// Overall returns the pooled accuracy for a scheme.
func (r *Table1Result) Overall(scheme string) float64 {
	acc, ok := r.Accuracy[scheme]
	if !ok {
		return 0
	}
	return acc[crowd.NumContexts]
}

// String renders Table I.
func (r *Table1Result) String() string {
	t := &textTable{
		title:  "Table I: Aggregated Label Accuracy",
		header: []string{"scheme", "morning", "afternoon", "evening", "midnight", "overall"},
	}
	for _, s := range r.Schemes {
		acc := r.Accuracy[s]
		t.addRow(s, f3(acc[0]), f3(acc[1]), f3(acc[2]), f3(acc[3]), f3(acc[4]))
	}
	return t.String()
}
