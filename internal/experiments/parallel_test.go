package experiments

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"sync"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/faults"
)

var (
	parallelEnvOnce sync.Once
	parallelEnv     *Env
	parallelEnvErr  error
)

// reducedEnv builds a small shared environment for the equivalence tests:
// the full pipeline shape at a fraction of the default campaign cost.
func reducedEnv(t *testing.T) *Env {
	t.Helper()
	parallelEnvOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Dataset.NumImages = 300
		cfg.Dataset.TrainImages = 180
		cfg.Campaign.Cycles = 8
		parallelEnv, parallelEnvErr = NewEnv(cfg)
	})
	if parallelEnvErr != nil {
		t.Fatal(parallelEnvErr)
	}
	return parallelEnv
}

// envWithWorkers copies the environment with a different worker count.
// Dataset and pilot are immutable after NewEnv, so sharing them across
// copies is safe.
func envWithWorkers(base *Env, workers int) *Env {
	e := *base
	e.Cfg.Workers = workers
	return &e
}

// campaignSetBytes runs the full seven-arm campaign set and returns the
// gob encoding of every cycle output in SchemeNames order.
func campaignSetBytes(t *testing.T, env *Env) []byte {
	t.Helper()
	set, err := RunCampaignSet(env)
	if err != nil {
		t.Fatalf("workers=%d: %v", env.Cfg.Workers, err)
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, name := range SchemeNames {
		res, ok := set.Results[name]
		if !ok {
			t.Fatalf("workers=%d: scheme %s missing", env.Cfg.Workers, name)
		}
		for _, rec := range res.Records {
			if err := enc.Encode(rec.Output); err != nil {
				t.Fatalf("workers=%d: encode %s: %v", env.Cfg.Workers, name, err)
			}
		}
	}
	return buf.Bytes()
}

// TestCampaignSetBitIdenticalAcrossWorkers asserts the campaign fan-out
// contract: all seven arms of RunCampaignSet produce byte-identical
// outputs whether they run sequentially or concurrently.
func TestCampaignSetBitIdenticalAcrossWorkers(t *testing.T) {
	env := reducedEnv(t)
	want := campaignSetBytes(t, envWithWorkers(env, 1))
	if got := campaignSetBytes(t, envWithWorkers(env, 4)); !bytes.Equal(got, want) {
		t.Error("workers=4: campaign set differs from sequential run")
	}
}

// TestFaultsBitIdenticalAcrossWorkers asserts the same for the
// resilience-study grid: scenario×mode arms fan out without perturbing
// any result.
func TestFaultsBitIdenticalAcrossWorkers(t *testing.T) {
	env := reducedEnv(t)
	grid := []faultScenario{
		{name: "clean", cfg: faults.Config{}},
		{name: "abandon-30%", cfg: faults.Config{
			Seed:        env.Cfg.Seed + 17,
			AbandonRate: 0.30,
		}},
	}
	want, err := runFaults(envWithWorkers(env, 1), grid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runFaults(envWithWorkers(env, 8), grid)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("workers=8: faults study differs from sequential run\n got: %+v\nwant: %+v", got, want)
	}
}
