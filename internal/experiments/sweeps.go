package experiments

import (
	"fmt"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/eval"
)

// Fig9Result reproduces Figure 9: classification F1 as the query-set size
// sweeps from 0% (AI only) to 100% (crowd only) of each cycle's images,
// for CrowdLearn and the hybrid baselines, with the Ensemble as the
// AI-only reference line.
type Fig9Result struct {
	// Fractions are the query-set sizes as percentages of the cycle size.
	Fractions []int
	// F1[scheme][fraction index].
	F1 map[string][]float64
	// EnsembleF1 is the flat AI-only reference.
	EnsembleF1 float64
}

// fig9Fractions are the swept query-set percentages (the paper sweeps
// 0% to 100% of the 10 images per cycle).
var fig9Fractions = []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// RunFig9 sweeps the query-set size.
func RunFig9(env *Env) (*Fig9Result, error) {
	res := &Fig9Result{
		Fractions: fig9Fractions,
		F1: map[string][]float64{
			"crowdlearn":  make([]float64, len(fig9Fractions)),
			"hybrid-para": make([]float64, len(fig9Fractions)),
			"hybrid-al":   make([]float64, len(fig9Fractions)),
		},
	}

	ensemble, err := env.trainedExpert("ensemble", 90)
	if err != nil {
		return nil, err
	}
	ensScheme, err := core.NewAIOnly(ensemble)
	if err != nil {
		return nil, err
	}
	ensRes, err := core.RunCampaign(ensScheme, env.Dataset.Test, env.Cfg.Campaign)
	if err != nil {
		return nil, err
	}
	ensMetrics, err := eval.Compute(ensRes.TrueLabels(), ensRes.PredictedLabels())
	if err != nil {
		return nil, err
	}
	res.EnsembleF1 = ensMetrics.F1

	for fi, pct := range fig9Fractions {
		querySize := pct * env.Cfg.Campaign.ImagesPerCycle / 100

		cl, err := env.newCrowdLearn(querySize, env.Cfg.BudgetDollars, nil)
		if err != nil {
			return nil, err
		}
		if err := runSweepPoint(env, cl, "crowdlearn", fi, res.F1); err != nil {
			return nil, err
		}

		paraExpert, err := env.trainedExpert("ensemble", 91)
		if err != nil {
			return nil, err
		}
		paraPolicy, err := env.fixedMaxPolicy(maxInt(querySize, 1), env.Cfg.BudgetDollars)
		if err != nil {
			return nil, err
		}
		para, err := core.NewHybridPara(paraExpert, paraPolicy, env.NewPlatform(), querySize, env.Cfg.Seed+92)
		if err != nil {
			return nil, err
		}
		if err := runSweepPoint(env, para, "hybrid-para", fi, res.F1); err != nil {
			return nil, err
		}

		alExpert, err := env.trainedExpert("ddm", 93)
		if err != nil {
			return nil, err
		}
		alPolicy, err := env.fixedMaxPolicy(maxInt(querySize, 1), env.Cfg.BudgetDollars)
		if err != nil {
			return nil, err
		}
		al, err := core.NewHybridAL(alExpert, alPolicy, env.NewPlatform(), querySize, env.Cfg.Seed+94)
		if err != nil {
			return nil, err
		}
		al.SetReplayPool(classifier.SamplesFromImages(env.Dataset.Train))
		if err := runSweepPoint(env, al, "hybrid-al", fi, res.F1); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func runSweepPoint(env *Env, scheme core.Scheme, name string, idx int, into map[string][]float64) error {
	res, err := core.RunCampaign(scheme, env.Dataset.Test, env.Cfg.Campaign)
	if err != nil {
		return fmt.Errorf("experiments: fig9 %s: %w", name, err)
	}
	m, err := eval.Compute(res.TrueLabels(), res.PredictedLabels())
	if err != nil {
		return err
	}
	into[name][idx] = m.F1
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String renders Figure 9.
func (r *Fig9Result) String() string {
	t := &textTable{
		title:  "Figure 9: Size of Query Set vs. Classification Performance (F1)",
		header: []string{"query set"},
	}
	for _, scheme := range []string{"crowdlearn", "hybrid-al", "hybrid-para"} {
		t.header = append(t.header, scheme)
	}
	t.header = append(t.header, "ensemble (ref)")
	for fi, pct := range r.Fractions {
		row := []string{fmt.Sprintf("%d%%", pct)}
		for _, scheme := range []string{"crowdlearn", "hybrid-al", "hybrid-para"} {
			row = append(row, f3(r.F1[scheme][fi]))
		}
		row = append(row, f3(r.EnsembleF1))
		t.addRow(row...)
	}
	return t.String()
}

// BudgetSweepResult reproduces Figures 10 and 11: CrowdLearn's F1 and
// crowd delay as the total budget sweeps from 2 to 40 USD.
type BudgetSweepResult struct {
	BudgetsUSD []float64
	F1         []float64
	CrowdDelay []time.Duration
}

// budgetSweep is the swept budget grid (paper: 2 to 40 USD).
var budgetSweep = []float64{2, 4, 6, 8, 10, 20, 30, 40}

// RunBudgetSweep runs CrowdLearn once per budget point.
func RunBudgetSweep(env *Env) (*BudgetSweepResult, error) {
	res := &BudgetSweepResult{
		BudgetsUSD: budgetSweep,
		F1:         make([]float64, len(budgetSweep)),
		CrowdDelay: make([]time.Duration, len(budgetSweep)),
	}
	for i, budget := range budgetSweep {
		cl, err := env.newCrowdLearn(env.Cfg.QuerySize, budget, nil)
		if err != nil {
			return nil, err
		}
		campaign, err := core.RunCampaign(cl, env.Dataset.Test, env.Cfg.Campaign)
		if err != nil {
			return nil, fmt.Errorf("experiments: budget %v: %w", budget, err)
		}
		m, err := eval.Compute(campaign.TrueLabels(), campaign.PredictedLabels())
		if err != nil {
			return nil, err
		}
		res.F1[i] = m.F1
		res.CrowdDelay[i] = campaign.MeanCrowdDelay()
	}
	return res, nil
}

// String renders Figures 10 and 11 as one table.
func (r *BudgetSweepResult) String() string {
	t := &textTable{
		title:  "Figures 10-11: Budget vs. F1 and Crowd Delay",
		header: []string{"budget (USD)", "f1", "crowd delay (s)"},
	}
	for i, b := range r.BudgetsUSD {
		t.addRow(f2(b), f3(r.F1[i]), seconds(r.CrowdDelay[i]))
	}
	return t.String()
}
