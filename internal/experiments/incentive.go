package experiments

import (
	"errors"
	"fmt"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/bandit"
	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/simclock"
)

// Fig8Result reproduces Figure 8: mean crowd delay per temporal context
// under the IPD bandit, the fixed-incentive policy, and the random
// policy.
type Fig8Result struct {
	Policies []string
	// Delay[policy][context index].
	Delay map[string][]time.Duration
}

// RunFig8 runs each incentive policy through an identical query schedule
// (the campaign's cycles and contexts, QuerySize queries each) against
// its own platform, isolating the incentive mechanism exactly as the
// figure intends.
func RunFig8(env *Env) (*Fig8Result, error) {
	querySize := env.Cfg.QuerySize
	budget := env.Cfg.BudgetDollars

	ucb, err := bandit.NewUCBALP(env.banditConfig(querySize, budget))
	if err != nil {
		return nil, err
	}
	ucb.WarmStart(env.Pilot)
	fixed, err := env.fixedMaxPolicy(querySize, budget)
	if err != nil {
		return nil, err
	}
	random, err := bandit.NewRandom(env.banditConfig(querySize, budget))
	if err != nil {
		return nil, err
	}

	res := &Fig8Result{Delay: make(map[string][]time.Duration, 3)}
	for _, p := range []struct {
		label  string
		policy bandit.Policy
	}{
		{"ipd (crowdlearn)", ucb},
		{"fixed", fixed},
		{"random", random},
	} {
		delays, err := runIncentiveCampaign(env, p.policy, querySize)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig8 %s: %w", p.label, err)
		}
		res.Policies = append(res.Policies, p.label)
		res.Delay[p.label] = delays
	}
	return res, nil
}

// runIncentiveCampaign drives one policy through the campaign schedule
// and returns mean crowd delay per context.
func runIncentiveCampaign(env *Env, policy bandit.Policy, querySize int) ([]time.Duration, error) {
	platform := env.NewPlatform()
	totals := make([]time.Duration, crowd.NumContexts)
	counts := make([]int, crowd.NumContexts)
	test := env.Dataset.Test
	next := 0
	for cycle := 0; cycle < env.Cfg.Campaign.Cycles; cycle++ {
		ctx := campaignContext(cycle)
		incentive, err := policy.SelectIncentive(ctx)
		if errors.Is(err, bandit.ErrBudgetExhausted) {
			continue
		}
		if err != nil {
			return nil, err
		}
		queries := make([]crowd.Query, querySize)
		for i := range queries {
			queries[i] = crowd.Query{Image: test[next%len(test)], Incentive: incentive}
			next++
		}
		results, err := platform.Submit(simclock.New(), ctx, queries)
		if err != nil {
			return nil, err
		}
		delay := crowd.MeanCompletionDelay(results)
		policy.Observe(ctx, incentive, delay, len(queries))
		totals[ctx] += delay
		counts[ctx]++
	}
	out := make([]time.Duration, crowd.NumContexts)
	for i := range out {
		if counts[i] > 0 {
			out[i] = totals[i] / time.Duration(counts[i])
		}
	}
	return out, nil
}

// campaignContext mirrors core's default round-robin schedule without
// needing a CampaignConfig value.
func campaignContext(cycle int) crowd.TemporalContext {
	return crowd.TemporalContext(cycle % crowd.NumContexts)
}

// String renders Figure 8.
func (r *Fig8Result) String() string {
	t := &textTable{
		title:  "Figure 8: Crowd Delay (s) at Different Temporal Contexts",
		header: []string{"policy", "morning", "afternoon", "evening", "midnight"},
	}
	for _, p := range r.Policies {
		row := []string{p}
		for _, d := range r.Delay[p] {
			row = append(row, seconds(d))
		}
		t.addRow(row...)
	}
	return t.String()
}
