package experiments

import (
	"fmt"
	"strings"
)

// textTable renders rows of cells as an aligned ASCII table with a header
// row, used by every experiment's String method so the CLI output reads
// like the paper's tables.
type textTable struct {
	title  string
	header []string
	rows   [][]string
}

func (t *textTable) addRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *textTable) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// f3 formats a float with 3 decimals.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// f2 formats a float with 2 decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// seconds formats a duration in whole seconds like the paper's tables.
func seconds(d interface{ Seconds() float64 }) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}
