package experiments

import (
	"fmt"
	"strings"
)

// Paper-reported reference values (Zhang et al., ICDCS 2019). Used by the
// report generator to print paper-vs-measured side by side.
var (
	paperTable1 = map[string]float64{
		"cqc": 0.9350, "voting": 0.8425, "td-em": 0.8625, "filtering": 0.8775,
	}
	paperTable2Acc = map[string]float64{
		"crowdlearn": 0.877, "vgg16": 0.770, "bovw": 0.670, "ddm": 0.807,
		"ensemble": 0.815, "hybrid-para": 0.797, "hybrid-al": 0.823,
	}
	paperTable2F1 = map[string]float64{
		"crowdlearn": 0.894, "vgg16": 0.791, "bovw": 0.725, "ddm": 0.823,
		"ensemble": 0.831, "hybrid-para": 0.821, "hybrid-al": 0.841,
	}
	paperTable3Alg = map[string]float64{
		"crowdlearn": 55.62, "vgg16": 47.83, "bovw": 37.55, "ddm": 52.57,
		"ensemble": 85.82, "hybrid-para": 94.28, "hybrid-al": 53.54,
	}
	paperTable3Crowd = map[string]float64{
		"crowdlearn": 342.77, "hybrid-para": 588.75, "hybrid-al": 527.61,
	}
)

// Report is a regenerable markdown paper-vs-measured summary, the
// machine-written companion to EXPERIMENTS.md.
type Report struct {
	sections []string
}

// RunReport executes the pilot, campaign and budget experiments and
// renders the comparison. It reuses one campaign set for Table II/III.
func RunReport(env *Env) (*Report, error) {
	r := &Report{}
	r.add("# CrowdLearn reproduction report\n\nGenerated from seed %d. Paper values from Zhang et al., ICDCS 2019.\n", env.Cfg.Seed)

	table1, err := RunTable1(env)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("## Table I — aggregated label accuracy (overall)\n\n")
	b.WriteString("| scheme | paper | measured | Δ |\n|---|---|---|---|\n")
	for _, s := range table1.Schemes {
		measured := table1.Overall(s)
		paper := paperTable1[s]
		fmt.Fprintf(&b, "| %s | %.4f | %.3f | %+.3f |\n", s, paper, measured, measured-paper)
	}
	r.add(b.String())

	set, err := RunCampaignSet(env)
	if err != nil {
		return nil, err
	}
	table2, err := set.Table2()
	if err != nil {
		return nil, err
	}
	b.Reset()
	b.WriteString("## Table II — classification accuracy / F1\n\n")
	b.WriteString("| scheme | paper acc | measured acc | paper F1 | measured F1 |\n|---|---|---|---|---|\n")
	for _, s := range SchemeNames {
		m, ok := table2.Metrics[s]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "| %s | %.3f | %.3f | %.3f | %.3f |\n",
			s, paperTable2Acc[s], m.Accuracy, paperTable2F1[s], m.F1)
	}
	r.add(b.String())

	table3 := set.Table3()
	b.Reset()
	b.WriteString("## Table III — delay per sensing cycle (s)\n\n")
	b.WriteString("| scheme | paper alg | measured alg | paper crowd | measured crowd |\n|---|---|---|---|---|\n")
	for _, s := range SchemeNames {
		ad, ok := table3.AlgorithmDelay[s]
		if !ok {
			continue
		}
		crowdPaper := "—"
		if v, ok := paperTable3Crowd[s]; ok {
			crowdPaper = fmt.Sprintf("%.2f", v)
		}
		crowdMeasured := "—"
		if d := table3.CrowdDelay[s]; d > 0 {
			crowdMeasured = fmt.Sprintf("%.2f", d.Seconds())
		}
		fmt.Fprintf(&b, "| %s | %.2f | %.2f | %s | %s |\n",
			s, paperTable3Alg[s], ad.Seconds(), crowdPaper, crowdMeasured)
	}
	r.add(b.String())

	fig8, err := RunFig8(env)
	if err != nil {
		return nil, err
	}
	b.Reset()
	b.WriteString("## Figure 8 — crowd delay by context (s)\n\n")
	b.WriteString("| policy | morning | afternoon | evening | midnight |\n|---|---|---|---|---|\n")
	for _, p := range fig8.Policies {
		fmt.Fprintf(&b, "| %s |", p)
		for _, d := range fig8.Delay[p] {
			fmt.Fprintf(&b, " %.0f |", d.Seconds())
		}
		b.WriteString("\n")
	}
	b.WriteString("\nPaper claim: the IPD bandit has the lowest mean delay and the least cross-context variance.\n")
	r.add(b.String())

	sweep, err := RunBudgetSweep(env)
	if err != nil {
		return nil, err
	}
	b.Reset()
	b.WriteString("## Figures 10–11 — budget sweep\n\n")
	b.WriteString("| budget (USD) | F1 | crowd delay (s) |\n|---|---|---|\n")
	for i, budget := range sweep.BudgetsUSD {
		fmt.Fprintf(&b, "| %.0f | %.3f | %.0f |\n", budget, sweep.F1[i], sweep.CrowdDelay[i].Seconds())
	}
	b.WriteString("\nPaper claim: F1 and delay stabilise once the budget passes ~6–8 USD.\n")
	r.add(b.String())

	r.add("---\nDeterministic: rerunning with the same seed reproduces every number.\n")
	return r, nil
}

func (r *Report) add(format string, args ...any) {
	r.sections = append(r.sections, fmt.Sprintf(format, args...))
}

// String renders the full markdown report.
func (r *Report) String() string {
	return strings.Join(r.sections, "\n")
}
