package admission

import (
	"testing"
	"time"
)

// drive admits n requests, dequeues each after wait, completes each
// after service, stepping a synthetic clock by step between arrivals.
func drive(c *Controller, now *time.Duration, n int, wait, service, step time.Duration) (admitted, degraded, rejected int) {
	for i := 0; i < n; i++ {
		dec, tk := c.Decide(*now, "c")
		switch dec.Outcome {
		case Reject:
			rejected++
		case Degrade:
			degraded++
			tk.Dequeued(*now + wait)
			tk.Done(*now+wait+service, true)
		default:
			admitted++
			tk.Dequeued(*now + wait)
			tk.Done(*now+wait+service, true)
		}
		*now += step
	}
	return
}

func TestHealthyTrafficAdmitted(t *testing.T) {
	c := NewController(Config{})
	var now time.Duration
	adm, deg, rej := drive(c, &now, 100, time.Millisecond, 2*time.Millisecond, 10*time.Millisecond)
	if deg != 0 || rej != 0 {
		t.Fatalf("healthy traffic shed: admitted=%d degraded=%d rejected=%d", adm, deg, rej)
	}
	if s := c.Snapshot(); s.Overloaded {
		t.Fatalf("overloaded latched on healthy traffic: %+v", s)
	}
}

// TestCoDelLatchesOnSustainedDelay: queue wait above target for longer
// than the interval flips the overload latch and subsequent requests
// degrade; waits back under target release it.
func TestCoDelLatchesOnSustainedDelay(t *testing.T) {
	c := NewController(Config{Target: 10 * time.Millisecond, Interval: 40 * time.Millisecond, MaxLimit: 1000, InitialLimit: 1000})
	var now time.Duration
	// Sustained excess: every dequeue sees 50ms of wait across >interval.
	drive(c, &now, 10, 50*time.Millisecond, time.Millisecond, 10*time.Millisecond)
	if s := c.Snapshot(); !s.Overloaded {
		t.Fatalf("overload not latched after sustained excess: %+v", s)
	}
	dec, tk := c.Decide(now, "c")
	if dec.Outcome != Degrade {
		t.Fatalf("outcome %v under latched overload, want Degrade", dec.Outcome)
	}
	tk.Dequeued(now)
	tk.Done(now, true)
	// Recovery: waits back under target release the latch.
	drive(c, &now, 3, time.Millisecond, time.Millisecond, 10*time.Millisecond)
	if s := c.Snapshot(); s.Overloaded {
		t.Fatalf("overload latch not released: %+v", s)
	}
}

// TestTransientSpikeDoesNotLatch: one bad dequeue inside the interval
// is a burst, not overload.
func TestTransientSpikeDoesNotLatch(t *testing.T) {
	c := NewController(Config{Target: 10 * time.Millisecond, Interval: 40 * time.Millisecond})
	var now time.Duration
	drive(c, &now, 1, 50*time.Millisecond, time.Millisecond, 10*time.Millisecond)
	drive(c, &now, 5, time.Millisecond, time.Millisecond, 10*time.Millisecond)
	if s := c.Snapshot(); s.Overloaded {
		t.Fatalf("single spike latched overload: %+v", s)
	}
}

// TestAIMDLimit: slow completions shrink the limit multiplicatively
// (once per window); fast completions grow it back additively.
func TestAIMDLimit(t *testing.T) {
	cfg := Config{Target: 10 * time.Millisecond, Interval: 40 * time.Millisecond, MinLimit: 1, MaxLimit: 64, InitialLimit: 32}
	c := NewController(cfg)
	start := c.Snapshot().Limit
	var now time.Duration
	// Two slow completions inside one window: one cut only.
	drive(c, &now, 2, time.Millisecond, 200*time.Millisecond, time.Millisecond)
	after := c.Snapshot().Limit
	if want := int(float64(start) * 0.7); after != want {
		t.Fatalf("limit after burst of slow completions %d, want one cut to %d", after, want)
	}
	// A second window of slow completions cuts again.
	now += 100 * time.Millisecond
	drive(c, &now, 1, time.Millisecond, 200*time.Millisecond, time.Millisecond)
	second := c.Snapshot().Limit
	if second >= after {
		t.Fatalf("limit %d after second slow window, want < %d", second, after)
	}
	// Fast completions recover additively.
	for i := 0; i < 2000; i++ {
		drive(c, &now, 1, 0, time.Millisecond, 2*time.Millisecond)
	}
	if got := c.Snapshot().Limit; got <= second {
		t.Fatalf("limit %d did not recover above %d", got, second)
	}
}

// TestLadderOverLimit: beyond the adaptive limit, within-share traffic
// degrades and over-share traffic rejects; beyond the hard cap
// everything rejects.
func TestLadderOverLimit(t *testing.T) {
	c := NewController(Config{MinLimit: 1, MaxLimit: 8, InitialLimit: 4, CampaignRate: 1, CampaignBurst: 2})
	var now time.Duration
	var tickets []*Ticket
	// Fill to the adaptive limit with one campaign's burst allowance.
	for i := 0; i < 4; i++ {
		dec, tk := c.Decide(now, "a")
		if i < 2 && dec.Outcome != Admit {
			t.Fatalf("request %d outcome %v, want Admit", i, dec.Outcome)
		}
		if tk != nil {
			tickets = append(tickets, tk)
		}
	}
	// Campaign "a" is now over its burst of 2: over-limit + over-share
	// rejects.
	dec, _ := c.Decide(now, "a")
	if dec.Outcome != Reject {
		t.Fatalf("over-limit over-share outcome %v, want Reject", dec.Outcome)
	}
	if dec.RetryAfter < time.Second {
		t.Fatalf("reject RetryAfter %v, want >= 1s floor", dec.RetryAfter)
	}
	// A fresh campaign still has tokens: over-limit within-share
	// degrades instead.
	dec, tk := c.Decide(now, "b")
	if dec.Outcome != Degrade {
		t.Fatalf("over-limit within-share outcome %v, want Degrade", dec.Outcome)
	}
	tickets = append(tickets, tk)
	// Fill to the hard cap: everything rejects, fair share or not.
	for len(tickets) < 8 {
		_, tk := c.Decide(now, "fresh-"+string(rune('a'+len(tickets))))
		if tk != nil {
			tickets = append(tickets, tk)
		}
	}
	dec, _ = c.Decide(now, "another")
	if dec.Outcome != Reject || dec.Reason != "saturated" {
		t.Fatalf("at hard cap: outcome %v reason %q, want Reject/saturated", dec.Outcome, dec.Reason)
	}
	for _, tk := range tickets {
		tk.Done(now, true)
	}
	if s := c.Snapshot(); s.Inflight != 0 {
		t.Fatalf("inflight %d after all tickets done, want 0", s.Inflight)
	}
}

// TestFairShareRefills: an over-share campaign regains admission as its
// bucket refills.
func TestFairShareRefills(t *testing.T) {
	c := NewController(Config{MinLimit: 1, MaxLimit: 8, InitialLimit: 1, CampaignRate: 10, CampaignBurst: 1})
	var now time.Duration
	// Hold the single admitted slot so the limit tier is active.
	_, hold := c.Decide(now, "hog")
	if hold == nil {
		t.Fatal("first request not admitted")
	}
	// "hog" has spent its burst: over-limit + over-share rejects.
	if dec, _ := c.Decide(now, "hog"); dec.Outcome != Reject {
		t.Fatalf("outcome %v, want Reject while bucket empty", dec.Outcome)
	}
	// 100ms at 10 tokens/s refills one token: degrades now.
	now += 100 * time.Millisecond
	dec, tk := c.Decide(now, "hog")
	if dec.Outcome != Degrade {
		t.Fatalf("outcome %v after refill, want Degrade", dec.Outcome)
	}
	tk.Done(now, true)
	hold.Done(now, true)
}

// TestRetryAfterTracksDrainRate: the Retry-After estimate scales with
// backlog over the measured completion rate.
func TestRetryAfterTracksDrainRate(t *testing.T) {
	c := NewController(Config{MinLimit: 1, MaxLimit: 4, InitialLimit: 4})
	var now time.Duration
	// Completions 500ms apart establish the drain rate.
	for i := 0; i < 10; i++ {
		_, tk := c.Decide(now, "c")
		tk.Dequeued(now)
		now += 500 * time.Millisecond
		tk.Done(now, true)
	}
	// Fill the queue, then reject: backlog of 4 at 2 completions/s
	// should suggest about 2.5s (inflight+1 times 500ms).
	var held []*Ticket
	for i := 0; i < 4; i++ {
		_, tk := c.Decide(now, "c")
		held = append(held, tk)
	}
	dec, _ := c.Decide(now, "c")
	if dec.Outcome != Reject {
		t.Fatalf("outcome %v, want Reject at hard cap", dec.Outcome)
	}
	if dec.RetryAfter < 2*time.Second || dec.RetryAfter > 3*time.Second {
		t.Fatalf("RetryAfter %v, want ~2.5s from drain rate", dec.RetryAfter)
	}
	for _, tk := range held {
		tk.Done(now, true)
	}
}

// TestAbandonReleasesSlot: abandoned tickets free capacity and count.
func TestAbandonReleasesSlot(t *testing.T) {
	c := NewController(Config{MinLimit: 1, MaxLimit: 2, InitialLimit: 2})
	var now time.Duration
	_, t1 := c.Decide(now, "c")
	_, t2 := c.Decide(now, "c")
	if dec, _ := c.Decide(now, "c"); dec.Outcome != Reject {
		t.Fatalf("outcome %v at cap, want Reject", dec.Outcome)
	}
	t1.Abandon(now)
	t1.Abandon(now) // double release is a no-op
	dec, t3 := c.Decide(now, "c")
	if dec.Outcome == Reject {
		t.Fatalf("outcome %v after abandon freed a slot", dec.Outcome)
	}
	t2.Done(now, true)
	t2.Done(now, true) // double done is a no-op
	t3.Done(now, true)
	s := c.Snapshot()
	if s.Inflight != 0 || s.Abandoned != 1 {
		t.Fatalf("snapshot %+v, want inflight 0 abandoned 1", s)
	}
}

// TestDeterministic: identical call sequences produce identical
// decision sequences and snapshots.
func TestDeterministic(t *testing.T) {
	run := func() ([]Outcome, Snapshot) {
		c := NewController(Config{Target: 5 * time.Millisecond, Interval: 20 * time.Millisecond, MaxLimit: 16, InitialLimit: 8})
		var now time.Duration
		var outs []Outcome
		var open []*Ticket
		for i := 0; i < 200; i++ {
			dec, tk := c.Decide(now, []string{"a", "b", "c"}[i%3])
			outs = append(outs, dec.Outcome)
			if tk != nil {
				open = append(open, tk)
			}
			if i%2 == 1 && len(open) > 0 {
				tk := open[0]
				open = open[1:]
				tk.Dequeued(now + 7*time.Millisecond)
				tk.Done(now+9*time.Millisecond, true)
			}
			now += 3 * time.Millisecond
		}
		for _, tk := range open {
			tk.Done(now, true)
		}
		return outs, c.Snapshot()
	}
	o1, s1 := run()
	o2, s2 := run()
	if len(o1) != len(o2) {
		t.Fatalf("decision counts differ: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("decision %d differs: %v vs %v", i, o1[i], o2[i])
		}
	}
	if s1 != s2 {
		t.Fatalf("snapshots differ:\n%+v\n%+v", s1, s2)
	}
}
