// Package admission implements adaptive overload control for the
// assessment service: queue-delay-targeted admission (CoDel-style), an
// adaptive concurrency limit (AIMD on observed service latency),
// per-campaign fair-share token buckets, and a priority-tiered shedding
// ladder — degrade a request to AI-only labels before rejecting it
// outright (DESIGN.md §14).
//
// The package is clockless: every method takes the current time as a
// monotonic offset (time.Duration since an arbitrary epoch), so the
// controller is fully deterministic under test and the load harness can
// drive it from any clock. The one wall-clock edge is the client-side
// Retry helper in retry.go, whose default Sleep seam is time.Sleep;
// that single file is on the crowdlint no-wall-clock allowlist.
package admission

import (
	"sync"
	"time"
)

// Outcome is one rung of the shedding ladder.
type Outcome int

const (
	// Admit serves the request with the full crowd-AI sensing cycle.
	Admit Outcome = iota
	// Degrade serves the request from the weighted ensemble's AI verdict
	// alone — much cheaper, no crowd round-trip, no committed cycle.
	Degrade
	// Reject sheds the request outright; the decision carries the
	// Retry-After the transport layer should surface.
	Reject
)

// String names the outcome for metric labels.
func (o Outcome) String() string {
	switch o {
	case Admit:
		return "admit"
	case Degrade:
		return "degrade"
	case Reject:
		return "reject"
	default:
		return "unknown"
	}
}

// Decision is the controller's verdict on one arriving request.
type Decision struct {
	// Outcome is the ladder rung the request landed on.
	Outcome Outcome
	// RetryAfter is the suggested client backoff, derived from the
	// current backlog and the measured drain rate (Reject only).
	RetryAfter time.Duration
	// Reason labels why the request was shed ("" on Admit):
	// "limit" (adaptive concurrency limit hit), "queue-delay" (queue
	// wait above target for a sustained interval), "saturated" (hard
	// cap), "fair-share" (campaign over its share during pressure).
	Reason string
}

// Config parameterises a Controller. The zero value is usable; every
// field has a production default.
type Config struct {
	// Target is the queue-wait the CoDel detector defends; queue delay
	// above it sustained for Interval marks the service overloaded
	// (default 25ms).
	Target time.Duration
	// Interval is how long queue wait must stay above Target before the
	// overloaded state latches (default 4×Target).
	Interval time.Duration
	// MinLimit / MaxLimit bound the adaptive concurrency+queue limit.
	// MaxLimit is also the hard cap past which requests are rejected
	// regardless of tier (defaults 1 and 64).
	MinLimit int
	MaxLimit int
	// InitialLimit seeds the AIMD limit (default MaxLimit/2).
	InitialLimit int
	// LatencyTarget is the end-to-end service latency (queue wait plus
	// processing) the AIMD loop steers toward: completions above it
	// multiplicatively shrink the limit, completions below it
	// additively grow it (default 4×Target).
	LatencyTarget time.Duration
	// DecreaseFactor is the multiplicative cut applied to the limit on
	// an overload signal, at most once per Interval (default 0.7).
	DecreaseFactor float64
	// CampaignRate is each campaign's fair-share refill in requests per
	// second; CampaignBurst the bucket depth (defaults 50 and 2×rate).
	// Fair share only bites while the service is shedding: under-limit,
	// under-target traffic is admitted regardless (work conservation).
	CampaignRate  float64
	CampaignBurst float64
	// MaxCampaigns bounds the bucket table; campaigns beyond it share
	// fate with the admitted majority (fail-open, default 1024).
	MaxCampaigns int
}

// withDefaults fills unset knobs.
func (c Config) withDefaults() Config {
	if c.Target <= 0 {
		c.Target = 25 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 4 * c.Target
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 1
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 64
	}
	if c.MaxLimit < c.MinLimit {
		c.MaxLimit = c.MinLimit
	}
	if c.InitialLimit <= 0 {
		c.InitialLimit = (c.MinLimit + c.MaxLimit) / 2
		if c.InitialLimit < c.MinLimit {
			c.InitialLimit = c.MinLimit
		}
	}
	if c.LatencyTarget <= 0 {
		c.LatencyTarget = 4 * c.Target
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = 0.7
	}
	if c.CampaignRate <= 0 {
		c.CampaignRate = 50
	}
	if c.CampaignBurst <= 0 {
		c.CampaignBurst = 2 * c.CampaignRate
	}
	if c.MaxCampaigns <= 0 {
		c.MaxCampaigns = 1024
	}
	return c
}

// Controller is the admission state machine. Safe for concurrent use;
// all decisions are serialised under one mutex (the critical sections
// are tiny arithmetic).
type Controller struct {
	mu      sync.Mutex
	cfg     Config
	codel   codel
	aimd    aimd
	buckets buckets
	drain   drainRate

	inflight int // admitted or degraded, not yet Done/Abandoned

	admitted  uint64
	degraded  uint64
	rejected  uint64
	abandoned uint64
}

// NewController builds a controller.
func NewController(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:     cfg,
		codel:   codel{target: cfg.Target, interval: cfg.Interval},
		aimd:    newAIMD(cfg),
		buckets: newBuckets(cfg.CampaignRate, cfg.CampaignBurst, cfg.MaxCampaigns),
	}
}

// Decide places one arriving request on the shedding ladder. campaign
// identifies the fair-share bucket ("" shares a default bucket). On
// Admit and Degrade the returned Ticket tracks the request through the
// queue; the caller must call exactly one of Done or Abandon on it. On
// Reject the ticket is nil.
func (c *Controller) Decide(now time.Duration, campaign string) (Decision, *Ticket) {
	c.mu.Lock()
	defer c.mu.Unlock()

	fair := c.buckets.allow(now, campaign)
	limit := c.aimd.limit()
	overloaded := c.codel.overloaded

	var dec Decision
	switch {
	case c.inflight >= c.cfg.MaxLimit:
		dec = Decision{Outcome: Reject, Reason: "saturated"}
	case c.inflight >= limit && !fair:
		dec = Decision{Outcome: Reject, Reason: "limit"}
	case c.inflight >= limit:
		dec = Decision{Outcome: Degrade, Reason: "limit"}
	case overloaded && !fair:
		dec = Decision{Outcome: Degrade, Reason: "fair-share"}
	case overloaded:
		dec = Decision{Outcome: Degrade, Reason: "queue-delay"}
	default:
		dec = Decision{Outcome: Admit}
	}

	switch dec.Outcome {
	case Reject:
		c.rejected++
		dec.RetryAfter = c.retryAfterLocked()
		return dec, nil
	case Degrade:
		c.degraded++
	default:
		c.admitted++
	}
	c.inflight++
	return dec, &Ticket{ctl: c, enqueued: now, degraded: dec.Outcome == Degrade}
}

// retryAfterLocked estimates how long a shed client should wait before
// retrying: the time the current backlog needs to drain at the measured
// completion rate, clamped to [1s, 30s].
func (c *Controller) retryAfterLocked() time.Duration {
	per := c.drain.perCompletion()
	if per <= 0 {
		return time.Second
	}
	d := time.Duration(float64(c.inflight+1) * float64(per))
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// RetryAfter is the controller's current backlog-drain estimate — the
// Retry-After the transport layer should attach to backpressure
// rejections that bypassed Decide (e.g. a full bounded queue).
func (c *Controller) RetryAfter(now time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retryAfterLocked()
}

// Snapshot is a point-in-time view of the controller for /stats and
// metric gauges.
type Snapshot struct {
	// Limit is the current adaptive concurrency+queue limit.
	Limit int `json:"limit"`
	// Inflight counts admitted requests not yet completed or abandoned.
	Inflight int `json:"inflight"`
	// Overloaded reports whether queue delay has exceeded the target
	// for a sustained interval (the CoDel latch).
	Overloaded bool `json:"overloaded"`
	// Admitted/Degraded/Rejected/Abandoned are lifetime decision counts.
	Admitted  uint64 `json:"admitted"`
	Degraded  uint64 `json:"degraded"`
	Rejected  uint64 `json:"rejected"`
	Abandoned uint64 `json:"abandoned"`
	// RetryAfterSeconds is the current backlog-drain estimate.
	RetryAfterSeconds float64 `json:"retryAfterSeconds"`
}

// Snapshot returns the current controller state.
func (c *Controller) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Snapshot{
		Limit:             c.aimd.limit(),
		Inflight:          c.inflight,
		Overloaded:        c.codel.overloaded,
		Admitted:          c.admitted,
		Degraded:          c.degraded,
		Rejected:          c.rejected,
		Abandoned:         c.abandoned,
		RetryAfterSeconds: c.retryAfterLocked().Seconds(),
	}
}

// Ticket tracks one admitted request from Decide to completion.
type Ticket struct {
	ctl      *Controller
	enqueued time.Duration
	degraded bool
	dequeued bool
	closed   bool
}

// Degraded reports whether the ticket was admitted on the degrade tier.
func (t *Ticket) Degraded() bool { return t != nil && t.degraded }

// Dequeued records that the worker picked the request up, feeding the
// observed queue wait into the CoDel detector. Returns the queue wait.
// Safe to skip (an abandoned request never dequeues); calling it twice
// keeps only the first observation.
func (t *Ticket) Dequeued(now time.Duration) time.Duration {
	if t == nil {
		return 0
	}
	wait := now - t.enqueued
	if wait < 0 {
		wait = 0
	}
	t.ctl.mu.Lock()
	defer t.ctl.mu.Unlock()
	if t.dequeued {
		return wait
	}
	t.dequeued = true
	t.ctl.codel.observe(now, wait)
	if t.ctl.codel.overloaded {
		t.ctl.aimd.decrease(now)
	}
	return wait
}

// Done releases the ticket after the request completed, feeding the
// end-to-end latency into the AIMD loop (successful completions only)
// and the completion into the drain-rate estimate.
func (t *Ticket) Done(now time.Duration, ok bool) {
	if t == nil {
		return
	}
	t.ctl.mu.Lock()
	defer t.ctl.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	t.ctl.inflight--
	t.ctl.drain.observe(now)
	if !ok {
		return
	}
	if latency := now - t.enqueued; latency > t.ctl.cfg.LatencyTarget {
		t.ctl.aimd.decrease(now)
	} else {
		t.ctl.aimd.increase()
	}
}

// Abandon releases the ticket without a completion: the caller vanished
// (context cancelled, enqueue failed) before the request was served.
func (t *Ticket) Abandon(now time.Duration) {
	if t == nil {
		return
	}
	t.ctl.mu.Lock()
	defer t.ctl.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	t.ctl.inflight--
	t.ctl.abandoned++
}

// drainRate is an EWMA of the interval between completions — the
// service's measured drain rate, powering dynamic Retry-After.
type drainRate struct {
	last    time.Duration
	started bool
	ewma    time.Duration
}

// drainAlpha weights the newest completion interval.
const drainAlpha = 0.2

func (d *drainRate) observe(now time.Duration) {
	if !d.started {
		d.started = true
		d.last = now
		return
	}
	iv := now - d.last
	d.last = now
	if iv < 0 {
		iv = 0
	}
	if d.ewma == 0 {
		d.ewma = iv
		return
	}
	d.ewma = time.Duration((1-drainAlpha)*float64(d.ewma) + drainAlpha*float64(iv))
}

// perCompletion is the smoothed seconds-per-completion (0 until two
// completions have been seen).
func (d *drainRate) perCompletion() time.Duration { return d.ewma }
