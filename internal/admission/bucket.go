package admission

import "time"

// buckets is the per-campaign fair-share token table. Each campaign
// refills at rate tokens/second up to burst; a request from a campaign
// with no token is "over share". Fair share is advisory, not a hard
// quota: the controller only consults it while the service is already
// shedding, so an idle fleet never throttles its one active campaign
// (work conservation), but under pressure the campaigns that caused the
// pressure degrade and reject first.
type buckets struct {
	rate  float64
	burst float64
	max   int
	m     map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Duration
}

func newBuckets(rate, burst float64, max int) buckets {
	return buckets{rate: rate, burst: burst, max: max, m: make(map[string]*bucket)}
}

// allow reports whether campaign is within its fair share at monotonic
// time now, consuming one token when it is.
func (bs *buckets) allow(now time.Duration, campaign string) bool {
	b, ok := bs.m[campaign]
	if !ok {
		if len(bs.m) >= bs.max {
			// Table full: fail open rather than starving late arrivals.
			return true
		}
		b = &bucket{tokens: bs.burst, last: now}
		bs.m[campaign] = b
	}
	b.tokens += bs.rate * (now - b.last).Seconds()
	if b.tokens > bs.burst {
		b.tokens = bs.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
