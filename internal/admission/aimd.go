package admission

import "time"

// aimd is the additive-increase/multiplicative-decrease concurrency
// limit (the TCP congestion-avoidance law applied to a server's
// admission window, as in Netflix's concurrency-limits): completions
// under the latency target grow the limit by ~1 per limit completions;
// an overload signal — a completion over target, or the CoDel detector
// latching — cuts it multiplicatively, at most once per window so one
// burst of slow completions costs one cut, not a collapse to MinLimit.
type aimd struct {
	cur      float64
	min, max float64
	dec      float64
	window   time.Duration

	cutArmed bool
	lastCut  time.Duration
}

func newAIMD(cfg Config) aimd {
	return aimd{
		cur:    float64(cfg.InitialLimit),
		min:    float64(cfg.MinLimit),
		max:    float64(cfg.MaxLimit),
		dec:    cfg.DecreaseFactor,
		window: cfg.Interval,
	}
}

// limit is the current integer limit (always >= MinLimit).
func (a *aimd) limit() int {
	l := int(a.cur)
	if l < int(a.min) {
		l = int(a.min)
	}
	return l
}

// increase applies one completion's additive growth.
func (a *aimd) increase() {
	a.cur += 1 / a.cur
	if a.cur > a.max {
		a.cur = a.max
	}
}

// decrease applies one multiplicative cut, rate-limited to one per
// window.
func (a *aimd) decrease(now time.Duration) {
	if a.cutArmed && now-a.lastCut < a.window {
		return
	}
	a.cutArmed = true
	a.lastCut = now
	a.cur *= a.dec
	if a.cur < a.min {
		a.cur = a.min
	}
}
