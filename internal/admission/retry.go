package admission

// This file is the package's one wall-clock edge: RetryPolicy's default
// Sleep seam is time.Sleep, so clients block real time between
// attempts. Everything else in the package takes time as a parameter.
// internal/admission/retry.go is file-scoped on the crowdlint
// no-wall-clock allowlist; tests and the chaos suite inject a no-op
// Sleep and stay deterministic.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// retryableError marks a wrapped error as safe to retry, optionally
// carrying the server's Retry-After hint. The sentinel chain is
// preserved through Unwrap so errors.Is keeps matching.
type retryableError struct {
	err   error
	after time.Duration
	hint  bool
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// Retryable implements the marker interface IsRetryable looks for.
func (e *retryableError) Retryable() bool { return true }

// RetryAfterHint implements the hint interface RetryAfterHint looks for.
func (e *retryableError) RetryAfterHint() (time.Duration, bool) { return e.after, e.hint }

// MarkRetryable wraps err as retryable: the request was shed by
// backpressure or shutdown draining, not failed, and a retry (against
// this replica later, or another replica now) can succeed.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err}
}

// MarkRetryableAfter wraps err as retryable with a server-derived
// Retry-After hint.
func MarkRetryableAfter(err error, after time.Duration) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err, after: after, hint: true}
}

// IsRetryable reports whether any error in the chain is marked
// retryable (the Retryable() bool marker interface).
func IsRetryable(err error) bool {
	var m interface{ Retryable() bool }
	return errors.As(err, &m) && m.Retryable()
}

// RetryAfterHint extracts the server's Retry-After hint from the error
// chain, if one was attached.
func RetryAfterHint(err error) (time.Duration, bool) {
	var h interface{ RetryAfterHint() (time.Duration, bool) }
	if errors.As(err, &h) {
		return h.RetryAfterHint()
	}
	return 0, false
}

// ErrBudgetExhausted wraps the last attempt's error when the shared
// retry budget refused a retry — the storm-prevention signal.
var ErrBudgetExhausted = errors.New("admission: retry budget exhausted")

// Budget is a token bucket shared across a fleet of retrying clients:
// every first attempt earns Ratio tokens (capped at Cap) and every
// retry spends one, bounding the fleet-wide retry amplification to
// 1+Ratio even when a shed causes every client to want a retry at once.
type Budget struct {
	mu     sync.Mutex
	ratio  float64
	cap    float64
	tokens float64
}

// NewBudget builds a budget earning ratio tokens per first attempt and
// holding at most cap; non-positive arguments default to ratio 0.1 and
// cap 10. The budget starts full so a cold fleet can absorb one shed.
func NewBudget(ratio, cap float64) *Budget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if cap <= 0 {
		cap = 10
	}
	return &Budget{ratio: ratio, cap: cap, tokens: cap}
}

// earn credits one first attempt.
func (b *Budget) earn() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

// spend consumes one retry token, reporting false when none remain.
func (b *Budget) spend() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// RetryPolicy drives a client's retries against a shedding service:
// capped seeded jittered exponential backoff, Retry-After honoring, an
// attempt cap, and an optional shared Budget.
type RetryPolicy struct {
	// MaxAttempts caps total attempts including the first (default 4).
	MaxAttempts int
	// Base/Factor/Max/Jitter parameterise the mathx backoff curve
	// (defaults 100ms, 2, 5s, 0.5).
	Base   time.Duration
	Factor float64
	Max    time.Duration
	Jitter float64
	// Seed drives the jitter stream so concurrent clients with distinct
	// seeds de-synchronise instead of retrying in lockstep.
	Seed int64
	// Budget, when non-nil, is consulted before every retry.
	Budget *Budget
	// Sleep is the wait seam (default time.Sleep).
	Sleep func(time.Duration)
	// Classify reports whether an error is worth retrying (default
	// IsRetryable).
	Classify func(error) bool
}

// Do runs op until it succeeds, fails terminally, exhausts the attempt
// cap or the budget, or ctx is done. Between attempts it sleeps the
// longer of the backoff schedule and the server's Retry-After hint.
func (p RetryPolicy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 4
	}
	base := p.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	factor := p.Factor
	if factor <= 0 {
		factor = 2
	}
	max := p.Max
	if max <= 0 {
		max = 5 * time.Second
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.5
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	classify := p.Classify
	if classify == nil {
		classify = IsRetryable
	}
	backoff := mathx.NewBackoff(base, factor, max, jitter, p.Seed)

	p.Budget.earn()
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return fmt.Errorf("%w (after %d attempts: %v)", cerr, attempt-1, err)
			}
			return cerr
		}
		err = op(ctx)
		if err == nil || !classify(err) {
			return err
		}
		if attempt >= attempts {
			return fmt.Errorf("admission: %d attempts exhausted: %w", attempts, err)
		}
		if !p.Budget.spend() {
			return fmt.Errorf("%w: %v", ErrBudgetExhausted, err)
		}
		delay := backoff.Next()
		if after, ok := RetryAfterHint(err); ok && after > delay {
			delay = after
		}
		sleep(delay)
	}
}
