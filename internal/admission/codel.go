package admission

import "time"

// codel is the queue-delay overload detector, after the CoDel AQM
// control law (Nichols & Jacobson): transient bursts are fine, but
// queue wait above target sustained for a full interval means the
// standing queue is not draining — the service is overloaded and must
// shed. The detector observes the wait of every dequeued request and
// latches overloaded until the wait drops back below target.
type codel struct {
	target   time.Duration
	interval time.Duration

	// armed is set while waits are above target; aboveUntil is the
	// deadline after which sustained excess latches overloaded.
	armed      bool
	aboveUntil time.Duration
	overloaded bool
}

// observe feeds one dequeue's queue wait at monotonic time now.
func (d *codel) observe(now, wait time.Duration) {
	if wait < d.target {
		d.armed = false
		d.overloaded = false
		return
	}
	if !d.armed {
		d.armed = true
		d.aboveUntil = now + d.interval
		return
	}
	if now >= d.aboveUntil {
		d.overloaded = true
	}
}
