package admission

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errShed = errors.New("shed")

func TestMarkRetryable(t *testing.T) {
	if IsRetryable(errShed) {
		t.Fatal("plain error classified retryable")
	}
	err := MarkRetryableAfter(errShed, 3*time.Second)
	if !IsRetryable(err) {
		t.Fatal("marked error not classified retryable")
	}
	if !errors.Is(err, errShed) {
		t.Fatal("marking broke the sentinel chain")
	}
	after, ok := RetryAfterHint(err)
	if !ok || after != 3*time.Second {
		t.Fatalf("hint %v/%v, want 3s/true", after, ok)
	}
	if _, ok := RetryAfterHint(MarkRetryable(errShed)); ok {
		t.Fatal("hint reported without one attached")
	}
	if MarkRetryable(nil) != nil || MarkRetryableAfter(nil, time.Second) != nil {
		t.Fatal("marking nil produced an error")
	}
}

func TestRetrySucceedsAfterSheds(t *testing.T) {
	var slept []time.Duration
	calls := 0
	p := RetryPolicy{
		MaxAttempts: 5,
		Seed:        1,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return MarkRetryable(errShed)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 || len(slept) != 2 {
		t.Fatalf("calls %d slept %d, want 3 and 2", calls, len(slept))
	}
	// Capped jittered exponential growth: the second delay draws from a
	// doubled base; both stay positive and under the cap.
	for i, d := range slept {
		if d <= 0 || d > 5*time.Second {
			t.Fatalf("delay %d = %v outside (0, 5s]", i, d)
		}
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	var slept []time.Duration
	calls := 0
	p := RetryPolicy{MaxAttempts: 2, Seed: 1, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	_ = p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			return MarkRetryableAfter(errShed, 7*time.Second)
		}
		return nil
	})
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Fatalf("slept %v, want the 7s Retry-After to dominate the backoff draw", slept)
	}
}

func TestRetryStopsOnTerminalError(t *testing.T) {
	calls := 0
	p := RetryPolicy{Sleep: func(time.Duration) {}}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return errShed // not marked retryable
	})
	if !errors.Is(err, errShed) || calls != 1 {
		t.Fatalf("err %v calls %d, want terminal error after one call", err, calls)
	}
}

func TestRetryAttemptCap(t *testing.T) {
	calls := 0
	p := RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return MarkRetryable(errShed)
	})
	if calls != 3 {
		t.Fatalf("calls %d, want exactly MaxAttempts", calls)
	}
	if !errors.Is(err, errShed) {
		t.Fatalf("err %v lost the cause", err)
	}
}

// TestRetryBudgetBoundsStorm: a fleet of synchronized clients against a
// hard-down service spends the shared budget once; total attempts stay
// near one per client instead of MaxAttempts per client.
func TestRetryBudgetBoundsStorm(t *testing.T) {
	budget := NewBudget(0.1, 5)
	const clients = 100
	attempts := 0
	for i := 0; i < clients; i++ {
		p := RetryPolicy{
			MaxAttempts: 4,
			Seed:        int64(i),
			Budget:      budget,
			Sleep:       func(time.Duration) {},
		}
		err := p.Do(context.Background(), func(context.Context) error {
			attempts++
			return MarkRetryable(errShed)
		})
		if !IsRetryable(err) && !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("client %d: err %v, want retryable or budget-exhausted", i, err)
		}
	}
	// 100 first attempts earn 10 tokens; plus the initial 5 in the
	// bucket, at most 15 retries may happen.
	if max := clients + 15; attempts > max {
		t.Fatalf("attempts %d, want <= %d (budget must bound the storm)", attempts, max)
	}
	if attempts <= clients {
		t.Fatalf("attempts %d, want some retries to have spent the budget", attempts)
	}
}

func TestRetryContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := RetryPolicy{
		MaxAttempts: 10,
		Sleep:       func(time.Duration) { cancel() },
	}
	err := p.Do(ctx, func(context.Context) error {
		calls++
		return MarkRetryable(errShed)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls %d, want 1 (cancellation during backoff stops the loop)", calls)
	}
}

// TestRetryDeterministicDelays: the same seed replays the same delay
// schedule.
func TestRetryDeterministicDelays(t *testing.T) {
	run := func() []time.Duration {
		var slept []time.Duration
		p := RetryPolicy{MaxAttempts: 6, Seed: 42, Sleep: func(d time.Duration) { slept = append(slept, d) }}
		_ = p.Do(context.Background(), func(context.Context) error { return MarkRetryable(errShed) })
		return slept
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("delay counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
