// Package parallel is the deterministic fork-join substrate under every
// hot loop of the reproduction: committee scoring in QSS, split search
// and gradient updates in GBDT training, per-example backpropagation in
// the neural substrate, and whole-campaign fan-out in the experiment
// runners.
//
// The package makes one promise the callers lean on everywhere:
// *scheduling never influences results*. Work items are identified by
// index, every output slot is owned by exactly one index, and any
// cross-item reduction is performed by the caller in fixed index order
// after the loop returns. Under that discipline a loop produces
// bit-identical results at any worker count — Workers=1 runs inline on
// the calling goroutine with zero scheduling overhead, Workers=N merely
// finishes sooner. There are no atomic float accumulations and no
// worker-order merges anywhere in this repository.
//
// Scheduling is chunked work-stealing off a single atomic cursor:
// contiguous index ranges keep cache locality on slice-shaped data while
// the shared cursor keeps workers busy when item costs are skewed (tree
// depths, expert sizes). Worker goroutines are spawned per call; the
// loops this package serves are coarse enough (microseconds to minutes
// per item) that pool reuse would buy nothing measurable.
//
// The *Obs loop variants accept an Observer that receives per-chunk
// scheduling events — the measurement hook internal/prof builds its
// per-worker utilization profiles on. Observation is strictly passive:
// this package reads no clock and an observer cannot influence
// scheduling, so observed and unobserved loops produce identical
// results.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count configuration value: n > 0 is used as
// given, anything else (the zero value of every Workers field in this
// repository) means runtime.GOMAXPROCS(0). Callers that must distinguish
// "explicitly sequential" from "default" therefore use 1, not 0.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Observer receives scheduling events from one observed loop, the hook
// the profiling layer (internal/prof) uses to attribute busy and idle
// time per worker without this package ever reading a clock itself.
//
// Event contract: LoopStart is delivered on the calling goroutine before
// any worker runs; ChunkStart/ChunkEnd pairs then arrive per contiguous
// index range, each pair on the goroutine of the worker slot it names
// (slots are disjoint, so per-slot state needs no locking); LoopEnd is
// delivered on the calling goroutine after every worker has joined.
// Observers must not mutate loop state — observation never influences
// scheduling or results.
type Observer interface {
	// LoopStart announces the resolved worker count, item count and
	// chunk size of the loop about to run.
	LoopStart(workers, n, chunk int)
	// ChunkStart marks worker picking up indices [lo, hi).
	ChunkStart(worker, lo, hi int)
	// ChunkEnd marks worker finishing indices [lo, hi).
	ChunkEnd(worker, lo, hi int)
	// LoopEnd marks the join of every worker.
	LoopEnd()
}

// For runs fn(i) for every i in [0, n), distributing indices across up to
// `workers` goroutines (resolved via Workers). fn must not touch state
// shared with other indices except through its own output slot; under
// that contract the result is independent of the worker count. A resolved
// worker count of 1 — or n < 2 — executes inline on the caller's
// goroutine in index order with no goroutines spawned.
func For(workers, n int, fn func(i int)) {
	ForWorker(workers, n, func(_, i int) { fn(i) })
}

// ForObs is For with an optional scheduling observer; a nil observer is
// exactly For.
func ForObs(workers, n int, o Observer, fn func(i int)) {
	ForWorkerObs(workers, n, o, func(_, i int) { fn(i) })
}

// ForWorker is For where fn also receives the worker slot w in
// [0, resolved workers) running the index — the hook for per-worker
// scratch buffers (split-search orderings, softmax temporaries,
// backpropagation activations). Slot 0 is the calling goroutine whenever
// execution is inline.
//
// A panic inside fn is re-raised on the calling goroutine after all
// workers stop (first panicking worker wins; with multiple simultaneous
// panics the surviving value is scheduling-dependent, but by then the
// process is crashing anyway).
func ForWorker(workers, n int, fn func(worker, i int)) {
	ForWorkerObs(workers, n, nil, fn)
}

// ForWorkerObs is ForWorker with an optional scheduling observer. A nil
// observer costs one predictable branch per chunk; a non-nil observer
// receives the event stream documented on Observer. Observation is
// read-only: results are bit-identical with and without one.
func ForWorkerObs(workers, n int, o Observer, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 || n == 1 {
		if o != nil {
			o.LoopStart(1, n, n)
			o.ChunkStart(0, 0, n)
		}
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		if o != nil {
			o.ChunkEnd(0, 0, n)
			o.LoopEnd()
		}
		return
	}

	// Chunked dynamic scheduling: contiguous ranges off one atomic
	// cursor. Four chunks per worker balances locality against skew.
	chunk := n / (w * 4)
	if chunk < 1 {
		chunk = 1
	}
	if o != nil {
		o.LoopStart(w, n, chunk)
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		once   sync.Once
		fault  any
	)
	body := func(slot int) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				once.Do(func() { fault = r })
			}
		}()
		for {
			hi := int(cursor.Add(int64(chunk)))
			lo := hi - chunk
			if lo >= n {
				return
			}
			if hi > n {
				hi = n
			}
			if o != nil {
				o.ChunkStart(slot, lo, hi)
			}
			for i := lo; i < hi; i++ {
				fn(slot, i)
			}
			if o != nil {
				o.ChunkEnd(slot, lo, hi)
			}
		}
	}
	wg.Add(w)
	for slot := 1; slot < w; slot++ {
		go body(slot)
	}
	body(0) // the caller is worker slot 0
	wg.Wait()
	if o != nil {
		o.LoopEnd()
	}
	if fault != nil {
		panic(fault)
	}
}

// Map runs fn(i) for every i in [0, n) and returns the results in index
// order. The ordered output slice is the deterministic merge: no matter
// which worker computed an element, out[i] is fn(i).
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// ForErr runs fn(i) for every i in [0, n) and returns the error of the
// lowest failing index — the same error a sequential loop that collects
// all failures would report first, so error selection is deterministic
// at any worker count. All indices run even when an early one fails;
// the fan-outs this serves (campaign arms, committee experts) are small
// and their work is side-effect-free on failure.
func ForErr(workers, n int, fn func(i int) error) error {
	return ForErrObs(workers, n, nil, fn)
}

// ForErrObs is ForErr with an optional scheduling observer; a nil
// observer is exactly ForErr.
func ForErrObs(workers, n int, o Observer, fn func(i int) error) error {
	errs := make([]error, n)
	ForObs(workers, n, o, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
