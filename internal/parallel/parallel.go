// Package parallel is the deterministic fork-join substrate under every
// hot loop of the reproduction: committee scoring in QSS, split search
// and gradient updates in GBDT training, per-example backpropagation in
// the neural substrate, and whole-campaign fan-out in the experiment
// runners.
//
// The package makes one promise the callers lean on everywhere:
// *scheduling never influences results*. Work items are identified by
// index, every output slot is owned by exactly one index, and any
// cross-item reduction is performed by the caller in fixed index order
// after the loop returns. Under that discipline a loop produces
// bit-identical results at any worker count — Workers=1 runs inline on
// the calling goroutine with zero scheduling overhead, Workers=N merely
// finishes sooner. There are no atomic float accumulations and no
// worker-order merges anywhere in this repository.
//
// Scheduling is segmented work stealing: the index space is split into
// one contiguous segment per worker, each with its own atomic cursor.
// A worker drains its own segment in chunk-sized claims and only then
// steals from other segments, so under light contention every worker
// processes a near-equal contiguous share (cache locality on
// slice-shaped data) while skewed item costs (tree depths, expert
// sizes) still rebalance through stealing. Worker goroutines are
// spawned per call; the loops this package serves are coarse enough
// (microseconds to minutes per item) that pool reuse would buy nothing
// measurable.
//
// Chunk sizes are governed by Grain, a caller-supplied cost hint: a
// chunk must be large enough to amortize the cross-goroutine handoff it
// costs, and a loop whose total work cannot fill more than one such
// chunk collapses to the inline sequential path. Callers that know an
// item's order-of-magnitude cost pass it; the zero Grain preserves the
// historical n/(workers·4) chunking.
//
// The *Obs loop variants accept an Observer that receives per-chunk
// scheduling events — the measurement hook internal/prof builds its
// per-worker utilization profiles on. Observation is strictly passive:
// this package reads no clock and an observer cannot influence
// scheduling, so observed and unobserved loops produce identical
// results.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count configuration value: n > 0 is used as
// given, anything else (the zero value of every Workers field in this
// repository) means runtime.GOMAXPROCS(0). Callers that must distinguish
// "explicitly sequential" from "default" therefore use 1, not 0.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// amortizeNs is the scheduling budget one chunk must pay for: the
// order-of-magnitude cost of handing a work unit to another goroutine
// (spawn share, cursor contention, cache warm-up) with a wide safety
// margin. A chunk is sized so its useful work is ≥ this budget, which
// is what turned the committed workers=4 RunCycle regression around:
// ten-image voting loops at ~4µs/item no longer fan out at all.
const amortizeNs = 100_000

// Grain is a caller-supplied cost hint governing how a loop is cut into
// chunks. The zero value preserves the historical policy (four chunks
// per worker, minimum one item).
type Grain struct {
	// MinChunk is the smallest index range worth handing to another
	// goroutine, for callers that know their natural batch shape
	// (e.g. one expert retrain, one minibatch). 0 means no floor.
	MinChunk int
	// CostNs is the order-of-magnitude cost of one item in
	// nanoseconds. When set, chunks are sized to ceil(amortize/cost)
	// items so every handoff is paid for. 0 means unknown.
	CostNs int64
}

// Effective resolves the shape a grained loop will actually run with:
// the effective worker count and chunk size after applying the cost
// policy. w == 1 means the loop will run inline on the caller's
// goroutine. Callers with separate sequential code paths (e.g. the
// neural trainer's staged-vs-sequential split) use this to pick a path
// consistent with what the For* functions would do.
func (g Grain) Effective(workers, n int) (w, chunk int) {
	if n <= 0 {
		return 1, 0
	}
	w = Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		return 1, n
	}
	// Historical default: four chunks per worker balances locality
	// against cost skew.
	chunk = n / (w * 4)
	if chunk < 1 {
		chunk = 1
	}
	if g.MinChunk > chunk {
		chunk = g.MinChunk
	}
	if g.CostNs > 0 {
		if need := int((amortizeNs + g.CostNs - 1) / g.CostNs); need > chunk {
			chunk = need
		}
	}
	if chunk >= n {
		return 1, n
	}
	if eff := (n + chunk - 1) / chunk; eff < w {
		w = eff
	}
	if w <= 1 {
		return 1, n
	}
	return w, chunk
}

// Observer receives scheduling events from one observed loop, the hook
// the profiling layer (internal/prof) uses to attribute busy and idle
// time per worker without this package ever reading a clock itself.
//
// Event contract: LoopStart is delivered on the calling goroutine before
// any worker runs, announcing the *effective* worker count and chunk
// size after grain policy (an inline-collapsed loop reports workers=1,
// chunk=n); ChunkStart/ChunkEnd pairs then arrive per contiguous index
// range, each pair on the goroutine of the worker slot it names (slots
// are disjoint, so per-slot state needs no locking); LoopEnd is
// delivered on the calling goroutine after every worker has joined.
// Observers must not mutate loop state — observation never influences
// scheduling or results.
type Observer interface {
	// LoopStart announces the resolved worker count, item count and
	// chunk size of the loop about to run.
	LoopStart(workers, n, chunk int)
	// ChunkStart marks worker picking up indices [lo, hi).
	ChunkStart(worker, lo, hi int)
	// ChunkEnd marks worker finishing indices [lo, hi).
	ChunkEnd(worker, lo, hi int)
	// LoopEnd marks the join of every worker.
	LoopEnd()
}

// For runs fn(i) for every i in [0, n), distributing indices across up to
// `workers` goroutines (resolved via Workers). fn must not touch state
// shared with other indices except through its own output slot; under
// that contract the result is independent of the worker count. A resolved
// worker count of 1 — or n < 2 — executes inline on the caller's
// goroutine in index order with no goroutines spawned.
func For(workers, n int, fn func(i int)) {
	ForWorkerGrainObs(workers, n, Grain{}, nil, func(_, i int) { fn(i) })
}

// ForObs is For with an optional scheduling observer; a nil observer is
// exactly For.
func ForObs(workers, n int, o Observer, fn func(i int)) {
	ForWorkerGrainObs(workers, n, Grain{}, o, func(_, i int) { fn(i) })
}

// ForGrain is For with a chunking cost hint.
func ForGrain(workers, n int, g Grain, fn func(i int)) {
	ForWorkerGrainObs(workers, n, g, nil, func(_, i int) { fn(i) })
}

// ForGrainObs is For with a chunking cost hint and an optional
// scheduling observer.
func ForGrainObs(workers, n int, g Grain, o Observer, fn func(i int)) {
	ForWorkerGrainObs(workers, n, g, o, func(_, i int) { fn(i) })
}

// ForWorker is For where fn also receives the worker slot w in
// [0, resolved workers) running the index — the hook for per-worker
// scratch buffers (split-search orderings, softmax temporaries,
// backpropagation activations). Slot 0 is the calling goroutine whenever
// execution is inline.
//
// A panic inside fn is re-raised on the calling goroutine after all
// workers stop (first panicking worker wins; with multiple simultaneous
// panics the surviving value is scheduling-dependent, but by then the
// process is crashing anyway).
func ForWorker(workers, n int, fn func(worker, i int)) {
	ForWorkerGrainObs(workers, n, Grain{}, nil, fn)
}

// ForWorkerObs is ForWorker with an optional scheduling observer. A nil
// observer costs one predictable branch per chunk; a non-nil observer
// receives the event stream documented on Observer. Observation is
// read-only: results are bit-identical with and without one.
func ForWorkerObs(workers, n int, o Observer, fn func(worker, i int)) {
	ForWorkerGrainObs(workers, n, Grain{}, o, fn)
}

// segCursor is one segment's claim cursor, padded to a cache line so
// workers draining their own segments do not false-share.
type segCursor struct {
	claimed atomic.Int64
	_       [56]byte
}

// ForWorkerGrainObs is the full-generality loop: per-worker slots, a
// chunking cost hint and an optional observer. All other loop variants
// delegate here.
//
// Scheduling: the index space [0, n) is cut into one contiguous segment
// per effective worker. Each worker drains its own segment in
// chunk-sized claims off the segment's atomic cursor, then steals from
// the other segments in ring order. The segment start keeps chunk
// distribution near-even when item costs are uniform (every worker owns
// ~n/w contiguous indices) while stealing preserves the load balancing
// the single shared cursor used to provide — without its failure mode,
// where the caller's slot 0 drained the whole cursor before spawned
// goroutines were scheduled at all.
func ForWorkerGrainObs(workers, n int, g Grain, o Observer, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w, chunk := g.Effective(workers, n)
	if w <= 1 {
		if o != nil {
			o.LoopStart(1, n, n)
			o.ChunkStart(0, 0, n)
		}
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		if o != nil {
			o.ChunkEnd(0, 0, n)
			o.LoopEnd()
		}
		return
	}

	if o != nil {
		o.LoopStart(w, n, chunk)
	}
	segs := make([]segCursor, w)
	var (
		wg    sync.WaitGroup
		once  sync.Once
		fault any
	)
	// claim takes the next chunk of segment s, clamped to the segment
	// bounds. Segment s owns [s·n/w, (s+1)·n/w); cursors are monotonic
	// so an exhausted segment stays exhausted.
	claim := func(s int) (lo, hi int, ok bool) {
		base, end := s*n/w, (s+1)*n/w
		off := int(segs[s].claimed.Add(int64(chunk))) - chunk
		lo = base + off
		if lo >= end {
			return 0, 0, false
		}
		hi = lo + chunk
		if hi > end {
			hi = end
		}
		return lo, hi, true
	}
	body := func(slot int) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				once.Do(func() { fault = r })
			}
		}()
		cur, misses := slot, 0
		for misses < w {
			lo, hi, ok := claim(cur)
			if !ok {
				cur++
				if cur == w {
					cur = 0
				}
				misses++
				continue
			}
			misses = 0
			if o != nil {
				o.ChunkStart(slot, lo, hi)
			}
			for i := lo; i < hi; i++ {
				fn(slot, i)
			}
			if o != nil {
				o.ChunkEnd(slot, lo, hi)
			}
		}
	}
	wg.Add(w)
	for slot := 1; slot < w; slot++ {
		go body(slot)
	}
	// Give spawned workers a chance to reach their own segments before
	// slot 0 starts; without this yield a single-P runtime let the
	// caller drain essentially every chunk (5112/5120 observed).
	runtime.Gosched()
	body(0) // the caller is worker slot 0
	wg.Wait()
	if o != nil {
		o.LoopEnd()
	}
	if fault != nil {
		panic(fault)
	}
}

// Detach runs fn on its own goroutine and returns a join function.
// Calling join blocks until fn completes and returns fn's error; a
// panic inside fn is captured and re-raised on the joining goroutine,
// so a detached failure can never escape unsupervised. join may be
// called more than once; every call reports the same outcome.
//
// This is the single-task complement to the fork-join loops above —
// the seam core's pipelined campaign runner uses to overlap one
// cycle's durable commit with the next cycle's compute.
func Detach(fn func() error) (join func() error) {
	done := make(chan struct{})
	var (
		err   error
		fault any
	)
	go func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil {
				fault = r
			}
		}()
		err = fn()
	}()
	return func() error {
		<-done
		if fault != nil {
			panic(fault)
		}
		return err
	}
}

// Map runs fn(i) for every i in [0, n) and returns the results in index
// order. The ordered output slice is the deterministic merge: no matter
// which worker computed an element, out[i] is fn(i).
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// ForErr runs fn(i) for every i in [0, n) and returns the error of the
// lowest failing index — the same error a sequential loop that collects
// all failures would report first, so error selection is deterministic
// at any worker count. All indices run even when an early one fails;
// the fan-outs this serves (campaign arms, committee experts) are small
// and their work is side-effect-free on failure.
func ForErr(workers, n int, fn func(i int) error) error {
	return ForErrGrainObs(workers, n, Grain{}, nil, fn)
}

// ForErrObs is ForErr with an optional scheduling observer; a nil
// observer is exactly ForErr.
func ForErrObs(workers, n int, o Observer, fn func(i int) error) error {
	return ForErrGrainObs(workers, n, Grain{}, o, fn)
}

// ForErrGrainObs is ForErr with a chunking cost hint and an optional
// scheduling observer.
func ForErrGrainObs(workers, n int, g Grain, o Observer, fn func(i int) error) error {
	errs := make([]error, n)
	ForGrainObs(workers, n, g, o, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
