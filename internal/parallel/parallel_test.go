package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolve(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			hits := make([]int32, n)
			For(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForWorkerSlotsInRange(t *testing.T) {
	const workers, n = 4, 200
	var bad atomic.Int32
	ForWorker(workers, n, func(w, i int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d calls saw an out-of-range worker slot", bad.Load())
	}
}

func TestForSequentialOrderAtOneWorker(t *testing.T) {
	var order []int
	For(1, 50, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("Workers=1 must run in index order; position %d got %d", i, v)
		}
	}
}

func TestMapOrderedAtAnyWorkerCount(t *testing.T) {
	want := Map(1, 123, func(i int) int { return i * i })
	for _, workers := range []int{2, 5, 16} {
		got := Map(workers, 123, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	errAt := func(fail ...int) func(i int) error {
		set := map[int]bool{}
		for _, f := range fail {
			set[f] = true
		}
		return func(i int) error {
			if set[i] {
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		}
	}
	for _, workers := range []int{1, 4, 13} {
		if err := ForErr(workers, 40, errAt()); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		err := ForErr(workers, 40, errAt(31, 7, 22))
		if err == nil || err.Error() != "fail@7" {
			t.Fatalf("workers=%d: got %v, want fail@7", workers, err)
		}
	}
}

func TestForPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
			}()
			For(workers, 100, func(i int) {
				if i == 42 {
					panic(errors.New("boom"))
				}
			})
		}()
	}
}

// TestDeterministicReductionShape documents the discipline every caller
// follows: parallel stage writes per-index slots, the reduction runs
// sequentially in index order afterwards. The float sum here is
// bit-identical across worker counts because the additions happen in the
// same order regardless of scheduling.
func TestDeterministicReductionShape(t *testing.T) {
	n := 10_000
	reduce := func(workers int) float64 {
		parts := Map(workers, n, func(i int) float64 { return 1.0 / float64(i+1) })
		var sum float64
		for _, p := range parts { // fixed index order
			sum += p
		}
		return sum
	}
	want := reduce(1)
	for _, workers := range []int{2, 3, 8} {
		if got := reduce(workers); got != want {
			t.Fatalf("workers=%d: sum %x differs from sequential %x", workers, got, want)
		}
	}
}

// recordingObserver captures the scheduling event stream for inspection.
// Per-slot counters rely on the Observer contract (disjoint slots, loop
// start/end on the caller's goroutine) rather than atomics, so the race
// detector also validates that contract.
type recordingObserver struct {
	workers, n, chunk int
	loopStarts        int
	loopEnds          int
	starts, ends      []int   // chunk events per worker slot
	covered           []int32 // per-index coverage from ChunkStart ranges
	open              []int   // currently open chunks per slot
}

func (r *recordingObserver) LoopStart(workers, n, chunk int) {
	r.loopStarts++
	r.workers, r.n, r.chunk = workers, n, chunk
	r.starts = make([]int, workers)
	r.ends = make([]int, workers)
	r.open = make([]int, workers)
	r.covered = make([]int32, n)
}

func (r *recordingObserver) ChunkStart(worker, lo, hi int) {
	r.starts[worker]++
	r.open[worker]++
	for i := lo; i < hi; i++ {
		atomic.AddInt32(&r.covered[i], 1)
	}
}

func (r *recordingObserver) ChunkEnd(worker, lo, hi int) {
	r.ends[worker]++
	r.open[worker]--
}

func (r *recordingObserver) LoopEnd() { r.loopEnds++ }

func TestForObsEventStreamCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{1, 2, 9, 100} {
			rec := &recordingObserver{}
			var ran atomic.Int32
			ForObs(workers, n, rec, func(i int) { ran.Add(1) })
			if int(ran.Load()) != n {
				t.Fatalf("workers=%d n=%d: fn ran %d times", workers, n, ran.Load())
			}
			if rec.loopStarts != 1 || rec.loopEnds != 1 {
				t.Fatalf("workers=%d n=%d: loop events %d/%d, want 1/1", workers, n, rec.loopStarts, rec.loopEnds)
			}
			if rec.workers < 1 || rec.workers > Workers(workers) || rec.workers > n {
				t.Fatalf("workers=%d n=%d: reported worker count %d out of range", workers, n, rec.workers)
			}
			for i, c := range rec.covered {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered by %d chunks", workers, n, i, c)
				}
			}
			for w := 0; w < rec.workers; w++ {
				if rec.starts[w] != rec.ends[w] {
					t.Fatalf("workers=%d n=%d: slot %d has %d starts but %d ends", workers, n, w, rec.starts[w], rec.ends[w])
				}
				if rec.open[w] != 0 {
					t.Fatalf("workers=%d n=%d: slot %d left %d chunks open", workers, n, w, rec.open[w])
				}
			}
		}
	}
}

// TestForObsZeroItemsEmitsNothing: the n=0 early return must not fire
// loop events (there is no loop to profile).
func TestForObsZeroItemsEmitsNothing(t *testing.T) {
	rec := &recordingObserver{}
	ForObs(4, 0, rec, func(int) { t.Fatal("fn ran for n=0") })
	if rec.loopStarts != 0 || rec.loopEnds != 0 {
		t.Fatalf("n=0 emitted loop events %d/%d", rec.loopStarts, rec.loopEnds)
	}
}

// TestForObsIdenticalResults: observation must not perturb outputs.
func TestForObsIdenticalResults(t *testing.T) {
	want := Map(4, 257, func(i int) float64 { return 1.0 / float64(i+1) })
	got := make([]float64, 257)
	ForObs(4, 257, &recordingObserver{}, func(i int) { got[i] = 1.0 / float64(i+1) })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("observed loop diverged at %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestForErrObsPreservesErrorSelection(t *testing.T) {
	rec := &recordingObserver{}
	err := ForErrObs(4, 40, rec, func(i int) error {
		if i == 7 || i == 31 {
			return fmt.Errorf("fail@%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail@7" {
		t.Fatalf("got %v, want fail@7", err)
	}
	if rec.loopEnds != 1 {
		t.Fatalf("loop end events = %d", rec.loopEnds)
	}
}

func TestGrainEffective(t *testing.T) {
	cases := []struct {
		name      string
		g         Grain
		workers   int
		n         int
		wantW     int
		wantChunk int
	}{
		{"zero grain keeps historical chunking", Grain{}, 4, 100, 4, 6},
		{"cheap cost hint below default is ignored", Grain{CostNs: 50_000}, 4, 100, 4, 6},
		{"min chunk floor reduces workers", Grain{MinChunk: 50}, 4, 100, 2, 50},
		{"expensive handoff collapses tiny loop inline", Grain{CostNs: 4_000}, 4, 10, 1, 10},
		{"cost hint grows chunk", Grain{CostNs: 1_000}, 4, 1000, 4, 100},
		{"single worker always inline", Grain{}, 1, 100, 1, 100},
		{"empty loop", Grain{}, 4, 0, 1, 0},
		{"one item", Grain{CostNs: 1}, 4, 1, 1, 1},
	}
	for _, tc := range cases {
		w, chunk := tc.g.Effective(tc.workers, tc.n)
		if w != tc.wantW || chunk != tc.wantChunk {
			t.Errorf("%s: Effective(%d, %d) = (%d, %d), want (%d, %d)",
				tc.name, tc.workers, tc.n, w, chunk, tc.wantW, tc.wantChunk)
		}
	}
}

// TestGrainInlineCollapseObserved: a loop whose items are too cheap to
// amortize a handoff must run inline and report itself as one worker,
// one chunk — the signal internal/prof counts as an inline collapse.
func TestGrainInlineCollapseObserved(t *testing.T) {
	rec := &recordingObserver{}
	var order []int
	ForGrainObs(8, 10, Grain{CostNs: 4_000}, rec, func(i int) { order = append(order, i) })
	if rec.workers != 1 || rec.chunk != 10 {
		t.Fatalf("reported workers=%d chunk=%d, want 1/10 (inline collapse)", rec.workers, rec.chunk)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("inline collapse must run in index order; position %d got %d", i, v)
		}
	}
}

// TestGrainCoversEveryIndexOnce: grained scheduling must preserve the
// exactly-once coverage contract at every worker count and hint shape.
func TestGrainCoversEveryIndexOnce(t *testing.T) {
	grains := []Grain{{}, {MinChunk: 7}, {CostNs: 500}, {MinChunk: 3, CostNs: 25_000}}
	for _, g := range grains {
		for _, workers := range []int{1, 2, 4, 16} {
			for _, n := range []int{0, 1, 5, 64, 1000} {
				hits := make([]int32, n)
				ForGrain(workers, n, g, func(i int) { atomic.AddInt32(&hits[i], 1) })
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("grain=%+v workers=%d n=%d: index %d hit %d times", g, workers, n, i, h)
					}
				}
			}
		}
	}
}

// distObserver counts items per worker slot. Per-slot writes need no
// locking: the Observer contract delivers each slot's events on one
// goroutine.
type distObserver struct {
	items [64]int
}

func (d *distObserver) LoopStart(workers, n, chunk int) {}
func (d *distObserver) ChunkStart(worker, lo, hi int)   { d.items[worker] += hi - lo }
func (d *distObserver) ChunkEnd(worker, lo, hi int)     {}
func (d *distObserver) LoopEnd()                        {}

// TestChunkDistributionNearEven is the regression test for the
// chunk-starvation bug: with the old single shared cursor, slot 0 (the
// calling goroutine) claimed essentially every chunk before spawned
// workers were scheduled — the profiler measured 5112/5120 items on one
// worker. Segmented cursors give each worker its own contiguous share,
// so for item counts ≫ workers every slot must process a meaningful
// fraction even on an oversubscribed machine.
func TestChunkDistributionNearEven(t *testing.T) {
	const workers, n = 4, 4096
	// Pin a single P so interleaving is decided by the Go scheduler's
	// run queue, not by OS thread timeslices: with GOMAXPROCS > cores,
	// millisecond-scale OS slices let one worker drain and steal most
	// segments before the others' threads ever run, making the
	// distribution a coin flip. One P plus the per-item yield below
	// gives fair round-robin on any host — and the starved-worker bug
	// this guards against was a single-P phenomenon in the first place.
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	rec := &distObserver{}
	ForWorkerObs(workers, n, rec, func(_, i int) {
		// Yield so all workers interleave even on the single P.
		runtime.Gosched()
	})

	total := 0
	for slot := 0; slot < workers; slot++ {
		total += rec.items[slot]
	}
	if total != n {
		t.Fatalf("items accounted = %d, want %d", total, n)
	}
	// Each slot owns a ~n/w segment that others only steal after
	// draining their own, so every slot must get a real share and no
	// slot may monopolize the loop.
	min := n / (8 * workers)
	for slot := 0; slot < workers; slot++ {
		if rec.items[slot] < min {
			t.Errorf("slot %d processed %d items, want >= %d (starved)", slot, rec.items[slot], min)
		}
	}
	if rec.items[0] > n/2 {
		t.Errorf("slot 0 processed %d/%d items: caller monopolized the cursor", rec.items[0], n)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var sink atomic.Int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				For(workers, 64, func(j int) {
					if j == 63 {
						sink.Add(1)
					}
				})
			}
		})
	}
}
