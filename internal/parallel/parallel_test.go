package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolve(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			hits := make([]int32, n)
			For(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForWorkerSlotsInRange(t *testing.T) {
	const workers, n = 4, 200
	var bad atomic.Int32
	ForWorker(workers, n, func(w, i int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d calls saw an out-of-range worker slot", bad.Load())
	}
}

func TestForSequentialOrderAtOneWorker(t *testing.T) {
	var order []int
	For(1, 50, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("Workers=1 must run in index order; position %d got %d", i, v)
		}
	}
}

func TestMapOrderedAtAnyWorkerCount(t *testing.T) {
	want := Map(1, 123, func(i int) int { return i * i })
	for _, workers := range []int{2, 5, 16} {
		got := Map(workers, 123, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	errAt := func(fail ...int) func(i int) error {
		set := map[int]bool{}
		for _, f := range fail {
			set[f] = true
		}
		return func(i int) error {
			if set[i] {
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		}
	}
	for _, workers := range []int{1, 4, 13} {
		if err := ForErr(workers, 40, errAt()); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		err := ForErr(workers, 40, errAt(31, 7, 22))
		if err == nil || err.Error() != "fail@7" {
			t.Fatalf("workers=%d: got %v, want fail@7", workers, err)
		}
	}
}

func TestForPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
			}()
			For(workers, 100, func(i int) {
				if i == 42 {
					panic(errors.New("boom"))
				}
			})
		}()
	}
}

// TestDeterministicReductionShape documents the discipline every caller
// follows: parallel stage writes per-index slots, the reduction runs
// sequentially in index order afterwards. The float sum here is
// bit-identical across worker counts because the additions happen in the
// same order regardless of scheduling.
func TestDeterministicReductionShape(t *testing.T) {
	n := 10_000
	reduce := func(workers int) float64 {
		parts := Map(workers, n, func(i int) float64 { return 1.0 / float64(i+1) })
		var sum float64
		for _, p := range parts { // fixed index order
			sum += p
		}
		return sum
	}
	want := reduce(1)
	for _, workers := range []int{2, 3, 8} {
		if got := reduce(workers); got != want {
			t.Fatalf("workers=%d: sum %x differs from sequential %x", workers, got, want)
		}
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var sink atomic.Int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				For(workers, 64, func(j int) {
					if j == 63 {
						sink.Add(1)
					}
				})
			}
		})
	}
}
