package chaos

import (
	"io"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/experiments"
	"github.com/crowdlearn/crowdlearn/internal/faults"
	"github.com/crowdlearn/crowdlearn/internal/supervise"
)

// The laboratory (dataset + pilot) is expensive and read-only; build it
// once and share it across every parallel scenario.
var (
	envOnce   sync.Once
	envShared *experiments.Env
	envErr    error
)

func testEnv(t testing.TB) *experiments.Env {
	t.Helper()
	envOnce.Do(func() {
		envShared, envErr = experiments.NewEnv(experiments.DefaultConfig())
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envShared
}

func testRunner(t testing.TB) *Runner {
	return &Runner{
		Env:    testEnv(t),
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

// TestChaosCatalog drives every scenario in the catalog and enforces the
// four supervision invariants (byte-identical recovery, failure-domain
// isolation, bounded restarts, observable breaker transitions).
func TestChaosCatalog(t *testing.T) {
	testEnv(t) // build the lab before the parallel fan-out
	for _, sc := range Catalog() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res := testRunner(t).Run(sc, t.TempDir())
			for _, problem := range res.Check() {
				t.Error(problem)
			}
		})
	}
}

// TestChaosDeterministic re-runs one panic scenario and one outage
// scenario and requires identical final states: the whole harness —
// kills, restarts, recovery, breaker — is a pure function of the seeds.
func TestChaosDeterministic(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"panic-mid-run", "outage-trips-breaker"} {
		var sc Scenario
		for _, c := range Catalog() {
			if c.Name == name {
				sc = c
			}
		}
		if sc.Name == "" {
			t.Fatalf("scenario %s missing from catalog", name)
		}
		a := testRunner(t).Run(sc, t.TempDir())
		b := testRunner(t).Run(sc, t.TempDir())
		if len(a.Check()) != 0 || len(b.Check()) != 0 {
			t.Fatalf("%s: runs not clean: %v / %v", name, a.Check(), b.Check())
		}
		for i := range a.Campaigns {
			if string(a.Campaigns[i].FinalState) != string(b.Campaigns[i].FinalState) {
				t.Errorf("%s: campaign %s final state differs across identical runs", name, a.Campaigns[i].ID)
			}
		}
	}
}

// TestQuarantineMidOutage pins the satellite edge case in detail: a
// campaign that exhausts its restart budget during a sustained platform
// outage lands in quarantine, its sibling keeps cycling untouched, and
// the quarantined campaign's health reports the failure before the
// operator resume brings it back.
func TestQuarantineMidOutage(t *testing.T) {
	t.Parallel()
	sc := Scenario{
		Name: "quarantine-mid-outage-detail", Seed: 41, Cycles: 5,
		Campaigns: []CampaignPlan{
			{Faults: faults.Config{OutageDuration: 4 * time.Hour}, PanicAt: []int{2, 3, 4}},
			{},
		},
		Restart:          &supervise.RestartPolicy{MaxRestarts: 2},
		ExpectQuarantine: []int{0},
	}
	res := testRunner(t).Run(sc, t.TempDir())
	for _, problem := range res.Check() {
		t.Error(problem)
	}
	sick, healthy := res.Campaigns[0], res.Campaigns[1]
	if !sick.Quarantined {
		t.Fatalf("campaign did not quarantine: %+v errors=%v", sick.Health, sick.AssessErrors)
	}
	// The driver observed quarantine through the serving API.
	var sawQuarantine bool
	for _, e := range sick.AssessErrors {
		if strings.Contains(e, "quarantined") {
			sawQuarantine = true
		}
	}
	if !sawQuarantine {
		t.Errorf("quarantine never surfaced to the caller: %v", sick.AssessErrors)
	}
	// The sibling sailed through the whole run mid-outage.
	if healthy.Committed != sc.Cycles || healthy.Health.TotalRestarts != 0 {
		t.Errorf("sibling disturbed: committed=%d restarts=%d", healthy.Committed, healthy.Health.TotalRestarts)
	}
	// The operator resume (performed by the runner) reset the budget.
	if sick.Health.State != "running" || sick.Health.Restarts != 0 {
		t.Errorf("resume did not reset the quarantined campaign: %+v", sick.Health)
	}
	// Quarantine is observable in the metrics the runtime exports.
	if !strings.Contains(res.Metrics, supervise.MetricCampaignQuarantines+`{campaign="c00"} 1`) {
		t.Errorf("quarantine not visible in metrics")
	}
}
