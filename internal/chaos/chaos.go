// Package chaos is the seeded chaos harness for the supervised campaign
// runtime. A Scenario places deterministic kill points — mid-cycle
// panics, stalled submissions, torn persistence writes, platform
// outages — into N concurrently-driven campaigns, then checks the
// supervision invariants:
//
//  1. recovery is byte-identical: every campaign's post-chaos state
//     equals an uninterrupted reference run over its committed cycles;
//  2. failure domains hold: campaigns without kill points finish with
//     zero restarts;
//  3. restart counts stay within the configured budget, and campaigns
//     expected to quarantine do (and only those);
//  4. circuit-breaker transitions are observable in the metrics
//     registry.
//
// The harness is pure library so the test suite (chaos_test.go) and the
// operator CLI (cmd/crowdchaos) drive the same scenarios.
package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/admission"
	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/experiments"
	"github.com/crowdlearn/crowdlearn/internal/faults"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/obs"
	"github.com/crowdlearn/crowdlearn/internal/simclock"
	"github.com/crowdlearn/crowdlearn/internal/store"
	"github.com/crowdlearn/crowdlearn/internal/supervise"
)

// CampaignPlan scripts one campaign's failures. Kill indices count the
// campaign's live (armed) crowd submissions from 1; each index fires
// exactly once, including across restarts — a killed submission never
// commits, so the retried cycle's resubmission is the next index.
type CampaignPlan struct {
	// PanicAt panics inside the platform call at these submission
	// indices (mid-cycle: learned state has already been touched).
	PanicAt []int
	// StallAt blocks the platform call at these indices until the
	// runner kicks the campaign and releases the stall.
	StallAt []int
	// StoreFaults seeds torn-write/rename-failure injection in the
	// campaign's persistence layer.
	StoreFaults store.FaultConfig
	// Faults seeds crowd-platform fault injection (outages, worker
	// abandonment, ...).
	Faults faults.Config
}

// Scenario is one chaos run.
type Scenario struct {
	Name string
	// Seed differentiates otherwise-identical scenarios: it salts every
	// per-campaign injector, breaker and restart-policy seed.
	Seed int64
	// Cycles is the target committed cycle count per campaign.
	Cycles int
	// Campaigns scripts each campaign; len(Campaigns) is the fleet size.
	Campaigns []CampaignPlan
	// Restart overrides the default test restart policy.
	Restart *supervise.RestartPolicy
	// Breaker overrides the default test breaker config.
	Breaker *supervise.BreakerConfig
	// ExpectQuarantine lists campaign indices whose script is designed
	// to exhaust the restart budget.
	ExpectQuarantine []int
	// ExpectBreakerOpen lists campaign indices whose script must trip
	// the circuit breaker open at least once.
	ExpectBreakerOpen []int
	// Pipelined drives every campaign through core.RunCampaignPipelined
	// against a store-backed journal instead of the supervised runtime:
	// kills land while the previous cycle's detached commit may still be
	// in flight, and recovery goes through store.Recover directly.
	// Pipelined scenarios support panic kills only (no stalls, no store
	// faults) and assert the same invariants via Check.
	Pipelined bool
	// Overload, when non-nil, enables the fleet-wide admission controller
	// (tight limits) and fires bursts of concurrent assessments at a
	// dedicated "burst" campaign while the scripted campaigns run. The
	// scenario then additionally asserts that shedding actually happened,
	// that every burst failure was marked retryable, and that the burst
	// target shed load without tripping supervision (zero restarts). The
	// burst campaign is excluded from the committed-cycle and
	// byte-equivalence invariants. Supervised scenarios only.
	Overload *OverloadPlan
}

// OverloadPlan scripts the overload arm of a scenario.
type OverloadPlan struct {
	// Burst is the number of concurrent requests fired per round.
	Burst int
	// Rounds repeats the burst back-to-back.
	Rounds int
	// Retry drives every burst client through admission.RetryPolicy with
	// a shared retry Budget and a no-op sleep — the retry-storm arm.
	// False fires each request exactly once.
	Retry bool
}

// overloadAdmission is the deliberately tight controller configuration
// overload scenarios run under, so a modest burst reliably walks the
// whole shedding ladder (admit → degrade → reject).
func overloadAdmission() *admission.Config {
	return &admission.Config{
		Target:       time.Millisecond,
		MinLimit:     1,
		MaxLimit:     8,
		InitialLimit: 2,
	}
}

// overloadRejectBackstop bounds a scripted driver's shed-rejection spin
// during bursts. It is a livelock backstop, not an invariant: rejections
// are retryable by design and the driver yields between attempts.
const overloadRejectBackstop = 1 << 20

// storeFaultsEnabled mirrors store's unexported enabled check.
func storeFaultsEnabled(c store.FaultConfig) bool {
	return c.TornCheckpointRate > 0 || c.RenameFailRate > 0 || c.TornWALRate > 0
}

// expectsQuarantine reports whether campaign i is scripted to quarantine.
func (sc Scenario) expectsQuarantine(i int) bool {
	for _, q := range sc.ExpectQuarantine {
		if q == i {
			return true
		}
	}
	return false
}

// killCount is the scripted kill total for campaign i.
func (sc Scenario) killCount(i int) int {
	p := sc.Campaigns[i]
	return len(p.PanicAt) + len(p.StallAt)
}

// Script injects the scenario's kill points into one campaign's platform
// chain. It sits between the circuit breaker and the fault injector, so
// a kill fires only on submissions the breaker let through. The script
// outlives campaign epochs (the Build closure reuses it), which is what
// makes "fire exactly once" hold across restarts; it disarms itself when
// a kill fires so recovery replay passes through untouched, and the
// driver re-arms it before the next live attempt.
type Script struct {
	mu      sync.Mutex
	armed   bool
	calls   int // armed live submissions observed
	panicAt map[int]bool
	stallAt map[int]bool
	release chan struct{} // current stall's release gate
	notify  chan struct{} // one token per begun stall

	panicsFired int
	stallsFired int
}

// NewScript compiles a plan's kill points.
func NewScript(plan CampaignPlan) *Script {
	s := &Script{
		panicAt: make(map[int]bool, len(plan.PanicAt)),
		stallAt: make(map[int]bool, len(plan.StallAt)),
		notify:  make(chan struct{}, len(plan.StallAt)+1),
	}
	for _, i := range plan.PanicAt {
		s.panicAt[i] = true
	}
	for _, i := range plan.StallAt {
		s.stallAt[i] = true
	}
	return s
}

// Arm enables kill points for the next live submission window.
func (s *Script) Arm() {
	s.mu.Lock()
	s.armed = true
	s.mu.Unlock()
}

// StallBegan yields one token per stall the script has begun.
func (s *Script) StallBegan() <-chan struct{} { return s.notify }

// Release unblocks the in-progress stall.
func (s *Script) Release() {
	s.mu.Lock()
	ch := s.release
	s.release = nil
	s.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// Fired reports how many kills have fired so far.
func (s *Script) Fired() (panics, stalls int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.panicsFired, s.stallsFired
}

// Wrap places the script into a platform chain.
func (s *Script) Wrap(inner core.CrowdPlatform) core.CrowdPlatform {
	return &scriptPlatform{script: s, inner: inner}
}

type scriptPlatform struct {
	script *Script
	inner  core.CrowdPlatform
}

var _ core.CrowdPlatform = (*scriptPlatform)(nil)

func (p *scriptPlatform) Submit(clk *simclock.Clock, ctx crowd.TemporalContext, queries []crowd.Query) ([]crowd.QueryResult, error) {
	s := p.script
	s.mu.Lock()
	if !s.armed {
		s.mu.Unlock()
		return p.inner.Submit(clk, ctx, queries)
	}
	s.calls++
	call := s.calls
	switch {
	case s.panicAt[call]:
		delete(s.panicAt, call)
		s.panicsFired++
		s.armed = false // replay must pass through untouched
		s.mu.Unlock()
		panic(fmt.Sprintf("chaos: scripted kill at live submission %d", call))
	case s.stallAt[call]:
		delete(s.stallAt, call)
		s.stallsFired++
		s.armed = false
		release := make(chan struct{})
		s.release = release
		s.mu.Unlock()
		s.notify <- struct{}{}
		<-release
		// Never forward: the stalled call must not advance platform
		// state the journal knows nothing about.
		return nil, errors.New("chaos: stalled submission released after abandonment")
	default:
		s.mu.Unlock()
		return p.inner.Submit(clk, ctx, queries)
	}
}

func (p *scriptPlatform) Spent() float64 { return p.inner.Spent() }

// CampaignResult is one campaign's outcome.
type CampaignResult struct {
	ID string
	// Committed is the cycle count the campaign durably completed.
	Committed int
	// FinalState / RefState are the SaveState bytes of the chaotic arm
	// and of its uninterrupted reference run over Committed cycles.
	FinalState []byte
	RefState   []byte
	// Health is the campaign's final health snapshot.
	Health supervise.CampaignHealth
	// Quarantined records whether the campaign ended quarantined before
	// the operator resume the runner performs to snapshot its state.
	Quarantined bool
	// PanicsFired / StallsFired are the script's kill tallies.
	PanicsFired int
	StallsFired int
	// ShedResults counts driver assessments served on the admission
	// degrade tier (overload scenarios; sheds commit no cycle).
	ShedResults int
	// OverloadRejects counts retryable admission rejections the driver
	// absorbed while the fleet was shedding (overload scenarios).
	OverloadRejects int
	// AssessErrors are the per-attempt failures the driver observed.
	AssessErrors []string
}

// Result is a completed scenario.
type Result struct {
	Scenario  Scenario
	Campaigns []CampaignResult
	// Overload is the burst arm's outcome (scenarios with an
	// OverloadPlan).
	Overload *OverloadResult
	// Metrics is the registry's Prometheus rendering after the run.
	Metrics string
	// Err is a fatal harness error (scenario could not be driven).
	Err error
}

// OverloadResult is what the burst clients observed.
type OverloadResult struct {
	// Requests is the number of burst clients (terminal outcomes).
	Requests int
	// FullCycles / Shed count successful responses by tier.
	FullCycles int
	Shed       int
	// Rejected counts clients that ended with a retryable failure.
	Rejected int
	// BudgetDenied counts clients stopped by the shared retry budget
	// (Retry arm only — the storm-amplification bound at work).
	BudgetDenied int
	// Attempts totals Assess invocations across all clients and retries.
	Attempts int
	// NonRetryable lists failures that were neither a success nor marked
	// retryable nor budget-bounded — always an invariant violation.
	NonRetryable []string
	// BurstHealth is the burst campaign's final health snapshot.
	BurstHealth supervise.CampaignHealth
}

// Runner drives scenarios against one shared laboratory environment.
type Runner struct {
	Env    *experiments.Env
	Logger *slog.Logger
	// ImagesPerCycle sizes each cycle's workload (default 10).
	ImagesPerCycle int
}

// maxAttempts bounds the retry loop per cycle: every scripted kill can
// fail one attempt, plus the attempt that finally succeeds, plus slack
// for store-fault-induced rollbacks.
func (sc Scenario) maxAttempts(i int) int { return sc.killCount(i) + 8 }

// defaultRestart keeps chaos runs fast and deterministic: backoff
// delays are data (the supervisor's sleep is a no-op seam in Run).
func defaultRestart(seed int64) *supervise.RestartPolicy {
	return &supervise.RestartPolicy{MaxRestarts: 5, Seed: seed}
}

// Run executes one scenario in dir (each campaign gets dir/<id>).
func (r *Runner) Run(sc Scenario, dir string) *Result {
	res := &Result{Scenario: sc}
	logger := r.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	perCycle := r.ImagesPerCycle
	if perCycle == 0 {
		perCycle = 10
	}
	if sc.Pipelined {
		return r.runPipelined(sc, dir, logger, perCycle)
	}
	need := len(sc.Campaigns) * sc.Cycles * perCycle
	if need > len(r.Env.Dataset.Test) {
		res.Err = fmt.Errorf("chaos: scenario %s needs %d test images, have %d", sc.Name, need, len(r.Env.Dataset.Test))
		return res
	}

	reg := obs.NewRegistry()
	supOpts := supervise.Options{
		Logger:  logger,
		Metrics: reg,
		Sleep:   func(time.Duration) {}, // backoff delays are asserted, not slept
	}
	if sc.Overload != nil {
		supOpts.Admission = overloadAdmission()
	}
	sup := supervise.New(supOpts)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := sup.Shutdown(ctx); err != nil && res.Err == nil {
			res.Err = err
		}
	}()

	type campaignRun struct {
		id     string
		script *Script
		plan   CampaignPlan
		images []*imagery.Image
	}
	runs := make([]*campaignRun, len(sc.Campaigns))
	train := classifier.SamplesFromImages(r.Env.Dataset.Train)
	for i, plan := range sc.Campaigns {
		i, plan := i, plan
		id := fmt.Sprintf("c%02d", i)
		script := NewScript(plan)
		seed := sc.Seed*1000 + int64(i)
		restart := sc.Restart
		if restart == nil {
			restart = defaultRestart(seed + 1)
		}
		brk := supervise.BreakerConfig{Seed: seed + 2}
		if sc.Breaker != nil {
			brk = *sc.Breaker
			brk.Seed = seed + 2
		}
		images := r.Env.Dataset.Test[i*sc.Cycles*perCycle : (i+1)*sc.Cycles*perCycle]
		runs[i] = &campaignRun{id: id, script: script, plan: plan, images: images}
		faultCfg := plan.Faults
		faultCfg.Seed = seed + 3
		_, err := sup.Create(supervise.Spec{
			ID:              id,
			StateDir:        fmt.Sprintf("%s/%s", dir, id),
			CheckpointEvery: 2,
			StoreFaults:     plan.StoreFaults,
			TrainSamples:    train,
			Registry:        r.Env.Dataset.Test,
			Restart:         restart,
			Breaker:         &brk,
			Build: func(bc supervise.BuildContext) (core.Scheme, error) {
				inj, err := faults.New(r.Env.NewPlatform(), faultCfg)
				if err != nil {
					return nil, err
				}
				return r.Env.NewSystemOn(bc.WrapPlatform(script.Wrap(inj)), func(cfg *core.Config) {
					cfg.Journal = bc.Journal
				})
			},
		})
		if err != nil {
			res.Err = fmt.Errorf("chaos: create %s: %w", id, err)
			return res
		}
		// Stall monitor: when the script blocks a submission, kick the
		// campaign (the deterministic stand-in for the wall-clock
		// watchdog) and release the abandoned call.
		supervise.Go("chaos.stallmonitor."+id, logger, func() {
			for range script.StallBegan() {
				_ = sup.Kick(id, "chaos: scripted stall")
				script.Release()
			}
		})
	}

	// The overload arm gets its own campaign so burst traffic (and the
	// cycles it does commit) never perturbs the scripted campaigns'
	// committed-cycle and byte-equivalence invariants.
	if sc.Overload != nil {
		seed := sc.Seed*1000 + 999
		burstImages := r.Env.Dataset.Test[need:]
		if len(burstImages) == 0 {
			burstImages = r.Env.Dataset.Test
		}
		_, err := sup.Create(supervise.Spec{
			ID:              "burst",
			StateDir:        fmt.Sprintf("%s/burst", dir),
			CheckpointEvery: 2,
			TrainSamples:    train,
			Registry:        r.Env.Dataset.Test,
			Restart:         defaultRestart(seed + 1),
			Breaker:         &supervise.BreakerConfig{Seed: seed + 2},
			Build: func(bc supervise.BuildContext) (core.Scheme, error) {
				return r.Env.NewSystemOn(bc.WrapPlatform(r.Env.NewPlatform()), func(cfg *core.Config) {
					cfg.Journal = bc.Journal
				})
			},
		})
		if err != nil {
			res.Err = fmt.Errorf("chaos: create burst campaign: %w", err)
			return res
		}
	}

	// Drive all campaigns concurrently: isolation failures (one
	// campaign's restart corrupting another) only surface under
	// concurrent load.
	results := make([]CampaignResult, len(runs))
	var wg sync.WaitGroup
	for i, cr := range runs {
		i, cr := i, cr
		wg.Add(1)
		supervise.Go("chaos.driver."+cr.id, logger, func() {
			defer wg.Done()
			results[i] = r.driveCampaign(sup, sc, i, cr.id, cr.script, cr.images, perCycle)
		})
	}
	if sc.Overload != nil {
		wg.Add(1)
		supervise.Go("chaos.burst", logger, func() {
			defer wg.Done()
			burstImages := r.Env.Dataset.Test[need:]
			if len(burstImages) == 0 {
				burstImages = r.Env.Dataset.Test
			}
			res.Overload = r.driveBurst(sup, sc, logger, burstImages)
		})
	}
	wg.Wait()

	// Snapshot state while the supervisor is still up. Quarantined
	// campaigns are resumed first — the operator path that resets the
	// budget and rebuilds from the last durable state.
	for i := range results {
		cres := &results[i]
		if cres.Quarantined {
			if err := sup.Resume(cres.ID); err != nil {
				cres.AssessErrors = append(cres.AssessErrors, fmt.Sprintf("resume from quarantine: %v", err))
				continue
			}
		}
		h, err := sup.CampaignHealth(cres.ID)
		if err != nil {
			cres.AssessErrors = append(cres.AssessErrors, fmt.Sprintf("health: %v", err))
			continue
		}
		cres.Health = h
		cres.Committed = h.NextCycle
		state, err := sup.StateBytes(cres.ID)
		if err != nil {
			cres.AssessErrors = append(cres.AssessErrors, fmt.Sprintf("state snapshot: %v", err))
			continue
		}
		cres.FinalState = state
	}

	// Reference arms: the same platform chain minus the script, driven
	// uninterrupted over exactly the cycles the chaotic arm committed.
	for i := range results {
		cres := &results[i]
		if cres.FinalState == nil {
			continue
		}
		ref, err := r.referenceState(sc, i, runs[i].images, perCycle, cres.Committed)
		if err != nil {
			cres.AssessErrors = append(cres.AssessErrors, fmt.Sprintf("reference arm: %v", err))
			continue
		}
		cres.RefState = ref
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err == nil {
		res.Metrics = buf.String()
	}
	res.Campaigns = results
	return res
}

// driveCampaign pushes one campaign to sc.Cycles committed cycles,
// retrying cycles the scripted kills abort. The cycle index always comes
// from the campaign's own health — after a restart recovers to an
// earlier durable point (e.g. a torn WAL record), the driver follows it
// back rather than feeding inputs for the wrong cycle.
func (r *Runner) driveCampaign(sup *supervise.Supervisor, sc Scenario, idx int, id string, script *Script, images []*imagery.Image, perCycle int) CampaignResult {
	cres := CampaignResult{ID: id}
	attempts := 0
	for {
		h, err := sup.CampaignHealth(id)
		if err != nil {
			cres.AssessErrors = append(cres.AssessErrors, err.Error())
			break
		}
		cycle := h.NextCycle
		if cycle >= sc.Cycles {
			break
		}
		tctx := crowd.TemporalContext(cycle % crowd.NumContexts)
		batch := images[cycle*perCycle : (cycle+1)*perCycle]
		script.Arm()
		res, err := sup.Assess(context.Background(), id, tctx, batch)
		if err == nil {
			if res.Cycle != cycle {
				cres.AssessErrors = append(cres.AssessErrors,
					fmt.Sprintf("cycle index skew: asked %d, ran %d", cycle, res.Cycle))
				break
			}
			if res.Shed {
				// Served on the degrade tier: usable labels, no committed
				// cycle. Try the same cycle again once pressure eases.
				cres.ShedResults++
				continue
			}
			attempts = 0
			continue
		}
		if errors.Is(err, supervise.ErrQuarantined) {
			cres.AssessErrors = append(cres.AssessErrors, fmt.Sprintf("cycle %d: %v", cycle, err))
			cres.Quarantined = true
			break
		}
		if admission.IsRetryable(err) {
			// Fleet-wide shedding, not a campaign failure: yield and retry
			// until the burst drains (counted, with a livelock backstop).
			cres.OverloadRejects++
			if cres.OverloadRejects > overloadRejectBackstop {
				cres.AssessErrors = append(cres.AssessErrors,
					fmt.Sprintf("cycle %d: gave up after %d shed rejections", cycle, cres.OverloadRejects))
				break
			}
			runtime.Gosched()
			continue
		}
		cres.AssessErrors = append(cres.AssessErrors, fmt.Sprintf("cycle %d: %v", cycle, err))
		attempts++
		if attempts > sc.maxAttempts(idx) {
			cres.AssessErrors = append(cres.AssessErrors,
				fmt.Sprintf("cycle %d: gave up after %d attempts", cycle, attempts))
			break
		}
	}
	cres.PanicsFired, cres.StallsFired = script.Fired()
	return cres
}

// driveBurst fires the overload plan at the dedicated burst campaign:
// Rounds waves of Burst concurrent assessments, optionally retried
// through a shared-budget RetryPolicy. Every terminal outcome is
// classified; anything that is neither success, retryable, nor
// budget-bounded lands in NonRetryable and fails the scenario.
func (r *Runner) driveBurst(sup *supervise.Supervisor, sc Scenario, logger *slog.Logger, images []*imagery.Image) *OverloadResult {
	ov := sc.Overload
	ores := &OverloadResult{}
	var mu sync.Mutex
	var attempts int64
	// One budget across the whole fleet of burst clients: the
	// storm-prevention bound under test in the Retry arm.
	budget := admission.NewBudget(0.5, 4)
	for round := 0; round < ov.Rounds; round++ {
		var wg sync.WaitGroup
		for c := 0; c < ov.Burst; c++ {
			idx := round*ov.Burst + c
			wg.Add(1)
			supervise.Go(fmt.Sprintf("chaos.burst.%d", idx), logger, func() {
				defer wg.Done()
				im := images[idx%len(images)]
				op := func(ctx context.Context) error {
					atomic.AddInt64(&attempts, 1)
					ares, err := sup.Assess(ctx, "burst", crowd.Morning, []*imagery.Image{im})
					if err != nil {
						return err
					}
					mu.Lock()
					if ares.Shed {
						ores.Shed++
					} else {
						ores.FullCycles++
					}
					mu.Unlock()
					return nil
				}
				var err error
				if ov.Retry {
					p := admission.RetryPolicy{
						MaxAttempts: 3,
						Seed:        sc.Seed*10000 + int64(idx),
						Budget:      budget,
						Sleep:       func(time.Duration) {}, // retries are data, not wall time
					}
					err = p.Do(context.Background(), op)
				} else {
					err = op(context.Background())
				}
				mu.Lock()
				defer mu.Unlock()
				ores.Requests++
				switch {
				case err == nil:
				case errors.Is(err, admission.ErrBudgetExhausted):
					ores.BudgetDenied++
				case admission.IsRetryable(err):
					ores.Rejected++
				default:
					ores.NonRetryable = append(ores.NonRetryable, err.Error())
				}
			})
		}
		wg.Wait()
	}
	ores.Attempts = int(atomic.LoadInt64(&attempts))
	if h, err := sup.CampaignHealth("burst"); err == nil {
		ores.BurstHealth = h
	}
	return ores
}

// referenceState runs the uninterrupted arm: same seeds, same breaker,
// same injector, no script, no supervisor — the ground truth the
// recovered chaotic arm must match byte for byte.
func (r *Runner) referenceState(sc Scenario, i int, images []*imagery.Image, perCycle, cycles int) ([]byte, error) {
	seed := sc.Seed*1000 + int64(i)
	brk := supervise.BreakerConfig{Seed: seed + 2}
	if sc.Breaker != nil {
		brk = *sc.Breaker
		brk.Seed = seed + 2
	}
	faultCfg := sc.Campaigns[i].Faults
	faultCfg.Seed = seed + 3
	inj, err := faults.New(r.Env.NewPlatform(), faultCfg)
	if err != nil {
		return nil, err
	}
	breaker := supervise.NewBreaker(brk, fmt.Sprintf("ref%02d", i), nil)
	sys, err := r.Env.NewSystemOn(breaker.Wrap(inj), nil)
	if err != nil {
		return nil, err
	}
	for cycle := 0; cycle < cycles; cycle++ {
		in := core.CycleInput{
			Index:   cycle,
			Context: crowd.TemporalContext(cycle % crowd.NumContexts),
			Images:  images[cycle*perCycle : (cycle+1)*perCycle],
		}
		if _, err := sys.RunCycle(in); err != nil {
			return nil, fmt.Errorf("reference cycle %d: %w", cycle, err)
		}
	}
	var buf bytes.Buffer
	if err := sys.SaveState(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// runPipelined drives a Scenario through core.RunCampaignPipelined:
// each campaign runs against its own store-backed journal with the
// snapshot-then-encode seam installed, so scripted panics land
// mid-compute while the previous cycle's detached commit may still be
// in flight. The harness treats a panic as a process death — it joins
// no in-memory state, reopens the store, recovers through
// store.Recover and resumes the pipelined campaign at the recovered
// cycle. Results feed the unmodified Check: committed cycle counts,
// fired-kill tallies and byte-identical recovery hold exactly as for
// supervised scenarios (Health stays zero — no supervisor runs).
func (r *Runner) runPipelined(sc Scenario, dir string, logger *slog.Logger, perCycle int) *Result {
	res := &Result{Scenario: sc}
	for _, plan := range sc.Campaigns {
		if len(plan.StallAt) > 0 || storeFaultsEnabled(plan.StoreFaults) {
			res.Err = fmt.Errorf("chaos: pipelined scenario %s supports panic kills only", sc.Name)
			return res
		}
	}
	if len(sc.ExpectQuarantine) > 0 {
		res.Err = fmt.Errorf("chaos: pipelined scenario %s cannot quarantine (no supervisor)", sc.Name)
		return res
	}
	need := len(sc.Campaigns) * sc.Cycles * perCycle
	if need > len(r.Env.Dataset.Test) {
		res.Err = fmt.Errorf("chaos: scenario %s needs %d test images, have %d", sc.Name, need, len(r.Env.Dataset.Test))
		return res
	}
	results := make([]CampaignResult, len(sc.Campaigns))
	var wg sync.WaitGroup
	for i := range sc.Campaigns {
		i := i
		wg.Add(1)
		supervise.Go(fmt.Sprintf("chaos.pipelined.c%02d", i), logger, func() {
			defer wg.Done()
			results[i] = r.drivePipelined(sc, i, dir, logger, perCycle)
		})
	}
	wg.Wait()
	for i := range results {
		cres := &results[i]
		if cres.FinalState == nil {
			continue
		}
		images := r.Env.Dataset.Test[i*sc.Cycles*perCycle : (i+1)*sc.Cycles*perCycle]
		ref, err := r.referenceState(sc, i, images, perCycle, cres.Committed)
		if err != nil {
			cres.AssessErrors = append(cres.AssessErrors, fmt.Sprintf("reference arm: %v", err))
			continue
		}
		cres.RefState = ref
	}
	res.Campaigns = results
	return res
}

// drivePipelined pushes one campaign to sc.Cycles committed cycles
// through the pipelined runner, crash-recovering through the store
// after every scripted panic.
func (r *Runner) drivePipelined(sc Scenario, i int, dir string, logger *slog.Logger, perCycle int) CampaignResult {
	id := fmt.Sprintf("c%02d", i)
	cres := CampaignResult{ID: id}
	plan := sc.Campaigns[i]
	script := NewScript(plan)
	seed := sc.Seed*1000 + int64(i)
	brk := supervise.BreakerConfig{Seed: seed + 2}
	if sc.Breaker != nil {
		brk = *sc.Breaker
		brk.Seed = seed + 2
	}
	faultCfg := plan.Faults
	faultCfg.Seed = seed + 3
	images := r.Env.Dataset.Test[i*sc.Cycles*perCycle : (i+1)*sc.Cycles*perCycle]
	train := classifier.SamplesFromImages(r.Env.Dataset.Train)

	fail := func(format string, args ...any) CampaignResult {
		cres.AssessErrors = append(cres.AssessErrors, fmt.Sprintf(format, args...))
		cres.PanicsFired, cres.StallsFired = script.Fired()
		return cres
	}

	// build assembles a fresh epoch: store, journal with the snapshot
	// seam, and a system on the same platform chain the supervised path
	// uses (breaker → script → fault injector), all re-seeded
	// identically so recovery replay resyncs the chain byte-exactly.
	build := func() (*core.CrowdLearn, *store.Store, *store.Journal, error) {
		st, err := store.Open(store.Options{Dir: fmt.Sprintf("%s/%s", dir, id)})
		if err != nil {
			return nil, nil, nil, err
		}
		var sys *core.CrowdLearn
		journal := store.NewJournal(st, 2, func(w io.Writer) error { return sys.SaveState(w) }, logger, nil)
		inj, err := faults.New(r.Env.NewPlatform(), faultCfg)
		if err != nil {
			st.Close()
			return nil, nil, nil, err
		}
		breaker := supervise.NewBreaker(brk, id, nil)
		sys, err = r.Env.NewSystemOn(breaker.Wrap(script.Wrap(inj)), func(cfg *core.Config) {
			cfg.Journal = journal
		})
		if err != nil {
			st.Close()
			return nil, nil, nil, err
		}
		journal.SetSnapshot(func() (func(w io.Writer) error, error) {
			sn, serr := sys.SnapshotState()
			if serr != nil {
				return nil, serr
			}
			return sn.Encode, nil
		})
		return sys, st, journal, nil
	}

	// runFrom resumes the pipelined campaign at cycle start; a scripted
	// panic surfaces as an error after RunCampaignPipelined's unwind has
	// joined any in-flight detached commit.
	runFrom := func(sys *core.CrowdLearn, start int) (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("panic: %v", p)
			}
		}()
		cfg := core.CampaignConfig{Cycles: sc.Cycles - start, ImagesPerCycle: perCycle, StartCycle: start}
		_, err = core.RunCampaignPipelined(sys, images[start*perCycle:], cfg)
		return err
	}

	sys, st, _, err := build()
	if err != nil {
		return fail("open: %v", err)
	}
	defer func() { st.Close() }()
	next, attempts := 0, 0
	for next < sc.Cycles {
		script.Arm()
		rerr := runFrom(sys, next)
		if rerr == nil {
			next = sc.Cycles
			break
		}
		cres.AssessErrors = append(cres.AssessErrors, fmt.Sprintf("cycle >=%d: %v", next, rerr))
		attempts++
		if attempts > sc.maxAttempts(i) {
			return fail("gave up after %d attempts", attempts)
		}
		// Crash: everything in memory dies with the panic; the store's
		// directory is all that survives.
		if cerr := st.Close(); cerr != nil {
			return fail("close after crash: %v", cerr)
		}
		var journal *store.Journal
		sys, st, journal, err = build()
		if err != nil {
			return fail("reopen: %v", err)
		}
		report, rerr := st.Recover(sys, store.RecoverOptions{
			TrainSamples:   train,
			Registry:       r.Env.Dataset.Test,
			ResyncPlatform: true,
			Logger:         logger,
		})
		if rerr != nil {
			return fail("recover: %v", rerr)
		}
		journal.NoteRecovered(report)
		next = report.NextCycle
	}
	cres.PanicsFired, cres.StallsFired = script.Fired()
	cres.Committed = next
	var buf bytes.Buffer
	if serr := sys.SaveState(&buf); serr != nil {
		return fail("state snapshot: %v", serr)
	}
	cres.FinalState = buf.Bytes()
	return cres
}

// Check verifies the supervision invariants and returns one line per
// violation (empty = scenario passed).
func (res *Result) Check() []string {
	var problems []string
	if res.Err != nil {
		return []string{fmt.Sprintf("harness: %v", res.Err)}
	}
	sc := res.Scenario
	for i, cres := range res.Campaigns {
		tag := fmt.Sprintf("campaign %s", cres.ID)
		if sc.expectsQuarantine(i) != cres.Quarantined {
			problems = append(problems, fmt.Sprintf("%s: quarantined=%v, expected %v (errors: %s)",
				tag, cres.Quarantined, sc.expectsQuarantine(i), strings.Join(cres.AssessErrors, "; ")))
		}
		if !cres.Quarantined && !sc.expectsQuarantine(i) && cres.Committed != sc.Cycles {
			problems = append(problems, fmt.Sprintf("%s: committed %d of %d cycles (errors: %s)",
				tag, cres.Committed, sc.Cycles, strings.Join(cres.AssessErrors, "; ")))
		}
		// Failure-domain isolation: an unscripted campaign must sail
		// through untouched.
		if sc.killCount(i) == 0 && !storeFaultsEnabled(sc.Campaigns[i].StoreFaults) {
			if cres.Health.TotalRestarts != 0 {
				problems = append(problems, fmt.Sprintf("%s: unscripted campaign restarted %d times",
					tag, cres.Health.TotalRestarts))
			}
		}
		// Every scripted kill must actually have fired, or the scenario
		// silently tests less than it claims. A quarantined campaign
		// legitimately stops before later kill points.
		if !sc.expectsQuarantine(i) {
			if cres.PanicsFired != len(sc.Campaigns[i].PanicAt) || cres.StallsFired != len(sc.Campaigns[i].StallAt) {
				problems = append(problems, fmt.Sprintf("%s: fired %d/%d panics and %d/%d stalls",
					tag, cres.PanicsFired, len(sc.Campaigns[i].PanicAt), cres.StallsFired, len(sc.Campaigns[i].StallAt)))
			}
		}
		// Restart budgets: per-streak count within budget always.
		if cres.Health.Restarts > cres.Health.Budget {
			problems = append(problems, fmt.Sprintf("%s: restarts %d exceed budget %d",
				tag, cres.Health.Restarts, cres.Health.Budget))
		}
		// Byte-identical recovery.
		switch {
		case cres.FinalState == nil:
			problems = append(problems, fmt.Sprintf("%s: no final state captured (errors: %s)",
				tag, strings.Join(cres.AssessErrors, "; ")))
		case cres.RefState == nil:
			problems = append(problems, fmt.Sprintf("%s: no reference state (errors: %s)",
				tag, strings.Join(cres.AssessErrors, "; ")))
		case !bytes.Equal(cres.FinalState, cres.RefState):
			problems = append(problems, fmt.Sprintf("%s: recovered state diverges from reference (%d vs %d bytes over %d cycles)",
				tag, len(cres.FinalState), len(cres.RefState), cres.Committed))
		}
	}
	for _, i := range sc.ExpectBreakerOpen {
		id := fmt.Sprintf("c%02d", i)
		needle := fmt.Sprintf("%s{campaign=%q,from=\"closed\",to=\"open\"}", supervise.MetricBreakerTransitions, id)
		if !strings.Contains(res.Metrics, needle) {
			problems = append(problems, fmt.Sprintf("campaign %s: no closed→open breaker transition in /metrics", id))
		}
	}
	if sc.Overload != nil {
		problems = append(problems, res.checkOverload()...)
	}
	return problems
}

// checkOverload verifies the overload-arm invariants: shedding happened,
// every burst failure stayed retryable, the burst target absorbed the
// storm without tripping supervision, and the shedding is observable in
// the fleet metrics.
func (res *Result) checkOverload() []string {
	var problems []string
	o := res.Overload
	if o == nil {
		return []string{"overload: no burst result recorded"}
	}
	if want := res.Scenario.Overload.Burst * res.Scenario.Overload.Rounds; o.Requests != want {
		problems = append(problems, fmt.Sprintf("overload: %d of %d burst clients reached a terminal outcome", o.Requests, want))
	}
	if len(o.NonRetryable) > 0 {
		problems = append(problems, fmt.Sprintf("overload: %d non-retryable burst failures (first: %s)",
			len(o.NonRetryable), o.NonRetryable[0]))
	}
	if o.Shed == 0 && o.Rejected == 0 && o.BudgetDenied == 0 {
		problems = append(problems, "overload: burst never shed or rejected — the overload never materialised")
	}
	if o.BurstHealth.TotalRestarts != 0 {
		problems = append(problems, fmt.Sprintf("overload: burst campaign restarted %d times — shedding must not trip supervision",
			o.BurstHealth.TotalRestarts))
	}
	if res.Scenario.Overload.Retry && o.Attempts <= o.Requests {
		problems = append(problems, fmt.Sprintf("overload: retry arm performed no retries (%d attempts for %d clients)",
			o.Attempts, o.Requests))
	}
	needle := fmt.Sprintf("%s{campaign=\"burst\",decision=\"degrade\"}", supervise.MetricCampaignAdmission)
	if !strings.Contains(res.Metrics, needle) {
		problems = append(problems, "overload: no degrade decision for the burst campaign in /metrics")
	}
	return problems
}
