package chaos

import (
	"time"

	"github.com/crowdlearn/crowdlearn/internal/faults"
	"github.com/crowdlearn/crowdlearn/internal/store"
	"github.com/crowdlearn/crowdlearn/internal/supervise"
)

// Catalog is the seeded kill-point suite `make chaos` and cmd/crowdchaos
// run. Every scenario keeps at least one unscripted campaign in the
// fleet as the failure-domain isolation probe, except where noted. With
// no crowd faults a campaign performs one live submission per committed
// cycle plus one per fired kill, so a kill index k <= Cycles is
// guaranteed to fire.
func Catalog() []Scenario {
	clean := CampaignPlan{}
	outage := func(d time.Duration) faults.Config {
		return faults.Config{OutageDuration: d}
	}
	return []Scenario{
		{
			Name: "panic-first-call", Seed: 11, Cycles: 4,
			Campaigns: []CampaignPlan{{PanicAt: []int{1}}, clean},
		},
		{
			Name: "panic-mid-run", Seed: 12, Cycles: 4,
			Campaigns: []CampaignPlan{{PanicAt: []int{3}}, clean},
		},
		{
			Name: "panic-last-cycle", Seed: 13, Cycles: 5,
			Campaigns: []CampaignPlan{{PanicAt: []int{5}}, clean},
		},
		{
			Name: "double-panic", Seed: 14, Cycles: 5,
			Campaigns: []CampaignPlan{{PanicAt: []int{2, 4}}, clean},
		},
		{
			Name: "panic-both-campaigns", Seed: 15, Cycles: 4,
			Campaigns: []CampaignPlan{{PanicAt: []int{2}}, {PanicAt: []int{3}}, clean},
		},
		{
			Name: "panic-retry-storm", Seed: 16, Cycles: 4,
			Campaigns: []CampaignPlan{{PanicAt: []int{2, 3}}, clean},
		},
		{
			Name: "stall-early", Seed: 17, Cycles: 4,
			Campaigns: []CampaignPlan{{StallAt: []int{1}}, clean},
		},
		{
			Name: "stall-mid-run", Seed: 18, Cycles: 4,
			Campaigns: []CampaignPlan{{StallAt: []int{3}}, clean},
		},
		{
			Name: "stall-both-campaigns", Seed: 19, Cycles: 5,
			Campaigns: []CampaignPlan{{StallAt: []int{2}}, {StallAt: []int{4}}, clean},
		},
		{
			Name: "stall-then-panic", Seed: 20, Cycles: 5,
			Campaigns: []CampaignPlan{{StallAt: []int{2}, PanicAt: []int{4}}, clean},
		},
		{
			Name: "panic-then-stall", Seed: 21, Cycles: 5,
			Campaigns: []CampaignPlan{{PanicAt: []int{1}, StallAt: []int{3}}, clean},
		},
		{
			Name: "torn-wal-with-panic", Seed: 22, Cycles: 4,
			Campaigns: []CampaignPlan{
				{PanicAt: []int{3}, StoreFaults: store.FaultConfig{TornWALRate: 0.3, Seed: 222}},
				clean,
			},
		},
		{
			Name: "torn-checkpoint-with-panic", Seed: 23, Cycles: 4,
			Campaigns: []CampaignPlan{
				{PanicAt: []int{2}, StoreFaults: store.FaultConfig{TornCheckpointRate: 0.7, Seed: 123}},
				clean,
			},
		},
		{
			Name: "checkpoint-rename-fails", Seed: 24, Cycles: 4,
			Campaigns: []CampaignPlan{
				{PanicAt: []int{4}, StoreFaults: store.FaultConfig{RenameFailRate: 0.7, Seed: 124}},
				clean,
			},
		},
		{
			Name: "wal-storm", Seed: 25, Cycles: 4,
			Campaigns: []CampaignPlan{
				{StoreFaults: store.FaultConfig{TornWALRate: 0.25, Seed: 125}},
				clean,
			},
		},
		{
			Name: "outage-trips-breaker", Seed: 26, Cycles: 6,
			Campaigns:         []CampaignPlan{{Faults: outage(4 * time.Hour)}, clean},
			ExpectBreakerOpen: []int{0},
		},
		{
			Name: "outage-with-panic", Seed: 27, Cycles: 5,
			Campaigns: []CampaignPlan{{Faults: outage(4 * time.Hour), PanicAt: []int{2}}, clean},
		},
		{
			Name: "outage-passes", Seed: 28, Cycles: 6,
			Campaigns: []CampaignPlan{{Faults: outage(40 * time.Minute)}, clean},
		},
		{
			Name: "outage-with-stall", Seed: 29, Cycles: 5,
			Campaigns: []CampaignPlan{{Faults: outage(4 * time.Hour), StallAt: []int{2}}, clean},
		},
		{
			Name: "quarantine-on-repeated-panics", Seed: 30, Cycles: 5,
			Campaigns:        []CampaignPlan{{PanicAt: []int{3, 4, 5}}, clean},
			Restart:          &supervise.RestartPolicy{MaxRestarts: 2},
			ExpectQuarantine: []int{0},
		},
		{
			Name: "quarantine-mid-outage", Seed: 31, Cycles: 5,
			Campaigns: []CampaignPlan{
				{Faults: outage(4 * time.Hour), PanicAt: []int{2, 3, 4}},
				clean,
			},
			Restart:          &supervise.RestartPolicy{MaxRestarts: 2},
			ExpectQuarantine: []int{0},
		},
		{
			Name: "crowd-churn-with-panic", Seed: 32, Cycles: 4,
			Campaigns: []CampaignPlan{
				{
					PanicAt: []int{3},
					Faults:  faults.Config{AbandonRate: 0.3, DelaySpikeRate: 0.2, DuplicateRate: 0.15, StaleRate: 0.1},
				},
				clean,
			},
		},
		{
			Name: "dropout-burst-with-stall", Seed: 33, Cycles: 4,
			Campaigns: []CampaignPlan{
				{StallAt: []int{3}, Faults: faults.Config{DropoutBurstRate: 0.5}},
				clean,
			},
		},
		{
			Name: "three-campaign-carnage", Seed: 34, Cycles: 4,
			Campaigns: []CampaignPlan{
				{PanicAt: []int{2, 4}},
				{StallAt: []int{3}},
				clean,
			},
		},
		{
			// The pipelined runner's kill point: the panic fires during
			// cycle 3's compute while cycle 2's detached commit is in
			// flight, so recovery exercises the epoch-merge barrier's
			// crash semantics rather than the supervised restart path.
			Name: "pipelined-commit-kill", Seed: 35, Cycles: 5, Pipelined: true,
			Campaigns: []CampaignPlan{{PanicAt: []int{3}}, clean},
		},
		{
			// Fleet admission under a raw burst: 32 concurrent clients
			// hammer a dedicated campaign while a scripted neighbour
			// recovers from a panic. The ladder must degrade/reject
			// instead of tripping supervision, and the survivors must
			// stay byte-identical to the reference arm.
			Name: "overload-burst", Seed: 36, Cycles: 4,
			Campaigns: []CampaignPlan{
				{PanicAt: []int{2}},
				clean,
			},
			Overload: &OverloadPlan{Burst: 16, Rounds: 2},
		},
		{
			// Same storm, but every burst client retries through a
			// shared retry budget. The budget — not luck — must bound
			// the amplification, and shed rejections must stay
			// retryable end to end.
			Name: "retry-storm", Seed: 37, Cycles: 4,
			Campaigns: []CampaignPlan{
				{PanicAt: []int{3}},
				clean,
			},
			Overload: &OverloadPlan{Burst: 24, Rounds: 3, Retry: true},
		},
	}
}
