package imagery

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// imageJSON is the wire form of an Image.
type imageJSON struct {
	ID              int             `json:"id"`
	TrueLabel       Label           `json:"trueLabel"`
	ApparentLabel   Label           `json:"apparentLabel"`
	Failure         FailureMode     `json:"failure"`
	Scene           SceneAttributes `json:"scene"`
	HumanDifficulty float64         `json:"humanDifficulty"`
	Deep            []float64       `json:"deep"`
	Handcrafted     []float64       `json:"handcrafted"`
	Localization    []float64       `json:"localization"`
}

// datasetJSON is the wire form of a Dataset.
type datasetJSON struct {
	Config Config      `json:"config"`
	Train  []imageJSON `json:"train"`
	Test   []imageJSON `json:"test"`
}

// Export writes the dataset as JSON so a corpus can be archived alongside
// experiment outputs and reloaded bit-identically later — the offline
// analogue of publishing the image set.
func (d *Dataset) Export(w io.Writer) error {
	out := datasetJSON{
		Config: d.cfg,
		Train:  toJSON(d.Train),
		Test:   toJSON(d.Test),
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("imagery: export: %w", err)
	}
	return nil
}

func toJSON(images []*Image) []imageJSON {
	out := make([]imageJSON, len(images))
	for i, im := range images {
		out[i] = imageJSON{
			ID:              im.ID,
			TrueLabel:       im.TrueLabel,
			ApparentLabel:   im.ApparentLabel,
			Failure:         im.Failure,
			Scene:           im.Scene,
			HumanDifficulty: im.HumanDifficulty,
			Deep:            im.Deep,
			Handcrafted:     im.Handcrafted,
			Localization:    im.Localization,
		}
	}
	return out
}

// Import reads a dataset previously written with Export.
func Import(r io.Reader) (*Dataset, error) {
	var in datasetJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("imagery: import: %w", err)
	}
	if len(in.Train) == 0 || len(in.Test) == 0 {
		return nil, errors.New("imagery: import: dataset must have train and test images")
	}
	ds := &Dataset{cfg: in.Config}
	var err error
	if ds.Train, err = fromJSON(in.Train); err != nil {
		return nil, err
	}
	if ds.Test, err = fromJSON(in.Test); err != nil {
		return nil, err
	}
	return ds, nil
}

func fromJSON(images []imageJSON) ([]*Image, error) {
	out := make([]*Image, len(images))
	for i, ij := range images {
		if !ij.TrueLabel.Valid() || !ij.ApparentLabel.Valid() {
			return nil, fmt.Errorf("imagery: import: image %d has invalid labels", ij.ID)
		}
		if len(ij.Deep) == 0 || len(ij.Handcrafted) == 0 || len(ij.Localization) == 0 {
			return nil, fmt.Errorf("imagery: import: image %d missing feature views", ij.ID)
		}
		if ij.HumanDifficulty < 0 || ij.HumanDifficulty >= 1 {
			return nil, fmt.Errorf("imagery: import: image %d difficulty %v outside [0, 1)", ij.ID, ij.HumanDifficulty)
		}
		out[i] = &Image{
			ID:              ij.ID,
			TrueLabel:       ij.TrueLabel,
			ApparentLabel:   ij.ApparentLabel,
			Failure:         ij.Failure,
			Scene:           ij.Scene,
			HumanDifficulty: ij.HumanDifficulty,
			Deep:            ij.Deep,
			Handcrafted:     ij.Handcrafted,
			Localization:    ij.Localization,
		}
	}
	return out, nil
}
