package imagery

import (
	"math"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

func TestGenerateDefaultShape(t *testing.T) {
	ds, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Train) != 560 {
		t.Errorf("train size %d, want 560", len(ds.Train))
	}
	if len(ds.Test) != 400 {
		t.Errorf("test size %d, want 400", len(ds.Test))
	}
	if len(ds.All()) != 960 {
		t.Errorf("total %d, want 960", len(ds.All()))
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := MustGenerate(DefaultConfig())
	b := MustGenerate(DefaultConfig())
	for i := range a.Train {
		x, y := a.Train[i], b.Train[i]
		if x.TrueLabel != y.TrueLabel || x.Failure != y.Failure {
			t.Fatalf("image %d differs between identically seeded runs", i)
		}
		for j := range x.Deep {
			if x.Deep[j] != y.Deep[j] {
				t.Fatalf("deep features differ at image %d dim %d", i, j)
			}
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := DefaultConfig()
	a := MustGenerate(cfg)
	cfg.Seed = 99
	b := MustGenerate(cfg)
	same := true
	for i := range a.Train {
		if a.Train[i].TrueLabel != b.Train[i].TrueLabel {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical label sequences")
	}
}

func TestFailureModeQuotas(t *testing.T) {
	cfg := DefaultConfig()
	ds := MustGenerate(cfg)
	counts := CountByFailure(ds.All())
	n := float64(cfg.NumImages)
	wantFake := int(cfg.FakeRate * n)
	if counts[FailureFake] != wantFake {
		t.Errorf("fake count %d, want %d", counts[FailureFake], wantFake)
	}
	wantLowRes := int(cfg.LowResRate * n)
	if counts[FailureLowRes] != wantLowRes {
		t.Errorf("low-res count %d, want %d", counts[FailureLowRes], wantLowRes)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != cfg.NumImages {
		t.Errorf("failure counts sum to %d, want %d", total, cfg.NumImages)
	}
}

func TestClassBalanceRoughlyEven(t *testing.T) {
	ds := MustGenerate(DefaultConfig())
	counts := CountByLabel(ds.All())
	// Fake/close-up force truth to NoDamage and implicit forces Severe, so
	// perfect balance is impossible; verify each class holds 20–50%.
	for l := NoDamage; l < NumLabels; l++ {
		frac := float64(counts[l]) / 960
		if frac < 0.20 || frac > 0.50 {
			t.Errorf("class %v fraction %.3f outside [0.20, 0.50]", l, frac)
		}
	}
}

func TestDeceptiveImagesConsistency(t *testing.T) {
	ds := MustGenerate(DefaultConfig())
	for _, im := range ds.All() {
		switch im.Failure {
		case FailureFake:
			if im.TrueLabel != NoDamage || im.ApparentLabel != SevereDamage {
				t.Fatalf("fake image labels wrong: true=%v apparent=%v", im.TrueLabel, im.ApparentLabel)
			}
			if !im.Scene.IsFake {
				t.Fatal("fake image must have IsFake scene attribute")
			}
		case FailureCloseUp:
			if im.TrueLabel != NoDamage || im.ApparentLabel != SevereDamage {
				t.Fatalf("close-up labels wrong: true=%v apparent=%v", im.TrueLabel, im.ApparentLabel)
			}
		case FailureImplicit:
			if im.TrueLabel != SevereDamage || im.ApparentLabel != NoDamage {
				t.Fatalf("implicit labels wrong: true=%v apparent=%v", im.TrueLabel, im.ApparentLabel)
			}
			if !im.Scene.ShowsPeopleAffected {
				t.Fatal("implicit image must show affected people")
			}
		case FailureLowRes:
			if im.ApparentLabel != im.TrueLabel {
				t.Fatal("low-res image must not have a misleading apparent label")
			}
			if im.Scene.IsLegible {
				t.Fatal("low-res image must not be legible")
			}
		case FailureNone:
			if im.ApparentLabel != im.TrueLabel {
				t.Fatal("clean image apparent label must match truth")
			}
			if im.Scene.IsFake {
				t.Fatal("clean image must not be fake")
			}
		}
	}
}

func TestFeatureDims(t *testing.T) {
	ds := MustGenerate(DefaultConfig())
	im := ds.Train[0]
	if len(im.Deep) != DefaultDims.Deep {
		t.Errorf("deep dim %d, want %d", len(im.Deep), DefaultDims.Deep)
	}
	if len(im.Handcrafted) != DefaultDims.Handcrafted {
		t.Errorf("handcrafted dim %d, want %d", len(im.Handcrafted), DefaultDims.Handcrafted)
	}
	if len(im.Localization) != DefaultDims.Localization {
		t.Errorf("localization dim %d, want %d", len(im.Localization), DefaultDims.Localization)
	}
	if &im.Features(DeepView)[0] != &im.Deep[0] {
		t.Error("Features(DeepView) must return the deep slice")
	}
}

// Feature geometry: clean images must sit closer to their own class
// prototype cluster centroid than to other classes, while fake images must
// sit near the severe cluster despite a no-damage truth. This is the
// property the entire failure-mode story rests on.
func TestFeatureClusterGeometry(t *testing.T) {
	ds := MustGenerate(DefaultConfig())

	centroids := make([][]float64, NumLabels)
	counts := make([]int, NumLabels)
	for l := range centroids {
		centroids[l] = make([]float64, DefaultDims.Deep)
	}
	for _, im := range ds.All() {
		if im.Failure != FailureNone {
			continue
		}
		mathx.AddScaled(centroids[im.TrueLabel], 1, im.Deep)
		counts[im.TrueLabel]++
	}
	for l := range centroids {
		if counts[l] == 0 {
			t.Fatalf("no clean images for class %d", l)
		}
		mathx.Scale(centroids[l], 1/float64(counts[l]))
	}

	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}

	cleanCorrect, cleanTotal := 0, 0
	for _, im := range ds.All() {
		if im.Failure != FailureNone {
			continue
		}
		cleanTotal++
		best, bestD := -1, math.Inf(1)
		for l := range centroids {
			if d := dist(im.Deep, centroids[l]); d < bestD {
				best, bestD = l, d
			}
		}
		if Label(best) == im.TrueLabel {
			cleanCorrect++
		}
	}
	if acc := float64(cleanCorrect) / float64(cleanTotal); acc < 0.75 {
		t.Errorf("clean nearest-centroid accuracy %.3f too low; clusters not separable", acc)
	}

	// Fake images should look severe.
	fakeLooksSevere, fakeTotal := 0, 0
	for _, im := range ds.All() {
		if im.Failure != FailureFake {
			continue
		}
		fakeTotal++
		if dist(im.Deep, centroids[SevereDamage]) < dist(im.Deep, centroids[NoDamage]) {
			fakeLooksSevere++
		}
	}
	if fakeTotal == 0 {
		t.Fatal("no fake images generated")
	}
	if frac := float64(fakeLooksSevere) / float64(fakeTotal); frac < 0.8 {
		t.Errorf("only %.2f of fakes look severe; deception too weak", frac)
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero images", func(c *Config) { c.NumImages = 0 }},
		{"train too big", func(c *Config) { c.TrainImages = c.NumImages }},
		{"train zero", func(c *Config) { c.TrainImages = 0 }},
		{"failure rates too big", func(c *Config) { c.FakeRate = 0.95 }},
		{"negative rate", func(c *Config) { c.LowResRate = -0.1 }},
		{"zero dim", func(c *Config) { c.Dims.Deep = 0 }},
		{"zero noise", func(c *Config) { c.CleanNoise = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Errorf("config %s should be rejected", tt.name)
			}
		})
	}
}

func TestLabelStringAndValid(t *testing.T) {
	if NoDamage.String() != "no-damage" || SevereDamage.String() != "severe" {
		t.Error("label String() wrong")
	}
	if !ModerateDamage.Valid() || Label(7).Valid() {
		t.Error("Valid() wrong")
	}
	if FailureFake.String() != "fake" || FailureNone.String() != "none" {
		t.Error("failure String() wrong")
	}
}

func TestDeceptivePredicate(t *testing.T) {
	if !FailureFake.Deceptive() || !FailureImplicit.Deceptive() || !FailureCloseUp.Deceptive() {
		t.Error("fake/implicit/close-up must be deceptive")
	}
	if FailureLowRes.Deceptive() || FailureNone.Deceptive() {
		t.Error("low-res/none must not be deceptive")
	}
}

func TestMustGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate should panic on invalid config")
		}
	}()
	MustGenerate(Config{})
}
