// Package imagery provides the synthetic disaster-image substrate that
// replaces the paper's 960 Ecuador-earthquake social-media images.
//
// Real images are unavailable offline and a faithful CNN stack is out of
// scope (repro band 2/5), so each image is modelled as:
//
//   - a latent ground-truth damage label (no / moderate / severe);
//   - an optional failure mode drawn from the paper's Figure 1 taxonomy
//     (fake, close-up, low-resolution, implicit);
//   - three feature views ("deep", "handcrafted", "localization") sampled
//     from label-conditioned Gaussian clusters. Crucially, for deceptive
//     images the clusters correspond to the *apparent* label rather than
//     the true one — a fake photo of a collapsed road produces pixel
//     statistics indistinguishable from real severe damage. This is
//     precisely the property that makes the AI experts confidently wrong
//     and that retraining cannot repair, which the CrowdLearn crowd
//     offloading strategy exists to fix;
//   - scene attributes (is it fake? does it show a road? people?) that a
//     sufficiently careful human can perceive, which feed the crowd
//     questionnaire used by CQC.
package imagery

import (
	"fmt"
	"math/rand"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// Label is a damage-severity class. Values are zero-based because they
// index probability-distribution slices throughout the system.
type Label int

// The three damage severity classes used by the DDA application.
const (
	NoDamage Label = iota
	ModerateDamage
	SevereDamage
)

// NumLabels is the number of damage severity classes.
const NumLabels = 3

// String returns the human-readable class name.
func (l Label) String() string {
	switch l {
	case NoDamage:
		return "no-damage"
	case ModerateDamage:
		return "moderate"
	case SevereDamage:
		return "severe"
	default:
		return fmt.Sprintf("label(%d)", int(l))
	}
}

// Valid reports whether l is one of the three defined classes.
func (l Label) Valid() bool {
	return l >= NoDamage && l < NumLabels
}

// FailureMode classifies why AI experts fail on an image, mirroring the
// four example failures of Figure 1 in the paper.
type FailureMode int

// Failure modes. Clean images have FailureNone.
const (
	FailureNone FailureMode = iota
	// FailureFake: photoshopped or staged image whose visual content shows
	// damage that never happened (Figure 1a). Apparent label is severe,
	// truth is no-damage.
	FailureFake
	// FailureCloseUp: an extreme close-up (e.g. a pavement crack) that
	// looks catastrophic but is trivial in context (Figure 1b).
	FailureCloseUp
	// FailureLowRes: resolution too low for low-level features to carry
	// signal; feature views are dominated by noise (Figure 1c).
	FailureLowRes
	// FailureImplicit: the damage is evidenced by high-level context
	// (injured people being evacuated) invisible to pixel statistics
	// (Figure 1d). Apparent label is no-damage, truth is severe.
	FailureImplicit
)

// String returns the failure-mode name.
func (f FailureMode) String() string {
	switch f {
	case FailureNone:
		return "none"
	case FailureFake:
		return "fake"
	case FailureCloseUp:
		return "close-up"
	case FailureLowRes:
		return "low-res"
	case FailureImplicit:
		return "implicit"
	default:
		return fmt.Sprintf("failure(%d)", int(f))
	}
}

// Deceptive reports whether the failure mode produces *misleading* (rather
// than merely noisy) features — the class of failures that more training
// data cannot fix.
func (f FailureMode) Deceptive() bool {
	return f == FailureFake || f == FailureCloseUp || f == FailureImplicit
}

// SceneAttributes are the facts about an image that a human can observe
// and that the crowd questionnaire solicits (Figure 3 in the paper). They
// are ground-truth values; workers report noisy versions of them.
type SceneAttributes struct {
	// IsFake is true for photoshopped/staged images.
	IsFake bool
	// ShowsRoadDamage is true when the scene contains damaged roads.
	ShowsRoadDamage bool
	// ShowsBuildingDamage is true when the scene contains damaged buildings.
	ShowsBuildingDamage bool
	// ShowsPeopleAffected is true when people are visibly affected
	// (injured, evacuating) — the "implicit" signal of Figure 1d.
	ShowsPeopleAffected bool
	// IsLegible is false for images too low-resolution to assess
	// confidently even for humans.
	IsLegible bool
}

// Image is one synthetic social-media report.
type Image struct {
	// ID is unique within a dataset.
	ID int
	// TrueLabel is the golden ground-truth damage severity.
	TrueLabel Label
	// ApparentLabel is the severity the low-level features depict. Equal
	// to TrueLabel for clean and low-res images; different for deceptive
	// ones.
	ApparentLabel Label
	// Failure is the image's failure mode (FailureNone for clean images).
	Failure FailureMode
	// Scene holds the human-observable attributes.
	Scene SceneAttributes
	// HumanDifficulty in [0, 1) scales down every worker's labeling
	// accuracy on this image. It models the shared component of human
	// error — cluttered scenes, ambiguous severity — which makes worker
	// mistakes *correlated*. Correlated errors are what majority voting
	// cannot fix and what pushes the paper's Voting baseline down to
	// ~0.84 despite ~0.8 individual accuracy.
	HumanDifficulty float64

	// Deep, Handcrafted and Localization are the three feature views
	// consumed by the VGG16-, BoVW- and DDM-style experts respectively.
	Deep         []float64
	Handcrafted  []float64
	Localization []float64
}

// View identifies one of the three feature views.
type View int

// The feature views.
const (
	DeepView View = iota
	HandcraftedView
	LocalizationView
)

// Features returns the image's feature vector for the requested view.
func (im *Image) Features(v View) []float64 {
	switch v {
	case DeepView:
		return im.Deep
	case HandcraftedView:
		return im.Handcrafted
	case LocalizationView:
		return im.Localization
	default:
		panic(fmt.Sprintf("imagery: unknown view %d", int(v)))
	}
}

// Dims holds the dimensionality of each feature view.
type Dims struct {
	Deep         int
	Handcrafted  int
	Localization int
}

// DefaultDims mirrors a plausible ratio between CNN embeddings, BoVW
// histograms and Grad-CAM heatmap summaries.
var DefaultDims = Dims{Deep: 32, Handcrafted: 24, Localization: 16}

// Config parameterises dataset generation.
type Config struct {
	// NumImages is the total dataset size (paper: 960).
	NumImages int
	// TrainImages is how many go to the training split (paper: 560).
	TrainImages int
	// Dims sets feature dimensionalities.
	Dims Dims
	// FakeRate, CloseUpRate, LowResRate, ImplicitRate are the fractions of
	// the dataset exhibiting each failure mode. The remainder is clean.
	FakeRate     float64
	CloseUpRate  float64
	LowResRate   float64
	ImplicitRate float64
	// CleanNoise is the feature noise std for clean images relative to
	// unit cluster separation: higher means harder for AI.
	CleanNoise float64
	// LowResNoise is the (much larger) noise std for low-resolution images.
	LowResNoise float64
	// Seed drives all randomness in generation.
	Seed int64
}

// DefaultConfig reproduces the paper's dataset shape: 960 images, 560
// train / 400 test, balanced classes, and a failure-mode mix tuned so the
// AI-only experts land in the paper's 0.67–0.82 accuracy band.
func DefaultConfig() Config {
	return Config{
		NumImages:    960,
		TrainImages:  560,
		Dims:         DefaultDims,
		FakeRate:     0.04,
		CloseUpRate:  0.03,
		LowResRate:   0.07,
		ImplicitRate: 0.04,
		CleanNoise:   0.80,
		LowResNoise:  1.3,
		Seed:         1,
	}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.NumImages <= 0 {
		return fmt.Errorf("imagery: NumImages must be positive, got %d", c.NumImages)
	}
	if c.TrainImages <= 0 || c.TrainImages >= c.NumImages {
		return fmt.Errorf("imagery: TrainImages must be in (0, %d), got %d", c.NumImages, c.TrainImages)
	}
	total := c.FakeRate + c.CloseUpRate + c.LowResRate + c.ImplicitRate
	if total < 0 || total > 0.9 {
		return fmt.Errorf("imagery: failure rates sum to %.2f, must be in [0, 0.9]", total)
	}
	for _, r := range []float64{c.FakeRate, c.CloseUpRate, c.LowResRate, c.ImplicitRate} {
		if r < 0 {
			return fmt.Errorf("imagery: failure rates must be non-negative")
		}
	}
	if c.Dims.Deep <= 0 || c.Dims.Handcrafted <= 0 || c.Dims.Localization <= 0 {
		return fmt.Errorf("imagery: all feature dims must be positive, got %+v", c.Dims)
	}
	if c.CleanNoise <= 0 || c.LowResNoise <= 0 {
		return fmt.Errorf("imagery: noise levels must be positive")
	}
	return nil
}

// Dataset is a generated corpus split into train and test sets. The test
// set emulates the unseen images that arrive during sensing cycles.
type Dataset struct {
	Train []*Image
	Test  []*Image
	// Prototypes used at generation time, retained so tests can verify
	// cluster geometry. Indexed [view][label][dim].
	prototypes [3][NumLabels][]float64
	cfg        Config
}

// Config returns the configuration the dataset was generated with.
func (d *Dataset) Config() Config { return d.cfg }

// All returns train followed by test images (shared backing images).
func (d *Dataset) All() []*Image {
	out := make([]*Image, 0, len(d.Train)+len(d.Test))
	out = append(out, d.Train...)
	out = append(out, d.Test...)
	return out
}

// Generate builds a dataset from the configuration. Generation is fully
// deterministic given cfg.Seed.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := mathx.NewRand(cfg.Seed)

	ds := &Dataset{cfg: cfg}
	dims := [3]int{cfg.Dims.Deep, cfg.Dims.Handcrafted, cfg.Dims.Localization}
	// Cluster prototypes: orthogonal-ish random directions scaled to unit
	// separation. Localization view gets slightly wider separation (DDM is
	// the strongest expert in the paper); handcrafted slightly narrower
	// (BoVW is the weakest).
	separation := [3]float64{1.0, 0.8, 1.15}
	for v := 0; v < 3; v++ {
		for l := 0; l < NumLabels; l++ {
			proto := mathx.GaussianVector(rng, dims[v], 0, 1)
			norm := mathx.L2Norm(proto)
			mathx.Scale(proto, separation[v]/norm*2.9)
			ds.prototypes[v][l] = proto
		}
	}

	modes := assignFailureModes(rng, cfg)
	images := make([]*Image, cfg.NumImages)
	for i := range images {
		// Balanced class labels, as in the paper's dataset.
		trueLabel := Label(i % NumLabels)
		images[i] = ds.synthesize(rng, i, trueLabel, modes[i])
	}
	// Shuffle image order so the train/test split is not class-striped.
	rng.Shuffle(len(images), func(a, b int) { images[a], images[b] = images[b], images[a] })

	ds.Train = images[:cfg.TrainImages]
	ds.Test = images[cfg.TrainImages:]
	return ds, nil
}

// MustGenerate is Generate but panics on configuration errors. Intended
// for examples and benchmarks with static, known-good configs.
func MustGenerate(cfg Config) *Dataset {
	ds, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return ds
}

// assignFailureModes deterministically assigns modes by quota so the
// realised failure mix matches the configured rates exactly.
func assignFailureModes(rng *rand.Rand, cfg Config) []FailureMode {
	n := cfg.NumImages
	modes := make([]FailureMode, n)
	idx := 0
	fill := func(mode FailureMode, rate float64) {
		count := int(rate * float64(n))
		for j := 0; j < count && idx < n; j++ {
			modes[idx] = mode
			idx++
		}
	}
	fill(FailureFake, cfg.FakeRate)
	fill(FailureCloseUp, cfg.CloseUpRate)
	fill(FailureLowRes, cfg.LowResRate)
	fill(FailureImplicit, cfg.ImplicitRate)
	for ; idx < n; idx++ {
		modes[idx] = FailureNone
	}
	rng.Shuffle(n, func(i, j int) { modes[i], modes[j] = modes[j], modes[i] })
	return modes
}

// synthesize builds one image with the given truth and failure mode.
func (d *Dataset) synthesize(rng *rand.Rand, id int, trueLabel Label, mode FailureMode) *Image {
	im := &Image{ID: id, TrueLabel: trueLabel, Failure: mode}

	// Resolve the apparent label and ground-truth override per mode.
	switch mode {
	case FailureFake:
		// A fake always depicts spectacular damage; the truth is that
		// nothing (relevant) happened.
		im.TrueLabel = NoDamage
		im.ApparentLabel = SevereDamage
	case FailureCloseUp:
		// A close-up of a trivial crack looks severe; in context the
		// damage is at most minor.
		im.TrueLabel = NoDamage
		im.ApparentLabel = SevereDamage
	case FailureImplicit:
		// Injured people being carried away: pixels look calm, the truth
		// is severe.
		im.TrueLabel = SevereDamage
		im.ApparentLabel = NoDamage
	default:
		im.ApparentLabel = im.TrueLabel
	}

	noise := d.cfg.CleanNoise
	signal := 1.0
	if mode == FailureLowRes {
		// Low resolution destroys most of the class signal and adds noise:
		// the features collapse toward the inter-class centroid, which is
		// precisely what makes every expert *uncertain* (high committee
		// entropy) rather than confidently wrong.
		noise = d.cfg.LowResNoise
		signal = 0.15
	}
	views := make([][]float64, 3)
	for v := 0; v < 3; v++ {
		f := mathx.Clone(d.prototypes[v][im.ApparentLabel])
		mathx.Scale(f, signal)
		mathx.AddGaussianNoise(rng, f, noise)
		views[v] = f
	}
	im.Deep, im.Handcrafted, im.Localization = views[0], views[1], views[2]

	// Shared human difficulty: most images are easy (Beta(2,6) has mean
	// 0.25); low-resolution images are harder for humans too.
	im.HumanDifficulty = 0.38 * mathx.Beta(rng, 2, 6)
	if mode == FailureLowRes {
		im.HumanDifficulty = mathx.Clamp(im.HumanDifficulty+0.22, 0, 0.9)
	}

	im.Scene = synthesizeScene(rng, im)
	return im
}

// synthesizeScene derives human-observable attributes consistent with the
// truth and failure mode.
func synthesizeScene(rng *rand.Rand, im *Image) SceneAttributes {
	s := SceneAttributes{IsLegible: im.Failure != FailureLowRes}
	s.IsFake = im.Failure == FailureFake

	damaged := im.TrueLabel != NoDamage
	switch {
	case im.Failure == FailureFake || im.Failure == FailureCloseUp:
		// The depicted subject is usually a road or building even though
		// no real damage occurred.
		s.ShowsRoadDamage = mathx.Bernoulli(rng, 0.6)
		s.ShowsBuildingDamage = !s.ShowsRoadDamage && mathx.Bernoulli(rng, 0.7)
	case damaged:
		s.ShowsRoadDamage = mathx.Bernoulli(rng, 0.5)
		s.ShowsBuildingDamage = mathx.Bernoulli(rng, 0.55)
		if !s.ShowsRoadDamage && !s.ShowsBuildingDamage && im.Failure != FailureImplicit {
			s.ShowsBuildingDamage = true
		}
	}
	switch {
	case im.Failure == FailureImplicit:
		// The implicit signal: visibly affected people.
		s.ShowsPeopleAffected = true
		s.ShowsRoadDamage = false
		s.ShowsBuildingDamage = mathx.Bernoulli(rng, 0.2)
	case im.TrueLabel == SevereDamage:
		s.ShowsPeopleAffected = mathx.Bernoulli(rng, 0.45)
	case im.TrueLabel == ModerateDamage:
		s.ShowsPeopleAffected = mathx.Bernoulli(rng, 0.15)
	default:
		s.ShowsPeopleAffected = mathx.Bernoulli(rng, 0.03)
	}
	return s
}

// CountByFailure returns how many images in the slice carry each failure
// mode; useful for experiment reporting and tests.
func CountByFailure(images []*Image) map[FailureMode]int {
	out := make(map[FailureMode]int, 5)
	for _, im := range images {
		out[im.Failure]++
	}
	return out
}

// CountByLabel returns the class histogram of the slice.
func CountByLabel(images []*Image) map[Label]int {
	out := make(map[Label]int, NumLabels)
	for _, im := range images {
		out[im.TrueLabel]++
	}
	return out
}
