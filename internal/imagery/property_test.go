package imagery

import (
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// Property: any valid configuration yields a structurally valid dataset —
// correct split sizes, valid labels, consistent failure-mode semantics,
// complete feature views, difficulty in range.
func TestGenerateInvariantsProperty(t *testing.T) {
	rng := mathx.NewRand(21)
	for trial := 0; trial < 40; trial++ {
		cfg := Config{
			NumImages:    60 + rng.Intn(400),
			Dims:         Dims{Deep: 4 + rng.Intn(40), Handcrafted: 4 + rng.Intn(30), Localization: 4 + rng.Intn(20)},
			FakeRate:     rng.Float64() * 0.1,
			CloseUpRate:  rng.Float64() * 0.1,
			LowResRate:   rng.Float64() * 0.1,
			ImplicitRate: rng.Float64() * 0.1,
			CleanNoise:   0.2 + rng.Float64(),
			LowResNoise:  0.5 + rng.Float64()*2,
			Seed:         rng.Int63(),
		}
		cfg.TrainImages = 1 + rng.Intn(cfg.NumImages-1)
		ds, err := Generate(cfg)
		if err != nil {
			t.Fatalf("valid config rejected: %v (%+v)", err, cfg)
		}
		if len(ds.Train) != cfg.TrainImages || len(ds.Test) != cfg.NumImages-cfg.TrainImages {
			t.Fatalf("split sizes wrong for %+v", cfg)
		}
		seenIDs := make(map[int]bool, cfg.NumImages)
		for _, im := range ds.All() {
			if seenIDs[im.ID] {
				t.Fatalf("duplicate image id %d", im.ID)
			}
			seenIDs[im.ID] = true
			if !im.TrueLabel.Valid() || !im.ApparentLabel.Valid() {
				t.Fatalf("invalid labels on image %d", im.ID)
			}
			if im.Failure.Deceptive() == (im.TrueLabel == im.ApparentLabel) {
				t.Fatalf("deception flag inconsistent on image %d: failure %v true %v apparent %v",
					im.ID, im.Failure, im.TrueLabel, im.ApparentLabel)
			}
			if len(im.Deep) != cfg.Dims.Deep ||
				len(im.Handcrafted) != cfg.Dims.Handcrafted ||
				len(im.Localization) != cfg.Dims.Localization {
				t.Fatalf("feature dims wrong on image %d", im.ID)
			}
			if im.HumanDifficulty < 0 || im.HumanDifficulty >= 1 {
				t.Fatalf("difficulty %v out of range on image %d", im.HumanDifficulty, im.ID)
			}
		}
	}
}
