package imagery

import (
	"bytes"
	"strings"
	"testing"
)

func TestExportImportRoundtrip(t *testing.T) {
	ds := MustGenerate(DefaultConfig())
	var buf bytes.Buffer
	if err := ds.Export(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Train) != len(ds.Train) || len(restored.Test) != len(ds.Test) {
		t.Fatalf("split sizes changed: %d/%d vs %d/%d",
			len(restored.Train), len(restored.Test), len(ds.Train), len(ds.Test))
	}
	for i, im := range ds.Train {
		r := restored.Train[i]
		if r.ID != im.ID || r.TrueLabel != im.TrueLabel || r.Failure != im.Failure {
			t.Fatalf("train image %d metadata changed", i)
		}
		if r.Scene != im.Scene {
			t.Fatalf("train image %d scene changed", i)
		}
		if r.HumanDifficulty != im.HumanDifficulty {
			t.Fatalf("train image %d difficulty changed", i)
		}
		for j := range im.Deep {
			if r.Deep[j] != im.Deep[j] {
				t.Fatalf("train image %d deep features changed", i)
			}
		}
	}
	if restored.Config().NumImages != ds.Config().NumImages {
		t.Error("config not preserved")
	}
}

func TestImportRejectsBadInput(t *testing.T) {
	if _, err := Import(strings.NewReader("not json")); err == nil {
		t.Error("garbage must be rejected")
	}
	if _, err := Import(strings.NewReader(`{"train":[],"test":[]}`)); err == nil {
		t.Error("empty dataset must be rejected")
	}
	bad := `{"train":[{"id":1,"trueLabel":9,"apparentLabel":0,"deep":[1],"handcrafted":[1],"localization":[1]}],
	         "test":[{"id":2,"trueLabel":0,"apparentLabel":0,"deep":[1],"handcrafted":[1],"localization":[1]}]}`
	if _, err := Import(strings.NewReader(bad)); err == nil {
		t.Error("invalid label must be rejected")
	}
	missing := `{"train":[{"id":1,"trueLabel":0,"apparentLabel":0}],
	            "test":[{"id":2,"trueLabel":0,"apparentLabel":0,"deep":[1],"handcrafted":[1],"localization":[1]}]}`
	if _, err := Import(strings.NewReader(missing)); err == nil {
		t.Error("missing feature views must be rejected")
	}
	badDifficulty := `{"train":[{"id":1,"trueLabel":0,"apparentLabel":0,"humanDifficulty":1.5,"deep":[1],"handcrafted":[1],"localization":[1]}],
	                  "test":[{"id":2,"trueLabel":0,"apparentLabel":0,"deep":[1],"handcrafted":[1],"localization":[1]}]}`
	if _, err := Import(strings.NewReader(badDifficulty)); err == nil {
		t.Error("out-of-range difficulty must be rejected")
	}
}
