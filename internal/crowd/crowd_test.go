package crowd

import (
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/simclock"
)

func testImages(t *testing.T) []*imagery.Image {
	t.Helper()
	ds, err := imagery.Generate(imagery.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ds.Train
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero workers", Config{NumWorkers: 0, WorkersPerQuery: 5}},
		{"zero per query", Config{NumWorkers: 10, WorkersPerQuery: 0}},
		{"per query exceeds pool", Config{NumWorkers: 3, WorkersPerQuery: 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewPlatform(tt.cfg); err == nil {
				t.Errorf("%s should be rejected", tt.name)
			}
		})
	}
}

func TestSubmitBasics(t *testing.T) {
	images := testImages(t)
	p := MustNewPlatform(DefaultConfig())
	clk := simclock.New()
	queries := []Query{
		{Image: images[0], Incentive: 4},
		{Image: images[1], Incentive: 4},
	}
	results, err := p.Submit(clk, Evening, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for qi, r := range results {
		if len(r.Responses) != 5 {
			t.Errorf("query %d got %d responses, want 5", qi, len(r.Responses))
		}
		seen := make(map[int]bool)
		var maxDelay time.Duration
		for _, resp := range r.Responses {
			if resp.QueryIndex != qi {
				t.Errorf("response cross-wired: index %d in result %d", resp.QueryIndex, qi)
			}
			if seen[resp.WorkerID] {
				t.Errorf("worker %d answered query %d twice", resp.WorkerID, qi)
			}
			seen[resp.WorkerID] = true
			if resp.Delay <= 0 {
				t.Errorf("non-positive delay %v", resp.Delay)
			}
			if resp.Delay > maxDelay {
				maxDelay = resp.Delay
			}
			if !resp.Label.Valid() {
				t.Errorf("invalid label %v", resp.Label)
			}
			if resp.Context != Evening || resp.Incentive != 4 {
				t.Errorf("response metadata wrong: %+v", resp)
			}
		}
		if r.CompletionDelay != maxDelay {
			t.Errorf("completion delay %v != max response delay %v", r.CompletionDelay, maxDelay)
		}
	}
}

func TestSubmitChargesBudget(t *testing.T) {
	images := testImages(t)
	p := MustNewPlatform(DefaultConfig())
	queries := []Query{{Image: images[0], Incentive: 10}}
	if _, err := p.Submit(simclock.New(), Morning, queries); err != nil {
		t.Fatal(err)
	}
	// One query at 10 cents: the HIT price covers all assignments.
	if got := p.Spent(); got != 0.10 {
		t.Errorf("Spent = %v, want 0.10", got)
	}
}

func TestSubmitRejectsBadInput(t *testing.T) {
	images := testImages(t)
	p := MustNewPlatform(DefaultConfig())
	if _, err := p.Submit(simclock.New(), TemporalContext(9), []Query{{Image: images[0], Incentive: 1}}); err == nil {
		t.Error("invalid context must be rejected")
	}
	if _, err := p.Submit(simclock.New(), Morning, []Query{{Image: nil, Incentive: 1}}); err == nil {
		t.Error("nil image must be rejected")
	}
	if _, err := p.Submit(simclock.New(), Morning, []Query{{Image: images[0], Incentive: 0}}); err == nil {
		t.Error("zero incentive must be rejected")
	}
	results, err := p.Submit(simclock.New(), Morning, nil)
	if err != nil || results != nil {
		t.Error("empty batch should be a no-op")
	}
}

func TestSubmitDeterminism(t *testing.T) {
	images := testImages(t)
	run := func() []QueryResult {
		p := MustNewPlatform(DefaultConfig())
		queries := []Query{{Image: images[0], Incentive: 4}, {Image: images[1], Incentive: 4}}
		results, err := p.Submit(simclock.New(), Afternoon, queries)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	a, b := run(), run()
	for i := range a {
		if a[i].CompletionDelay != b[i].CompletionDelay {
			t.Fatal("identically seeded platforms must produce identical delays")
		}
		for j := range a[i].Responses {
			if a[i].Responses[j].Label != b[i].Responses[j].Label {
				t.Fatal("identically seeded platforms must produce identical labels")
			}
		}
	}
}

// Figure 5 shape: morning delay must fall substantially from 1c to 20c,
// while evening delay must be nearly flat across mid-range incentives.
func TestDelaySurfaceShape(t *testing.T) {
	m1 := meanDelaySeconds(Morning, 1)
	m20 := meanDelaySeconds(Morning, 20)
	if m1 < 2*m20 {
		t.Errorf("morning delay should fall sharply with incentive: 1c=%v 20c=%v", m1, m20)
	}
	e4 := meanDelaySeconds(Evening, 4)
	e10 := meanDelaySeconds(Evening, 10)
	if ratio := e4 / e10; ratio > 1.15 || ratio < 0.87 {
		t.Errorf("evening mid-range delays should be nearly flat: 4c=%v 10c=%v", e4, e10)
	}
	// Evening must be faster than morning at low incentives (workers are
	// active at night — the pilot-study observation).
	if meanDelaySeconds(Evening, 2) >= meanDelaySeconds(Morning, 2) {
		t.Error("evening should out-pace morning at low incentives")
	}
	// Delay must be monotone non-increasing in incentive in every context.
	for _, ctx := range Contexts() {
		prev := meanDelaySeconds(ctx, 1)
		for _, inc := range []Cents{2, 4, 6, 8, 10, 20} {
			cur := meanDelaySeconds(ctx, inc)
			if cur > prev+1e-9 {
				t.Errorf("%v: delay increased from %v to %v at %v", ctx, prev, cur, inc)
			}
			prev = cur
		}
	}
}

// Figure 6 shape: effort (and therefore quality) must be visibly lower at
// 1 cent than at 4+, and flat afterwards.
func TestEffortFactorShape(t *testing.T) {
	e1, e2, e4, e20 := effortFactor(1), effortFactor(2), effortFactor(4), effortFactor(20)
	if e1 >= e2 || e2 >= e4 {
		t.Errorf("effort must rise over low incentives: %v %v %v", e1, e2, e4)
	}
	if e20-e4 > 0.02 {
		t.Errorf("effort must plateau: e4=%v e20=%v", e4, e20)
	}
	if e1 < 0.80 || e1 > 0.90 {
		t.Errorf("1-cent effort %v outside the calibrated band", e1)
	}
}

func TestWorkerPopulationStatistics(t *testing.T) {
	p := MustNewPlatform(Config{NumWorkers: 500, WorkersPerQuery: 5, Seed: 3})
	var rel, skill, evening, morning float64
	for _, w := range p.workers {
		rel += w.Reliability
		skill += w.ContextSkill
		evening += w.Activity[Evening]
		morning += w.Activity[Morning]
	}
	n := float64(len(p.workers))
	if m := rel / n; m < 0.78 || m > 0.92 {
		t.Errorf("mean reliability %v outside [0.78, 0.92]", m)
	}
	if m := skill / n; m < 0.65 || m > 0.88 {
		t.Errorf("mean context skill %v outside [0.65, 0.88]", m)
	}
	if evening <= morning {
		t.Error("evening activity should exceed morning activity")
	}
}

// The crowd must beat the AI on deceptive images: worker accuracy on fake
// images should be far above chance because ContextSkill exposes them.
func TestWorkersResistDeception(t *testing.T) {
	ds := imagery.MustGenerate(imagery.DefaultConfig())
	p := MustNewPlatform(DefaultConfig())

	var fakes []*imagery.Image
	for _, im := range ds.All() {
		if im.Failure == imagery.FailureFake {
			fakes = append(fakes, im)
		}
	}
	if len(fakes) == 0 {
		t.Fatal("no fake images")
	}
	queries := make([]Query, len(fakes))
	for i, im := range fakes {
		queries[i] = Query{Image: im, Incentive: 6}
	}
	results, err := p.Submit(simclock.New(), Evening, queries)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for _, qr := range results {
		for _, r := range qr.Responses {
			total++
			if r.Label == qr.Query.Image.TrueLabel {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.5 {
		t.Errorf("crowd accuracy on fakes %.3f; humans must beat chance on deception", acc)
	}
}

func TestRunPilotShape(t *testing.T) {
	images := testImages(t)
	p := MustNewPlatform(DefaultConfig())
	data, err := RunPilot(p, images, DefaultPilotConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 4 contexts x 7 incentives cells.
	if len(data.Cells) != 28 {
		t.Fatalf("got %d cells, want 28", len(data.Cells))
	}
	for _, cell := range data.Cells {
		if len(cell.Results) != 20 {
			t.Errorf("cell (%v,%v) has %d queries, want 20", cell.Context, cell.Incentive, len(cell.Results))
		}
	}
	if got := len(data.AllResults()); got != 28*20 {
		t.Errorf("AllResults length %d, want %d", got, 28*20)
	}
	if got := len(data.ResultsByContext(Morning)); got != 7*20 {
		t.Errorf("morning results %d, want %d", got, 7*20)
	}
	if data.Cell(Morning, 4) == nil {
		t.Error("Cell lookup failed")
	}
	if data.Cell(Morning, 3) != nil {
		t.Error("Cell lookup for absent incentive should be nil")
	}
}

func TestRunPilotValidation(t *testing.T) {
	p := MustNewPlatform(DefaultConfig())
	images := testImages(t)
	if _, err := RunPilot(p, nil, DefaultPilotConfig()); err == nil {
		t.Error("empty image pool must be rejected")
	}
	if _, err := RunPilot(p, images, PilotConfig{Incentives: []Cents{1}, QueriesPerCell: 0}); err == nil {
		t.Error("zero queries per cell must be rejected")
	}
	if _, err := RunPilot(p, images, PilotConfig{QueriesPerCell: 5}); err == nil {
		t.Error("no incentive levels must be rejected")
	}
}

// Pilot-level reproduction of Figure 5/6: delay ordering and quality
// plateau must be visible in sampled data, not just in the mean surface.
func TestPilotReproducesPaperShapes(t *testing.T) {
	images := testImages(t)
	p := MustNewPlatform(DefaultConfig())
	data, err := RunPilot(p, images, DefaultPilotConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Morning 1c must be much slower than morning 20c.
	d1 := data.MeanQueryDelay(Morning, 1)
	d20 := data.MeanQueryDelay(Morning, 20)
	if d1 < d20*3/2 {
		t.Errorf("morning 1c delay %v should dominate 20c %v", d1, d20)
	}
	// Quality: 1c worse than 6c; 6c to 20c within noise.
	q1 := data.WorkerAccuracy(1)
	q6 := data.WorkerAccuracy(6)
	q20 := data.WorkerAccuracy(20)
	if q1 >= q6 {
		t.Errorf("1c quality %v should be below 6c %v", q1, q6)
	}
	if q6 < 0.70 || q6 > 0.92 {
		t.Errorf("6c quality %v outside the paper's ~0.8 band", q6)
	}
	if diff := q20 - q6; diff > 0.06 || diff < -0.06 {
		t.Errorf("quality should plateau after 6c: q6=%v q20=%v", q6, q20)
	}
	if n := len(data.WorkerCorrectness(1)); n != 4*20*5 {
		t.Errorf("correctness samples %d, want 400", n)
	}
}

func TestMeanCompletionDelayEmpty(t *testing.T) {
	if MeanCompletionDelay(nil) != 0 {
		t.Error("empty batch mean delay must be 0")
	}
}

func TestContextAndCentsHelpers(t *testing.T) {
	if Morning.String() != "morning" || Midnight.String() != "midnight" {
		t.Error("context String wrong")
	}
	if !Evening.Valid() || TemporalContext(4).Valid() {
		t.Error("context Valid wrong")
	}
	if len(Contexts()) != NumContexts {
		t.Error("Contexts length wrong")
	}
	if Cents(250).Dollars() != 2.5 {
		t.Error("Dollars conversion wrong")
	}
	if Cents(4).String() != "4c" {
		t.Error("Cents String wrong")
	}
	if len(DefaultIncentiveLevels()) != 7 {
		t.Error("default incentive levels wrong")
	}
}
