package crowd

import (
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/simclock"
)

func TestChurnValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChurnRate = -0.1
	if _, err := NewPlatform(cfg); err == nil {
		t.Error("negative churn must be rejected")
	}
	cfg.ChurnRate = 1.5
	if _, err := NewPlatform(cfg); err == nil {
		t.Error("churn above 1 must be rejected")
	}
}

func TestChurnReplacesIdentities(t *testing.T) {
	ds := imagery.MustGenerate(imagery.DefaultConfig())
	cfg := DefaultConfig()
	cfg.ChurnRate = 0.5
	cfg.Seed = 7
	p := MustNewPlatform(cfg)

	before := make(map[int]bool, len(p.workers))
	for _, w := range p.workers {
		before[w.ID] = true
	}
	queries := []Query{{Image: ds.Train[0], Incentive: 4}}
	for i := 0; i < 4; i++ {
		if _, err := p.Submit(simclock.New(), Evening, queries); err != nil {
			t.Fatal(err)
		}
	}
	replaced := 0
	for _, w := range p.workers {
		if !before[w.ID] {
			replaced++
		}
	}
	// After 4 batches at 50% churn, ~94% of identities should be new.
	if frac := float64(replaced) / float64(len(p.workers)); frac < 0.8 {
		t.Errorf("only %.2f of identities replaced after heavy churn", frac)
	}
	// Population size must be invariant.
	if len(p.workers) != cfg.NumWorkers {
		t.Errorf("population size drifted to %d", len(p.workers))
	}
	// IDs must never repeat.
	seen := make(map[int]bool)
	for _, w := range p.workers {
		if seen[w.ID] {
			t.Fatalf("duplicate worker id %d", w.ID)
		}
		seen[w.ID] = true
	}
}

func TestZeroChurnKeepsIdentities(t *testing.T) {
	ds := imagery.MustGenerate(imagery.DefaultConfig())
	p := MustNewPlatform(DefaultConfig())
	before := make([]int, len(p.workers))
	for i, w := range p.workers {
		before[i] = w.ID
	}
	queries := []Query{{Image: ds.Train[0], Incentive: 4}}
	if _, err := p.Submit(simclock.New(), Morning, queries); err != nil {
		t.Fatal(err)
	}
	for i, w := range p.workers {
		if w.ID != before[i] {
			t.Fatal("zero churn must keep identities")
		}
	}
}

// Population statistics stay stationary under churn: the aggregate delay
// surface should not drift even when every identity has turned over.
func TestChurnPreservesPopulationStatistics(t *testing.T) {
	ds := imagery.MustGenerate(imagery.DefaultConfig())
	cfg := DefaultConfig()
	cfg.ChurnRate = 0.3
	cfg.Seed = 9
	p := MustNewPlatform(cfg)
	queries := make([]Query, 20)
	for i := range queries {
		queries[i] = Query{Image: ds.Train[i], Incentive: 6}
	}
	early, err := p.Submit(simclock.New(), Evening, queries)
	if err != nil {
		t.Fatal(err)
	}
	// Burn through many churn rounds.
	for i := 0; i < 20; i++ {
		if _, err := p.Submit(simclock.New(), Evening, queries[:2]); err != nil {
			t.Fatal(err)
		}
	}
	late, err := p.Submit(simclock.New(), Evening, queries)
	if err != nil {
		t.Fatal(err)
	}
	e, l := MeanCompletionDelay(early).Seconds(), MeanCompletionDelay(late).Seconds()
	if ratio := l / e; ratio > 1.5 || ratio < 0.67 {
		t.Errorf("delay statistics drifted under churn: early %.1fs late %.1fs", e, l)
	}
}
