package crowd

import (
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/simclock"
)

func benchImages(b *testing.B) []*imagery.Image {
	b.Helper()
	ds, err := imagery.Generate(imagery.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return ds.Train
}

func BenchmarkSubmitBatch(b *testing.B) {
	images := benchImages(b)
	p := MustNewPlatform(DefaultConfig())
	queries := make([]Query, 10)
	for i := range queries {
		queries[i] = Query{Image: images[i], Incentive: 6}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Submit(simclock.New(), Evening, queries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunPilot(b *testing.B) {
	images := benchImages(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := MustNewPlatform(DefaultConfig())
		if _, err := RunPilot(p, images, DefaultPilotConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
