package crowd

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
	"github.com/crowdlearn/crowdlearn/internal/simclock"
)

// ErrUnavailable signals that the platform cannot accept posts right now
// — a full marketplace outage. The simulated Platform never returns it
// itself; fault injectors (internal/faults) wrap Submit with it so the
// closed loop can exercise outage recovery. Callers should treat it as
// transient: retry the post or degrade to AI labels rather than aborting
// the sensing cycle.
var ErrUnavailable = errors.New("crowd: platform unavailable")

// Query is one crowd query (Definition 2): an image whose label and
// contextual evidence the requester wants.
type Query struct {
	// Image is the data sample to assess.
	Image *imagery.Image
	// Incentive is the payment offered per assignment.
	Incentive Cents
}

// Response is one worker's answer to a query (Definition 3).
type Response struct {
	// QueryIndex identifies the query within the submitted batch.
	QueryIndex int
	// WorkerID is the responding worker.
	WorkerID int
	// Label is the worker's damage assessment.
	Label imagery.Label
	// Questionnaire holds the worker's contextual evidence.
	Questionnaire Questionnaire
	// Delay is how long after submission this assignment completed.
	Delay time.Duration
	// Incentive echoes the payment for the assignment.
	Incentive Cents
	// Context echoes the temporal context the query ran under.
	Context TemporalContext
}

// QueryResult groups the responses to a single query.
type QueryResult struct {
	Query Query
	// Responses holds one entry per assignment, ordered by completion.
	Responses []Response
	// CompletionDelay is the time until the final assignment completed —
	// the HIT's end-to-end crowd delay.
	CompletionDelay time.Duration
}

// Config parameterises the simulated platform.
type Config struct {
	// NumWorkers is the worker-population size.
	NumWorkers int
	// WorkersPerQuery is the assignments per HIT (paper: 5).
	WorkersPerQuery int
	// AdversarialFraction is the share of the population that answers
	// maliciously: labels follow the image's (possibly misleading)
	// appearance regardless of effort, and questionnaire answers are
	// inverted. Zero by default; the failure-injection tests use it to
	// probe quality-control robustness.
	AdversarialFraction float64
	// ChurnRate is the per-batch probability that any given worker
	// leaves the platform and is replaced by a fresh worker with a new
	// identity. Churn keeps the *population statistics* stationary while
	// destroying per-worker reputation — the dynamics the paper warns
	// about when noting that workers "new to the platform ... do not have
	// sufficient labeling history".
	ChurnRate float64
	// AbandonRate is the probability that a worker accepts an assignment
	// and then abandons it, forcing a silent re-post to a fresh worker.
	// Each abandonment adds a partial wait before the replacement starts,
	// thickening the delay tail — a major source of real MTurk latency
	// variance. Zero by default.
	AbandonRate float64
	// Seed drives the worker population and all response sampling.
	Seed int64
}

// DefaultConfig mirrors the paper's setup: each query is answered by 5
// workers from a large anonymous pool.
func DefaultConfig() Config {
	return Config{NumWorkers: 240, WorkersPerQuery: 5, Seed: 1}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumWorkers <= 0 {
		return errors.New("crowd: NumWorkers must be positive")
	}
	if c.WorkersPerQuery <= 0 {
		return errors.New("crowd: WorkersPerQuery must be positive")
	}
	if c.WorkersPerQuery > c.NumWorkers {
		return fmt.Errorf("crowd: WorkersPerQuery %d exceeds population %d", c.WorkersPerQuery, c.NumWorkers)
	}
	if c.AdversarialFraction < 0 || c.AdversarialFraction > 1 {
		return fmt.Errorf("crowd: AdversarialFraction %v outside [0, 1]", c.AdversarialFraction)
	}
	if c.ChurnRate < 0 || c.ChurnRate > 1 {
		return fmt.Errorf("crowd: ChurnRate %v outside [0, 1]", c.ChurnRate)
	}
	if c.AbandonRate < 0 || c.AbandonRate >= 1 {
		return fmt.Errorf("crowd: AbandonRate %v outside [0, 1)", c.AbandonRate)
	}
	return nil
}

// Platform is the simulated crowdsourcing marketplace. It is a black box
// from the requester's perspective: the requester submits queries with
// incentives and observes responses and delays; it cannot select workers
// (observation 1 in Section III-B).
type Platform struct {
	cfg     Config
	workers []*Worker
	rng     *rand.Rand
	spent   float64 // dollars paid out so far
	nextID  int     // next worker identity for churn replacements
}

// NewPlatform builds a platform with a deterministic worker population.
func NewPlatform(cfg Config) (*Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := mathx.NewRand(cfg.Seed)
	workers := newWorkerPopulation(rng, cfg.NumWorkers)
	if cfg.AdversarialFraction > 0 {
		for _, w := range workers {
			if mathx.Bernoulli(rng, cfg.AdversarialFraction) {
				w.Adversarial = true
			}
		}
	}
	return &Platform{
		cfg:     cfg,
		workers: workers,
		rng:     rng,
		nextID:  cfg.NumWorkers,
	}, nil
}

// churn replaces each worker with a fresh identity with probability
// ChurnRate. Adversarial status re-rolls with the configured fraction so
// the population mix stays stationary.
func (p *Platform) churn() {
	if p.cfg.ChurnRate <= 0 {
		return
	}
	for i := range p.workers {
		if !mathx.Bernoulli(p.rng, p.cfg.ChurnRate) {
			continue
		}
		fresh := newWorker(p.rng, p.nextID)
		p.nextID++
		if p.cfg.AdversarialFraction > 0 && mathx.Bernoulli(p.rng, p.cfg.AdversarialFraction) {
			fresh.Adversarial = true
		}
		p.workers[i] = fresh
	}
}

// MustNewPlatform is NewPlatform but panics on config errors.
func MustNewPlatform(cfg Config) *Platform {
	p, err := NewPlatform(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Workers exposes the population size (not the workers themselves — the
// requester cannot inspect them; tests use the internal field directly).
func (p *Platform) Workers() int { return len(p.workers) }

// Spent returns the total dollars paid out so far.
func (p *Platform) Spent() float64 { return p.spent }

// meanDelaySeconds is the expected assignment delay for an incentive under
// a temporal context, before worker-level and sampling noise.
//
// The surface is calibrated to Figure 5 of the paper:
//   - morning/afternoon: delay decreases steadily with incentive (workers
//     are scarce and selective);
//   - evening/midnight: workers are abundant, so all mid-range incentives
//     have similar, low delay; only the 1-cent floor is penalised and the
//     20-cent ceiling slightly rewarded.
func meanDelaySeconds(ctx TemporalContext, incentive Cents) float64 {
	frac := (float64(incentive) - 1) / 19 // 0 at 1 cent, 1 at 20 cents
	switch ctx {
	case Morning:
		// Scarce, selective workers: delay falls steadily (near linearly)
		// across the whole incentive range.
		return 980 - 690*frac
	case Afternoon:
		return 820 - 555*frac
	case Evening:
		// Abundant night-owl workers: only the 1-cent floor is punished;
		// everything from ~4 cents up is equally fast.
		return 225 + 205*math.Exp(-1.2*(float64(incentive)-1))
	case Midnight:
		return 240 + 230*math.Exp(-1.0*(float64(incentive)-1))
	default:
		return 600
	}
}

// sampleDelay draws one assignment's completion delay.
func (p *Platform) sampleDelay(ctx TemporalContext, incentive Cents, w *Worker) time.Duration {
	mean := meanDelaySeconds(ctx, incentive) * w.Diligence
	// Log-normal multiplicative noise with sigma 0.25 keeps the heavy tail
	// seen on real MTurk without exploding variance.
	d := mean * mathx.LogNormal(p.rng, -0.03125, 0.25)
	return time.Duration(d * float64(time.Second))
}

// completeAssignment resolves one assignment slot: the initial worker may
// abandon the HIT (with probability AbandonRate, repeatedly), in which
// case a partial wait accrues and the assignment silently re-posts to a
// fresh randomly drawn worker. Returns the worker who finally answered
// and the total delay.
func (p *Platform) completeAssignment(ctx TemporalContext, incentive Cents, w *Worker) (*Worker, time.Duration) {
	const maxReposts = 5
	var total time.Duration
	for attempt := 0; ; attempt++ {
		if attempt >= maxReposts || p.cfg.AbandonRate == 0 || !mathx.Bernoulli(p.rng, p.cfg.AbandonRate) {
			return w, total + p.sampleDelay(ctx, incentive, w)
		}
		// Abandoned mid-task: a fraction of a normal completion elapses
		// before the platform re-posts.
		total += p.sampleDelay(ctx, incentive, w) * 2 / 5
		w = p.workers[p.rng.Intn(len(p.workers))]
	}
}

// pickWorkers samples WorkersPerQuery distinct workers weighted by their
// activity in the given context.
func (p *Platform) pickWorkers(ctx TemporalContext) []*Worker {
	weights := make([]float64, len(p.workers))
	for i, w := range p.workers {
		weights[i] = w.Activity[ctx]
	}
	chosen := make([]*Worker, 0, p.cfg.WorkersPerQuery)
	for len(chosen) < p.cfg.WorkersPerQuery {
		i := mathx.Categorical(p.rng, weights)
		weights[i] = 0 // without replacement
		chosen = append(chosen, p.workers[i])
	}
	return chosen
}

// Submit posts a batch of queries under the given temporal context and
// returns one QueryResult per query. Assignment completions are scheduled
// on clk relative to its current time; Submit drains the clock so that on
// return clk.Now() has advanced to the completion of the slowest
// assignment in the batch. Pass a fresh clock to measure a batch in
// isolation.
//
// Each query costs its incentive (the HIT price, shared by its
// assignments), charged regardless of answer quality — matching the
// paper's budget arithmetic where a 2 USD budget buys 200 one-cent tasks.
// The charge lands when the HIT completes (at least one assignment
// arrives), not at posting time: a HIT that expires fully unanswered is
// never paid for, so wrappers that drop every response of a query
// (abandonment injection) leave Spent() untouched for it and requery
// accounting cannot double-count the repost.
func (p *Platform) Submit(clk *simclock.Clock, ctx TemporalContext, queries []Query) ([]QueryResult, error) {
	if !ctx.Valid() {
		return nil, fmt.Errorf("crowd: invalid context %d", int(ctx))
	}
	if len(queries) == 0 {
		return nil, nil
	}
	p.churn()
	start := clk.Now()
	results := make([]QueryResult, len(queries))
	for qi, q := range queries {
		if q.Image == nil {
			return nil, fmt.Errorf("crowd: query %d has nil image", qi)
		}
		if q.Incentive <= 0 {
			return nil, fmt.Errorf("crowd: query %d has non-positive incentive", qi)
		}
		results[qi].Query = q
		workers := p.pickWorkers(ctx)
		for _, w := range workers {
			qi := qi
			w, delay := p.completeAssignment(ctx, q.Incentive, w)
			label := w.AnswerLabel(p.rng, q.Image, q.Incentive)
			questionnaire := w.AnswerQuestionnaire(p.rng, q.Image, q.Incentive)
			clk.Schedule(delay, func(now time.Duration) {
				r := Response{
					QueryIndex:    qi,
					WorkerID:      w.ID,
					Label:         label,
					Questionnaire: questionnaire,
					Delay:         now - start,
					Incentive:     q.Incentive,
					Context:       ctx,
				}
				results[qi].Responses = append(results[qi].Responses, r)
				if r.Delay > results[qi].CompletionDelay {
					results[qi].CompletionDelay = r.Delay
				}
			})
		}
	}
	clk.Run()
	for qi := range results {
		if len(results[qi].Responses) > 0 {
			p.spent += results[qi].Query.Incentive.Dollars()
		}
	}
	return results, nil
}

// MeanCompletionDelay averages the per-query completion delays of a batch.
func MeanCompletionDelay(results []QueryResult) time.Duration {
	if len(results) == 0 {
		return 0
	}
	var total time.Duration
	for _, r := range results {
		total += r.CompletionDelay
	}
	return total / time.Duration(len(results))
}
