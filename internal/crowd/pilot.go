package crowd

import (
	"errors"
	"fmt"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/simclock"
)

// PilotConfig parameterises the pilot study used to characterise the
// black-box platform (Section IV-B1): the paper assigns 100 HITs per
// (incentive level, temporal context) cell — 20 queries, each answered by
// 5 workers.
type PilotConfig struct {
	// Incentives is the set of incentive levels to probe.
	Incentives []Cents
	// QueriesPerCell is the number of queries per (incentive, context)
	// combination (paper: 20).
	QueriesPerCell int
}

// DefaultPilotConfig matches the paper's pilot study.
func DefaultPilotConfig() PilotConfig {
	return PilotConfig{Incentives: DefaultIncentiveLevels(), QueriesPerCell: 20}
}

// PilotCell holds the outcomes of one (context, incentive) combination.
type PilotCell struct {
	Context   TemporalContext
	Incentive Cents
	Results   []QueryResult
}

// PilotData is the full pilot-study record. It is the training substrate
// for three downstream consumers: Figure 5/6 reporting, CQC model
// training, and IPD warm-starting.
type PilotData struct {
	Cells      []PilotCell
	incentives []Cents
}

// RunPilot executes the pilot study on the platform over the given image
// pool (typically the training split), cycling through images so every
// cell sees a representative mix.
func RunPilot(p *Platform, images []*imagery.Image, cfg PilotConfig) (*PilotData, error) {
	if len(images) == 0 {
		return nil, errors.New("crowd: pilot requires a non-empty image pool")
	}
	if cfg.QueriesPerCell <= 0 {
		return nil, errors.New("crowd: QueriesPerCell must be positive")
	}
	if len(cfg.Incentives) == 0 {
		return nil, errors.New("crowd: pilot requires at least one incentive level")
	}
	data := &PilotData{incentives: append([]Cents(nil), cfg.Incentives...)}
	next := 0
	for _, ctx := range Contexts() {
		for _, inc := range cfg.Incentives {
			queries := make([]Query, cfg.QueriesPerCell)
			for i := range queries {
				queries[i] = Query{Image: images[next%len(images)], Incentive: inc}
				next++
			}
			clk := simclock.New()
			results, err := p.Submit(clk, ctx, queries)
			if err != nil {
				return nil, fmt.Errorf("pilot cell (%v, %v): %w", ctx, inc, err)
			}
			data.Cells = append(data.Cells, PilotCell{Context: ctx, Incentive: inc, Results: results})
		}
	}
	return data, nil
}

// Incentives returns the probed incentive levels in order.
func (d *PilotData) Incentives() []Cents {
	return append([]Cents(nil), d.incentives...)
}

// Cell returns the cell for (ctx, incentive), or nil if absent.
func (d *PilotData) Cell(ctx TemporalContext, incentive Cents) *PilotCell {
	for i := range d.Cells {
		if d.Cells[i].Context == ctx && d.Cells[i].Incentive == incentive {
			return &d.Cells[i]
		}
	}
	return nil
}

// MeanQueryDelay returns the mean HIT completion delay in a cell
// (Figure 5's y-axis). Returns 0 if the cell is absent or empty.
func (d *PilotData) MeanQueryDelay(ctx TemporalContext, incentive Cents) time.Duration {
	cell := d.Cell(ctx, incentive)
	if cell == nil {
		return 0
	}
	return MeanCompletionDelay(cell.Results)
}

// WorkerAccuracy returns the fraction of individual worker labels that
// match ground truth at the given incentive, pooled across contexts
// (Figure 6's y-axis).
func (d *PilotData) WorkerAccuracy(incentive Cents) float64 {
	correct, total := 0, 0
	for _, cell := range d.Cells {
		if cell.Incentive != incentive {
			continue
		}
		for _, qr := range cell.Results {
			for _, r := range qr.Responses {
				total++
				if r.Label == qr.Query.Image.TrueLabel {
					correct++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// WorkerCorrectness returns one 0/1 sample per individual response at the
// given incentive, pooled across contexts — the paired-sample input for
// the Wilcoxon significance tests between adjacent incentive levels.
func (d *PilotData) WorkerCorrectness(incentive Cents) []float64 {
	var out []float64
	for _, cell := range d.Cells {
		if cell.Incentive != incentive {
			continue
		}
		for _, qr := range cell.Results {
			for _, r := range qr.Responses {
				if r.Label == qr.Query.Image.TrueLabel {
					out = append(out, 1)
				} else {
					out = append(out, 0)
				}
			}
		}
	}
	return out
}

// AgreementCounts returns, for every query at the given incentive, the
// per-class tally of worker labels — the subjects x categories matrix
// consumed by stats.FleissKappa to quantify inter-worker agreement.
func (d *PilotData) AgreementCounts(incentive Cents) [][]int {
	var out [][]int
	for _, cell := range d.Cells {
		if cell.Incentive != incentive {
			continue
		}
		for _, qr := range cell.Results {
			row := make([]int, imagery.NumLabels)
			for _, r := range qr.Responses {
				if r.Label.Valid() {
					row[r.Label]++
				}
			}
			out = append(out, row)
		}
	}
	return out
}

// AllResults flattens every cell's query results; the CQC trainer consumes
// this to learn the response→truth mapping across contexts and incentives.
func (d *PilotData) AllResults() []QueryResult {
	var out []QueryResult
	for _, cell := range d.Cells {
		out = append(out, cell.Results...)
	}
	return out
}

// ResultsByContext returns every query result observed under ctx.
func (d *PilotData) ResultsByContext(ctx TemporalContext) []QueryResult {
	var out []QueryResult
	for _, cell := range d.Cells {
		if cell.Context == ctx {
			out = append(out, cell.Results...)
		}
	}
	return out
}
