package crowd

import (
	"math"
	"math/rand"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// Worker is one simulated MTurk worker. Workers are heterogeneous: the
// quality-control schemes (CQC, TD-EM, Filtering) exist precisely because
// worker reliability varies and is unknown to the requester.
type Worker struct {
	// ID is unique within a platform.
	ID int
	// Reliability is the probability of labeling a clean, legible image
	// correctly at full effort. Drawn from a Beta so the population mean
	// lands near the paper's observed ~80% crowd accuracy.
	Reliability float64
	// ContextSkill is the probability of perceiving high-level context —
	// spotting a photoshopped image, reading the story of an implicit
	// image. This is what makes humans succeed where the AI fails.
	ContextSkill float64
	// Activity[ctx] scales the worker's availability per temporal
	// context; workers are collectively more active in the evening.
	Activity [NumContexts]float64
	// Diligence scales the worker's personal response speed (lower is
	// faster).
	Diligence float64
	// Adversarial marks a spammer: labels are uniform noise and
	// questionnaire answers are inverted. Set by the platform when
	// Config.AdversarialFraction is positive.
	Adversarial bool
}

// effortFactor models how incentive modulates the care a worker takes.
// Calibrated to Figure 6: noticeable quality loss at 1–2 cents, plateau
// above ~4 cents. Raising the incentive past the plateau buys nothing,
// which is why IPD spends incentive on latency rather than quality.
func effortFactor(incentive Cents) float64 {
	x := 0.9 * (float64(incentive) - 1)
	if x < 0 {
		x = 0
	}
	return 1 - 0.16*math.Exp(-x)
}

// labelAccuracy returns the probability this worker labels the image
// correctly under the given incentive.
func (w *Worker) labelAccuracy(im *imagery.Image, incentive Cents) float64 {
	acc := w.Reliability * effortFactor(incentive)
	// Shared per-image difficulty correlates errors across workers: a
	// cluttered or ambiguous scene trips everyone, which is what keeps
	// majority voting from washing out individual mistakes.
	acc *= 1 - im.HumanDifficulty
	if im.Failure.Deceptive() {
		// The worker must first notice the deception; otherwise they are
		// fooled just like the AI.
		acc *= w.ContextSkill
	}
	return mathx.Clamp(acc, 0, 1)
}

// AnswerLabel produces the worker's damage label for the image.
func (w *Worker) AnswerLabel(rng *rand.Rand, im *imagery.Image, incentive Cents) imagery.Label {
	if w.Adversarial {
		// Spammer model: answer without looking. Uniform labels carry no
		// information, so every spam assignment dilutes the honest vote.
		return imagery.Label(rng.Intn(imagery.NumLabels))
	}
	if mathx.Bernoulli(rng, w.labelAccuracy(im, incentive)) {
		return im.TrueLabel
	}
	// Wrong answers gravitate toward what the image appears to show; if
	// the apparent label is the truth, pick uniformly among the others.
	if im.ApparentLabel != im.TrueLabel && mathx.Bernoulli(rng, 0.7) {
		return im.ApparentLabel
	}
	offset := 1 + rng.Intn(imagery.NumLabels-1)
	return imagery.Label((int(im.TrueLabel) + offset) % imagery.NumLabels)
}

// Questionnaire is a worker's fixed-form answers about an image (Figure 3
// in the paper). Fixed-form questions avoid natural-language parsing and
// give CQC machine-readable evidence.
type Questionnaire struct {
	IsFake              bool
	ShowsRoadDamage     bool
	ShowsBuildingDamage bool
	ShowsPeopleAffected bool
	IsLegible           bool
}

// AnswerQuestionnaire produces the worker's noisy perception of the scene
// attributes. Each attribute is reported correctly with probability
// driven by the worker's context skill and incentive-modulated effort.
func (w *Worker) AnswerQuestionnaire(rng *rand.Rand, im *imagery.Image, incentive Cents) Questionnaire {
	p := mathx.Clamp(w.ContextSkill*effortFactor(incentive), 0, 1)
	if w.Adversarial {
		p = 1 - p // systematically inverted evidence
	}
	perceive := func(truth bool) bool {
		if mathx.Bernoulli(rng, p) {
			return truth
		}
		return !truth
	}
	return Questionnaire{
		IsFake:              perceive(im.Scene.IsFake),
		ShowsRoadDamage:     perceive(im.Scene.ShowsRoadDamage),
		ShowsBuildingDamage: perceive(im.Scene.ShowsBuildingDamage),
		ShowsPeopleAffected: perceive(im.Scene.ShowsPeopleAffected),
		IsLegible:           perceive(im.Scene.IsLegible),
	}
}

// newWorker draws one worker with the given ID. Population-level
// parameters are chosen so that average label accuracy on a mixed image
// stream is near the paper's ~80% and evening/midnight activity exceeds
// daytime.
func newWorker(rng *rand.Rand, id int) *Worker {
	// A mixture population: most workers are competent, but a sloppy
	// minority (spammers, habitual speed-runners) drags quality down —
	// the heterogeneity the paper's CQC/TD-EM/Filtering modules exist to
	// handle.
	reliability := mathx.Beta(rng, 18, 2) // competent: mean ~0.90
	if mathx.Bernoulli(rng, 0.18) {
		reliability = mathx.Beta(rng, 5, 3) // sloppy: mean ~0.63
	}
	w := &Worker{
		ID:          id,
		Reliability: mathx.Clamp(reliability, 0.25, 0.99),
		// Mean ~0.78: most workers spot most deceptions.
		ContextSkill: mathx.Clamp(mathx.Beta(rng, 7, 2), 0.3, 0.99),
		Diligence:    mathx.Clamp(mathx.LogNormal(rng, 0, 0.35), 0.4, 3),
	}
	// Activity: night owls dominate MTurk (pilot-study observation).
	w.Activity[Morning] = 0.4 + 0.3*rng.Float64()
	w.Activity[Afternoon] = 0.5 + 0.3*rng.Float64()
	w.Activity[Evening] = 0.9 + 0.4*rng.Float64()
	w.Activity[Midnight] = 0.8 + 0.4*rng.Float64()
	return w
}

// newWorkerPopulation draws n workers with IDs 0..n-1.
func newWorkerPopulation(rng *rand.Rand, n int) []*Worker {
	workers := make([]*Worker, n)
	for i := range workers {
		workers[i] = newWorker(rng, i)
	}
	return workers
}
