package crowd

import (
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
	"github.com/crowdlearn/crowdlearn/internal/simclock"
)

func TestAdversarialFractionValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AdversarialFraction = -0.1
	if _, err := NewPlatform(cfg); err == nil {
		t.Error("negative adversarial fraction must be rejected")
	}
	cfg.AdversarialFraction = 1.5
	if _, err := NewPlatform(cfg); err == nil {
		t.Error("fraction above 1 must be rejected")
	}
}

func TestAdversarialPopulationShare(t *testing.T) {
	cfg := Config{NumWorkers: 1000, WorkersPerQuery: 5, AdversarialFraction: 0.3, Seed: 1}
	p := MustNewPlatform(cfg)
	bad := 0
	for _, w := range p.workers {
		if w.Adversarial {
			bad++
		}
	}
	frac := float64(bad) / float64(len(p.workers))
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("adversarial share %.3f, want ~0.30", frac)
	}
}

func TestAdversarialWorkerBehaviour(t *testing.T) {
	rng := mathx.NewRand(3)
	w := &Worker{ID: 1, Reliability: 0.9, ContextSkill: 0.9, Adversarial: true}
	// A fake image: appearance severe, truth no-damage. The spammer's
	// labels are uniform noise: all three classes appear.
	im := &imagery.Image{
		TrueLabel:     imagery.NoDamage,
		ApparentLabel: imagery.SevereDamage,
		Failure:       imagery.FailureFake,
		Scene:         imagery.SceneAttributes{IsFake: true, IsLegible: true},
	}
	seen := make(map[imagery.Label]int)
	for i := 0; i < 300; i++ {
		seen[w.AnswerLabel(rng, im, 10)]++
	}
	for l := imagery.NoDamage; l < imagery.NumLabels; l++ {
		if seen[l] < 50 {
			t.Fatalf("spam labels not uniform: %v", seen)
		}
	}
	// Questionnaire is inverted: a highly skilled adversary mostly denies
	// the fake.
	denies := 0
	for i := 0; i < 200; i++ {
		if !w.AnswerQuestionnaire(rng, im, 10).IsFake {
			denies++
		}
	}
	if denies < 150 {
		t.Errorf("adversary denied the fake only %d/200 times", denies)
	}
}

// Quality-control robustness: worker accuracy degrades roughly linearly
// with the adversarial fraction, and the platform still produces
// complete, well-formed responses.
func TestAdversarialDegradation(t *testing.T) {
	ds := imagery.MustGenerate(imagery.DefaultConfig())
	queries := make([]Query, 100)
	for i := range queries {
		queries[i] = Query{Image: ds.Train[i], Incentive: 6}
	}
	accuracyAt := func(fraction float64) float64 {
		cfg := DefaultConfig()
		cfg.AdversarialFraction = fraction
		cfg.Seed = 5
		p := MustNewPlatform(cfg)
		results, err := p.Submit(simclock.New(), Evening, queries)
		if err != nil {
			t.Fatal(err)
		}
		correct, total := 0, 0
		for _, qr := range results {
			if len(qr.Responses) != cfg.WorkersPerQuery {
				t.Fatalf("incomplete responses under adversaries: %d", len(qr.Responses))
			}
			for _, r := range qr.Responses {
				total++
				if r.Label == qr.Query.Image.TrueLabel {
					correct++
				}
			}
		}
		return float64(correct) / float64(total)
	}
	clean := accuracyAt(0)
	polluted := accuracyAt(0.4)
	if polluted >= clean-0.1 {
		t.Errorf("40%% adversaries should visibly hurt accuracy: clean %.3f vs polluted %.3f", clean, polluted)
	}
	if polluted < 0.3 {
		t.Errorf("honest majority should keep accuracy above chance: %.3f", polluted)
	}
}
