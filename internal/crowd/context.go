// Package crowd simulates the black-box crowdsourcing platform (Amazon
// Mechanical Turk in the paper) that CrowdLearn queries for human labels.
//
// The simulator reproduces the two empirical properties the paper's pilot
// study establishes (Figures 5 and 6):
//
//  1. Response delay depends on the temporal context and on incentive in a
//     non-linear way — in the morning and afternoon delay falls steadily as
//     the incentive rises, while in the evening and at midnight workers are
//     plentiful and delay is nearly flat except at the extremes.
//  2. Label quality is poor at very low incentives (1–2 cents) and then
//     plateaus around 80%: paying more does not buy better labels.
//
// Workers are modelled individually with heterogeneous reliability,
// context-perception skill, and activity patterns, because the CQC module
// (and its TD-EM / Filtering baselines) specifically exploit worker-level
// structure. All timing is on the discrete-event clock in
// internal/simclock, so simulations are fast and deterministic.
package crowd

import "fmt"

// TemporalContext is the time-of-day regime a query is posted under. The
// paper uses exactly these four contexts as the contextual-bandit context
// set (Definition 10).
type TemporalContext int

// The four temporal contexts.
const (
	Morning TemporalContext = iota
	Afternoon
	Evening
	Midnight
)

// NumContexts is the size of the context set.
const NumContexts = 4

// Contexts lists all temporal contexts in canonical order.
func Contexts() []TemporalContext {
	return []TemporalContext{Morning, Afternoon, Evening, Midnight}
}

// String returns the context name.
func (c TemporalContext) String() string {
	switch c {
	case Morning:
		return "morning"
	case Afternoon:
		return "afternoon"
	case Evening:
		return "evening"
	case Midnight:
		return "midnight"
	default:
		return fmt.Sprintf("context(%d)", int(c))
	}
}

// Valid reports whether c is one of the four defined contexts.
func (c TemporalContext) Valid() bool {
	return c >= Morning && c < NumContexts
}

// Cents is a monetary incentive in US cents, the action space of the
// incentive policy (Definition 11).
type Cents int

// DefaultIncentiveLevels is the action set used throughout the paper:
// {1, 2, 4, 6, 8, 10, 20} cents.
func DefaultIncentiveLevels() []Cents {
	return []Cents{1, 2, 4, 6, 8, 10, 20}
}

// Dollars converts cents to dollars.
func (c Cents) Dollars() float64 { return float64(c) / 100 }

// String formats the incentive, e.g. "4c".
func (c Cents) String() string { return fmt.Sprintf("%dc", int(c)) }
