package crowd

import (
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/simclock"
)

func TestAbandonRateValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AbandonRate = -0.1
	if _, err := NewPlatform(cfg); err == nil {
		t.Error("negative abandon rate must be rejected")
	}
	cfg.AbandonRate = 1.0
	if _, err := NewPlatform(cfg); err == nil {
		t.Error("abandon rate of 1 must be rejected (HITs would never complete)")
	}
}

func TestAbandonmentIncreasesDelayButCompletes(t *testing.T) {
	ds := imagery.MustGenerate(imagery.DefaultConfig())
	queries := make([]Query, 60)
	for i := range queries {
		queries[i] = Query{Image: ds.Train[i], Incentive: 6}
	}
	meanDelay := func(rate float64) float64 {
		cfg := DefaultConfig()
		cfg.AbandonRate = rate
		cfg.Seed = 11
		p := MustNewPlatform(cfg)
		results, err := p.Submit(simclock.New(), Evening, queries)
		if err != nil {
			t.Fatal(err)
		}
		for _, qr := range results {
			if len(qr.Responses) != cfg.WorkersPerQuery {
				t.Fatalf("abandonment lost responses: %d", len(qr.Responses))
			}
		}
		return MeanCompletionDelay(results).Seconds()
	}
	calm := meanDelay(0)
	flaky := meanDelay(0.5)
	if flaky <= calm {
		t.Errorf("50%% abandonment should raise delay: %.1fs vs %.1fs", flaky, calm)
	}
	// A 50% abandon rate roughly adds one 0.4-weight partial wait per
	// assignment in expectation; delays should grow well under 3x.
	if flaky > 3*calm {
		t.Errorf("abandonment delay blow-up implausible: %.1fs vs %.1fs", flaky, calm)
	}
}

func TestAbandonmentBoundedReposts(t *testing.T) {
	// Even at an extreme abandon rate, assignments complete (the repost
	// cap guarantees progress).
	ds := imagery.MustGenerate(imagery.DefaultConfig())
	cfg := DefaultConfig()
	cfg.AbandonRate = 0.95
	cfg.Seed = 12
	p := MustNewPlatform(cfg)
	results, err := p.Submit(simclock.New(), Midnight, []Query{{Image: ds.Train[0], Incentive: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].Responses) != cfg.WorkersPerQuery {
		t.Fatalf("extreme abandonment lost responses: %d", len(results[0].Responses))
	}
}
