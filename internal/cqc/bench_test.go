package cqc

import "testing"

func BenchmarkTrain(b *testing.B) {
	pilot, _, _ := pilotFixture(b)
	results := pilot.AllResults()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(DefaultConfig())
		if err := c.Train(results); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregate(b *testing.B) {
	pilot, _, _ := pilotFixture(b)
	c := New(DefaultConfig())
	if err := c.Train(pilot.AllResults()); err != nil {
		b.Fatal(err)
	}
	batch := pilot.AllResults()[:100]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Aggregate(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeaturize(b *testing.B) {
	pilot, _, _ := pilotFixture(b)
	c := New(DefaultConfig())
	qr := pilot.AllResults()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Featurize(qr)
	}
}
