// Package cqc implements CrowdLearn's Crowd Quality Control module
// (Section IV-C): a supervised truth classifier that fuses the workers'
// labels *and* their fixed-form questionnaire answers into a truthful
// label for each query.
//
// The paper trains XGBoost on pilot-study data where golden labels are
// known; this package trains the from-scratch gradient-boosted trees of
// internal/gbdt on exactly the same signal. The questionnaire features are
// what let CQC beat voting-style baselines: a majority that answers
// "severe damage" loses to questionnaire evidence that the image is fake.
//
// CQC satisfies the truth.Aggregator interface so Table I can compare it
// against Voting, TD-EM and Filtering through one code path.
package cqc

import (
	"errors"
	"fmt"

	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/gbdt"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
	"github.com/crowdlearn/crowdlearn/internal/truth"
)

// Config parameterises the CQC module.
type Config struct {
	// GBDT holds the boosted-tree hyperparameters.
	GBDT gbdt.Params
	// UseQuestionnaire controls whether questionnaire-derived features are
	// included. Disabling it is the labels-only ablation in DESIGN.md §5;
	// the paper's CQC always uses them.
	UseQuestionnaire bool
}

// DefaultConfig returns the standard CQC configuration.
func DefaultConfig() Config {
	return Config{GBDT: gbdt.DefaultParams(), UseQuestionnaire: true}
}

// CQC is the quality-control model. Construct with New, then Train on
// pilot data with golden labels before calling Aggregate.
type CQC struct {
	cfg   Config
	model *gbdt.Classifier
}

var _ truth.Aggregator = (*CQC)(nil)

// New builds an untrained CQC module.
func New(cfg Config) *CQC {
	return &CQC{cfg: cfg}
}

// Name implements truth.Aggregator.
func (c *CQC) Name() string {
	if !c.cfg.UseQuestionnaire {
		return "cqc-labels-only"
	}
	return "cqc"
}

// Trained reports whether Train has completed successfully.
func (c *CQC) Trained() bool { return c.model != nil }

// NumFeatures returns the dimensionality of the response feature vector.
func (c *CQC) NumFeatures() int {
	if c.cfg.UseQuestionnaire {
		return 12
	}
	return 6
}

// Featurize converts one query's crowd responses into the CQC feature
// vector:
//
//	[0..2]  vote fraction per damage class
//	[3]     majority margin (top fraction minus runner-up fraction)
//	[4]     vote entropy, normalised by log(#classes)
//	[5]     response count (scaled)
//	[6]     fraction answering "image is fake"          (questionnaire)
//	[7]     fraction answering "shows road damage"       |
//	[8]     fraction answering "shows building damage"   |
//	[9]     fraction answering "shows people affected"   |
//	[10]    fraction answering "image is legible"        |
//	[11]    incentive level in dollars                  (questionnaire)
func (c *CQC) Featurize(qr crowd.QueryResult) []float64 {
	votes := make([]float64, imagery.NumLabels)
	var fake, road, building, people, legible float64
	n := float64(len(qr.Responses))
	for _, r := range qr.Responses {
		if r.Label.Valid() {
			votes[r.Label]++
		}
		if r.Questionnaire.IsFake {
			fake++
		}
		if r.Questionnaire.ShowsRoadDamage {
			road++
		}
		if r.Questionnaire.ShowsBuildingDamage {
			building++
		}
		if r.Questionnaire.ShowsPeopleAffected {
			people++
		}
		if r.Questionnaire.IsLegible {
			legible++
		}
	}
	fractions := mathx.Normalized(votes)
	top, second := topTwo(fractions)
	features := make([]float64, 0, c.NumFeatures())
	features = append(features, fractions...)
	features = append(features,
		top-second,
		mathx.Entropy(fractions)/mathx.MaxEntropy(imagery.NumLabels),
		n/10,
	)
	if c.cfg.UseQuestionnaire {
		if n == 0 {
			n = 1
		}
		features = append(features,
			fake/n, road/n, building/n, people/n, legible/n,
			qr.Query.Incentive.Dollars(),
		)
	}
	return features
}

func topTwo(fractions []float64) (top, second float64) {
	for _, f := range fractions {
		switch {
		case f > top:
			top, second = f, top
		case f > second:
			second = f
		}
	}
	return top, second
}

// Train fits the truth classifier on query results whose images carry
// golden ground-truth labels — the pilot-study phase of the paper.
func (c *CQC) Train(results []crowd.QueryResult) error {
	if len(results) == 0 {
		return errors.New("cqc: no training results")
	}
	features := make([][]float64, len(results))
	labels := make([]int, len(results))
	for i, qr := range results {
		if qr.Query.Image == nil {
			return fmt.Errorf("cqc: training result %d has nil image", i)
		}
		features[i] = c.Featurize(qr)
		labels[i] = int(qr.Query.Image.TrueLabel)
	}
	model, err := gbdt.Train(features, labels, imagery.NumLabels, c.cfg.GBDT)
	if err != nil {
		return fmt.Errorf("cqc: %w", err)
	}
	c.model = model
	return nil
}

// Aggregate implements truth.Aggregator: one truthful label distribution
// per query result.
func (c *CQC) Aggregate(results []crowd.QueryResult) ([][]float64, error) {
	if c.model == nil {
		return nil, errors.New("cqc: model not trained; call Train with pilot data first")
	}
	if len(results) == 0 {
		return nil, errors.New("cqc: no query results to aggregate")
	}
	out := make([][]float64, len(results))
	for i, qr := range results {
		out[i] = c.model.Predict(c.Featurize(qr))
	}
	return out, nil
}

// FeatureImportance exposes the trained model's per-feature gain shares,
// in Featurize order. Returns nil when untrained.
func (c *CQC) FeatureImportance() []float64 {
	if c.model == nil {
		return nil
	}
	return c.model.FeatureImportance()
}
