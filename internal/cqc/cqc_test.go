package cqc

import (
	"math"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/simclock"
	"github.com/crowdlearn/crowdlearn/internal/truth"
)

// pilotFixture runs a real pilot study; tests and benchmarks share the
// same construction path.
func pilotFixture(tb testing.TB) (*crowd.PilotData, *imagery.Dataset, *crowd.Platform) {
	tb.Helper()
	ds, err := imagery.Generate(imagery.DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	platform := crowd.MustNewPlatform(crowd.DefaultConfig())
	pilot, err := crowd.RunPilot(platform, ds.Train, crowd.DefaultPilotConfig())
	if err != nil {
		tb.Fatal(err)
	}
	return pilot, ds, platform
}

func TestUntrainedAggregateErrors(t *testing.T) {
	c := New(DefaultConfig())
	if _, err := c.Aggregate([]crowd.QueryResult{{}}); err == nil {
		t.Error("untrained CQC must refuse to aggregate")
	}
	if c.Trained() {
		t.Error("Trained() must be false before Train")
	}
	if c.FeatureImportance() != nil {
		t.Error("untrained FeatureImportance must be nil")
	}
}

func TestTrainValidation(t *testing.T) {
	c := New(DefaultConfig())
	if err := c.Train(nil); err == nil {
		t.Error("empty training set must error")
	}
	if err := c.Train([]crowd.QueryResult{{}}); err == nil {
		t.Error("nil image in training data must error")
	}
}

func TestFeaturizeShape(t *testing.T) {
	c := New(DefaultConfig())
	im := &imagery.Image{TrueLabel: imagery.SevereDamage}
	qr := crowd.QueryResult{
		Query: crowd.Query{Image: im, Incentive: 10},
		Responses: []crowd.Response{
			{Label: imagery.SevereDamage, Questionnaire: crowd.Questionnaire{IsLegible: true}},
			{Label: imagery.SevereDamage, Questionnaire: crowd.Questionnaire{IsLegible: true, ShowsRoadDamage: true}},
			{Label: imagery.NoDamage, Questionnaire: crowd.Questionnaire{IsFake: true}},
		},
	}
	f := c.Featurize(qr)
	if len(f) != c.NumFeatures() {
		t.Fatalf("feature length %d, want %d", len(f), c.NumFeatures())
	}
	// Vote fractions.
	if math.Abs(f[0]-1.0/3.0) > 1e-9 || math.Abs(f[2]-2.0/3.0) > 1e-9 {
		t.Errorf("vote fractions wrong: %v", f[:3])
	}
	// Majority margin = 2/3 - 1/3.
	if math.Abs(f[3]-1.0/3.0) > 1e-9 {
		t.Errorf("margin %v, want 1/3", f[3])
	}
	// Fake fraction 1/3, legible 2/3, incentive 0.10.
	if math.Abs(f[6]-1.0/3.0) > 1e-9 {
		t.Errorf("fake fraction %v", f[6])
	}
	if math.Abs(f[10]-2.0/3.0) > 1e-9 {
		t.Errorf("legible fraction %v", f[10])
	}
	if math.Abs(f[11]-0.10) > 1e-9 {
		t.Errorf("incentive feature %v", f[11])
	}
}

func TestFeaturizeLabelsOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseQuestionnaire = false
	c := New(cfg)
	if c.NumFeatures() != 6 {
		t.Fatalf("labels-only features %d, want 6", c.NumFeatures())
	}
	if c.Name() != "cqc-labels-only" {
		t.Errorf("name %q", c.Name())
	}
	im := &imagery.Image{}
	f := c.Featurize(crowd.QueryResult{Query: crowd.Query{Image: im, Incentive: 5}})
	if len(f) != 6 {
		t.Fatalf("featurize returned %d features", len(f))
	}
}

func aggregateAccuracy(t *testing.T, agg truth.Aggregator, results []crowd.QueryResult) float64 {
	t.Helper()
	dists, err := agg.Aggregate(results)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, d := range dists {
		if truth.Decide(d) == results[i].Query.Image.TrueLabel {
			correct++
		}
	}
	return float64(correct) / float64(len(results))
}

// The Table I claim: CQC beats Voting, TD-EM and Filtering on held-out
// crowd responses, and lands in the ~0.9+ accuracy band.
func TestCQCBeatsBaselines(t *testing.T) {
	pilot, ds, platform := pilotFixture(t)
	c := New(DefaultConfig())
	if err := c.Train(pilot.AllResults()); err != nil {
		t.Fatal(err)
	}
	// Held-out evaluation batch from the test split.
	queries := make([]crowd.Query, 200)
	for i := range queries {
		queries[i] = crowd.Query{Image: ds.Test[i], Incentive: 6}
	}
	results, err := platform.Submit(simclock.New(), crowd.Afternoon, queries)
	if err != nil {
		t.Fatal(err)
	}

	cqcAcc := aggregateAccuracy(t, c, results)
	votingAcc := aggregateAccuracy(t, truth.MajorityVoting{}, results)
	tdemAcc := aggregateAccuracy(t, truth.NewTDEM(), results)
	filtAcc := aggregateAccuracy(t, truth.NewFiltering(), results)
	t.Logf("cqc=%.3f voting=%.3f tdem=%.3f filtering=%.3f", cqcAcc, votingAcc, tdemAcc, filtAcc)

	if cqcAcc < votingAcc {
		t.Errorf("CQC (%.3f) must beat voting (%.3f)", cqcAcc, votingAcc)
	}
	if cqcAcc < tdemAcc-0.02 {
		t.Errorf("CQC (%.3f) must not trail TD-EM (%.3f)", cqcAcc, tdemAcc)
	}
	if cqcAcc < filtAcc-0.02 {
		t.Errorf("CQC (%.3f) must not trail filtering (%.3f)", cqcAcc, filtAcc)
	}
	if cqcAcc < 0.85 || cqcAcc > 1.0 {
		t.Errorf("CQC accuracy %.3f outside the paper's ~0.93 band", cqcAcc)
	}
}

// The ablation: questionnaire features must contribute. Evaluate both
// variants on a batch rich in deceptive images, where the questionnaire
// is the only evidence that the majority is wrong.
func TestQuestionnaireFeaturesMatter(t *testing.T) {
	pilot, ds, platform := pilotFixture(t)

	full := New(DefaultConfig())
	if err := full.Train(pilot.AllResults()); err != nil {
		t.Fatal(err)
	}
	ablatedCfg := DefaultConfig()
	ablatedCfg.UseQuestionnaire = false
	ablated := New(ablatedCfg)
	if err := ablated.Train(pilot.AllResults()); err != nil {
		t.Fatal(err)
	}

	var tricky []*imagery.Image
	for _, im := range ds.Test {
		if im.Failure.Deceptive() {
			tricky = append(tricky, im)
		}
	}
	queries := make([]crowd.Query, len(tricky))
	for i, im := range tricky {
		queries[i] = crowd.Query{Image: im, Incentive: 6}
	}
	results, err := platform.Submit(simclock.New(), crowd.Evening, queries)
	if err != nil {
		t.Fatal(err)
	}
	fullAcc := aggregateAccuracy(t, full, results)
	ablatedAcc := aggregateAccuracy(t, ablated, results)
	t.Logf("deceptive batch: full=%.3f labels-only=%.3f", fullAcc, ablatedAcc)
	if fullAcc < ablatedAcc-0.02 {
		t.Errorf("questionnaire features should help on deceptive images: full %.3f vs ablated %.3f", fullAcc, ablatedAcc)
	}
}

func TestFeatureImportanceUsesQuestionnaire(t *testing.T) {
	pilot, _, _ := pilotFixture(t)
	c := New(DefaultConfig())
	if err := c.Train(pilot.AllResults()); err != nil {
		t.Fatal(err)
	}
	imp := c.FeatureImportance()
	if len(imp) != c.NumFeatures() {
		t.Fatalf("importance length %d", len(imp))
	}
	var questionnaireShare float64
	for _, v := range imp[6:11] {
		questionnaireShare += v
	}
	if questionnaireShare <= 0 {
		t.Error("questionnaire features carry zero importance; CQC is ignoring its evidence")
	}
}

func TestAggregateReturnsDistributions(t *testing.T) {
	pilot, _, _ := pilotFixture(t)
	c := New(DefaultConfig())
	if err := c.Train(pilot.AllResults()); err != nil {
		t.Fatal(err)
	}
	batch := pilot.AllResults()[:25]
	dists, err := c.Aggregate(batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dists {
		sum := 0.0
		for _, x := range d {
			if x < 0 || x > 1 {
				t.Fatalf("invalid probability %v", x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("distribution sums to %v", sum)
		}
	}
	if _, err := c.Aggregate(nil); err == nil {
		t.Error("empty aggregate must error")
	}
}
