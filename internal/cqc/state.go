package cqc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"github.com/crowdlearn/crowdlearn/internal/gbdt"
)

// stateEnvelope is the gob form of a trained CQC module.
type stateEnvelope struct {
	UseQuestionnaire bool
	Trained          bool
	Model            gbdt.State
}

// SaveState writes the trained quality-control model. Untrained modules
// can be saved and restored (they remain untrained).
func (c *CQC) SaveState(w io.Writer) error {
	env := stateEnvelope{UseQuestionnaire: c.cfg.UseQuestionnaire, Trained: c.model != nil}
	if c.model != nil {
		env.Model = c.model.State()
	}
	if err := gob.NewEncoder(w).Encode(env); err != nil {
		return fmt.Errorf("cqc: save: %w", err)
	}
	return nil
}

// LoadState replaces the module's trained model. The questionnaire flag
// must match the module's configuration: the feature layout depends on
// it.
func (c *CQC) LoadState(r io.Reader) error {
	var env stateEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("cqc: load: %w", err)
	}
	if env.UseQuestionnaire != c.cfg.UseQuestionnaire {
		return errors.New("cqc: state questionnaire flag does not match configuration")
	}
	if !env.Trained {
		c.model = nil
		return nil
	}
	model, err := gbdt.FromState(env.Model)
	if err != nil {
		return fmt.Errorf("cqc: load: %w", err)
	}
	if model.NumFeatures() != c.NumFeatures() {
		return fmt.Errorf("cqc: state model has %d features, want %d", model.NumFeatures(), c.NumFeatures())
	}
	c.model = model
	return nil
}
