package cqc

import (
	"bytes"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/truth"
)

func TestCQCSaveLoadRoundtrip(t *testing.T) {
	pilot, _, _ := pilotFixture(t)
	c := New(DefaultConfig())
	if err := c.Train(pilot.AllResults()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := New(DefaultConfig())
	if err := fresh.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	if !fresh.Trained() {
		t.Fatal("restored CQC must be trained")
	}
	batch := pilot.AllResults()[:40]
	a, err := c.Aggregate(batch)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.Aggregate(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if truth.Decide(a[i]) != truth.Decide(b[i]) {
			t.Fatal("restored CQC decides differently")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("restored CQC distribution differs")
			}
		}
	}
}

func TestCQCLoadRejectsFlagMismatch(t *testing.T) {
	pilot, _, _ := pilotFixture(t)
	c := New(DefaultConfig())
	if err := c.Train(pilot.AllResults()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.UseQuestionnaire = false
	ablated := New(cfg)
	if err := ablated.LoadState(&buf); err == nil {
		t.Error("questionnaire-flag mismatch must be rejected")
	}
}

func TestCQCUntrainedRoundtrip(t *testing.T) {
	c := New(DefaultConfig())
	var buf bytes.Buffer
	if err := c.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := New(DefaultConfig())
	if err := fresh.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	if fresh.Trained() {
		t.Error("restored untrained CQC must stay untrained")
	}
}

func TestCQCLoadRejectsGarbage(t *testing.T) {
	c := New(DefaultConfig())
	if err := c.LoadState(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage must be rejected")
	}
}
