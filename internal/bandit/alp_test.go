package bandit

import (
	"math"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

func TestEfficientFrontierBasic(t *testing.T) {
	// Costs ascending; utilities with one dominated point (index 1) and
	// one non-concave point (index 3).
	costs := []float64{1, 2, 3, 4, 5}
	utility := []float64{0.2, 0.1, 0.6, 0.61, 0.9}
	hull := efficientFrontier(utility, costs)
	// Index 1 dominated (utility drops); index 3 eliminated by concavity
	// (slope 2->3 is 0.01, slope 3->4 is 0.29 which is larger).
	want := []int{0, 2, 4}
	if len(hull) != len(want) {
		t.Fatalf("hull %v, want %v", hull, want)
	}
	for i, arm := range want {
		if hull[i] != arm {
			t.Fatalf("hull %v, want %v", hull, want)
		}
	}
}

func TestEfficientFrontierSingleArm(t *testing.T) {
	hull := efficientFrontier([]float64{0.5}, []float64{3})
	if len(hull) != 1 || hull[0] != 0 {
		t.Fatalf("hull %v", hull)
	}
}

func TestEfficientFrontierEqualCosts(t *testing.T) {
	// Two arms at the same cost: only the better one can appear.
	hull := efficientFrontier([]float64{0.3, 0.8}, []float64{2, 2})
	if len(hull) != 1 || hull[0] != 1 {
		t.Fatalf("hull %v, want just arm 1", hull)
	}
}

// solveALP invariants: mixtures are distributions, the expected cost
// respects rho (when feasible), and a generous rho buys the best arm in
// every context.
func TestSolveALPGenerousBudget(t *testing.T) {
	utility := [][]float64{
		{0.1, 0.5, 0.9},
		{0.2, 0.3, 0.4},
	}
	costs := []float64{1, 2, 3}
	probs := []float64{0.5, 0.5}
	mix := solveALP(utility, costs, probs, 100)
	for z := range mix {
		if mix[z][2] != 1 {
			t.Errorf("context %d should take the best arm under generous budget: %v", z, mix[z])
		}
	}
}

func TestSolveALPTightBudgetTakesCheapest(t *testing.T) {
	utility := [][]float64{{0.1, 0.9}}
	costs := []float64{1, 10}
	mix := solveALP(utility, costs, []float64{1}, 1.0)
	if mix[0][0] != 1 {
		t.Errorf("budget equal to cheapest cost must stay on the cheapest arm: %v", mix[0])
	}
}

func TestSolveALPFractionalSplit(t *testing.T) {
	// One context, two arms: cost 1 (u 0.2) and cost 3 (u 0.8); rho = 2
	// should split 50/50 so expected cost is exactly 2.
	utility := [][]float64{{0.2, 0.8}}
	costs := []float64{1, 3}
	mix := solveALP(utility, costs, []float64{1}, 2.0)
	if math.Abs(mix[0][0]-0.5) > 1e-9 || math.Abs(mix[0][1]-0.5) > 1e-9 {
		t.Errorf("expected 50/50 split, got %v", mix[0])
	}
}

func TestSolveALPPrefersSteepestUpgrade(t *testing.T) {
	// Context 0 upgrade: +0.6 utility per +1 cost. Context 1 upgrade:
	// +0.1 per +1. Budget allows exactly one upgrade in expectation.
	utility := [][]float64{
		{0.1, 0.7},
		{0.1, 0.2},
	}
	costs := []float64{1, 2}
	probs := []float64{0.5, 0.5}
	// Base spend = 1; rho = 1.5 affords one half-weighted upgrade
	// (0.5 * (2-1) = 0.5).
	mix := solveALP(utility, costs, probs, 1.5)
	if mix[0][1] != 1 {
		t.Errorf("steep context should upgrade fully: %v", mix[0])
	}
	if mix[1][1] != 0 {
		t.Errorf("shallow context should stay cheap: %v", mix[1])
	}
}

func TestSolveALPInvariantsProperty(t *testing.T) {
	rng := mathx.NewRand(9)
	for trial := 0; trial < 300; trial++ {
		numContexts := 1 + rng.Intn(4)
		k := 2 + rng.Intn(5)
		costs := make([]float64, k)
		for i := range costs {
			costs[i] = 0.1 + rng.Float64()*2
		}
		utility := make([][]float64, numContexts)
		for z := range utility {
			utility[z] = make([]float64, k)
			for i := range utility[z] {
				utility[z][i] = rng.Float64()
			}
		}
		probs := make([]float64, numContexts)
		for z := range probs {
			probs[z] = 1 / float64(numContexts)
		}
		minCost := mathx.Min(costs)
		rho := minCost + rng.Float64()*3

		mix := solveALP(utility, costs, probs, rho)

		expectedCost := 0.0
		for z := range mix {
			sum := 0.0
			for arm, w := range mix[z] {
				if w < -1e-12 || w > 1+1e-12 {
					t.Fatalf("weight %v out of range", w)
				}
				sum += w
				expectedCost += probs[z] * w * costs[arm]
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("context %d mixture sums to %v", z, sum)
			}
		}
		// Feasible when rho covers the all-cheapest base; allow epsilon.
		baseCost := 0.0
		for z := 0; z < numContexts; z++ {
			baseCost += probs[z] * minCost
		}
		if rho >= baseCost && expectedCost > rho+1e-9 {
			t.Fatalf("expected cost %v exceeds pace %v", expectedCost, rho)
		}
	}
}

// Monotonicity: increasing rho never decreases the LP's expected utility.
func TestSolveALPUtilityMonotoneInBudgetProperty(t *testing.T) {
	rng := mathx.NewRand(10)
	for trial := 0; trial < 100; trial++ {
		k := 3 + rng.Intn(4)
		costs := make([]float64, k)
		utility := [][]float64{make([]float64, k), make([]float64, k)}
		for i := range costs {
			costs[i] = 0.1 + rng.Float64()
			utility[0][i] = rng.Float64()
			utility[1][i] = rng.Float64()
		}
		probs := []float64{0.5, 0.5}
		value := func(rho float64) float64 {
			mix := solveALP(utility, costs, probs, rho)
			v := 0.0
			for z := range mix {
				for arm, w := range mix[z] {
					v += probs[z] * w * utility[z][arm]
				}
			}
			return v
		}
		lo := value(0.2)
		hi := value(2.0)
		if hi+1e-9 < lo {
			t.Fatalf("LP value decreased with budget: %v -> %v", lo, hi)
		}
	}
}
