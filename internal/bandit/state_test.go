package bandit

import (
	"bytes"
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/crowd"
)

func trainedPolicy(t *testing.T) *UCBALP {
	t.Helper()
	cfg := DefaultConfig()
	u, err := NewUCBALP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		ctx := crowd.TemporalContext(i % crowd.NumContexts)
		inc, err := u.SelectIncentive(ctx)
		if err != nil {
			t.Fatal(err)
		}
		u.Observe(ctx, inc, time.Duration(200+10*i)*time.Second, cfg.QueriesPerRound)
	}
	return u
}

func TestBanditSaveLoadRoundtrip(t *testing.T) {
	u := trainedPolicy(t)
	var buf bytes.Buffer
	if err := u.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.RemainingBudget() != u.RemainingBudget() {
		t.Errorf("remaining budget %v vs %v", restored.RemainingBudget(), u.RemainingBudget())
	}
	if restored.rounds != u.rounds {
		t.Errorf("rounds %d vs %d", restored.rounds, u.rounds)
	}
	for z := 0; z < crowd.NumContexts; z++ {
		for arm := range u.count[z] {
			if restored.count[z][arm] != u.count[z][arm] {
				t.Fatalf("count[%d][%d] differs", z, arm)
			}
			if restored.payoff[z][arm] != u.payoff[z][arm] {
				t.Fatalf("payoff[%d][%d] differs", z, arm)
			}
		}
	}
	// A restored policy must select without error and respect the budget.
	inc, err := restored.SelectIncentive(crowd.Morning)
	if err != nil {
		t.Fatal(err)
	}
	if inc <= 0 {
		t.Error("restored policy selected non-positive incentive")
	}
}

func TestBanditFromStateValidation(t *testing.T) {
	u := trainedPolicy(t)
	tests := []struct {
		name   string
		mutate func(*State)
	}{
		{"arm count mismatch", func(s *State) { s.Count[0] = s.Count[0][:2] }},
		{"negative remaining", func(s *State) { s.Remaining = -1 }},
		{"remaining above budget", func(s *State) { s.Remaining = s.Config.BudgetDollars + 5 }},
		{"negative rounds", func(s *State) { s.Rounds = -2 }},
		{"invalid config", func(s *State) { s.Config.BudgetDollars = -3; s.Remaining = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := u.State()
			tt.mutate(&s)
			if _, err := FromState(s); err == nil {
				t.Errorf("%s should be rejected", tt.name)
			}
		})
	}
}

func TestBanditLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage input must be rejected")
	}
}

func TestBanditStateIsDeepCopy(t *testing.T) {
	u := trainedPolicy(t)
	s := u.State()
	s.Count[0][0] += 100
	if u.count[0][0] == s.Count[0][0] {
		t.Error("State must deep-copy statistics")
	}
}
