package bandit

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// Fixed always offers the same incentive — the policy used by Hybrid-Para
// and Hybrid-AL in the paper, which set it to the maximum the budget
// allows (total budget / number of queries).
type Fixed struct {
	incentive crowd.Cents
	remaining float64
}

var _ Policy = (*Fixed)(nil)

// NewFixed builds a fixed policy at the given incentive with a budget.
func NewFixed(incentive crowd.Cents, budgetDollars float64) (*Fixed, error) {
	if incentive <= 0 {
		return nil, fmt.Errorf("bandit: fixed incentive must be positive, got %d", incentive)
	}
	if budgetDollars <= 0 {
		return nil, fmt.Errorf("bandit: budget must be positive, got %v", budgetDollars)
	}
	return &Fixed{incentive: incentive, remaining: budgetDollars}, nil
}

// NewFixedMax builds the paper's fixed baseline: the whole budget divided
// evenly over the expected number of queries, snapped down to the nearest
// available level (or the minimum level if the budget is tiny).
func NewFixedMax(cfg Config) (*Fixed, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	totalQueries := cfg.TotalRounds * cfg.QueriesPerRound
	perQueryCents := cfg.BudgetDollars * 100 / float64(totalQueries)
	best := cfg.Levels[0]
	for _, l := range cfg.Levels {
		if float64(l) <= perQueryCents && l > best {
			best = l
		}
	}
	return NewFixed(best, cfg.BudgetDollars)
}

// Name implements Policy.
func (f *Fixed) Name() string { return fmt.Sprintf("fixed-%s", f.incentive) }

// Incentive returns the constant incentive level.
func (f *Fixed) Incentive() crowd.Cents { return f.incentive }

// SelectIncentive implements Policy.
func (f *Fixed) SelectIncentive(crowd.TemporalContext) (crowd.Cents, error) {
	if f.incentive.Dollars() > f.remaining+1e-12 {
		return 0, ErrBudgetExhausted
	}
	return f.incentive, nil
}

// Observe implements Policy.
func (f *Fixed) Observe(_ crowd.TemporalContext, incentive crowd.Cents, _ time.Duration, queries int) {
	f.remaining -= incentive.Dollars() * float64(queries)
	if f.remaining < 0 {
		f.remaining = 0
	}
}

// RemainingBudget implements Policy.
func (f *Fixed) RemainingBudget() float64 { return f.remaining }

// Random assigns incentives uniformly at random among the affordable
// levels — the heuristic baseline in Figure 8.
type Random struct {
	cfg       Config
	rng       *rand.Rand
	remaining float64
}

var _ Policy = (*Random)(nil)

// NewRandom builds the random policy.
func NewRandom(cfg Config) (*Random, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Random{cfg: cfg, rng: mathx.NewRand(cfg.Seed), remaining: cfg.BudgetDollars}, nil
}

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// SelectIncentive implements Policy.
func (r *Random) SelectIncentive(crowd.TemporalContext) (crowd.Cents, error) {
	affordable := make([]crowd.Cents, 0, len(r.cfg.Levels))
	for _, l := range r.cfg.Levels {
		if l.Dollars()*float64(r.cfg.QueriesPerRound) <= r.remaining+1e-12 {
			affordable = append(affordable, l)
		}
	}
	if len(affordable) == 0 {
		return 0, ErrBudgetExhausted
	}
	return affordable[r.rng.Intn(len(affordable))], nil
}

// Observe implements Policy.
func (r *Random) Observe(_ crowd.TemporalContext, incentive crowd.Cents, _ time.Duration, queries int) {
	r.remaining -= incentive.Dollars() * float64(queries)
	if r.remaining < 0 {
		r.remaining = 0
	}
}

// RemainingBudget implements Policy.
func (r *Random) RemainingBudget() float64 { return r.remaining }

// ContextBlind wraps a UCB-ALP learner but collapses every context to a
// single cell. It exists for the ablation benchmark quantifying the value
// of context-awareness (DESIGN.md §5); it is not part of the paper.
type ContextBlind struct {
	inner *UCBALP
}

var _ Policy = (*ContextBlind)(nil)

// NewContextBlind builds the ablated policy.
func NewContextBlind(cfg Config) (*ContextBlind, error) {
	inner, err := NewUCBALP(cfg)
	if err != nil {
		return nil, err
	}
	return &ContextBlind{inner: inner}, nil
}

// Name implements Policy.
func (c *ContextBlind) Name() string { return "ucb-context-blind" }

// SelectIncentive implements Policy, ignoring the real context.
func (c *ContextBlind) SelectIncentive(crowd.TemporalContext) (crowd.Cents, error) {
	return c.inner.SelectIncentive(crowd.Morning)
}

// Observe implements Policy, ignoring the real context.
func (c *ContextBlind) Observe(_ crowd.TemporalContext, incentive crowd.Cents, meanDelay time.Duration, queries int) {
	c.inner.Observe(crowd.Morning, incentive, meanDelay, queries)
}

// RemainingBudget implements Policy.
func (c *ContextBlind) RemainingBudget() float64 { return c.inner.RemainingBudget() }
