package bandit

import (
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/crowd"
)

func BenchmarkSelectIncentive(b *testing.B) {
	cfg := DefaultConfig()
	cfg.BudgetDollars = 1e6 // never exhausts during the benchmark
	cfg.TotalRounds = 1 << 30
	u, err := NewUCBALP(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Cover all arms so selection exercises the LP path, not forced
	// exploration.
	for z := 0; z < crowd.NumContexts; z++ {
		for _, l := range cfg.Levels {
			u.Observe(crowd.TemporalContext(z), l, 5*time.Minute, 1)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.SelectIncentive(crowd.TemporalContext(i % crowd.NumContexts)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveALP(b *testing.B) {
	utility := make([][]float64, crowd.NumContexts)
	costs := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 1.0}
	for z := range utility {
		utility[z] = make([]float64, len(costs))
		for k := range utility[z] {
			utility[z][k] = float64(k) / float64(len(costs))
		}
	}
	probs := []float64{0.25, 0.25, 0.25, 0.25}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solveALP(utility, costs, probs, 0.3)
	}
}
