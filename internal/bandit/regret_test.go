package bandit

import (
	"errors"
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// syntheticEnv is a known-ground-truth platform for regret measurement:
// expected delay per (context, arm) is fixed, observations add noise.
type syntheticEnv struct {
	cfg Config
	// meanDelay[ctx][arm] in seconds.
	meanDelay [crowd.NumContexts][]float64
}

func newSyntheticEnv(cfg Config) *syntheticEnv {
	env := &syntheticEnv{cfg: cfg}
	for z := 0; z < crowd.NumContexts; z++ {
		env.meanDelay[z] = make([]float64, len(cfg.Levels))
		for a, inc := range cfg.Levels {
			frac := (float64(inc) - 1) / 19
			switch crowd.TemporalContext(z) {
			case crowd.Morning:
				env.meanDelay[z][a] = 1000 - 700*frac
			case crowd.Afternoon:
				env.meanDelay[z][a] = 850 - 550*frac
			default:
				env.meanDelay[z][a] = 300 - 50*frac
			}
		}
	}
	return env
}

// truePayoff converts a mean delay to the bandit's payoff scale.
func (e *syntheticEnv) truePayoff(z crowd.TemporalContext, arm int) float64 {
	return mathx.Clamp(1-e.meanDelay[z][arm]/e.cfg.DelayScale.Seconds(), 0, 1)
}

// oraclePerRound computes the expected per-round payoff of the optimal
// stationary policy: the LP over the *true* payoffs at the full pace.
func (e *syntheticEnv) oraclePerRound() float64 {
	k := len(e.cfg.Levels)
	utility := make([][]float64, crowd.NumContexts)
	costs := make([]float64, k)
	probs := make([]float64, crowd.NumContexts)
	for a, inc := range e.cfg.Levels {
		costs[a] = inc.Dollars() * float64(e.cfg.QueriesPerRound)
	}
	for z := 0; z < crowd.NumContexts; z++ {
		probs[z] = 1.0 / crowd.NumContexts
		utility[z] = make([]float64, k)
		for a := 0; a < k; a++ {
			utility[z][a] = e.truePayoff(crowd.TemporalContext(z), a)
		}
	}
	rho := e.cfg.BudgetDollars / float64(e.cfg.TotalRounds)
	mix := solveALP(utility, costs, probs, rho)
	var v float64
	for z := range mix {
		for a, w := range mix[z] {
			v += probs[z] * w * utility[z][a]
		}
	}
	return v
}

// runHorizon plays the policy for T rounds and returns its cumulative
// *expected* payoff (pseudo-regret uses true means of chosen arms).
func runHorizon(t *testing.T, env *syntheticEnv, cfg Config, horizon int, noiseSeed int64) float64 {
	t.Helper()
	u, err := NewUCBALP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRand(noiseSeed)
	var total float64
	for round := 0; round < horizon; round++ {
		ctx := crowd.TemporalContext(round % crowd.NumContexts)
		inc, err := u.SelectIncentive(ctx)
		if errors.Is(err, ErrBudgetExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		arm := u.armIndex(inc)
		total += env.truePayoff(ctx, arm)
		// Noisy observed delay (multiplicative log-normal, sigma 0.2).
		observed := env.meanDelay[ctx][arm] * mathx.LogNormal(rng, -0.02, 0.2)
		u.Observe(ctx, inc, time.Duration(observed*float64(time.Second)), cfg.QueriesPerRound)
	}
	return total
}

// TestUCBALPSublinearRegret measures pseudo-regret against the LP oracle
// at two horizons; doubling the horizon must much less than double the
// regret (logarithmic regret is the algorithm's published guarantee; the
// test asserts clear sublinearity with slack for noise).
func TestUCBALPSublinearRegret(t *testing.T) {
	base := DefaultConfig()
	base.Levels = crowd.DefaultIncentiveLevels()
	base.DelayScale = 20 * time.Minute
	base.QueriesPerRound = 5
	base.Alpha = 0.15

	regretAt := func(horizon int) float64 {
		cfg := base
		cfg.TotalRounds = horizon
		// Budget scales with the horizon: same pace at both horizons.
		cfg.BudgetDollars = 0.5 * float64(horizon)
		env := newSyntheticEnv(cfg)
		oracle := env.oraclePerRound() * float64(horizon)
		achieved := runHorizon(t, env, cfg, horizon, 77)
		return oracle - achieved
	}

	r1 := regretAt(800)
	r2 := regretAt(1600)
	t.Logf("pseudo-regret: T=800 -> %.2f, T=1600 -> %.2f (ratio %.2f)", r1, r2, r2/r1)
	if r1 <= 0 {
		// Already at or above the oracle within noise: vacuously fine.
		return
	}
	if r2 > 1.6*r1 {
		t.Errorf("regret growth ratio %.2f; want clearly sublinear (< 1.6x for 2x horizon)", r2/r1)
	}
	// Sanity: regret per round must be small relative to the payoff scale.
	if r1/800 > 0.05 {
		t.Errorf("per-round regret %.4f too large; the policy is not learning", r1/800)
	}
}

// TestUCBALPBeatsFixedOnSyntheticSurface verifies the policy's payoff
// advantage over the fixed-max baseline in the same environment.
func TestUCBALPBeatsFixedOnSyntheticSurface(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalRounds = 1200
	cfg.BudgetDollars = 0.5 * float64(cfg.TotalRounds)
	cfg.Alpha = 0.15
	env := newSyntheticEnv(cfg)

	ucbTotal := runHorizon(t, env, cfg, cfg.TotalRounds, 99)

	fixed, err := NewFixedMax(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRand(99)
	var fixedTotal float64
	for round := 0; round < cfg.TotalRounds; round++ {
		ctx := crowd.TemporalContext(round % crowd.NumContexts)
		inc, err := fixed.SelectIncentive(ctx)
		if errors.Is(err, ErrBudgetExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		arm := 0
		for a, l := range cfg.Levels {
			if l == inc {
				arm = a
			}
		}
		fixedTotal += env.truePayoff(ctx, arm)
		observed := env.meanDelay[ctx][arm] * mathx.LogNormal(rng, -0.02, 0.2)
		fixed.Observe(ctx, inc, time.Duration(observed*float64(time.Second)), cfg.QueriesPerRound)
	}
	t.Logf("cumulative payoff: ucb-alp %.1f vs fixed %.1f", ucbTotal, fixedTotal)
	if ucbTotal <= fixedTotal {
		t.Errorf("UCB-ALP (%.1f) must beat fixed-max (%.1f) on a context-dependent surface", ucbTotal, fixedTotal)
	}
}
