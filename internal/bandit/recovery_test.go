package bandit

import (
	"math"
	"testing"
)

// TestChargeDrawsWithoutObserving: Charge moves money without touching
// the learning state, and clamps at zero.
func TestChargeDrawsWithoutObserving(t *testing.T) {
	u, err := NewUCBALP(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := u.TotalBudget()
	u.Charge(1.5)
	if got := u.RemainingBudget(); got != total-1.5 {
		t.Errorf("remaining %v, want %v", got, total-1.5)
	}
	if u.Rounds() != 0 {
		t.Errorf("Charge advanced the round counter to %d", u.Rounds())
	}
	if got := u.SpentDollars(); got != 1.5 {
		t.Errorf("spent %v, want 1.5", got)
	}
	u.Charge(10 * total) // overdraw clamps, it does not go negative
	if got := u.RemainingBudget(); got != 0 {
		t.Errorf("overdrawn remaining %v, want 0", got)
	}
	if got := u.SpentDollars(); got != total {
		t.Errorf("spent after overdraw %v, want %v", got, total)
	}
	u.Charge(-1) // non-positive charges are ignored
	if got := u.RemainingBudget(); got != 0 {
		t.Errorf("negative charge changed remaining to %v", got)
	}
}

// TestRefundCapsAndTracksFlow: Refund re-credits the budget, caps at the
// configured total, and accumulates the flow counter.
func TestRefundCapsAndTracksFlow(t *testing.T) {
	u, err := NewUCBALP(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := u.TotalBudget()
	u.Charge(2)
	u.Refund(0.5)
	if got := u.RemainingBudget(); math.Abs(got-(total-1.5)) > 1e-12 {
		t.Errorf("remaining %v, want %v", got, total-1.5)
	}
	if got := u.RefundedDollars(); got != 0.5 {
		t.Errorf("refunded %v, want 0.5", got)
	}
	// Conservation: spent + remaining == total, refunds being a flow that
	// re-enters remaining rather than a separate balance.
	if d := math.Abs(u.SpentDollars() + u.RemainingBudget() - total); d > 1e-12 {
		t.Errorf("conservation violated by %v", d)
	}
	u.Refund(100) // over-refund caps at the configured budget
	if got := u.RemainingBudget(); got != total {
		t.Errorf("over-refunded remaining %v, want cap %v", got, total)
	}
	if got := u.RefundedDollars(); got != 100.5 {
		t.Errorf("refund flow %v, want 100.5", got)
	}
	u.Refund(0)
	if got := u.RefundedDollars(); got != 100.5 {
		t.Errorf("zero refund changed flow to %v", got)
	}
}
