package bandit

import (
	"errors"
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
)

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no levels", func(c *Config) { c.Levels = nil }},
		{"negative level", func(c *Config) { c.Levels = []crowd.Cents{-1} }},
		{"zero budget", func(c *Config) { c.BudgetDollars = 0 }},
		{"zero rounds", func(c *Config) { c.TotalRounds = 0 }},
		{"zero queries", func(c *Config) { c.QueriesPerRound = 0 }},
		{"zero delay scale", func(c *Config) { c.DelayScale = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := NewUCBALP(cfg); err == nil {
				t.Errorf("%s should be rejected", tt.name)
			}
		})
	}
}

func TestPayoffNormalization(t *testing.T) {
	u, err := NewUCBALP(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p := u.payoffOf(0); p != 1 {
		t.Errorf("zero delay payoff %v, want 1", p)
	}
	if p := u.payoffOf(10 * time.Minute); p != 0.5 {
		t.Errorf("half-scale delay payoff %v, want 0.5", p)
	}
	if p := u.payoffOf(2 * time.Hour); p != 0 {
		t.Errorf("over-scale delay payoff %v, want 0 (clamped)", p)
	}
}

func TestForcedExplorationCoversArms(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BudgetDollars = 1000 // affordable everywhere
	u, err := NewUCBALP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[crowd.Cents]bool)
	for i := 0; i < len(cfg.Levels); i++ {
		inc, err := u.SelectIncentive(crowd.Morning)
		if err != nil {
			t.Fatal(err)
		}
		seen[inc] = true
		u.Observe(crowd.Morning, inc, 5*time.Minute, cfg.QueriesPerRound)
	}
	if len(seen) != len(cfg.Levels) {
		t.Errorf("forced exploration visited %d arms, want %d", len(seen), len(cfg.Levels))
	}
}

func TestBudgetNeverExceeded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BudgetDollars = 2.0
	cfg.TotalRounds = 100
	u, err := NewUCBALP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spent := 0.0
	for i := 0; i < cfg.TotalRounds; i++ {
		inc, err := u.SelectIncentive(crowd.Evening)
		if errors.Is(err, ErrBudgetExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		cost := inc.Dollars() * float64(cfg.QueriesPerRound)
		if cost > u.RemainingBudget()+1e-9 {
			t.Fatalf("policy selected unaffordable arm: cost %v remaining %v", cost, u.RemainingBudget())
		}
		spent += cost
		u.Observe(crowd.Evening, inc, 5*time.Minute, cfg.QueriesPerRound)
	}
	if spent > cfg.BudgetDollars+1e-9 {
		t.Fatalf("total spend %v exceeds budget %v", spent, cfg.BudgetDollars)
	}
}

// The core IPD claim: with delays that fall sharply with incentive in the
// morning but are flat in the evening, a trained policy should pay more in
// the morning than in the evening.
func TestLearnsContextDependentPolicy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BudgetDollars = 200
	cfg.TotalRounds = 2000
	u, err := NewUCBALP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic environment mirroring the Figure 5 surface.
	delayFor := func(ctx crowd.TemporalContext, inc crowd.Cents) time.Duration {
		switch ctx {
		case crowd.Morning:
			return time.Duration(1000-40*int(inc)) * time.Second
		default: // evening: flat
			return 280 * time.Second
		}
	}
	morningSpend, eveningSpend := 0.0, 0.0
	morningRounds, eveningRounds := 0, 0
	for i := 0; i < cfg.TotalRounds; i++ {
		ctx := crowd.Morning
		if i%2 == 1 {
			ctx = crowd.Evening
		}
		inc, err := u.SelectIncentive(ctx)
		if errors.Is(err, ErrBudgetExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		u.Observe(ctx, inc, delayFor(ctx, inc), cfg.QueriesPerRound)
		if ctx == crowd.Morning {
			morningSpend += float64(inc)
			morningRounds++
		} else {
			eveningSpend += float64(inc)
			eveningRounds++
		}
	}
	if morningRounds < 100 || eveningRounds < 100 {
		t.Fatalf("too few rounds: morning %d evening %d", morningRounds, eveningRounds)
	}
	mAvg := morningSpend / float64(morningRounds)
	eAvg := eveningSpend / float64(eveningRounds)
	if mAvg <= eAvg {
		t.Errorf("policy should pay more in the morning: morning avg %.2fc evening avg %.2fc", mAvg, eAvg)
	}
}

func TestWarmStartUsesPilotData(t *testing.T) {
	ds := mustDataset(t)
	platform := crowd.MustNewPlatform(crowd.DefaultConfig())
	pilot, err := crowd.RunPilot(platform, ds, crowd.DefaultPilotConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	u, err := NewUCBALP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u.WarmStart(pilot)
	for z := 0; z < crowd.NumContexts; z++ {
		for arm := range cfg.Levels {
			if u.count[z][arm] == 0 {
				t.Fatalf("warm start left (ctx %d, arm %d) unvisited", z, arm)
			}
		}
	}
	// A warm-started policy must not re-run forced exploration: its first
	// choice in the morning should not be the never-optimal 1-cent arm.
	inc, err := u.SelectIncentive(crowd.Morning)
	if err != nil {
		t.Fatal(err)
	}
	if inc == 1 {
		t.Error("warm-started policy picked the 1-cent arm in the morning")
	}
}

func TestSelectInvalidContext(t *testing.T) {
	u, err := NewUCBALP(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.SelectIncentive(crowd.TemporalContext(11)); err == nil {
		t.Error("invalid context must be rejected")
	}
}

func TestFixedPolicy(t *testing.T) {
	f, err := NewFixed(10, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := f.SelectIncentive(crowd.Morning)
	if err != nil || inc != 10 {
		t.Fatalf("fixed select = %v, %v", inc, err)
	}
	f.Observe(crowd.Morning, 10, time.Minute, 2) // 20 cents
	if got := f.RemainingBudget(); mathxAbs(got-0.10) > 1e-9 {
		t.Errorf("remaining %v, want 0.10", got)
	}
	f.Observe(crowd.Morning, 10, time.Minute, 1) // 10 cents: exhausted
	if _, err := f.SelectIncentive(crowd.Morning); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("want ErrBudgetExhausted, got %v", err)
	}
}

func TestNewFixedValidation(t *testing.T) {
	if _, err := NewFixed(0, 1); err == nil {
		t.Error("zero incentive must be rejected")
	}
	if _, err := NewFixed(5, 0); err == nil {
		t.Error("zero budget must be rejected")
	}
}

func TestNewFixedMaxMatchesPaperArithmetic(t *testing.T) {
	// Paper: fixed incentive = total budget / number of queries.
	cfg := DefaultConfig()
	cfg.BudgetDollars = 40 // 200 queries -> 20c each
	cfg.TotalRounds = 40
	cfg.QueriesPerRound = 5
	f, err := NewFixedMax(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Incentive() != 20 {
		t.Errorf("fixed-max incentive %v, want 20c", f.Incentive())
	}
	cfg.BudgetDollars = 2 // -> 1c each
	f, err = NewFixedMax(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Incentive() != 1 {
		t.Errorf("fixed-max incentive %v, want 1c", f.Incentive())
	}
}

func TestRandomPolicyStaysAffordable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BudgetDollars = 1.0
	r, err := NewRandom(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spent := 0.0
	for {
		inc, err := r.SelectIncentive(crowd.Midnight)
		if errors.Is(err, ErrBudgetExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		cost := inc.Dollars() * float64(cfg.QueriesPerRound)
		if cost > r.RemainingBudget()+1e-9 {
			t.Fatalf("random policy exceeded budget")
		}
		spent += cost
		r.Observe(crowd.Midnight, inc, time.Minute, cfg.QueriesPerRound)
	}
	if spent > cfg.BudgetDollars+1e-9 {
		t.Fatalf("spend %v exceeds budget", spent)
	}
}

func TestRandomPolicyCoversLevels(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BudgetDollars = 10000
	r, err := NewRandom(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[crowd.Cents]bool)
	for i := 0; i < 200; i++ {
		inc, err := r.SelectIncentive(crowd.Morning)
		if err != nil {
			t.Fatal(err)
		}
		seen[inc] = true
	}
	if len(seen) != len(cfg.Levels) {
		t.Errorf("random policy visited %d levels, want %d", len(seen), len(cfg.Levels))
	}
}

func TestContextBlindIgnoresContext(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BudgetDollars = 1000
	cb, err := NewContextBlind(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Feed observations only via Evening; the inner learner must still
	// accumulate them (under its single collapsed context).
	for i := 0; i < 10; i++ {
		inc, err := cb.SelectIncentive(crowd.Evening)
		if err != nil {
			t.Fatal(err)
		}
		cb.Observe(crowd.Evening, inc, time.Minute, 1)
	}
	total := 0
	for _, c := range cb.inner.count[crowd.Morning] {
		total += c
	}
	if total != 10 {
		t.Errorf("context-blind learner recorded %d observations under its collapsed context, want 10", total)
	}
}

func TestPolicyNames(t *testing.T) {
	u, _ := NewUCBALP(DefaultConfig())
	if u.Name() != "ucb-alp" {
		t.Error("UCBALP name wrong")
	}
	f, _ := NewFixed(5, 1)
	if f.Name() != "fixed-5c" {
		t.Errorf("fixed name %q", f.Name())
	}
	r, _ := NewRandom(DefaultConfig())
	if r.Name() != "random" {
		t.Error("random name wrong")
	}
	cb, _ := NewContextBlind(DefaultConfig())
	if cb.Name() != "ucb-context-blind" {
		t.Error("context-blind name wrong")
	}
}

func mustDataset(t *testing.T) []*imagery.Image {
	t.Helper()
	ds, err := imagery.Generate(imagery.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ds.Train
}

func mathxAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestBudgetTelemetryAccessors(t *testing.T) {
	cfg := DefaultConfig()
	u, err := NewUCBALP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if u.TotalBudget() != cfg.BudgetDollars {
		t.Errorf("total budget %v, want %v", u.TotalBudget(), cfg.BudgetDollars)
	}
	if u.SpentDollars() != 0 || u.Rounds() != 0 {
		t.Errorf("fresh policy reports spend %v over %d rounds", u.SpentDollars(), u.Rounds())
	}
	u.Observe(crowd.Morning, cfg.Levels[0], time.Minute, 5)
	wantSpend := cfg.Levels[0].Dollars() * 5
	if got := u.SpentDollars(); got < wantSpend-1e-9 || got > wantSpend+1e-9 {
		t.Errorf("spent %v, want %v", got, wantSpend)
	}
	if u.Rounds() != 1 {
		t.Errorf("rounds %d, want 1", u.Rounds())
	}
	if got := u.TotalBudget() - u.SpentDollars(); got != u.RemainingBudget() {
		t.Errorf("spent/remaining disagree: %v vs %v", got, u.RemainingBudget())
	}
}
