package bandit

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// State is the serialisable form of a UCBALP policy: learned statistics,
// budget position and configuration. The RNG is reseeded from Config.Seed
// on restore.
type State struct {
	Config    Config
	Remaining float64
	Rounds    int
	Count     [crowd.NumContexts][]int
	Payoff    [crowd.NumContexts][]float64
}

// State captures the policy.
func (u *UCBALP) State() State {
	s := State{Config: u.cfg, Remaining: u.remaining, Rounds: u.rounds}
	for z := 0; z < crowd.NumContexts; z++ {
		s.Count[z] = append([]int(nil), u.count[z]...)
		s.Payoff[z] = mathx.Clone(u.payoff[z])
	}
	return s
}

// FromState reconstructs a policy from a snapshot.
func FromState(s State) (*UCBALP, error) {
	u, err := NewUCBALP(s.Config)
	if err != nil {
		return nil, err
	}
	k := len(s.Config.Levels)
	for z := 0; z < crowd.NumContexts; z++ {
		if len(s.Count[z]) != k || len(s.Payoff[z]) != k {
			return nil, fmt.Errorf("bandit: state context %d has %d/%d arm stats, want %d",
				z, len(s.Count[z]), len(s.Payoff[z]), k)
		}
		copy(u.count[z], s.Count[z])
		copy(u.payoff[z], s.Payoff[z])
	}
	if s.Remaining < 0 || s.Remaining > s.Config.BudgetDollars+1e-9 {
		return nil, fmt.Errorf("bandit: state remaining budget %v outside [0, %v]",
			s.Remaining, s.Config.BudgetDollars)
	}
	if s.Rounds < 0 {
		return nil, fmt.Errorf("bandit: state rounds %d negative", s.Rounds)
	}
	u.remaining = s.Remaining
	u.rounds = s.Rounds
	return u, nil
}

// Save writes the policy state to w using encoding/gob.
func (u *UCBALP) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(u.State()); err != nil {
		return fmt.Errorf("bandit: save: %w", err)
	}
	return nil
}

// Load reads a policy previously written with Save.
func Load(r io.Reader) (*UCBALP, error) {
	var s State
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("bandit: load: %w", err)
	}
	return FromState(s)
}
