package bandit

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// State is the serialisable form of a UCBALP policy: learned statistics,
// budget position, configuration, and the position of the seeded RNG
// stream so a restored policy's LP-rounding draws continue exactly where
// the original left off.
type State struct {
	Config    Config
	Remaining float64
	Rounds    int
	Count     [crowd.NumContexts][]int
	Payoff    [crowd.NumContexts][]float64
	// RNGDraws is the number of values drawn from the seeded stream;
	// zero in snapshots written before this field existed (those keep
	// the legacy reseed-from-Config.Seed behaviour).
	RNGDraws uint64
}

// State captures the policy.
func (u *UCBALP) State() State {
	s := State{Config: u.cfg, Remaining: u.remaining, Rounds: u.rounds, RNGDraws: u.rngSrc.Pos()}
	for z := 0; z < crowd.NumContexts; z++ {
		s.Count[z] = append([]int(nil), u.count[z]...)
		s.Payoff[z] = mathx.Clone(u.payoff[z])
	}
	return s
}

// FromState reconstructs a policy from a snapshot.
func FromState(s State) (*UCBALP, error) {
	u, err := NewUCBALP(s.Config)
	if err != nil {
		return nil, err
	}
	k := len(s.Config.Levels)
	for z := 0; z < crowd.NumContexts; z++ {
		if len(s.Count[z]) != k || len(s.Payoff[z]) != k {
			return nil, fmt.Errorf("bandit: state context %d has %d/%d arm stats, want %d",
				z, len(s.Count[z]), len(s.Payoff[z]), k)
		}
		copy(u.count[z], s.Count[z])
		copy(u.payoff[z], s.Payoff[z])
	}
	if s.Remaining < 0 || s.Remaining > s.Config.BudgetDollars+1e-9 {
		return nil, fmt.Errorf("bandit: state remaining budget %v outside [0, %v]",
			s.Remaining, s.Config.BudgetDollars)
	}
	if s.Rounds < 0 {
		return nil, fmt.Errorf("bandit: state rounds %d negative", s.Rounds)
	}
	u.remaining = s.Remaining
	u.rounds = s.Rounds
	// NewUCBALP draws nothing during construction, so the snapshot's
	// absolute position is the skip distance.
	u.rngSrc.Skip(s.RNGDraws)
	return u, nil
}

// Save writes the policy state to w using encoding/gob.
func (u *UCBALP) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(u.State()); err != nil {
		return fmt.Errorf("bandit: save: %w", err)
	}
	return nil
}

// Load reads a policy previously written with Save.
func Load(r io.Reader) (*UCBALP, error) {
	var s State
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("bandit: load: %w", err)
	}
	return FromState(s)
}
