// Package bandit implements the constrained contextual multi-armed bandit
// (CCMB) that powers CrowdLearn's Incentive Policy Design module
// (Section IV-B2), along with the fixed- and random-incentive baselines
// the paper compares against in Figure 8.
//
// The CCMB maps directly onto the paper's definitions: the uncertain
// environment is the black-box crowdsourcing platform; the context is the
// temporal context (morning / afternoon / evening / midnight); an action
// is an incentive level; the payoff is the additive inverse of the crowd
// response delay (normalised to [0,1]); the action cost is the incentive
// itself; and the resource budget is the total crowdsourcing spend B.
//
// The solver follows the UCB-ALP scheme of Wu et al., "Algorithms with
// Logarithmic or Sublinear Regret for Constrained Contextual Bandits"
// (NIPS 2015): UCB estimates of the per-(context, action) expected payoff
// combined with an adaptive linear program that paces spending so the
// average cost per remaining round stays within the remaining budget.
// With a single budget constraint the per-round LP solution is a mixture
// of at most two actions, which is what selectWithPacing computes in
// closed form.
package bandit

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// Policy selects incentive levels for crowd queries and learns from the
// observed delays. Implementations must be deterministic given their seed.
type Policy interface {
	// SelectIncentive returns the incentive for the next batch of queries
	// posted under ctx. Implementations must never commit the caller to
	// spending more than the remaining budget allows for the remaining
	// rounds.
	SelectIncentive(ctx crowd.TemporalContext) (crowd.Cents, error)
	// Observe feeds back the realised mean query delay for a batch posted
	// at the given context and incentive, and charges the spend against
	// the budget.
	Observe(ctx crowd.TemporalContext, incentive crowd.Cents, meanDelay time.Duration, queries int)
	// RemainingBudget returns the unspent budget in dollars.
	RemainingBudget() float64
	// Name identifies the policy in experiment output.
	Name() string
}

// ErrBudgetExhausted is returned by SelectIncentive when no action is
// affordable any more.
var ErrBudgetExhausted = errors.New("bandit: budget exhausted")

// Config parameterises the UCB-ALP policy.
type Config struct {
	// Levels is the action set (incentives in cents).
	Levels []crowd.Cents
	// BudgetDollars is the total crowdsourcing budget B.
	BudgetDollars float64
	// TotalRounds is the number of sensing cycles T the budget must last;
	// each round posts QueriesPerRound queries.
	TotalRounds int
	// QueriesPerRound is the query-set size per cycle.
	QueriesPerRound int
	// DelayScale normalises delays into payoffs: payoff = 1 - delay/scale
	// clamped to [0, 1]. Should upper-bound typical platform delays.
	DelayScale time.Duration
	// Alpha scales the UCB exploration bonus (default 1).
	Alpha float64
	// Seed drives the randomised LP rounding.
	Seed int64
}

// DefaultConfig returns the configuration used by the paper's main
// experiment: 7 incentive levels, 40 cycles of 5 queries.
func DefaultConfig() Config {
	return Config{
		Levels:          crowd.DefaultIncentiveLevels(),
		BudgetDollars:   20.0,
		TotalRounds:     40,
		QueriesPerRound: 5,
		DelayScale:      20 * time.Minute,
		// Payoff gaps between incentive levels are a few percent of the
		// delay scale, so the exploration bonus must be small or it
		// drowns the signal; the pilot warm start supplies the initial
		// coverage that a large bonus would otherwise buy.
		Alpha: 0.15,
		Seed:  1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Levels) == 0 {
		return errors.New("bandit: Levels must be non-empty")
	}
	for _, l := range c.Levels {
		if l <= 0 {
			return fmt.Errorf("bandit: incentive level %d must be positive", l)
		}
	}
	if c.BudgetDollars <= 0 {
		return errors.New("bandit: BudgetDollars must be positive")
	}
	if c.TotalRounds <= 0 {
		return errors.New("bandit: TotalRounds must be positive")
	}
	if c.QueriesPerRound <= 0 {
		return errors.New("bandit: QueriesPerRound must be positive")
	}
	if c.DelayScale <= 0 {
		return errors.New("bandit: DelayScale must be positive")
	}
	return nil
}

// UCBALP is the adaptive-LP constrained contextual bandit.
type UCBALP struct {
	cfg       Config
	rng       *rand.Rand
	rngSrc    *mathx.CountingSource // tracks rng's draw position for State
	remaining float64               // dollars
	refunded  float64               // dollars returned for unanswered HITs (flow counter)
	rounds    int                   // rounds observed so far
	// Per (context, arm) statistics.
	count  [crowd.NumContexts][]int
	payoff [crowd.NumContexts][]float64 // running mean payoff
}

var _ Policy = (*UCBALP)(nil)

// NewUCBALP constructs the policy.
func NewUCBALP(cfg Config) (*UCBALP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 1
	}
	rng, src := mathx.NewCountedRand(cfg.Seed)
	u := &UCBALP{cfg: cfg, rng: rng, rngSrc: src, remaining: cfg.BudgetDollars}
	for z := 0; z < crowd.NumContexts; z++ {
		u.count[z] = make([]int, len(cfg.Levels))
		u.payoff[z] = make([]float64, len(cfg.Levels))
	}
	return u, nil
}

// Name implements Policy.
func (u *UCBALP) Name() string { return "ucb-alp" }

// RemainingBudget implements Policy.
func (u *UCBALP) RemainingBudget() float64 { return u.remaining }

// TotalBudget returns the configured budget B in dollars.
func (u *UCBALP) TotalBudget() float64 { return u.cfg.BudgetDollars }

// SpentDollars returns the budget consumed so far — the burn-rate signal
// an operator watches (total minus remaining, never negative).
func (u *UCBALP) SpentDollars() float64 {
	if spent := u.cfg.BudgetDollars - u.remaining; spent > 0 {
		return spent
	}
	return 0
}

// Rounds returns the number of observed rounds, for pacing telemetry
// alongside the configured TotalRounds.
func (u *UCBALP) Rounds() int { return u.rounds }

// Charge draws dollars from the remaining budget without recording a
// payoff observation or advancing the round counter — the accounting
// path for recovery reposts, whose backed-off incentives are generally
// not members of the action set and must not distort arm statistics or
// the ALP's per-round pacing.
func (u *UCBALP) Charge(dollars float64) {
	if dollars <= 0 {
		return
	}
	u.remaining -= dollars
	if u.remaining < 0 {
		u.remaining = 0
	}
}

// Refund returns dollars to the remaining budget, capped at the
// configured total — the accounting path for HITs that expired with no
// usable responses and were never paid for by the platform. The
// cumulative refund flow is tracked separately (RefundedDollars) so the
// invariant SpentDollars() + RemainingBudget() == TotalBudget() holds
// throughout.
func (u *UCBALP) Refund(dollars float64) {
	if dollars <= 0 {
		return
	}
	u.remaining += dollars
	if u.remaining > u.cfg.BudgetDollars {
		u.remaining = u.cfg.BudgetDollars
	}
	u.refunded += dollars
}

// RefundedDollars returns the cumulative dollars refunded for unanswered
// HITs — a flow counter, not a balance: refunds re-enter RemainingBudget
// and may be spent again.
func (u *UCBALP) RefundedDollars() float64 { return u.refunded }

// WarmStart seeds the per-(context, arm) statistics from pilot-study
// observations so the policy does not waste live rounds rediscovering the
// delay surface — the paper trains IPD on the pilot data before deployment
// (Section V-B).
func (u *UCBALP) WarmStart(data *crowd.PilotData) {
	for _, cell := range data.Cells {
		arm := u.armIndex(cell.Incentive)
		if arm < 0 {
			continue
		}
		for _, qr := range cell.Results {
			u.update(cell.Context, arm, u.payoffOf(qr.CompletionDelay))
		}
	}
}

func (u *UCBALP) armIndex(incentive crowd.Cents) int {
	for i, l := range u.cfg.Levels {
		if l == incentive {
			return i
		}
	}
	return -1
}

// payoffOf converts a delay into a payoff in [0, 1] (Definition 12: the
// additive inverse of delay, affinely normalised).
func (u *UCBALP) payoffOf(delay time.Duration) float64 {
	return mathx.Clamp(1-float64(delay)/float64(u.cfg.DelayScale), 0, 1)
}

func (u *UCBALP) update(ctx crowd.TemporalContext, arm int, payoff float64) {
	u.count[ctx][arm]++
	n := float64(u.count[ctx][arm])
	u.payoff[ctx][arm] += (payoff - u.payoff[ctx][arm]) / n
}

// costPerRound returns the spend a round at the given arm commits to.
func (u *UCBALP) costPerRound(arm int) float64 {
	return u.cfg.Levels[arm].Dollars() * float64(u.cfg.QueriesPerRound)
}

// SelectIncentive implements Policy using UCB indices with adaptive
// budget pacing.
func (u *UCBALP) SelectIncentive(ctx crowd.TemporalContext) (crowd.Cents, error) {
	if !ctx.Valid() {
		return 0, fmt.Errorf("bandit: invalid context %d", int(ctx))
	}
	k := len(u.cfg.Levels)

	// Affordable arms under the hard budget.
	affordable := make([]int, 0, k)
	for arm := 0; arm < k; arm++ {
		if u.costPerRound(arm) <= u.remaining+1e-12 {
			affordable = append(affordable, arm)
		}
	}
	if len(affordable) == 0 {
		return 0, ErrBudgetExhausted
	}

	// Forced exploration: every affordable unplayed (context, arm) pair is
	// tried once, cheapest first, so UCB indices are defined everywhere.
	for _, arm := range affordable {
		if u.count[ctx][arm] == 0 {
			return u.cfg.Levels[arm], nil
		}
	}

	// UCB indices across ALL contexts: the adaptive LP allocates the
	// per-round budget jointly over the context distribution, so it needs
	// utility estimates everywhere, not only for the current context.
	// Unvisited pairs get the optimistic payoff 1.
	idx := make([][]float64, crowd.NumContexts)
	for z := 0; z < crowd.NumContexts; z++ {
		idx[z] = make([]float64, k)
		total := 0
		for arm := 0; arm < k; arm++ {
			total += u.count[z][arm]
		}
		for arm := 0; arm < k; arm++ {
			if u.count[z][arm] == 0 {
				idx[z][arm] = 1
				continue
			}
			bonus := u.cfg.Alpha * math.Sqrt(2*math.Log(float64(total)+1)/float64(u.count[z][arm]))
			idx[z][arm] = u.payoff[z][arm] + bonus
		}
	}

	roundsLeft := u.cfg.TotalRounds - u.rounds
	if roundsLeft <= 0 {
		roundsLeft = 1
	}
	rho := u.remaining / float64(roundsLeft)
	costs := make([]float64, k)
	for arm := 0; arm < k; arm++ {
		costs[arm] = u.costPerRound(arm)
	}
	// Contexts are assumed uniform (the paper's protocol spends equal
	// time in each); the LP is re-solved every round with the updated
	// pace, which is the "adaptive" in UCB-ALP.
	probs := make([]float64, crowd.NumContexts)
	mathx.Fill(probs, 1/float64(crowd.NumContexts))

	mixture := solveALP(idx, costs, probs, rho)

	// Sample this context's arm from the LP mixture, restricted to arms
	// the hard budget still allows.
	weights := make([]float64, k)
	anyMass := false
	for _, arm := range affordable {
		if w := mixture[ctx][arm]; w > 0 {
			weights[arm] = w
			anyMass = true
		}
	}
	if !anyMass {
		// The LP mass sits on unaffordable arms (budget nearly gone):
		// fall back to the cheapest affordable arm.
		cheapest := affordable[0]
		for _, arm := range affordable[1:] {
			if costs[arm] < costs[cheapest] {
				cheapest = arm
			}
		}
		return u.cfg.Levels[cheapest], nil
	}
	return u.cfg.Levels[mathx.Categorical(u.rng, weights)], nil
}

// solveALP solves the adaptive linear program of UCB-ALP exactly: choose a
// per-context mixture over arms maximising expected utility subject to an
// expected per-round cost of at most rho,
//
//	max  sum_z p_z sum_k x[z][k] * utility[z][k]
//	s.t. sum_z p_z sum_k x[z][k] * cost[k] <= rho,  sum_k x[z][k] = 1.
//
// This is the LP relaxation of a multiple-choice knapsack. The exact
// solution walks each context's efficient frontier (the concave hull of
// its (cost, utility) points) and greedily applies the steepest
// utility-per-dollar upgrades until the pace budget is exhausted; at most
// one context ends up with a fractional (two-arm) mixture.
func solveALP(utility [][]float64, costs []float64, contextProb []float64, rho float64) [][]float64 {
	numContexts := len(utility)
	k := len(costs)
	mixture := make([][]float64, numContexts)
	hulls := make([][]int, numContexts) // arm indices along each frontier
	pos := make([]int, numContexts)     // current hull position per context
	for z := 0; z < numContexts; z++ {
		mixture[z] = make([]float64, k)
		hulls[z] = efficientFrontier(utility[z], costs)
		mixture[z][hulls[z][0]] = 1
	}
	spent := 0.0
	for z := 0; z < numContexts; z++ {
		spent += contextProb[z] * costs[hulls[z][0]]
	}
	if spent >= rho {
		// Even the cheapest assignment exceeds the pace: the caller's
		// hard-budget guard decides what actually happens.
		return mixture
	}
	for {
		// Steepest remaining upgrade across contexts.
		bestZ, bestSlope := -1, 0.0
		for z := 0; z < numContexts; z++ {
			if pos[z]+1 >= len(hulls[z]) {
				continue
			}
			cur, next := hulls[z][pos[z]], hulls[z][pos[z]+1]
			slope := (utility[z][next] - utility[z][cur]) / (costs[next] - costs[cur])
			if bestZ < 0 || slope > bestSlope {
				bestZ, bestSlope = z, slope
			}
		}
		if bestZ < 0 || bestSlope <= 0 {
			return mixture
		}
		cur, next := hulls[bestZ][pos[bestZ]], hulls[bestZ][pos[bestZ]+1]
		delta := contextProb[bestZ] * (costs[next] - costs[cur])
		if spent+delta <= rho {
			// Full upgrade.
			mixture[bestZ][cur] = 0
			mixture[bestZ][next] = 1
			pos[bestZ]++
			spent += delta
			continue
		}
		// Fractional upgrade exhausts the budget exactly.
		f := (rho - spent) / delta
		mixture[bestZ][cur] = 1 - f
		mixture[bestZ][next] = f
		return mixture
	}
}

// efficientFrontier returns arm indices forming the concave, strictly
// improving (cost, utility) frontier in ascending cost order. The
// cheapest arm is always included as the base point.
func efficientFrontier(utility, costs []float64) []int {
	order := make([]int, len(costs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if costs[order[a]] != costs[order[b]] {
			return costs[order[a]] < costs[order[b]]
		}
		return utility[order[a]] > utility[order[b]]
	})
	// Keep strictly improving utility.
	improving := order[:0]
	bestU := math.Inf(-1)
	for _, arm := range order {
		if utility[arm] > bestU {
			improving = append(improving, arm)
			bestU = utility[arm]
		}
	}
	// Enforce concavity (decreasing upgrade slopes) with a stack.
	hull := make([]int, 0, len(improving))
	for _, arm := range improving {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			s1 := (utility[b] - utility[a]) / (costs[b] - costs[a])
			s2 := (utility[arm] - utility[b]) / (costs[arm] - costs[b])
			if s2 > s1 {
				hull = hull[:len(hull)-1]
				continue
			}
			break
		}
		hull = append(hull, arm)
	}
	return hull
}

// Observe implements Policy.
func (u *UCBALP) Observe(ctx crowd.TemporalContext, incentive crowd.Cents, meanDelay time.Duration, queries int) {
	u.rounds++
	u.remaining -= incentive.Dollars() * float64(queries)
	if u.remaining < 0 {
		u.remaining = 0
	}
	if arm := u.armIndex(incentive); arm >= 0 {
		u.update(ctx, arm, u.payoffOf(meanDelay))
	}
}
