package classifier

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
	"github.com/crowdlearn/crowdlearn/internal/neural"
)

// PersistentExpert is an Expert whose learned state can be checkpointed
// and restored. All experts in this package implement it; LoadState must
// be called on an expert constructed with the same architecture (name and
// feature view) as the one that saved.
type PersistentExpert interface {
	Expert
	// SaveState writes the expert's learned parameters.
	SaveState(w io.Writer) error
	// LoadState replaces the expert's learned parameters.
	LoadState(r io.Reader) error
}

var (
	_ PersistentExpert = (*mlpExpert)(nil)
	_ PersistentExpert = (*Ensemble)(nil)
)

// mlpExpertState is the gob envelope for a single MLP expert.
type mlpExpertState struct {
	Name    string
	Trained bool
	Net     neural.State
}

// SaveState implements PersistentExpert.
func (e *mlpExpert) SaveState(w io.Writer) error {
	s := mlpExpertState{Name: e.name, Trained: e.net != nil}
	if e.net != nil {
		s.Net = e.net.State()
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("classifier: save %s: %w", e.name, err)
	}
	return nil
}

// LoadState implements PersistentExpert.
func (e *mlpExpert) LoadState(r io.Reader) error {
	var s mlpExpertState
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("classifier: load %s: %w", e.name, err)
	}
	if s.Name != e.name {
		return fmt.Errorf("classifier: state is for %q, expert is %q", s.Name, e.name)
	}
	if !s.Trained {
		e.net = nil
		return nil
	}
	if s.Net.InDim != e.inDim {
		return fmt.Errorf("classifier: %s state input dim %d, want %d", e.name, s.Net.InDim, e.inDim)
	}
	net, err := neural.FromState(s.Net)
	if err != nil {
		return fmt.Errorf("classifier: load %s: %w", e.name, err)
	}
	e.net = net
	return nil
}

// ensembleState is the gob envelope for the Ensemble.
type ensembleState struct {
	Alphas  []float64
	Members []mlpExpertState
}

// SaveState implements PersistentExpert. Only ensembles whose members are
// the package's MLP experts can be persisted.
func (e *Ensemble) SaveState(w io.Writer) error {
	s := ensembleState{Alphas: mathx.Clone(e.alphas)}
	for _, m := range e.members {
		mlp, ok := m.(*mlpExpert)
		if !ok {
			return fmt.Errorf("classifier: ensemble member %s is not persistable", m.Name())
		}
		ms := mlpExpertState{Name: mlp.name, Trained: mlp.net != nil}
		if mlp.net != nil {
			ms.Net = mlp.net.State()
		}
		s.Members = append(s.Members, ms)
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("classifier: save ensemble: %w", err)
	}
	return nil
}

// LoadState implements PersistentExpert.
func (e *Ensemble) LoadState(r io.Reader) error {
	var s ensembleState
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("classifier: load ensemble: %w", err)
	}
	if len(s.Members) != len(e.members) {
		return fmt.Errorf("classifier: ensemble state has %d members, want %d", len(s.Members), len(e.members))
	}
	if len(s.Alphas) != len(e.alphas) {
		return errors.New("classifier: ensemble state alpha count mismatch")
	}
	for i, ms := range s.Members {
		mlp, ok := e.members[i].(*mlpExpert)
		if !ok {
			return fmt.Errorf("classifier: ensemble member %d is not persistable", i)
		}
		if ms.Name != mlp.name {
			return fmt.Errorf("classifier: ensemble member %d state is for %q, expert is %q", i, ms.Name, mlp.name)
		}
		if !ms.Trained {
			mlp.net = nil
			continue
		}
		net, err := neural.FromState(ms.Net)
		if err != nil {
			return fmt.Errorf("classifier: load ensemble member %s: %w", ms.Name, err)
		}
		mlp.net = net
	}
	copy(e.alphas, s.Alphas)
	return nil
}
