package classifier

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
	"github.com/crowdlearn/crowdlearn/internal/parallel"
)

// Ensemble aggregates the three AI experts with confidence-rated boosting
// weights (Schapire & Singer), the paper's AI-only Ensemble baseline.
//
// Training fits every member, then computes each member's weighted
// training error and assigns the classic boosting weight
// alpha_m = log((1 - err_m) / err_m); prediction is the alpha-weighted sum
// of member vote distributions, renormalised. The simulated per-image cost
// reflects that the ensemble evaluates members sequentially with partial
// early-exit, matching the Table III delay ordering.
type Ensemble struct {
	members []Expert
	alphas  []float64
	cost    time.Duration
	// workers caps the fan-out across members in Train/Update/reweight
	// (0 = GOMAXPROCS, 1 = sequential); members own disjoint state so
	// results are identical at any value.
	workers int
	// tmp pools member-vote buffers for the allocation-free PredictInto
	// path.
	tmp sync.Pool
}

var (
	_ Expert        = (*Ensemble)(nil)
	_ IntoPredictor = (*Ensemble)(nil)
)

// NewEnsemble builds the boosting aggregation of the given members. The
// standard paper configuration passes VGG16, BoVW and DDM.
func NewEnsemble(members ...Expert) (*Ensemble, error) {
	if len(members) == 0 {
		return nil, errors.New("classifier: ensemble needs at least one member")
	}
	return &Ensemble{
		members: members,
		alphas:  make([]float64, len(members)),
		cost:    8582 * time.Millisecond,
	}, nil
}

// Name implements Expert.
func (e *Ensemble) Name() string { return "ensemble" }

// PerImageCost implements Expert.
func (e *Ensemble) PerImageCost() time.Duration { return e.cost }

// Members exposes the underlying experts (read-only use).
func (e *Ensemble) Members() []Expert { return e.members }

// SetWorkers caps the member-level training fan-out (0 = GOMAXPROCS,
// 1 = sequential).
func (e *Ensemble) SetWorkers(n int) { e.workers = n }

// Alphas returns a copy of the boosting weights.
func (e *Ensemble) Alphas() []float64 { return mathx.Clone(e.alphas) }

// Train implements Expert: fit all members, then set boosting weights
// from their training error.
func (e *Ensemble) Train(samples []Sample) error {
	if len(samples) == 0 {
		return errors.New("classifier: no training samples")
	}
	// Members hold disjoint state; the lowest-index error matches what a
	// sequential loop would return first.
	err := parallel.ForErr(e.workers, len(e.members), func(i int) error {
		if err := e.members[i].Train(samples); err != nil {
			return fmt.Errorf("ensemble member %s: %w", e.members[i].Name(), err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	e.reweight(samples)
	return nil
}

// Update implements Expert: incremental pass on all members followed by
// reweighting.
func (e *Ensemble) Update(samples []Sample) error {
	if len(samples) == 0 {
		return errors.New("classifier: no update samples")
	}
	err := parallel.ForErr(e.workers, len(e.members), func(i int) error {
		if err := e.members[i].Update(samples); err != nil {
			return fmt.Errorf("ensemble member %s: %w", e.members[i].Name(), err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	e.reweight(samples)
	return nil
}

// reweight computes confidence-rated boosting weights from member errors
// on the given samples. Each member owns its alpha slot, so members are
// evaluated concurrently without affecting the result.
func (e *Ensemble) reweight(samples []Sample) {
	const floor = 0.01 // keep alphas finite for perfect/terrible members
	parallel.For(e.workers, len(e.members), func(i int) {
		m := e.members[i]
		vote := make([]float64, imagery.NumLabels)
		wrong := 0
		for _, s := range samples {
			if mathx.ArgMax(predictInto(m, s.Image, vote)) != mathx.ArgMax(s.Target) {
				wrong++
			}
		}
		err := mathx.Clamp(float64(wrong)/float64(len(samples)), floor, 1-floor)
		e.alphas[i] = math.Log((1 - err) / err)
		if e.alphas[i] < 0 {
			// A worse-than-chance member contributes nothing rather than
			// being inverted; inverting distributions is not meaningful
			// for multiclass vote aggregation.
			e.alphas[i] = 0
		}
	})
}

// predictInto routes through IntoPredictor when the expert supports it,
// falling back to the allocating Predict.
func predictInto(m Expert, im *imagery.Image, dst []float64) []float64 {
	if ip, ok := m.(IntoPredictor); ok {
		return ip.PredictInto(im, dst)
	}
	return m.Predict(im)
}

// Predict implements Expert.
func (e *Ensemble) Predict(im *imagery.Image) []float64 {
	return e.PredictInto(im, make([]float64, imagery.NumLabels))
}

// PredictInto implements IntoPredictor: the alpha-weighted vote written
// into dst, with the member-vote temporary drawn from a pool so repeated
// scoring allocates nothing.
func (e *Ensemble) PredictInto(im *imagery.Image, dst []float64) []float64 {
	vp, _ := e.tmp.Get().(*[]float64)
	if vp == nil {
		b := make([]float64, imagery.NumLabels)
		vp = &b
	}
	vote := *vp
	mathx.Fill(dst, 0)
	anyWeight := false
	for i, m := range e.members {
		if e.alphas[i] <= 0 {
			continue
		}
		anyWeight = true
		mathx.AddScaled(dst, e.alphas[i], predictInto(m, im, vote))
	}
	e.tmp.Put(vp)
	if !anyWeight {
		// Untrained or fully down-weighted: uniform abstention.
		mathx.Fill(dst, 1/float64(imagery.NumLabels))
		return dst
	}
	mathx.Normalize(dst)
	return dst
}

// Clone implements Expert.
func (e *Ensemble) Clone() Expert {
	cp := &Ensemble{
		members: make([]Expert, len(e.members)),
		alphas:  mathx.Clone(e.alphas),
		cost:    e.cost,
		workers: e.workers,
	}
	for i, m := range e.members {
		cp.members[i] = m.Clone()
	}
	return cp
}

// StandardCommittee builds the paper's committee — VGG16, BoVW and DDM —
// with distinct seeds derived from the given base seed.
func StandardCommittee(dims imagery.Dims, seed int64) []Expert {
	return StandardCommitteeWith(dims, seed, Options{})
}

// StandardCommitteeWith is StandardCommittee with the shared options
// (epochs, workers) applied to every member; the per-member seed still
// varies so the committee stays diverse.
func StandardCommitteeWith(dims imagery.Dims, seed int64, opts Options) []Expert {
	o := opts
	o.Seed = seed
	vgg := NewVGG16(dims, o)
	o.Seed = seed + 1
	bovw := NewBoVW(dims, o)
	o.Seed = seed + 2
	ddm := NewDDM(dims, o)
	return []Expert{vgg, bovw, ddm}
}
