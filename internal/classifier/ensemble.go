package classifier

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// Ensemble aggregates the three AI experts with confidence-rated boosting
// weights (Schapire & Singer), the paper's AI-only Ensemble baseline.
//
// Training fits every member, then computes each member's weighted
// training error and assigns the classic boosting weight
// alpha_m = log((1 - err_m) / err_m); prediction is the alpha-weighted sum
// of member vote distributions, renormalised. The simulated per-image cost
// reflects that the ensemble evaluates members sequentially with partial
// early-exit, matching the Table III delay ordering.
type Ensemble struct {
	members []Expert
	alphas  []float64
	cost    time.Duration
}

var _ Expert = (*Ensemble)(nil)

// NewEnsemble builds the boosting aggregation of the given members. The
// standard paper configuration passes VGG16, BoVW and DDM.
func NewEnsemble(members ...Expert) (*Ensemble, error) {
	if len(members) == 0 {
		return nil, errors.New("classifier: ensemble needs at least one member")
	}
	return &Ensemble{
		members: members,
		alphas:  make([]float64, len(members)),
		cost:    8582 * time.Millisecond,
	}, nil
}

// Name implements Expert.
func (e *Ensemble) Name() string { return "ensemble" }

// PerImageCost implements Expert.
func (e *Ensemble) PerImageCost() time.Duration { return e.cost }

// Members exposes the underlying experts (read-only use).
func (e *Ensemble) Members() []Expert { return e.members }

// Alphas returns a copy of the boosting weights.
func (e *Ensemble) Alphas() []float64 { return mathx.Clone(e.alphas) }

// Train implements Expert: fit all members, then set boosting weights
// from their training error.
func (e *Ensemble) Train(samples []Sample) error {
	if len(samples) == 0 {
		return errors.New("classifier: no training samples")
	}
	for _, m := range e.members {
		if err := m.Train(samples); err != nil {
			return fmt.Errorf("ensemble member %s: %w", m.Name(), err)
		}
	}
	e.reweight(samples)
	return nil
}

// Update implements Expert: incremental pass on all members followed by
// reweighting.
func (e *Ensemble) Update(samples []Sample) error {
	if len(samples) == 0 {
		return errors.New("classifier: no update samples")
	}
	for _, m := range e.members {
		if err := m.Update(samples); err != nil {
			return fmt.Errorf("ensemble member %s: %w", m.Name(), err)
		}
	}
	e.reweight(samples)
	return nil
}

// reweight computes confidence-rated boosting weights from member errors
// on the given samples.
func (e *Ensemble) reweight(samples []Sample) {
	const floor = 0.01 // keep alphas finite for perfect/terrible members
	for i, m := range e.members {
		wrong := 0
		for _, s := range samples {
			if mathx.ArgMax(m.Predict(s.Image)) != mathx.ArgMax(s.Target) {
				wrong++
			}
		}
		err := mathx.Clamp(float64(wrong)/float64(len(samples)), floor, 1-floor)
		e.alphas[i] = math.Log((1 - err) / err)
		if e.alphas[i] < 0 {
			// A worse-than-chance member contributes nothing rather than
			// being inverted; inverting distributions is not meaningful
			// for multiclass vote aggregation.
			e.alphas[i] = 0
		}
	}
}

// Predict implements Expert.
func (e *Ensemble) Predict(im *imagery.Image) []float64 {
	agg := make([]float64, imagery.NumLabels)
	anyWeight := false
	for i, m := range e.members {
		if e.alphas[i] <= 0 {
			continue
		}
		anyWeight = true
		mathx.AddScaled(agg, e.alphas[i], m.Predict(im))
	}
	if !anyWeight {
		// Untrained or fully down-weighted: uniform abstention.
		mathx.Fill(agg, 1/float64(imagery.NumLabels))
		return agg
	}
	mathx.Normalize(agg)
	return agg
}

// Clone implements Expert.
func (e *Ensemble) Clone() Expert {
	cp := &Ensemble{
		members: make([]Expert, len(e.members)),
		alphas:  mathx.Clone(e.alphas),
		cost:    e.cost,
	}
	for i, m := range e.members {
		cp.members[i] = m.Clone()
	}
	return cp
}

// StandardCommittee builds the paper's committee — VGG16, BoVW and DDM —
// with distinct seeds derived from the given base seed.
func StandardCommittee(dims imagery.Dims, seed int64) []Expert {
	return []Expert{
		NewVGG16(dims, Options{Seed: seed}),
		NewBoVW(dims, Options{Seed: seed + 1}),
		NewDDM(dims, Options{Seed: seed + 2}),
	}
}
