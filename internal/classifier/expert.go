// Package classifier implements the AI side of the DDA application: the
// three expert models the paper uses as its committee (VGG16, BoVW, DDM)
// plus the boosting Ensemble baseline.
//
// The real systems are deep CNNs over raw pixels; here each expert is a
// from-scratch MLP (internal/neural) over one of the synthetic feature
// views produced by internal/imagery:
//
//   - VGG16 reads the "deep" view (CNN embedding analogue);
//   - BoVW reads the "handcrafted" view (SIFT/HOG histogram analogue),
//     which has the narrowest class separation, making BoVW the weakest
//     expert as in Table II;
//   - DDM reads the "localization" view (Grad-CAM heatmap analogue), the
//     widest separation, making DDM the strongest AI-only expert.
//
// Because deceptive images carry features of their *apparent* rather than
// true class, every expert inherits the paper's innate failure modes: they
// are confidently wrong on fakes/close-ups/implicit images and uncertain
// on low-resolution ones. Per-image inference costs model the Table III
// algorithm delays.
package classifier

import (
	"errors"
	"fmt"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
	"github.com/crowdlearn/crowdlearn/internal/neural"
)

// Sample is one training sample: an image with a target label
// distribution. Hard ground-truth labels use a one-hot target; the MIC
// retraining pathway feeds soft crowd distributions.
type Sample struct {
	Image  *imagery.Image
	Target []float64
}

// SamplesFromImages builds hard-labelled samples from ground truth.
func SamplesFromImages(images []*imagery.Image) []Sample {
	out := make([]Sample, len(images))
	for i, im := range images {
		out[i] = Sample{Image: im, Target: mathx.OneHot(imagery.NumLabels, int(im.TrueLabel))}
	}
	return out
}

// IntoPredictor is implemented by experts whose Predict can write into a
// caller-provided buffer; the committee voting loop uses it to keep the
// per-image scoring path allocation-free.
type IntoPredictor interface {
	// PredictInto writes the expert's label distribution for the image
	// into dst (len == imagery.NumLabels) and returns dst.
	PredictInto(im *imagery.Image, dst []float64) []float64
}

// Expert is a DDA algorithm usable as a committee member (Definition 5).
type Expert interface {
	// Name identifies the expert in experiment output.
	Name() string
	// Train fits the expert from scratch on the samples.
	Train(samples []Sample) error
	// Update performs a short incremental training pass — the model
	// retraining strategy of MIC, which folds in newly crowd-labelled
	// samples each sensing cycle without a full refit.
	Update(samples []Sample) error
	// Predict returns the expert's label distribution for the image — its
	// "expert vote" (Definition 6).
	Predict(im *imagery.Image) []float64
	// PerImageCost is the simulated inference cost per image, modelling
	// the GPU time of the real systems (Table III).
	PerImageCost() time.Duration
	// Clone returns an independent deep copy; MIC snapshots experts so a
	// harmful retraining step can be rolled back.
	Clone() Expert
}

// UpdateWorkerTuner is implemented by experts whose incremental Update
// pass can have its internal gradient parallelism re-tuned after
// construction. MIC uses it to force inner training to sequential when
// it fans out one goroutine per expert retrain, so expert-level and
// per-example parallelism do not multiply into oversubscription.
type UpdateWorkerTuner interface {
	// SetUpdateWorkers caps the per-minibatch parallelism of subsequent
	// Update calls (1 = sequential, 0 = restore the configured value).
	// Results are bit-identical at any setting.
	SetUpdateWorkers(n int)
}

// mlpExpert is the shared implementation behind VGG16, BoVW and DDM.
type mlpExpert struct {
	name      string
	view      imagery.View
	net       *neural.Network
	netCfg    neural.Config
	updateCfg neural.Config
	// updateWorkers, when positive, overrides updateCfg's worker count
	// for Update passes (see UpdateWorkerTuner).
	updateWorkers int
	inDim         int
	cost          time.Duration
}

var (
	_ Expert            = (*mlpExpert)(nil)
	_ IntoPredictor     = (*mlpExpert)(nil)
	_ UpdateWorkerTuner = (*mlpExpert)(nil)
)

// Options tunes expert construction.
type Options struct {
	// Seed drives weight initialisation; distinct experts should use
	// distinct seeds so the committee is diverse.
	Seed int64
	// Epochs overrides the full-training epoch count (0 = default).
	Epochs int
	// Workers caps the per-minibatch gradient parallelism inside the
	// expert's network (0 = GOMAXPROCS, 1 = sequential); results are
	// bit-identical at any value.
	Workers int
}

// NewVGG16 builds the CNN-with-fine-tuning expert of Nguyen et al.,
// reading the deep feature view.
func NewVGG16(dims imagery.Dims, opts Options) Expert {
	return newMLPExpert("vgg16", imagery.DeepView, dims.Deep, []int{40, 16},
		4783*time.Millisecond, opts)
}

// NewBoVW builds the bag-of-visual-words expert of Bosch et al., reading
// the handcrafted feature view. A smaller network over a noisier view:
// the weakest committee member, as in the paper.
func NewBoVW(dims imagery.Dims, opts Options) Expert {
	return newMLPExpert("bovw", imagery.HandcraftedView, dims.Handcrafted, []int{16},
		3755*time.Millisecond, opts)
}

// NewDDM builds the damage-detection-map expert of Li et al. (CNN +
// Grad-CAM), reading the localization view — the strongest AI-only model.
func NewDDM(dims imagery.Dims, opts Options) Expert {
	return newMLPExpert("ddm", imagery.LocalizationView, dims.Localization, []int{48, 24},
		5257*time.Millisecond, opts)
}

func newMLPExpert(name string, view imagery.View, inDim int, hidden []int, cost time.Duration, opts Options) *mlpExpert {
	cfg := neural.DefaultConfig()
	cfg.Hidden = hidden
	cfg.Seed = opts.Seed
	cfg.Workers = opts.Workers
	if opts.Epochs > 0 {
		cfg.Epochs = opts.Epochs
	}
	updateCfg := cfg
	// Incremental updates are short, gentle passes.
	updateCfg.Epochs = 8
	updateCfg.LearningRate = cfg.LearningRate / 4

	return &mlpExpert{
		name:      name,
		view:      view,
		netCfg:    cfg,
		updateCfg: updateCfg,
		inDim:     inDim,
		cost:      cost,
	}
}

// Name implements Expert.
func (e *mlpExpert) Name() string { return e.name }

// PerImageCost implements Expert.
func (e *mlpExpert) PerImageCost() time.Duration { return e.cost }

func (e *mlpExpert) examples(samples []Sample) ([]neural.Example, error) {
	if len(samples) == 0 {
		return nil, errors.New("classifier: no training samples")
	}
	out := make([]neural.Example, len(samples))
	for i, s := range samples {
		if s.Image == nil {
			return nil, fmt.Errorf("classifier: sample %d has nil image", i)
		}
		if len(s.Target) != imagery.NumLabels {
			return nil, fmt.Errorf("classifier: sample %d target dim %d, want %d", i, len(s.Target), imagery.NumLabels)
		}
		out[i] = neural.Example{Features: s.Image.Features(e.view), Target: s.Target}
	}
	return out, nil
}

// Train implements Expert.
func (e *mlpExpert) Train(samples []Sample) error {
	examples, err := e.examples(samples)
	if err != nil {
		return err
	}
	net, err := neural.New(e.inDim, imagery.NumLabels, e.netCfg)
	if err != nil {
		return err
	}
	if _, err := net.Train(examples); err != nil {
		return err
	}
	e.net = net
	return nil
}

// Update implements Expert.
func (e *mlpExpert) Update(samples []Sample) error {
	if e.net == nil {
		return fmt.Errorf("classifier: %s must be trained before Update", e.name)
	}
	examples, err := e.examples(samples)
	if err != nil {
		return err
	}
	// A short, gentle fine-tuning pass that continues from the current
	// weights — not a full refit.
	if _, err := e.net.TrainWithWorkers(examples, e.updateCfg.Epochs, e.updateCfg.LearningRate, e.updateWorkers); err != nil {
		return err
	}
	return nil
}

// SetUpdateWorkers implements UpdateWorkerTuner.
func (e *mlpExpert) SetUpdateWorkers(n int) { e.updateWorkers = n }

// Predict implements Expert.
func (e *mlpExpert) Predict(im *imagery.Image) []float64 {
	return e.PredictInto(im, make([]float64, imagery.NumLabels))
}

// PredictInto implements IntoPredictor. Safe for concurrent use: the
// underlying network pools its forward buffers.
func (e *mlpExpert) PredictInto(im *imagery.Image, dst []float64) []float64 {
	if e.net == nil {
		// Untrained experts abstain with a uniform vote rather than
		// crashing mid-cycle.
		mathx.Fill(dst, 1/float64(imagery.NumLabels))
		return dst
	}
	return e.net.PredictInto(im.Features(e.view), dst)
}

// Clone implements Expert.
func (e *mlpExpert) Clone() Expert {
	cp := *e
	if e.net != nil {
		cp.net = e.net.Clone()
	}
	return &cp
}
