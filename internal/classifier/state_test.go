package classifier

import (
	"bytes"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
)

func TestExpertSaveLoadRoundtrip(t *testing.T) {
	ds := dataset(t)
	e := NewVGG16(imagery.DefaultDims, Options{Seed: 1, Epochs: 20})
	if err := e.Train(SamplesFromImages(ds.Train[:200])); err != nil {
		t.Fatal(err)
	}
	pe, ok := e.(PersistentExpert)
	if !ok {
		t.Fatal("vgg16 must be persistable")
	}
	var buf bytes.Buffer
	if err := pe.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewVGG16(imagery.DefaultDims, Options{Seed: 99}).(PersistentExpert)
	if err := fresh.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	for _, im := range ds.Test[:20] {
		a, b := e.Predict(im), fresh.Predict(im)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("restored expert predicts differently")
			}
		}
	}
}

func TestExpertLoadRejectsWrongArchitecture(t *testing.T) {
	ds := dataset(t)
	vgg := NewVGG16(imagery.DefaultDims, Options{Seed: 1, Epochs: 5})
	if err := vgg.Train(SamplesFromImages(ds.Train[:100])); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := vgg.(PersistentExpert).SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	bovw := NewBoVW(imagery.DefaultDims, Options{Seed: 1}).(PersistentExpert)
	if err := bovw.LoadState(&buf); err == nil {
		t.Error("loading a vgg16 state into bovw must fail")
	}
}

func TestUntrainedExpertRoundtrip(t *testing.T) {
	ds := dataset(t)
	e := NewDDM(imagery.DefaultDims, Options{Seed: 1}).(PersistentExpert)
	var buf bytes.Buffer
	if err := e.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewDDM(imagery.DefaultDims, Options{Seed: 2}).(PersistentExpert)
	if err := fresh.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	// Still uniform (untrained).
	p := fresh.Predict(ds.Test[0])
	for _, x := range p {
		if x != p[0] {
			t.Fatal("restored untrained expert must abstain uniformly")
		}
	}
}

func TestEnsembleSaveLoadRoundtrip(t *testing.T) {
	ds := dataset(t)
	ens, err := NewEnsemble(StandardCommittee(imagery.DefaultDims, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ens.Train(SamplesFromImages(ds.Train[:200])); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ens.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewEnsemble(StandardCommittee(imagery.DefaultDims, 55)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	for _, im := range ds.Test[:20] {
		a, b := ens.Predict(im), fresh.Predict(im)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("restored ensemble predicts differently")
			}
		}
	}
	aa, ab := ens.Alphas(), fresh.Alphas()
	for i := range aa {
		if aa[i] != ab[i] {
			t.Fatal("ensemble alphas differ after restore")
		}
	}
}

func TestEnsembleLoadRejectsMemberMismatch(t *testing.T) {
	ds := dataset(t)
	ens, err := NewEnsemble(StandardCommittee(imagery.DefaultDims, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ens.Train(SamplesFromImages(ds.Train[:100])); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ens.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	// Two-member ensemble cannot accept a three-member checkpoint.
	small, err := NewEnsemble(
		NewVGG16(imagery.DefaultDims, Options{Seed: 1}),
		NewBoVW(imagery.DefaultDims, Options{Seed: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := small.LoadState(&buf); err == nil {
		t.Error("member-count mismatch must be rejected")
	}
}
