package classifier

import (
	"math"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

func dataset(t *testing.T) *imagery.Dataset {
	t.Helper()
	ds, err := imagery.Generate(imagery.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func accuracyOn(e Expert, images []*imagery.Image) float64 {
	correct := 0
	for _, im := range images {
		if imagery.Label(mathx.ArgMax(e.Predict(im))) == im.TrueLabel {
			correct++
		}
	}
	return float64(correct) / float64(len(images))
}

func trainAll(t *testing.T, ds *imagery.Dataset) (vgg, bovw, ddm Expert) {
	t.Helper()
	samples := SamplesFromImages(ds.Train)
	vgg = NewVGG16(imagery.DefaultDims, Options{Seed: 1})
	bovw = NewBoVW(imagery.DefaultDims, Options{Seed: 2})
	ddm = NewDDM(imagery.DefaultDims, Options{Seed: 3})
	for _, e := range []Expert{vgg, bovw, ddm} {
		if err := e.Train(samples); err != nil {
			t.Fatalf("train %s: %v", e.Name(), err)
		}
	}
	return vgg, bovw, ddm
}

// Table II band check: each AI-only expert should land in the paper's
// accuracy neighbourhood, with BoVW clearly the weakest and DDM at least
// as strong as VGG16.
func TestExpertAccuracyBands(t *testing.T) {
	ds := dataset(t)
	vgg, bovw, ddm := trainAll(t, ds)
	accV := accuracyOn(vgg, ds.Test)
	accB := accuracyOn(bovw, ds.Test)
	accD := accuracyOn(ddm, ds.Test)
	t.Logf("test accuracy: vgg16=%.3f bovw=%.3f ddm=%.3f", accV, accB, accD)

	if accV < 0.65 || accV > 0.90 {
		t.Errorf("vgg16 accuracy %.3f outside [0.65, 0.90] (paper: 0.770)", accV)
	}
	if accB < 0.55 || accB > 0.82 {
		t.Errorf("bovw accuracy %.3f outside [0.55, 0.82] (paper: 0.670)", accB)
	}
	if accD < 0.68 || accD > 0.92 {
		t.Errorf("ddm accuracy %.3f outside [0.68, 0.92] (paper: 0.807)", accD)
	}
	if accB >= accD {
		t.Errorf("bovw (%.3f) should be weaker than ddm (%.3f)", accB, accD)
	}
}

// The innate failure property: experts must be (a) mostly wrong on
// deceptive images and (b) confidently so — that is what makes pure
// entropy-based query selection insufficient and motivates epsilon-greedy.
func TestExpertsFailOnDeceptiveImages(t *testing.T) {
	ds := dataset(t)
	vgg, _, ddm := trainAll(t, ds)

	var deceptive []*imagery.Image
	for _, im := range ds.Test {
		if im.Failure.Deceptive() {
			deceptive = append(deceptive, im)
		}
	}
	if len(deceptive) < 10 {
		t.Fatalf("only %d deceptive test images", len(deceptive))
	}
	for _, e := range []Expert{vgg, ddm} {
		acc := accuracyOn(e, deceptive)
		if acc > 0.35 {
			t.Errorf("%s accuracy on deceptive images %.3f; should fail badly", e.Name(), acc)
		}
		// Confidence check: mean entropy on deceptive images should be low
		// relative to maximum (they are *confidently* wrong).
		var meanH float64
		for _, im := range deceptive {
			meanH += mathx.Entropy(e.Predict(im))
		}
		meanH /= float64(len(deceptive))
		if meanH > 0.8*mathx.MaxEntropy(imagery.NumLabels) {
			t.Errorf("%s is too uncertain on deceptive images (H=%.3f); deception should look clean", e.Name(), meanH)
		}
	}
}

// Low-resolution images must induce high committee uncertainty — the
// failure mode entropy-based selection *does* catch.
func TestExpertsUncertainOnLowRes(t *testing.T) {
	ds := dataset(t)
	vgg, _, _ := trainAll(t, ds)
	var lowRes, clean []*imagery.Image
	for _, im := range ds.Test {
		switch im.Failure {
		case imagery.FailureLowRes:
			lowRes = append(lowRes, im)
		case imagery.FailureNone:
			clean = append(clean, im)
		}
	}
	meanEntropy := func(ims []*imagery.Image) float64 {
		var h float64
		for _, im := range ims {
			h += mathx.Entropy(vgg.Predict(im))
		}
		return h / float64(len(ims))
	}
	if hLow, hClean := meanEntropy(lowRes), meanEntropy(clean); hLow <= hClean {
		t.Errorf("low-res entropy %.3f should exceed clean entropy %.3f", hLow, hClean)
	}
}

func TestPredictIsDistribution(t *testing.T) {
	ds := dataset(t)
	vgg, _, _ := trainAll(t, ds)
	for _, im := range ds.Test[:25] {
		p := vgg.Predict(im)
		if math.Abs(mathx.Sum(p)-1) > 1e-9 {
			t.Fatalf("prediction sums to %v", mathx.Sum(p))
		}
	}
}

func TestUntrainedExpertAbstainsUniformly(t *testing.T) {
	ds := dataset(t)
	e := NewVGG16(imagery.DefaultDims, Options{Seed: 1})
	p := e.Predict(ds.Test[0])
	for _, x := range p {
		if math.Abs(x-1.0/3.0) > 1e-9 {
			t.Fatalf("untrained prediction %v, want uniform", p)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	e := NewVGG16(imagery.DefaultDims, Options{Seed: 1})
	if err := e.Train(nil); err == nil {
		t.Error("empty training set must error")
	}
	if err := e.Train([]Sample{{Image: nil, Target: []float64{1, 0, 0}}}); err == nil {
		t.Error("nil image must error")
	}
	ds := dataset(t)
	if err := e.Train([]Sample{{Image: ds.Train[0], Target: []float64{1}}}); err == nil {
		t.Error("bad target dim must error")
	}
	if err := e.Update(SamplesFromImages(ds.Train[:5])); err == nil {
		t.Error("Update before Train must error")
	}
}

func TestUpdateImprovesOnNewDistribution(t *testing.T) {
	ds := dataset(t)
	samples := SamplesFromImages(ds.Train)
	e := NewVGG16(imagery.DefaultDims, Options{Seed: 1, Epochs: 30})
	if err := e.Train(samples); err != nil {
		t.Fatal(err)
	}
	before := accuracyOn(e, ds.Test)
	// Update with correctly labelled test images (the best case for the
	// retraining strategy) must not wreck accuracy and should usually
	// help.
	if err := e.Update(SamplesFromImages(ds.Test[:100])); err != nil {
		t.Fatal(err)
	}
	after := accuracyOn(e, ds.Test)
	if after < before-0.05 {
		t.Errorf("update degraded accuracy badly: %.3f -> %.3f", before, after)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	ds := dataset(t)
	samples := SamplesFromImages(ds.Train)
	e := NewVGG16(imagery.DefaultDims, Options{Seed: 1, Epochs: 20})
	if err := e.Train(samples); err != nil {
		t.Fatal(err)
	}
	im := ds.Test[0]
	before := e.Predict(im)
	cp := e.Clone()
	if err := cp.Update(SamplesFromImages(ds.Test[:50])); err != nil {
		t.Fatal(err)
	}
	after := e.Predict(im)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("updating a clone mutated the original")
		}
	}
}

func TestPerImageCosts(t *testing.T) {
	// Table III ordering: bovw < vgg16 < ddm < ensemble.
	vgg := NewVGG16(imagery.DefaultDims, Options{})
	bovw := NewBoVW(imagery.DefaultDims, Options{})
	ddm := NewDDM(imagery.DefaultDims, Options{})
	ens, err := NewEnsemble(vgg, bovw, ddm)
	if err != nil {
		t.Fatal(err)
	}
	if !(bovw.PerImageCost() < vgg.PerImageCost() &&
		vgg.PerImageCost() < ddm.PerImageCost() &&
		ddm.PerImageCost() < ens.PerImageCost()) {
		t.Errorf("cost ordering wrong: bovw=%v vgg=%v ddm=%v ens=%v",
			bovw.PerImageCost(), vgg.PerImageCost(), ddm.PerImageCost(), ens.PerImageCost())
	}
}

func TestEnsembleBeatsWeakestMember(t *testing.T) {
	ds := dataset(t)
	members := StandardCommittee(imagery.DefaultDims, 1)
	ens, err := NewEnsemble(members...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ens.Train(SamplesFromImages(ds.Train)); err != nil {
		t.Fatal(err)
	}
	accEns := accuracyOn(ens, ds.Test)
	accBovw := accuracyOn(members[1], ds.Test)
	t.Logf("ensemble=%.3f bovw=%.3f", accEns, accBovw)
	if accEns <= accBovw {
		t.Errorf("ensemble (%.3f) should beat its weakest member (%.3f)", accEns, accBovw)
	}
	if accEns < 0.70 || accEns > 0.93 {
		t.Errorf("ensemble accuracy %.3f outside [0.70, 0.93] (paper: 0.815)", accEns)
	}
	alphas := ens.Alphas()
	if len(alphas) != 3 {
		t.Fatalf("alphas length %d", len(alphas))
	}
	// Every member beats chance on training data, so every alpha must be
	// strictly positive. (Relative order depends on training error, which
	// does not always track held-out strength.)
	for i, a := range alphas {
		if a <= 0 {
			t.Errorf("alpha[%d] = %.3f, want > 0", i, a)
		}
	}
}

func TestEnsembleValidation(t *testing.T) {
	if _, err := NewEnsemble(); err == nil {
		t.Error("empty ensemble must be rejected")
	}
	ens, err := NewEnsemble(NewVGG16(imagery.DefaultDims, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := ens.Train(nil); err == nil {
		t.Error("ensemble train with no samples must error")
	}
	if err := ens.Update(nil); err == nil {
		t.Error("ensemble update with no samples must error")
	}
}

func TestEnsembleUntrainedUniform(t *testing.T) {
	ds := dataset(t)
	ens, err := NewEnsemble(StandardCommittee(imagery.DefaultDims, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	p := ens.Predict(ds.Test[0])
	for _, x := range p {
		if math.Abs(x-1.0/3.0) > 1e-9 {
			t.Fatalf("untrained ensemble prediction %v, want uniform", p)
		}
	}
}

func TestEnsembleClone(t *testing.T) {
	ds := dataset(t)
	ens, err := NewEnsemble(StandardCommittee(imagery.DefaultDims, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ens.Train(SamplesFromImages(ds.Train[:120])); err != nil {
		t.Fatal(err)
	}
	im := ds.Test[0]
	before := ens.Predict(im)
	cp := ens.Clone()
	if err := cp.Update(SamplesFromImages(ds.Test[:60])); err != nil {
		t.Fatal(err)
	}
	after := ens.Predict(im)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("updating an ensemble clone mutated the original")
		}
	}
}

func TestStandardCommittee(t *testing.T) {
	c := StandardCommittee(imagery.DefaultDims, 7)
	if len(c) != 3 {
		t.Fatalf("committee size %d, want 3", len(c))
	}
	names := map[string]bool{}
	for _, e := range c {
		names[e.Name()] = true
	}
	for _, want := range []string{"vgg16", "bovw", "ddm"} {
		if !names[want] {
			t.Errorf("committee missing %s", want)
		}
	}
}

func TestSamplesFromImages(t *testing.T) {
	ds := dataset(t)
	samples := SamplesFromImages(ds.Train[:3])
	for i, s := range samples {
		if s.Image != ds.Train[i] {
			t.Fatal("sample image mismatch")
		}
		if mathx.ArgMax(s.Target) != int(s.Image.TrueLabel) {
			t.Fatal("one-hot target mismatch")
		}
	}
}
