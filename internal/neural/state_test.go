package neural

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 30
	n := MustNew(4, 3, cfg)
	if _, err := n.Train(syntheticClusters(1, 200)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{1.5, 0.2, -0.3, 0.8}
	a, b := n.Predict(probe), restored.Predict(probe)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored prediction differs: %v vs %v", a, b)
		}
	}
	if restored.NumParameters() != n.NumParameters() {
		t.Error("parameter count changed across roundtrip")
	}
}

func TestRestoredNetworkCanContinueTraining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 10
	n := MustNew(4, 3, cfg)
	train := syntheticClusters(2, 150)
	if _, err := n.Train(train); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	loss, err := restored.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1.0 {
		t.Errorf("restored network lost its training: loss %v", loss)
	}
}

func TestFromStateValidation(t *testing.T) {
	n := MustNew(4, 3, DefaultConfig())
	good := n.State()

	tests := []struct {
		name   string
		mutate func(*State)
	}{
		{"zero input dim", func(s *State) { s.InDim = 0 }},
		{"one class", func(s *State) { s.Classes = 1 }},
		{"no layers", func(s *State) { s.Layers = nil }},
		{"layer count mismatch", func(s *State) { s.Layers = s.Layers[:1] }},
		{"layer shape mismatch", func(s *State) { s.Layers[0].In = 99 }},
		{"weight length mismatch", func(s *State) { s.Layers[0].W = s.Layers[0].W[:1] }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := n.State() // fresh deep copy per case
			tt.mutate(&s)
			if _, err := FromState(s); err == nil {
				t.Errorf("%s should be rejected", tt.name)
			}
		})
	}
	if _, err := FromState(good); err != nil {
		t.Fatalf("unmutated state rejected: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Error("garbage input must be rejected")
	}
}

func TestStateIsDeepCopy(t *testing.T) {
	n := MustNew(3, 2, DefaultConfig())
	s := n.State()
	s.Layers[0].W[0] += 100
	s2 := n.State()
	if s2.Layers[0].W[0] == s.Layers[0].W[0] {
		t.Error("State must deep-copy parameters")
	}
}
