package neural

import (
	"bytes"
	"testing"
)

func adamConfig() Config {
	cfg := DefaultConfig()
	cfg.Optimizer = Adam
	cfg.LearningRate = 0.01 // Adam's natural scale
	cfg.Epochs = 60
	return cfg
}

func TestAdamLearnsClusters(t *testing.T) {
	n := MustNew(4, 3, adamConfig())
	if _, err := n.Train(syntheticClusters(41, 300)); err != nil {
		t.Fatal(err)
	}
	test := syntheticClusters(42, 300)
	correct := 0
	for _, ex := range test {
		if argmax(n.Predict(ex.Features)) == argmax(ex.Target) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.9 {
		t.Errorf("Adam held-out accuracy %.3f, want >= 0.9", acc)
	}
}

// Adam's core promise: per-parameter step scaling copes with badly
// scaled features. Feature 0 is inflated by 100x, so its gradients
// dominate; SGD must use a learning rate small enough not to diverge on
// that dimension and consequently crawls on the rest, while Adam
// normalises each parameter's step.
func TestAdamRobustToBadFeatureScaling(t *testing.T) {
	inflate := func(examples []Example) []Example {
		out := make([]Example, len(examples))
		for i, ex := range examples {
			f := make([]float64, len(ex.Features))
			copy(f, ex.Features)
			f[0] *= 100
			out[i] = Example{Features: f, Target: ex.Target}
		}
		return out
	}
	train := inflate(syntheticClusters(43, 300))
	test := inflate(syntheticClusters(44, 200))
	accuracy := func(cfg Config) float64 {
		// A rate Adam is comfortable at; SGD's raw steps on the inflated
		// dimension are ~100x too large and blow up.
		cfg.LearningRate = 1e-2
		cfg.Epochs = 30
		cfg.Momentum = 0 // isolate the update rule
		n := MustNew(4, 3, cfg)
		if _, err := n.Train(train); err != nil {
			t.Fatal(err)
		}
		correct := 0
		for _, ex := range test {
			if argmax(n.Predict(ex.Features)) == argmax(ex.Target) {
				correct++
			}
		}
		return float64(correct) / float64(len(test))
	}
	sgdCfg := DefaultConfig()
	adamCfg := DefaultConfig()
	adamCfg.Optimizer = Adam
	sgdAcc, adamAcc := accuracy(sgdCfg), accuracy(adamCfg)
	t.Logf("inflated features: sgd=%.3f adam=%.3f", sgdAcc, adamAcc)
	if adamAcc < sgdAcc+0.1 {
		t.Errorf("Adam (%.3f) should clearly beat SGD (%.3f) on badly scaled features", adamAcc, sgdAcc)
	}
	if adamAcc < 0.85 {
		t.Errorf("Adam accuracy %.3f too low on badly scaled features", adamAcc)
	}
}

func TestAdamStateRoundtripContinuesTraining(t *testing.T) {
	cfg := adamConfig()
	cfg.Epochs = 10
	n := MustNew(4, 3, cfg)
	train := syntheticClusters(45, 200)
	if _, err := n.Train(train); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions identical after roundtrip.
	probe := train[0].Features
	a, b := n.Predict(probe), restored.Predict(probe)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Adam state roundtrip changed predictions")
		}
	}
	// Bias-correction counter restored: continued training must behave
	// (loss stays low, no divergence from a reset step count).
	loss, err := restored.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.5 {
		t.Errorf("restored Adam network regressed: loss %v", loss)
	}
}

func TestAdamCloneIndependence(t *testing.T) {
	cfg := adamConfig()
	cfg.Epochs = 5
	n := MustNew(4, 3, cfg)
	if _, err := n.Train(syntheticClusters(46, 100)); err != nil {
		t.Fatal(err)
	}
	probe := []float64{1, 0, 0, 0}
	before := n.Predict(probe)
	cp := n.Clone()
	if _, err := cp.Train(syntheticClusters(47, 100)); err != nil {
		t.Fatal(err)
	}
	after := n.Predict(probe)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("training an Adam clone mutated the original")
		}
	}
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}
