package neural

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

func parallelTrainingSet(n int) []Example {
	rng := mathx.NewRand(99)
	out := make([]Example, n)
	for i := range out {
		x := make([]float64, 6)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		k := i % 3
		x[k] += 2
		out[i] = Example{Features: x, Target: mathx.OneHot(3, k)}
	}
	return out
}

// TestTrainBitIdenticalAcrossWorkers is the package-level equivalence
// contract: with a fixed seed, training produces byte-identical serialised
// state at any worker count, because per-example gradients merge in
// example-index order.
func TestTrainBitIdenticalAcrossWorkers(t *testing.T) {
	examples := parallelTrainingSet(48)
	for _, opt := range []Optimizer{SGDMomentum, Adam} {
		train := func(workers int) []byte {
			cfg := DefaultConfig()
			cfg.Hidden = []int{12, 8}
			cfg.Epochs = 6
			cfg.Optimizer = opt
			cfg.Workers = workers
			n := MustNew(6, 3, cfg)
			if _, err := n.Train(examples); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			var buf bytes.Buffer
			if err := n.Save(&buf); err != nil {
				t.Fatalf("workers=%d: save: %v", workers, err)
			}
			return buf.Bytes()
		}
		want := train(1)
		for _, workers := range []int{2, 8} {
			if got := train(workers); !bytes.Equal(got, want) {
				t.Errorf("optimizer=%v workers=%d: serialised network differs from sequential", opt, workers)
			}
		}
	}
}

// TestPredictConcurrent exercises the pooled inference scratch: many
// goroutines share one network under -race and must all see the same
// distribution.
func TestPredictConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 3
	n := MustNew(6, 3, cfg)
	if _, err := n.Train(parallelTrainingSet(30)); err != nil {
		t.Fatal(err)
	}
	probe := []float64{1, -0.5, 0.25, 2, 0, -1}
	want := n.Predict(probe)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]float64, 3)
			for r := 0; r < 50; r++ {
				n.PredictInto(probe, dst)
				for i := range dst {
					if dst[i] != want[i] {
						errs <- fmt.Sprintf("concurrent predict diverged at class %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestStateIgnoresWorkers: serialised model state must not depend on the
// execution parallelism configured at train time.
func TestStateIgnoresWorkers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 8
	n := MustNew(4, 2, cfg)
	if got := n.State().Config.Workers; got != 0 {
		t.Fatalf("State carried Workers=%d, want 0", got)
	}
}
