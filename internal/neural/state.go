package neural

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// LayerState is the serialisable form of one dense layer.
type LayerState struct {
	In, Out    int
	Activation Activation
	W, B       []float64
	VW, VB     []float64
	// MW, MB hold Adam's first-moment buffers (nil under SGDMomentum).
	MW, MB []float64
}

// State is the serialisable form of a Network: everything needed to
// resume inference and training, including the position of the seeded
// RNG stream so a restored network shuffles future epochs exactly as
// the original would have.
type State struct {
	Config  Config
	InDim   int
	Classes int
	Layers  []LayerState
	// AdamStep carries the optimizer's bias-correction counter.
	AdamStep int
	// RNGDraws is the absolute number of values the network has drawn
	// from its seeded stream (weight init included). FromState
	// fast-forwards a fresh same-seed stream to this position, so
	// training after a restore is byte-identical to training without
	// one. Zero in snapshots written before this field existed: those
	// restore with the pre-existing replay-from-reseed behaviour.
	RNGDraws uint64
}

// State captures the network's current parameters.
func (n *Network) State() State {
	s := State{
		Config:   n.cfg,
		InDim:    n.inDim,
		Classes:  n.classes,
		Layers:   make([]LayerState, len(n.layers)),
		AdamStep: n.adamStep,
		RNGDraws: n.rngSrc.Pos(),
	}
	// Execution parallelism is not model state: a checkpoint taken at any
	// worker count must serialise identically.
	s.Config.Workers = 0
	for i, l := range n.layers {
		s.Layers[i] = LayerState{
			In:         l.in,
			Out:        l.out,
			Activation: l.act,
			W:          mathx.Clone(l.w),
			B:          mathx.Clone(l.b),
			VW:         mathx.Clone(l.vw),
			VB:         mathx.Clone(l.vb),
			MW:         mathx.Clone(l.mw),
			MB:         mathx.Clone(l.mb),
		}
	}
	return s
}

// FromState reconstructs a network from a snapshot.
func FromState(s State) (*Network, error) {
	if s.InDim <= 0 || s.Classes < 2 {
		return nil, fmt.Errorf("neural: invalid state shape in=%d classes=%d", s.InDim, s.Classes)
	}
	if len(s.Layers) == 0 {
		return nil, errors.New("neural: state has no layers")
	}
	n, err := New(s.InDim, s.Classes, s.Config)
	if err != nil {
		return nil, err
	}
	if len(n.layers) != len(s.Layers) {
		return nil, fmt.Errorf("neural: state has %d layers but config builds %d", len(s.Layers), len(n.layers))
	}
	for i, ls := range s.Layers {
		l := n.layers[i]
		if ls.In != l.in || ls.Out != l.out {
			return nil, fmt.Errorf("neural: layer %d shape %dx%d does not match config %dx%d",
				i, ls.In, ls.Out, l.in, l.out)
		}
		if len(ls.W) != l.in*l.out || len(ls.B) != l.out {
			return nil, fmt.Errorf("neural: layer %d parameter lengths inconsistent", i)
		}
		l.act = ls.Activation
		copy(l.w, ls.W)
		copy(l.b, ls.B)
		if len(ls.VW) == len(l.vw) {
			copy(l.vw, ls.VW)
		}
		if len(ls.VB) == len(l.vb) {
			copy(l.vb, ls.VB)
		}
		l.mw = mathx.Clone(ls.MW)
		l.mb = mathx.Clone(ls.MB)
	}
	n.adamStep = s.AdamStep
	// New has already consumed the weight-init draws; advance the
	// remaining distance to the snapshot's absolute position. A
	// snapshot from before RNGDraws existed decodes as zero and keeps
	// the legacy reseed-from-Config behaviour.
	if s.RNGDraws > n.rngSrc.Pos() {
		n.rngSrc.Skip(s.RNGDraws - n.rngSrc.Pos())
	}
	return n, nil
}

// Save writes the network state to w using encoding/gob.
func (n *Network) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(n.State()); err != nil {
		return fmt.Errorf("neural: save: %w", err)
	}
	return nil
}

// Load reads a network previously written with Save.
func Load(r io.Reader) (*Network, error) {
	var s State
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("neural: load: %w", err)
	}
	return FromState(s)
}
