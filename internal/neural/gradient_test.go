package neural

import (
	"math"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// TestBackpropMatchesNumericalGradient verifies the backpropagation
// implementation against central finite differences. With momentum and
// weight decay disabled, a single full-batch SGD step moves each weight
// by exactly -lr * dL/dw, so the implied analytic gradient can be
// recovered from the weight delta and compared to the numerical one.
func TestBackpropMatchesNumericalGradient(t *testing.T) {
	const (
		lr  = 1e-3
		eps = 1e-5
	)
	cfg := Config{
		Hidden:           []int{5},
		HiddenActivation: Tanh, // smooth activation: finite differences behave
		LearningRate:     lr,
		Momentum:         0,
		WeightDecay:      0,
		Epochs:           1,
		BatchSize:        64, // full batch in one step
		Seed:             7,
	}
	examples := []Example{
		{Features: []float64{0.5, -0.2, 0.8}, Target: mathx.OneHot(3, 0)},
		{Features: []float64{-0.1, 0.9, 0.3}, Target: mathx.OneHot(3, 2)},
		{Features: []float64{0.7, 0.1, -0.6}, Target: []float64{0.2, 0.5, 0.3}},
	}

	// Mean cross-entropy over the batch for the network's current weights.
	loss := func(n *Network) float64 {
		var total float64
		for _, ex := range examples {
			total += mathx.CrossEntropy(ex.Target, n.Predict(ex.Features))
		}
		return total / float64(len(examples))
	}

	base := MustNew(3, 3, cfg)
	ref := base.Clone() // pristine weights for numerical probing

	// One SGD step on the base network.
	if _, err := base.Train(examples); err != nil {
		t.Fatal(err)
	}

	// Compare implied and numerical gradients on a sample of weights in
	// every layer.
	checked := 0
	for li := range ref.layers {
		for _, wi := range []int{0, len(ref.layers[li].w) / 2, len(ref.layers[li].w) - 1} {
			implied := -(base.layers[li].w[wi] - ref.layers[li].w[wi]) / lr

			probe := ref.Clone()
			probe.layers[li].w[wi] += eps
			up := loss(probe)
			probe = ref.Clone()
			probe.layers[li].w[wi] -= eps
			down := loss(probe)
			numerical := (up - down) / (2 * eps)

			if diff := math.Abs(implied - numerical); diff > 1e-4*(1+math.Abs(numerical)) {
				t.Errorf("layer %d weight %d: implied gradient %.8f vs numerical %.8f",
					li, wi, implied, numerical)
			}
			checked++
		}
		// Also one bias per layer.
		bi := len(ref.layers[li].b) - 1
		implied := -(base.layers[li].b[bi] - ref.layers[li].b[bi]) / lr
		probe := ref.Clone()
		probe.layers[li].b[bi] += eps
		up := loss(probe)
		probe = ref.Clone()
		probe.layers[li].b[bi] -= eps
		down := loss(probe)
		numerical := (up - down) / (2 * eps)
		if diff := math.Abs(implied - numerical); diff > 1e-4*(1+math.Abs(numerical)) {
			t.Errorf("layer %d bias %d: implied gradient %.8f vs numerical %.8f", li, bi, implied, numerical)
		}
		checked++
	}
	if checked < 6 {
		t.Fatalf("only %d parameters checked", checked)
	}
}

// TestSingleStepDecreasesLoss is the coarse cousin of the gradient check:
// one small step must not increase the batch loss.
func TestSingleStepDecreasesLoss(t *testing.T) {
	cfg := Config{
		Hidden:       []int{8},
		LearningRate: 0.01,
		Momentum:     0,
		Epochs:       1,
		BatchSize:    256,
		Seed:         3,
	}
	examples := syntheticClusters(9, 120)
	n := MustNew(4, 3, cfg)
	loss := func() float64 {
		var total float64
		for _, ex := range examples {
			total += mathx.CrossEntropy(ex.Target, n.Predict(ex.Features))
		}
		return total / float64(len(examples))
	}
	before := loss()
	if _, err := n.Train(examples); err != nil {
		t.Fatal(err)
	}
	if after := loss(); after >= before {
		t.Errorf("one gradient step increased loss: %.6f -> %.6f", before, after)
	}
}
