// Package neural implements a from-scratch feed-forward neural network —
// the stand-in for the paper's deep CNN stack (VGG16 fine-tuning etc.),
// which is unavailable in an offline stdlib-only environment.
//
// The network supports dense layers with ReLU or Tanh activations, a
// softmax cross-entropy output, minibatch stochastic gradient descent with
// momentum and L2 weight decay, and deterministic initialisation from an
// injected seed. That is everything the DDA experts need: they consume
// fixed-length feature views produced by internal/imagery rather than raw
// pixels, so the convolutional front-end of a real CNN is unnecessary.
package neural

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
	"github.com/crowdlearn/crowdlearn/internal/parallel"
)

// Activation selects a layer non-linearity.
type Activation int

// Supported activations. The output layer always uses Identity followed by
// an implicit softmax in the loss.
const (
	ReLU Activation = iota + 1
	Tanh
	Identity
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	case Identity:
		return x
	default:
		panic(fmt.Sprintf("neural: unknown activation %d", int(a)))
	}
}

// derivative returns dA/dz given the activated output y = A(z).
func (a Activation) derivative(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case Identity:
		return 1
	default:
		panic(fmt.Sprintf("neural: unknown activation %d", int(a)))
	}
}

// layer is one dense layer: out = act(W·in + b).
type layer struct {
	in, out int
	act     Activation
	// w is row-major [out][in]; b is [out].
	w, b []float64
	// vw/vb hold the momentum buffers under SGDMomentum and the second
	// (uncentred variance) moment under Adam.
	vw, vb []float64
	// mw/mb hold Adam's first-moment buffers; nil under SGDMomentum.
	mw, mb []float64
}

func newLayer(rng interface{ NormFloat64() float64 }, in, out int, act Activation) *layer {
	l := &layer{
		in:  in,
		out: out,
		act: act,
		w:   make([]float64, in*out),
		b:   make([]float64, out),
		vw:  make([]float64, in*out),
		vb:  make([]float64, out),
	}
	// He initialisation, appropriate for ReLU and fine for Tanh at these
	// sizes.
	std := math.Sqrt(2 / float64(in))
	for i := range l.w {
		l.w[i] = rng.NormFloat64() * std
	}
	return l
}

// forward computes the activated outputs, writing pre-activations to zs if
// non-nil (training path).
func (l *layer) forward(in, out []float64) {
	for o := 0; o < l.out; o++ {
		row := l.w[o*l.in : (o+1)*l.in]
		z := l.b[o] + mathx.Dot(row, in)
		out[o] = l.act.apply(z)
	}
}

// Optimizer selects the weight-update rule.
type Optimizer int

// Supported optimizers.
const (
	// SGDMomentum is classical stochastic gradient descent with momentum
	// (the default).
	SGDMomentum Optimizer = iota
	// Adam is adaptive moment estimation (Kingma & Ba); more robust to
	// learning-rate choice on small, noisy retraining batches.
	Adam
)

// Config parameterises training.
type Config struct {
	// Hidden lists the hidden-layer widths, e.g. []int{32, 16}.
	Hidden []int
	// HiddenActivation applies to every hidden layer (default ReLU).
	HiddenActivation Activation
	// Optimizer selects the update rule (default SGDMomentum).
	Optimizer Optimizer
	// LearningRate is the optimizer step size.
	LearningRate float64
	// Momentum is the classical momentum coefficient (SGDMomentum only).
	Momentum float64
	// WeightDecay is the L2 regularisation coefficient.
	WeightDecay float64
	// Epochs is the number of full passes per Train call.
	Epochs int
	// BatchSize is the minibatch size (default 16).
	BatchSize int
	// Seed drives weight initialisation and minibatch shuffling.
	Seed int64
	// Workers caps the goroutines used for data-parallel gradient
	// accumulation within each minibatch (0 = GOMAXPROCS, 1 = exact
	// sequential execution). Any value yields bit-identical weights:
	// per-example gradient contributions are staged in per-example
	// buffers and merged into the accumulators in example-index order,
	// so no floating-point addition is ever reordered.
	Workers int
}

// DefaultConfig returns sensible training hyperparameters for the expert
// models in this repository.
func DefaultConfig() Config {
	return Config{
		Hidden:           []int{32},
		HiddenActivation: ReLU,
		LearningRate:     0.05,
		Momentum:         0.9,
		WeightDecay:      1e-4,
		Epochs:           60,
		BatchSize:        16,
		Seed:             1,
	}
}

// Network is a feed-forward classifier with a softmax output.
type Network struct {
	cfg    Config
	layers []*layer
	rng    *randSource
	// rngSrc counts draws on the seeded stream behind rng, making the
	// shuffle position checkpointable (State.RNGDraws).
	rngSrc  *mathx.CountingSource
	inDim   int
	classes int
	// inferScratch pools per-call forward buffers, making Predict and
	// PredictInto safe for concurrent use: committee voting fans
	// inference out across goroutines.
	inferScratch sync.Pool
	// train holds the reusable training buffers, built lazily on the
	// first Train call. Training itself is single-goroutine at the top
	// level; only the per-example gradient staging inside a batch fans
	// out.
	train *trainScratch
	// adamStep counts Adam updates for bias correction.
	adamStep int
}

// randSource narrows *rand.Rand so the package can be tested with a
// deterministic stub if ever needed.
type randSource struct {
	r interface {
		NormFloat64() float64
		Perm(int) []int
	}
}

// New constructs a network mapping inDim features to classes outputs.
func New(inDim, classes int, cfg Config) (*Network, error) {
	if inDim <= 0 || classes < 2 {
		return nil, fmt.Errorf("neural: invalid shape in=%d classes=%d", inDim, classes)
	}
	if cfg.LearningRate <= 0 {
		return nil, errors.New("neural: learning rate must be positive")
	}
	if cfg.Epochs < 0 {
		return nil, errors.New("neural: epochs must be non-negative")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.HiddenActivation == 0 {
		cfg.HiddenActivation = ReLU
	}
	rng, src := mathx.NewCountedRand(cfg.Seed)
	n := &Network{cfg: cfg, rng: &randSource{r: rng}, rngSrc: src, inDim: inDim, classes: classes}

	prev := inDim
	for _, h := range cfg.Hidden {
		if h <= 0 {
			return nil, fmt.Errorf("neural: hidden width must be positive, got %d", h)
		}
		n.layers = append(n.layers, newLayer(rng, prev, h, cfg.HiddenActivation))
		prev = h
	}
	n.layers = append(n.layers, newLayer(rng, prev, classes, Identity))
	return n, nil
}

// MustNew is New but panics on error; for static known-good configs.
func MustNew(inDim, classes int, cfg Config) *Network {
	n, err := New(inDim, classes, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// InputDim returns the expected feature dimensionality.
func (n *Network) InputDim() int { return n.inDim }

// Classes returns the number of output classes.
func (n *Network) Classes() int { return n.classes }

// Predict returns the softmax class distribution for x. The returned slice
// is freshly allocated and safe for the caller to retain. Predict is safe
// for concurrent use.
func (n *Network) Predict(x []float64) []float64 {
	return n.PredictInto(x, make([]float64, n.classes))
}

// PredictInto is Predict writing into dst (len == classes). Safe for
// concurrent use; internal forward buffers come from a pool.
func (n *Network) PredictInto(x, dst []float64) []float64 {
	s, _ := n.inferScratch.Get().(*[][]float64)
	if s == nil {
		s = n.newForwardScratch()
	}
	mathx.Softmax(n.forwardInto(x, *s), dst)
	n.inferScratch.Put(s)
	return dst
}

// newForwardScratch allocates one set of per-layer activation buffers.
// The pointer indirection keeps sync.Pool round-trips allocation-free.
func (n *Network) newForwardScratch() *[][]float64 {
	s := make([][]float64, len(n.layers))
	for i, l := range n.layers {
		s[i] = make([]float64, l.out)
	}
	return &s
}

// forwardInto runs inference through the given scratch buffers, returning
// the final logits (aliasing the last scratch buffer).
func (n *Network) forwardInto(x []float64, scratch [][]float64) []float64 {
	if len(x) != n.inDim {
		panic(fmt.Sprintf("neural: input dim %d, want %d", len(x), n.inDim))
	}
	in := x
	for i, l := range n.layers {
		l.forward(in, scratch[i])
		in = scratch[i]
	}
	return in
}

// Example is one training sample.
type Example struct {
	Features []float64
	// Target is a class distribution; use mathx.OneHot for hard labels.
	// Soft targets let MIC retrain on the crowd's aggregated label
	// distribution rather than a collapsed argmax.
	Target []float64
}

// Train runs cfg.Epochs of minibatch SGD over the examples and returns the
// mean cross-entropy of the final epoch. It is safe to call repeatedly;
// each call continues from the current weights (the retraining pathway in
// MIC relies on this).
func (n *Network) Train(examples []Example) (float64, error) {
	if len(examples) == 0 {
		return 0, errors.New("neural: no training examples")
	}
	for i, ex := range examples {
		if len(ex.Features) != n.inDim {
			return 0, fmt.Errorf("neural: example %d has dim %d, want %d", i, len(ex.Features), n.inDim)
		}
		if len(ex.Target) != n.classes {
			return 0, fmt.Errorf("neural: example %d target dim %d, want %d", i, len(ex.Target), n.classes)
		}
	}
	n.ensureTrainScratch()
	var lastLoss float64
	for epoch := 0; epoch < n.cfg.Epochs; epoch++ {
		order := n.rng.r.Perm(len(examples))
		var epochLoss float64
		for start := 0; start < len(order); start += n.cfg.BatchSize {
			end := start + n.cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			epochLoss += n.trainBatch(examples, order[start:end])
		}
		lastLoss = epochLoss / float64(len(examples))
	}
	return lastLoss, nil
}

// TrainWith is Train with the epoch count and learning rate overridden
// for this call only; non-positive values keep the configured defaults.
// MIC's incremental retraining uses this for short, gentle fine-tuning
// passes that continue from the current weights.
func (n *Network) TrainWith(examples []Example, epochs int, learningRate float64) (float64, error) {
	saved := n.cfg
	if epochs > 0 {
		n.cfg.Epochs = epochs
	}
	if learningRate > 0 {
		n.cfg.LearningRate = learningRate
	}
	loss, err := n.Train(examples)
	n.cfg = saved
	return loss, err
}

// TrainWithWorkers is TrainWith with the worker count also overridden
// for this call only; non-positive workers keeps the configured value.
// MIC's expert-level retrain fan-out uses workers=1 here so the three
// concurrent expert retrains do not multiply into per-example
// oversubscription underneath.
func (n *Network) TrainWithWorkers(examples []Example, epochs int, learningRate float64, workers int) (float64, error) {
	saved := n.cfg
	if epochs > 0 {
		n.cfg.Epochs = epochs
	}
	if learningRate > 0 {
		n.cfg.LearningRate = learningRate
	}
	if workers > 0 {
		n.cfg.Workers = workers
	}
	loss, err := n.Train(examples)
	n.cfg = saved
	return loss, err
}

// layerGrads accumulates one layer's gradients over a minibatch.
type layerGrads struct{ gw, gb []float64 }

// exampleStage holds one example's staged forward/backward results so the
// parallel batch path can merge gradient contributions in example-index
// order after the fan-out.
type exampleStage struct {
	// acts[0] aliases the example features; acts[li+1] is layer li's
	// activated output.
	acts [][]float64
	// deltas[li] is the output delta of layer li.
	deltas [][]float64
	probs  []float64
	loss   float64
}

// trainScratch is every reusable buffer of the training loop; after the
// first batch a Train call allocates nothing per batch.
type trainScratch struct {
	gs []layerGrads
	// seq is the single staging area of the sequential path.
	seq exampleStage
	// staged[p] is batch position p's staging area on the parallel path.
	staged []exampleStage
}

func (n *Network) newExampleStage() exampleStage {
	st := exampleStage{
		acts:   make([][]float64, len(n.layers)+1),
		deltas: make([][]float64, len(n.layers)),
		probs:  make([]float64, n.classes),
	}
	for i, l := range n.layers {
		st.acts[i+1] = make([]float64, l.out)
		st.deltas[i] = make([]float64, l.out)
	}
	return st
}

func (n *Network) ensureTrainScratch() *trainScratch {
	if n.train == nil {
		ts := &trainScratch{gs: make([]layerGrads, len(n.layers)), seq: n.newExampleStage()}
		for i, l := range n.layers {
			ts.gs[i] = layerGrads{gw: make([]float64, len(l.w)), gb: make([]float64, len(l.b))}
		}
		n.train = ts
	}
	return n.train
}

// backprop runs one example's forward and backward pass into the stage,
// leaving activations and per-layer deltas behind and recording the loss.
// It reads only immutable state (weights, config), so distinct stages may
// run concurrently.
func (n *Network) backprop(ex Example, st *exampleStage) {
	st.acts[0] = ex.Features
	in := ex.Features
	for li, l := range n.layers {
		l.forward(in, st.acts[li+1])
		in = st.acts[li+1]
	}
	mathx.Softmax(st.acts[len(n.layers)], st.probs)
	st.loss = mathx.CrossEntropy(ex.Target, st.probs)

	// delta for softmax + cross-entropy: p - t.
	last := st.deltas[len(n.layers)-1]
	for c := 0; c < n.classes; c++ {
		last[c] = st.probs[c] - ex.Target[c]
	}
	for li := len(n.layers) - 1; li >= 1; li-- {
		l := n.layers[li]
		prev := n.layers[li-1]
		inAct := st.acts[li]
		delta := st.deltas[li]
		newDelta := st.deltas[li-1]
		for i2 := 0; i2 < l.in; i2++ {
			var s float64
			for o := 0; o < l.out; o++ {
				s += delta[o] * l.w[o*l.in+i2]
			}
			newDelta[i2] = s * prev.act.derivative(inAct[i2])
		}
	}
}

// accumulate folds one staged example into the gradient accumulators. The
// arithmetic — including the d == 0 skip, which matters for signed-zero
// bit patterns — is identical to a fused backward pass, so running
// backprop in parallel and merging stages in example-index order yields
// accumulators bit-identical to sequential execution.
func (n *Network) accumulate(gs []layerGrads, st *exampleStage) {
	for li := len(n.layers) - 1; li >= 0; li-- {
		l := n.layers[li]
		inAct := st.acts[li]
		delta := st.deltas[li]
		for o := 0; o < l.out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			gs[li].gb[o] += d
			row := gs[li].gw[o*l.in : (o+1)*l.in]
			for i2, v := range inAct {
				row[i2] += d * v
			}
		}
	}
}

// trainGrain is the chunking cost hint for per-example backprop: one
// forward+backward pass over the MLP shapes in this repository is tens
// of microseconds, so default-sized minibatches only fan out when a
// handoff actually pays for itself.
var trainGrain = parallel.Grain{CostNs: 25_000}

// trainBatch accumulates gradients over one minibatch and applies one
// optimizer update. Returns the summed cross-entropy over the batch.
// With cfg.Workers and the batch shape resolving to more than one
// grain-effective worker, per-example passes run concurrently and merge
// deterministically; the result is bit-identical at any worker count.
func (n *Network) trainBatch(examples []Example, idx []int) float64 {
	ts := n.ensureTrainScratch()
	gs := ts.gs
	for li := range gs {
		clear(gs[li].gw)
		clear(gs[li].gb)
	}

	var totalLoss float64
	if w, _ := trainGrain.Effective(n.cfg.Workers, len(idx)); w > 1 {
		for len(ts.staged) < len(idx) {
			ts.staged = append(ts.staged, n.newExampleStage())
		}
		parallel.ForGrain(n.cfg.Workers, len(idx), trainGrain, func(p int) {
			n.backprop(examples[idx[p]], &ts.staged[p])
		})
		for p := range idx { // deterministic merge: fixed example order
			totalLoss += ts.staged[p].loss
			n.accumulate(gs, &ts.staged[p])
		}
	} else {
		for _, ei := range idx {
			n.backprop(examples[ei], &ts.seq)
			totalLoss += ts.seq.loss
			n.accumulate(gs, &ts.seq)
		}
	}

	// Optimizer update with L2 decay, averaged over the batch.
	scale := 1 / float64(len(idx))
	switch n.cfg.Optimizer {
	case Adam:
		n.adamUpdate(gs, scale)
	default:
		lr, mom, wd := n.cfg.LearningRate, n.cfg.Momentum, n.cfg.WeightDecay
		for li, l := range n.layers {
			for i := range l.w {
				g := gs[li].gw[i]*scale + wd*l.w[i]
				l.vw[i] = mom*l.vw[i] - lr*g
				l.w[i] += l.vw[i]
			}
			for i := range l.b {
				g := gs[li].gb[i] * scale
				l.vb[i] = mom*l.vb[i] - lr*g
				l.b[i] += l.vb[i]
			}
		}
	}
	return totalLoss
}

// adamUpdate applies one Adam step (Kingma & Ba) to every parameter.
func (n *Network) adamUpdate(gs []layerGrads, scale float64) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	n.adamStep++
	t := float64(n.adamStep)
	corr1 := 1 - math.Pow(beta1, t)
	corr2 := 1 - math.Pow(beta2, t)
	lr, wd := n.cfg.LearningRate, n.cfg.WeightDecay
	for li, l := range n.layers {
		if l.mw == nil {
			l.mw = make([]float64, len(l.w))
			l.mb = make([]float64, len(l.b))
		}
		step := func(w, m, v []float64, g func(i int) float64) {
			for i := range w {
				gi := g(i)
				m[i] = beta1*m[i] + (1-beta1)*gi
				v[i] = beta2*v[i] + (1-beta2)*gi*gi
				mHat := m[i] / corr1
				vHat := v[i] / corr2
				w[i] -= lr * mHat / (math.Sqrt(vHat) + eps)
			}
		}
		step(l.w, l.mw, l.vw, func(i int) float64 { return gs[li].gw[i]*scale + wd*l.w[i] })
		step(l.b, l.mb, l.vb, func(i int) float64 { return gs[li].gb[i] * scale })
	}
}

// Clone returns a deep copy of the network (weights and momentum buffers).
// MIC snapshots experts before retraining so a failed calibration can be
// rolled back.
func (n *Network) Clone() *Network {
	cp := &Network{
		cfg:      n.cfg,
		rng:      n.rng, // deliberately shared: clone continues the stream
		rngSrc:   n.rngSrc,
		inDim:    n.inDim,
		classes:  n.classes,
		adamStep: n.adamStep,
	}
	cp.layers = make([]*layer, len(n.layers))
	for i, l := range n.layers {
		cp.layers[i] = &layer{
			in:  l.in,
			out: l.out,
			act: l.act,
			w:   mathx.Clone(l.w),
			b:   mathx.Clone(l.b),
			vw:  mathx.Clone(l.vw),
			vb:  mathx.Clone(l.vb),
			mw:  mathx.Clone(l.mw),
			mb:  mathx.Clone(l.mb),
		}
	}
	return cp
}

// NumParameters returns the total number of trainable parameters.
func (n *Network) NumParameters() int {
	total := 0
	for _, l := range n.layers {
		total += len(l.w) + len(l.b)
	}
	return total
}
