package neural

import (
	"math"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		in, cls int
		mutate  func(*Config)
	}{
		{"zero input", 0, 3, nil},
		{"one class", 4, 1, nil},
		{"zero lr", 4, 3, func(c *Config) { c.LearningRate = 0 }},
		{"negative epochs", 4, 3, func(c *Config) { c.Epochs = -1 }},
		{"zero hidden width", 4, 3, func(c *Config) { c.Hidden = []int{0} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			if tt.mutate != nil {
				tt.mutate(&cfg)
			}
			if _, err := New(tt.in, tt.cls, cfg); err == nil {
				t.Errorf("config %q should be rejected", tt.name)
			}
		})
	}
}

func TestPredictIsDistribution(t *testing.T) {
	n := MustNew(5, 3, DefaultConfig())
	p := n.Predict([]float64{1, -1, 0.5, 2, -0.3})
	if len(p) != 3 {
		t.Fatalf("prediction length %d, want 3", len(p))
	}
	sum := 0.0
	for _, x := range p {
		if x < 0 || x > 1 {
			t.Fatalf("probability %v out of range", x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("prediction sums to %v", sum)
	}
}

func TestPredictPanicsOnWrongDim(t *testing.T) {
	n := MustNew(5, 3, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input dim should panic")
		}
	}()
	n.Predict([]float64{1, 2})
}

func TestTrainRejectsBadExamples(t *testing.T) {
	n := MustNew(2, 2, DefaultConfig())
	if _, err := n.Train(nil); err == nil {
		t.Error("empty training set must error")
	}
	if _, err := n.Train([]Example{{Features: []float64{1}, Target: []float64{1, 0}}}); err == nil {
		t.Error("wrong feature dim must error")
	}
	if _, err := n.Train([]Example{{Features: []float64{1, 2}, Target: []float64{1}}}); err == nil {
		t.Error("wrong target dim must error")
	}
}

// syntheticClusters builds a linearly separable 3-class problem.
func syntheticClusters(seed int64, n int) []Example {
	rng := mathx.NewRand(seed)
	centers := [][]float64{{2, 0, 0, 0}, {0, 2, 0, 0}, {0, 0, 2, 0}}
	examples := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		c := i % 3
		f := mathx.Clone(centers[c])
		mathx.AddGaussianNoise(rng, f, 0.4)
		examples = append(examples, Example{Features: f, Target: mathx.OneHot(3, c)})
	}
	return examples
}

func TestTrainLearnsClusters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 80
	n := MustNew(4, 3, cfg)
	train := syntheticClusters(1, 300)
	loss, err := n.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.4 {
		t.Errorf("final training loss %v too high", loss)
	}
	test := syntheticClusters(2, 300)
	correct := 0
	for _, ex := range test {
		if mathx.ArgMax(n.Predict(ex.Features)) == mathx.ArgMax(ex.Target) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.9 {
		t.Errorf("held-out accuracy %.3f, want >= 0.9", acc)
	}
}

func TestTrainLossDecreases(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 5
	n := MustNew(4, 3, cfg)
	train := syntheticClusters(3, 150)
	first, err := n.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	// Continue training: loss should not regress dramatically.
	second, err := n.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if second > first {
		t.Errorf("continued training increased loss: %v -> %v", first, second)
	}
}

func TestIncrementalTraining(t *testing.T) {
	// The MIC retraining pathway calls Train repeatedly with augmented
	// data; verify weights persist across calls (accuracy keeps improving
	// relative to a fresh network trained fewer epochs).
	cfg := DefaultConfig()
	cfg.Epochs = 2
	n := MustNew(4, 3, cfg)
	train := syntheticClusters(4, 300)
	var lastLoss float64
	for i := 0; i < 10; i++ {
		loss, err := n.Train(train)
		if err != nil {
			t.Fatal(err)
		}
		lastLoss = loss
	}
	if lastLoss > 0.5 {
		t.Errorf("20 cumulative epochs should fit clusters, loss=%v", lastLoss)
	}
}

func TestCloneIndependence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 10
	n := MustNew(4, 3, cfg)
	x := []float64{1, 0, 0, 0}
	before := n.Predict(x)

	cp := n.Clone()
	// Train only the clone; the original must be unchanged.
	if _, err := cp.Train(syntheticClusters(5, 150)); err != nil {
		t.Fatal(err)
	}
	after := n.Predict(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("training a clone mutated the original network")
		}
	}
	// The clone must have actually changed.
	cloned := cp.Predict(x)
	same := true
	for i := range before {
		if before[i] != cloned[i] {
			same = false
		}
	}
	if same {
		t.Fatal("clone did not learn")
	}
}

func TestDeterministicTraining(t *testing.T) {
	build := func() []float64 {
		cfg := DefaultConfig()
		cfg.Epochs = 15
		n := MustNew(4, 3, cfg)
		if _, err := n.Train(syntheticClusters(6, 120)); err != nil {
			t.Fatal(err)
		}
		return n.Predict([]float64{0.5, 0.5, 0, 0})
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("identically seeded training must be bit-identical")
		}
	}
}

func TestSoftTargets(t *testing.T) {
	// Training toward a soft 50/50 target should produce predictions near
	// 50/50 on that input.
	cfg := DefaultConfig()
	cfg.Epochs = 200
	cfg.Hidden = nil // logistic regression is enough
	n := MustNew(2, 2, cfg)
	ex := []Example{{Features: []float64{1, 1}, Target: []float64{0.5, 0.5}}}
	if _, err := n.Train(ex); err != nil {
		t.Fatal(err)
	}
	p := n.Predict([]float64{1, 1})
	if math.Abs(p[0]-0.5) > 0.05 {
		t.Errorf("soft-target training gave %v, want ~[0.5 0.5]", p)
	}
}

func TestPredictIntoReuse(t *testing.T) {
	n := MustNew(3, 3, DefaultConfig())
	dst := make([]float64, 3)
	out := n.PredictInto([]float64{1, 2, 3}, dst)
	if &out[0] != &dst[0] {
		t.Fatal("PredictInto must reuse dst")
	}
}

func TestNumParameters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = []int{10}
	n := MustNew(4, 3, cfg)
	// (4*10 + 10) + (10*3 + 3) = 50 + 33 = 83.
	if got := n.NumParameters(); got != 83 {
		t.Errorf("NumParameters = %d, want 83", got)
	}
}

func TestActivations(t *testing.T) {
	if ReLU.apply(-1) != 0 || ReLU.apply(2) != 2 {
		t.Error("ReLU apply wrong")
	}
	if ReLU.derivative(0) != 0 || ReLU.derivative(1) != 1 {
		t.Error("ReLU derivative wrong")
	}
	if math.Abs(Tanh.apply(0.5)-math.Tanh(0.5)) > 1e-12 {
		t.Error("Tanh apply wrong")
	}
	y := math.Tanh(0.5)
	if math.Abs(Tanh.derivative(y)-(1-y*y)) > 1e-12 {
		t.Error("Tanh derivative wrong")
	}
	if Identity.apply(3) != 3 || Identity.derivative(3) != 1 {
		t.Error("Identity wrong")
	}
}
