package neural

import "testing"

func BenchmarkPredict(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Epochs = 5
	n := MustNew(32, 3, cfg)
	if _, err := n.Train(syntheticClustersDim(1, 200, 32)); err != nil {
		b.Fatal(err)
	}
	x := syntheticClustersDim(2, 1, 32)[0].Features
	dst := make([]float64, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.PredictInto(x, dst)
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Epochs = 1
	examples := syntheticClustersDim(3, 560, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n := MustNew(32, 3, cfg)
		b.StartTimer()
		if _, err := n.Train(examples); err != nil {
			b.Fatal(err)
		}
	}
}

// syntheticClustersDim generalises the test helper to arbitrary dims.
func syntheticClustersDim(seed int64, n, dim int) []Example {
	base := syntheticClusters(seed, n)
	out := make([]Example, len(base))
	for i, ex := range base {
		f := make([]float64, dim)
		copy(f, ex.Features)
		out[i] = Example{Features: f, Target: ex.Target}
	}
	return out
}
