package gbdt

import "testing"

func BenchmarkTrain(b *testing.B) {
	features, labels := threeClassDataset(1, 560)
	params := DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(features, labels, 3, params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	features, labels := threeClassDataset(2, 400)
	c, err := Train(features, labels, 3, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Predict(features[i%len(features)])
	}
}
