package gbdt

import (
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// noisyDataset builds a problem with limited signal so late boosting
// rounds overfit: 2 informative features plus pure label noise.
func noisyDataset(seed int64, n int) ([][]float64, []int) {
	rng := mathx.NewRand(seed)
	features := make([][]float64, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		features[i] = []float64{
			float64(c) + 1.2*rng.NormFloat64(),
			float64(c) + 1.2*rng.NormFloat64(),
			rng.NormFloat64(),
			rng.NormFloat64(),
		}
		labels[i] = c
		if rng.Float64() < 0.15 { // label noise
			labels[i] = 1 - c
		}
	}
	return features, labels
}

func TestEarlyStoppingTruncatesRounds(t *testing.T) {
	features, labels := noisyDataset(1, 400)
	params := DefaultParams()
	params.Rounds = 150
	params.EarlyStoppingRounds = 8
	c, err := Train(features, labels, 2, params)
	if err != nil {
		t.Fatal(err)
	}
	fullParams := DefaultParams()
	fullParams.Rounds = 150
	full, err := Train(features, labels, 2, fullParams)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumTrees() >= full.NumTrees() {
		t.Errorf("early stopping kept %d trees, full run has %d — nothing truncated",
			c.NumTrees(), full.NumTrees())
	}
	if c.NumTrees() == 0 {
		t.Fatal("early stopping removed every tree")
	}
}

func TestEarlyStoppingGeneralisesAtLeastAsWell(t *testing.T) {
	features, labels := noisyDataset(2, 600)
	testF, testL := noisyDataset(3, 400)

	params := DefaultParams()
	params.Rounds = 200
	params.MaxDepth = 6 // deep trees overfit label noise faster
	params.EarlyStoppingRounds = 10
	stopped, err := Train(features, labels, 2, params)
	if err != nil {
		t.Fatal(err)
	}
	fullParams := params
	fullParams.EarlyStoppingRounds = 0
	full, err := Train(features, labels, 2, fullParams)
	if err != nil {
		t.Fatal(err)
	}
	accStopped := accuracy(stopped, testF, testL)
	accFull := accuracy(full, testF, testL)
	t.Logf("held-out: early-stopped=%.3f (trees %d) full=%.3f (trees %d)",
		accStopped, stopped.NumTrees(), accFull, full.NumTrees())
	if accStopped < accFull-0.03 {
		t.Errorf("early stopping should not generalise clearly worse: %.3f vs %.3f", accStopped, accFull)
	}
}

func TestTrainValidatedExplicitSet(t *testing.T) {
	features, labels := noisyDataset(4, 400)
	valF, valL := noisyDataset(5, 150)
	params := DefaultParams()
	params.Rounds = 120
	params.EarlyStoppingRounds = 6
	c, err := TrainValidated(features, labels, valF, valL, 2, params)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumTrees() == 0 || c.NumTrees() > 120*2 {
		t.Errorf("tree count %d implausible", c.NumTrees())
	}
	if _, err := TrainValidated(features, labels, nil, nil, 2, params); err == nil {
		t.Error("empty validation set must be rejected")
	}
	if _, err := TrainValidated(features, labels, valF, valL[:3], 2, params); err == nil {
		t.Error("mismatched validation set must be rejected")
	}
}

func TestEarlyStoppingParamValidation(t *testing.T) {
	features, labels := xorDataset(6, 100)
	p := DefaultParams()
	p.EarlyStoppingRounds = -1
	if _, err := Train(features, labels, 2, p); err == nil {
		t.Error("negative early stopping rounds must be rejected")
	}
	p = DefaultParams()
	p.EarlyStoppingRounds = 5
	p.ValidationFraction = 1.2
	if _, err := Train(features, labels, 2, p); err == nil {
		t.Error("validation fraction above 1 must be rejected")
	}
	// Tiny datasets cannot afford a split.
	p = DefaultParams()
	p.EarlyStoppingRounds = 5
	tinyF := [][]float64{{1}, {2}}
	tinyL := []int{0, 1}
	if _, err := Train(tinyF, tinyL, 2, p); err == nil {
		t.Error("too-small dataset for validation split must be rejected")
	}
}
