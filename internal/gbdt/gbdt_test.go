package gbdt

import (
	"math"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// xorDataset builds the classic non-linearly-separable XOR problem that a
// depth-limited tree ensemble must solve but a linear model cannot.
func xorDataset(seed int64, n int) ([][]float64, []int) {
	rng := mathx.NewRand(seed)
	features := make([][]float64, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		a := rng.Float64()
		b := rng.Float64()
		features[i] = []float64{a, b, rng.Float64()} // third feature is noise
		if (a > 0.5) != (b > 0.5) {
			labels[i] = 1
		}
	}
	return features, labels
}

func threeClassDataset(seed int64, n int) ([][]float64, []int) {
	rng := mathx.NewRand(seed)
	features := make([][]float64, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		f := []float64{float64(c) + 0.3*rng.NormFloat64(), 0.5 * rng.NormFloat64()}
		features[i] = f
		labels[i] = c
	}
	return features, labels
}

func accuracy(c *Classifier, features [][]float64, labels []int) float64 {
	correct := 0
	for i, x := range features {
		if c.PredictClass(x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

func TestTrainValidation(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}}
	y := []int{0, 1}
	tests := []struct {
		name string
		fn   func() error
	}{
		{"no samples", func() error { _, err := Train(nil, nil, 2, DefaultParams()); return err }},
		{"length mismatch", func() error { _, err := Train(x, []int{0}, 2, DefaultParams()); return err }},
		{"one class", func() error { _, err := Train(x, y, 1, DefaultParams()); return err }},
		{"label out of range", func() error { _, err := Train(x, []int{0, 5}, 2, DefaultParams()); return err }},
		{"ragged rows", func() error {
			_, err := Train([][]float64{{1}, {1, 2}}, y, 2, DefaultParams())
			return err
		}},
		{"bad rounds", func() error {
			p := DefaultParams()
			p.Rounds = 0
			_, err := Train(x, y, 2, p)
			return err
		}},
		{"bad lr", func() error {
			p := DefaultParams()
			p.LearningRate = 1.5
			_, err := Train(x, y, 2, p)
			return err
		}},
		{"bad subsample", func() error {
			p := DefaultParams()
			p.Subsample = 0
			_, err := Train(x, y, 2, p)
			return err
		}},
		{"negative lambda", func() error {
			p := DefaultParams()
			p.Lambda = -1
			_, err := Train(x, y, 2, p)
			return err
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.fn() == nil {
				t.Errorf("%s should be rejected", tt.name)
			}
		})
	}
}

func TestLearnsXOR(t *testing.T) {
	features, labels := xorDataset(1, 600)
	params := DefaultParams()
	c, err := Train(features, labels, 2, params)
	if err != nil {
		t.Fatal(err)
	}
	testF, testL := xorDataset(2, 400)
	if acc := accuracy(c, testF, testL); acc < 0.9 {
		t.Errorf("XOR held-out accuracy %.3f, want >= 0.9", acc)
	}
}

func TestLearnsThreeClasses(t *testing.T) {
	features, labels := threeClassDataset(3, 450)
	c, err := Train(features, labels, 3, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	testF, testL := threeClassDataset(4, 300)
	if acc := accuracy(c, testF, testL); acc < 0.85 {
		t.Errorf("3-class held-out accuracy %.3f, want >= 0.85", acc)
	}
}

func TestPredictIsDistribution(t *testing.T) {
	features, labels := threeClassDataset(5, 150)
	c, err := Train(features, labels, 3, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range features[:20] {
		p := c.Predict(x)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("invalid probability %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestDeterminism(t *testing.T) {
	features, labels := xorDataset(6, 300)
	a, err := Train(features, labels, 2, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(features, labels, 2, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range features[:50] {
		pa, pb := a.Predict(x), b.Predict(x)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatal("identically seeded training must be bit-identical")
			}
		}
	}
}

func TestFeatureImportanceIgnoresNoise(t *testing.T) {
	features, labels := xorDataset(7, 800)
	c, err := Train(features, labels, 2, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	imp := c.FeatureImportance()
	if len(imp) != 3 {
		t.Fatalf("importance length %d", len(imp))
	}
	if s := mathx.Sum(imp); math.Abs(s-1) > 1e-9 {
		t.Errorf("importance sums to %v", s)
	}
	// The noise feature (index 2) must matter far less than the signal.
	if imp[2] > imp[0] || imp[2] > imp[1] {
		t.Errorf("noise feature importance %v dominates signal %v/%v", imp[2], imp[0], imp[1])
	}
}

func TestPredictPanicsOnWrongDim(t *testing.T) {
	features, labels := xorDataset(8, 100)
	c, err := Train(features, labels, 2, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input dim should panic")
		}
	}()
	c.Predict([]float64{1})
}

func TestTreeValidate(t *testing.T) {
	features, labels := threeClassDataset(9, 200)
	c, err := Train(features, labels, 3, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, round := range c.trees {
		for _, tr := range round {
			if err := tr.validate(c.numFeatures); err != nil {
				t.Fatal(err)
			}
		}
	}
	if c.NumTrees() != DefaultParams().Rounds*3 {
		t.Errorf("NumTrees = %d, want %d", c.NumTrees(), DefaultParams().Rounds*3)
	}
}

func TestConstantFeatureDoesNotSplit(t *testing.T) {
	// All rows identical: no valid split exists, model must fall back to
	// the prior without crashing.
	features := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	labels := []int{0, 1, 0, 1}
	p := DefaultParams()
	p.Rounds = 5
	c, err := Train(features, labels, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	pred := c.Predict([]float64{1, 1})
	if math.Abs(pred[0]-0.5) > 0.05 {
		t.Errorf("constant features should yield ~uniform prediction, got %v", pred)
	}
}

func TestGammaPruning(t *testing.T) {
	features, labels := xorDataset(10, 400)
	p := DefaultParams()
	p.Gamma = 1e9 // absurd minimum gain: no splits allowed
	c, err := Train(features, labels, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	imp := c.FeatureImportance()
	if mathx.Sum(imp) != 0 {
		t.Errorf("gamma pruning should prevent all splits, importance %v", imp)
	}
}

func TestMinSamplesLeafRespected(t *testing.T) {
	features, labels := xorDataset(11, 50)
	p := DefaultParams()
	p.MinSamplesLeaf = 30 // more than half the data: only root allowed
	c, err := Train(features, labels, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, round := range c.trees {
		for _, tr := range round {
			if len(tr.nodes) != 1 {
				t.Fatalf("tree has %d nodes, want 1 (root only)", len(tr.nodes))
			}
		}
	}
}

func TestAccessors(t *testing.T) {
	features, labels := xorDataset(12, 100)
	c, err := Train(features, labels, 2, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClasses() != 2 {
		t.Errorf("NumClasses = %d", c.NumClasses())
	}
	if c.NumFeatures() != 3 {
		t.Errorf("NumFeatures = %d", c.NumFeatures())
	}
}
