package gbdt

import (
	"errors"
	"fmt"
	"math"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
	"github.com/crowdlearn/crowdlearn/internal/parallel"
)

// Params configures boosting.
type Params struct {
	// Rounds is the number of boosting iterations (trees per class).
	Rounds int
	// MaxDepth limits tree depth (root = depth 0).
	MaxDepth int
	// MinSamplesLeaf is the minimum samples per leaf.
	MinSamplesLeaf int
	// LearningRate is the shrinkage applied to each tree's output.
	LearningRate float64
	// Lambda is the L2 regularisation on leaf weights.
	Lambda float64
	// Gamma is the minimum gain required to split.
	Gamma float64
	// Subsample is the row-sampling fraction per round (1 = no sampling).
	Subsample float64
	// EarlyStoppingRounds stops boosting when the validation log-loss has
	// not improved for this many consecutive rounds (0 disables early
	// stopping). Requires validation data via TrainValidated.
	EarlyStoppingRounds int
	// ValidationFraction is the share of training rows Train holds out
	// for early stopping when EarlyStoppingRounds > 0 and no explicit
	// validation set is supplied (default 0.15).
	ValidationFraction float64
	// Seed drives subsampling and the validation split.
	Seed int64
	// Workers caps the goroutines used for the per-feature split search
	// and the per-sample gradient/score updates (0 = GOMAXPROCS,
	// 1 = exact sequential execution). The trained model is bit-identical
	// at any value: per-feature split candidates merge in ascending
	// feature order and per-sample results land in per-index slots, so no
	// floating-point computation is ever reordered.
	Workers int
}

// DefaultParams mirrors common XGBoost defaults scaled to the small
// CQC training sets in this repository.
func DefaultParams() Params {
	return Params{
		Rounds:         60,
		MaxDepth:       4,
		MinSamplesLeaf: 2,
		LearningRate:   0.15,
		Lambda:         1.0,
		Gamma:          0.0,
		Subsample:      0.9,
		Seed:           1,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Rounds <= 0 {
		return errors.New("gbdt: Rounds must be positive")
	}
	if p.MaxDepth <= 0 {
		return errors.New("gbdt: MaxDepth must be positive")
	}
	if p.MinSamplesLeaf <= 0 {
		return errors.New("gbdt: MinSamplesLeaf must be positive")
	}
	if p.LearningRate <= 0 || p.LearningRate > 1 {
		return errors.New("gbdt: LearningRate must be in (0, 1]")
	}
	if p.Lambda < 0 || p.Gamma < 0 {
		return errors.New("gbdt: Lambda and Gamma must be non-negative")
	}
	if p.Subsample <= 0 || p.Subsample > 1 {
		return errors.New("gbdt: Subsample must be in (0, 1]")
	}
	if p.EarlyStoppingRounds < 0 {
		return errors.New("gbdt: EarlyStoppingRounds must be non-negative")
	}
	if p.ValidationFraction < 0 || p.ValidationFraction >= 1 {
		return errors.New("gbdt: ValidationFraction must be in [0, 1)")
	}
	return nil
}

// Classifier is a trained multiclass boosted-tree model.
type Classifier struct {
	params      Params
	numClasses  int
	numFeatures int
	// trees[round][class]
	trees      [][]*tree
	importance []float64
	baseScore  []float64
}

// Train fits a classifier on dense features and integer class labels in
// [0, numClasses). When EarlyStoppingRounds > 0, a ValidationFraction
// share of the rows is held out automatically and boosting stops once the
// validation log-loss stalls.
func Train(features [][]float64, labels []int, numClasses int, params Params) (*Classifier, error) {
	if err := validateInputs(features, labels, numClasses, params); err != nil {
		return nil, err
	}
	if params.EarlyStoppingRounds > 0 {
		frac := params.ValidationFraction
		if frac == 0 {
			frac = 0.15
		}
		rng := mathx.NewRand(params.Seed + 1)
		perm := rng.Perm(len(features))
		cut := int(frac * float64(len(features)))
		if cut < 1 || len(features)-cut < 2 {
			return nil, errors.New("gbdt: too few rows for the validation split")
		}
		valF := make([][]float64, 0, cut)
		valL := make([]int, 0, cut)
		trF := make([][]float64, 0, len(features)-cut)
		trL := make([]int, 0, len(features)-cut)
		for i, idx := range perm {
			if i < cut {
				valF = append(valF, features[idx])
				valL = append(valL, labels[idx])
			} else {
				trF = append(trF, features[idx])
				trL = append(trL, labels[idx])
			}
		}
		return trainCore(trF, trL, valF, valL, numClasses, params)
	}
	return trainCore(features, labels, nil, nil, numClasses, params)
}

// TrainValidated fits with an explicit validation set for early stopping.
func TrainValidated(features [][]float64, labels []int, valFeatures [][]float64, valLabels []int, numClasses int, params Params) (*Classifier, error) {
	if err := validateInputs(features, labels, numClasses, params); err != nil {
		return nil, err
	}
	if len(valFeatures) == 0 || len(valFeatures) != len(valLabels) {
		return nil, errors.New("gbdt: validation set empty or mismatched")
	}
	return trainCore(features, labels, valFeatures, valLabels, numClasses, params)
}

func validateInputs(features [][]float64, labels []int, numClasses int, params Params) error {
	if err := params.Validate(); err != nil {
		return err
	}
	if len(features) == 0 {
		return errors.New("gbdt: no training samples")
	}
	if len(features) != len(labels) {
		return fmt.Errorf("gbdt: %d feature rows but %d labels", len(features), len(labels))
	}
	if numClasses < 2 {
		return errors.New("gbdt: need at least 2 classes")
	}
	numFeatures := len(features[0])
	for i, row := range features {
		if len(row) != numFeatures {
			return fmt.Errorf("gbdt: row %d has %d features, want %d", i, len(row), numFeatures)
		}
	}
	for i, y := range labels {
		if y < 0 || y >= numClasses {
			return fmt.Errorf("gbdt: label %d out of range at row %d", y, i)
		}
	}
	return nil
}

// trainCore runs the boosting loop, optionally early-stopping on the
// validation log-loss.
func trainCore(features [][]float64, labels []int, valFeatures [][]float64, valLabels []int, numClasses int, params Params) (*Classifier, error) {
	n := len(features)
	numFeatures := len(features[0])
	c := &Classifier{
		params:      params,
		numClasses:  numClasses,
		numFeatures: numFeatures,
		importance:  make([]float64, numFeatures),
		baseScore:   make([]float64, numClasses),
	}
	rng := mathx.NewRand(params.Seed)

	// Raw scores per sample per class, updated additively each round.
	scores := make([][]float64, n)
	for i := range scores {
		scores[i] = make([]float64, numClasses)
	}
	probs := make([]float64, numClasses)
	grad := make([]float64, n)
	hess := make([]float64, n)

	// Parallel execution state: per-worker softmax scratch for the
	// gradient loop, and one shared tree-building scratch. Every parallel
	// loop writes per-index slots only, so the trained model is
	// bit-identical at any worker count.
	workers := parallel.Workers(params.Workers)
	probsW := make([][]float64, workers)
	for w := range probsW {
		probsW[w] = make([]float64, numClasses)
	}
	scratch := newBuildScratch(params.Workers, numFeatures)

	// Validation state for early stopping.
	earlyStopping := params.EarlyStoppingRounds > 0 && len(valFeatures) > 0
	var valScores [][]float64
	if earlyStopping {
		valScores = make([][]float64, len(valFeatures))
		for i := range valScores {
			valScores[i] = make([]float64, numClasses)
		}
	}
	bestLoss := math.Inf(1)
	bestRound := -1
	stale := 0

	for round := 0; round < params.Rounds; round++ {
		// Row subsample for this round.
		var idx []int
		if params.Subsample < 1 {
			idx = idx[:0]
			for i := 0; i < n; i++ {
				if rng.Float64() < params.Subsample {
					idx = append(idx, i)
				}
			}
			if len(idx) < 2*params.MinSamplesLeaf {
				idx = allIndices(n)
			}
		} else {
			idx = allIndices(n)
		}

		roundTrees := make([]*tree, numClasses)
		for k := 0; k < numClasses; k++ {
			// Softmax gradients: g = p_k - y_k, h = p_k (1 - p_k). Each
			// sample owns its grad/hess slot; the softmax scratch is
			// per-worker.
			parallel.ForWorker(params.Workers, n, func(w, i int) {
				probs := probsW[w]
				mathx.Softmax(scores[i], probs)
				p := probs[k]
				y := 0.0
				if labels[i] == k {
					y = 1.0
				}
				grad[i] = p - y
				hess[i] = p * (1 - p)
				if hess[i] < 1e-9 {
					hess[i] = 1e-9
				}
			})
			b := &treeBuilder{
				features:   features,
				grad:       grad,
				hess:       hess,
				params:     params,
				importance: c.importance,
				scratch:    scratch,
			}
			tr := b.build(idx)
			roundTrees[k] = tr
			// Apply shrinkage-scaled updates to all samples.
			parallel.For(params.Workers, n, func(i int) {
				scores[i][k] += params.LearningRate * tr.predict(features[i])
			})
		}
		c.trees = append(c.trees, roundTrees)

		if earlyStopping {
			parallel.For(params.Workers, len(valFeatures), func(vi int) {
				for k, tr := range roundTrees {
					valScores[vi][k] += params.LearningRate * tr.predict(valFeatures[vi])
				}
			})
			loss := logLoss(valScores, valLabels, probs)
			if loss < bestLoss-1e-9 {
				bestLoss = loss
				bestRound = round
				stale = 0
			} else {
				stale++
				if stale >= params.EarlyStoppingRounds {
					break
				}
			}
		}
	}
	if earlyStopping && bestRound >= 0 {
		// Truncate to the best round observed.
		c.trees = c.trees[:bestRound+1]
	}
	return c, nil
}

// logLoss computes the mean negative log-likelihood of the labels under
// the softmax of the raw scores, reusing probs as scratch.
func logLoss(scores [][]float64, labels []int, probs []float64) float64 {
	var total float64
	for i, s := range scores {
		mathx.Softmax(s, probs)
		p := probs[labels[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		total -= math.Log(p)
	}
	return total / float64(len(scores))
}

func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Predict returns the softmax class distribution for x.
func (c *Classifier) Predict(x []float64) []float64 {
	if len(x) != c.numFeatures {
		panic(fmt.Sprintf("gbdt: input dim %d, want %d", len(x), c.numFeatures))
	}
	scores := mathx.Clone(c.baseScore)
	for _, roundTrees := range c.trees {
		for k, tr := range roundTrees {
			scores[k] += c.params.LearningRate * tr.predict(x)
		}
	}
	return mathx.Softmax(scores, scores)
}

// PredictClass returns the argmax class for x.
func (c *Classifier) PredictClass(x []float64) int {
	return mathx.ArgMax(c.Predict(x))
}

// NumClasses returns the number of classes the model was trained with.
func (c *Classifier) NumClasses() int { return c.numClasses }

// NumFeatures returns the expected feature dimensionality.
func (c *Classifier) NumFeatures() int { return c.numFeatures }

// NumTrees returns the total number of trees across rounds and classes.
func (c *Classifier) NumTrees() int {
	total := 0
	for _, r := range c.trees {
		total += len(r)
	}
	return total
}

// FeatureImportance returns per-feature accumulated split gain, normalised
// to sum to one (all zeros if no splits were made).
func (c *Classifier) FeatureImportance() []float64 {
	out := mathx.Clone(c.importance)
	if s := mathx.Sum(out); s > 0 {
		mathx.Scale(out, 1/s)
	}
	return out
}
