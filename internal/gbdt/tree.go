// Package gbdt implements gradient-boosted decision trees from scratch,
// the stand-in for XGBoost which the paper's CQC module uses to fuse crowd
// labels and questionnaire answers into a truthful label.
//
// The implementation follows the XGBoost formulation: each boosting round
// fits one regression tree per class to the first- and second-order
// gradients of the softmax cross-entropy objective, with exact greedy
// split finding, gain-based pruning (gamma), leaf-weight L2 regularisation
// (lambda), shrinkage, and optional row subsampling.
package gbdt

import (
	"fmt"
	"math"
	"sort"

	"github.com/crowdlearn/crowdlearn/internal/parallel"
)

// node is one tree node. Leaves have feature == -1.
type node struct {
	feature   int
	threshold float64
	left      int // index into tree.nodes
	right     int
	value     float64 // leaf weight
}

// tree is a regression tree over dense feature vectors.
type tree struct {
	nodes []node
}

// predict returns the leaf value for x.
func (t *tree) predict(x []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] < n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// splitCandidate is the best split found for a node (or one feature of a
// node during the parallel search).
type splitCandidate struct {
	feature   int
	threshold float64
	gain      float64
	// pos is the split position in the feature-sorted node ordering: the
	// left child takes the first pos indices.
	pos   int
	found bool
}

// buildScratch holds the reusable buffers of tree construction; one
// instance is shared across every tree of a training run, so split search
// allocates nothing per node.
type buildScratch struct {
	// workers caps the per-feature split-search fan-out.
	workers int
	// arena holds the node index sets, partitioned in place as the tree
	// grows.
	arena []int
	// orders[w] is worker slot w's feature-sort buffer.
	orders [][]int
	// cands[f] is feature f's best split, merged in ascending feature
	// order after the parallel scan.
	cands []splitCandidate
}

func newBuildScratch(workers, numFeatures int) *buildScratch {
	return &buildScratch{
		workers: workers,
		orders:  make([][]int, parallel.Workers(workers)),
		cands:   make([]splitCandidate, numFeatures),
	}
}

// order returns worker slot w's sort buffer with length n.
func (s *buildScratch) order(w, n int) []int {
	if cap(s.orders[w]) < n {
		s.orders[w] = make([]int, n)
	}
	return s.orders[w][:n]
}

// treeBuilder grows one tree on gradient/hessian targets.
type treeBuilder struct {
	features [][]float64 // row-major samples
	grad     []float64
	hess     []float64
	params   Params
	t        *tree
	// importance accumulates per-feature gain, reported by the classifier.
	importance []float64
	// scratch is shared across the trees of one training run.
	scratch *buildScratch
}

// build grows the tree from the given sample indices and returns it. idx
// is copied into the scratch arena, so the caller's slice is untouched.
func (b *treeBuilder) build(idx []int) *tree {
	b.t = &tree{}
	if b.scratch == nil {
		b.scratch = newBuildScratch(b.params.Workers, len(b.features[0]))
	}
	b.scratch.arena = append(b.scratch.arena[:0], idx...)
	b.grow(b.scratch.arena, 0)
	return b.t
}

// grow recursively expands a node; returns its index in the node arena.
func (b *treeBuilder) grow(idx []int, depth int) int {
	self := len(b.t.nodes)
	b.t.nodes = append(b.t.nodes, node{feature: -1})

	var g, h float64
	for _, i := range idx {
		g += b.grad[i]
		h += b.hess[i]
	}
	// Newton leaf weight with L2 regularisation.
	b.t.nodes[self].value = -g / (h + b.params.Lambda)

	if depth >= b.params.MaxDepth || len(idx) < 2*b.params.MinSamplesLeaf {
		return self
	}
	best := b.bestSplit(idx, g, h)
	if !best.found || best.gain <= b.params.Gamma {
		return self
	}
	b.importance[best.feature] += best.gain

	// Partition in place: re-sorting the node's arena segment by the
	// winning feature applies the same comparator to the same sequence the
	// split search saw, hence produces the same permutation; slicing at
	// the split position then yields the children without copying.
	f := best.feature
	sort.Slice(idx, func(a, c int) bool {
		return b.features[idx[a]][f] < b.features[idx[c]][f]
	})
	left := b.grow(idx[:best.pos], depth+1)
	right := b.grow(idx[best.pos:], depth+1)
	b.t.nodes[self].feature = best.feature
	b.t.nodes[self].threshold = best.threshold
	b.t.nodes[self].left = left
	b.t.nodes[self].right = right
	return self
}

// bestSplit performs exact greedy split finding, fanning the per-feature
// scans out across workers. Each feature's scan keeps its first
// maximum-gain position (strict improvement over ascending positions);
// the sequential merge keeps the first maximum over ascending features.
// The winner is therefore the first candidate in lexicographic
// (feature, position) order attaining the global maximum gain — exactly
// what a sequential flat scan selects — at any worker count.
func (b *treeBuilder) bestSplit(idx []int, gTotal, hTotal float64) splitCandidate {
	numFeatures := len(b.features[0])
	lam := b.params.Lambda
	parentScore := gTotal * gTotal / (hTotal + lam)
	s := b.scratch
	cands := s.cands[:numFeatures]
	parallel.ForWorker(s.workers, numFeatures, func(w, f int) {
		order := s.order(w, len(idx))
		copy(order, idx)
		sort.Slice(order, func(a, c int) bool {
			return b.features[order[a]][f] < b.features[order[c]][f]
		})
		best := splitCandidate{feature: f}
		var gl, hl float64
		for pos := 0; pos < len(order)-1; pos++ {
			i := order[pos]
			gl += b.grad[i]
			hl += b.hess[i]
			v, next := b.features[i][f], b.features[order[pos+1]][f]
			if v == next {
				continue // can't split between equal values
			}
			nl := pos + 1
			nr := len(order) - nl
			if nl < b.params.MinSamplesLeaf || nr < b.params.MinSamplesLeaf {
				continue
			}
			gr := gTotal - gl
			hr := hTotal - hl
			gain := gl*gl/(hl+lam) + gr*gr/(hr+lam) - parentScore
			if !best.found || gain > best.gain {
				best.found = true
				best.threshold = (v + next) / 2
				best.gain = gain
				best.pos = nl
			}
		}
		cands[f] = best
	})
	var best splitCandidate
	for f := range cands {
		if cands[f].found && (!best.found || cands[f].gain > best.gain) {
			best = cands[f]
		}
	}
	return best
}

// validate sanity-checks a learned tree (used in tests).
func (t *tree) validate(numFeatures int) error {
	for i, n := range t.nodes {
		if n.feature >= numFeatures {
			return fmt.Errorf("gbdt: node %d references feature %d of %d", i, n.feature, numFeatures)
		}
		if n.feature >= 0 {
			if n.left <= i || n.right <= i || n.left >= len(t.nodes) || n.right >= len(t.nodes) {
				return fmt.Errorf("gbdt: node %d has invalid children %d/%d", i, n.left, n.right)
			}
		}
		if math.IsNaN(n.value) || math.IsInf(n.value, 0) {
			return fmt.Errorf("gbdt: node %d has non-finite value", i)
		}
	}
	return nil
}
