// Package gbdt implements gradient-boosted decision trees from scratch,
// the stand-in for XGBoost which the paper's CQC module uses to fuse crowd
// labels and questionnaire answers into a truthful label.
//
// The implementation follows the XGBoost formulation: each boosting round
// fits one regression tree per class to the first- and second-order
// gradients of the softmax cross-entropy objective, with exact greedy
// split finding, gain-based pruning (gamma), leaf-weight L2 regularisation
// (lambda), shrinkage, and optional row subsampling.
package gbdt

import (
	"fmt"
	"math"
	"sort"
)

// node is one tree node. Leaves have feature == -1.
type node struct {
	feature   int
	threshold float64
	left      int // index into tree.nodes
	right     int
	value     float64 // leaf weight
}

// tree is a regression tree over dense feature vectors.
type tree struct {
	nodes []node
}

// predict returns the leaf value for x.
func (t *tree) predict(x []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] < n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// splitCandidate is the best split found for a node.
type splitCandidate struct {
	feature   int
	threshold float64
	gain      float64
	// leftIdx/rightIdx partition the node's sample indices.
	leftIdx, rightIdx []int
}

// treeBuilder grows one tree on gradient/hessian targets.
type treeBuilder struct {
	features [][]float64 // row-major samples
	grad     []float64
	hess     []float64
	params   Params
	t        *tree
	// importance accumulates per-feature gain, reported by the classifier.
	importance []float64
}

// build grows the tree from the given sample indices and returns it.
func (b *treeBuilder) build(idx []int) *tree {
	b.t = &tree{}
	b.grow(idx, 0)
	return b.t
}

// grow recursively expands a node; returns its index in the node arena.
func (b *treeBuilder) grow(idx []int, depth int) int {
	self := len(b.t.nodes)
	b.t.nodes = append(b.t.nodes, node{feature: -1})

	var g, h float64
	for _, i := range idx {
		g += b.grad[i]
		h += b.hess[i]
	}
	// Newton leaf weight with L2 regularisation.
	b.t.nodes[self].value = -g / (h + b.params.Lambda)

	if depth >= b.params.MaxDepth || len(idx) < 2*b.params.MinSamplesLeaf {
		return self
	}
	best := b.bestSplit(idx, g, h)
	if best == nil || best.gain <= b.params.Gamma {
		return self
	}
	b.importance[best.feature] += best.gain

	left := b.grow(best.leftIdx, depth+1)
	right := b.grow(best.rightIdx, depth+1)
	b.t.nodes[self].feature = best.feature
	b.t.nodes[self].threshold = best.threshold
	b.t.nodes[self].left = left
	b.t.nodes[self].right = right
	return self
}

// bestSplit performs exact greedy split finding across all features.
func (b *treeBuilder) bestSplit(idx []int, gTotal, hTotal float64) *splitCandidate {
	numFeatures := len(b.features[0])
	lam := b.params.Lambda
	parentScore := gTotal * gTotal / (hTotal + lam)

	var best *splitCandidate
	order := make([]int, len(idx))
	for f := 0; f < numFeatures; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, c int) bool {
			return b.features[order[a]][f] < b.features[order[c]][f]
		})
		var gl, hl float64
		for pos := 0; pos < len(order)-1; pos++ {
			i := order[pos]
			gl += b.grad[i]
			hl += b.hess[i]
			v, next := b.features[i][f], b.features[order[pos+1]][f]
			if v == next {
				continue // can't split between equal values
			}
			nl := pos + 1
			nr := len(order) - nl
			if nl < b.params.MinSamplesLeaf || nr < b.params.MinSamplesLeaf {
				continue
			}
			gr := gTotal - gl
			hr := hTotal - hl
			gain := gl*gl/(hl+lam) + gr*gr/(hr+lam) - parentScore
			if best == nil || gain > best.gain {
				if best == nil {
					best = &splitCandidate{}
				}
				best.feature = f
				best.threshold = (v + next) / 2
				best.gain = gain
				best.leftIdx = append(best.leftIdx[:0], order[:nl]...)
				best.rightIdx = append(best.rightIdx[:0], order[nl:]...)
			}
		}
	}
	if best != nil {
		// Defensive copies: order is reused across features.
		best.leftIdx = append([]int(nil), best.leftIdx...)
		best.rightIdx = append([]int(nil), best.rightIdx...)
	}
	return best
}

// validate sanity-checks a learned tree (used in tests).
func (t *tree) validate(numFeatures int) error {
	for i, n := range t.nodes {
		if n.feature >= numFeatures {
			return fmt.Errorf("gbdt: node %d references feature %d of %d", i, n.feature, numFeatures)
		}
		if n.feature >= 0 {
			if n.left <= i || n.right <= i || n.left >= len(t.nodes) || n.right >= len(t.nodes) {
				return fmt.Errorf("gbdt: node %d has invalid children %d/%d", i, n.left, n.right)
			}
		}
		if math.IsNaN(n.value) || math.IsInf(n.value, 0) {
			return fmt.Errorf("gbdt: node %d has non-finite value", i)
		}
	}
	return nil
}
