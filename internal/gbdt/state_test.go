package gbdt

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	features, labels := threeClassDataset(20, 300)
	c, err := Train(features, labels, 3, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range features[:50] {
		a, b := c.Predict(x), restored.Predict(x)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("restored prediction differs at %v: %v vs %v", x, a, b)
			}
		}
	}
	if restored.NumTrees() != c.NumTrees() {
		t.Errorf("tree count changed: %d vs %d", restored.NumTrees(), c.NumTrees())
	}
	impA, impB := c.FeatureImportance(), restored.FeatureImportance()
	for i := range impA {
		if impA[i] != impB[i] {
			t.Error("feature importance changed across roundtrip")
		}
	}
}

func TestFromStateValidation(t *testing.T) {
	features, labels := xorDataset(21, 120)
	c, err := Train(features, labels, 2, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*State)
	}{
		{"bad classes", func(s *State) { s.NumClasses = 1 }},
		{"bad features", func(s *State) { s.NumFeatures = 0 }},
		{"no trees", func(s *State) { s.Trees = nil }},
		{"ragged round", func(s *State) { s.Trees[0] = s.Trees[0][:1] }},
		{"feature out of range", func(s *State) {
			// Point a split node at a nonexistent feature.
			for r := range s.Trees {
				for k := range s.Trees[r] {
					for i := range s.Trees[r][k].Nodes {
						if s.Trees[r][k].Nodes[i].Feature >= 0 {
							s.Trees[r][k].Nodes[i].Feature = 99
							return
						}
					}
				}
			}
		}},
		{"child cycle", func(s *State) {
			for r := range s.Trees {
				for k := range s.Trees[r] {
					for i := range s.Trees[r][k].Nodes {
						if s.Trees[r][k].Nodes[i].Feature >= 0 {
							s.Trees[r][k].Nodes[i].Left = 0
							return
						}
					}
				}
			}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := c.State()
			tt.mutate(&s)
			if _, err := FromState(s); err == nil {
				t.Errorf("%s should be rejected", tt.name)
			}
		})
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("garbage input must be rejected")
	}
}

func TestStateIsDeepCopy(t *testing.T) {
	features, labels := xorDataset(22, 100)
	c, err := Train(features, labels, 2, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := c.State()
	before := c.Predict(features[0])[0]
	for r := range s.Trees {
		for k := range s.Trees[r] {
			for i := range s.Trees[r][k].Nodes {
				s.Trees[r][k].Nodes[i].Value += 100
			}
		}
	}
	if after := c.Predict(features[0])[0]; after != before {
		t.Error("mutating the snapshot must not affect the live classifier")
	}
}
