package gbdt

import (
	"bytes"
	"sort"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

func parallelTrainingData(n, numFeatures, numClasses int) ([][]float64, []int) {
	rng := mathx.NewRand(123)
	features := make([][]float64, n)
	labels := make([]int, n)
	for i := range features {
		row := make([]float64, numFeatures)
		k := i % numClasses
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[k%numFeatures] += 1.5
		// Duplicate some feature values so equal-value split skipping is
		// exercised.
		if i%4 == 0 {
			row[0] = 0.5
		}
		features[i] = row
		labels[i] = k
	}
	return features, labels
}

// TestTrainBitIdenticalAcrossWorkers is the package-level equivalence
// contract: with a fixed seed the serialised model is byte-identical at
// any worker count. Per-feature split candidates merge in ascending
// feature order and per-sample updates own their index slots, so no
// floating-point computation is reordered.
func TestTrainBitIdenticalAcrossWorkers(t *testing.T) {
	features, labels := parallelTrainingData(90, 6, 3)
	for _, early := range []int{0, 4} {
		train := func(workers int) []byte {
			p := DefaultParams()
			p.Rounds = 12
			p.EarlyStoppingRounds = early
			p.Workers = workers
			c, err := Train(features, labels, 3, p)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			var buf bytes.Buffer
			if err := c.Save(&buf); err != nil {
				t.Fatalf("workers=%d: save: %v", workers, err)
			}
			return buf.Bytes()
		}
		want := train(1)
		for _, workers := range []int{2, 8} {
			if got := train(workers); !bytes.Equal(got, want) {
				t.Errorf("earlyStopping=%d workers=%d: serialised model differs from sequential", early, workers)
			}
		}
	}
}

// flatBestSplit re-implements the pre-parallel sequential flat scan over
// (feature, position) pairs; bestSplit must select the identical winner.
func flatBestSplit(b *treeBuilder, idx []int, gTotal, hTotal float64) splitCandidate {
	numFeatures := len(b.features[0])
	lam := b.params.Lambda
	parentScore := gTotal * gTotal / (hTotal + lam)
	var best splitCandidate
	order := make([]int, len(idx))
	for f := 0; f < numFeatures; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, c int) bool {
			return b.features[order[a]][f] < b.features[order[c]][f]
		})
		var gl, hl float64
		for pos := 0; pos < len(order)-1; pos++ {
			i := order[pos]
			gl += b.grad[i]
			hl += b.hess[i]
			v, next := b.features[i][f], b.features[order[pos+1]][f]
			if v == next {
				continue
			}
			nl := pos + 1
			if nl < b.params.MinSamplesLeaf || len(order)-nl < b.params.MinSamplesLeaf {
				continue
			}
			gr := gTotal - gl
			hr := hTotal - hl
			gain := gl*gl/(hl+lam) + gr*gr/(hr+lam) - parentScore
			if !best.found || gain > best.gain {
				best = splitCandidate{feature: f, threshold: (v + next) / 2, gain: gain, pos: nl, found: true}
			}
		}
	}
	return best
}

func TestBestSplitMatchesFlatScan(t *testing.T) {
	features, labels := parallelTrainingData(60, 5, 3)
	grad := make([]float64, len(features))
	hess := make([]float64, len(features))
	rng := mathx.NewRand(7)
	for i := range grad {
		grad[i] = rng.NormFloat64()
		hess[i] = 0.1 + rng.Float64()
	}
	_ = labels
	p := DefaultParams()
	for _, workers := range []int{1, 2, 8} {
		p.Workers = workers
		b := &treeBuilder{
			features:   features,
			grad:       grad,
			hess:       hess,
			params:     p,
			importance: make([]float64, 5),
			scratch:    newBuildScratch(p.Workers, 5),
		}
		idx := allIndices(len(features))
		var g, h float64
		for _, i := range idx {
			g += grad[i]
			h += hess[i]
		}
		got := b.bestSplit(idx, g, h)
		want := flatBestSplit(b, idx, g, h)
		if got != want {
			t.Errorf("workers=%d: bestSplit = %+v, flat scan = %+v", workers, got, want)
		}
	}
}

func TestStateIgnoresWorkers(t *testing.T) {
	features, labels := parallelTrainingData(40, 4, 2)
	p := DefaultParams()
	p.Rounds = 3
	p.Workers = 8
	c, err := Train(features, labels, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.State().Params.Workers; got != 0 {
		t.Fatalf("State carried Workers=%d, want 0", got)
	}
}
