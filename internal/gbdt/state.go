package gbdt

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// NodeState is the serialisable form of one tree node.
type NodeState struct {
	Feature   int
	Threshold float64
	Left      int
	Right     int
	Value     float64
}

// TreeState is the serialisable form of one regression tree.
type TreeState struct {
	Nodes []NodeState
}

// State is the serialisable form of a trained classifier.
type State struct {
	Params      Params
	NumClasses  int
	NumFeatures int
	// Trees[round][class].
	Trees      [][]TreeState
	Importance []float64
	BaseScore  []float64
}

// State captures the classifier.
func (c *Classifier) State() State {
	s := State{
		Params:      c.params,
		NumClasses:  c.numClasses,
		NumFeatures: c.numFeatures,
		Trees:       make([][]TreeState, len(c.trees)),
		Importance:  mathx.Clone(c.importance),
		BaseScore:   mathx.Clone(c.baseScore),
	}
	// Execution parallelism is not model state: a checkpoint taken at any
	// worker count must serialise identically.
	s.Params.Workers = 0
	for r, round := range c.trees {
		s.Trees[r] = make([]TreeState, len(round))
		for k, tr := range round {
			nodes := make([]NodeState, len(tr.nodes))
			for i, n := range tr.nodes {
				nodes[i] = NodeState{
					Feature:   n.feature,
					Threshold: n.threshold,
					Left:      n.left,
					Right:     n.right,
					Value:     n.value,
				}
			}
			s.Trees[r][k] = TreeState{Nodes: nodes}
		}
	}
	return s
}

// FromState reconstructs a classifier from a snapshot.
func FromState(s State) (*Classifier, error) {
	if s.NumClasses < 2 || s.NumFeatures <= 0 {
		return nil, fmt.Errorf("gbdt: invalid state shape classes=%d features=%d", s.NumClasses, s.NumFeatures)
	}
	if len(s.Trees) == 0 {
		return nil, errors.New("gbdt: state has no trees")
	}
	c := &Classifier{
		params:      s.Params,
		numClasses:  s.NumClasses,
		numFeatures: s.NumFeatures,
		importance:  mathx.Clone(s.Importance),
		baseScore:   mathx.Clone(s.BaseScore),
	}
	if c.baseScore == nil {
		c.baseScore = make([]float64, s.NumClasses)
	}
	if c.importance == nil {
		c.importance = make([]float64, s.NumFeatures)
	}
	c.trees = make([][]*tree, len(s.Trees))
	for r, round := range s.Trees {
		if len(round) != s.NumClasses {
			return nil, fmt.Errorf("gbdt: round %d has %d trees, want %d", r, len(round), s.NumClasses)
		}
		c.trees[r] = make([]*tree, len(round))
		for k, ts := range round {
			tr := &tree{nodes: make([]node, len(ts.Nodes))}
			for i, ns := range ts.Nodes {
				tr.nodes[i] = node{
					feature:   ns.Feature,
					threshold: ns.Threshold,
					left:      ns.Left,
					right:     ns.Right,
					value:     ns.Value,
				}
			}
			if err := tr.validate(s.NumFeatures); err != nil {
				return nil, fmt.Errorf("gbdt: state round %d class %d: %w", r, k, err)
			}
			c.trees[r][k] = tr
		}
	}
	return c, nil
}

// Save writes the classifier state to w using encoding/gob.
func (c *Classifier) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(c.State()); err != nil {
		return fmt.Errorf("gbdt: save: %w", err)
	}
	return nil
}

// Load reads a classifier previously written with Save.
func Load(r io.Reader) (*Classifier, error) {
	var s State
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("gbdt: load: %w", err)
	}
	return FromState(s)
}
