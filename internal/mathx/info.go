package mathx

import (
	"fmt"
	"math"
)

// epsilon guards log(0) in the information-theoretic helpers. The paper's
// committee-entropy and symmetric-KL computations both consume classifier
// output distributions that can contain exact zeros after normalization.
const epsilon = 1e-12

// Softmax writes the softmax of logits into dst and returns dst. If dst is
// nil a new slice is allocated. The computation is shifted by the maximum
// logit for numerical stability.
func Softmax(logits, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(logits))
	}
	if len(dst) != len(logits) {
		panic(fmt.Sprintf("mathx: softmax dst length %d != logits length %d", len(dst), len(logits)))
	}
	if len(logits) == 0 {
		return dst
	}
	m := Max(logits)
	var sum float64
	for i, z := range logits {
		e := math.Exp(z - m)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}

// LogSumExp returns log(sum_i exp(v[i])) computed stably.
func LogSumExp(v []float64) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	m := Max(v)
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, x := range v {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// Entropy returns the Shannon entropy (in nats) of the distribution p.
// Zero-probability entries contribute zero, matching the 0*log(0)=0
// convention. p is assumed normalized; callers aggregating committee votes
// should Normalize first (Definition 8 / Eq. 3 in the paper).
func Entropy(p []float64) float64 {
	var h float64
	for _, x := range p {
		if x > 0 {
			h -= x * math.Log(x)
		}
	}
	return h
}

// MaxEntropy returns the entropy of the uniform distribution over k
// outcomes, the upper bound for Entropy on any k-class distribution.
func MaxEntropy(k int) float64 {
	if k <= 1 {
		return 0
	}
	return math.Log(float64(k))
}

// KLDivergence returns D_KL(p || q) in nats. Both inputs are smoothed by a
// tiny epsilon so that q(i)=0 does not produce infinities; the paper maps
// divergences through a normalization delta anyway (Eq. 5).
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("mathx: KL length mismatch %d vs %d", len(p), len(q)))
	}
	var d float64
	for i, pi := range p {
		if pi <= 0 {
			continue
		}
		qi := q[i]
		if qi < epsilon {
			qi = epsilon
		}
		d += pi * math.Log(pi/qi)
	}
	if d < 0 {
		// Floating-point noise on nearly identical distributions.
		d = 0
	}
	return d
}

// SymmetricKL returns the symmetrised KL divergence
// (D_KL(p||q) + D_KL(q||p)) / 2 used by the MIC loss (Eq. 5).
func SymmetricKL(p, q []float64) float64 {
	return (KLDivergence(p, q) + KLDivergence(q, p)) / 2
}

// BoundedDivergence maps a non-negative divergence onto [0, 1) via
// d / (1 + d). This is the normalization delta in Eq. 5: identical
// distributions map to 0 and the image approaches 1 as the divergence
// grows, so 1 - delta(d) acts as an agreement score.
func BoundedDivergence(d float64) float64 {
	if d < 0 {
		d = 0
	}
	return d / (1 + d)
}

// CrossEntropy returns -sum_i p[i] log q[i] in nats with epsilon smoothing
// of q. It is the loss minimised by the neural-network substrate.
func CrossEntropy(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("mathx: cross-entropy length mismatch %d vs %d", len(p), len(q)))
	}
	var ce float64
	for i, pi := range p {
		if pi <= 0 {
			continue
		}
		qi := q[i]
		if qi < epsilon {
			qi = epsilon
		}
		ce -= pi * math.Log(qi)
	}
	return ce
}

// OneHot returns a length-k vector with a single 1 at index i.
func OneHot(k, i int) []float64 {
	if i < 0 || i >= k {
		panic(fmt.Sprintf("mathx: one-hot index %d out of range [0,%d)", i, k))
	}
	v := make([]float64, k)
	v[i] = 1
	return v
}

// Sigmoid returns the logistic function 1/(1+exp(-x)).
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
