package mathx

import "testing"

func BenchmarkSoftmax(b *testing.B) {
	logits := GaussianVector(NewRand(1), 32, 0, 2)
	dst := make([]float64, len(logits))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Softmax(logits, dst)
	}
}

func BenchmarkEntropy(b *testing.B) {
	p := Normalized(GaussianVector(NewRand(2), 32, 1, 0.1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Entropy(p)
	}
}

func BenchmarkSymmetricKL(b *testing.B) {
	rng := NewRand(3)
	p := Normalized(GaussianVector(rng, 32, 1, 0.1))
	q := Normalized(GaussianVector(rng, 32, 1, 0.1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SymmetricKL(p, q)
	}
}

func BenchmarkDot(b *testing.B) {
	rng := NewRand(4)
	x := GaussianVector(rng, 64, 0, 1)
	y := GaussianVector(rng, 64, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dot(x, y)
	}
}

func BenchmarkCategorical(b *testing.B) {
	rng := NewRand(5)
	w := []float64{1, 2, 3, 4, 5, 6, 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Categorical(rng, w)
	}
}
