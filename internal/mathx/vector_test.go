package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{name: "empty", a: nil, b: nil, want: 0},
		{name: "orthogonal", a: []float64{1, 0}, b: []float64{0, 1}, want: 0},
		{name: "basic", a: []float64{1, 2, 3}, b: []float64{4, 5, 6}, want: 32},
		{name: "negative", a: []float64{-1, 2}, b: []float64{3, -4}, want: -11},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dot(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths should panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAddScaled(t *testing.T) {
	dst := []float64{1, 2, 3}
	AddScaled(dst, 2, []float64{10, 20, 30})
	want := []float64{21, 42, 63}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AddScaled result %v, want %v", dst, want)
		}
	}
}

func TestSumMeanVariance(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Sum(v); got != 40 {
		t.Errorf("Sum = %v, want 40", got)
	}
	if got := Mean(v); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(v); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(v); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance(single) = %v, want 0", got)
	}
}

func TestMinMaxArg(t *testing.T) {
	v := []float64{3, -1, 7, 7, 0}
	if got := Min(v); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(v); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if got := ArgMax(v); got != 2 {
		t.Errorf("ArgMax = %v, want 2 (first of tie)", got)
	}
	if got := ArgMin(v); got != 1 {
		t.Errorf("ArgMin = %v, want 1", got)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		x, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v, %v, %v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{1, 3}
	Normalize(v)
	if !almostEqual(v[0], 0.25, 1e-12) || !almostEqual(v[1], 0.75, 1e-12) {
		t.Errorf("Normalize = %v, want [0.25 0.75]", v)
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	v := []float64{0, 0, 0, 0}
	Normalize(v)
	for _, x := range v {
		if !almostEqual(x, 0.25, 1e-12) {
			t.Fatalf("Normalize of zero vector should be uniform, got %v", v)
		}
	}
	w := []float64{math.NaN(), 1}
	Normalize(w)
	if !almostEqual(w[0], 0.5, 1e-12) {
		t.Fatalf("Normalize of NaN vector should be uniform, got %v", w)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := []float64{1, 2}
	b := Clone(a)
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone must not alias the input")
	}
	if Clone(nil) != nil {
		t.Fatal("Clone(nil) must be nil")
	}
}

func TestL2NormL1Distance(t *testing.T) {
	if got := L2Norm([]float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("L2Norm = %v, want 5", got)
	}
	if got := L1Distance([]float64{1, 2}, []float64{4, -2}); !almostEqual(got, 7, 1e-12) {
		t.Errorf("L1Distance = %v, want 7", got)
	}
}

// Property: normalization always produces a probability vector.
func TestNormalizedIsDistributionProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v[i] = math.Abs(x)
		}
		out := Normalized(v)
		sum := 0.0
		for _, x := range out {
			if x < 0 || math.IsNaN(x) {
				return false
			}
			sum += x
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric.
func TestDotSymmetryProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		for i := 0; i < n; i++ {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
			// Keep magnitudes small to avoid float reassociation noise.
			a[i] = math.Mod(a[i], 1e3)
			b[i] = math.Mod(b[i], 1e3)
		}
		return almostEqual(Dot(a, b), Dot(b, a), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
