package mathx

import (
	"math"
	"math/rand"
	"time"
)

// ExpBackoff is the shared exponential-growth curve behind every
// backoff in the repository: base * factor^attempt, capped at max
// (max <= 0 means uncapped). The incentive-requery path (core's
// RecoveryConfig) and the supervised runtime's restart and breaker
// policies all price their retries off this one function so the
// growth law cannot drift between subsystems.
func ExpBackoff(base, factor, max float64, attempt int) float64 {
	if attempt < 0 {
		attempt = 0
	}
	v := base * math.Pow(factor, float64(attempt))
	if max > 0 && v > max {
		v = max
	}
	return v
}

// Backoff yields a deterministic seeded exponential-backoff-with-jitter
// delay sequence: attempt n draws ExpBackoff(base, factor, max, n)
// scaled by a seeded jitter factor in ((1-jitter), 1]. The jitter draws
// come from the instance's own generator, so a given (seed, call
// history) always reproduces the same delays — restart storms stay
// de-synchronised across campaigns (different seeds) while every
// individual schedule replays exactly.
type Backoff struct {
	base    time.Duration
	factor  float64
	max     time.Duration
	jitter  float64
	rng     *rand.Rand
	attempt int
}

// NewBackoff builds a seeded backoff schedule. factor < 1 is raised to
// 1 (no decay), jitter is clamped to [0, 1), and max <= 0 disables the
// cap.
func NewBackoff(base time.Duration, factor float64, max time.Duration, jitter float64, seed int64) *Backoff {
	if factor < 1 {
		factor = 1
	}
	if jitter < 0 {
		jitter = 0
	}
	if jitter >= 1 {
		jitter = math.Nextafter(1, 0)
	}
	return &Backoff{
		base:   base,
		factor: factor,
		max:    max,
		jitter: jitter,
		rng:    NewRand(seed),
	}
}

// Next returns the delay before the next attempt and advances the
// schedule.
func (b *Backoff) Next() time.Duration {
	d := ExpBackoff(float64(b.base), b.factor, float64(b.max), b.attempt)
	b.attempt++
	if b.jitter > 0 {
		d *= 1 - b.jitter*b.rng.Float64()
	}
	return time.Duration(d)
}

// Reset rewinds the growth curve to attempt zero after a period of
// health. The jitter stream is not rewound: delays stay deterministic
// as a function of the seed and the full call history, not of when
// resets happened.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt reports how many delays have been drawn since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }
