// Package mathx provides the small numeric toolkit shared by every
// CrowdLearn subsystem: dense vector and matrix helpers, the softmax
// family, information-theoretic quantities (entropy, KL divergence), and
// deterministic random-number utilities.
//
// All functions operate on plain []float64 slices so callers never pay for
// wrapper types on hot paths. Functions that logically return a vector
// accept an optional destination to allow allocation-free reuse where it
// matters (classifier inference inside sensing-cycle loops).
package mathx

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
// It panics if the lengths differ; mismatched dimensions are a programming
// error, not a runtime condition.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mathx: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AddScaled computes dst[i] += alpha * src[i] in place.
func AddScaled(dst []float64, alpha float64, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mathx: addScaled length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += alpha * v
	}
}

// Scale multiplies every element of v by alpha in place.
func Scale(v []float64, alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Fill sets every element of v to x.
func Fill(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}

// Clone returns a copy of v. A nil input yields a nil output.
func Clone(v []float64) []float64 {
	if v == nil {
		return nil
	}
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Sum returns the sum of the elements of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Variance returns the population variance of v, or 0 for fewer than two
// elements.
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 {
	return math.Sqrt(Variance(v))
}

// Min returns the smallest element of v. It panics on an empty slice.
func Min(v []float64) float64 {
	if len(v) == 0 {
		panic("mathx: Min of empty slice")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of v. It panics on an empty slice.
func Max(v []float64) float64 {
	if len(v) == 0 {
		panic("mathx: Max of empty slice")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the largest element, breaking ties toward the
// lower index. It panics on an empty slice.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		panic("mathx: ArgMax of empty slice")
	}
	best := 0
	for i, x := range v[1:] {
		if x > v[best] {
			best = i + 1
		}
	}
	return best
}

// ArgMin returns the index of the smallest element, breaking ties toward
// the lower index. It panics on an empty slice.
func ArgMin(v []float64) int {
	if len(v) == 0 {
		panic("mathx: ArgMin of empty slice")
	}
	best := 0
	for i, x := range v[1:] {
		if x < v[best] {
			best = i + 1
		}
	}
	return best
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// L2Norm returns the Euclidean norm of v.
func L2Norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// L1Distance returns the Manhattan distance between a and b.
func L1Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mathx: l1 length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += math.Abs(v - b[i])
	}
	return s
}

// Normalize scales v in place so its elements sum to one. If the sum is not
// positive the vector is replaced by the uniform distribution, which is the
// safe fallback for aggregating degenerate committee votes.
func Normalize(v []float64) {
	s := Sum(v)
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		Fill(v, 1/float64(len(v)))
		return
	}
	Scale(v, 1/s)
}

// Normalized returns a fresh normalized copy of v (see Normalize).
func Normalized(v []float64) []float64 {
	out := Clone(v)
	Normalize(out)
	return out
}
