package mathx

import "math/rand"

// CountingSource wraps the standard deterministic source and counts how
// many values have been drawn from it, which makes a random stream's
// position part of checkpointable state: reconstructing the generator
// with NewCountedRand(seed) and calling Skip(pos) reproduces it exactly
// as it stood after pos draws.
//
// Counting at the Source level is exact: every math/rand.Rand method
// bottoms out in Int63/Uint64 calls on its Source, and each such call
// advances the underlying generator by exactly one step.
type CountingSource struct {
	src rand.Source64
	pos uint64
}

var _ rand.Source64 = (*CountingSource)(nil)

// NewCountedRand returns a deterministic generator seeded like NewRand,
// along with the counting source that tracks its draw position.
func NewCountedRand(seed int64) (*rand.Rand, *CountingSource) {
	src := &CountingSource{src: rand.NewSource(seed).(rand.Source64)}
	return rand.New(src), src
}

// Int63 implements rand.Source.
func (s *CountingSource) Int63() int64 {
	s.pos++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *CountingSource) Uint64() uint64 {
	s.pos++
	return s.src.Uint64()
}

// Seed implements rand.Source and resets the position to zero.
func (s *CountingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.pos = 0
}

// Pos reports how many values have been drawn since the last seed.
func (s *CountingSource) Pos() uint64 { return s.pos }

// Skip fast-forwards the stream by n draws without handing the values
// to anyone — the restore half of the Pos/Skip checkpoint contract.
func (s *CountingSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.pos += n
}
