package mathx

import (
	"math"
	"testing"
)

func TestNewRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	base := NewRand(1)
	child := Split(base)
	// Drawing from the child must not change what an identically seeded
	// parent produces after its own split.
	base2 := NewRand(1)
	child2 := Split(base2)
	for i := 0; i < 10; i++ {
		child.Float64()
	}
	if base.Int63() != base2.Int63() {
		t.Fatal("child draws must not perturb the parent stream")
	}
	_ = child2
}

func TestGaussianVectorMoments(t *testing.T) {
	rng := NewRand(3)
	v := GaussianVector(rng, 20000, 2.0, 0.5)
	if m := Mean(v); math.Abs(m-2.0) > 0.02 {
		t.Errorf("sample mean %v too far from 2.0", m)
	}
	if s := StdDev(v); math.Abs(s-0.5) > 0.02 {
		t.Errorf("sample std %v too far from 0.5", s)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	rng := NewRand(4)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	freq := float64(hits) / float64(n)
	if math.Abs(freq-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) frequency %v", freq)
	}
}

func TestCategoricalDistribution(t *testing.T) {
	rng := NewRand(5)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	n := 30000
	for i := 0; i < n; i++ {
		counts[Categorical(rng, w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight arm sampled %d times", counts[1])
	}
	f0 := float64(counts[0]) / float64(n)
	if math.Abs(f0-0.25) > 0.02 {
		t.Errorf("arm0 frequency %v, want ~0.25", f0)
	}
}

func TestCategoricalPanicsOnZeroWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Categorical with no positive weight should panic")
		}
	}()
	Categorical(NewRand(1), []float64{0, 0})
}

func TestExponentialMean(t *testing.T) {
	rng := NewRand(6)
	var s float64
	n := 50000
	for i := 0; i < n; i++ {
		x := Exponential(rng, 4.0)
		if x < 0 {
			t.Fatal("exponential draw must be non-negative")
		}
		s += x
	}
	if m := s / float64(n); math.Abs(m-4.0) > 0.1 {
		t.Errorf("exponential sample mean %v, want ~4", m)
	}
	if Exponential(rng, 0) != 0 {
		t.Error("Exponential with non-positive mean must be 0")
	}
}

func TestBetaMoments(t *testing.T) {
	rng := NewRand(7)
	a, b := 8.0, 2.0
	var s float64
	n := 30000
	for i := 0; i < n; i++ {
		x := Beta(rng, a, b)
		if x < 0 || x > 1 {
			t.Fatalf("Beta draw %v outside [0,1]", x)
		}
		s += x
	}
	if m := s / float64(n); math.Abs(m-0.8) > 0.01 {
		t.Errorf("Beta(8,2) sample mean %v, want ~0.8", m)
	}
}

func TestGammaMean(t *testing.T) {
	rng := NewRand(8)
	for _, shape := range []float64{0.5, 1, 2.5, 7} {
		var s float64
		n := 30000
		for i := 0; i < n; i++ {
			s += Gamma(rng, shape)
		}
		if m := s / float64(n); math.Abs(m-shape) > 0.1*shape+0.05 {
			t.Errorf("Gamma(%v) sample mean %v", shape, m)
		}
	}
	if Gamma(rng, 0) != 0 {
		t.Error("Gamma with non-positive shape must be 0")
	}
}

func TestLogNormalPositive(t *testing.T) {
	rng := NewRand(9)
	for i := 0; i < 1000; i++ {
		if LogNormal(rng, 1, 0.5) <= 0 {
			t.Fatal("LogNormal draws must be positive")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewRand(10)
	p := Perm(rng, 50)
	seen := make([]bool, 50)
	for _, i := range p {
		if i < 0 || i >= 50 || seen[i] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[i] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	rng := NewRand(11)
	idx := []int{1, 2, 3, 4, 5}
	sum := 0
	Shuffle(rng, idx)
	for _, v := range idx {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("Shuffle lost elements: %v", idx)
	}
}
