package mathx

import (
	"math/rand"
	"testing"
)

// A counted generator must be value-identical to a plain NewRand with
// the same seed — counting must not perturb the stream.
func TestCountedRandMatchesNewRand(t *testing.T) {
	plain := NewRand(42)
	counted, src := NewCountedRand(42)
	for i := 0; i < 1000; i++ {
		if a, b := plain.Int63(), counted.Int63(); a != b {
			t.Fatalf("draw %d: plain %d counted %d", i, a, b)
		}
	}
	if src.Pos() != 1000 {
		t.Fatalf("Pos() = %d, want 1000", src.Pos())
	}
}

// Skip(pos) on a fresh same-seed generator must land exactly where the
// original stream stands, across the mix of Rand methods the system
// actually uses (Float64, Intn, NormFloat64, Perm).
func TestSkipReproducesPosition(t *testing.T) {
	orig, origSrc := NewCountedRand(7)
	for i := 0; i < 50; i++ {
		orig.Float64()
		orig.Intn(17)
		orig.NormFloat64()
		orig.Perm(9)
	}

	replica, replicaSrc := NewCountedRand(7)
	replicaSrc.Skip(origSrc.Pos())
	if replicaSrc.Pos() != origSrc.Pos() {
		t.Fatalf("positions diverge: %d vs %d", replicaSrc.Pos(), origSrc.Pos())
	}
	for i := 0; i < 200; i++ {
		if a, b := orig.Int63(), replica.Int63(); a != b {
			t.Fatalf("post-skip draw %d: orig %d replica %d", i, a, b)
		}
	}
}

// NormFloat64 and ExpFloat64 may consume a variable number of source
// values per call; the counter must track the true consumption, not an
// estimate. Verified by replaying the counted stream on a raw source.
func TestPosCountsTrueSourceConsumption(t *testing.T) {
	counted, src := NewCountedRand(3)
	for i := 0; i < 500; i++ {
		counted.NormFloat64()
		counted.ExpFloat64()
	}
	raw := rand.NewSource(3).(rand.Source64)
	for i := uint64(0); i < src.Pos(); i++ {
		raw.Uint64()
	}
	// After consuming exactly Pos() values the raw source must produce
	// the same next value as the counted one.
	if a, b := raw.Uint64(), counted.Uint64(); a != b {
		t.Fatalf("raw source after Pos() draws diverges: %d vs %d", a, b)
	}
}

// Counted Perm draws must match plain Perm draws so existing seeded
// behaviour (expert shuffles, replay batches) is unchanged.
func TestCountedPermMatchesPlain(t *testing.T) {
	plain := NewRand(11)
	counted, _ := NewCountedRand(11)
	for i := 0; i < 20; i++ {
		a, b := plain.Perm(31), counted.Perm(31)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("perm %d index %d: %d vs %d", i, j, a[j], b[j])
			}
		}
	}
}
