package mathx

import (
	"math"
	"testing"
	"time"
)

func TestExpBackoff(t *testing.T) {
	cases := []struct {
		base, factor, max float64
		attempt           int
		want              float64
	}{
		{10, 1.5, 20, 0, 10},
		{10, 1.5, 20, 1, 15},
		{10, 1.5, 20, 2, 20},  // 22.5 capped
		{10, 1.5, 20, 10, 20}, // deep attempts stay capped
		{10, 1.5, 0, 2, 22.5}, // max <= 0: uncapped
		{10, 1.5, 20, -3, 10}, // negative attempts clamp to zero
		{0.25, 2, 30, 3, 2},   // duration-style seconds
		{5, 1, 20, 7, 5},      // factor 1: constant
	}
	for _, c := range cases {
		got := ExpBackoff(c.base, c.factor, c.max, c.attempt)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ExpBackoff(%v, %v, %v, %d) = %v, want %v",
				c.base, c.factor, c.max, c.attempt, got, c.want)
		}
	}
}

// TestBackoffPinnedSequences pins the exact jittered delay sequences per
// seed. The supervised runtime's restart policy and circuit breaker both
// schedule off these draws; a change here silently breaks byte-identical
// replay of recorded failure timelines, so the values are frozen.
func TestBackoffPinnedSequences(t *testing.T) {
	cases := []struct {
		seed int64
		want []time.Duration
	}{
		{1, []time.Duration{219766985, 405949091, 867087989, 1824914325, 3660290002, 6901083083}},
		{7, []time.Duration{204055392, 476849282, 951722486, 1635375130, 3441411564, 7766150482}},
		{42, []time.Duration{231348581, 493399950, 879181229, 1916472518, 3964945233, 7386890720}},
	}
	for _, c := range cases {
		b := NewBackoff(250*time.Millisecond, 2, 30*time.Second, 0.2, c.seed)
		for i, want := range c.want {
			if got := b.Next(); got != want {
				t.Errorf("seed %d attempt %d: Next() = %d, want %d", c.seed, i, got, want)
			}
		}
	}
}

func TestBackoffNoJitter(t *testing.T) {
	b := NewBackoff(250*time.Millisecond, 2, 30*time.Second, 0, 99)
	want := []time.Duration{
		250 * time.Millisecond, 500 * time.Millisecond, time.Second,
		2 * time.Second, 4 * time.Second, 8 * time.Second,
		16 * time.Second, 30 * time.Second, 30 * time.Second,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Errorf("attempt %d: Next() = %v, want %v", i, got, w)
		}
	}
}

// TestBackoffReset pins that Reset rewinds the growth curve but not the
// jitter stream: post-reset delays restart from the base yet keep
// consuming the same seeded draw sequence.
func TestBackoffReset(t *testing.T) {
	b := NewBackoff(time.Second, 1.5, 10*time.Second, 0.5, 5)
	want := []time.Duration{598077585, 1110285564, 1148191237}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("attempt %d: Next() = %d, want %d", i, got, w)
		}
	}
	if b.Attempt() != 3 {
		t.Fatalf("Attempt() = %d, want 3", b.Attempt())
	}
	b.Reset()
	if b.Attempt() != 0 {
		t.Fatalf("Attempt() after Reset = %d, want 0", b.Attempt())
	}
	after := []time.Duration{701625555, 1140470701}
	for i, w := range after {
		if got := b.Next(); got != w {
			t.Errorf("post-reset attempt %d: Next() = %d, want %d", i, got, w)
		}
	}
}

// TestBackoffDeterministic: two instances with the same seed produce the
// same sequence; different seeds diverge.
func TestBackoffDeterministic(t *testing.T) {
	a := NewBackoff(250*time.Millisecond, 2, 30*time.Second, 0.3, 11)
	b := NewBackoff(250*time.Millisecond, 2, 30*time.Second, 0.3, 11)
	c := NewBackoff(250*time.Millisecond, 2, 30*time.Second, 0.3, 12)
	diverged := false
	for i := 0; i < 16; i++ {
		av, bv, cv := a.Next(), b.Next(), c.Next()
		if av != bv {
			t.Fatalf("attempt %d: same seed diverged: %d vs %d", i, av, bv)
		}
		if av != cv {
			diverged = true
		}
	}
	if !diverged {
		t.Error("seeds 11 and 12 produced identical 16-draw sequences")
	}
}

// TestBackoffJitterBounds: every jittered delay stays within
// ((1-jitter)*curve, curve] of the unjittered curve.
func TestBackoffJitterBounds(t *testing.T) {
	const jitter = 0.4
	b := NewBackoff(100*time.Millisecond, 2, 5*time.Second, jitter, 3)
	for i := 0; i < 12; i++ {
		curve := ExpBackoff(100e6, 2, 5e9, i)
		got := float64(b.Next())
		if got > curve || got <= curve*(1-jitter)-1 {
			t.Errorf("attempt %d: delay %v outside (%v, %v]", i, got, curve*(1-jitter), curve)
		}
	}
}

func TestBackoffClamping(t *testing.T) {
	// factor < 1 is raised to 1; jitter >= 1 is pulled under 1 so delays
	// never reach zero.
	b := NewBackoff(time.Second, 0.5, 0, 2, 8)
	for i := 0; i < 8; i++ {
		d := b.Next()
		if d <= 0 || d > time.Second {
			t.Fatalf("attempt %d: delay %v outside (0, 1s]", i, d)
		}
	}
}
