package mathx

import (
	"math"
	"math/rand"
)

// NewRand returns a deterministic generator for the given seed. Every
// stochastic component in the repository receives its generator through
// dependency injection so experiments are exactly reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Split derives an independent generator from rng. Components that fan out
// work (one generator per worker, per classifier, per cycle) split rather
// than share so that changing the draw count in one component does not
// perturb another component's stream.
func Split(rng *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(rng.Int63()))
}

// GaussianVector fills a length-n vector with N(mean, std^2) draws.
func GaussianVector(rng *rand.Rand, n int, mean, std float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = mean + std*rng.NormFloat64()
	}
	return v
}

// AddGaussianNoise perturbs v in place with independent N(0, std^2) noise.
func AddGaussianNoise(rng *rand.Rand, v []float64, std float64) {
	for i := range v {
		v[i] += std * rng.NormFloat64()
	}
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// Categorical samples an index from the (not necessarily normalized)
// non-negative weight vector w. It panics if all weights are zero or
// negative.
func Categorical(rng *rand.Rand, w []float64) int {
	total := 0.0
	for _, x := range w {
		if x > 0 {
			total += x
		}
	}
	if total <= 0 {
		panic("mathx: Categorical requires a positive weight")
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, x := range w {
		if x <= 0 {
			continue
		}
		acc += x
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}

// Exponential samples from the exponential distribution with the given
// mean. The crowd simulator uses it for inter-arrival and service times.
func Exponential(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return rng.ExpFloat64() * mean
}

// LogNormal samples a log-normal variate given the mean and standard
// deviation of the underlying normal. Crowd response delays are heavy
// tailed, which log-normal captures better than exponential alone.
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// Beta samples from the Beta(a, b) distribution via two gamma draws.
// Worker reliabilities in the crowd model follow Beta distributions.
func Beta(rng *rand.Rand, a, b float64) float64 {
	x := Gamma(rng, a)
	y := Gamma(rng, b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Gamma samples from the Gamma(shape, 1) distribution using the
// Marsaglia–Tsang method, with the standard shape<1 boost.
func Gamma(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return Gamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Shuffle permutes idx in place.
func Shuffle(rng *rand.Rand, idx []int) {
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}

// Perm returns a random permutation of [0, n).
func Perm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}
