package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSoftmaxBasic(t *testing.T) {
	p := Softmax([]float64{0, 0, 0}, nil)
	for _, x := range p {
		if !almostEqual(x, 1.0/3.0, 1e-12) {
			t.Fatalf("uniform logits must give uniform softmax, got %v", p)
		}
	}
	p = Softmax([]float64{1000, 0}, nil)
	if !almostEqual(p[0], 1, 1e-9) {
		t.Fatalf("softmax must be stable under large logits, got %v", p)
	}
	p = Softmax([]float64{-1000, -1000}, nil)
	if !almostEqual(p[0], 0.5, 1e-9) {
		t.Fatalf("softmax must be stable under very negative logits, got %v", p)
	}
}

func TestSoftmaxDstReuse(t *testing.T) {
	dst := make([]float64, 3)
	out := Softmax([]float64{1, 2, 3}, dst)
	if &out[0] != &dst[0] {
		t.Fatal("Softmax must reuse the provided destination")
	}
	if !almostEqual(Sum(out), 1, 1e-12) {
		t.Fatalf("softmax must sum to 1, got %v", Sum(out))
	}
	if ArgMax(out) != 2 {
		t.Fatalf("softmax must preserve argmax, got %v", out)
	}
}

func TestLogSumExp(t *testing.T) {
	v := []float64{math.Log(1), math.Log(2), math.Log(3)}
	if got := LogSumExp(v); !almostEqual(got, math.Log(6), 1e-12) {
		t.Errorf("LogSumExp = %v, want log 6", got)
	}
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(empty) = %v, want -Inf", got)
	}
	if got := LogSumExp([]float64{1e4, 1e4}); !almostEqual(got, 1e4+math.Log(2), 1e-6) {
		t.Errorf("LogSumExp must be overflow-safe, got %v", got)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{1, 0, 0}); got != 0 {
		t.Errorf("Entropy(deterministic) = %v, want 0", got)
	}
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	if got := Entropy(uniform); !almostEqual(got, math.Log(4), 1e-12) {
		t.Errorf("Entropy(uniform4) = %v, want log 4", got)
	}
	if got := MaxEntropy(4); !almostEqual(got, math.Log(4), 1e-12) {
		t.Errorf("MaxEntropy(4) = %v, want log 4", got)
	}
	if got := MaxEntropy(1); got != 0 {
		t.Errorf("MaxEntropy(1) = %v, want 0", got)
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	if got := KLDivergence(p, p); got != 0 {
		t.Errorf("KL(p||p) = %v, want 0", got)
	}
	q := []float64{0.9, 0.1}
	want := 0.5*math.Log(0.5/0.9) + 0.5*math.Log(0.5/0.1)
	if got := KLDivergence(p, q); !almostEqual(got, want, 1e-12) {
		t.Errorf("KL = %v, want %v", got, want)
	}
	// A zero in q must not produce +Inf thanks to smoothing.
	if got := KLDivergence([]float64{1, 0}, []float64{0, 1}); math.IsInf(got, 1) {
		t.Error("KL with zero support overlap must stay finite")
	}
}

func TestSymmetricKLSymmetry(t *testing.T) {
	p := []float64{0.7, 0.2, 0.1}
	q := []float64{0.1, 0.3, 0.6}
	if got, got2 := SymmetricKL(p, q), SymmetricKL(q, p); !almostEqual(got, got2, 1e-12) {
		t.Errorf("SymmetricKL not symmetric: %v vs %v", got, got2)
	}
}

func TestBoundedDivergence(t *testing.T) {
	if got := BoundedDivergence(0); got != 0 {
		t.Errorf("BoundedDivergence(0) = %v, want 0", got)
	}
	if got := BoundedDivergence(-1); got != 0 {
		t.Errorf("BoundedDivergence(-1) = %v, want 0 (clamped)", got)
	}
	if got := BoundedDivergence(1); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("BoundedDivergence(1) = %v, want 0.5", got)
	}
	if got := BoundedDivergence(1e9); got >= 1 {
		t.Errorf("BoundedDivergence must stay below 1, got %v", got)
	}
}

func TestCrossEntropyVsEntropy(t *testing.T) {
	p := []float64{0.6, 0.4}
	// CE(p, p) == H(p).
	if ce, h := CrossEntropy(p, p), Entropy(p); !almostEqual(ce, h, 1e-9) {
		t.Errorf("CE(p,p)=%v must equal H(p)=%v", ce, h)
	}
	// Gibbs: CE(p, q) >= H(p).
	q := []float64{0.1, 0.9}
	if ce, h := CrossEntropy(p, q), Entropy(p); ce < h {
		t.Errorf("CE(p,q)=%v must be >= H(p)=%v", ce, h)
	}
}

func TestOneHot(t *testing.T) {
	v := OneHot(3, 1)
	if v[0] != 0 || v[1] != 1 || v[2] != 0 {
		t.Fatalf("OneHot(3,1) = %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("OneHot out of range should panic")
		}
	}()
	OneHot(3, 3)
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Sigmoid(0) = %v, want 0.5", got)
	}
	if got := Sigmoid(100); !almostEqual(got, 1, 1e-9) {
		t.Errorf("Sigmoid(100) = %v, want ~1", got)
	}
	if got := Sigmoid(-100); !almostEqual(got, 0, 1e-9) {
		t.Errorf("Sigmoid(-100) = %v, want ~0", got)
	}
	// Symmetry: sigmoid(-x) = 1 - sigmoid(x).
	for _, x := range []float64{0.3, 1.7, 5} {
		if got := Sigmoid(-x) + Sigmoid(x); !almostEqual(got, 1, 1e-12) {
			t.Errorf("Sigmoid symmetry broken at %v: %v", x, got)
		}
	}
}

func randomDistribution(rng *rand.Rand, k int) []float64 {
	v := make([]float64, k)
	for i := range v {
		v[i] = rng.Float64() + 1e-6
	}
	Normalize(v)
	return v
}

// Property: entropy of any distribution lies in [0, log k].
func TestEntropyBoundsProperty(t *testing.T) {
	rng := NewRand(7)
	for i := 0; i < 500; i++ {
		k := 2 + rng.Intn(8)
		p := randomDistribution(rng, k)
		h := Entropy(p)
		if h < -1e-12 || h > MaxEntropy(k)+1e-9 {
			t.Fatalf("entropy %v outside [0, %v] for %v", h, MaxEntropy(k), p)
		}
	}
}

// Property: KL divergence is non-negative (Gibbs' inequality).
func TestKLNonNegativeProperty(t *testing.T) {
	rng := NewRand(11)
	for i := 0; i < 500; i++ {
		k := 2 + rng.Intn(8)
		p := randomDistribution(rng, k)
		q := randomDistribution(rng, k)
		if d := KLDivergence(p, q); d < 0 {
			t.Fatalf("KL negative: %v for p=%v q=%v", d, p, q)
		}
		if d := SymmetricKL(p, q); d < 0 {
			t.Fatalf("SymmetricKL negative: %v", d)
		}
	}
}

// Property: softmax output is a valid distribution for any finite logits.
func TestSoftmaxDistributionProperty(t *testing.T) {
	f := func(logits []float64) bool {
		if len(logits) == 0 {
			return true
		}
		for i := range logits {
			if math.IsNaN(logits[i]) || math.IsInf(logits[i], 0) {
				logits[i] = 0
			}
			logits[i] = math.Mod(logits[i], 50)
		}
		p := Softmax(logits, nil)
		sum := 0.0
		for _, x := range p {
			if x < 0 || x > 1 || math.IsNaN(x) {
				return false
			}
			sum += x
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
