package qss

import (
	"math"
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// stubExpert returns a fixed distribution per image based on a function.
type stubExpert struct {
	name string
	fn   func(im *imagery.Image) []float64
}

func (s *stubExpert) Name() string                        { return s.name }
func (s *stubExpert) Train([]classifier.Sample) error     { return nil }
func (s *stubExpert) Update([]classifier.Sample) error    { return nil }
func (s *stubExpert) Predict(im *imagery.Image) []float64 { return s.fn(im) }
func (s *stubExpert) PerImageCost() time.Duration         { return time.Second }
func (s *stubExpert) Clone() classifier.Expert            { cp := *s; return &cp }

var _ classifier.Expert = (*stubExpert)(nil)

func constExpert(name string, dist []float64) *stubExpert {
	return &stubExpert{name: name, fn: func(*imagery.Image) []float64 { return mathx.Clone(dist) }}
}

func images(n int) []*imagery.Image {
	out := make([]*imagery.Image, n)
	for i := range out {
		out[i] = &imagery.Image{ID: i}
	}
	return out
}

func TestNewCommitteeValidation(t *testing.T) {
	if _, err := NewCommittee(); err == nil {
		t.Error("empty committee must be rejected")
	}
}

func TestCommitteeUniformInitialWeights(t *testing.T) {
	c, err := NewCommittee(constExpert("a", []float64{1, 0, 0}), constExpert("b", []float64{0, 1, 0}))
	if err != nil {
		t.Fatal(err)
	}
	w := c.Weights()
	if w[0] != 0.5 || w[1] != 0.5 {
		t.Errorf("initial weights %v, want uniform", w)
	}
	if c.Size() != 2 {
		t.Errorf("Size = %d", c.Size())
	}
}

func TestCommitteeVoteEquation2(t *testing.T) {
	// Two experts with known distributions and weights 0.75/0.25:
	// rho = 0.75*[1,0,0] + 0.25*[0,1,0] = [0.75, 0.25, 0].
	c, err := NewCommittee(constExpert("a", []float64{1, 0, 0}), constExpert("b", []float64{0, 1, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetWeights([]float64{0.75, 0.25}); err != nil {
		t.Fatal(err)
	}
	v := c.Vote(&imagery.Image{})
	want := []float64{0.75, 0.25, 0}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatalf("Vote = %v, want %v", v, want)
		}
	}
	if got := c.Classify(&imagery.Image{}); got != imagery.NoDamage {
		t.Errorf("Classify = %v, want no-damage", got)
	}
}

func TestSetWeightsValidation(t *testing.T) {
	c, _ := NewCommittee(constExpert("a", []float64{1, 0, 0}))
	if err := c.SetWeights([]float64{0.5, 0.5}); err == nil {
		t.Error("wrong weight count must error")
	}
	if err := c.SetWeights([]float64{-1}); err == nil {
		t.Error("negative weight must error")
	}
	// Weights renormalise.
	c2, _ := NewCommittee(constExpert("a", []float64{1, 0, 0}), constExpert("b", []float64{0, 1, 0}))
	if err := c2.SetWeights([]float64{2, 6}); err != nil {
		t.Fatal(err)
	}
	w := c2.Weights()
	if math.Abs(w[0]-0.25) > 1e-12 || math.Abs(w[1]-0.75) > 1e-12 {
		t.Errorf("weights %v, want [0.25 0.75]", w)
	}
}

func TestCommitteeEntropyExtremes(t *testing.T) {
	agree, _ := NewCommittee(
		constExpert("a", []float64{1, 0, 0}),
		constExpert("b", []float64{1, 0, 0}),
	)
	if h := agree.Entropy(&imagery.Image{}); h > 1e-9 {
		t.Errorf("agreeing committee entropy %v, want ~0", h)
	}
	disagree, _ := NewCommittee(
		constExpert("a", []float64{1, 0, 0}),
		constExpert("b", []float64{0, 1, 0}),
		constExpert("c", []float64{0, 0, 1}),
	)
	if h := disagree.Entropy(&imagery.Image{}); math.Abs(h-mathx.MaxEntropy(3)) > 1e-9 {
		t.Errorf("fully split committee entropy %v, want log 3", h)
	}
}

func TestMemberVotes(t *testing.T) {
	c, _ := NewCommittee(constExpert("a", []float64{1, 0, 0}), constExpert("b", []float64{0, 0, 1}))
	votes := c.MemberVotes(&imagery.Image{})
	if len(votes) != 2 || votes[0][0] != 1 || votes[1][2] != 1 {
		t.Errorf("member votes wrong: %v", votes)
	}
}

func TestZeroWeightExpertIgnored(t *testing.T) {
	c, _ := NewCommittee(constExpert("a", []float64{1, 0, 0}), constExpert("b", []float64{0, 1, 0}))
	if err := c.SetWeights([]float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	v := c.Vote(&imagery.Image{})
	if v[0] != 1 {
		t.Errorf("zero-weight expert should not contribute: %v", v)
	}
}

func TestNewSelectorValidation(t *testing.T) {
	if _, err := NewSelector(-0.1, 1); err == nil {
		t.Error("negative epsilon must be rejected")
	}
	if _, err := NewSelector(1.1, 1); err == nil {
		t.Error("epsilon > 1 must be rejected")
	}
}

// entropyByID makes a committee whose entropy is a deterministic function
// of the image ID: higher ID -> higher entropy.
func entropyByID(n int) *Committee {
	e := &stubExpert{name: "byid", fn: func(im *imagery.Image) []float64 {
		// Blend between a certain and a uniform distribution by ID.
		alpha := float64(im.ID) / float64(n)
		d := []float64{1 - alpha + alpha/3, alpha / 3, alpha / 3}
		mathx.Normalize(d)
		return d
	}}
	c, err := NewCommittee(e)
	if err != nil {
		panic(err)
	}
	return c
}

func TestSelectGreedyPicksHighestEntropy(t *testing.T) {
	n := 20
	c := entropyByID(n)
	sel, err := NewSelector(0, 1) // pure exploitation
	if err != nil {
		t.Fatal(err)
	}
	picked := sel.Select(c, images(n), 5)
	want := []int{19, 18, 17, 16, 15}
	for i, idx := range picked {
		if idx != want[i] {
			t.Fatalf("greedy selection %v, want %v", picked, want)
		}
	}
}

func TestSelectEpsilonExplores(t *testing.T) {
	n := 50
	c := entropyByID(n)
	sel, err := NewSelector(0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Run many selections; low-entropy images (low IDs) must be picked
	// sometimes.
	lowPicked := 0
	for trial := 0; trial < 200; trial++ {
		for _, idx := range sel.Select(c, images(n), 5) {
			if idx < n/2 {
				lowPicked++
			}
		}
	}
	if lowPicked == 0 {
		t.Error("epsilon-greedy never explored low-entropy images")
	}
	// But greedy behaviour must still dominate: the single highest-entropy
	// image should be selected in the clear majority of trials.
	topPicked := 0
	for trial := 0; trial < 200; trial++ {
		for _, idx := range sel.Select(c, images(n), 5) {
			if idx == n-1 {
				topPicked++
			}
		}
	}
	if topPicked < 120 {
		t.Errorf("top-entropy image selected only %d/200 times", topPicked)
	}
}

func TestSelectEdgeCases(t *testing.T) {
	c := entropyByID(5)
	sel, _ := NewSelector(0.1, 3)
	if got := sel.Select(c, nil, 3); got != nil {
		t.Error("empty image list should select nothing")
	}
	if got := sel.Select(c, images(5), 0); got != nil {
		t.Error("zero query size should select nothing")
	}
	// Query size beyond the pool selects everything exactly once.
	got := sel.Select(c, images(5), 99)
	if len(got) != 5 {
		t.Fatalf("oversized query selected %d images", len(got))
	}
	seen := make(map[int]bool)
	for _, idx := range got {
		if seen[idx] {
			t.Fatalf("duplicate selection %d", idx)
		}
		seen[idx] = true
	}
}

func TestSelectNoDuplicates(t *testing.T) {
	c := entropyByID(30)
	sel, _ := NewSelector(0.5, 4)
	for trial := 0; trial < 50; trial++ {
		picked := sel.Select(c, images(30), 10)
		seen := make(map[int]bool)
		for _, idx := range picked {
			if seen[idx] {
				t.Fatalf("duplicate index %d in %v", idx, picked)
			}
			seen[idx] = true
		}
	}
}

func TestSelectDeterministicForSeed(t *testing.T) {
	c := entropyByID(30)
	a, _ := NewSelector(0.4, 7)
	b, _ := NewSelector(0.4, 7)
	for trial := 0; trial < 10; trial++ {
		pa := a.Select(c, images(30), 8)
		pb := b.Select(c, images(30), 8)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatal("same-seed selectors must agree")
			}
		}
	}
}

// Integration: on a real trained committee, epsilon-greedy must surface
// both low-res (high entropy) and at least occasionally fake (low entropy)
// images — the two failure categories of Section IV-D.
func TestSelectSurfacesBothFailureCategories(t *testing.T) {
	ds, err := imagery.Generate(imagery.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	committee, err := NewCommittee(classifier.StandardCommittee(imagery.DefaultDims, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := committee.Train(classifier.SamplesFromImages(ds.Train)); err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	pool := ds.Test
	lowResPicked, fakePicked := 0, 0
	for trial := 0; trial < 40; trial++ {
		for _, idx := range sel.Select(committee, pool, 40) {
			switch pool[idx].Failure {
			case imagery.FailureLowRes:
				lowResPicked++
			case imagery.FailureFake:
				fakePicked++
			}
		}
	}
	if lowResPicked == 0 {
		t.Error("entropy ranking never selected a low-res image")
	}
	if fakePicked == 0 {
		t.Error("epsilon exploration never selected a fake image")
	}
	// Low-res images should be over-represented relative to their 8%
	// share of the pool, since they carry the highest entropy.
	totalPicked := 40 * 40
	if frac := float64(lowResPicked) / float64(totalPicked); frac < 0.10 {
		t.Errorf("low-res fraction of selections %.3f; uncertainty sampling not working", frac)
	}
}
