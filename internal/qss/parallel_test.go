package qss

import (
	"sync"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// TestWeightsConcurrentWithVoting is the -race regression for the
// Weights/SetWeights exposure: scoring goroutines vote and read weights
// while MIC-style writers replace them. Copy-on-write installation means
// every reader sees a fully normalised vector — old or new, never a mix.
func TestWeightsConcurrentWithVoting(t *testing.T) {
	c, err := NewCommittee(
		constExpert("a", []float64{1, 0, 0}),
		constExpert("b", []float64{0, 1, 0}),
		constExpert("c", []float64{0, 0, 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	im := images(1)[0]
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Vote(im)
				c.Entropy(im)
				c.Classify(im)
				w := c.Weights()
				if s := mathx.Sum(w); s < 0.999 || s > 1.001 {
					t.Errorf("reader saw unnormalised weights %v", w)
					return
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		if err := c.SetWeights([]float64{1 + float64(i%3), 1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSelectIdenticalAcrossWorkers: parallel scoring must feed the ranking
// and the sequential ε-greedy draw exactly the scores sequential scoring
// would, so same-seed selections agree at any worker count.
func TestSelectIdenticalAcrossWorkers(t *testing.T) {
	const n, querySize = 60, 12
	c := entropyByID(n)
	run := func(workers int) [][]int {
		sel, err := NewSelector(0.35, 11)
		if err != nil {
			t.Fatal(err)
		}
		sel.Workers = workers
		var out [][]int
		for trial := 0; trial < 5; trial++ {
			out = append(out, sel.Select(c, images(n), querySize))
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for trial := range want {
			for i := range want[trial] {
				if got[trial][i] != want[trial][i] {
					t.Fatalf("workers=%d trial %d: selection %v, want %v",
						workers, trial, got[trial], want[trial])
				}
			}
		}
	}
}

// TestStrategySelectorIdenticalAcrossWorkers covers the same contract for
// every ablation strategy.
func TestStrategySelectorIdenticalAcrossWorkers(t *testing.T) {
	const n, querySize = 40, 8
	c := entropyByID(n)
	for _, strat := range Strategies() {
		run := func(workers int) []int {
			sel, err := NewStrategySelector(strat, 0.25, 7)
			if err != nil {
				t.Fatal(err)
			}
			sel.Workers = workers
			return sel.Select(c, images(n), querySize)
		}
		want := run(1)
		for _, workers := range []int{2, 8} {
			got := run(workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("strategy %s workers=%d: selection %v, want %v",
						strat.Name(), workers, got, want)
				}
			}
		}
	}
}

// TestVoteIntoMatchesVote pins the scratch-pooled path to the allocating
// one bit for bit.
func TestVoteIntoMatchesVote(t *testing.T) {
	c, err := NewCommittee(
		constExpert("a", []float64{0.7, 0.2, 0.1}),
		constExpert("b", []float64{0.1, 0.6, 0.3}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetWeights([]float64{0.3, 0.7}); err != nil {
		t.Fatal(err)
	}
	im := images(1)[0]
	want := c.Vote(im)
	dst := make([]float64, len(want))
	c.VoteInto(im, dst)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("VoteInto[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}
