package qss

import (
	"math"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
)

func TestStrategyNames(t *testing.T) {
	want := []string{"entropy", "margin", "least-confidence", "disagreement"}
	got := Strategies()
	if len(got) != len(want) {
		t.Fatalf("strategies %d, want %d", len(got), len(want))
	}
	for i, s := range got {
		if s.Name() != want[i] {
			t.Errorf("strategy %d name %q, want %q", i, s.Name(), want[i])
		}
	}
}

func TestEntropyStrategyMatchesCommitteeEntropy(t *testing.T) {
	c := entropyByID(10)
	im := &imagery.Image{ID: 7}
	if got, want := (EntropyStrategy{}).Score(c, im), c.Entropy(im); got != want {
		t.Errorf("entropy strategy %v, want %v", got, want)
	}
}

func TestMarginStrategyOrdering(t *testing.T) {
	// Confident committee: big margin => low (very negative) score.
	confident, _ := NewCommittee(constExpert("a", []float64{0.9, 0.05, 0.05}))
	ambiguous, _ := NewCommittee(constExpert("a", []float64{0.45, 0.45, 0.1}))
	im := &imagery.Image{}
	s := MarginStrategy{}
	if s.Score(confident, im) >= s.Score(ambiguous, im) {
		t.Error("ambiguous vote must outrank confident vote under margin")
	}
	// Exact value: -(0.45 - 0.45) = 0.
	if got := s.Score(ambiguous, im); math.Abs(got-0) > 1e-12 {
		t.Errorf("tied top-two margin score %v, want 0", got)
	}
}

func TestLeastConfidenceOrdering(t *testing.T) {
	confident, _ := NewCommittee(constExpert("a", []float64{0.95, 0.03, 0.02}))
	unsure, _ := NewCommittee(constExpert("a", []float64{0.4, 0.3, 0.3}))
	im := &imagery.Image{}
	s := LeastConfidenceStrategy{}
	if s.Score(confident, im) >= s.Score(unsure, im) {
		t.Error("unsure vote must outrank confident vote under least-confidence")
	}
	if got := s.Score(confident, im); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("least-confidence score %v, want 0.05", got)
	}
}

func TestDisagreementStrategy(t *testing.T) {
	// Members agreeing perfectly: zero disagreement even though the
	// shared vote is uncertain.
	agree, _ := NewCommittee(
		constExpert("a", []float64{0.4, 0.3, 0.3}),
		constExpert("b", []float64{0.4, 0.3, 0.3}),
	)
	split, _ := NewCommittee(
		constExpert("a", []float64{0.9, 0.05, 0.05}),
		constExpert("b", []float64{0.05, 0.9, 0.05}),
	)
	im := &imagery.Image{}
	s := DisagreementStrategy{}
	if got := s.Score(agree, im); got > 1e-9 {
		t.Errorf("agreeing committee disagreement %v, want ~0", got)
	}
	if s.Score(split, im) <= s.Score(agree, im) {
		t.Error("split committee must outrank agreeing committee")
	}
	// Single-member committee has no pairs.
	solo, _ := NewCommittee(constExpert("a", []float64{1, 0, 0}))
	if got := s.Score(solo, im); got != 0 {
		t.Errorf("single-member disagreement %v, want 0", got)
	}
}

func TestNewStrategySelectorValidation(t *testing.T) {
	if _, err := NewStrategySelector(nil, 0.1, 1); err == nil {
		t.Error("nil strategy must be rejected")
	}
	if _, err := NewStrategySelector(EntropyStrategy{}, -0.1, 1); err == nil {
		t.Error("negative epsilon must be rejected")
	}
	if _, err := NewStrategySelector(EntropyStrategy{}, 1.1, 1); err == nil {
		t.Error("epsilon above 1 must be rejected")
	}
}

func TestStrategySelectorGreedyTop(t *testing.T) {
	n := 15
	c := entropyByID(n)
	sel, err := NewStrategySelector(EntropyStrategy{}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	picked := sel.Select(c, images(n), 3)
	want := []int{14, 13, 12}
	for i := range want {
		if picked[i] != want[i] {
			t.Fatalf("selection %v, want %v", picked, want)
		}
	}
}

func TestStrategySelectorEdgeCases(t *testing.T) {
	c := entropyByID(5)
	sel, _ := NewStrategySelector(MarginStrategy{}, 0.2, 2)
	if sel.Select(c, nil, 3) != nil {
		t.Error("empty pool must select nothing")
	}
	if sel.Select(c, images(5), 0) != nil {
		t.Error("zero query size must select nothing")
	}
	got := sel.Select(c, images(5), 50)
	if len(got) != 5 {
		t.Errorf("oversized query selected %d", len(got))
	}
}

// On a real trained committee, every strategy must over-select low-res
// (genuinely uncertain) images relative to their base rate — they differ
// in *how* they rank uncertainty, not whether they find it.
func TestStrategiesSurfaceUncertainImages(t *testing.T) {
	ds, err := imagery.Generate(imagery.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	committee, err := NewCommittee(classifier.StandardCommittee(imagery.DefaultDims, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := committee.Train(classifier.SamplesFromImages(ds.Train)); err != nil {
		t.Fatal(err)
	}
	lowResRate := float64(imagery.CountByFailure(ds.Test)[imagery.FailureLowRes]) / float64(len(ds.Test))
	for _, strat := range Strategies() {
		sel, err := NewStrategySelector(strat, 0, int64(100))
		if err != nil {
			t.Fatal(err)
		}
		picked := sel.Select(committee, ds.Test, 40)
		lowRes := 0
		for _, idx := range picked {
			if ds.Test[idx].Failure == imagery.FailureLowRes {
				lowRes++
			}
		}
		frac := float64(lowRes) / float64(len(picked))
		if frac <= lowResRate {
			t.Errorf("%s selected low-res at %.3f, base rate %.3f — not surfacing uncertainty",
				strat.Name(), frac, lowResRate)
		}
	}
}
