package qss

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
	"github.com/crowdlearn/crowdlearn/internal/parallel"
)

// Strategy scores an image for query priority: higher means more worth
// querying. The paper's QSS uses committee entropy inside an ε-greedy
// loop; the alternatives below are the standard active-learning scoring
// rules, provided for the selection-strategy ablation.
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Score returns the query priority of the image under the committee.
	Score(c *Committee, im *imagery.Image) float64
}

// EntropyStrategy is the paper's committee-entropy score (Eq. 3).
type EntropyStrategy struct{}

var _ Strategy = EntropyStrategy{}

// Name implements Strategy.
func (EntropyStrategy) Name() string { return "entropy" }

// Score implements Strategy.
func (EntropyStrategy) Score(c *Committee, im *imagery.Image) float64 {
	return c.Entropy(im)
}

// MarginStrategy scores by the negated margin between the committee's top
// two classes: small margins (ambiguous calls) rank first.
type MarginStrategy struct{}

var _ Strategy = MarginStrategy{}

// Name implements Strategy.
func (MarginStrategy) Name() string { return "margin" }

// Score implements Strategy.
func (MarginStrategy) Score(c *Committee, im *imagery.Image) float64 {
	vote := c.Vote(im)
	top, second := 0.0, 0.0
	for _, p := range vote {
		switch {
		case p > top:
			top, second = p, top
		case p > second:
			second = p
		}
	}
	return -(top - second)
}

// LeastConfidenceStrategy scores by one minus the committee's top-class
// probability.
type LeastConfidenceStrategy struct{}

var _ Strategy = LeastConfidenceStrategy{}

// Name implements Strategy.
func (LeastConfidenceStrategy) Name() string { return "least-confidence" }

// Score implements Strategy.
func (LeastConfidenceStrategy) Score(c *Committee, im *imagery.Image) float64 {
	return 1 - mathx.Max(c.Vote(im))
}

// DisagreementStrategy scores by the mean pairwise symmetric KL between
// member votes — classic query-by-committee disagreement, sensitive to
// experts contradicting each other even when the blended vote looks
// confident.
type DisagreementStrategy struct{}

var _ Strategy = DisagreementStrategy{}

// Name implements Strategy.
func (DisagreementStrategy) Name() string { return "disagreement" }

// Score implements Strategy.
func (DisagreementStrategy) Score(c *Committee, im *imagery.Image) float64 {
	votes := c.MemberVotes(im)
	if len(votes) < 2 {
		return 0
	}
	var total float64
	pairs := 0
	for i := 0; i < len(votes); i++ {
		for j := i + 1; j < len(votes); j++ {
			total += mathx.SymmetricKL(votes[i], votes[j])
			pairs++
		}
	}
	return total / float64(pairs)
}

// StrategySelector generalises Selector to any scoring strategy, keeping
// the ε-greedy exploration loop of Algorithm 1.
type StrategySelector struct {
	// Epsilon is the exploration probability.
	Epsilon float64
	// Strategy supplies the exploitation score.
	Strategy Strategy
	// Workers caps the parallel scoring fan-out (0 = GOMAXPROCS,
	// 1 = sequential); scores land in per-index slots so ranking and the
	// sequential ε-greedy draw are identical at any value.
	Workers int
	rng     *rand.Rand
	rngSrc  *mathx.CountingSource
}

// NewStrategySelector builds a selector over the given strategy.
func NewStrategySelector(strategy Strategy, epsilon float64, seed int64) (*StrategySelector, error) {
	if strategy == nil {
		return nil, fmt.Errorf("qss: nil strategy")
	}
	if epsilon < 0 || epsilon > 1 {
		return nil, fmt.Errorf("qss: epsilon %v outside [0, 1]", epsilon)
	}
	rng, src := mathx.NewCountedRand(seed)
	return &StrategySelector{Epsilon: epsilon, Strategy: strategy, rng: rng, rngSrc: src}, nil
}

// RNGPos reports the ε-greedy stream's draw position, for checkpoints.
func (s *StrategySelector) RNGPos() uint64 { return s.rngSrc.Pos() }

// SeekRNG fast-forwards the ε-greedy stream to an absolute position
// recorded by RNGPos on a selector with the same seed. Positions behind
// the current one are ignored (streams cannot rewind).
func (s *StrategySelector) SeekRNG(pos uint64) {
	if pos > s.rngSrc.Pos() {
		s.rngSrc.Skip(pos - s.rngSrc.Pos())
	}
}

// Select mirrors Selector.Select with the pluggable score.
func (s *StrategySelector) Select(c *Committee, images []*imagery.Image, querySize int) []int {
	return s.SelectObs(c, images, querySize, nil)
}

// SelectObs is Select with an optional scheduling observer on the
// scoring fan-out (the profiling hook); a nil observer is exactly
// Select. Observation is passive: the selection is identical with and
// without one.
func (s *StrategySelector) SelectObs(c *Committee, images []*imagery.Image, querySize int, o parallel.Observer) []int {
	if querySize <= 0 || len(images) == 0 {
		return nil
	}
	if querySize > len(images) {
		querySize = len(images)
	}
	list := make([]scoredImage, len(images))
	parallel.ForGrainObs(s.Workers, len(images), scoreGrain, o, func(i int) {
		list[i] = scoredImage{idx: i, entropy: s.Strategy.Score(c, images[i])}
	})
	sort.Slice(list, func(i, j int) bool {
		if list[i].entropy != list[j].entropy {
			return list[i].entropy > list[j].entropy
		}
		return list[i].idx < list[j].idx
	})
	out := make([]int, 0, querySize)
	for len(out) < querySize {
		pick := 0
		if mathx.Bernoulli(s.rng, s.Epsilon) {
			pick = s.rng.Intn(len(list))
		}
		out = append(out, list[pick].idx)
		list = append(list[:pick], list[pick+1:]...)
	}
	return out
}

// Strategies returns every built-in strategy in presentation order.
func Strategies() []Strategy {
	return []Strategy{
		EntropyStrategy{},
		MarginStrategy{},
		LeastConfidenceStrategy{},
		DisagreementStrategy{},
	}
}
