package qss

import (
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
)

func trainedCommittee(b *testing.B) (*Committee, *imagery.Dataset) {
	b.Helper()
	ds, err := imagery.Generate(imagery.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCommittee(classifier.StandardCommittee(imagery.DefaultDims, 1)...)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Train(classifier.SamplesFromImages(ds.Train)); err != nil {
		b.Fatal(err)
	}
	return c, ds
}

func BenchmarkCommitteeVote(b *testing.B) {
	c, ds := trainedCommittee(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Vote(ds.Test[i%len(ds.Test)])
	}
}

// BenchmarkCommitteeEntropy is the hot scoring path; the pooled vote
// scratch keeps it allocation-free.
func BenchmarkCommitteeEntropy(b *testing.B) {
	c, ds := trainedCommittee(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Entropy(ds.Test[i%len(ds.Test)])
	}
}

func BenchmarkSelectQuerySet(b *testing.B) {
	c, ds := trainedCommittee(b)
	sel, err := NewSelector(0.2, 1)
	if err != nil {
		b.Fatal(err)
	}
	batch := ds.Test[:10]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Select(c, batch, 5)
	}
}
