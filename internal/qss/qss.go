// Package qss implements CrowdLearn's Query Set Selection module
// (Section IV-A): a query-by-committee active-learning scheme that decides
// which images to send to the crowd each sensing cycle.
//
// A committee of DDA experts votes on every unseen image; the weighted,
// normalised vote (Eq. 2) yields a committee entropy (Eq. 3) measuring how
// uncertain the AI is. Images are ranked by entropy and selected with an
// epsilon-greedy rule (Algorithm 1): with probability 1-ε take the most
// uncertain remaining image, with probability ε take a uniformly random
// remaining one. The exploration term is what catches the images on which
// every expert is confidently wrong (fakes), which pure uncertainty
// sampling would never query.
package qss

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

// Committee is a set of weighted DDA experts (Definitions 4, 5, 7).
type Committee struct {
	experts []classifier.Expert
	weights []float64
}

// NewCommittee builds a committee with uniform expert weights.
func NewCommittee(experts ...classifier.Expert) (*Committee, error) {
	if len(experts) == 0 {
		return nil, errors.New("qss: committee needs at least one expert")
	}
	w := make([]float64, len(experts))
	mathx.Fill(w, 1/float64(len(experts)))
	return &Committee{experts: experts, weights: w}, nil
}

// Experts returns the committee members (shared slice; treat as
// read-only).
func (c *Committee) Experts() []classifier.Expert { return c.experts }

// Size returns the number of experts M.
func (c *Committee) Size() int { return len(c.experts) }

// Weights returns a copy of the current expert weights.
func (c *Committee) Weights() []float64 { return mathx.Clone(c.weights) }

// SetWeights replaces the expert weights; they are renormalised to sum to
// one. The MIC module calls this after each sensing cycle.
func (c *Committee) SetWeights(w []float64) error {
	if len(w) != len(c.experts) {
		return fmt.Errorf("qss: %d weights for %d experts", len(w), len(c.experts))
	}
	for _, x := range w {
		if x < 0 {
			return errors.New("qss: weights must be non-negative")
		}
	}
	cp := mathx.Clone(w)
	mathx.Normalize(cp)
	c.weights = cp
	return nil
}

// Train trains every member on the samples.
func (c *Committee) Train(samples []classifier.Sample) error {
	for _, e := range c.experts {
		if err := e.Train(samples); err != nil {
			return fmt.Errorf("qss: train %s: %w", e.Name(), err)
		}
	}
	return nil
}

// MemberVotes returns each expert's raw vote distribution for the image.
func (c *Committee) MemberVotes(im *imagery.Image) [][]float64 {
	votes := make([][]float64, len(c.experts))
	for m, e := range c.experts {
		votes[m] = e.Predict(im)
	}
	return votes
}

// Vote computes the committee vote rho (Eq. 2): the weight-blended member
// distributions, normalised to a probability vector.
func (c *Committee) Vote(im *imagery.Image) []float64 {
	agg := make([]float64, imagery.NumLabels)
	for m, e := range c.experts {
		if c.weights[m] == 0 {
			continue
		}
		mathx.AddScaled(agg, c.weights[m], e.Predict(im))
	}
	mathx.Normalize(agg)
	return agg
}

// Entropy computes the committee entropy H (Eq. 3, Definition 8) of the
// image: the Shannon entropy of the normalised committee vote.
func (c *Committee) Entropy(im *imagery.Image) float64 {
	return mathx.Entropy(c.Vote(im))
}

// Classify returns the committee's final label for the image: the argmax
// of the committee vote.
func (c *Committee) Classify(im *imagery.Image) imagery.Label {
	return imagery.Label(mathx.ArgMax(c.Vote(im)))
}

// Selector implements the epsilon-greedy query set selection of
// Algorithm 1.
type Selector struct {
	// Epsilon is the exploration probability (paper's ε-greedy strategy).
	Epsilon float64
	rng     *rand.Rand
}

// NewSelector builds a selector. Epsilon must lie in [0, 1].
func NewSelector(epsilon float64, seed int64) (*Selector, error) {
	if epsilon < 0 || epsilon > 1 {
		return nil, fmt.Errorf("qss: epsilon %v outside [0, 1]", epsilon)
	}
	return &Selector{Epsilon: epsilon, rng: mathx.NewRand(seed)}, nil
}

// Select picks querySize image indices out of images following
// Algorithm 1: build the entropy-sorted list (high to low), then
// repeatedly pop the head with probability 1-ε or a uniformly random
// element with probability ε. Returns the selected indices in selection
// order. querySize larger than len(images) selects everything.
func (s *Selector) Select(c *Committee, images []*imagery.Image, querySize int) []int {
	if querySize <= 0 || len(images) == 0 {
		return nil
	}
	if querySize > len(images) {
		querySize = len(images)
	}
	list := make([]scoredImage, len(images))
	for i, im := range images {
		list[i] = scoredImage{idx: i, entropy: c.Entropy(im)}
	}
	// Sort high-to-low entropy; ties break by index for determinism.
	sort.Slice(list, func(i, j int) bool {
		if list[i].entropy != list[j].entropy {
			return list[i].entropy > list[j].entropy
		}
		return list[i].idx < list[j].idx
	})

	out := make([]int, 0, querySize)
	for len(out) < querySize {
		pick := 0
		if mathx.Bernoulli(s.rng, s.Epsilon) {
			pick = s.rng.Intn(len(list))
		}
		out = append(out, list[pick].idx)
		list = append(list[:pick], list[pick+1:]...)
	}
	return out
}

// scoredImage pairs an image index with its committee entropy.
type scoredImage struct {
	idx     int
	entropy float64
}
