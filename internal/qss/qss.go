// Package qss implements CrowdLearn's Query Set Selection module
// (Section IV-A): a query-by-committee active-learning scheme that decides
// which images to send to the crowd each sensing cycle.
//
// A committee of DDA experts votes on every unseen image; the weighted,
// normalised vote (Eq. 2) yields a committee entropy (Eq. 3) measuring how
// uncertain the AI is. Images are ranked by entropy and selected with an
// epsilon-greedy rule (Algorithm 1): with probability 1-ε take the most
// uncertain remaining image, with probability ε take a uniformly random
// remaining one. The exploration term is what catches the images on which
// every expert is confidently wrong (fakes), which pure uncertainty
// sampling would never query.
package qss

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
	"github.com/crowdlearn/crowdlearn/internal/parallel"
)

// Committee is a set of weighted DDA experts (Definitions 4, 5, 7).
//
// Voting, entropy and classification are safe for concurrent use: the
// weight vector is copy-on-write (SetWeights installs a fresh slice under
// the mutex, readers snapshot the pointer), and all vote temporaries come
// from a scratch pool.
type Committee struct {
	experts []classifier.Expert

	// mu guards weights. MIC replaces the slice wholesale after each
	// sensing cycle while scoring goroutines read it; readers take a
	// pointer snapshot and never see a partially written vector.
	mu      sync.RWMutex
	weights []float64

	// workers caps the fan-out of Train across experts (0 = GOMAXPROCS,
	// 1 = sequential).
	workers int

	// scratch pools per-vote aggregation buffers so the entropy scoring
	// path allocates nothing per image.
	scratch sync.Pool
}

// voteScratch is one scorer's reusable buffers: agg aggregates the
// committee vote, tmp receives individual expert votes.
type voteScratch struct {
	agg, tmp []float64
}

// NewCommittee builds a committee with uniform expert weights.
func NewCommittee(experts ...classifier.Expert) (*Committee, error) {
	if len(experts) == 0 {
		return nil, errors.New("qss: committee needs at least one expert")
	}
	w := make([]float64, len(experts))
	mathx.Fill(w, 1/float64(len(experts)))
	return &Committee{experts: experts, weights: w}, nil
}

// Experts returns the committee members (shared slice; treat as
// read-only).
func (c *Committee) Experts() []classifier.Expert { return c.experts }

// Size returns the number of experts M.
func (c *Committee) Size() int { return len(c.experts) }

// Weights returns a copy of the current expert weights.
func (c *Committee) Weights() []float64 { return mathx.Clone(c.weightsRef()) }

// weightsRef snapshots the current weight slice. SetWeights never mutates
// an installed slice, so the snapshot is safe to read lock-free.
func (c *Committee) weightsRef() []float64 {
	c.mu.RLock()
	w := c.weights
	c.mu.RUnlock()
	return w
}

// SetWeights replaces the expert weights; they are renormalised to sum to
// one. The MIC module calls this after each sensing cycle. The new vector
// is installed copy-on-write, so concurrent voters see either the old or
// the new weights in full, never a mix.
func (c *Committee) SetWeights(w []float64) error {
	if len(w) != len(c.experts) {
		return fmt.Errorf("qss: %d weights for %d experts", len(w), len(c.experts))
	}
	for _, x := range w {
		if x < 0 {
			return errors.New("qss: weights must be non-negative")
		}
	}
	cp := mathx.Clone(w)
	mathx.Normalize(cp)
	c.mu.Lock()
	c.weights = cp
	c.mu.Unlock()
	return nil
}

// SetWorkers caps the expert-level training fan-out (0 = GOMAXPROCS,
// 1 = sequential). Experts hold disjoint state, so the trained committee
// is identical at any value.
func (c *Committee) SetWorkers(n int) { c.workers = n }

// expertGrain pins expert fan-outs at one member per work unit: a full
// or incremental expert fit is the coarsest unit in the system, so no
// chunk may batch two experts while a worker idles.
var expertGrain = parallel.Grain{MinChunk: 1, CostNs: 1_000_000_000}

// scoreGrain is the chunking cost hint for per-image committee scoring
// (~microseconds per image: one pooled forward pass per member), so
// small per-cycle image windows collapse to the inline path instead of
// paying goroutine handoffs they cannot amortize.
var scoreGrain = parallel.Grain{CostNs: 4_000}

// Train trains every member on the samples, fanning out across experts.
func (c *Committee) Train(samples []classifier.Sample) error {
	return parallel.ForErrGrainObs(c.workers, len(c.experts), expertGrain, nil, func(m int) error {
		if err := c.experts[m].Train(samples); err != nil {
			return fmt.Errorf("qss: train %s: %w", c.experts[m].Name(), err)
		}
		return nil
	})
}

// MemberVotes returns each expert's raw vote distribution for the image.
func (c *Committee) MemberVotes(im *imagery.Image) [][]float64 {
	votes := make([][]float64, len(c.experts))
	for m, e := range c.experts {
		votes[m] = e.Predict(im)
	}
	return votes
}

// Vote computes the committee vote rho (Eq. 2): the weight-blended member
// distributions, normalised to a probability vector. The returned slice
// is freshly allocated; Vote is safe for concurrent use.
func (c *Committee) Vote(im *imagery.Image) []float64 {
	return c.VoteInto(im, make([]float64, imagery.NumLabels))
}

// VoteInto is Vote writing into dst (len == imagery.NumLabels). With
// experts that implement classifier.IntoPredictor the call allocates
// nothing.
func (c *Committee) VoteInto(im *imagery.Image, dst []float64) []float64 {
	sc := c.getScratch()
	c.voteInto(im, dst, sc.tmp)
	c.scratch.Put(sc)
	return dst
}

func (c *Committee) getScratch() *voteScratch {
	sc, _ := c.scratch.Get().(*voteScratch)
	if sc == nil {
		sc = &voteScratch{
			agg: make([]float64, imagery.NumLabels),
			tmp: make([]float64, imagery.NumLabels),
		}
	}
	return sc
}

// voteInto aggregates the weighted expert votes into dst, routing expert
// predictions through tmp.
func (c *Committee) voteInto(im *imagery.Image, dst, tmp []float64) {
	weights := c.weightsRef()
	mathx.Fill(dst, 0)
	for m, e := range c.experts {
		if weights[m] == 0 {
			continue
		}
		vote := tmp
		if ip, ok := e.(classifier.IntoPredictor); ok {
			ip.PredictInto(im, tmp)
		} else {
			vote = e.Predict(im)
		}
		mathx.AddScaled(dst, weights[m], vote)
	}
	mathx.Normalize(dst)
}

// Entropy computes the committee entropy H (Eq. 3, Definition 8) of the
// image: the Shannon entropy of the normalised committee vote.
// Allocation-free and safe for concurrent use.
func (c *Committee) Entropy(im *imagery.Image) float64 {
	sc := c.getScratch()
	c.voteInto(im, sc.agg, sc.tmp)
	h := mathx.Entropy(sc.agg)
	c.scratch.Put(sc)
	return h
}

// Classify returns the committee's final label for the image: the argmax
// of the committee vote. Allocation-free and safe for concurrent use.
func (c *Committee) Classify(im *imagery.Image) imagery.Label {
	sc := c.getScratch()
	c.voteInto(im, sc.agg, sc.tmp)
	label := imagery.Label(mathx.ArgMax(sc.agg))
	c.scratch.Put(sc)
	return label
}

// Selector implements the epsilon-greedy query set selection of
// Algorithm 1.
type Selector struct {
	// Epsilon is the exploration probability (paper's ε-greedy strategy).
	Epsilon float64
	// Workers caps the parallel entropy-scoring fan-out (0 = GOMAXPROCS,
	// 1 = sequential). Every score lands in its own index slot, so the
	// ranking — and therefore the ε-greedy selection, which must consume
	// the RNG stream in a fixed order — is identical at any value.
	Workers int
	rng     *rand.Rand
}

// NewSelector builds a selector. Epsilon must lie in [0, 1].
func NewSelector(epsilon float64, seed int64) (*Selector, error) {
	if epsilon < 0 || epsilon > 1 {
		return nil, fmt.Errorf("qss: epsilon %v outside [0, 1]", epsilon)
	}
	return &Selector{Epsilon: epsilon, rng: mathx.NewRand(seed)}, nil
}

// Select picks querySize image indices out of images following
// Algorithm 1: build the entropy-sorted list (high to low), then
// repeatedly pop the head with probability 1-ε or a uniformly random
// element with probability ε. Returns the selected indices in selection
// order. querySize larger than len(images) selects everything.
func (s *Selector) Select(c *Committee, images []*imagery.Image, querySize int) []int {
	if querySize <= 0 || len(images) == 0 {
		return nil
	}
	if querySize > len(images) {
		querySize = len(images)
	}
	list := make([]scoredImage, len(images))
	parallel.ForGrain(s.Workers, len(images), scoreGrain, func(i int) {
		list[i] = scoredImage{idx: i, entropy: c.Entropy(images[i])}
	})
	// Sort high-to-low entropy; ties break by index for determinism.
	sort.Slice(list, func(i, j int) bool {
		if list[i].entropy != list[j].entropy {
			return list[i].entropy > list[j].entropy
		}
		return list[i].idx < list[j].idx
	})

	out := make([]int, 0, querySize)
	for len(out) < querySize {
		pick := 0
		if mathx.Bernoulli(s.rng, s.Epsilon) {
			pick = s.rng.Intn(len(list))
		}
		out = append(out, list[pick].idx)
		list = append(list[:pick], list[pick+1:]...)
	}
	return out
}

// scoredImage pairs an image index with its committee entropy.
type scoredImage struct {
	idx     int
	entropy float64
}
