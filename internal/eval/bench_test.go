package eval

import (
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

func benchData(n int) ([]imagery.Label, [][]float64) {
	rng := mathx.NewRand(1)
	truths := make([]imagery.Label, n)
	dists := make([][]float64, n)
	for i := range truths {
		truths[i] = imagery.Label(rng.Intn(imagery.NumLabels))
		d := mathx.OneHot(imagery.NumLabels, int(truths[i]))
		for j := range d {
			d[j] = 0.6*d[j] + 0.4*rng.Float64()
		}
		mathx.Normalize(d)
		dists[i] = d
	}
	return truths, dists
}

func BenchmarkMacroROC(b *testing.B) {
	truths, dists := benchData(400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MacroROC(truths, dists, 101); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeMetrics(b *testing.B) {
	truths, dists := benchData(400)
	preds := make([]imagery.Label, len(truths))
	for i, d := range dists {
		preds[i] = imagery.Label(mathx.ArgMax(d))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(truths, preds); err != nil {
			b.Fatal(err)
		}
	}
}
