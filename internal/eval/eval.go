// Package eval implements the evaluation metrics of Section V:
// multi-class accuracy, macro-averaged precision/recall/F1 (the paper
// macro-averages because the dataset is class-balanced), confusion
// matrices, and macro-averaged ROC curves with AUC (Figure 7).
package eval

import (
	"errors"
	"fmt"
	"sort"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
)

// Metrics holds the classification scores of Table II.
type Metrics struct {
	Accuracy  float64
	Precision float64 // macro-averaged
	Recall    float64 // macro-averaged
	F1        float64 // macro-averaged
}

// ConfusionMatrix counts [true][predicted] pairs.
type ConfusionMatrix [imagery.NumLabels][imagery.NumLabels]int

// Confusion builds a confusion matrix from parallel label slices.
func Confusion(truths, preds []imagery.Label) (ConfusionMatrix, error) {
	var cm ConfusionMatrix
	if len(truths) != len(preds) {
		return cm, fmt.Errorf("eval: %d truths but %d predictions", len(truths), len(preds))
	}
	for i := range truths {
		if !truths[i].Valid() || !preds[i].Valid() {
			return cm, fmt.Errorf("eval: invalid label pair (%v, %v) at %d", truths[i], preds[i], i)
		}
		cm[truths[i]][preds[i]]++
	}
	return cm, nil
}

// Total returns the number of samples in the matrix.
func (cm ConfusionMatrix) Total() int {
	n := 0
	for _, row := range cm {
		for _, c := range row {
			n += c
		}
	}
	return n
}

// Compute derives Table II metrics from parallel truth/prediction slices.
func Compute(truths, preds []imagery.Label) (Metrics, error) {
	if len(truths) == 0 {
		return Metrics{}, errors.New("eval: no samples")
	}
	cm, err := Confusion(truths, preds)
	if err != nil {
		return Metrics{}, err
	}
	return cm.Metrics(), nil
}

// Metrics derives the scores from the confusion matrix. Macro averages
// skip classes with no support (no true samples) for recall and no
// predictions for precision, matching common practice.
func (cm ConfusionMatrix) Metrics() Metrics {
	total := cm.Total()
	if total == 0 {
		return Metrics{}
	}
	correct := 0
	var precisionSum, recallSum float64
	precisionClasses, recallClasses := 0, 0
	for k := 0; k < imagery.NumLabels; k++ {
		correct += cm[k][k]
		tp := float64(cm[k][k])
		var fp, fn float64
		for j := 0; j < imagery.NumLabels; j++ {
			if j == k {
				continue
			}
			fp += float64(cm[j][k])
			fn += float64(cm[k][j])
		}
		if tp+fp > 0 {
			precisionSum += tp / (tp + fp)
			precisionClasses++
		}
		if tp+fn > 0 {
			recallSum += tp / (tp + fn)
			recallClasses++
		}
	}
	m := Metrics{Accuracy: float64(correct) / float64(total)}
	if precisionClasses > 0 {
		m.Precision = precisionSum / float64(precisionClasses)
	}
	if recallClasses > 0 {
		m.Recall = recallSum / float64(recallClasses)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// ClassMetrics holds one class's one-vs-rest scores.
type ClassMetrics struct {
	Label     imagery.Label
	Support   int // number of true samples of this class
	Precision float64
	Recall    float64
	F1        float64
}

// PerClass derives one-vs-rest metrics for every class from the matrix.
// Classes with no support report zero recall; classes never predicted
// report zero precision.
func (cm ConfusionMatrix) PerClass() []ClassMetrics {
	out := make([]ClassMetrics, imagery.NumLabels)
	for k := 0; k < imagery.NumLabels; k++ {
		tp := float64(cm[k][k])
		var fp, fn float64
		support := 0
		for j := 0; j < imagery.NumLabels; j++ {
			support += cm[k][j]
			if j == k {
				continue
			}
			fp += float64(cm[j][k])
			fn += float64(cm[k][j])
		}
		m := ClassMetrics{Label: imagery.Label(k), Support: support}
		if tp+fp > 0 {
			m.Precision = tp / (tp + fp)
		}
		if tp+fn > 0 {
			m.Recall = tp / (tp + fn)
		}
		if m.Precision+m.Recall > 0 {
			m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
		}
		out[k] = m
	}
	return out
}

// ROCPoint is one point on a ROC curve.
type ROCPoint struct {
	FPR float64
	TPR float64
}

// MacroROC computes the macro-averaged one-vs-rest ROC curve from label
// distributions (Figure 7): a per-class ROC over the class's predicted
// probability as score, averaged vertically across classes on a common
// FPR grid.
func MacroROC(truths []imagery.Label, dists [][]float64, gridSize int) ([]ROCPoint, error) {
	if len(truths) != len(dists) {
		return nil, fmt.Errorf("eval: %d truths but %d distributions", len(truths), len(dists))
	}
	if len(truths) == 0 {
		return nil, errors.New("eval: no samples")
	}
	if gridSize < 2 {
		gridSize = 101
	}
	grid := make([]float64, gridSize)
	for i := range grid {
		grid[i] = float64(i) / float64(gridSize-1)
	}
	avgTPR := make([]float64, gridSize)
	classes := 0
	for k := 0; k < imagery.NumLabels; k++ {
		curve, ok := binaryROC(truths, dists, imagery.Label(k))
		if !ok {
			continue
		}
		classes++
		for i, fpr := range grid {
			avgTPR[i] += interpolateTPR(curve, fpr)
		}
	}
	if classes == 0 {
		return nil, errors.New("eval: no class has both positive and negative samples")
	}
	out := make([]ROCPoint, gridSize)
	for i := range out {
		out[i] = ROCPoint{FPR: grid[i], TPR: avgTPR[i] / float64(classes)}
	}
	return out, nil
}

// binaryROC builds the one-vs-rest ROC for class k. Returns ok=false when
// the class has no positives or no negatives.
func binaryROC(truths []imagery.Label, dists [][]float64, k imagery.Label) ([]ROCPoint, bool) {
	type scored struct {
		score float64
		pos   bool
	}
	items := make([]scored, len(truths))
	pos, neg := 0, 0
	for i := range truths {
		isPos := truths[i] == k
		if isPos {
			pos++
		} else {
			neg++
		}
		items[i] = scored{score: dists[i][k], pos: isPos}
	}
	if pos == 0 || neg == 0 {
		return nil, false
	}
	sort.Slice(items, func(a, b int) bool { return items[a].score > items[b].score })

	curve := []ROCPoint{{FPR: 0, TPR: 0}}
	tp, fp := 0, 0
	for i := 0; i < len(items); {
		// Process ties together so the curve is threshold-consistent.
		j := i
		for j < len(items) && items[j].score == items[i].score {
			if items[j].pos {
				tp++
			} else {
				fp++
			}
			j++
		}
		curve = append(curve, ROCPoint{FPR: float64(fp) / float64(neg), TPR: float64(tp) / float64(pos)})
		i = j
	}
	return curve, true
}

// interpolateTPR linearly interpolates a ROC curve's TPR at the given FPR.
func interpolateTPR(curve []ROCPoint, fpr float64) float64 {
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR >= fpr {
			lo, hi := curve[i-1], curve[i]
			if hi.FPR == lo.FPR {
				return hi.TPR
			}
			frac := (fpr - lo.FPR) / (hi.FPR - lo.FPR)
			return lo.TPR + frac*(hi.TPR-lo.TPR)
		}
	}
	return curve[len(curve)-1].TPR
}

// BrierScore computes the multiclass Brier score: the mean squared error
// between predicted distributions and one-hot truths, in [0, 2]. Lower is
// better; it rewards *calibrated* confidence, complementing the
// accuracy/ROC views of Table II and Figure 7.
func BrierScore(truths []imagery.Label, dists [][]float64) (float64, error) {
	if len(truths) != len(dists) {
		return 0, fmt.Errorf("eval: %d truths but %d distributions", len(truths), len(dists))
	}
	if len(truths) == 0 {
		return 0, errors.New("eval: no samples")
	}
	var total float64
	for i, d := range dists {
		if len(d) != imagery.NumLabels {
			return 0, fmt.Errorf("eval: distribution %d has %d classes, want %d", i, len(d), imagery.NumLabels)
		}
		if !truths[i].Valid() {
			return 0, fmt.Errorf("eval: invalid truth label at %d", i)
		}
		for k, p := range d {
			target := 0.0
			if imagery.Label(k) == truths[i] {
				target = 1.0
			}
			diff := p - target
			total += diff * diff
		}
	}
	return total / float64(len(truths)), nil
}

// AUC computes the area under a ROC curve by the trapezoid rule. The
// curve must be sorted by FPR (MacroROC output is).
func AUC(curve []ROCPoint) float64 {
	var area float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}
