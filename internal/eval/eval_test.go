package eval

import (
	"math"
	"testing"

	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/mathx"
)

func TestComputePerfect(t *testing.T) {
	truths := []imagery.Label{0, 1, 2, 0, 1, 2}
	m, err := Compute(truths, truths)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy != 1 || m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Errorf("perfect prediction metrics %+v, want all 1", m)
	}
}

func TestComputeKnownValues(t *testing.T) {
	// 2 classes used of 3: truths [0 0 1 1], preds [0 1 1 1].
	truths := []imagery.Label{0, 0, 1, 1}
	preds := []imagery.Label{0, 1, 1, 1}
	m, err := Compute(truths, preds)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy != 0.75 {
		t.Errorf("accuracy %v, want 0.75", m.Accuracy)
	}
	// Class 0: precision 1, recall 0.5. Class 1: precision 2/3, recall 1.
	// Class 2: no support and no predictions -> skipped.
	wantP := (1.0 + 2.0/3.0) / 2
	wantR := (0.5 + 1.0) / 2
	if math.Abs(m.Precision-wantP) > 1e-12 {
		t.Errorf("precision %v, want %v", m.Precision, wantP)
	}
	if math.Abs(m.Recall-wantR) > 1e-12 {
		t.Errorf("recall %v, want %v", m.Recall, wantR)
	}
	wantF1 := 2 * wantP * wantR / (wantP + wantR)
	if math.Abs(m.F1-wantF1) > 1e-12 {
		t.Errorf("f1 %v, want %v", m.F1, wantF1)
	}
}

func TestComputeValidation(t *testing.T) {
	if _, err := Compute(nil, nil); err == nil {
		t.Error("empty input must error")
	}
	if _, err := Compute([]imagery.Label{0}, []imagery.Label{0, 1}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := Compute([]imagery.Label{7}, []imagery.Label{0}); err == nil {
		t.Error("invalid label must error")
	}
}

func TestConfusionMatrix(t *testing.T) {
	truths := []imagery.Label{0, 0, 1, 2}
	preds := []imagery.Label{0, 1, 1, 0}
	cm, err := Confusion(truths, preds)
	if err != nil {
		t.Fatal(err)
	}
	if cm[0][0] != 1 || cm[0][1] != 1 || cm[1][1] != 1 || cm[2][0] != 1 {
		t.Errorf("confusion matrix wrong: %v", cm)
	}
	if cm.Total() != 4 {
		t.Errorf("Total = %d, want 4", cm.Total())
	}
}

func TestMacroROCPerfectClassifier(t *testing.T) {
	truths := []imagery.Label{0, 1, 2, 0, 1, 2}
	dists := make([][]float64, len(truths))
	for i, l := range truths {
		dists[i] = mathx.OneHot(imagery.NumLabels, int(l))
	}
	curve, err := MacroROC(truths, dists, 51)
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(curve); auc < 0.99 {
		t.Errorf("perfect classifier AUC %v, want ~1", auc)
	}
}

func TestMacroROCRandomClassifier(t *testing.T) {
	rng := mathx.NewRand(1)
	n := 3000
	truths := make([]imagery.Label, n)
	dists := make([][]float64, n)
	for i := range truths {
		truths[i] = imagery.Label(rng.Intn(imagery.NumLabels))
		d := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		mathx.Normalize(d)
		dists[i] = d
	}
	curve, err := MacroROC(truths, dists, 101)
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(curve); math.Abs(auc-0.5) > 0.05 {
		t.Errorf("random classifier AUC %v, want ~0.5", auc)
	}
}

func TestMacroROCMonotone(t *testing.T) {
	rng := mathx.NewRand(2)
	n := 500
	truths := make([]imagery.Label, n)
	dists := make([][]float64, n)
	for i := range truths {
		truths[i] = imagery.Label(rng.Intn(imagery.NumLabels))
		// Noisy but informative scores.
		d := mathx.OneHot(imagery.NumLabels, int(truths[i]))
		for j := range d {
			d[j] = 0.5*d[j] + 0.5*rng.Float64()
		}
		mathx.Normalize(d)
		dists[i] = d
	}
	curve, err := MacroROC(truths, dists, 101)
	if err != nil {
		t.Fatal(err)
	}
	if curve[0].FPR != 0 || curve[len(curve)-1].FPR != 1 {
		t.Errorf("curve must span FPR [0,1]: %v .. %v", curve[0], curve[len(curve)-1])
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].TPR < curve[i-1].TPR-1e-9 {
			t.Fatalf("TPR must be non-decreasing along the curve at %d", i)
		}
	}
	// Informative scores: AUC clearly above chance.
	if auc := AUC(curve); auc < 0.7 {
		t.Errorf("informative classifier AUC %v too low", auc)
	}
}

func TestMacroROCValidation(t *testing.T) {
	if _, err := MacroROC(nil, nil, 11); err == nil {
		t.Error("empty input must error")
	}
	if _, err := MacroROC([]imagery.Label{0}, nil, 11); err == nil {
		t.Error("length mismatch must error")
	}
	// Single-class sample: every one-vs-rest split lacks negatives or
	// positives for 2 of 3 classes, but class 0 has no negatives at all.
	truths := []imagery.Label{0, 0}
	dists := [][]float64{{1, 0, 0}, {1, 0, 0}}
	if _, err := MacroROC(truths, dists, 11); err == nil {
		t.Error("degenerate single-class input must error")
	}
}

func TestBrierScore(t *testing.T) {
	truths := []imagery.Label{0, 1}
	perfect := [][]float64{{1, 0, 0}, {0, 1, 0}}
	if got, err := BrierScore(truths, perfect); err != nil || got != 0 {
		t.Errorf("perfect Brier = %v, %v; want 0", got, err)
	}
	// Uniform prediction on a 3-class problem:
	// (2/3)^2 + 2*(1/3)^2 = 6/9 = 2/3 per sample.
	uniform := [][]float64{{1. / 3, 1. / 3, 1. / 3}, {1. / 3, 1. / 3, 1. / 3}}
	if got, _ := BrierScore(truths, uniform); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("uniform Brier = %v, want 2/3", got)
	}
	// Confidently wrong: (0-1)^2 + (1-0)^2 = 2, the maximum.
	wrong := [][]float64{{0, 1, 0}, {1, 0, 0}}
	if got, _ := BrierScore(truths, wrong); got != 2 {
		t.Errorf("confidently wrong Brier = %v, want 2", got)
	}
	// Validation.
	if _, err := BrierScore(nil, nil); err == nil {
		t.Error("empty input must error")
	}
	if _, err := BrierScore(truths, perfect[:1]); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := BrierScore([]imagery.Label{9}, [][]float64{{1, 0, 0}}); err == nil {
		t.Error("invalid label must error")
	}
	if _, err := BrierScore([]imagery.Label{0}, [][]float64{{1, 0}}); err == nil {
		t.Error("bad distribution width must error")
	}
}

func TestAUCTrapezoid(t *testing.T) {
	curve := []ROCPoint{{0, 0}, {0.5, 1}, {1, 1}}
	if got := AUC(curve); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AUC = %v, want 0.75", got)
	}
}

func TestPerClassMetrics(t *testing.T) {
	truths := []imagery.Label{0, 0, 1, 1, 2}
	preds := []imagery.Label{0, 1, 1, 1, 0}
	cm, err := Confusion(truths, preds)
	if err != nil {
		t.Fatal(err)
	}
	per := cm.PerClass()
	if len(per) != imagery.NumLabels {
		t.Fatalf("per-class length %d", len(per))
	}
	// Class 0: tp=1 fp=1 fn=1 -> P=0.5 R=0.5 F1=0.5, support 2.
	if per[0].Support != 2 || per[0].Precision != 0.5 || per[0].Recall != 0.5 || per[0].F1 != 0.5 {
		t.Errorf("class 0 metrics %+v", per[0])
	}
	// Class 1: tp=2 fp=1 fn=0 -> P=2/3 R=1, support 2.
	if per[1].Support != 2 || math.Abs(per[1].Precision-2.0/3.0) > 1e-12 || per[1].Recall != 1 {
		t.Errorf("class 1 metrics %+v", per[1])
	}
	// Class 2: never predicted -> P=0; tp=0 -> R=0; support 1.
	if per[2].Support != 1 || per[2].Precision != 0 || per[2].Recall != 0 || per[2].F1 != 0 {
		t.Errorf("class 2 metrics %+v", per[2])
	}
}

// Consistency: macro metrics equal the mean of per-class metrics when all
// classes have support and predictions.
func TestPerClassConsistentWithMacro(t *testing.T) {
	rng := mathx.NewRand(4)
	n := 600
	truths := make([]imagery.Label, n)
	preds := make([]imagery.Label, n)
	for i := range truths {
		truths[i] = imagery.Label(rng.Intn(imagery.NumLabels))
		if rng.Float64() < 0.7 {
			preds[i] = truths[i]
		} else {
			preds[i] = imagery.Label(rng.Intn(imagery.NumLabels))
		}
	}
	cm, err := Confusion(truths, preds)
	if err != nil {
		t.Fatal(err)
	}
	macro := cm.Metrics()
	per := cm.PerClass()
	var meanP, meanR float64
	for _, m := range per {
		meanP += m.Precision
		meanR += m.Recall
	}
	meanP /= float64(len(per))
	meanR /= float64(len(per))
	if math.Abs(meanP-macro.Precision) > 1e-12 || math.Abs(meanR-macro.Recall) > 1e-12 {
		t.Errorf("macro (%v, %v) disagrees with per-class means (%v, %v)",
			macro.Precision, macro.Recall, meanP, meanR)
	}
}

func TestMetricsEmptyMatrix(t *testing.T) {
	var cm ConfusionMatrix
	m := cm.Metrics()
	if m.Accuracy != 0 || m.F1 != 0 {
		t.Errorf("empty matrix metrics %+v", m)
	}
}
