package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/admission"
	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/obs"
)

// stubScheme is a controllable scheme for resilience tests: it can block
// until released, panic on demand, report degraded images, and count
// full-cycle vs shed-tier executions for double-send assertions.
type stubScheme struct {
	block    chan struct{} // when non-nil, RunCycle waits for a receive
	entered  chan struct{} // when non-nil, RunCycle signals entry
	panics   int32         // remaining cycles that panic
	degraded bool          // mark every input image degraded
	cycles   int32         // atomic: RunCycle executions
	sheds    int32         // atomic: AssessDegraded executions
}

func (s *stubScheme) Name() string { return "stub" }

func (s *stubScheme) RunCycle(in core.CycleInput) (core.CycleOutput, error) {
	atomic.AddInt32(&s.cycles, 1)
	if s.entered != nil {
		s.entered <- struct{}{}
	}
	if s.block != nil {
		<-s.block
	}
	if s.panics > 0 {
		s.panics--
		panic("stub scheme poisoned cycle")
	}
	out := core.CycleOutput{Distributions: make([][]float64, len(in.Images))}
	for i := range out.Distributions {
		out.Distributions[i] = make([]float64, imagery.NumLabels)
		out.Distributions[i][0] = 1
	}
	if s.degraded {
		for i := range in.Images {
			out.Degraded = append(out.Degraded, i)
		}
	}
	return out, nil
}

// AssessDegraded is the stub's AI-only shed tier.
func (s *stubScheme) AssessDegraded(in core.CycleInput) (core.CycleOutput, error) {
	atomic.AddInt32(&s.sheds, 1)
	out := core.CycleOutput{
		Distributions: make([][]float64, len(in.Images)),
		Degraded:      make([]int, len(in.Images)),
	}
	for i := range out.Distributions {
		out.Distributions[i] = make([]float64, imagery.NumLabels)
		out.Distributions[i][0] = 1
		out.Degraded[i] = i
	}
	return out, nil
}

func oneImageRequest(ds *imagery.Dataset) Request {
	return Request{Context: crowd.Morning, Images: ds.Test[:1]}
}

func TestOptionValidation(t *testing.T) {
	if _, err := New(&stubScheme{}, WithQueueDepth(-1)); err == nil {
		t.Error("negative queue depth accepted")
	}
	if _, err := New(&stubScheme{}, WithRequestTimeout(-time.Second)); err == nil {
		t.Error("negative request timeout accepted")
	}
}

// TestQueueFullBackpressure: with a bounded queue, a busy worker plus a
// full queue rejects immediately with ErrQueueFull and counts it.
func TestQueueFullBackpressure(t *testing.T) {
	_, ds := fixture(t)
	scheme := &stubScheme{block: make(chan struct{})}
	reg := obs.NewRegistry()
	svc, err := New(scheme, WithQueueDepth(1), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()

	results := make(chan error, 2)
	go func() { // occupies the worker
		_, err := svc.Assess(context.Background(), oneImageRequest(ds))
		results <- err
	}()
	// Wait until the worker has picked the first request up, then park a
	// second one in the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for len(svc.requests) != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	go func() {
		_, err := svc.Assess(context.Background(), oneImageRequest(ds))
		results <- err
	}()
	for len(svc.requests) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	if _, err := svc.Assess(context.Background(), oneImageRequest(ds)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third concurrent request: err %v, want ErrQueueFull", err)
	}
	if got := reg.Counter(MetricQueueRejected).Value(); got != 1 {
		t.Errorf("rejected counter %v, want 1", got)
	}

	close(scheme.block) // release both held cycles
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("held request %d failed: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRequestTimeout: WithRequestTimeout bounds the whole Assess call.
func TestRequestTimeout(t *testing.T) {
	_, ds := fixture(t)
	scheme := &stubScheme{block: make(chan struct{})}
	svc, err := New(scheme, WithRequestTimeout(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	if _, err := svc.Assess(context.Background(), oneImageRequest(ds)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want DeadlineExceeded", err)
	}
	close(scheme.block) // the worker finishes into the buffered reply
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerPanicRecovered: one poisoned cycle fails its own request but
// does not kill the worker; the next request succeeds.
func TestWorkerPanicRecovered(t *testing.T) {
	_, ds := fixture(t)
	scheme := &stubScheme{panics: 1}
	reg := obs.NewRegistry()
	svc, err := New(scheme, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()
	_, err = svc.Assess(context.Background(), oneImageRequest(ds))
	if err == nil || !strings.Contains(err.Error(), "recovered panic") {
		t.Fatalf("err %v, want recovered panic", err)
	}
	if got := reg.Counter(MetricPanicsRecovered).Value(); got != 1 {
		t.Errorf("panic counter %v, want 1", got)
	}
	if _, err := svc.Assess(context.Background(), oneImageRequest(ds)); err != nil {
		t.Fatalf("request after panic failed: %v", err)
	}
}

// TestShutdownUnderLoad: with many concurrent callers racing Shutdown,
// every Assess returns deterministically — success or ErrNotRunning —
// queued requests are drained, and the worker exits. Run with -race.
func TestShutdownUnderLoad(t *testing.T) {
	_, ds := fixture(t)
	svc, err := New(&stubScheme{})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()

	const callers = 32
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := svc.Assess(context.Background(), oneImageRequest(ds))
			if err == nil && len(resp.Assessments) != 1 {
				errs <- errors.New("successful response without assessments")
				return
			}
			errs <- err
		}()
	}
	time.Sleep(time.Millisecond) // let some requests start
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	var ok, rejected int
	for err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrNotRunning):
			rejected++
		default:
			t.Errorf("unexpected outcome: %v", err)
		}
	}
	if ok+rejected != callers {
		t.Errorf("accounted %d of %d callers", ok+rejected, callers)
	}
	// Post-shutdown requests always reject.
	if _, err := svc.Assess(context.Background(), oneImageRequest(ds)); !errors.Is(err, ErrNotRunning) {
		t.Errorf("post-shutdown err %v, want ErrNotRunning", err)
	}
}

// TestDegradedHealthAndStats: degraded cycles flip /healthz to status
// "degraded" (still 200) and surface in /stats and the response payload.
func TestDegradedHealthAndStats(t *testing.T) {
	_, ds := fixture(t)
	svc, err := New(&stubScheme{degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()
	h, err := NewHandler(svc, ds.Test[:4])
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	if svc.Degraded() {
		t.Fatal("degraded before any cycle ran")
	}
	resp, err := svc.Assess(context.Background(), oneImageRequest(ds))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.DegradedImageIDs) != 1 {
		t.Fatalf("degraded IDs %v, want one", resp.DegradedImageIDs)
	}
	if !svc.Degraded() {
		t.Fatal("service not degraded after a degraded cycle")
	}

	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, hr)
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d, want 200 (degraded is still serving)", hr.StatusCode)
	}
	if !strings.Contains(body, "degraded") {
		t.Errorf("healthz body %q lacks degraded status", body)
	}

	stats := svc.Stats()
	if stats.DegradedCycles != 1 || stats.DegradedImages != 1 {
		t.Errorf("stats %+v, want 1 degraded cycle / 1 degraded image", stats)
	}
}

// TestHTTPPanicMiddleware: a panicking handler answers 500 and is
// counted, instead of tearing the connection down.
func TestHTTPPanicMiddleware(t *testing.T) {
	_, ds := fixture(t)
	reg := obs.NewRegistry()
	svc, err := New(&stubScheme{}, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(svc, ds.Test[:1])
	if err != nil {
		t.Fatal(err)
	}
	h.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	srv := httptest.NewServer(h)
	defer srv.Close()

	hr, err := http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, hr)
	if hr.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", hr.StatusCode)
	}
	if got := reg.Counter(MetricPanicsRecovered).Value(); got != 1 {
		t.Errorf("panic counter %v, want 1", got)
	}
}

// TestHTTPQueueFullMapsTo429: backpressure surfaces as 429 with a
// Retry-After header.
func TestHTTPQueueFullMapsTo429(t *testing.T) {
	_, ds := fixture(t)
	scheme := &stubScheme{block: make(chan struct{})}
	svc, err := New(scheme, WithQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	h, err := NewHandler(svc, ds.Test[:4])
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	post := func() *http.Response {
		body := strings.NewReader(`{"context":"morning","imageIds":[` + strconv.Itoa(ds.Test[0].ID) + `]}`)
		hr, err := http.Post(srv.URL+"/assess", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		return hr
	}
	done := make(chan *http.Response, 2)
	go func() { done <- post() }() // occupies the worker
	deadline := time.Now().Add(5 * time.Second)
	for len(svc.requests) != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	go func() { done <- post() }() // parks in the queue slot
	for len(svc.requests) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	hr := post()
	readAll(t, hr)
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", hr.StatusCode)
	}
	if hr.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(scheme.block)
	for i := 0; i < 2; i++ {
		readAll(t, <-done)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionLadderShedsAndRejects: with the controller saturated, a
// request lands on the degrade tier (AI-only labels, no committed
// cycle) and one past the hard cap is rejected with a retryable
// ErrOverloaded carrying a Retry-After hint.
func TestAdmissionLadderShedsAndRejects(t *testing.T) {
	_, ds := fixture(t)
	scheme := &stubScheme{block: make(chan struct{}), entered: make(chan struct{})}
	reg := obs.NewRegistry()
	svc, err := New(scheme,
		WithMetrics(reg),
		WithAdmission(admission.Config{MinLimit: 1, MaxLimit: 2, InitialLimit: 1}))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()

	type result struct {
		resp Response
		err  error
	}
	results := make(chan result, 2)
	submit := func() {
		resp, err := svc.Assess(context.Background(), oneImageRequest(ds))
		results <- result{resp, err}
	}

	go submit()      // admitted: occupies the worker inside RunCycle
	<-scheme.entered // worker is provably inside the blocked cycle
	go submit()      // inflight >= limit: lands on the degrade tier
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Admission.Inflight != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := svc.Stats().Admission.Inflight; got != 2 {
		t.Fatalf("inflight %d, want 2", got)
	}

	// Third arrival is past MaxLimit: rejected, retryable, with a hint.
	_, err = svc.Assess(context.Background(), oneImageRequest(ds))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated Assess err %v, want ErrOverloaded", err)
	}
	if !admission.IsRetryable(err) {
		t.Error("rejection not marked retryable")
	}
	if after, ok := admission.RetryAfterHint(err); !ok || after < time.Second {
		t.Errorf("Retry-After hint %v ok=%v, want >= 1s", after, ok)
	}

	close(scheme.block)
	var full, shed *result
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("held request failed: %v", r.err)
		}
		if r.resp.Shed {
			shed = &r
		} else {
			full = &r
		}
	}
	if full == nil || shed == nil {
		t.Fatal("expected one full-cycle and one shed response")
	}
	if got := shed.resp.Assessments[0].Source; got != "ai" {
		t.Errorf("shed response source %q, want ai", got)
	}
	if len(shed.resp.DegradedImageIDs) != 1 {
		t.Errorf("shed response degraded IDs %v, want one", shed.resp.DegradedImageIDs)
	}
	// The shed response repeated the next uncommitted index instead of
	// consuming a cycle: exactly one cycle committed, one shed served.
	stats := svc.Stats()
	if stats.CyclesRun != 1 || stats.ShedResponses != 1 {
		t.Errorf("cyclesRun=%d shedResponses=%d, want 1/1", stats.CyclesRun, stats.ShedResponses)
	}
	if got := atomic.LoadInt32(&scheme.sheds); got != 1 {
		t.Errorf("AssessDegraded ran %d times, want 1", got)
	}
	snap := stats.Admission
	if snap.Admitted != 1 || snap.Degraded != 1 || snap.Rejected != 1 {
		t.Errorf("snapshot admitted=%d degraded=%d rejected=%d, want 1/1/1",
			snap.Admitted, snap.Degraded, snap.Rejected)
	}
	if got := reg.Counter(MetricAdmissionDecisions, "decision", "reject").Value(); got != 1 {
		t.Errorf("reject decision counter %v, want 1", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRetryAfterSecondsRendering: the 429 Retry-After header is derived
// from the error's drain-rate hint — integer seconds, rounded up, with
// a 1s floor for unhinted or sub-second values.
func TestRetryAfterSecondsRendering(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{errors.New("no hint"), "1"},
		{admission.MarkRetryableAfter(errors.New("sub-second"), 200*time.Millisecond), "1"},
		{admission.MarkRetryableAfter(errors.New("rounds up"), 6500*time.Millisecond), "7"},
		{admission.MarkRetryableAfter(errors.New("exact"), 3*time.Second), "3"},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.err); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestHTTPOverloadRetryAfter: an admission rejection surfaces over HTTP
// as 429 with a Retry-After derived from the controller's drain
// estimate (a parseable positive integer, not a hardcoded constant).
func TestHTTPOverloadRetryAfter(t *testing.T) {
	_, ds := fixture(t)
	scheme := &stubScheme{block: make(chan struct{}), entered: make(chan struct{})}
	svc, err := New(scheme,
		WithAdmission(admission.Config{MinLimit: 1, MaxLimit: 1, InitialLimit: 1}))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	h, err := NewHandler(svc, ds.Test[:4])
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	post := func() *http.Response {
		body := strings.NewReader(`{"context":"morning","imageIds":[` + strconv.Itoa(ds.Test[0].ID) + `]}`)
		hr, err := http.Post(srv.URL+"/assess", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		return hr
	}
	done := make(chan *http.Response, 1)
	go func() { done <- post() }() // occupies the worker
	<-scheme.entered

	hr := post()
	readAll(t, hr)
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", hr.StatusCode)
	}
	secs, err := strconv.Atoi(hr.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Errorf("Retry-After %q, want integer seconds >= 1", hr.Header.Get("Retry-After"))
	}

	close(scheme.block)
	readAll(t, <-done)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownRetryRace: retrying clients racing Shutdown — including
// requests drained out of the queue by the exiting worker — always
// terminate, every failure is classified retryable, and the number of
// scheme executions equals the number of successful replies (no request
// is ever served twice or dropped after being served). Run with -race.
func TestShutdownRetryRace(t *testing.T) {
	_, ds := fixture(t)
	scheme := &stubScheme{block: make(chan struct{})}
	svc, err := New(scheme, WithQueueDepth(8), WithAdmission(admission.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()

	const clients = 24
	var wg sync.WaitGroup
	var successes int32
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			p := admission.RetryPolicy{Seed: seed, Sleep: func(time.Duration) {}}
			err := p.Do(context.Background(), func(ctx context.Context) error {
				_, err := svc.Assess(ctx, oneImageRequest(ds))
				return err
			})
			if err == nil {
				atomic.AddInt32(&successes, 1)
			}
			errs <- err
		}(int64(i))
	}

	// Hold the worker until requests are provably parked in the queue, so
	// Shutdown's drain path is exercised, then release the cycle.
	deadline := time.Now().Add(5 * time.Second)
	for len(svc.requests) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- svc.Shutdown(ctx) }()
	close(scheme.block)
	if err := <-shutdownErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)

	for err := range errs {
		if err != nil && !admission.IsRetryable(err) {
			t.Errorf("non-retryable failure under shutdown: %v", err)
		}
	}
	served := atomic.LoadInt32(&scheme.cycles) + atomic.LoadInt32(&scheme.sheds)
	if served != atomic.LoadInt32(&successes) {
		t.Errorf("scheme served %d requests but %d callers succeeded (double-send or dropped reply)",
			served, atomic.LoadInt32(&successes))
	}
}
