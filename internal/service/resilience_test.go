package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/obs"
)

// stubScheme is a controllable scheme for resilience tests: it can block
// until released, panic on demand, and report degraded images.
type stubScheme struct {
	block    chan struct{} // when non-nil, RunCycle waits for a receive
	panics   int32         // remaining cycles that panic
	degraded bool          // mark every input image degraded
}

func (s *stubScheme) Name() string { return "stub" }

func (s *stubScheme) RunCycle(in core.CycleInput) (core.CycleOutput, error) {
	if s.block != nil {
		<-s.block
	}
	if s.panics > 0 {
		s.panics--
		panic("stub scheme poisoned cycle")
	}
	out := core.CycleOutput{Distributions: make([][]float64, len(in.Images))}
	for i := range out.Distributions {
		out.Distributions[i] = make([]float64, imagery.NumLabels)
		out.Distributions[i][0] = 1
	}
	if s.degraded {
		for i := range in.Images {
			out.Degraded = append(out.Degraded, i)
		}
	}
	return out, nil
}

func oneImageRequest(ds *imagery.Dataset) Request {
	return Request{Context: crowd.Morning, Images: ds.Test[:1]}
}

func TestOptionValidation(t *testing.T) {
	if _, err := New(&stubScheme{}, WithQueueDepth(-1)); err == nil {
		t.Error("negative queue depth accepted")
	}
	if _, err := New(&stubScheme{}, WithRequestTimeout(-time.Second)); err == nil {
		t.Error("negative request timeout accepted")
	}
}

// TestQueueFullBackpressure: with a bounded queue, a busy worker plus a
// full queue rejects immediately with ErrQueueFull and counts it.
func TestQueueFullBackpressure(t *testing.T) {
	_, ds := fixture(t)
	scheme := &stubScheme{block: make(chan struct{})}
	reg := obs.NewRegistry()
	svc, err := New(scheme, WithQueueDepth(1), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()

	results := make(chan error, 2)
	go func() { // occupies the worker
		_, err := svc.Assess(context.Background(), oneImageRequest(ds))
		results <- err
	}()
	// Wait until the worker has picked the first request up, then park a
	// second one in the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for len(svc.requests) != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	go func() {
		_, err := svc.Assess(context.Background(), oneImageRequest(ds))
		results <- err
	}()
	for len(svc.requests) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	if _, err := svc.Assess(context.Background(), oneImageRequest(ds)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third concurrent request: err %v, want ErrQueueFull", err)
	}
	if got := reg.Counter(MetricQueueRejected).Value(); got != 1 {
		t.Errorf("rejected counter %v, want 1", got)
	}

	close(scheme.block) // release both held cycles
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("held request %d failed: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRequestTimeout: WithRequestTimeout bounds the whole Assess call.
func TestRequestTimeout(t *testing.T) {
	_, ds := fixture(t)
	scheme := &stubScheme{block: make(chan struct{})}
	svc, err := New(scheme, WithRequestTimeout(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	if _, err := svc.Assess(context.Background(), oneImageRequest(ds)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want DeadlineExceeded", err)
	}
	close(scheme.block) // the worker finishes into the buffered reply
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerPanicRecovered: one poisoned cycle fails its own request but
// does not kill the worker; the next request succeeds.
func TestWorkerPanicRecovered(t *testing.T) {
	_, ds := fixture(t)
	scheme := &stubScheme{panics: 1}
	reg := obs.NewRegistry()
	svc, err := New(scheme, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()
	_, err = svc.Assess(context.Background(), oneImageRequest(ds))
	if err == nil || !strings.Contains(err.Error(), "recovered panic") {
		t.Fatalf("err %v, want recovered panic", err)
	}
	if got := reg.Counter(MetricPanicsRecovered).Value(); got != 1 {
		t.Errorf("panic counter %v, want 1", got)
	}
	if _, err := svc.Assess(context.Background(), oneImageRequest(ds)); err != nil {
		t.Fatalf("request after panic failed: %v", err)
	}
}

// TestShutdownUnderLoad: with many concurrent callers racing Shutdown,
// every Assess returns deterministically — success or ErrNotRunning —
// queued requests are drained, and the worker exits. Run with -race.
func TestShutdownUnderLoad(t *testing.T) {
	_, ds := fixture(t)
	svc, err := New(&stubScheme{})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()

	const callers = 32
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := svc.Assess(context.Background(), oneImageRequest(ds))
			if err == nil && len(resp.Assessments) != 1 {
				errs <- errors.New("successful response without assessments")
				return
			}
			errs <- err
		}()
	}
	time.Sleep(time.Millisecond) // let some requests start
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	var ok, rejected int
	for err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrNotRunning):
			rejected++
		default:
			t.Errorf("unexpected outcome: %v", err)
		}
	}
	if ok+rejected != callers {
		t.Errorf("accounted %d of %d callers", ok+rejected, callers)
	}
	// Post-shutdown requests always reject.
	if _, err := svc.Assess(context.Background(), oneImageRequest(ds)); !errors.Is(err, ErrNotRunning) {
		t.Errorf("post-shutdown err %v, want ErrNotRunning", err)
	}
}

// TestDegradedHealthAndStats: degraded cycles flip /healthz to status
// "degraded" (still 200) and surface in /stats and the response payload.
func TestDegradedHealthAndStats(t *testing.T) {
	_, ds := fixture(t)
	svc, err := New(&stubScheme{degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()
	h, err := NewHandler(svc, ds.Test[:4])
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	if svc.Degraded() {
		t.Fatal("degraded before any cycle ran")
	}
	resp, err := svc.Assess(context.Background(), oneImageRequest(ds))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.DegradedImageIDs) != 1 {
		t.Fatalf("degraded IDs %v, want one", resp.DegradedImageIDs)
	}
	if !svc.Degraded() {
		t.Fatal("service not degraded after a degraded cycle")
	}

	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, hr)
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d, want 200 (degraded is still serving)", hr.StatusCode)
	}
	if !strings.Contains(body, "degraded") {
		t.Errorf("healthz body %q lacks degraded status", body)
	}

	stats := svc.Stats()
	if stats.DegradedCycles != 1 || stats.DegradedImages != 1 {
		t.Errorf("stats %+v, want 1 degraded cycle / 1 degraded image", stats)
	}
}

// TestHTTPPanicMiddleware: a panicking handler answers 500 and is
// counted, instead of tearing the connection down.
func TestHTTPPanicMiddleware(t *testing.T) {
	_, ds := fixture(t)
	reg := obs.NewRegistry()
	svc, err := New(&stubScheme{}, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(svc, ds.Test[:1])
	if err != nil {
		t.Fatal(err)
	}
	h.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	srv := httptest.NewServer(h)
	defer srv.Close()

	hr, err := http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, hr)
	if hr.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", hr.StatusCode)
	}
	if got := reg.Counter(MetricPanicsRecovered).Value(); got != 1 {
		t.Errorf("panic counter %v, want 1", got)
	}
}

// TestHTTPQueueFullMapsTo429: backpressure surfaces as 429 with a
// Retry-After header.
func TestHTTPQueueFullMapsTo429(t *testing.T) {
	_, ds := fixture(t)
	scheme := &stubScheme{block: make(chan struct{})}
	svc, err := New(scheme, WithQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	h, err := NewHandler(svc, ds.Test[:4])
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	post := func() *http.Response {
		body := strings.NewReader(`{"context":"morning","imageIds":[` + strconv.Itoa(ds.Test[0].ID) + `]}`)
		hr, err := http.Post(srv.URL+"/assess", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		return hr
	}
	done := make(chan *http.Response, 2)
	go func() { done <- post() }() // occupies the worker
	deadline := time.Now().Add(5 * time.Second)
	for len(svc.requests) != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	go func() { done <- post() }() // parks in the queue slot
	for len(svc.requests) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	hr := post()
	readAll(t, hr)
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", hr.StatusCode)
	}
	if hr.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(scheme.block)
	for i := 0; i < 2; i++ {
		readAll(t, <-done)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
