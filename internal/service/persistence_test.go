package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/crowd"
)

// TestStartCycleOffsetsIndices: a service resumed after recovery
// continues the cycle-index sequence where the crashed process stopped.
func TestStartCycleOffsetsIndices(t *testing.T) {
	scheme, ds := fixture(t)
	svc, err := New(scheme, WithStartCycle(17))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	}()
	resp, err := svc.Assess(context.Background(), Request{Context: crowd.Morning, Images: ds.Test[:2]})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CycleIndex != 17 {
		t.Errorf("first cycle after recovery got index %d, want 17", resp.CycleIndex)
	}
}

// TestHealthzReportsCheckpointAge: with persistence wired, /healthz
// carries the seconds since the last checkpoint (null until one is
// written), so operators can alert on stalled checkpointing.
func TestHealthzReportsCheckpointAge(t *testing.T) {
	scheme, ds := fixture(t)
	age := time.Duration(0)
	have := false
	svc, err := New(scheme, WithCheckpointAge(func() (time.Duration, bool) { return age, have }))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	}()
	h, err := NewHandler(svc, ds.Test[:10])
	if err != nil {
		t.Fatal(err)
	}

	get := func() map[string]any {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/healthz = %d", rec.Code)
		}
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		return body
	}

	body := get()
	if v, present := body["lastCheckpointAgeSeconds"]; !present || v != nil {
		t.Errorf("before any checkpoint, lastCheckpointAgeSeconds = %v", v)
	}
	age, have = 90*time.Second, true
	if v := get()["lastCheckpointAgeSeconds"]; v != 90.0 {
		t.Errorf("lastCheckpointAgeSeconds = %v, want 90", v)
	}
}

// TestStatsExposeRecovery: the startup recovery report is published on
// /stats so a resumed deployment is distinguishable from a fresh one.
func TestStatsExposeRecovery(t *testing.T) {
	scheme, ds := fixture(t)
	rs := &RecoveryStatus{Outcome: "checkpoint+wal", CheckpointCycles: 16, CyclesReplayed: 4}
	svc, err := New(scheme, WithRecovery(rs))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	}()
	h, err := NewHandler(svc, ds.Test[:10])
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Recovery == nil || stats.Recovery.Outcome != "checkpoint+wal" || stats.Recovery.CheckpointCycles != 16 {
		t.Errorf("stats recovery = %+v", stats.Recovery)
	}

	// Without WithRecovery the field stays absent from the JSON.
	plain, err := New(scheme)
	if err != nil {
		t.Fatal(err)
	}
	plain.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		plain.Shutdown(ctx)
	}()
	h2, err := NewHandler(plain, ds.Test[:10])
	if err != nil {
		t.Fatal(err)
	}
	rec2 := httptest.NewRecorder()
	h2.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var raw map[string]any
	if err := json.Unmarshal(rec2.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, present := raw["recovery"]; present {
		t.Error("recovery key present without WithRecovery")
	}
}
