package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/obs"
	"github.com/crowdlearn/crowdlearn/internal/prof"
)

// clFixture builds the expensive full CrowdLearn environment (dataset +
// pilot study) once for the observability endpoint tests.
var (
	clOnce  sync.Once
	clDS    *imagery.Dataset
	clPilot *crowd.PilotData
	clErr   error
)

func crowdLearnFixture(t *testing.T) (*imagery.Dataset, *crowd.PilotData) {
	t.Helper()
	clOnce.Do(func() {
		clDS, clErr = imagery.Generate(imagery.DefaultConfig())
		if clErr != nil {
			return
		}
		platform := crowd.MustNewPlatform(crowd.DefaultConfig())
		clPilot, clErr = crowd.RunPilot(platform, clDS.Train, crowd.DefaultPilotConfig())
	})
	if clErr != nil {
		t.Fatal(clErr)
	}
	return clDS, clPilot
}

// startObservedCrowdLearn wires a bootstrapped CrowdLearn system,
// registry and tracer into a running service + handler.
func startObservedCrowdLearn(t *testing.T) (*Handler, *obs.Registry, *obs.Tracer, *imagery.Dataset) {
	t.Helper()
	ds, pilot := crowdLearnFixture(t)
	registry := obs.NewRegistry()
	tracer := obs.NewTracer(32)
	cfg := core.DefaultConfig()
	cfg.Metrics = registry
	cfg.Tracer = tracer
	cl, err := core.New(cfg, crowd.MustNewPlatform(crowd.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Bootstrap(ds.Train, pilot); err != nil {
		t.Fatal(err)
	}
	svc, err := New(cl, WithMetrics(registry), WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	handler, err := NewHandler(svc, ds.Test, WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil))))
	if err != nil {
		t.Fatal(err)
	}
	return handler, registry, tracer, ds
}

func assessIDs(t *testing.T, h *Handler, ids []int) {
	t.Helper()
	body, _ := json.Marshal(AssessRequest{Context: "morning", ImageIDs: ids})
	req := httptest.NewRequest(http.MethodPost, "/assess", bytes.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("assess status %d: %s", rr.Code, rr.Body.String())
	}
}

// parseExposition is the minimal Prometheus text-format checker: every
// non-comment line must be `series value` with a float value, and every
// TYPE comment must name a known kind.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "untyped":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return samples
}

func scrape(t *testing.T, h *Handler) (string, map[string]float64) {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != obs.TextContentType {
		t.Errorf("content type %q", ct)
	}
	text := rr.Body.String()
	return text, parseExposition(t, text)
}

func TestMetricsEndpointExposition(t *testing.T) {
	h, _, _, ds := startObservedCrowdLearn(t)
	assessIDs(t, h, []int{ds.Test[0].ID, ds.Test[1].ID, ds.Test[2].ID})

	text, samples := parseExpositionAfterScrape(t, h)
	// Counters the acceptance criteria name: cycles, images, queries.
	for _, name := range []string{
		core.MetricCycles, core.MetricImages, core.MetricQueries,
	} {
		if samples[name] <= 0 {
			t.Errorf("counter %s = %v, want > 0", name, samples[name])
		}
	}
	// Gauges: budget remaining and one weight per expert.
	if v, ok := samples[core.MetricBudgetRemaining]; !ok || v <= 0 {
		t.Errorf("budget gauge %v (present=%v)", v, ok)
	}
	weightSeries := 0
	for series := range samples {
		if strings.HasPrefix(series, core.MetricExpertWeight+"{expert=") {
			weightSeries++
		}
	}
	if weightSeries == 0 {
		t.Error("no expert weight gauges exposed")
	}
	// Request-latency histogram is present with sum/count.
	if _, ok := samples[MetricAssessDuration+"_count"]; !ok {
		t.Errorf("assess latency histogram missing:\n%s", text)
	}
	if !strings.Contains(text, MetricHTTPDuration+"_bucket{path=\"/assess\"") {
		t.Error("http latency histogram missing /assess series")
	}
}

// parseExpositionAfterScrape scrapes twice so the first scrape's own
// request accounting is visible, then parses.
func parseExpositionAfterScrape(t *testing.T, h *Handler) (string, map[string]float64) {
	t.Helper()
	scrape(t, h)
	return scrape(t, h)
}

func TestMetricsHistogramBucketsMonotone(t *testing.T) {
	h, _, _, ds := startObservedCrowdLearn(t)
	for i := 0; i < 3; i++ {
		assessIDs(t, h, []int{ds.Test[3*i].ID, ds.Test[3*i+1].ID, ds.Test[3*i+2].ID})
	}
	text, _ := scrape(t, h)
	// Collect cumulative bucket counts per histogram series prefix in
	// order of appearance; each must be non-decreasing and end at +Inf.
	var prev float64
	var prevSeries string
	sc := bufio.NewScanner(strings.NewReader(text))
	checked := 0
	for sc.Scan() {
		line := sc.Text()
		cut := strings.Index(line, "_bucket{")
		if cut < 0 || strings.HasPrefix(line, "#") {
			continue
		}
		series := line[:cut]
		sp := strings.LastIndex(line, " ")
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if series != prevSeries {
			prevSeries, prev = series, 0
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative in %q: %v < %v", line, v, prev)
		}
		prev = v
		checked++
	}
	if checked == 0 {
		t.Fatal("no histogram buckets found in exposition")
	}
}

func TestConcurrentScrapesAndAssessments(t *testing.T) {
	h, _, _, ds := startObservedCrowdLearn(t)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			assessIDs(t, h, []int{ds.Test[10+2*w].ID, ds.Test[11+2*w].ID})
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
				if rr.Code != http.StatusOK {
					t.Errorf("scrape status %d", rr.Code)
					return
				}
				rr = httptest.NewRecorder()
				h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/trace?n=5", nil))
				if rr.Code != http.StatusOK {
					t.Errorf("trace status %d", rr.Code)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTraceEndpointCoversPipelineStages(t *testing.T) {
	h, _, _, ds := startObservedCrowdLearn(t)
	assessIDs(t, h, []int{
		ds.Test[0].ID, ds.Test[1].ID, ds.Test[2].ID, ds.Test[3].ID, ds.Test[4].ID,
		ds.Test[5].ID, ds.Test[6].ID, ds.Test[7].ID, ds.Test[8].ID, ds.Test[9].ID,
	})
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/trace", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("trace status %d: %s", rr.Code, rr.Body.String())
	}
	var resp TraceResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(resp.Traces) == 0 {
		t.Fatal("no traces returned")
	}
	tr := resp.Traces[0]
	if tr.Root == nil || tr.Root.Name != obs.SpanCycle {
		t.Fatalf("trace root %+v", tr.Root)
	}
	seen := make(map[string]bool)
	for _, sp := range tr.Root.Children {
		seen[sp.Name] = true
	}
	// All five pipeline stages of a queried cycle (MIC contributes two
	// spans; either satisfies the MIC stage, both should be present).
	for _, stage := range []string{
		core.SpanCommitteeVote, core.SpanQSSSelect, core.SpanIPDPrice,
		core.SpanCrowdSubmit, core.SpanCQCAggregate,
		core.SpanMICWeights, core.SpanMICRetrain,
	} {
		if !seen[stage] {
			t.Errorf("stage %q missing from trace (have %v)", stage, seen)
		}
	}
}

func TestTraceEndpointLimitAndValidation(t *testing.T) {
	h, _, _, ds := startObservedCrowdLearn(t)
	for i := 0; i < 3; i++ {
		assessIDs(t, h, []int{ds.Test[20+i].ID})
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/trace?n=2", nil))
	var resp TraceResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Traces) != 2 {
		t.Errorf("n=2 returned %d traces", len(resp.Traces))
	}
	// Newest first.
	if len(resp.Traces) == 2 && resp.Traces[0].Cycle < resp.Traces[1].Cycle {
		t.Error("traces not newest-first")
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/trace?n=bogus", nil))
	if rr.Code != http.StatusBadRequest {
		t.Errorf("bogus n status %d", rr.Code)
	}
}

func TestStatsExposeWeightsAndBudget(t *testing.T) {
	h, _, _, ds := startObservedCrowdLearn(t)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var before Stats
	if err := json.Unmarshal(rr.Body.Bytes(), &before); err != nil {
		t.Fatal(err)
	}
	if before.BudgetRemaining == nil || *before.BudgetRemaining <= 0 {
		t.Fatalf("bootstrapped budget missing from stats: %+v", before)
	}
	if len(before.ExpertWeights) == 0 {
		t.Fatal("bootstrapped expert weights missing from stats")
	}
	assessIDs(t, h, []int{ds.Test[30].ID, ds.Test[31].ID, ds.Test[32].ID,
		ds.Test[33].ID, ds.Test[34].ID, ds.Test[35].ID})
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var after Stats
	if err := json.Unmarshal(rr.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.BudgetRemaining == nil || *after.BudgetRemaining >= *before.BudgetRemaining {
		t.Errorf("budget did not decrease: %v -> %v", *before.BudgetRemaining, after.BudgetRemaining)
	}
}

func TestDashboardShowsWeightsAndBudget(t *testing.T) {
	h, _, _, _ := startObservedCrowdLearn(t)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("dashboard status %d", rr.Code)
	}
	body := rr.Body.String()
	if !strings.Contains(body, "budget remaining (USD)") {
		t.Error("dashboard missing budget row")
	}
	if !strings.Contains(body, "Expert weights") {
		t.Error("dashboard missing expert weights table")
	}
}

// TestStatsAndHealthCarryBuildInfo verifies WithBuildInfo surfaces the
// binary identity on both JSON surfaces: /stats carries the structured
// record, /healthz the human-readable version line.
func TestStatsAndHealthCarryBuildInfo(t *testing.T) {
	scheme, ds := fixture(t)
	bi := prof.BuildInfo{Version: "v1.2.3-test", GoVersion: "go1.22", Revision: "abcdef123456ffff"}
	svc, err := New(scheme, WithBuildInfo(bi))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	h, err := NewHandler(svc, ds.Test)
	if err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var st Stats
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Build == nil || *st.Build != bi {
		t.Errorf("stats build info = %+v, want %+v", st.Build, bi)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	version, _ := health["version"].(string)
	if want := bi.String(); version != want {
		t.Errorf("healthz version = %q, want %q", version, want)
	}

	// Without the option both surfaces omit the identity.
	plain, _ := startService(t)
	if raw, _ := json.Marshal(plain.Stats()); strings.Contains(string(raw), "\"build\"") {
		t.Errorf("stats without WithBuildInfo should omit build: %s", raw)
	}
}

func TestObsEndpointsDisabledWithoutWiring(t *testing.T) {
	// The plain AI-only fixture service has no registry or tracer.
	svc, ds := startService(t)
	h, err := NewHandler(svc, ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/metrics", "/trace"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
		if rr.Code != http.StatusNotFound {
			t.Errorf("%s without wiring: status %d, want 404", path, rr.Code)
		}
	}
	// Stats must omit the optional telemetry fields for plain schemes.
	raw, _ := json.Marshal(svc.Stats())
	if strings.Contains(string(raw), "expertWeights") {
		t.Errorf("AI-only stats should omit expertWeights: %s", raw)
	}
}
