package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/classifier"
	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
)

// fixture builds a trained AI-only scheme (cheap) plus the dataset once.
var (
	fxOnce   sync.Once
	fxScheme core.Scheme
	fxDS     *imagery.Dataset
	fxErr    error
)

func fixture(t *testing.T) (core.Scheme, *imagery.Dataset) {
	t.Helper()
	fxOnce.Do(func() {
		fxDS, fxErr = imagery.Generate(imagery.DefaultConfig())
		if fxErr != nil {
			return
		}
		expert := classifier.NewVGG16(imagery.DefaultDims, classifier.Options{Seed: 1, Epochs: 25})
		if fxErr = expert.Train(classifier.SamplesFromImages(fxDS.Train)); fxErr != nil {
			return
		}
		fxScheme, fxErr = core.NewAIOnly(expert)
	})
	if fxErr != nil {
		t.Fatal(fxErr)
	}
	return fxScheme, fxDS
}

func startService(t *testing.T) (*Service, *imagery.Dataset) {
	t.Helper()
	scheme, ds := fixture(t)
	svc, err := New(scheme)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return svc, ds
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil scheme must be rejected")
	}
}

func TestAssessBeforeStart(t *testing.T) {
	scheme, ds := fixture(t)
	svc, err := New(scheme)
	if err != nil {
		t.Fatal(err)
	}
	_, err = svc.Assess(context.Background(), Request{Context: crowd.Morning, Images: ds.Test[:2]})
	if err != ErrNotRunning {
		t.Errorf("Assess before Start = %v, want ErrNotRunning", err)
	}
}

func TestAssessBasic(t *testing.T) {
	svc, ds := startService(t)
	resp, err := svc.Assess(context.Background(), Request{Context: crowd.Evening, Images: ds.Test[:5]})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CycleIndex != 0 {
		t.Errorf("first cycle index %d, want 0", resp.CycleIndex)
	}
	if len(resp.Assessments) != 5 {
		t.Fatalf("assessments %d, want 5", len(resp.Assessments))
	}
	for i, a := range resp.Assessments {
		if a.ImageID != ds.Test[i].ID {
			t.Errorf("assessment %d image id %d, want %d", i, a.ImageID, ds.Test[i].ID)
		}
		if !a.Label.Valid() {
			t.Errorf("invalid label %v", a.Label)
		}
		if a.Confidence <= 0 || a.Confidence > 1 {
			t.Errorf("confidence %v out of range", a.Confidence)
		}
		if a.Source != "ai" {
			t.Errorf("AI-only scheme source %q, want ai", a.Source)
		}
	}
	if resp.AlgorithmDelaySeconds <= 0 {
		t.Error("algorithm delay must be positive")
	}
}

func TestCycleIndicesSequentialUnderConcurrency(t *testing.T) {
	svc, ds := startService(t)
	const callers = 8
	var wg sync.WaitGroup
	indices := make(chan int, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := svc.Assess(context.Background(), Request{
				Context: crowd.Morning,
				Images:  ds.Test[i*5 : i*5+5],
			})
			if err != nil {
				t.Errorf("assess: %v", err)
				return
			}
			indices <- resp.CycleIndex
		}()
	}
	wg.Wait()
	close(indices)
	seen := make(map[int]bool)
	for idx := range indices {
		if seen[idx] {
			t.Fatalf("duplicate cycle index %d", idx)
		}
		seen[idx] = true
	}
	if len(seen) != callers {
		t.Fatalf("got %d distinct indices, want %d", len(seen), callers)
	}
}

func TestStatsAccumulate(t *testing.T) {
	svc, ds := startService(t)
	for i := 0; i < 3; i++ {
		if _, err := svc.Assess(context.Background(), Request{Context: crowd.Midnight, Images: ds.Test[:4]}); err != nil {
			t.Fatal(err)
		}
	}
	stats := svc.Stats()
	if stats.CyclesRun != 3 {
		t.Errorf("CyclesRun %d, want 3", stats.CyclesRun)
	}
	if stats.ImagesAssessed != 12 {
		t.Errorf("ImagesAssessed %d, want 12", stats.ImagesAssessed)
	}
}

func TestShutdownStopsAssess(t *testing.T) {
	scheme, ds := fixture(t)
	svc, err := New(scheme)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The stopped-service error keeps the sentinel and is marked
	// retryable: shutdown usually precedes a restart or failover.
	if _, err := svc.Assess(context.Background(), Request{Context: crowd.Morning, Images: ds.Test[:1]}); !errors.Is(err, ErrNotRunning) {
		t.Errorf("Assess after Shutdown = %v, want ErrNotRunning", err)
	}
	// Double shutdown is safe.
	if err := svc.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

func TestAssessContextCancellation(t *testing.T) {
	svc, ds := startService(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := svc.Assess(ctx, Request{Context: crowd.Morning, Images: ds.Test[:1]})
	if err == nil {
		t.Error("cancelled context should be able to abort Assess")
	}
}

func TestInvalidCycleInputSurfacesError(t *testing.T) {
	svc, _ := startService(t)
	if _, err := svc.Assess(context.Background(), Request{Context: crowd.Morning}); err == nil {
		t.Error("empty image batch must surface the scheme's validation error")
	}
}

// --- HTTP layer ---

func startHTTP(t *testing.T) (*httptest.Server, *imagery.Dataset) {
	t.Helper()
	svc, ds := startService(t)
	h, err := NewHandler(svc, ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, ds
}

func TestHTTPAssess(t *testing.T) {
	srv, ds := startHTTP(t)
	body, _ := json.Marshal(AssessRequest{
		Context:  "evening",
		ImageIDs: []int{ds.Test[0].ID, ds.Test[1].ID},
	})
	resp, err := http.Post(srv.URL+"/assess", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Assessments) != 2 {
		t.Fatalf("assessments %d, want 2", len(out.Assessments))
	}
	if out.Assessments[0].LabelName == "" {
		t.Error("label name missing from JSON response")
	}
}

func TestHTTPAssessErrors(t *testing.T) {
	srv, ds := startHTTP(t)
	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/assess", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{bad json`); code != http.StatusBadRequest {
		t.Errorf("bad json status %d", code)
	}
	if code := post(`{"context":"noon","imageIds":[1]}`); code != http.StatusBadRequest {
		t.Errorf("bad context status %d", code)
	}
	if code := post(`{"context":"morning","imageIds":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty ids status %d", code)
	}
	if code := post(`{"context":"morning","imageIds":[999999]}`); code != http.StatusNotFound {
		t.Errorf("unknown id status %d", code)
	}
	// GET on /assess is rejected.
	resp, err := http.Get(srv.URL + "/assess")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /assess status %d", resp.StatusCode)
	}
	_ = ds
}

func TestHTTPStatsAndHealth(t *testing.T) {
	srv, ds := startHTTP(t)
	// Drive one cycle so stats are non-zero.
	body, _ := json.Marshal(AssessRequest{Context: "morning", ImageIDs: []int{ds.Test[0].ID}})
	resp, err := http.Post(srv.URL+"/assess", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.CyclesRun < 1 {
		t.Errorf("stats cycles %d, want >= 1", stats.CyclesRun)
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", hresp.StatusCode)
	}
}

func TestHTTPImagesDiscovery(t *testing.T) {
	srv, ds := startHTTP(t)
	resp, err := http.Get(srv.URL + "/images")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		ImageIDs []int `json:"imageIds"`
		Count    int   `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != len(ds.Test) {
		t.Errorf("count %d, want %d", out.Count, len(ds.Test))
	}
	// The discovered IDs must be assessable.
	body, _ := json.Marshal(AssessRequest{Context: "midnight", ImageIDs: out.ImageIDs[:3]})
	aresp, err := http.Post(srv.URL+"/assess", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusOK {
		t.Errorf("assess via discovered ids status %d", aresp.StatusCode)
	}
}

func TestHTTPDashboard(t *testing.T) {
	srv, ds := startHTTP(t)
	// Before any cycles: empty-state message.
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "CrowdLearn assessment service") {
		t.Error("dashboard missing title")
	}
	if !strings.Contains(body, "No cycles yet") {
		t.Error("dashboard missing empty state")
	}

	// Drive a cycle, then the dashboard shows it.
	reqBody, _ := json.Marshal(AssessRequest{Context: "evening", ImageIDs: []int{ds.Test[0].ID, ds.Test[1].ID}})
	post, err := http.Post(srv.URL+"/assess", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	resp, err = http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	if !strings.Contains(body, "Recent cycles") || strings.Contains(body, "No cycles yet") {
		t.Error("dashboard did not show the completed cycle")
	}
	// Unknown paths under / are 404, not dashboard.
	nf, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", nf.StatusCode)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestServiceRecentRingBuffer(t *testing.T) {
	svc, ds := startService(t)
	for i := 0; i < recentCapacity+5; i++ {
		if _, err := svc.Assess(context.Background(), Request{Context: crowd.Morning, Images: ds.Test[:1]}); err != nil {
			t.Fatal(err)
		}
	}
	recent := svc.Recent()
	if len(recent) != recentCapacity {
		t.Fatalf("recent length %d, want %d", len(recent), recentCapacity)
	}
	// Newest last; indices must be the final cycles.
	if recent[len(recent)-1].CycleIndex != recentCapacity+4 {
		t.Errorf("last recent cycle %d, want %d", recent[len(recent)-1].CycleIndex, recentCapacity+4)
	}
}

func TestShutdownLeavesNoGoroutines(t *testing.T) {
	scheme, ds := fixture(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		svc, err := New(scheme)
		if err != nil {
			t.Fatal(err)
		}
		svc.Start()
		if _, err := svc.Assess(context.Background(), Request{Context: crowd.Morning, Images: ds.Test[:2]}); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := svc.Shutdown(ctx); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
	}
	// Allow the runtime to reap exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after five start/shutdown cycles", before, after)
	}
}

func TestNewHandlerValidation(t *testing.T) {
	if _, err := NewHandler(nil, nil); err == nil {
		t.Error("nil service must be rejected")
	}
	scheme, _ := fixture(t)
	svc, err := New(scheme)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHandler(svc, []*imagery.Image{nil}); err == nil {
		t.Error("nil image in registry must be rejected")
	}
}
