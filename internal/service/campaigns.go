package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/admission"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/obs"
	"github.com/crowdlearn/crowdlearn/internal/supervise"
)

// SpecFactory assembles the supervise.Spec for a campaign created over
// the API. The daemon supplies it so campaign creation reuses the
// process's shared laboratory (dataset, pilot crowd) while the HTTP
// layer stays ignorant of scheme assembly.
type SpecFactory func(id string) (supervise.Spec, error)

// CampaignHandler exposes a supervise.Supervisor over HTTP/JSON — the
// multi-campaign face of the daemon, one failure domain per disaster
// campaign:
//
//	POST /campaigns                     {"id":"hurricane-x"} -> health
//	GET  /campaigns                     -> {"campaigns":[health...]}
//	GET  /campaigns/{id}                -> health
//	POST /campaigns/{id}/assess         {"context":"morning","imageIds":[...]} -> Response
//	POST /campaigns/{id}/pause          -> health
//	POST /campaigns/{id}/resume         -> health (resets a quarantine)
//	POST /campaigns/{id}/archive        -> health (terminal)
//	GET  /healthz                       -> 200 while no campaign is quarantined
//	GET  /stats                         -> {"campaigns":[health...]}
//	GET  /metrics                       -> Prometheus text exposition
//
// Supervision sentinels map onto transport codes: a full queue is 429
// with Retry-After, lifecycle-state rejections (paused, quarantined,
// archived, invalid transitions, duplicate IDs) are 409, unknown
// campaigns 404, and shutdown 503.
type CampaignHandler struct {
	sup      *supervise.Supervisor
	factory  SpecFactory
	images   map[int]*imagery.Image
	registry *obs.Registry
	mux      *http.ServeMux
	logger   *slog.Logger
}

var _ http.Handler = (*CampaignHandler)(nil)

// CampaignHandlerOption customises a CampaignHandler.
type CampaignHandlerOption func(*CampaignHandler)

// WithCampaignLogger attaches a structured logger.
func WithCampaignLogger(l *slog.Logger) CampaignHandlerOption {
	return func(h *CampaignHandler) { h.logger = l }
}

// WithCampaignMetrics attaches the registry served at GET /metrics —
// normally the same one the supervisor's labeled families land in.
func WithCampaignMetrics(r *obs.Registry) CampaignHandlerOption {
	return func(h *CampaignHandler) { h.registry = r }
}

// NewCampaignHandler builds the HTTP facade over sup. The image
// registry resolves request image IDs; factory serves POST /campaigns
// (nil disables creation over the API with 403).
func NewCampaignHandler(sup *supervise.Supervisor, registry []*imagery.Image, factory SpecFactory, opts ...CampaignHandlerOption) (*CampaignHandler, error) {
	if sup == nil {
		return nil, errors.New("service: nil supervisor")
	}
	h := &CampaignHandler{
		sup:     sup,
		factory: factory,
		images:  make(map[int]*imagery.Image, len(registry)),
		mux:     http.NewServeMux(),
	}
	for _, im := range registry {
		if im == nil {
			return nil, errors.New("service: nil image in registry")
		}
		h.images[im.ID] = im
	}
	for _, opt := range opts {
		opt(h)
	}
	h.mux.HandleFunc("POST /campaigns", h.handleCreate)
	h.mux.HandleFunc("GET /campaigns", h.handleList)
	h.mux.HandleFunc("GET /campaigns/{id}", h.handleGet)
	h.mux.HandleFunc("POST /campaigns/{id}/assess", h.handleCampaignAssess)
	h.mux.HandleFunc("POST /campaigns/{id}/pause", h.handleLifecycle(sup.Pause))
	h.mux.HandleFunc("POST /campaigns/{id}/resume", h.handleLifecycle(sup.Resume))
	h.mux.HandleFunc("POST /campaigns/{id}/archive", h.handleLifecycle(sup.Archive))
	h.mux.HandleFunc("GET /healthz", h.handleHealthz)
	h.mux.HandleFunc("GET /stats", h.handleStats)
	h.mux.HandleFunc("GET /metrics", h.handleMetrics)
	h.mux.HandleFunc("GET /images", h.handleImages)
	return h, nil
}

// handleImages mirrors the single-service image-discovery endpoint:
// the registry is shared across campaigns, so the ID list is global.
func (h *CampaignHandler) handleImages(w http.ResponseWriter, r *http.Request) {
	ids := make([]int, 0, len(h.images))
	for id := range h.images {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	writeJSON(w, http.StatusOK, map[string]any{"imageIds": ids, "count": len(ids)})
}

// ServeHTTP wraps the mux with the same accounting and panic recovery
// as the single-service Handler.
func (h *CampaignHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	started := time.Now()
	func() {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			h.registry.Counter(MetricPanicsRecovered).Inc()
			if h.logger != nil {
				h.logger.Error("panic in handler", slog.String("path", r.URL.Path), slog.Any("panic", p))
			}
			if !rec.wroteHeader {
				writeJSON(rec, http.StatusInternalServerError, errorBody{Error: "internal error"})
			} else {
				rec.status = http.StatusInternalServerError
			}
		}()
		h.mux.ServeHTTP(rec, r)
	}()
	elapsed := time.Since(started)
	path := r.URL.Path
	if _, pattern := h.mux.Handler(r); pattern != "" {
		path = pattern
	}
	if h.registry != nil {
		h.registry.Histogram(MetricHTTPDuration, obs.DefBuckets, "path", path).Observe(elapsed.Seconds())
		h.registry.Counter(MetricHTTPRequests, "path", path, "code", strconv.Itoa(rec.status)).Inc()
	}
	if h.logger != nil {
		attrs := []any{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Duration("elapsed", elapsed),
		}
		if rec.status >= http.StatusInternalServerError {
			h.logger.Error("request failed", attrs...)
		} else {
			h.logger.Debug("request", attrs...)
		}
	}
}

// writeSupError maps supervision sentinels to transport codes.
func writeSupError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, supervise.ErrUnknownCampaign):
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case errors.Is(err, supervise.ErrBusy):
		// Dynamic Retry-After: the admission controller's backlog-drain
		// estimate rides the error as a hint ("1" without one).
		w.Header().Set("Retry-After", retryAfterSeconds(err))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, supervise.ErrPaused),
		errors.Is(err, supervise.ErrQuarantined),
		errors.Is(err, supervise.ErrArchived),
		errors.Is(err, supervise.ErrInvalidTransition),
		errors.Is(err, supervise.ErrDuplicateID):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	case errors.Is(err, supervise.ErrShutdown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// CreateCampaignRequest is the JSON body of POST /campaigns.
type CreateCampaignRequest struct {
	ID string `json:"id"`
}

func (h *CampaignHandler) handleCreate(w http.ResponseWriter, r *http.Request) {
	if h.factory == nil {
		writeJSON(w, http.StatusForbidden, errorBody{Error: "campaign creation over the API is disabled"})
		return
	}
	var req CreateCampaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("invalid JSON: %v", err)})
		return
	}
	if req.ID == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "id must be non-empty"})
		return
	}
	spec, err := h.factory(req.ID)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if _, err := h.sup.Create(spec); err != nil {
		writeSupError(w, err)
		return
	}
	health, err := h.sup.CampaignHealth(req.ID)
	if err != nil {
		writeSupError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, health)
}

// CampaignListResponse is the JSON body of GET /campaigns and /stats.
type CampaignListResponse struct {
	Campaigns []supervise.CampaignHealth `json:"campaigns"`
	// Admission is the fleet overload controller's live state; nil when
	// admission control is disabled.
	Admission *admission.Snapshot `json:"admission,omitempty"`
}

func (h *CampaignHandler) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, CampaignListResponse{Campaigns: h.sup.Health()})
}

func (h *CampaignHandler) handleGet(w http.ResponseWriter, r *http.Request) {
	health, err := h.sup.CampaignHealth(r.PathValue("id"))
	if err != nil {
		writeSupError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, health)
}

func (h *CampaignHandler) handleLifecycle(op func(string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := op(id); err != nil {
			writeSupError(w, err)
			return
		}
		health, err := h.sup.CampaignHealth(id)
		if err != nil {
			writeSupError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, health)
	}
}

func (h *CampaignHandler) handleCampaignAssess(w http.ResponseWriter, r *http.Request) {
	var req AssessRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("invalid JSON: %v", err)})
		return
	}
	tctx, err := parseContext(req.Context)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if len(req.ImageIDs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "imageIds must be non-empty"})
		return
	}
	images := make([]*imagery.Image, len(req.ImageIDs))
	for i, id := range req.ImageIDs {
		im, ok := h.images[id]
		if !ok {
			writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown image id %d", id)})
			return
		}
		images[i] = im
	}
	res, err := h.sup.Assess(r.Context(), r.PathValue("id"), tctx, images)
	if err != nil {
		writeSupError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, campaignResponse(res, images))
}

// campaignResponse renders a supervised cycle in the same JSON shape as
// the single-service POST /assess, so clients migrate between the two
// without reparsing.
func campaignResponse(res supervise.AssessResult, images []*imagery.Image) Response {
	out := res.Output
	queried := make(map[int]bool, len(out.Queried))
	ids := make([]int, 0, len(out.Queried))
	for _, idx := range out.Queried {
		queried[idx] = true
		ids = append(ids, images[idx].ID)
	}
	degradedIDs := make([]int, 0, len(out.Degraded))
	for _, idx := range out.Degraded {
		degradedIDs = append(degradedIDs, images[idx].ID)
	}
	resp := Response{
		CycleIndex:            res.Cycle,
		Assessments:           make([]Assessment, len(images)),
		AlgorithmDelaySeconds: out.AlgorithmDelay.Seconds(),
		CrowdDelaySeconds:     out.CrowdDelay.Seconds(),
		SpentDollars:          out.SpentDollars,
		QueriedImageIDs:       ids,
		Requeries:             out.Requeries,
		RefundedDollars:       out.RefundedDollars,
		Shed:                  res.Shed,
	}
	if len(degradedIDs) > 0 {
		resp.DegradedImageIDs = degradedIDs
	}
	labels := out.Labels()
	for i, im := range images {
		source := "ai"
		if queried[i] {
			source = "crowd"
		}
		resp.Assessments[i] = Assessment{
			ImageID:    im.ID,
			Label:      labels[i],
			LabelName:  labels[i].String(),
			Confidence: out.Distributions[i][labels[i]],
			Source:     source,
		}
	}
	return resp
}

// handleHealthz reports fleet health: 200 while every campaign is
// serving or deliberately paused, 503 once any campaign is quarantined
// — the operator-attention signal — with the per-campaign detail either
// way.
func (h *CampaignHandler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	health := h.sup.Health()
	quarantined := make([]string, 0)
	for _, c := range health {
		if c.State == "quarantined" {
			quarantined = append(quarantined, c.ID)
		}
	}
	body := map[string]any{"status": "ok", "campaigns": health}
	status := http.StatusOK
	if len(quarantined) > 0 {
		body["status"] = "quarantined"
		body["quarantined"] = quarantined
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (h *CampaignHandler) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, CampaignListResponse{
		Campaigns: h.sup.Health(),
		Admission: h.sup.Admission(),
	})
}

func (h *CampaignHandler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if h.registry == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "metrics not enabled"})
		return
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	w.WriteHeader(http.StatusOK)
	if err := h.registry.WritePrometheus(w); err != nil && h.logger != nil {
		h.logger.Error("metrics write", slog.Any("err", err))
	}
}
