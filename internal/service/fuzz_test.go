package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// FuzzParseContext: parseContext must never panic, and on success must
// return a valid context whose name round-trips to the input.
func FuzzParseContext(f *testing.F) {
	f.Add("morning")
	f.Add("afternoon")
	f.Add("evening")
	f.Add("midnight")
	f.Add("")
	f.Add("MORNING")
	f.Add("morning ")
	f.Add("context(7)")
	f.Fuzz(func(t *testing.T, name string) {
		ctx, err := parseContext(name)
		if err != nil {
			return
		}
		if !ctx.Valid() {
			t.Fatalf("parseContext(%q) accepted invalid context %d", name, int(ctx))
		}
		if ctx.String() != name {
			t.Fatalf("parseContext(%q) = %v, which renders as %q", name, ctx, ctx.String())
		}
	})
}

// fuzzHandler builds one running service + handler per fuzz worker
// process; the stub scheme keeps iterations cheap.
var (
	fuzzOnce    sync.Once
	fuzzSrv     *httptest.Server
	fuzzBuildOK bool
)

func fuzzAssessServer(t *testing.T) *httptest.Server {
	t.Helper()
	fuzzOnce.Do(func() {
		_, ds := fixture(t)
		svc, err := New(&stubScheme{}, WithQueueDepth(64), WithRequestTimeout(5*time.Second))
		if err != nil {
			return
		}
		svc.Start()
		h, err := NewHandler(svc, ds.Test[:8])
		if err != nil {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = svc.Shutdown(ctx)
			return
		}
		fuzzSrv = httptest.NewServer(h)
		fuzzBuildOK = true
	})
	if !fuzzBuildOK {
		t.Skip("fuzz server unavailable")
	}
	return fuzzSrv
}

// FuzzAssessDecode drives POST /assess with arbitrary bodies: the
// request decoding path must answer an orderly HTTP status — never
// panic, never hang — for any input.
func FuzzAssessDecode(f *testing.F) {
	f.Add([]byte(`{"context":"morning","imageIds":[0]}`))
	f.Add([]byte(`{"context":"evening","imageIds":[0,1,2]}`))
	f.Add([]byte(`{"context":"dusk","imageIds":[0]}`))
	f.Add([]byte(`{"context":"morning","imageIds":[]}`))
	f.Add([]byte(`{"context":"morning","imageIds":[999999]}`))
	f.Add([]byte(`{"context":"morning","imageIds":[-1]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"context":42,"imageIds":"zero"}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		srv := fuzzAssessServer(t)
		resp, err := http.Post(srv.URL+"/assess", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("transport error (handler crashed?): %v", err)
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound,
			http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Fatalf("unexpected status %d for body %q", resp.StatusCode, body)
		}
	})
}
