// Package service wraps a damage-assessment scheme (CrowdLearn or any
// baseline) as a long-running service: the deployment shape the paper's
// DDA application actually has, where imagery batches arrive continuously
// and emergency-response consumers read assessments as they are produced.
//
// The Service owns a single worker goroutine so sensing cycles execute
// strictly sequentially (the closed loop is stateful: expert weights,
// bandit budget and retraining all carry across cycles). Concurrent
// Assess callers are serialised through a request channel; lifecycle
// follows the Start/Shutdown pattern with no fire-and-forget goroutines.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/crowdlearn/crowdlearn/internal/core"
	"github.com/crowdlearn/crowdlearn/internal/crowd"
	"github.com/crowdlearn/crowdlearn/internal/imagery"
	"github.com/crowdlearn/crowdlearn/internal/obs"
	"github.com/crowdlearn/crowdlearn/internal/prof"
	"github.com/crowdlearn/crowdlearn/internal/supervise"
)

// Assessment is one image's final verdict.
type Assessment struct {
	// ImageID identifies the assessed image.
	ImageID int `json:"imageId"`
	// Label is the assigned damage severity.
	Label imagery.Label `json:"label"`
	// LabelName is the human-readable severity.
	LabelName string `json:"labelName"`
	// Confidence is the probability mass behind the label.
	Confidence float64 `json:"confidence"`
	// Source is "crowd" when the label came from crowd offloading and
	// "ai" otherwise.
	Source string `json:"source"`
}

// Request is one batch of imagery to assess.
type Request struct {
	// Context is the temporal context the batch arrives under.
	Context crowd.TemporalContext
	// Images are the batch's images.
	Images []*imagery.Image
}

// Response is the outcome of one sensing cycle.
type Response struct {
	// CycleIndex is the service-assigned sequential cycle number.
	CycleIndex int `json:"cycleIndex"`
	// Assessments holds one verdict per input image, in input order.
	Assessments []Assessment `json:"assessments"`
	// AlgorithmDelaySeconds is the simulated compute time.
	AlgorithmDelaySeconds float64 `json:"algorithmDelaySeconds"`
	// CrowdDelaySeconds is the crowd completion delay (0 if no queries).
	CrowdDelaySeconds float64 `json:"crowdDelaySeconds"`
	// SpentDollars is the cycle's crowdsourcing spend (net of refunds).
	SpentDollars float64 `json:"spentDollars"`
	// QueriedImageIDs lists images that were sent to the crowd.
	QueriedImageIDs []int `json:"queriedImageIds"`
	// DegradedImageIDs lists images whose crowd query expired unanswered
	// and fell back to the AI label (recovery-enabled schemes only).
	DegradedImageIDs []int `json:"degradedImageIds,omitempty"`
	// Requeries counts HIT reposts the recovery policy performed.
	Requeries int `json:"requeries,omitempty"`
	// RefundedDollars is the incentive money refunded this cycle.
	RefundedDollars float64 `json:"refundedDollars,omitempty"`
}

// Stats summarises the service's lifetime activity.
type Stats struct {
	CyclesRun       int     `json:"cyclesRun"`
	ImagesAssessed  int     `json:"imagesAssessed"`
	CrowdQueries    int     `json:"crowdQueries"`
	TotalSpent      float64 `json:"totalSpentDollars"`
	MeanCrowdDelayS float64 `json:"meanCrowdDelaySeconds"`
	// DegradedCycles counts cycles in which at least one image fell back
	// to its AI label after crowd failures.
	DegradedCycles int `json:"degradedCycles"`
	// DegradedImages counts images that fell back to AI labels.
	DegradedImages int `json:"degradedImages"`
	// Requeries counts HIT reposts across all cycles.
	Requeries int `json:"crowdRequeries"`
	// RefundedDollars totals refunds for unanswered posts.
	RefundedDollars float64 `json:"refundedDollars"`
	// BudgetRemaining is the IPD policy's unspent budget in dollars; nil
	// when the scheme does not expose budget telemetry.
	BudgetRemaining *float64 `json:"budgetRemainingDollars,omitempty"`
	// ExpertWeights maps committee expert names to their current weights;
	// nil when the scheme does not expose them.
	ExpertWeights map[string]float64 `json:"expertWeights,omitempty"`
	// Recovery describes the startup state recovery (WithRecovery);
	// nil when the service runs without a durable store.
	Recovery *RecoveryStatus `json:"recovery,omitempty"`
	// Build identifies the serving binary (WithBuildInfo); nil when the
	// daemon did not attach build identity.
	Build *prof.BuildInfo `json:"build,omitempty"`
}

// RecoveryStatus mirrors the persistence layer's recovery report for
// the /stats surface: how the process's state was reconstructed at
// startup.
type RecoveryStatus struct {
	// Outcome: "fresh", "checkpoint", "checkpoint+wal", "wal" or
	// "bootstrap-fallback".
	Outcome string `json:"outcome"`
	// CheckpointCycles is the restored checkpoint's committed-cycle
	// count (-1 if none was usable).
	CheckpointCycles int `json:"checkpointCycles"`
	// CheckpointsSkipped counts corrupt or torn checkpoints skipped.
	CheckpointsSkipped int `json:"checkpointsSkipped"`
	// CyclesReplayed counts write-ahead-log cycles re-applied.
	CyclesReplayed int `json:"cyclesReplayed"`
	// WALTruncatedBytes is the torn log tail dropped at startup.
	WALTruncatedBytes int64 `json:"walTruncatedBytes"`
}

// Observable is the optional telemetry surface a scheme may implement
// (core.CrowdLearn does). The service snapshots it on the worker
// goroutine after every cycle, so implementations need no internal
// locking against concurrent RunCycle calls.
type Observable interface {
	ExpertWeights() map[string]float64
	RemainingBudget() float64
}

// Service runs a scheme as a sequential assessment worker.
type Service struct {
	scheme     core.Scheme
	observable Observable // scheme's telemetry surface, nil if absent
	registry   *obs.Registry
	tracer     *obs.Tracer

	requests       chan assessRequest
	stop           chan struct{}
	done           chan struct{}
	queueDepth     int
	requestTimeout time.Duration

	startOnce sync.Once
	stopOnce  sync.Once
	started   bool

	mu         sync.Mutex
	nextCycle  int
	stats      Stats
	delayTotal time.Duration
	delayed    int
	recent     []Response

	// checkpointAge, when non-nil, lets /healthz report the time since
	// the persistence layer's last checkpoint (WithCheckpointAge).
	checkpointAge func() (time.Duration, bool)
}

// recentCapacity bounds the in-memory response history used by the
// dashboard.
const recentCapacity = 20

type assessRequest struct {
	req   Request
	reply chan assessReply
}

type assessReply struct {
	resp Response
	err  error
}

// ErrNotRunning is returned by Assess before Start or after Shutdown.
var ErrNotRunning = errors.New("service: not running")

// ErrQueueFull is returned by Assess when the service was built with
// WithQueueDepth and the bounded queue is at capacity — the backpressure
// signal the HTTP layer maps to 429 with a Retry-After header.
var ErrQueueFull = errors.New("service: request queue full")

// Metric names emitted by the assessment worker when a registry is
// attached with WithMetrics.
const (
	// MetricAssessDuration is a histogram of wall-clock sensing-cycle
	// processing time in seconds.
	MetricAssessDuration = "crowdlearn_assess_duration_seconds"
	// MetricAssessErrors counts failed assessment requests.
	MetricAssessErrors = "crowdlearn_assess_errors_total"
	// MetricQueueRejected counts requests rejected by backpressure.
	MetricQueueRejected = "crowdlearn_queue_rejected_total"
	// MetricPanicsRecovered counts panics recovered from sensing cycles
	// and HTTP handlers.
	MetricPanicsRecovered = "crowdlearn_panics_recovered_total"
)

// Option customises a Service.
type Option func(*Service)

// WithMetrics attaches a metrics registry: the worker records
// per-request latency histograms and error counters into it, and the
// HTTP layer exposes it at GET /metrics.
func WithMetrics(r *obs.Registry) Option {
	return func(s *Service) { s.registry = r }
}

// WithTracer attaches the cycle tracer the HTTP layer serves at
// GET /trace. Point it at the same tracer as the scheme's
// core.Config.Tracer so cycle span trees and responses line up.
func WithTracer(tr *obs.Tracer) Option {
	return func(s *Service) { s.tracer = tr }
}

// WithQueueDepth bounds the request queue at n and makes Assess reject
// with ErrQueueFull instead of blocking when it is at capacity. The
// default (unset, or n <= 0) keeps the original unbounded-blocking
// behaviour: callers wait until the worker accepts their request.
func WithQueueDepth(n int) Option {
	return func(s *Service) { s.queueDepth = n }
}

// WithRequestTimeout caps how long one Assess call may take end to end
// (queue wait plus cycle processing); expired requests fail with
// context.DeadlineExceeded. Zero (the default) disables the cap.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Service) { s.requestTimeout = d }
}

// WithStartCycle sets the index of the first sensing cycle, so a
// service resumed from recovered state continues the cycle sequence
// (and the bandit's round pacing) where the previous process stopped.
func WithStartCycle(n int) Option {
	return func(s *Service) {
		if n > 0 {
			s.nextCycle = n
		}
	}
}

// WithRecovery publishes the startup recovery outcome in /stats.
func WithRecovery(rs *RecoveryStatus) Option {
	return func(s *Service) { s.stats.Recovery = rs }
}

// WithBuildInfo publishes the binary's build identity in /stats and the
// /healthz body, pairing scraped metrics (crowdlearn_build_info) with
// the JSON surfaces operators actually read during an incident.
func WithBuildInfo(bi prof.BuildInfo) Option {
	return func(s *Service) { s.stats.Build = &bi }
}

// WithCheckpointAge wires the persistence layer's last-checkpoint age
// into /healthz; the callback reports ok=false until a checkpoint
// exists.
func WithCheckpointAge(age func() (time.Duration, bool)) Option {
	return func(s *Service) { s.checkpointAge = age }
}

// New wraps a scheme. The scheme must already be trained/bootstrapped.
func New(scheme core.Scheme, opts ...Option) (*Service, error) {
	if scheme == nil {
		return nil, errors.New("service: nil scheme")
	}
	s := &Service{
		scheme: scheme,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.queueDepth < 0 {
		return nil, fmt.Errorf("service: queue depth %d must be non-negative", s.queueDepth)
	}
	if s.requestTimeout < 0 {
		return nil, fmt.Errorf("service: request timeout %v must be non-negative", s.requestTimeout)
	}
	s.requests = make(chan assessRequest, s.queueDepth)
	if o, ok := scheme.(Observable); ok {
		s.observable = o
		// Seed the pre-first-cycle snapshot so /stats shows the
		// bootstrapped weights and full budget immediately.
		s.stats.ExpertWeights = o.ExpertWeights()
		budget := o.RemainingBudget()
		s.stats.BudgetRemaining = &budget
	}
	if s.registry != nil {
		s.registry.Help(MetricAssessDuration, "Wall-clock sensing-cycle processing time in seconds.")
		s.registry.Help(MetricAssessErrors, "Assessment requests that failed.")
		s.registry.Help(MetricQueueRejected, "Assessment requests rejected by backpressure.")
		s.registry.Help(MetricPanicsRecovered, "Panics recovered from cycles and HTTP handlers.")
	}
	return s, nil
}

// Registry returns the attached metrics registry (nil when disabled).
func (s *Service) Registry() *obs.Registry { return s.registry }

// Tracer returns the attached cycle tracer (nil when disabled).
func (s *Service) Tracer() *obs.Tracer { return s.tracer }

// Start launches the worker goroutine. Calling Start twice is a no-op.
func (s *Service) Start() {
	s.startOnce.Do(func() {
		s.started = true
		// run() installs its own recovery; supervise.Go only names the
		// goroutine and catches what the worker's own recover misses.
		supervise.Go("service.worker", nil, s.run)
	})
}

// Shutdown signals the worker to stop and waits for it to exit. The
// context bounds the wait. The in-flight cycle completes; every queued
// request is drained and deterministically fails with ErrNotRunning.
func (s *Service) Shutdown(ctx context.Context) error {
	if !s.started {
		return nil
	}
	s.stopOnce.Do(func() { close(s.stop) })
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown: %w", ctx.Err())
	}
}

// run is the worker loop.
func (s *Service) run() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			s.drain()
			return
		case req := <-s.requests:
			resp, err := s.process(req.req)
			req.reply <- assessReply{resp: resp, err: err}
		}
	}
}

// drain rejects every request still queued at shutdown so their Assess
// callers return deterministically instead of waiting on a dead worker.
// Requests that race their enqueue past the closed stop channel are
// caught by Assess's done-guard instead.
func (s *Service) drain() {
	for {
		select {
		case req := <-s.requests:
			req.reply <- assessReply{err: ErrNotRunning}
		default:
			return
		}
	}
}

// Assess submits a batch and waits for its assessment. Safe for
// concurrent use; batches are processed strictly in arrival order. With
// WithQueueDepth set, a full queue rejects immediately with ErrQueueFull;
// with WithRequestTimeout set, the whole call is bounded by that timeout.
func (s *Service) Assess(ctx context.Context, req Request) (Response, error) {
	if !s.started {
		return Response{}, ErrNotRunning
	}
	if s.requestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.requestTimeout)
		defer cancel()
	}
	ar := assessRequest{req: req, reply: make(chan assessReply, 1)}
	if s.queueDepth > 0 {
		select {
		case s.requests <- ar:
		case <-s.stop:
			return Response{}, ErrNotRunning
		case <-ctx.Done():
			return Response{}, ctx.Err()
		default:
			s.registry.Counter(MetricQueueRejected).Inc()
			return Response{}, ErrQueueFull
		}
	} else {
		select {
		case s.requests <- ar:
		case <-s.stop:
			return Response{}, ErrNotRunning
		case <-ctx.Done():
			return Response{}, ctx.Err()
		}
	}
	select {
	case rep := <-ar.reply:
		return rep.resp, rep.err
	case <-s.done:
		// The worker exited. It may have replied (or drained us) in the
		// same instant, so prefer a waiting reply over ErrNotRunning.
		select {
		case rep := <-ar.reply:
			return rep.resp, rep.err
		default:
			return Response{}, ErrNotRunning
		}
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
}

// process runs one sensing cycle on the worker goroutine. A panicking
// scheme is recovered into an error so one poisoned cycle cannot kill
// the worker and wedge every future request.
func (s *Service) process(req Request) (resp Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.registry.Counter(MetricPanicsRecovered).Inc()
			s.registry.Counter(MetricAssessErrors).Inc()
			resp, err = Response{}, fmt.Errorf("service: recovered panic in sensing cycle: %v", r)
		}
	}()
	s.mu.Lock()
	cycle := s.nextCycle
	s.mu.Unlock()

	started := time.Now()
	out, err := s.scheme.RunCycle(core.CycleInput{
		Index:   cycle,
		Context: req.Context,
		Images:  req.Images,
	})
	s.registry.Histogram(MetricAssessDuration, obs.DefBuckets).Observe(time.Since(started).Seconds())
	if err != nil {
		s.registry.Counter(MetricAssessErrors).Inc()
		return Response{}, err
	}

	queried := make(map[int]bool, len(out.Queried))
	ids := make([]int, 0, len(out.Queried))
	for _, idx := range out.Queried {
		queried[idx] = true
		ids = append(ids, req.Images[idx].ID)
	}
	degradedIDs := make([]int, 0, len(out.Degraded))
	for _, idx := range out.Degraded {
		degradedIDs = append(degradedIDs, req.Images[idx].ID)
	}
	resp = Response{
		CycleIndex:            cycle,
		Assessments:           make([]Assessment, len(req.Images)),
		AlgorithmDelaySeconds: out.AlgorithmDelay.Seconds(),
		CrowdDelaySeconds:     out.CrowdDelay.Seconds(),
		SpentDollars:          out.SpentDollars,
		QueriedImageIDs:       ids,
		Requeries:             out.Requeries,
		RefundedDollars:       out.RefundedDollars,
	}
	if len(degradedIDs) > 0 {
		resp.DegradedImageIDs = degradedIDs
	}
	labels := out.Labels()
	for i, im := range req.Images {
		source := "ai"
		if queried[i] {
			source = "crowd"
		}
		resp.Assessments[i] = Assessment{
			ImageID:    im.ID,
			Label:      labels[i],
			LabelName:  labels[i].String(),
			Confidence: out.Distributions[i][labels[i]],
			Source:     source,
		}
	}

	s.mu.Lock()
	s.nextCycle++
	s.stats.CyclesRun++
	s.stats.ImagesAssessed += len(req.Images)
	s.stats.CrowdQueries += len(out.Queried)
	s.stats.TotalSpent += out.SpentDollars
	s.stats.Requeries += out.Requeries
	s.stats.RefundedDollars += out.RefundedDollars
	if len(out.Degraded) > 0 {
		s.stats.DegradedCycles++
		s.stats.DegradedImages += len(out.Degraded)
	}
	if len(out.Queried) > 0 {
		s.delayTotal += out.CrowdDelay
		s.delayed++
	}
	if s.delayed > 0 {
		s.stats.MeanCrowdDelayS = (s.delayTotal / time.Duration(s.delayed)).Seconds()
	}
	if s.observable != nil {
		// Fresh map per snapshot: previously returned Stats copies stay
		// valid and race-free.
		s.stats.ExpertWeights = s.observable.ExpertWeights()
		budget := s.observable.RemainingBudget()
		s.stats.BudgetRemaining = &budget
	}
	s.recent = append(s.recent, resp)
	if len(s.recent) > recentCapacity {
		s.recent = s.recent[len(s.recent)-recentCapacity:]
	}
	s.mu.Unlock()
	return resp, nil
}

// Degraded reports whether any response in the recent window fell back
// to AI labels after crowd failures — the service is still serving, but
// its crowd channel is impaired. Surfaced as status "degraded" (HTTP 200)
// on /healthz.
func (s *Service) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.recent {
		if len(r.DegradedImageIDs) > 0 {
			return true
		}
	}
	return false
}

// Recent returns the most recent responses, newest last (bounded copy).
func (s *Service) Recent() []Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Response, len(s.recent))
	copy(out, s.recent)
	return out
}

// Stats returns a snapshot of lifetime statistics.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
